package burstsnn_test

import (
	"math"
	"path/filepath"
	"testing"

	"burstsnn"
)

// TestPublicAPIEndToEnd exercises the full public surface the way the
// README quickstart does: generate data, train, convert, evaluate,
// analyze, and estimate energy.
func TestPublicAPIEndToEnd(t *testing.T) {
	set := burstsnn.SynthDigits(burstsnn.DigitsConfig{
		TrainPerClass: 50, TestPerClass: 6, Noise: 0.04, Seed: 3,
	})
	net, err := burstsnn.BuildDNN(burstsnn.MLP(1, 28, 28, []int{48}, 10), burstsnn.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	stats := burstsnn.Train(net, set, burstsnn.NewAdam(0.01), burstsnn.TrainConfig{
		Epochs: 12, BatchSize: 32, Seed: 5,
	})
	if len(stats) != 12 {
		t.Fatalf("expected 12 epoch stats, got %d", len(stats))
	}
	dnnAcc := burstsnn.EvaluateDNN(net, set.Test)
	if dnnAcc < 0.85 {
		t.Fatalf("DNN too weak: %.3f", dnnAcc)
	}

	res, err := burstsnn.Evaluate(net, set, burstsnn.EvalConfig{
		Hybrid: burstsnn.NewHybrid(burstsnn.Phase, burstsnn.Burst),
		Steps:  64, MaxImages: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	best, at := res.BestAccuracy()
	if best < dnnAcc-0.15 {
		t.Fatalf("SNN best %.3f at %d vs DNN %.3f", best, at, dnnAcc)
	}
	if res.SpikesPerImage <= 0 {
		t.Fatal("no spikes measured")
	}

	// Pattern analysis on the same model.
	pat, err := burstsnn.CollectPatterns(net, set, burstsnn.PatternConfig{
		Hybrid: burstsnn.NewHybrid(burstsnn.Phase, burstsnn.Burst),
		Steps:  48, Images: 2, SampleFrac: 0.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pat.Bursts.TotalSpikes == 0 {
		t.Fatal("pattern collection recorded nothing")
	}

	// Energy model.
	w := burstsnn.Workload{
		Spikes:  res.SpikesPerImage,
		Density: res.Density(),
		Latency: float64(res.Steps),
	}
	e := burstsnn.EstimateEnergy(burstsnn.TrueNorth(), w)
	if e <= 0 || math.IsNaN(e) {
		t.Fatalf("energy estimate %v", e)
	}
}

func TestPublicAPIModelIO(t *testing.T) {
	spec := burstsnn.LeNetMini(1, 28, 28, 10)
	net, err := burstsnn.BuildDNN(spec, burstsnn.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := burstsnn.SaveModelFile(path, spec, net); err != nil {
		t.Fatal(err)
	}
	spec2, net2, err := burstsnn.LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec2.Name != spec.Name || net2.NumParams() != net.NumParams() {
		t.Fatal("round trip mismatch")
	}
}

func TestPublicAPISchemes(t *testing.T) {
	s, err := burstsnn.ParseScheme("burst")
	if err != nil || s != burstsnn.Burst {
		t.Fatal("ParseScheme failed")
	}
	cfg := burstsnn.DefaultCodingConfig(burstsnn.Burst)
	if cfg.VTh != 0.125 || cfg.Beta != 2 {
		t.Fatalf("burst defaults %+v", cfg)
	}
	h := burstsnn.NewHybrid(burstsnn.Real, burstsnn.Burst).WithVTh(0.0625)
	if h.Notation() != "real-burst" || h.Hidden.VTh != 0.0625 {
		t.Fatal("hybrid construction failed")
	}
}

func TestPublicAPISingleNeuronAndAnalysis(t *testing.T) {
	n := burstsnn.NewSingleNeuron(burstsnn.DefaultCodingConfig(burstsnn.Burst))
	var train burstsnn.SpikeTrain
	for t0 := 0; t0 < 40; t0++ {
		if fired, _ := n.Step(0.4); fired {
			train = append(train, t0)
		}
	}
	if len(train) == 0 {
		t.Fatal("neuron silent")
	}
	st := burstsnn.Bursts([]burstsnn.SpikeTrain{train})
	if st.TotalSpikes != len(train) {
		t.Fatal("burst stats wrong")
	}
	h := burstsnn.ISIH([]burstsnn.SpikeTrain{train}, 10)
	if len(h) != 10 {
		t.Fatal("ISIH length")
	}
	if d := burstsnn.SpikingDensity(10, 5, 2); d != 1 {
		t.Fatalf("density %v", d)
	}
}

// TestAsyncDeliveryPreservesAccuracy runs a converted model under the
// asynchronous execution mode: with realistic axonal delays the network
// must reach the same decisions, just later.
func TestAsyncDeliveryPreservesAccuracy(t *testing.T) {
	set := burstsnn.SynthDigits(burstsnn.DigitsConfig{
		TrainPerClass: 50, TestPerClass: 6, Noise: 0.04, Seed: 3,
	})
	net, err := burstsnn.BuildDNN(burstsnn.MLP(1, 28, 28, []int{48}, 10), burstsnn.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	burstsnn.Train(net, set, burstsnn.NewAdam(0.01), burstsnn.TrainConfig{
		Epochs: 12, BatchSize: 32, Seed: 5,
	})

	conv, err := burstsnn.Convert(net, set.Train,
		burstsnn.DefaultConvertOptions(burstsnn.Real, burstsnn.Burst))
	if err != nil {
		t.Fatal(err)
	}
	async, err := burstsnn.WithDelays(conv.Net, 2, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	const T = 80
	syncCorrect, asyncCorrect := 0, 0
	for _, s := range set.Test[:20] {
		if conv.Net.Run(s.Image, T).FinalPrediction() == s.Label {
			syncCorrect++
		}
		if async.Run(s.Image, T).FinalPrediction() == s.Label {
			asyncCorrect++
		}
	}
	if asyncCorrect < syncCorrect-2 {
		t.Fatalf("async accuracy %d/20 far below sync %d/20", asyncCorrect, syncCorrect)
	}
}
