package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"burstsnn"
	"burstsnn/internal/obs"
	"burstsnn/internal/serve"
)

// runOverloadSelftest proves the overload-resilience plane end to end
// on a deliberately tiny serving capacity (one replica, short queue,
// injected per-batch latency):
//
//   - Phase A (replay-heavy): a hot set of images is replayed until the
//     response cache promotes and serves them — cache hits must show up
//     in /metrics and in /v1/trace as requests with no simulate span.
//   - Phase B (past-capacity burst): concurrent unique-image traffic at
//     well over 2× capacity. Every request must either complete (200)
//     or shed (429 + Retry-After) — never hang or 5xx — and the burst
//     must drive the degrade controller into degraded mode.
//   - Drain: trickled requests bring queue pressure back down; the
//     model must report mode "normal" again, and once the server shuts
//     down the goroutine count must return to its pre-server baseline.
func runOverloadSelftest(hybrid burstsnn.Hybrid, exit serve.ExitPolicy, batchKernel, lockstep string, logger *slog.Logger) error {
	fmt.Println("== snnserve overload selftest ==")
	baseline := runtime.NumGoroutine()

	fmt.Println("training MLP on synthetic digits...")
	set := burstsnn.SynthDigits(burstsnn.DigitsConfig{
		TrainPerClass: 30, TestPerClass: 5, Noise: 0.04, Seed: 1009,
	})
	net, err := burstsnn.BuildDNN(burstsnn.MLP(1, 28, 28, []int{32}, 10), burstsnn.NewRNG(7))
	if err != nil {
		return err
	}
	burstsnn.Train(net, set, burstsnn.NewAdam(0.01), burstsnn.TrainConfig{
		Epochs: 6, BatchSize: 32, Seed: 5,
	})

	// Tiny capacity, so the burst below provably exceeds it: one replica,
	// four-lane batches, an eight-slot queue, and 25ms of injected latency
	// per batch. Degrade on; response cache on (the default).
	srv := burstsnn.NewServer(burstsnn.ServeConfig{
		MaxBatch:       4,
		MaxDelay:       2 * time.Millisecond,
		QueueDepth:     8,
		LockstepBatch:  lockstep,
		BatchKernel:    batchKernel,
		RequestTimeout: 20 * time.Second,
		Degrade:        true,
		InjectLatency:  25 * time.Millisecond,
		Logger:         logger,
	})
	model, err := srv.Register(serve.ModelConfig{
		Name:     "digits",
		Hybrid:   hybrid,
		Steps:    exit.MaxSteps,
		Exit:     exit,
		Replicas: 1,
	}, net, set.Train)
	if err != nil {
		return err
	}
	fmt.Printf("registered %s: 1 replica, maxbatch 4, queue 8, +25ms/batch injected\n", hybrid.Notation())
	_ = model

	ln, err := net0()
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 60 * time.Second}

	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveDone
	}
	failed := true
	defer func() {
		if failed {
			shutdown()
		}
	}()

	// --- Phase A: replay-heavy traffic warms the response cache ---
	hot := set.Test[:4]
	for round := 0; round < 4; round++ {
		for i, s := range hot {
			if _, status, _, err := classifyHTTPStatus(client, base, serve.ClassifyRequest{
				Model: "digits", Image: s.Image,
			}); err != nil || status != http.StatusOK {
				return fmt.Errorf("replay round %d image %d: status %d, err %v", round, i, status, err)
			}
		}
	}
	snap, err := overloadSnapshot(client, base)
	if err != nil {
		return err
	}
	if snap.ResponseCacheHits == 0 {
		return fmt.Errorf("phase A: responseCacheHits = 0 after 4 replay rounds (misses %d)", snap.ResponseCacheMisses)
	}
	cachedTraces, err := cachedTraceCount(client, base)
	if err != nil {
		return err
	}
	if cachedTraces == 0 {
		return fmt.Errorf("phase A: no trace shows a cached request without a simulate span")
	}
	fmt.Printf("phase A (replay) : %d cache hits / %d misses, %d cached traces with no simulate span\n",
		snap.ResponseCacheHits, snap.ResponseCacheMisses, cachedTraces)

	// --- Phase B: unique-image burst at well over capacity ---
	const (
		burstWorkers  = 64
		burstRequests = 160
	)
	fmt.Printf("phase B (burst)  : %d unique-image requests over %d workers...\n", burstRequests, burstWorkers)
	type shot struct {
		status     int
		retryAfter int
		err        error
	}
	shots := make([]shot, burstRequests)
	next := make(chan int)
	go func() {
		for i := 0; i < burstRequests; i++ {
			next <- i
		}
		close(next)
	}()
	var wg sync.WaitGroup
	for w := 0; w < burstWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// Unique image per request: the cache and the batcher's
				// dedupe can't absorb any of the burst.
				img := append([]float64(nil), set.Test[i%len(set.Test)].Image...)
				img[0] = float64(i+1) / float64(2*burstRequests)
				_, status, retryAfter, err := classifyHTTPStatus(client, base, serve.ClassifyRequest{
					Model: "digits", Image: img,
				})
				shots[i] = shot{status: status, retryAfter: retryAfter, err: err}
			}
		}()
	}
	wg.Wait()

	completed, shed := 0, 0
	for i, sh := range shots {
		switch {
		case sh.err != nil:
			return fmt.Errorf("phase B request %d: %w", i, sh.err)
		case sh.status == http.StatusOK:
			completed++
		case sh.status == http.StatusTooManyRequests:
			shed++
			if sh.retryAfter < 1 {
				return fmt.Errorf("phase B request %d: 429 without a usable Retry-After (%d)", i, sh.retryAfter)
			}
		default:
			return fmt.Errorf("phase B request %d: status %d — every request must complete (200) or shed (429)", i, sh.status)
		}
	}
	if completed+shed != burstRequests {
		return fmt.Errorf("phase B: %d completed + %d shed != %d sent", completed, shed, burstRequests)
	}
	if completed == 0 || shed == 0 {
		return fmt.Errorf("phase B: %d completed, %d shed — the burst must produce both", completed, shed)
	}
	snap, err = overloadSnapshot(client, base)
	if err != nil {
		return err
	}
	if snap.SheddedRequests == 0 {
		return fmt.Errorf("phase B: sheddedRequests counter is 0 after %d observed 429s", shed)
	}
	if snap.DegradedRequests == 0 {
		return fmt.Errorf("phase B: degradedRequests = 0 — the burst never drove degraded mode (pressure %.2f)", snap.QueuePressure)
	}
	fmt.Printf("phase B result   : %d completed, %d shed (429), %d served degraded, peak mode %q\n",
		completed, shed, snap.DegradedRequests, snap.DegradeMode)

	// --- Drain: pressure decays, degraded mode must lift ---
	for i := 0; i < 30; i++ {
		s := set.Test[i%len(set.Test)]
		if _, status, _, err := classifyHTTPStatus(client, base, serve.ClassifyRequest{
			Model: "digits", Image: s.Image,
		}); err != nil || (status != http.StatusOK && status != http.StatusTooManyRequests) {
			return fmt.Errorf("drain request %d: status %d, err %v", i, status, err)
		}
	}
	snap, err = overloadSnapshot(client, base)
	if err != nil {
		return err
	}
	if snap.DegradeMode != "normal" {
		return fmt.Errorf("drain: mode %q (pressure %.2f) after trickle, want normal", snap.DegradeMode, snap.QueuePressure)
	}
	fmt.Printf("drain            : mode %q, queue pressure %.3f\n", snap.DegradeMode, snap.QueuePressure)

	// --- Shutdown: everything the server spawned must exit ---
	failed = false
	shutdown()
	client.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			fmt.Printf("shutdown         : goroutines %d (baseline %d)\n", g, baseline)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shutdown leaked goroutines: %d now, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("overload selftest PASS")
	return nil
}

// overloadSnapshot scrapes /metrics and returns the digits snapshot.
func overloadSnapshot(client *http.Client, base string) (serve.Snapshot, error) {
	var metrics struct {
		Models map[string]serve.Snapshot `json:"models"`
	}
	if err := getJSON(client, base+"/metrics", &metrics); err != nil {
		return serve.Snapshot{}, err
	}
	snap, ok := metrics.Models["digits"]
	if !ok {
		return serve.Snapshot{}, fmt.Errorf("/metrics has no digits model")
	}
	return snap, nil
}

// cachedTraceCount counts /v1/trace entries served from the response
// cache; each must carry no simulate (or queue) span — a cached answer
// never checked out a replica.
func cachedTraceCount(client *http.Client, base string) (int, error) {
	var page struct {
		Recent []obs.Trace `json:"recent"`
	}
	if err := getJSON(client, base+"/v1/trace", &page); err != nil {
		return 0, err
	}
	n := 0
	for _, t := range page.Recent {
		if !t.Cached {
			continue
		}
		if t.SimulateMs != 0 || t.QueueMs != 0 {
			return 0, fmt.Errorf("cached trace %s carries pipeline spans (simulate %.3fms, queue %.3fms)",
				t.ID, t.SimulateMs, t.QueueMs)
		}
		n++
	}
	return n, nil
}

// classifyHTTPStatus posts one classification and reports the HTTP
// status instead of folding non-200s into an error: the overload
// selftest needs to tell a shed (429) from a transport failure. The
// Retry-After header is returned in whole seconds (0 when absent).
func classifyHTTPStatus(client *http.Client, base string, req serve.ClassifyRequest) (serve.ClassifyResult, int, int, error) {
	var res serve.ClassifyResult
	body, err := json.Marshal(req)
	if err != nil {
		return res, 0, 0, err
	}
	resp, err := client.Post(base+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return res, 0, 0, err
	}
	defer resp.Body.Close()
	retryAfter, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return res, resp.StatusCode, retryAfter, err
		}
		return res, resp.StatusCode, retryAfter, nil
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return res, resp.StatusCode, retryAfter, nil
}
