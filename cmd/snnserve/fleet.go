package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"burstsnn"
	"burstsnn/internal/coding"
	"burstsnn/internal/fleet"
	"burstsnn/internal/obs"
	"burstsnn/internal/serve"
)

// runFleetWorker is `snnserve -worker`: one fleet shard as its own
// process. It serves the normal API on workerAddr (an ephemeral port by
// default), announces the bound address on stdout for the spawning
// front tier, and drains on SIGTERM — the supervisor's graceful kill.
func runFleetWorker(buildServer func(quiet bool) (*burstsnn.Server, error), workerAddr string) error {
	srv, err := buildServer(false)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", workerAddr)
	if err != nil {
		return err
	}
	// The announce line is the spawn contract (fleet.WorkerAddrPrefix):
	// it must be the worker's FIRST stdout line, after the listener is
	// live, so the front tier never races the bind.
	fmt.Printf("%s%s\n", fleet.WorkerAddrPrefix, ln.Addr().String())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "worker received %v, draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		<-done
		return nil
	}
}

type fleetOptions struct {
	shards    int
	backend   string // inproc | proc
	hops      int
	autoscale bool
	addr      string
}

// fleetConfig maps the CLI surface onto fleet.Config (the CLI's
// hops=0 means "pinned", which the config spells as negative).
func (o fleetOptions) fleetConfig() fleet.Config {
	hops := o.hops
	if hops == 0 {
		hops = -1
	}
	return fleet.Config{
		Shards:       o.shards,
		FallbackHops: hops,
		Autoscale:    o.autoscale,
	}
}

// workerArgs rebuilds the command line for a `snnserve -worker` child:
// every flag the operator set explicitly is forwarded verbatim, except
// the fleet/front-only flags, so each shard serves the same models
// under the same serving configuration.
func workerArgs(explicit map[string]bool) []string {
	skip := map[string]bool{
		"fleet": true, "fleet-workers": true, "fleet-fallback-hops": true,
		"fleet-autoscale": true, "worker": true, "addr": true,
		"selftest": true, "selftest-overload": true, "selftest-fleet": true,
		"requests": true, "workers": true, "trace-out": true,
	}
	args := []string{"-worker"}
	flag.Visit(func(f *flag.Flag) {
		if !skip[f.Name] {
			args = append(args, fmt.Sprintf("-%s=%s", f.Name, f.Value.String()))
		}
	})
	_ = explicit
	return args
}

// runFleetFront is `snnserve -fleet N`: the consistent-hash front tier
// over N shard workers — in-process pools or supervised child
// processes — serving the fleet API on opts.addr.
func runFleetFront(opts fleetOptions, buildServer func(quiet bool) (*burstsnn.Server, error), explicit map[string]bool) error {
	var factory fleet.WorkerFactory
	switch opts.backend {
	case "inproc":
		factory = func(shard int) (fleet.Worker, error) {
			srv, err := buildServer(shard != 0) // announce models once
			if err != nil {
				return nil, err
			}
			return fleet.NewInprocWorker(srv), nil
		}
	case "proc":
		bin, err := os.Executable()
		if err != nil {
			return err
		}
		args := workerArgs(explicit)
		factory = func(shard int) (fleet.Worker, error) {
			// Generous timeout: the child trains or loads its models
			// before it announces.
			return fleet.SpawnProcWorker(bin, args, 10*time.Minute)
		}
	default:
		return fmt.Errorf("unknown -fleet-workers backend %q (want inproc or proc)", opts.backend)
	}

	f, err := fleet.New(opts.fleetConfig(), factory)
	if err != nil {
		return err
	}
	front := fleet.NewFront(f)
	done := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "fleet front: %d %s shards, listening on %s\n",
			opts.shards, opts.backend, opts.addr)
		done <- front.ListenAndServe(opts.addr)
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		_ = front.Shutdown(context.Background())
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "received %v, draining fleet...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := front.Shutdown(ctx); err != nil {
			return err
		}
		<-done
		return nil
	}
}

// runFleetSelftest proves the fleet tier end to end on in-process
// shards:
//
//   - Routing affinity: replayed images land on their hash owner every
//     time, so the owner's response cache promotes and serves them —
//     per-shard cache hits must show up in the merged telemetry.
//   - Mixed unique-image traffic spreads across every shard (dispatch
//     counters all advance) and completes or sheds cleanly through the
//     front's HTTP API.
//   - Kill/respawn: one shard's worker is killed mid-traffic; requests
//     keep completing on the survivors (dead shards are skipped without
//     consuming fallback hops) until the supervisor respawns it.
//   - The merged /metrics snapshot adds up across shards and
//     /metrics/prom validates as Prometheus 0.0.4 text with per-shard
//     labeled families.
//   - Shutdown returns the process to its goroutine baseline.
func runFleetSelftest(hybrid burstsnn.Hybrid, exit serve.ExitPolicy, batchKernel, lockstep string, shards int, logger *slog.Logger) error {
	fmt.Println("== snnserve fleet selftest ==")
	baseline := runtime.NumGoroutine()

	fmt.Println("training MLP on synthetic digits...")
	set := burstsnn.SynthDigits(burstsnn.DigitsConfig{
		TrainPerClass: 30, TestPerClass: 5, Noise: 0.04, Seed: 1009,
	})
	dnnNet, err := burstsnn.BuildDNN(burstsnn.MLP(1, 28, 28, []int{32}, 10), burstsnn.NewRNG(7))
	if err != nil {
		return err
	}
	burstsnn.Train(dnnNet, set, burstsnn.NewAdam(0.01), burstsnn.TrainConfig{
		Epochs: 6, BatchSize: 32, Seed: 5,
	})

	factory := func(shard int) (fleet.Worker, error) {
		srv := burstsnn.NewServer(burstsnn.ServeConfig{
			MaxBatch:       4,
			MaxDelay:       2 * time.Millisecond,
			LockstepBatch:  lockstep,
			BatchKernel:    batchKernel,
			RequestTimeout: 60 * time.Second,
			Logger:         logger,
		})
		if _, err := srv.Register(serve.ModelConfig{
			Name:        "digits",
			Hybrid:      hybrid,
			Steps:       exit.MaxSteps,
			Exit:        exit,
			Replicas:    1,
			MaxReplicas: 2,
		}, dnnNet, set.Train); err != nil {
			return nil, err
		}
		return fleet.NewInprocWorker(srv), nil
	}
	f, err := fleet.New(fleet.Config{
		Shards:         shards,
		HealthInterval: 50 * time.Millisecond,
	}, factory)
	if err != nil {
		return err
	}
	front := fleet.NewFront(f)
	ln, err := net0()
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- front.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 120 * time.Second}
	fmt.Printf("fleet front: %d in-proc shards on %s\n", shards, base)

	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = front.Shutdown(ctx)
		<-serveDone
	}
	failed := true
	defer func() {
		if failed {
			shutdown()
		}
	}()

	fleetSnap := func() (fleet.FleetSnapshot, error) {
		var snap fleet.FleetSnapshot
		if err := getJSON(client, base+"/metrics", &snap); err != nil {
			return snap, err
		}
		return snap, nil
	}

	// --- Phase A: replay-heavy traffic — owner affinity warms per-shard caches ---
	hot := set.Test[:2*shards]
	for round := 0; round < 4; round++ {
		for i, s := range hot {
			if _, status, _, err := classifyHTTPStatus(client, base, serve.ClassifyRequest{
				Model: "digits", Image: s.Image,
			}); err != nil || status != http.StatusOK {
				return fmt.Errorf("phase A round %d image %d: status %d, err %v", round, i, status, err)
			}
		}
	}
	snap, err := fleetSnap()
	if err != nil {
		return err
	}
	ms, ok := snap.Models["digits"]
	if !ok {
		return fmt.Errorf("phase A: merged snapshot has no digits model")
	}
	if ms.Counters.ResponseCacheHits == 0 {
		return fmt.Errorf("phase A: no response-cache hits after 4 replay rounds — affinity broken?")
	}
	// Each hot image's hits must sit on its OWNER shard: affinity is what
	// keeps the per-shard caches hot.
	for _, s := range hot {
		owner := f.Owner(coding.HashImage(s.Image))
		g, ok := ms.PerShard[fmt.Sprint(owner)]
		if !ok {
			return fmt.Errorf("phase A: no gauges for owner shard %d", owner)
		}
		if g.CacheHits == 0 {
			return fmt.Errorf("phase A: owner shard %d has zero cache hits for its hot image", owner)
		}
	}
	fmt.Printf("phase A (replay) : %d cache hits across shards, every hot image cached on its owner\n",
		ms.Counters.ResponseCacheHits)

	// --- Phase B: unique-image traffic spreads across every shard ---
	const uniqueRequests = 64
	var wg sync.WaitGroup
	errs := make([]error, uniqueRequests)
	for i := 0; i < uniqueRequests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			img := append([]float64(nil), set.Test[i%len(set.Test)].Image...)
			img[0] = float64(i+1) / float64(2*uniqueRequests)
			_, status, _, err := classifyHTTPStatus(client, base, serve.ClassifyRequest{
				Model: "digits", Image: img,
			})
			if err != nil {
				errs[i] = err
			} else if status != http.StatusOK && status != http.StatusTooManyRequests {
				errs[i] = fmt.Errorf("status %d", status)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("phase B request %d: %w", i, err)
		}
	}
	snap, err = fleetSnap()
	if err != nil {
		return err
	}
	quiet := 0
	for _, sc := range snap.PerShard {
		if sc.Dispatched == 0 {
			quiet++
		}
	}
	if quiet > 0 {
		return fmt.Errorf("phase B: %d of %d shards never dispatched a request", quiet, shards)
	}
	var dispatched int64
	for _, sc := range snap.PerShard {
		dispatched += sc.Dispatched
	}
	fmt.Printf("phase B (unique) : %d requests dispatched across %d shards\n", dispatched, shards)

	// --- Phase C: kill a shard mid-traffic; survivors carry it, the supervisor respawns it ---
	victim := f.Owner(coding.HashImage(set.Test[0].Image))
	w, ok := f.Worker(victim).(*fleet.InprocWorker)
	if !ok {
		return fmt.Errorf("phase C: shard %d worker is not in-proc", victim)
	}
	w.Kill()
	// Traffic owned by the dead shard must keep completing (dead shards
	// are skipped without consuming fallback hops).
	for i := 0; i < 8; i++ {
		if _, status, _, err := classifyHTTPStatus(client, base, serve.ClassifyRequest{
			Model: "digits", Image: set.Test[0].Image,
		}); err != nil || status != http.StatusOK {
			return fmt.Errorf("phase C request %d during outage: status %d, err %v", i, status, err)
		}
	}
	respawnDeadline := time.Now().Add(30 * time.Second)
	for {
		snap, err = fleetSnap()
		if err != nil {
			return err
		}
		if snap.PerShard[victim].Respawns >= 1 && snap.LiveShards == shards {
			break
		}
		if time.Now().After(respawnDeadline) {
			return fmt.Errorf("phase C: shard %d never respawned (live %d/%d)", victim, snap.LiveShards, shards)
		}
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Printf("phase C (kill)   : shard %d killed, zero dropped requests, respawned (live %d/%d)\n",
		victim, snap.LiveShards, shards)

	// --- Merged exposition: strict Prometheus validation + shard labels ---
	resp, err := client.Get(base + "/metrics/prom")
	if err != nil {
		return err
	}
	var promText strings.Builder
	samples, err := obs.ValidatePromText(io.TeeReader(resp.Body, &promText))
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("prom exposition invalid: %w", err)
	}
	for _, want := range []string{
		"burstsnn_fleet_shards",
		"burstsnn_fleet_dispatched_total",
		"burstsnn_fleet_respawns_total",
		"burstsnn_fleet_requests_total",
		"burstsnn_fleet_stage_duration_seconds",
		fmt.Sprintf("shard=%q", fmt.Sprint(shards-1)),
	} {
		if !strings.Contains(promText.String(), want) {
			return fmt.Errorf("prom exposition missing %q", want)
		}
	}
	fmt.Printf("prom exposition  : %d samples validated, per-shard families present\n", samples)

	// --- Shutdown: back to the goroutine baseline ---
	failed = false
	shutdown()
	client.CloseIdleConnections()
	leakDeadline := time.Now().Add(15 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			fmt.Printf("shutdown         : goroutines %d (baseline %d)\n", g, baseline)
			break
		}
		if time.Now().After(leakDeadline) {
			return fmt.Errorf("shutdown leaked goroutines: %d now, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("fleet selftest PASS")
	return nil
}
