// Command snnserve serves single-image SNN classification over HTTP.
//
// It trains (or loads from the model cache) the named baseline models,
// converts each under the requested input-hidden coding, and exposes the
// serving API:
//
//	POST /v1/classify   {"model":"digits","image":[...784 floats]}
//	GET  /v1/models     registered models and their configurations
//	GET  /v1/trace      recent per-request stage traces + pinned slowest
//	GET  /healthz       liveness, build/runtime info, kernel dispatch tier
//	GET  /metrics       request counts, latency percentiles, per-stage
//	                    histograms, mean steps-to-exit, spikes/image
//	GET  /metrics/prom  the same telemetry in Prometheus text format
//	                    (also /metrics?format=prom)
//
// Usage:
//
//	snnserve -addr :8344 -models digits -input phase -hidden burst -steps 192
//
// Observability flags: -log emits one structured (slog) line per request,
// -pprof mounts net/http/pprof under /debug/pprof/, and -slow-trace sets
// the latency at which a request's trace is pinned past ring turnover.
//
// The early-exit engine stops each request's simulation as soon as the
// readout prediction has been stable for -window steps, so typical
// requests cost a fraction of the full -steps budget.
//
// Selftest mode (-selftest) builds a LeNetMini/phase-burst digits model,
// starts the server on an ephemeral port, drives concurrent synthetic
// traffic through the HTTP API, and reports throughput, latency
// percentiles, the per-stage time breakdown, and the early-exit step
// savings against the full-budget baseline, exiting non-zero if accuracy
// degrades or early exit fails to beat the budget. After the load run it
// scrapes /metrics, /metrics/prom (strictly validated), and /v1/trace,
// failing on empty stage histograms or unparseable exposition;
// -trace-out writes the scraped trace page to a file (a CI artifact).
//
// Overload selftest mode (-selftest-overload) squeezes capacity to one
// replica with a short queue and injected batch latency, then proves the
// overload plane: response-cache hits for replayed images, 429 +
// Retry-After shedding for a past-capacity burst, degraded mode
// engaging and lifting, and a leak-free shutdown. Serving flags:
// -request-timeout, -response-cache / -response-cache-ttl, and -degrade
// control the same mechanisms on a real server.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"burstsnn"
	"burstsnn/internal/experiments"
	"burstsnn/internal/kernels"
	"burstsnn/internal/obs"
	"burstsnn/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8344", "HTTP listen address")
		models   = flag.String("models", "digits", "comma-separated baseline models to serve: digits, textures10, textures100")
		input    = flag.String("input", "phase", "input coding: real, rate, phase, ttfs")
		hidden   = flag.String("hidden", "burst", "hidden coding: rate, phase, burst")
		vth      = flag.Float64("vth", 0, "hidden threshold constant v_th (0 = scheme default)")
		beta     = flag.Float64("beta", 0, "burst constant β (0 = default 2)")
		steps    = flag.Int("steps", 192, "per-request simulation budget")
		replicas = flag.Int("replicas", 0, "simulator replicas per model (0 = GOMAXPROCS)")
		window   = flag.Int("window", 12, "early-exit stability window in steps (0 disables early exit)")
		minSteps = flag.Int("minsteps", 16, "earliest step at which early exit is allowed")
		margin   = flag.Float64("margin", 0, "required per-step top1-top2 readout margin for early exit (0 = none)")
		maxBatch = flag.Int("maxbatch", 8, "microbatch size limit")
		maxDelay = flag.Duration("maxdelay", 2*time.Millisecond, "microbatch max delay")
		lockstep = lockstepFlagVar("lockstep", serve.LockstepAuto, "execute microbatches through the lockstep batch simulator: auto (occupancy feedback controller steers each batch when the float32 kernels dispatch to a packed tier), static (fixed ≥6-request rule on packed tiers), on, or off")
		kernel   = flag.String("kernel", serve.BatchKernelF32, "lockstep compute plane: f32 (float32 kernels, tolerance contract), f64 (bit-identical to sequential), or a forced float32 dispatch tier — f32-purego, f32-sse, f32-avx2 (fails if the machine cannot run it)")
		occXover = flag.Float64("occupancy-crossover", 0, "adaptive scheduler: estimated batch occupancy at which lockstep dispatch pays (0 = measured default)")
		exitHist = flag.Int("exit-history", 0, "exit-aware batch forming: per-model (image-hash → exit-step) history entries (0 = default, negative disables)")
		dir      = flag.String("dir", "", "model cache directory (default: system temp)")
		tiny     = flag.Bool("tiny", false, "use the reduced test-scale model recipes")

		queueDepth   = flag.Int("queue-depth", 0, "admission queue bound per model; requests beyond it shed with 429 (0 = default 4×maxbatch×GOMAXPROCS)")
		maxReplicas  = flag.Int("max-replicas", 0, "replica pool growth ceiling per model for the fleet autoscaler (0 = fixed pool at -replicas)")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request end-to-end deadline; a request whose remaining deadline is below the projected queue wait is shed with 429 + Retry-After (0 = default 30s)")
		respCache    = flag.Int("response-cache", 0, "cross-batch response cache entries per model — replayed images are answered without a replica (0 = default 4096, negative disables)")
		respCacheTTL = flag.Duration("response-cache-ttl", 0, "response cache entry lifetime (0 = default 1m)")
		degrade      = flag.Bool("degrade", false, "graceful degradation: while admission-queue pressure is high, serve under a tightened (halved-budget) early-exit policy instead of queueing toward timeout")

		maxResident = flag.Int("max-resident-models", 0, "resident-model bound: keep at most this many models' replica pools live, LRU-evicting the rest to the conversion archive; evicted models warm back in transparently on the next request (0 = unbounded)")
		evictIdle   = flag.Duration("evict-idle", 0, "evict any model idle for this long to the conversion archive (0 disables)")
		fairSlots   = flag.Int("fair-slots", 0, "cross-model weighted-fair batch scheduling with this many concurrent execution slots (0 = auto: GOMAXPROCS slots when any -model-weight is set, off otherwise; negative forces off)")
		weights     = modelWeightsFlagVar("model-weight", "fair-share weight as name=w (repeatable; unlisted models weigh 1); a model's long-run share of the execution slots is w over the sum of contending weights")

		logReqs   = flag.Bool("log", false, "emit one structured log line per classification (slog, stderr)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the serving port")
		slowTrace = flag.Duration("slow-trace", 0, "pin traces at or over this end-to-end latency past ring turnover (0 = default 250ms, negative disables)")

		fleetN       = flag.Int("fleet", 0, "serve through the sharded fleet tier with this many shard workers (0 = single server)")
		fleetBackend = flag.String("fleet-workers", "inproc", "fleet shard backend: inproc (goroutine pools in this process) or proc (one snnserve -worker child process per shard)")
		fleetHops    = flag.Int("fleet-fallback-hops", 1, "fleet: additional shards a request may be offered after its owner sheds it (0 pins requests to their owner)")
		fleetScale   = flag.Bool("fleet-autoscale", false, "fleet: widen/narrow each shard's replica pools (up to -max-replicas) from its queue-pressure EWMA")
		workerMode   = flag.Bool("worker", false, "run as a fleet shard worker: serve on an ephemeral port (unless -addr is explicit) and announce FLEET_WORKER_ADDR=<addr> on stdout")

		selftest         = flag.Bool("selftest", false, "run the deterministic load-generator selftest and exit")
		selftestOverload = flag.Bool("selftest-overload", false, "run the overload-resilience selftest (replay-heavy phase, then a past-capacity burst) and exit")
		selftestFleet    = flag.Bool("selftest-fleet", false, "run the sharded fleet selftest (routing affinity, per-shard caches, merged telemetry, respawn) and exit")
		selftestLife     = flag.Bool("selftest-lifecycle", false, "run the model-lifecycle selftest (hot re-register under load, resident-bound eviction/warm, weighted-fair isolation) and exit")
		requests         = flag.Int("requests", 200, "selftest: total classification requests")
		workers          = flag.Int("workers", 32, "selftest: concurrent load-generator workers")
		traceOut         = flag.String("trace-out", "", "selftest: write the scraped /v1/trace page to this file")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "snnserve: %v\n", err)
		os.Exit(1)
	}

	// -kernel f32-<tier> forces the kernel dispatch tier process-wide
	// before any model registers, so /metrics reports what actually runs.
	batchKernel := *kernel
	if lv, ok := strings.CutPrefix(*kernel, "f32-"); ok {
		if err := kernels.ForceLevel(lv); err != nil {
			fail(err)
		}
		batchKernel = serve.BatchKernelF32
	}
	inScheme, err := burstsnn.ParseScheme(*input)
	if err != nil {
		fail(err)
	}
	hidScheme, err := burstsnn.ParseScheme(*hidden)
	if err != nil {
		fail(err)
	}
	hybrid := burstsnn.NewHybrid(inScheme, hidScheme)
	if *vth > 0 {
		hybrid = hybrid.WithVTh(*vth)
	}
	if *beta > 0 {
		hybrid = hybrid.WithBeta(*beta)
	}
	exit := serve.ExitPolicy{
		MaxSteps:     *steps,
		MinSteps:     *minSteps,
		StableWindow: *window,
		Margin:       *margin,
	}
	if *window == 0 {
		exit.MinSteps, exit.Margin = 0, 0
	}

	var logger *slog.Logger
	if *logReqs {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	if *selftestLife {
		if err := runLifecycleSelftest(hybrid, exit, batchKernel, string(*lockstep), logger); err != nil {
			fail(err)
		}
		return
	}

	if *selftestOverload {
		if err := runOverloadSelftest(hybrid, exit, batchKernel, string(*lockstep), logger); err != nil {
			fail(err)
		}
		return
	}

	if *selftestFleet {
		shards := *fleetN
		if shards < 2 {
			shards = 2
		}
		if err := runFleetSelftest(hybrid, exit, batchKernel, string(*lockstep), shards, logger); err != nil {
			fail(err)
		}
		return
	}

	if *selftest {
		// The selftest asserts exact accuracy parity with full-budget
		// inference, so it defaults to a more conservative stability
		// window than interactive serving; explicit flags still win.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["window"] {
			exit.StableWindow = 32
		}
		if !explicit["minsteps"] {
			exit.MinSteps = 32
		}
		cfg := burstsnn.ServeConfig{
			MaxBatch:           *maxBatch,
			MaxDelay:           *maxDelay,
			LockstepBatch:      string(*lockstep),
			OccupancyCrossover: *occXover,
			ExitHistorySize:    *exitHist,
			BatchKernel:        batchKernel,
			RequestTimeout:     *reqTimeout,
			ResponseCacheSize:  *respCache,
			ResponseCacheTTL:   *respCacheTTL,
			Degrade:            *degrade,
			Logger:             logger,
		}
		if err := runSelftest(hybrid, exit, cfg, *steps, *replicas, *requests, *workers, *traceOut); err != nil {
			fail(err)
		}
		return
	}

	settings := experiments.DefaultSettings()
	settings.Log = os.Stderr
	settings.Tiny = *tiny
	if *dir != "" {
		settings.ModelDir = *dir
	}
	lab := experiments.NewLab(settings)

	if batchKernel != serve.BatchKernelF64 {
		fmt.Fprintf(os.Stderr, "float32 kernels: %s (dispatch tier %s, detected %s)\n",
			kernels.Kind(), kernels.ActiveLevel(), kernels.DetectedLevel())
	}

	// buildServer constructs one fully-registered server — the single
	// server below, a fleet shard's in-process worker, or the -worker
	// child's backend all use the same recipe.
	buildServer := func(quiet bool) (*burstsnn.Server, error) {
		srv := burstsnn.NewServer(burstsnn.ServeConfig{
			Addr:               *addr,
			MaxBatch:           *maxBatch,
			MaxDelay:           *maxDelay,
			QueueDepth:         *queueDepth,
			LockstepBatch:      string(*lockstep),
			OccupancyCrossover: *occXover,
			ExitHistorySize:    *exitHist,
			BatchKernel:        batchKernel,
			RequestTimeout:     *reqTimeout,
			ResponseCacheSize:  *respCache,
			ResponseCacheTTL:   *respCacheTTL,
			Degrade:            *degrade,
			SlowTraceThreshold: *slowTrace,
			MaxResidentModels:  *maxResident,
			EvictIdle:          *evictIdle,
			FairSlots:          *fairSlots,
			ModelWeights:       map[string]float64(*weights),
			Logger:             logger,
			EnablePprof:        *pprofOn,
		})
		for _, name := range strings.Split(*models, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			m, err := lab.Model(name)
			if err != nil {
				return nil, err
			}
			info, err := srv.Register(serve.ModelConfig{
				Name:        name,
				Hybrid:      hybrid,
				Steps:       *steps,
				Exit:        exit,
				Replicas:    *replicas,
				MaxReplicas: *maxReplicas,
			}, m.Net, m.Set.Train)
			if err != nil {
				return nil, err
			}
			if !quiet {
				fmt.Fprintf(os.Stderr, "serving %s as %s: %d neurons, %d replicas, budget %d steps (DNN acc %.4f)\n",
					name, hybrid.Notation(), info.Info().Neurons, info.Pool().Size(), *steps, m.DNNAcc)
			}
		}
		return srv, nil
	}

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *workerMode {
		workerAddr := *addr
		if !explicit["addr"] {
			workerAddr = "127.0.0.1:0"
		}
		if err := runFleetWorker(buildServer, workerAddr); err != nil {
			fail(err)
		}
		return
	}

	if *fleetN > 0 {
		if err := runFleetFront(fleetOptions{
			shards:    *fleetN,
			backend:   *fleetBackend,
			hops:      *fleetHops,
			autoscale: *fleetScale,
			addr:      *addr,
		}, buildServer, explicit); err != nil {
			fail(err)
		}
		return
	}

	srv, err := buildServer(false)
	if err != nil {
		fail(err)
	}

	// Graceful shutdown on SIGINT/SIGTERM.
	done := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "listening on %s\n", *addr)
		done <- srv.ListenAndServe()
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			fail(err)
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "received %v, draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fail(err)
		}
		<-done
	}
}

// runSelftest is the deterministic load generator: it proves the serving
// path end to end (HTTP, batching, pooling, early exit) on a freshly
// trained LeNetMini digits model and checks the paper's latency win
// survives serving: mean steps-to-exit strictly below the budget at no
// loss of accuracy versus full-budget inference.
func runSelftest(hybrid burstsnn.Hybrid, exit serve.ExitPolicy, cfg burstsnn.ServeConfig, steps, replicas, requests, workers int, traceOut string) error {
	if requests < 100 {
		requests = 100
	}
	if workers < 1 {
		workers = 16
	}
	if exit.StableWindow == 0 {
		return fmt.Errorf("selftest requires early exit (set -window > 0)")
	}

	fmt.Println("== snnserve selftest ==")
	fmt.Printf("training LeNetMini on synthetic digits...\n")
	set := burstsnn.SynthDigits(burstsnn.DigitsConfig{
		TrainPerClass: 80, TestPerClass: 20, Noise: 0.04, Seed: 1009,
	})
	net, err := burstsnn.BuildDNN(burstsnn.LeNetMini(1, 28, 28, 10), burstsnn.NewRNG(4242))
	if err != nil {
		return err
	}
	burstsnn.Train(net, set, burstsnn.NewAdam(0.002), burstsnn.TrainConfig{
		Epochs: 4, BatchSize: 32, Seed: 99,
	})
	dnnAcc := burstsnn.EvaluateDNN(net, set.Test)
	fmt.Printf("DNN accuracy %.4f on %d test images\n", dnnAcc, len(set.Test))

	srv := burstsnn.NewServer(cfg)
	model, err := srv.Register(serve.ModelConfig{
		Name:     "digits",
		Hybrid:   hybrid,
		Steps:    steps,
		Exit:     exit,
		Replicas: replicas,
	}, net, set.Train)
	if err != nil {
		return err
	}
	fmt.Printf("registered %s (%d neurons, %d replicas, budget %d steps)\n",
		hybrid.Notation(), model.Info().Neurons, model.Pool().Size(), steps)

	ln, err := net0()
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveDone
	}()

	// Full-budget baseline over the distinct test images (in-process: the
	// HTTP layer adds nothing to simulated accuracy).
	fullCorrect := 0
	ctx := context.Background()
	for _, s := range set.Test {
		res, err := srv.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: s.Image, NoEarlyExit: true})
		if err != nil {
			return fmt.Errorf("full-budget baseline: %w", err)
		}
		if res.Prediction == s.Label {
			fullCorrect++
		}
	}
	fullAcc := float64(fullCorrect) / float64(len(set.Test))
	fmt.Printf("full-budget SNN accuracy %.4f at %d steps/request\n", fullAcc, steps)

	// Concurrent load through the real HTTP API, cycling the test set.
	fmt.Printf("driving %d requests over %d workers at %s ...\n", requests, workers, base)
	type shot struct {
		res serve.ClassifyResult
		err error
	}
	shots := make([]shot, requests)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < requests; i++ {
			next <- i
		}
		close(next)
	}()
	client := &http.Client{Timeout: 60 * time.Second}
	began := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s := set.Test[i%len(set.Test)]
				res, err := classifyHTTP(client, base, serve.ClassifyRequest{Model: "digits", Image: s.Image})
				shots[i] = shot{res: res, err: err}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(began)

	earlyCorrect, totalSteps, totalSpikes, exits := 0, 0, 0, 0
	latencies := make([]float64, 0, requests)
	for i, sh := range shots {
		if sh.err != nil {
			return fmt.Errorf("request %d: %w", i, sh.err)
		}
		if sh.res.Prediction == set.Test[i%len(set.Test)].Label {
			earlyCorrect++
		}
		totalSteps += sh.res.Steps
		totalSpikes += sh.res.Spikes
		if sh.res.EarlyExit {
			exits++
		}
		latencies = append(latencies, sh.res.LatencyMs)
	}
	sort.Float64s(latencies)
	earlyAcc := float64(earlyCorrect) / float64(requests)
	meanSteps := float64(totalSteps) / float64(requests)
	throughput := float64(requests) / wall.Seconds()

	fmt.Println("-- results --")
	fmt.Printf("requests      : %d over %d workers in %v\n", requests, workers, wall.Round(time.Millisecond))
	fmt.Printf("throughput    : %.1f req/s\n", throughput)
	fmt.Printf("latency       : p50 %.2fms  p99 %.2fms\n",
		serve.Percentile(latencies, 50), serve.Percentile(latencies, 99))
	fmt.Printf("accuracy      : %.4f early-exit vs %.4f full-budget\n", earlyAcc, fullAcc)
	fmt.Printf("steps/request : %.1f mean (budget %d, %.0f%% early exits)\n",
		meanSteps, steps, 100*float64(exits)/float64(requests))
	fmt.Printf("spikes/request: %.0f\n", float64(totalSpikes)/float64(requests))

	if earlyAcc < fullAcc {
		return fmt.Errorf("early-exit accuracy %.4f fell below full-budget accuracy %.4f", earlyAcc, fullAcc)
	}
	if meanSteps >= float64(steps) {
		return fmt.Errorf("mean steps %.1f did not beat the %d-step budget", meanSteps, steps)
	}
	if err := scrapeTelemetry(client, base, traceOut); err != nil {
		return fmt.Errorf("telemetry scrape: %w", err)
	}
	fmt.Println("selftest PASS")
	return nil
}

// scrapeTelemetry hits the three telemetry surfaces after the load run
// and asserts each one reflects the traffic that just went through:
// /metrics must carry non-empty per-stage histograms (printed as the
// stage breakdown), /metrics/prom must pass the strict exposition
// validator, and /v1/trace must hold at least one trace with a measured
// simulate span. traceOut, when set, receives the raw trace page (CI
// uploads it as an artifact).
func scrapeTelemetry(client *http.Client, base, traceOut string) error {
	// JSON metrics: the per-stage histograms must have observed the load.
	var metrics struct {
		Models map[string]serve.Snapshot `json:"models"`
	}
	if err := getJSON(client, base+"/metrics", &metrics); err != nil {
		return err
	}
	snap, ok := metrics.Models["digits"]
	if !ok {
		return fmt.Errorf("/metrics has no digits model")
	}
	fmt.Println("-- stage breakdown (/metrics) --")
	for _, stage := range []string{"queue", "form", "encode", "simulate", "readout", "total"} {
		st, ok := snap.Stages[stage]
		if !ok {
			return fmt.Errorf("/metrics stage %q missing", stage)
		}
		if st.Count == 0 {
			return fmt.Errorf("/metrics stage %q histogram is empty after load", stage)
		}
		fmt.Printf("%-9s: mean %8.3fms  p50 %8.3fms  p99 %8.3fms  (n=%d)\n",
			stage, st.Mean, st.P50, st.P99, st.Count)
	}

	// Steering decision trace: how the scheduling plane routed the load's
	// multi-request batches and why, so a steering regression (a plane
	// stuck sequential, a silent lockstep fallback) is diagnosable from
	// the CI log alone.
	fmt.Println("-- steering decisions --")
	fmt.Printf("scheduler     : %s\n", snap.Scheduler)
	fmt.Printf("dispatches    : %d lockstep, %d sequential (multi-request batches)\n",
		snap.SchedLockstepBatches, snap.SchedSequentialBatches)
	reasons := make([]string, 0, len(snap.SchedReasons))
	for reason := range snap.SchedReasons {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		fmt.Printf("  %-15s: %d\n", reason, snap.SchedReasons[reason])
	}
	if snap.LockstepFallbacks > 0 {
		fmt.Printf("lockstep fallbacks: %d (replica could not batch)\n", snap.LockstepFallbacks)
	}
	if hits, misses := snap.ExitHistoryHits, snap.ExitHistoryMisses; hits+misses > 0 {
		fmt.Printf("exit history  : %d predicted, %d unpredicted", hits, misses)
		if pe := snap.ExitPredictionError; pe.Count > 0 {
			fmt.Printf("; |pred−actual| mean %.1f steps (p99 %.0f, n=%d)", pe.Mean, pe.P99, pe.Count)
		}
		fmt.Println()
	}

	// Prometheus exposition: both routes must parse under the strict
	// validator (an exposition bug fails here rather than in a scraper).
	for _, path := range []string{"/metrics/prom", "/metrics?format=prom"} {
		resp, err := client.Get(base + path)
		if err != nil {
			return err
		}
		samples, err := obs.ValidatePromText(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if samples == 0 {
			return fmt.Errorf("%s: no samples", path)
		}
		if path == "/metrics/prom" {
			fmt.Printf("prom exposition: %d samples, validated\n", samples)
		}
	}

	// Trace ring: the load must have left recent traces with stage spans.
	resp, err := client.Get(base + "/v1/trace")
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	var page struct {
		Recent []obs.Trace `json:"recent"`
		Slow   []obs.Trace `json:"slow"`
	}
	if err := json.Unmarshal(raw, &page); err != nil {
		return fmt.Errorf("/v1/trace: %w", err)
	}
	if len(page.Recent) == 0 {
		return fmt.Errorf("/v1/trace is empty after load")
	}
	simulated := false
	for _, t := range page.Recent {
		if t.SimulateMs > 0 && t.ID != "" {
			simulated = true
			break
		}
	}
	if !simulated {
		return fmt.Errorf("/v1/trace: no recent trace carries a simulate span")
	}
	fmt.Printf("trace ring: %d recent, %d pinned slow\n", len(page.Recent), len(page.Slow))
	if traceOut != "" {
		if err := os.WriteFile(traceOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote trace sample to %s\n", traceOut)
	}
	return nil
}

// getJSON fetches url and decodes the JSON body into v.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// lockstepMode is the -lockstep flag value: auto/static/on/off, with
// the boolean spellings of the flag's PR-4 ancestry still accepted —
// IsBoolFlag makes a bare `-lockstep` parse as "true" (= on), exactly
// like the flag.Bool it used to be.
type lockstepMode string

func lockstepFlagVar(name, def, usage string) *lockstepMode {
	m := lockstepMode(def)
	flag.Var(&m, name, usage)
	return &m
}

func (m *lockstepMode) String() string { return string(*m) }

func (m *lockstepMode) IsBoolFlag() bool { return true }

func (m *lockstepMode) Set(s string) error {
	switch s {
	case serve.LockstepAuto, serve.LockstepStatic, serve.LockstepOn, serve.LockstepOff:
		*m = lockstepMode(s)
	case "true":
		*m = serve.LockstepOn
	case "false":
		*m = serve.LockstepOff
	default:
		return fmt.Errorf("want auto, static, on, or off, got %q", s)
	}
	return nil
}

// modelWeights is the repeatable -model-weight flag: "name=w" pairs
// collected into the serve.Config.ModelWeights map.
type modelWeights map[string]float64

func modelWeightsFlagVar(name, usage string) *modelWeights {
	m := modelWeights{}
	flag.Var(&m, name, usage)
	return &m
}

func (m *modelWeights) String() string {
	if m == nil || len(*m) == 0 {
		return ""
	}
	parts := make([]string, 0, len(*m))
	for name, w := range *m {
		parts = append(parts, fmt.Sprintf("%s=%g", name, w))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (m *modelWeights) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=weight, got %q", s)
	}
	w, err := strconv.ParseFloat(val, 64)
	if err != nil || w <= 0 {
		return fmt.Errorf("weight for %q must be a positive number, got %q", name, val)
	}
	(*m)[name] = w
	return nil
}

func net0() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

func classifyHTTP(client *http.Client, base string, req serve.ClassifyRequest) (serve.ClassifyResult, error) {
	var res serve.ClassifyResult
	body, err := json.Marshal(req)
	if err != nil {
		return res, err
	}
	resp, err := client.Post(base+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return res, fmt.Errorf("status %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return res, json.NewDecoder(resp.Body).Decode(&res)
}
