package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"burstsnn"
	"burstsnn/internal/obs"
	"burstsnn/internal/serve"
)

// runLifecycleSelftest proves the model-lifecycle plane end to end:
//
//   - Phase A (hot swap under load): the model is re-registered with new
//     weights repeatedly while concurrent HTTP traffic flows. Every
//     request must complete (200) or shed (429) — a swap may cost
//     latency, never a 5xx — and the final registration must win.
//   - Phase B (resident bound): three models behind
//     MaxResidentModels=2. Round-robin traffic forces evict/warm cycles;
//     every prediction must stay pinned-identical to the first pass, the
//     eviction and warm counters must move, the resident gauge must hold
//     the bound, and the Prometheus page must stay valid. DELETE
//     /v1/models/{name} then removes a model for good (404 afterwards).
//   - Phase C (weighted-fair isolation): three models share a bounded
//     set of execution slots; one is saturated with background traffic.
//     A cold model's p99 under that load must stay within 2× its
//     unloaded p99 (plus a small jitter floor) — the starvation bound
//     the SFQ dispatcher exists to provide.
//
// After each phase the server shuts down; the goroutine count must
// return to its pre-test baseline at the end.
func runLifecycleSelftest(hybrid burstsnn.Hybrid, exit serve.ExitPolicy, batchKernel, lockstep string, logger *slog.Logger) error {
	fmt.Println("== snnserve lifecycle selftest ==")
	baseline := runtime.NumGoroutine()

	fmt.Println("training v1/v2 MLPs on synthetic digits...")
	set := burstsnn.SynthDigits(burstsnn.DigitsConfig{
		TrainPerClass: 30, TestPerClass: 5, Noise: 0.04, Seed: 1009,
	})
	netV1, err := burstsnn.BuildDNN(burstsnn.MLP(1, 28, 28, []int{32}, 10), burstsnn.NewRNG(7))
	if err != nil {
		return err
	}
	burstsnn.Train(netV1, set, burstsnn.NewAdam(0.01), burstsnn.TrainConfig{
		Epochs: 6, BatchSize: 32, Seed: 5,
	})
	// v2 is structurally different (wider hidden layer), so its neuron
	// count discriminates which registration a scrape reflects.
	netV2, err := burstsnn.BuildDNN(burstsnn.MLP(1, 28, 28, []int{48}, 10), burstsnn.NewRNG(11))
	if err != nil {
		return err
	}
	burstsnn.Train(netV2, set, burstsnn.NewAdam(0.01), burstsnn.TrainConfig{
		Epochs: 6, BatchSize: 32, Seed: 9,
	})

	if err := lifecyclePhaseSwap(hybrid, exit, batchKernel, lockstep, logger, set, netV1, netV2); err != nil {
		return fmt.Errorf("phase A (hot swap): %w", err)
	}
	if err := lifecyclePhaseEvict(hybrid, exit, batchKernel, lockstep, logger, set, netV1); err != nil {
		return fmt.Errorf("phase B (resident bound): %w", err)
	}
	if err := lifecyclePhaseFair(hybrid, exit, batchKernel, lockstep, logger, set, netV1); err != nil {
		return fmt.Errorf("phase C (fairness): %w", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			fmt.Printf("shutdown         : goroutines %d (baseline %d)\n", g, baseline)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shutdown leaked goroutines: %d now, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("lifecycle selftest PASS")
	return nil
}

// lifecycleServer starts a server on an ephemeral port and returns its
// base URL plus a shutdown func that drains it.
func lifecycleServer(srv *burstsnn.Server) (string, func(), error) {
	ln, err := net0()
	if err != nil {
		return "", nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveDone
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

func lifecyclePhaseSwap(hybrid burstsnn.Hybrid, exit serve.ExitPolicy, batchKernel, lockstep string, logger *slog.Logger, set *burstsnn.Set, netV1, netV2 *burstsnn.DNN) error {
	srv := burstsnn.NewServer(burstsnn.ServeConfig{
		MaxBatch:       4,
		MaxDelay:       2 * time.Millisecond,
		QueueDepth:     64,
		LockstepBatch:  lockstep,
		BatchKernel:    batchKernel,
		RequestTimeout: 30 * time.Second,
		InjectLatency:  5 * time.Millisecond,
		Logger:         logger,
	})
	regCfg := serve.ModelConfig{
		Name: "digits", Hybrid: hybrid, Steps: exit.MaxSteps, Exit: exit, Replicas: 2,
	}
	if _, err := srv.Register(regCfg, netV1, set.Train); err != nil {
		return err
	}
	base, shutdown, err := lifecycleServer(srv)
	if err != nil {
		return err
	}
	defer shutdown()
	client := &http.Client{Timeout: 60 * time.Second}

	const (
		loadWorkers  = 16
		loadRequests = 160
		swaps        = 6
	)
	fmt.Printf("phase A (swap)   : %d requests over %d workers, %d re-registrations mid-flight...\n",
		loadRequests, loadWorkers, swaps)
	type shot struct {
		status int
		err    error
	}
	shots := make([]shot, loadRequests)
	next := make(chan int)
	go func() {
		for i := 0; i < loadRequests; i++ {
			next <- i
			time.Sleep(time.Millisecond)
		}
		close(next)
	}()
	var wg sync.WaitGroup
	for w := 0; w < loadWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				img := append([]float64(nil), set.Test[i%len(set.Test)].Image...)
				img[0] = float64(i+1) / float64(2*loadRequests)
				_, status, _, err := classifyHTTPStatus(client, base, serve.ClassifyRequest{
					Model: "digits", Image: img,
				})
				shots[i] = shot{status: status, err: err}
			}
		}()
	}
	// Re-register while the load flows, alternating weights; v2 lands last.
	swapErr := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < swaps; i++ {
			net := netV1
			if i%2 == 1 {
				net = netV2
			}
			if _, e := srv.Register(regCfg, net, set.Train); e != nil {
				err = e
				break
			}
			time.Sleep(15 * time.Millisecond)
		}
		swapErr <- err
	}()
	wg.Wait()
	if err := <-swapErr; err != nil {
		return fmt.Errorf("re-register: %w", err)
	}
	completed, shed := 0, 0
	for i, sh := range shots {
		switch {
		case sh.err != nil:
			return fmt.Errorf("request %d: %w", i, sh.err)
		case sh.status == http.StatusOK:
			completed++
		case sh.status == http.StatusTooManyRequests:
			shed++
		default:
			return fmt.Errorf("request %d: status %d — a hot swap must cost latency, never a 5xx", i, sh.status)
		}
	}
	// The final registration (v2, wider hidden layer) must be the one
	// serving: its neuron count is visible on /v1/models.
	var models struct {
		Models []serve.Info `json:"models"`
	}
	if err := getJSON(client, base+"/v1/models", &models); err != nil {
		return err
	}
	wantNeurons := 0
	for _, info := range srv.Registry().List() {
		wantNeurons = info.Neurons
	}
	v2Info, err := serveInfoFor(models.Models, "digits")
	if err != nil {
		return err
	}
	if v2Info.Neurons != wantNeurons || wantNeurons == 0 {
		return fmt.Errorf("post-swap neurons = %d, want the final registration's %d", v2Info.Neurons, wantNeurons)
	}
	if _, status, _, err := classifyHTTPStatus(client, base, serve.ClassifyRequest{
		Model: "digits", Image: set.Test[0].Image,
	}); err != nil || status != http.StatusOK {
		return fmt.Errorf("post-swap classify: status %d, err %v", status, err)
	}
	fmt.Printf("phase A result   : %d completed, %d shed, zero 5xx across %d swaps\n", completed, shed, swaps)
	return nil
}

func lifecyclePhaseEvict(hybrid burstsnn.Hybrid, exit serve.ExitPolicy, batchKernel, lockstep string, logger *slog.Logger, set *burstsnn.Set, net *burstsnn.DNN) error {
	srv := burstsnn.NewServer(burstsnn.ServeConfig{
		MaxBatch:          4,
		MaxDelay:          2 * time.Millisecond,
		LockstepBatch:     lockstep,
		BatchKernel:       batchKernel,
		RequestTimeout:    30 * time.Second,
		ResponseCacheSize: -1, // every request must simulate — cache hits would mask a bad warm
		MaxResidentModels: 2,
		Logger:            logger,
	})
	names := []string{"alpha", "beta", "gamma"}
	for _, name := range names {
		if _, err := srv.Register(serve.ModelConfig{
			Name: name, Hybrid: hybrid, Steps: exit.MaxSteps, Exit: exit, Replicas: 1,
		}, net, set.Train); err != nil {
			return err
		}
	}
	base, shutdown, err := lifecycleServer(srv)
	if err != nil {
		return err
	}
	defer shutdown()
	client := &http.Client{Timeout: 60 * time.Second}

	probe := set.Test[:8]
	fmt.Printf("phase B (evict)  : 3 models behind max-resident 2, %d probes × 3 rounds...\n", len(probe))
	// Pin: first full pass over every (model, image) pair records the
	// reference predictions (warming already in play — registering gamma
	// evicted the LRU model).
	pinned := map[string][]int{}
	for _, name := range names {
		labels := make([]int, len(probe))
		for i, s := range probe {
			res, status, _, err := classifyHTTPStatus(client, base, serve.ClassifyRequest{
				Model: name, Image: s.Image,
			})
			if err != nil || status != http.StatusOK {
				return fmt.Errorf("pin %s image %d: status %d, err %v", name, i, status, err)
			}
			labels[i] = res.Prediction
		}
		pinned[name] = labels
	}
	// Round-robin rounds force evict/warm churn; predictions must hold.
	for round := 0; round < 3; round++ {
		for i := range probe {
			for _, name := range names {
				res, status, _, err := classifyHTTPStatus(client, base, serve.ClassifyRequest{
					Model: name, Image: probe[i].Image,
				})
				if err != nil || status != http.StatusOK {
					return fmt.Errorf("round %d %s image %d: status %d, err %v", round, name, i, status, err)
				}
				if res.Prediction != pinned[name][i] {
					return fmt.Errorf("round %d %s image %d: label %d, pinned %d — a warm must restore byte-identical behavior",
						round, name, i, res.Prediction, pinned[name][i])
				}
			}
		}
	}
	var metrics struct {
		Lifecycle map[string]int            `json:"lifecycle"`
		Models    map[string]serve.Snapshot `json:"models"`
	}
	if err := getJSON(client, base+"/metrics", &metrics); err != nil {
		return err
	}
	if got := metrics.Lifecycle["resident"]; got > 2 {
		return fmt.Errorf("resident gauge %d exceeds the max-resident bound 2", got)
	}
	var evictions, warms int64
	evictedSeen := false
	for _, snap := range metrics.Models {
		evictions += snap.Evictions
		warms += snap.Warms
		if snap.State == serve.StateEvicted {
			evictedSeen = true
		}
	}
	if evictions == 0 || warms == 0 {
		return fmt.Errorf("evictions=%d warms=%d after round-robin churn — both must move", evictions, warms)
	}
	if len(metrics.Models) != 3 {
		return fmt.Errorf("/metrics shows %d models, want all 3 (evicted included)", len(metrics.Models))
	}
	if !evictedSeen {
		return fmt.Errorf(`no model reports state "evicted" in /metrics under the resident bound`)
	}
	if err := validatePromPage(client, base); err != nil {
		return err
	}
	// Unregister for good: gamma must 404 afterwards and vanish from the
	// model list; deleting it again must 404 too.
	if status, err := deleteModel(client, base, "gamma", false); err != nil || status != http.StatusOK {
		return fmt.Errorf("DELETE gamma: status %d, err %v", status, err)
	}
	if _, status, _, _ := classifyHTTPStatus(client, base, serve.ClassifyRequest{
		Model: "gamma", Image: probe[0].Image,
	}); status != http.StatusNotFound {
		return fmt.Errorf("classify on unregistered gamma: status %d, want 404", status)
	}
	if status, err := deleteModel(client, base, "gamma", false); err != nil || status != http.StatusNotFound {
		return fmt.Errorf("second DELETE gamma: status %d, want 404 (err %v)", status, err)
	}
	fmt.Printf("phase B result   : %d evictions, %d warms, predictions pinned, prom page valid\n", evictions, warms)
	return nil
}

func lifecyclePhaseFair(hybrid burstsnn.Hybrid, exit serve.ExitPolicy, batchKernel, lockstep string, logger *slog.Logger, set *burstsnn.Set, net *burstsnn.DNN) error {
	// Two execution slots across three models with injected per-batch
	// latency: without fair scheduling, the saturated model's backlog
	// would monopolize the slots and starve the cold models.
	srv := burstsnn.NewServer(burstsnn.ServeConfig{
		MaxBatch:          4,
		MaxDelay:          2 * time.Millisecond,
		QueueDepth:        64,
		LockstepBatch:     lockstep,
		BatchKernel:       batchKernel,
		RequestTimeout:    30 * time.Second,
		ResponseCacheSize: -1,
		InjectLatency:     10 * time.Millisecond,
		FairSlots:         2,
		ModelWeights:      map[string]float64{"hot": 1, "cold1": 1, "cold2": 1},
		Logger:            logger,
	})
	for _, name := range []string{"hot", "cold1", "cold2"} {
		if _, err := srv.Register(serve.ModelConfig{
			Name: name, Hybrid: hybrid, Steps: exit.MaxSteps, Exit: exit, Replicas: 2,
		}, net, set.Train); err != nil {
			return err
		}
	}
	base, shutdown, err := lifecycleServer(srv)
	if err != nil {
		return err
	}
	defer shutdown()
	client := &http.Client{Timeout: 60 * time.Second}

	const probes = 24
	probeModel := func(model string, salt float64) ([]float64, error) {
		lat := make([]float64, 0, probes)
		for i := 0; i < probes; i++ {
			img := append([]float64(nil), set.Test[i%len(set.Test)].Image...)
			img[0] = salt + float64(i+1)/float64(4*probes)
			t0 := time.Now()
			_, status, _, err := classifyHTTPStatus(client, base, serve.ClassifyRequest{
				Model: model, Image: img,
			})
			if err != nil || status != http.StatusOK {
				return nil, fmt.Errorf("probe %s %d: status %d, err %v", model, i, status, err)
			}
			lat = append(lat, time.Since(t0).Seconds())
		}
		return lat, nil
	}

	fmt.Printf("phase C (fair)   : unloaded baseline, then %d probes per cold model under hot saturation...\n", probes)
	unloaded1, err := probeModel("cold1", 0.30)
	if err != nil {
		return err
	}
	unloaded2, err := probeModel("cold2", 0.40)
	if err != nil {
		return err
	}

	// Saturate hot with continuous unique-image background traffic.
	stop := make(chan struct{})
	var floodWG sync.WaitGroup
	for w := 0; w < 12; w++ {
		floodWG.Add(1)
		go func(w int) {
			defer floodWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				img := append([]float64(nil), set.Test[i%len(set.Test)].Image...)
				img[0] = 0.5 + float64(w)/100 + float64(i%97)/1000
				_, _, _, _ = classifyHTTPStatus(client, base, serve.ClassifyRequest{
					Model: "hot", Image: img,
				})
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond) // let the backlog build
	loaded1, err := probeModel("cold1", 0.60)
	if err != nil {
		close(stop)
		floodWG.Wait()
		return err
	}
	loaded2, err := probeModel("cold2", 0.70)
	close(stop)
	floodWG.Wait()
	if err != nil {
		return err
	}

	// The ISSUE bound: cold p99 under hot saturation within 2× unloaded
	// p99. A small absolute floor absorbs scheduler jitter on loaded CI
	// machines without weakening the starvation signal.
	const jitterFloor = 0.025 // seconds
	for _, c := range []struct {
		name             string
		unloaded, loaded []float64
	}{{"cold1", unloaded1, loaded1}, {"cold2", unloaded2, loaded2}} {
		pu, pl := p99(c.unloaded), p99(c.loaded)
		fmt.Printf("phase C %-6s   : p99 unloaded %.1fms, loaded %.1fms\n", c.name, pu*1e3, pl*1e3)
		if pl > 2*pu+jitterFloor {
			return fmt.Errorf("%s p99 %.1fms under load exceeds 2× unloaded p99 %.1fms (+%.0fms floor) — fair isolation failed",
				c.name, pl*1e3, pu*1e3, jitterFloor*1e3)
		}
	}

	var metrics struct {
		Models map[string]serve.Snapshot `json:"models"`
	}
	if err := getJSON(client, base+"/metrics", &metrics); err != nil {
		return err
	}
	for _, name := range []string{"hot", "cold1", "cold2"} {
		snap, ok := metrics.Models[name]
		if !ok || snap.FairGrants == 0 {
			return fmt.Errorf("%s: fairGrants = 0 — the fair dispatcher never granted it a slot", name)
		}
		if snap.FairShare <= 0 {
			return fmt.Errorf("%s: fairShare = %v, want > 0", name, snap.FairShare)
		}
	}
	if err := validatePromPage(client, base); err != nil {
		return err
	}
	return nil
}

// p99 returns the 99th-percentile (nearest-rank) of the samples.
func p99(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := (99*len(s) + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

// validatePromPage scrapes /metrics/prom and runs the strict exposition
// validator over it.
func validatePromPage(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics/prom")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := obs.ValidatePromText(resp.Body); err != nil {
		return fmt.Errorf("prom page invalid: %w", err)
	}
	return nil
}

// deleteModel issues DELETE /v1/models/{name} (mode=evict optional) and
// returns the HTTP status.
func deleteModel(client *http.Client, base, name string, evict bool) (int, error) {
	url := base + "/v1/models/" + name
	if evict {
		url += "?mode=evict"
	}
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, nil
}

// serveInfoFor picks one model's Info out of a /v1/models listing.
func serveInfoFor(infos []serve.Info, name string) (serve.Info, error) {
	for _, info := range infos {
		if info.Name == name {
			return info, nil
		}
	}
	return serve.Info{}, fmt.Errorf("model %q missing from /v1/models", name)
}
