package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"burstsnn/internal/benchkit"
	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/core"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/mathx"
	"burstsnn/internal/serve"
)

// The hot-path benchmark mode (-hotpath FILE) measures the simulator and
// serving fast paths against the retained reference implementations and
// writes a machine-readable artifact, so CI records a perf trajectory
// run over run instead of throwing benchmark output away.

type hotpathBench struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iters"`
	NsPerOp     float64            `json:"nsPerOp"`
	AllocsPerOp int64              `json:"allocsPerOp"`
	BytesPerOp  int64              `json:"bytesPerOp"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type hotpathArtifact struct {
	Schema     string         `json:"schema"` // bump on layout changes
	When       string         `json:"when"`
	GoVersion  string         `json:"goVersion"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	CPUs       int            `json:"cpus"`
	Benchmarks []hotpathBench `json:"benchmarks"`
	// Speedups maps a benchmark family to nsPerOp(ref)/nsPerOp(fast).
	Speedups map[string]float64 `json:"speedups"`
}

func record(name string, r testing.BenchmarkResult) hotpathBench {
	b := hotpathBench{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		b.Metrics = map[string]float64{}
		for k, v := range r.Extra {
			b.Metrics[k] = v
		}
	}
	return b
}

// hotpathModel trains the small conv-bearing LeNetMini used by the
// end-to-end benches (same recipe as the bench_test micro model).
func hotpathModel() (*dnn.Network, *dataset.Set, error) {
	cfg := dataset.DefaultTexturesConfig()
	cfg.TrainPerClass, cfg.TestPerClass = 40, 8
	set := dataset.SynthTextures(cfg)
	net, err := dnn.Build(dnn.LeNetMini(3, 16, 16, 10), mathx.NewRNG(1))
	if err != nil {
		return nil, nil, err
	}
	dnn.Train(net, set, dnn.NewAdam(0.005), dnn.TrainConfig{Epochs: 3, BatchSize: 32, Seed: 2})
	return net, set, nil
}

func runHotpath(outPath string) error {
	art := hotpathArtifact{
		Schema:    "burstsnn/bench-hotpath/v1",
		When:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Speedups:  map[string]float64{},
	}
	add := func(name string, fn func(b *testing.B)) hotpathBench {
		fmt.Fprintf(os.Stderr, "hotpath: %s...\n", name)
		res := record(name, testing.Benchmark(fn))
		art.Benchmarks = append(art.Benchmarks, res)
		return res
	}
	pair := func(family string, fast, ref hotpathBench) {
		if fast.NsPerOp > 0 {
			art.Speedups[family] = ref.NsPerOp / fast.NsPerOp
		}
	}

	// Per-layer micro-benchmarks on the canonical benchkit workloads
	// (identical to the go-test Hotpath benchmarks).
	stepBench := func(in []coding.Event, step func(int, float64, []coding.Event) []coding.Event) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				step(i, 1, in)
			}
		}
	}
	convLayer, convIn := benchkit.HotpathConv()
	pair("conv-step",
		add("conv-step/fast", stepBench(convIn, convLayer.Step)),
		add("conv-step/ref", stepBench(convIn, convLayer.StepSlow)))

	denseLayer, denseIn := benchkit.HotpathDense()
	pair("dense-step",
		add("dense-step/fast", stepBench(denseIn, denseLayer.Step)),
		add("dense-step/ref", stepBench(denseIn, denseLayer.StepSlow)))

	// End-to-end conv-bearing model: train once, convert per hybrid.
	net, set, err := hotpathModel()
	if err != nil {
		return err
	}
	conv, err := convert.Convert(net, set.Train, convert.DefaultOptions(coding.Phase, coding.Burst))
	if err != nil {
		return err
	}
	img := set.Test[0].Image
	runBench := func(ref bool) func(b *testing.B) {
		return func(b *testing.B) {
			conv.Net.Ref = ref
			defer func() { conv.Net.Ref = false }()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				conv.Net.Run(img, 64)
			}
		}
	}
	pair("snn-run",
		add("snn-run/fast", runBench(false)),
		add("snn-run/ref", runBench(true)))

	// The early-exit engine on one replica — allocsPerOp must be 0.
	policy := serve.DefaultExitPolicy(96)
	serve.Classify(conv.Net, img, policy)
	classify := add("serve-classify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serve.Classify(conv.Net, img, policy)
		}
	})
	if classify.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "hotpath: WARNING: serve-classify allocates %d objects/op, want 0\n",
			classify.AllocsPerOp)
	}

	// End-to-end serving throughput: batching queue + replica pool +
	// early exit under parallel load.
	srv := serve.New(serve.Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	model, err := srv.Register(serve.ModelConfig{
		Name:   "hotpath",
		Hybrid: core.NewHybrid(coding.Phase, coding.Burst),
		Steps:  96,
	}, net, set.Train)
	if err != nil {
		return err
	}
	defer srv.Shutdown(context.Background())
	ctx := context.Background()
	add("serving-throughput", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				s := set.Test[i%len(set.Test)]
				if _, err := srv.Classify(ctx, serve.ClassifyRequest{Model: "hotpath", Image: s.Image}); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
		snap := model.Metrics().Snapshot()
		b.ReportMetric(snap.MeanSteps, "steps/req")
		b.ReportMetric(snap.EarlyExitRate*100, "early-exit%")
		// Per-stage mean latencies from the telemetry plane ride along in
		// the artifact, so the trajectory records where serving time goes,
		// not just how much of it there is.
		for _, st := range []string{"queue", "simulate", "readout"} {
			if ss, ok := snap.Stages[st]; ok && ss.Count > 0 {
				b.ReportMetric(ss.Mean, st+"-ms")
			}
		}
	})

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hotpath: artifact written to %s\n", outPath)
	for fam, s := range art.Speedups {
		fmt.Fprintf(os.Stderr, "hotpath: %-12s %.2fx\n", fam, s)
	}
	return nil
}

// compareHotpath is the perf-trajectory regression gate: it reads a
// previous BENCH_hotpath.json and the one just written and fails when a
// gated benchmark's ns/op regressed by more than tolerance (fractional,
// e.g. 0.20 = 20%). Reference-path benchmarks are informational and the
// parallel serving-throughput benchmark is too machine-sensitive, so
// only the fast-path/serve benchmarks gate.
func compareHotpath(prevPath, newPath string, tolerance float64) error {
	load := func(path string) (map[string]hotpathBench, string, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, "", err
		}
		var art hotpathArtifact
		if err := json.Unmarshal(data, &art); err != nil {
			return nil, "", fmt.Errorf("%s: %w", path, err)
		}
		m := map[string]hotpathBench{}
		for _, b := range art.Benchmarks {
			m[b.Name] = b
		}
		return m, art.Schema, nil
	}
	prev, prevSchema, err := load(prevPath)
	if err != nil {
		return err
	}
	cur, curSchema, err := load(newPath)
	if err != nil {
		return err
	}
	if prevSchema != curSchema {
		fmt.Fprintf(os.Stderr, "hotpath: schema changed (%s -> %s), skipping comparison\n", prevSchema, curSchema)
		return nil
	}
	gated := func(name string) bool {
		return !strings.HasSuffix(name, "/ref") && name != "serving-throughput"
	}
	var failures []string
	for name, c := range cur {
		p, ok := prev[name]
		if !ok || !gated(name) || p.NsPerOp <= 0 {
			continue
		}
		ratio := c.NsPerOp/p.NsPerOp - 1
		mark := " "
		if ratio > tolerance {
			mark = "!"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", name, p.NsPerOp, c.NsPerOp, ratio*100))
		}
		fmt.Fprintf(os.Stderr, "hotpath:%s %-18s %+.1f%% vs previous\n", mark, name, ratio*100)
	}
	if len(failures) > 0 {
		return fmt.Errorf("hot-path regression beyond %.0f%%:\n  %s", tolerance*100, strings.Join(failures, "\n  "))
	}
	return nil
}
