package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"burstsnn/internal/benchkit"
	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/core"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/mathx"
	"burstsnn/internal/serve"
)

// The hot-path benchmark mode (-hotpath FILE) measures the simulator and
// serving fast paths against the retained reference implementations and
// writes a machine-readable artifact, so CI records a perf trajectory
// run over run instead of throwing benchmark output away.

type hotpathBench struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iters"`
	NsPerOp     float64            `json:"nsPerOp"`
	AllocsPerOp int64              `json:"allocsPerOp"`
	BytesPerOp  int64              `json:"bytesPerOp"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type hotpathArtifact struct {
	Schema     string         `json:"schema"` // bump on layout changes
	When       string         `json:"when"`
	GoVersion  string         `json:"goVersion"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	CPUs       int            `json:"cpus"`
	Benchmarks []hotpathBench `json:"benchmarks"`
	// Speedups maps a benchmark family to nsPerOp(ref)/nsPerOp(fast).
	Speedups map[string]float64 `json:"speedups"`
}

func record(name string, r testing.BenchmarkResult) hotpathBench {
	b := hotpathBench{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		b.Metrics = map[string]float64{}
		for k, v := range r.Extra {
			b.Metrics[k] = v
		}
	}
	return b
}

// hotpathModel trains the small conv-bearing LeNetMini used by the
// end-to-end benches (same recipe as the bench_test micro model).
func hotpathModel() (*dnn.Network, *dataset.Set, error) {
	cfg := dataset.DefaultTexturesConfig()
	cfg.TrainPerClass, cfg.TestPerClass = 40, 8
	set := dataset.SynthTextures(cfg)
	net, err := dnn.Build(dnn.LeNetMini(3, 16, 16, 10), mathx.NewRNG(1))
	if err != nil {
		return nil, nil, err
	}
	dnn.Train(net, set, dnn.NewAdam(0.005), dnn.TrainConfig{Epochs: 3, BatchSize: 32, Seed: 2})
	return net, set, nil
}

func runHotpath(outPath string) error {
	art := hotpathArtifact{
		Schema:    "burstsnn/bench-hotpath/v1",
		When:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Speedups:  map[string]float64{},
	}
	add := func(name string, fn func(b *testing.B)) hotpathBench {
		fmt.Fprintf(os.Stderr, "hotpath: %s...\n", name)
		res := record(name, testing.Benchmark(fn))
		art.Benchmarks = append(art.Benchmarks, res)
		return res
	}
	pair := func(family string, fast, ref hotpathBench) {
		if fast.NsPerOp > 0 {
			art.Speedups[family] = ref.NsPerOp / fast.NsPerOp
		}
	}

	// Per-layer micro-benchmarks on the canonical benchkit workloads
	// (identical to the go-test Hotpath benchmarks).
	stepBench := func(in []coding.Event, step func(int, float64, []coding.Event) []coding.Event) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				step(i, 1, in)
			}
		}
	}
	convLayer, convIn := benchkit.HotpathConv()
	pair("conv-step",
		add("conv-step/fast", stepBench(convIn, convLayer.Step)),
		add("conv-step/ref", stepBench(convIn, convLayer.StepSlow)))

	denseLayer, denseIn := benchkit.HotpathDense()
	pair("dense-step",
		add("dense-step/fast", stepBench(denseIn, denseLayer.Step)),
		add("dense-step/ref", stepBench(denseIn, denseLayer.StepSlow)))

	// End-to-end conv-bearing model: train once, convert per hybrid.
	net, set, err := hotpathModel()
	if err != nil {
		return err
	}
	conv, err := convert.Convert(net, set.Train, convert.DefaultOptions(coding.Phase, coding.Burst))
	if err != nil {
		return err
	}
	img := set.Test[0].Image
	runBench := func(ref bool) func(b *testing.B) {
		return func(b *testing.B) {
			conv.Net.Ref = ref
			defer func() { conv.Net.Ref = false }()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				conv.Net.Run(img, 64)
			}
		}
	}
	pair("snn-run",
		add("snn-run/fast", runBench(false)),
		add("snn-run/ref", runBench(true)))

	// The early-exit engine on one replica — allocsPerOp must be 0.
	policy := serve.DefaultExitPolicy(96)
	serve.Classify(conv.Net, img, policy)
	classify := add("serve-classify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serve.Classify(conv.Net, img, policy)
		}
	})
	if classify.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "hotpath: WARNING: serve-classify allocates %d objects/op, want 0\n",
			classify.AllocsPerOp)
	}

	// End-to-end serving throughput: batching queue + replica pool +
	// early exit under parallel load.
	srv := serve.New(serve.Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	model, err := srv.Register(serve.ModelConfig{
		Name:   "hotpath",
		Hybrid: core.NewHybrid(coding.Phase, coding.Burst),
		Steps:  96,
	}, net, set.Train)
	if err != nil {
		return err
	}
	defer srv.Shutdown(context.Background())
	ctx := context.Background()
	add("serving-throughput", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				s := set.Test[i%len(set.Test)]
				if _, err := srv.Classify(ctx, serve.ClassifyRequest{Model: "hotpath", Image: s.Image}); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
		snap := model.Metrics().Snapshot()
		b.ReportMetric(snap.MeanSteps, "steps/req")
		b.ReportMetric(snap.EarlyExitRate*100, "early-exit%")
	})

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hotpath: artifact written to %s\n", outPath)
	for fam, s := range art.Speedups {
		fmt.Fprintf(os.Stderr, "hotpath: %-12s %.2fx\n", fam, s)
	}
	return nil
}
