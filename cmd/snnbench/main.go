// Command snnbench regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	snnbench -run all                 # every table and figure
//	snnbench -run table1,fig4         # a subset
//	snnbench -run table2 -steps 384   # scale the budget up
//
// The hot-path mode skips the exhibits and instead benchmarks the
// simulator/serving fast paths against the retained reference paths,
// writing a machine-readable perf-trajectory artifact:
//
//	snnbench -hotpath BENCH_hotpath.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"burstsnn/internal/experiments"
	"burstsnn/internal/kernels"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated list: fig1,fig2,table1,fig3,fig4,table2,fig5,chip,ablations or all")
		steps     = flag.Int("steps", 192, "simulation time steps per image")
		images    = flag.Int("images", 40, "test images per configuration")
		psteps    = flag.Int("pattern-steps", 128, "steps per image for spike-pattern recordings")
		pimgs     = flag.Int("pattern-images", 3, "images per spike-pattern recording")
		dir       = flag.String("dir", "", "model cache directory (default: system temp)")
		tiny      = flag.Bool("tiny", false, "use the reduced test-scale recipes")
		out       = flag.String("o", "", "also write the report to this file")
		csvDir    = flag.String("csv", "", "also export per-exhibit CSV files into this directory")
		hotpath   = flag.String("hotpath", "", "run the hot-path benchmarks and write the JSON artifact to this path (skips the exhibits)")
		hotPrev   = flag.String("hotpath-prev", "", "previous BENCH_hotpath.json to gate against after -hotpath (exit nonzero on regression)")
		hotTol    = flag.Float64("hotpath-tolerance", 0.20, "allowed fractional ns/op regression vs -hotpath-prev")
		batchOut  = flag.String("batch", "", "run the batched-throughput sweep (every kernel dispatch tier this machine supports) and write the JSON artifact to this path (skips the exhibits)")
		batchPrev = flag.String("batch-prev", "", "previous BENCH_batch.json to gate against after -batch (like-for-like tiers only; exit nonzero on regression)")
		batchTol  = flag.Float64("batch-tolerance", 0.25, "allowed fractional lockstep img/s regression vs -batch-prev")
		fleetOut  = flag.String("fleet", "", "run the fleet saturation sweep (shard counts 1..NumCPU at fixed offered load) and write the JSON artifact to this path (skips the exhibits)")
		fleetPrev = flag.String("fleet-prev", "", "previous BENCH_fleet.json to gate against after -fleet (like-for-like shard counts only; exit nonzero on regression)")
		fleetTol  = flag.Float64("fleet-tolerance", 0.30, "allowed fractional saturation img/s regression vs -fleet-prev")
		probe     = flag.String("probe-level", "", "exit 0 iff the named kernel dispatch tier (purego, sse, avx2) is available on this machine and build, else 1 (CI capability gating)")
	)
	flag.Parse()

	if *probe != "" {
		avail := kernels.Available()
		for _, lv := range avail {
			if lv == *probe {
				fmt.Printf("level %s available (ladder: %s, detected %s)\n",
					*probe, strings.Join(avail, " "), kernels.DetectedLevel())
				return
			}
		}
		fmt.Fprintf(os.Stderr, "snnbench: level %q unavailable (ladder: %s)\n", *probe, strings.Join(avail, " "))
		os.Exit(1)
	}

	if *hotpath != "" {
		if err := runHotpath(*hotpath); err != nil {
			fmt.Fprintf(os.Stderr, "snnbench: hotpath: %v\n", err)
			os.Exit(1)
		}
		if *hotPrev != "" {
			if err := compareHotpath(*hotPrev, *hotpath, *hotTol); err != nil {
				fmt.Fprintf(os.Stderr, "snnbench: hotpath gate: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if *batchOut != "" {
		if err := runBatchBench(*batchOut); err != nil {
			fmt.Fprintf(os.Stderr, "snnbench: batch: %v\n", err)
			os.Exit(1)
		}
		if *batchPrev != "" {
			if err := compareBatch(*batchPrev, *batchOut, *batchTol); err != nil {
				fmt.Fprintf(os.Stderr, "snnbench: batch gate: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if *fleetOut != "" {
		if err := runFleetBench(*fleetOut); err != nil {
			fmt.Fprintf(os.Stderr, "snnbench: fleet: %v\n", err)
			os.Exit(1)
		}
		if *fleetPrev != "" {
			if err := compareFleet(*fleetPrev, *fleetOut, *fleetTol); err != nil {
				fmt.Fprintf(os.Stderr, "snnbench: fleet gate: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	settings := experiments.DefaultSettings()
	settings.Log = os.Stderr
	settings.Steps = *steps
	settings.Images = *images
	settings.PatternSteps = *psteps
	settings.PatternImages = *pimgs
	settings.Tiny = *tiny
	if *dir != "" {
		settings.ModelDir = *dir
	}
	lab := experiments.NewLab(settings)

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]

	var report strings.Builder
	emit := func(s string) {
		fmt.Print(s)
		report.WriteString(s)
	}

	writeCSV := func(name string, export func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "snnbench: %v\n", err)
			return
		}
		path := *csvDir + "/" + name + ".csv"
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snnbench: %v\n", err)
			return
		}
		defer f.Close()
		if err := export(f); err != nil {
			fmt.Fprintf(os.Stderr, "snnbench: writing %s: %v\n", path, err)
		}
	}

	type experiment struct {
		name string
		run  func() (string, error)
	}
	exps := []experiment{
		{"fig1", func() (string, error) {
			return experiments.Fig1(0.7, 64).Render(), nil
		}},
		{"fig2", func() (string, error) {
			r, err := experiments.Fig2(lab)
			if err != nil {
				return "", err
			}
			writeCSV("fig2", func(f *os.File) error { return r.WriteCSV(f) })
			return r.Render(), nil
		}},
		{"table1", func() (string, error) {
			r, err := experiments.Table1(lab)
			if err != nil {
				return "", err
			}
			writeCSV("table1", func(f *os.File) error { return r.WriteCSV(f) })
			return r.Render(), nil
		}},
		{"fig3", func() (string, error) {
			r, err := experiments.Fig3(lab)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig4", func() (string, error) {
			r, err := experiments.Fig4(lab)
			if err != nil {
				return "", err
			}
			writeCSV("fig4", func(f *os.File) error { return r.WriteCSV(f) })
			return r.Render(), nil
		}},
		{"table2", func() (string, error) {
			r, err := experiments.Table2(lab)
			if err != nil {
				return "", err
			}
			writeCSV("table2", func(f *os.File) error { return r.WriteCSV(f) })
			return r.Render(), nil
		}},
		{"fig5", func() (string, error) {
			r, err := experiments.Fig5(lab)
			if err != nil {
				return "", err
			}
			writeCSV("fig5", func(f *os.File) error { return r.WriteCSV(f) })
			return r.Render(), nil
		}},
		{"chip", func() (string, error) {
			r, err := experiments.ChipEnergy(lab)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"ablations", func() (string, error) {
			var sb strings.Builder
			beta, err := experiments.AblationBeta(lab)
			if err != nil {
				return "", err
			}
			sb.WriteString(beta.Render() + "\n")
			norm, err := experiments.AblationNorm(lab)
			if err != nil {
				return "", err
			}
			sb.WriteString(norm.Render() + "\n")
			ttfs, err := experiments.ExtensionTTFS(lab)
			if err != nil {
				return "", err
			}
			sb.WriteString(ttfs.Render() + "\n")
			leak, err := experiments.ExtensionLeak(lab)
			if err != nil {
				return "", err
			}
			sb.WriteString(leak.Render())
			return sb.String(), nil
		}},
	}

	ran := 0
	for _, e := range exps {
		if !all && !want[e.name] {
			continue
		}
		s, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "snnbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		emit("## " + e.name + "\n\n" + s + "\n")
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "snnbench: nothing selected by -run=%q\n", *run)
		os.Exit(2)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snnbench: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	}
}
