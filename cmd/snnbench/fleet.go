package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/core"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/fleet"
	"burstsnn/internal/mathx"
	"burstsnn/internal/serve"
)

// The fleet benchmark mode (-fleet FILE) measures multi-core saturation
// through the sharded fleet tier: the same fixed offered load — a
// closed loop of concurrent clients cycling distinct images — is driven
// through in-process fleets of increasing shard count (powers of two,
// 1 → NumCPU, always at least {1, 2}), and each point records the
// saturation throughput and client-observed latency percentiles. The
// shards=1 point doubles as the non-fleet baseline (single-shard
// routing is an invariant pass-through), so speedupVs1 is the scale-out
// factor the fleet tier actually buys on this machine. On a single-core
// runner the sweep still exercises the multi-shard routing plane, but
// no speedup is expected (or gated) there — the ≥1.6×@4 acceptance
// number is a multi-core CI measurement.
//
// Bench shards run with the response cache disabled and one replica
// each, so every request simulates and added shards add compute, not
// cache capacity; the -fleet-prev gate compares like-for-like shard
// counts only.

type fleetPoint struct {
	Shards int `json:"shards"`
	// ImagesPerSec is completed requests over the measure window; the
	// percentiles are client-observed end-to-end latency.
	ImagesPerSec float64 `json:"imagesPerSec"`
	P50Ms        float64 `json:"p50Ms"`
	P99Ms        float64 `json:"p99Ms"`
	Completed    int64   `json:"completed"`
	Shed         int64   `json:"shed"`
	// SpeedupVs1 is this point's throughput over the shards=1 point's.
	SpeedupVs1 float64 `json:"speedupVs1"`
}

type fleetArtifact struct {
	Schema    string `json:"schema"`
	When      string `json:"when"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Model     string `json:"model"`
	// Clients is the fixed closed-loop offered load every point sees;
	// MeasureSec the per-point measure window after warmup.
	Clients    int          `json:"clients"`
	MeasureSec float64      `json:"measureSec"`
	Points     []fleetPoint `json:"points"`
}

// fleetShardCounts is the sweep: powers of two from 1 up to NumCPU,
// floored at {1, 2} so single-core machines still measure the
// multi-shard routing plane.
func fleetShardCounts() []int {
	counts := []int{1}
	for n := 2; n <= runtime.NumCPU(); n *= 2 {
		counts = append(counts, n)
	}
	if len(counts) == 1 {
		counts = append(counts, 2)
	}
	return counts
}

func runFleetBench(outPath string) error {
	fmt.Fprintln(os.Stderr, "fleet: training MLP on synthetic digits...")
	set := dataset.SynthDigits(dataset.DigitsConfig{
		TrainPerClass: 30, TestPerClass: 5, Noise: 0.04, Seed: 1009,
	})
	net, err := dnn.Build(dnn.MLP(1, 28, 28, []int{32}, 10), mathx.NewRNG(7))
	if err != nil {
		return err
	}
	dnn.Train(net, set, dnn.NewAdam(0.01), dnn.TrainConfig{
		Epochs: 8, BatchSize: 32, Seed: 5,
	})

	// 512 distinct images cycled by every point: unique enough that the
	// batcher's in-window dedupe cannot collapse the load.
	images := make([][]float64, 512)
	for i := range images {
		rng := mathx.NewRNG(uint64(i)*2654435761 + 99)
		img := make([]float64, 28*28)
		for p := range img {
			img[p] = rng.Float64()
		}
		images[i] = img
	}

	clients := 4 * runtime.NumCPU()
	if clients < 8 {
		clients = 8
	}
	const (
		warmup  = 300 * time.Millisecond
		measure = 1500 * time.Millisecond
	)
	art := fleetArtifact{
		Schema:     "burstsnn/bench-fleet/v1",
		When:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Model:      "MLP-784-32-10/phase-burst",
		Clients:    clients,
		MeasureSec: measure.Seconds(),
	}
	fmt.Fprintf(os.Stderr, "fleet: sweep %v shards, %d closed-loop clients, %.1fs measure/point\n",
		fleetShardCounts(), clients, measure.Seconds())

	for _, shards := range fleetShardCounts() {
		pt, err := measureFleetPoint(net, set, images, shards, clients, warmup, measure)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		if len(art.Points) > 0 && art.Points[0].ImagesPerSec > 0 {
			pt.SpeedupVs1 = pt.ImagesPerSec / art.Points[0].ImagesPerSec
		} else if pt.Shards == 1 {
			pt.SpeedupVs1 = 1
		}
		art.Points = append(art.Points, pt)
		fmt.Fprintf(os.Stderr, "fleet: shards=%-2d %8.1f img/s  p50 %6.2fms  p99 %6.2fms  (%d done, %d shed, %.2fx vs 1)\n",
			pt.Shards, pt.ImagesPerSec, pt.P50Ms, pt.P99Ms, pt.Completed, pt.Shed, pt.SpeedupVs1)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fleet: wrote %s\n", outPath)
	return nil
}

// measureFleetPoint drives the fixed offered load through one shard
// count and measures saturation throughput + latency percentiles.
func measureFleetPoint(net *dnn.Network, set *dataset.Set, images [][]float64,
	shards, clients int, warmup, measure time.Duration) (fleetPoint, error) {
	factory := func(shard int) (fleet.Worker, error) {
		srv := serve.New(serve.Config{
			ResponseCacheSize: -1, // every request simulates
			MaxDelay:          -1, // dispatch on drain: measure compute, not the forming timer
		})
		_, err := srv.Register(serve.ModelConfig{
			Name:        "digits",
			Hybrid:      core.NewHybrid(coding.Phase, coding.Burst),
			Steps:       96,
			Replicas:    1,
			NormSamples: 32,
		}, net, set.Train)
		if err != nil {
			return nil, err
		}
		return fleet.NewInprocWorker(srv), nil
	}
	f, err := fleet.New(fleet.Config{Shards: shards, HealthInterval: -1}, factory)
	if err != nil {
		return fleetPoint{}, err
	}
	defer func() { _ = f.Close() }()

	var (
		recording atomic.Bool
		completed atomic.Int64
		shed      atomic.Int64
		latMu     sync.Mutex
		latencies []float64 // ms, measure window only
	)
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var seq atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []float64
			for {
				select {
				case <-stop:
					latMu.Lock()
					latencies = append(latencies, local...)
					latMu.Unlock()
					return
				default:
				}
				img := images[int(seq.Add(1))%len(images)]
				began := time.Now()
				_, err := f.Classify(ctx, serve.ClassifyRequest{Model: "digits", Image: img})
				if !recording.Load() {
					continue
				}
				switch {
				case err == nil:
					completed.Add(1)
					local = append(local, float64(time.Since(began).Microseconds())/1e3)
				default:
					// Saturation sheds are part of the operating point, not
					// a failure; anything else would surface in the counts.
					shed.Add(1)
				}
			}
		}()
	}
	time.Sleep(warmup)
	recording.Store(true)
	start := time.Now()
	time.Sleep(measure)
	recording.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	pt := fleetPoint{
		Shards:    shards,
		Completed: completed.Load(),
		Shed:      shed.Load(),
	}
	pt.ImagesPerSec = float64(pt.Completed) / elapsed.Seconds()
	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		pt.P50Ms = latencies[n/2]
		pt.P99Ms = latencies[min(n-1, n*99/100)]
	}
	return pt, nil
}

// compareFleet is the fleet-saturation regression gate: like-for-like
// shard counts only, judged on saturation throughput. A schema change
// skips the comparison (baseline re-record).
func compareFleet(prevPath, newPath string, tolerance float64) error {
	load := func(path string) (*fleetArtifact, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var art fleetArtifact
		if err := json.Unmarshal(data, &art); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &art, nil
	}
	prev, err := load(prevPath)
	if err != nil {
		return err
	}
	cur, err := load(newPath)
	if err != nil {
		return err
	}
	if prev.Schema != cur.Schema {
		fmt.Fprintf(os.Stderr, "fleet: schema changed (%s -> %s), skipping comparison\n", prev.Schema, cur.Schema)
		return nil
	}
	prevPts := map[int]fleetPoint{}
	for _, p := range prev.Points {
		prevPts[p.Shards] = p
	}
	var failures []string
	for _, c := range cur.Points {
		p, ok := prevPts[c.Shards]
		if !ok {
			fmt.Fprintf(os.Stderr, "fleet:  shards=%-2d no like-for-like previous point, skipping\n", c.Shards)
			continue
		}
		if p.ImagesPerSec <= 0 {
			continue
		}
		ratio := c.ImagesPerSec/p.ImagesPerSec - 1
		mark := " "
		if -ratio > tolerance {
			mark = "!"
			failures = append(failures, fmt.Sprintf("shards=%d: %.0f -> %.0f img/s (%+.1f%%)",
				c.Shards, p.ImagesPerSec, c.ImagesPerSec, ratio*100))
		}
		fmt.Fprintf(os.Stderr, "fleet:%s shards=%-2d %+.1f%% img/s vs previous\n", mark, c.Shards, ratio*100)
	}
	if len(failures) > 0 {
		return fmt.Errorf("fleet-saturation regression beyond %.0f%%:\n  %s", tolerance*100, strings.Join(failures, "\n  "))
	}
	return nil
}
