package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/serve"
	"burstsnn/internal/snn"
)

// The batch benchmark mode (-batch FILE) measures the lockstep batch
// simulator against back-to-back sequential classification on the
// conv-bearing hot-path model, across a batch-size sweep, and writes a
// machine-readable artifact so the perf trajectory captures batching —
// not just single-image latency.

type batchPoint struct {
	B int `json:"b"`
	// SeqImagesPerSec is the back-to-back baseline (one replica classifies
	// the batch's images sequentially); LockstepImagesPerSec runs the same
	// images through ClassifyBatch on the same weights. Results are
	// bit-identical between the two paths, so the ratio is pure execution
	// efficiency.
	SeqImagesPerSec      float64 `json:"seqImagesPerSec"`
	LockstepImagesPerSec float64 `json:"lockstepImagesPerSec"`
	Speedup              float64 `json:"speedup"`
	// MeanOccupancy is the mean lanes per event column over the run — the
	// amortization factor the lockstep scatter actually saw.
	MeanOccupancy float64 `json:"meanOccupancy"`
	// BatchSteps is the lockstep step count (slowest lane); LaneStepsSum
	// totals the per-lane early-exit steps, so LaneStepsSum/B compares to
	// BatchSteps as the retirement win.
	BatchSteps   int `json:"batchSteps"`
	LaneStepsSum int `json:"laneStepsSum"`
}

type batchArtifact struct {
	Schema    string       `json:"schema"`
	When      string       `json:"when"`
	GoVersion string       `json:"goVersion"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	CPUs      int          `json:"cpus"`
	Model     string       `json:"model"`
	Points    []batchPoint `json:"points"`
}

func runBatchBench(outPath string) error {
	net, set, err := hotpathModel()
	if err != nil {
		return err
	}
	conv, err := convert.Convert(net, set.Train, convert.DefaultOptions(coding.Phase, coding.Burst))
	if err != nil {
		return err
	}
	art := batchArtifact{
		Schema:    "burstsnn/bench-batch/v1",
		When:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Model:     "lenet-mini phase-burst (hotpath model)",
	}
	for _, B := range []int{1, 2, 4, 8} {
		fmt.Fprintf(os.Stderr, "batch: B=%d...\n", B)
		images := make([][]float64, B)
		policies := make([]serve.ExitPolicy, B)
		for i := range images {
			images[i] = set.Test[i%len(set.Test)].Image
			policies[i] = serve.DefaultExitPolicy(96)
		}
		bn, err := snn.NewBatchNetwork(conv.Net, B)
		if err != nil {
			return err
		}

		// Occupancy + step accounting from one instrumented run.
		var cols, laneEvents int
		for li := -1; li < len(bn.Layers); li++ {
			bn.AttachProbe(li, func(_ int, ev *coding.BatchEvents) {
				cols += ev.Cols()
				laneEvents += ev.LaneEvents()
			})
		}
		outs, batchSteps := serve.ClassifyBatch(bn, images, policies)
		pt := batchPoint{B: B, BatchSteps: batchSteps}
		for _, o := range outs {
			pt.LaneStepsSum += o.Steps
		}
		if cols > 0 {
			pt.MeanOccupancy = float64(laneEvents) / float64(cols)
		}
		for li := -1; li < len(bn.Layers); li++ {
			bn.AttachProbe(li, nil)
		}

		seq := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, img := range images {
					serve.Classify(conv.Net, img, policies[0])
				}
			}
		})
		lock := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				serve.ClassifyBatch(bn, images, policies)
			}
		})
		perOp := func(r testing.BenchmarkResult) float64 {
			return float64(B) * float64(r.N) / r.T.Seconds()
		}
		pt.SeqImagesPerSec = perOp(seq)
		pt.LockstepImagesPerSec = perOp(lock)
		if pt.SeqImagesPerSec > 0 {
			pt.Speedup = pt.LockstepImagesPerSec / pt.SeqImagesPerSec
		}
		art.Points = append(art.Points, pt)
		fmt.Fprintf(os.Stderr, "batch: B=%d seq %.1f img/s, lockstep %.1f img/s (%.2fx), occupancy %.2f\n",
			B, pt.SeqImagesPerSec, pt.LockstepImagesPerSec, pt.Speedup, pt.MeanOccupancy)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "batch: artifact written to %s\n", outPath)
	return nil
}
