package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/dataset"
	"burstsnn/internal/kernels"
	"burstsnn/internal/serve"
	"burstsnn/internal/snn"
)

// The batch benchmark mode (-batch FILE) measures the lockstep batch
// simulators against back-to-back sequential classification on the
// conv-bearing hot-path model, across a batch-size sweep, across compute
// planes, and across kernel dispatch tiers, and writes a machine-readable
// artifact so the perf trajectory captures batching — not just
// single-image latency.
//
// Each point is one (B, kernel, level) triple: kernel "f64" is the
// scalar float64 lockstep plane (level empty), and the float32 plane is
// measured once per dispatch tier this machine can run ("f32",
// "f32-sse", "f32-avx2" — forced via kernels.ForceLevel for the point's
// duration), so one artifact carries the whole ladder. The sequential
// baseline is repeated on every B so a single point is self-contained
// run-over-run. The -batch-prev gate compares like-for-like tiers only:
// a point is gated against a previous point with the same triple, and
// tiers absent from either artifact (a runner without AVX2, say) are
// skipped, not failed.

type batchPoint struct {
	B int `json:"b"`
	// Kernel is the resolved lockstep variant measured: "f64", or the
	// float32 plane's dispatch tier name ("f32", "f32-sse", "f32-avx2" —
	// see internal/kernels.Kind).
	Kernel string `json:"kernel"`
	// Level is the kernel dispatch tier for float32 points ("purego",
	// "sse", "avx2"); empty for the scalar f64 plane.
	Level string `json:"level,omitempty"`
	// SeqImagesPerSec is the back-to-back baseline (one replica classifies
	// the batch's images sequentially on the float64 fast path);
	// LockstepImagesPerSec runs the same images through ClassifyBatch on
	// the same weights under this point's kernel. Predictions and step
	// counts agree across all variants (bit-identical for f64 and across
	// tiers, the tolerance contract for f32 vs f64), so the ratio is pure
	// execution efficiency.
	SeqImagesPerSec      float64 `json:"seqImagesPerSec"`
	LockstepImagesPerSec float64 `json:"lockstepImagesPerSec"`
	Speedup              float64 `json:"speedup"`
	// MeanOccupancy is the mean lanes per event column over the run — the
	// amortization factor the lockstep scatter actually saw.
	MeanOccupancy float64 `json:"meanOccupancy"`
	// BatchSteps is the lockstep step count (slowest lane); LaneStepsSum
	// totals the per-lane early-exit steps, so LaneStepsSum/B compares to
	// BatchSteps as the retirement win.
	BatchSteps   int `json:"batchSteps"`
	LaneStepsSum int `json:"laneStepsSum"`
}

type batchArtifact struct {
	Schema    string `json:"schema"`
	When      string `json:"when"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Model     string `json:"model"`
	// DetectedLevel is the widest kernel dispatch tier this machine
	// supports; Levels lists every tier the artifact has float32 points
	// for (the ladder up to DetectedLevel on this build).
	DetectedLevel string       `json:"detectedLevel"`
	Levels        []string     `json:"levels"`
	Points        []batchPoint `json:"points"`
	// Staggered records the exit-aware batch-forming measurement on the
	// mixed early/late-exit workload (additive field; points above are
	// unchanged, so the like-for-like gate keeps covering them).
	Staggered *staggeredResult `json:"staggered,omitempty"`
}

// staggeredResult measures what exit-aware batch forming buys on a
// staggered-exit workload: the same requests — half aggressive
// early-exit policies, half full-budget, interleaved in arrival order —
// are chunked FIFO and then re-ordered by the exit history's predicted
// exit steps (serve.OrderByPredictedExit), and each forming runs through
// the lockstep simulator with occupancy probes attached. Grouping lanes
// that retire together keeps columns full, so ExitAwareMeanOccupancy >
// FIFOMeanOccupancy is the number the scheduling plane's forming rule
// stands on.
type staggeredResult struct {
	// Requests is the workload size and LaneCap the lockstep chunk bound
	// (requests/laneCap chunks per forming).
	Requests int `json:"requests"`
	LaneCap  int `json:"laneCap"`
	// PredictedLanes counts lanes the warmed exit history predicted (out
	// of Requests; the rest formed in arrival order).
	PredictedLanes int `json:"predictedLanes"`
	// Kernel is the lockstep variant measured (the ambient dispatch tier).
	Kernel string `json:"kernel"`
	// FIFO/ExitAware mean event-column occupancy (lanes per scatter
	// column) and summed lockstep steps across the chunks of each
	// forming. Fewer steps at higher occupancy = the same work in fuller
	// columns.
	FIFOMeanOccupancy      float64 `json:"fifoMeanOccupancy"`
	ExitAwareMeanOccupancy float64 `json:"exitAwareMeanOccupancy"`
	FIFOBatchSteps         int     `json:"fifoBatchSteps"`
	ExitAwareBatchSteps    int     `json:"exitAwareBatchSteps"`
}

func runBatchBench(outPath string) error {
	net, set, err := hotpathModel()
	if err != nil {
		return err
	}
	conv, err := convert.Convert(net, set.Train, convert.DefaultOptions(coding.Phase, coding.Burst))
	if err != nil {
		return err
	}
	defer kernels.ForceLevel("")
	art := batchArtifact{
		Schema:        "burstsnn/bench-batch/v3",
		When:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		Model:         "lenet-mini phase-burst (hotpath model)",
		DetectedLevel: kernels.DetectedLevel(),
		Levels:        kernels.Available(),
	}
	for _, B := range []int{1, 2, 4, 8} {
		fmt.Fprintf(os.Stderr, "batch: B=%d...\n", B)
		images := make([][]float64, B)
		policies := make([]serve.ExitPolicy, B)
		for i := range images {
			images[i] = set.Test[i%len(set.Test)].Image
			policies[i] = serve.DefaultExitPolicy(96)
		}
		seq := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, img := range images {
					serve.Classify(conv.Net, img, policies[0])
				}
			}
		})
		seqRate := float64(B) * float64(seq.N) / seq.T.Seconds()

		// One f64 point, then one f32 point per available dispatch tier.
		type variant struct {
			f32   bool
			level string
		}
		variants := []variant{{f32: false}}
		for _, lv := range kernels.Available() {
			variants = append(variants, variant{f32: true, level: lv})
		}
		for _, vr := range variants {
			if err := kernels.ForceLevel(vr.level); err != nil {
				return err
			}
			bn, err := snn.NewLockstep(conv.Net, B, vr.f32)
			if err != nil {
				return err
			}
			pt := batchPoint{B: B, Kernel: bn.Kernel(), SeqImagesPerSec: seqRate}
			if vr.f32 {
				pt.Level = vr.level
			}

			// Occupancy + step accounting from one instrumented run.
			var cols, laneEvents int
			if err := setProbes(bn, func(c, e int) { cols += c; laneEvents += e }); err != nil {
				return err
			}
			outs, batchSteps := serve.ClassifyBatch(bn, images, policies)
			pt.BatchSteps = batchSteps
			for i, o := range outs {
				pt.LaneStepsSum += o.Steps
				// The planes must agree on outcomes (the tolerance
				// contract); a divergence here means the artifact is
				// comparing different work, so flag it loudly.
				if want := serve.Classify(conv.Net, images[i], policies[i]); o.Prediction != want.Prediction || o.Steps != want.Steps {
					fmt.Fprintf(os.Stderr, "batch: WARNING: kernel %s lane %d diverged from sequential (pred %d/%d steps %d/%d)\n",
						pt.Kernel, i, o.Prediction, want.Prediction, o.Steps, want.Steps)
				}
			}
			if cols > 0 {
				pt.MeanOccupancy = float64(laneEvents) / float64(cols)
			}
			if err := setProbes(bn, nil); err != nil {
				return err
			}

			lock := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					serve.ClassifyBatch(bn, images, policies)
				}
			})
			pt.LockstepImagesPerSec = float64(B) * float64(lock.N) / lock.T.Seconds()
			if pt.SeqImagesPerSec > 0 {
				pt.Speedup = pt.LockstepImagesPerSec / pt.SeqImagesPerSec
			}
			art.Points = append(art.Points, pt)
			fmt.Fprintf(os.Stderr, "batch: B=%d %s seq %.1f img/s, lockstep %.1f img/s (%.2fx), occupancy %.2f\n",
				B, pt.Kernel, pt.SeqImagesPerSec, pt.LockstepImagesPerSec, pt.Speedup, pt.MeanOccupancy)
		}
		if err := kernels.ForceLevel(""); err != nil {
			return err
		}
	}
	stag, err := runStaggeredBench(conv.Net, set)
	if err != nil {
		return err
	}
	art.Staggered = stag
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "batch: artifact written to %s\n", outPath)
	return nil
}

// runStaggeredBench measures FIFO vs exit-aware batch forming on a
// staggered-exit workload: 16 distinct images, alternating an aggressive
// early-exit policy with a full-budget one, chunked through an
// 8-lane lockstep simulator. FIFO forming takes arrival order (every
// chunk mixes early and late lanes, so retirements drain each chunk's
// columns); exit-aware forming re-orders by the warmed exit history's
// predictions (serve.OrderByPredictedExit — the batcher's rule), which
// groups lanes that retire together. Occupancy probes measure what the
// scatter columns actually saw either way, and outcomes are checked
// against the sequential engine so the comparison never trades
// correctness for occupancy.
func runStaggeredBench(net *snn.Network, set *dataset.Set) (*staggeredResult, error) {
	const (
		requests = 16
		laneCap  = 8
		budget   = 96
	)
	early := serve.ExitPolicy{MaxSteps: budget, MinSteps: 8, StableWindow: 6}
	late := serve.ExitPolicy{MaxSteps: budget}
	images := make([][]float64, requests)
	policies := make([]serve.ExitPolicy, requests)
	for i := range images {
		images[i] = set.Test[i%len(set.Test)].Image
		if i%2 == 0 {
			policies[i] = early
		} else {
			policies[i] = late
		}
	}

	// Sequential reference outcomes double as the exit-history warmup
	// (two sightings per key: entries store on the second, like the
	// serving batcher would after two classifications of the same image).
	history := serve.NewExitHistory(0)
	want := make([]serve.Outcome, requests)
	for i := range images {
		want[i] = serve.Classify(net, images[i], policies[i])
		hash := coding.HashImage(images[i])
		history.Record(hash, images[i], policies[i], want[i].Steps)
		history.Record(hash, images[i], policies[i], want[i].Steps)
	}
	preds := make([]int, requests)
	predicted := 0
	for i := range images {
		if steps, ok := history.Predict(coding.HashImage(images[i]), images[i], policies[i]); ok {
			preds[i] = steps
			predicted++
		}
	}

	bn, err := snn.NewLockstep(net, laneCap, true)
	if err != nil {
		return nil, err
	}
	res := &staggeredResult{
		Requests:       requests,
		LaneCap:        laneCap,
		PredictedLanes: predicted,
		Kernel:         bn.Kernel(),
	}

	// run executes one forming (a lane order) in laneCap chunks with
	// occupancy probes attached, returning mean column occupancy and the
	// summed lockstep steps.
	run := func(order []int) (float64, int, error) {
		var cols, laneEvents, stepsSum int
		if err := setProbes(bn, func(c, e int) { cols += c; laneEvents += e }); err != nil {
			return 0, 0, err
		}
		defer setProbes(bn, nil)
		for at := 0; at < len(order); at += laneCap {
			chunk := order[at:min(at+laneCap, len(order))]
			imgs := make([][]float64, len(chunk))
			pols := make([]serve.ExitPolicy, len(chunk))
			for i, idx := range chunk {
				imgs[i] = images[idx]
				pols[i] = policies[idx]
			}
			outs, batchSteps := serve.ClassifyBatch(bn, imgs, pols)
			stepsSum += batchSteps
			for i, idx := range chunk {
				if outs[i].Prediction != want[idx].Prediction || outs[i].Steps != want[idx].Steps {
					fmt.Fprintf(os.Stderr, "batch: WARNING: staggered lane %d diverged from sequential (pred %d/%d steps %d/%d)\n",
						idx, outs[i].Prediction, want[idx].Prediction, outs[i].Steps, want[idx].Steps)
				}
			}
		}
		if cols == 0 {
			return 0, stepsSum, nil
		}
		return float64(laneEvents) / float64(cols), stepsSum, nil
	}

	fifo := make([]int, requests)
	for i := range fifo {
		fifo[i] = i
	}
	if res.FIFOMeanOccupancy, res.FIFOBatchSteps, err = run(fifo); err != nil {
		return nil, err
	}
	if res.ExitAwareMeanOccupancy, res.ExitAwareBatchSteps, err = run(serve.OrderByPredictedExit(preds)); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "batch: staggered %s occupancy FIFO %.2f (%d steps) -> exit-aware %.2f (%d steps), %d/%d lanes predicted\n",
		res.Kernel, res.FIFOMeanOccupancy, res.FIFOBatchSteps,
		res.ExitAwareMeanOccupancy, res.ExitAwareBatchSteps, predicted, requests)
	return res, nil
}

// compareBatch is the batched-throughput regression gate: it reads a
// previous BENCH_batch.json and the one just written and fails when a
// point's lockstep throughput regressed by more than tolerance
// (fractional). Comparison is strictly like-for-like: points pair on the
// (B, kernel, level) triple, so an f32-avx2 point is never judged
// against an f32-sse or f64 measurement, and a tier present in only one
// artifact (different runner capabilities, or a pre-dispatch artifact)
// is skipped with a note rather than failed. A schema change skips the
// whole comparison (first run after a format bump records a baseline).
func compareBatch(prevPath, newPath string, tolerance float64) error {
	load := func(path string) (*batchArtifact, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var art batchArtifact
		if err := json.Unmarshal(data, &art); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &art, nil
	}
	prev, err := load(prevPath)
	if err != nil {
		return err
	}
	cur, err := load(newPath)
	if err != nil {
		return err
	}
	if prev.Schema != cur.Schema {
		fmt.Fprintf(os.Stderr, "batch: schema changed (%s -> %s), skipping comparison\n", prev.Schema, cur.Schema)
		return nil
	}
	key := func(p batchPoint) string { return fmt.Sprintf("B=%d/%s/%s", p.B, p.Kernel, p.Level) }
	prevPts := map[string]batchPoint{}
	for _, p := range prev.Points {
		prevPts[key(p)] = p
	}
	var failures []string
	for _, c := range cur.Points {
		p, ok := prevPts[key(c)]
		if !ok {
			fmt.Fprintf(os.Stderr, "batch:  %-18s no like-for-like previous point, skipping\n", key(c))
			continue
		}
		if p.LockstepImagesPerSec <= 0 {
			continue
		}
		ratio := c.LockstepImagesPerSec/p.LockstepImagesPerSec - 1
		mark := " "
		if -ratio > tolerance {
			mark = "!"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f img/s (%+.1f%%)",
				key(c), p.LockstepImagesPerSec, c.LockstepImagesPerSec, ratio*100))
		}
		fmt.Fprintf(os.Stderr, "batch:%s %-18s %+.1f%% lockstep img/s vs previous\n", mark, key(c), ratio*100)
	}
	if len(failures) > 0 {
		return fmt.Errorf("batched-throughput regression beyond %.0f%%:\n  %s", tolerance*100, strings.Join(failures, "\n  "))
	}
	return nil
}

// setProbes attaches (or, with a nil count, detaches) an event-column
// observer on every stage of a lockstep simulator, whichever compute
// plane it is. An unrecognized plane is an error so a future variant
// fails loudly here instead of silently reporting zero occupancy.
func setProbes(bn snn.Lockstep, count func(cols, laneEvents int)) error {
	switch n := bn.(type) {
	case *snn.BatchNetwork:
		var p snn.BatchProbe
		if count != nil {
			p = func(_ int, ev *coding.BatchEvents) { count(ev.Cols(), ev.LaneEvents()) }
		}
		for li := -1; li < len(n.Layers); li++ {
			n.AttachProbe(li, p)
		}
	case *snn.BatchNetwork32:
		var p snn.BatchProbe32
		if count != nil {
			p = func(_ int, ev *coding.BatchEvents32) { count(ev.Cols(), ev.LaneEvents()) }
		}
		for li := -1; li < len(n.Layers); li++ {
			n.AttachProbe(li, p)
		}
	default:
		return fmt.Errorf("batch: unknown lockstep plane %T", bn)
	}
	return nil
}
