package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/kernels"
	"burstsnn/internal/serve"
	"burstsnn/internal/snn"
)

// The batch benchmark mode (-batch FILE) measures the lockstep batch
// simulators against back-to-back sequential classification on the
// conv-bearing hot-path model, across a batch-size sweep and across
// kernel variants, and writes a machine-readable artifact so the perf
// trajectory captures batching — not just single-image latency.
//
// Each point is one (B, kernel) pair: kernel "f64" is the scalar float64
// lockstep plane, and "f32"/"f32-asm" is the float32 kernel plane as
// built into this binary (the purego build tag selects which — CI runs
// both and uploads both artifacts). The sequential baseline is repeated
// on every point so a single point is self-contained run-over-run.

type batchPoint struct {
	B int `json:"b"`
	// Kernel is the lockstep variant measured: "f64", "f32", or
	// "f32-asm" (see internal/kernels.Kind).
	Kernel string `json:"kernel"`
	// SeqImagesPerSec is the back-to-back baseline (one replica classifies
	// the batch's images sequentially on the float64 fast path);
	// LockstepImagesPerSec runs the same images through ClassifyBatch on
	// the same weights under this point's kernel. Predictions and step
	// counts agree across all variants (bit-identical for f64, the
	// tolerance contract for f32), so the ratio is pure execution
	// efficiency.
	SeqImagesPerSec      float64 `json:"seqImagesPerSec"`
	LockstepImagesPerSec float64 `json:"lockstepImagesPerSec"`
	Speedup              float64 `json:"speedup"`
	// MeanOccupancy is the mean lanes per event column over the run — the
	// amortization factor the lockstep scatter actually saw.
	MeanOccupancy float64 `json:"meanOccupancy"`
	// BatchSteps is the lockstep step count (slowest lane); LaneStepsSum
	// totals the per-lane early-exit steps, so LaneStepsSum/B compares to
	// BatchSteps as the retirement win.
	BatchSteps   int `json:"batchSteps"`
	LaneStepsSum int `json:"laneStepsSum"`
}

type batchArtifact struct {
	Schema    string `json:"schema"`
	When      string `json:"when"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Model     string `json:"model"`
	// Kernel is the float32 kernel variant linked into this binary
	// ("f32" pure Go, "f32-asm" SSE); the per-point Kernel field says
	// which plane each measurement ran on.
	Kernel string       `json:"kernel"`
	Points []batchPoint `json:"points"`
}

func runBatchBench(outPath string) error {
	net, set, err := hotpathModel()
	if err != nil {
		return err
	}
	conv, err := convert.Convert(net, set.Train, convert.DefaultOptions(coding.Phase, coding.Burst))
	if err != nil {
		return err
	}
	art := batchArtifact{
		Schema:    "burstsnn/bench-batch/v2",
		When:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Model:     "lenet-mini phase-burst (hotpath model)",
		Kernel:    kernels.Kind(),
	}
	for _, B := range []int{1, 2, 4, 8} {
		fmt.Fprintf(os.Stderr, "batch: B=%d...\n", B)
		images := make([][]float64, B)
		policies := make([]serve.ExitPolicy, B)
		for i := range images {
			images[i] = set.Test[i%len(set.Test)].Image
			policies[i] = serve.DefaultExitPolicy(96)
		}
		seq := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, img := range images {
					serve.Classify(conv.Net, img, policies[0])
				}
			}
		})
		seqRate := float64(B) * float64(seq.N) / seq.T.Seconds()

		for _, f32 := range []bool{false, true} {
			bn, err := snn.NewLockstep(conv.Net, B, f32)
			if err != nil {
				return err
			}
			pt := batchPoint{B: B, Kernel: bn.Kernel(), SeqImagesPerSec: seqRate}

			// Occupancy + step accounting from one instrumented run.
			var cols, laneEvents int
			if err := setProbes(bn, func(c, e int) { cols += c; laneEvents += e }); err != nil {
				return err
			}
			outs, batchSteps := serve.ClassifyBatch(bn, images, policies)
			pt.BatchSteps = batchSteps
			for i, o := range outs {
				pt.LaneStepsSum += o.Steps
				// The planes must agree on outcomes (the tolerance
				// contract); a divergence here means the artifact is
				// comparing different work, so flag it loudly.
				if want := serve.Classify(conv.Net, images[i], policies[i]); o.Prediction != want.Prediction || o.Steps != want.Steps {
					fmt.Fprintf(os.Stderr, "batch: WARNING: kernel %s lane %d diverged from sequential (pred %d/%d steps %d/%d)\n",
						pt.Kernel, i, o.Prediction, want.Prediction, o.Steps, want.Steps)
				}
			}
			if cols > 0 {
				pt.MeanOccupancy = float64(laneEvents) / float64(cols)
			}
			if err := setProbes(bn, nil); err != nil {
				return err
			}

			lock := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					serve.ClassifyBatch(bn, images, policies)
				}
			})
			pt.LockstepImagesPerSec = float64(B) * float64(lock.N) / lock.T.Seconds()
			if pt.SeqImagesPerSec > 0 {
				pt.Speedup = pt.LockstepImagesPerSec / pt.SeqImagesPerSec
			}
			art.Points = append(art.Points, pt)
			fmt.Fprintf(os.Stderr, "batch: B=%d %s seq %.1f img/s, lockstep %.1f img/s (%.2fx), occupancy %.2f\n",
				B, pt.Kernel, pt.SeqImagesPerSec, pt.LockstepImagesPerSec, pt.Speedup, pt.MeanOccupancy)
		}
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "batch: artifact written to %s\n", outPath)
	return nil
}

// setProbes attaches (or, with a nil count, detaches) an event-column
// observer on every stage of a lockstep simulator, whichever compute
// plane it is. An unrecognized plane is an error so a future variant
// fails loudly here instead of silently reporting zero occupancy.
func setProbes(bn snn.Lockstep, count func(cols, laneEvents int)) error {
	switch n := bn.(type) {
	case *snn.BatchNetwork:
		var p snn.BatchProbe
		if count != nil {
			p = func(_ int, ev *coding.BatchEvents) { count(ev.Cols(), ev.LaneEvents()) }
		}
		for li := -1; li < len(n.Layers); li++ {
			n.AttachProbe(li, p)
		}
	case *snn.BatchNetwork32:
		var p snn.BatchProbe32
		if count != nil {
			p = func(_ int, ev *coding.BatchEvents32) { count(ev.Cols(), ev.LaneEvents()) }
		}
		for li := -1; li < len(n.Layers); li++ {
			n.AttachProbe(li, p)
		}
	default:
		return fmt.Errorf("batch: unknown lockstep plane %T", bn)
	}
	return nil
}
