// Command snneval converts a baseline model to an SNN under one
// input-hidden coding configuration and reports accuracy, latency,
// spikes, density, and energy.
//
// Usage:
//
//	snneval -model textures10 -input phase -hidden burst -vth 0.125 -steps 192 -images 40
//
// With -json, results go to stdout as one JSON document whose per-image
// entries use the same schema as the serving API's /v1/classify response
// (see internal/serve.ClassifyResult), so offline and online numbers are
// directly comparable; -earlyexit additionally enables the serving
// early-exit engine so the report measures steps-to-exit instead of the
// fixed budget.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"burstsnn"
	"burstsnn/internal/experiments"
	"burstsnn/internal/serve"
)

func main() {
	var (
		model     = flag.String("model", "textures10", "baseline model: digits, textures10, textures100")
		input     = flag.String("input", "phase", "input coding: real, rate, phase, ttfs")
		hidden    = flag.String("hidden", "burst", "hidden coding: rate, phase, burst")
		vth       = flag.Float64("vth", 0, "hidden threshold constant v_th (0 = scheme default)")
		beta      = flag.Float64("beta", 0, "burst constant β (0 = default 2)")
		steps     = flag.Int("steps", 192, "simulation time steps per image")
		images    = flag.Int("images", 40, "test images to evaluate")
		dir       = flag.String("dir", "", "model cache directory (default: system temp)")
		tiny      = flag.Bool("tiny", false, "use the reduced test-scale recipes")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON (per-image results in the /v1/classify schema)")
		earlyExit = flag.Bool("earlyexit", false, "with -json: enable the serving early-exit engine instead of the fixed budget")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "snneval: %v\n", err)
		os.Exit(1)
	}

	inScheme, err := burstsnn.ParseScheme(*input)
	if err != nil {
		fail(err)
	}
	hidScheme, err := burstsnn.ParseScheme(*hidden)
	if err != nil {
		fail(err)
	}

	settings := experiments.DefaultSettings()
	settings.Log = os.Stderr
	settings.Steps = *steps
	settings.Images = *images
	settings.Tiny = *tiny
	if *dir != "" {
		settings.ModelDir = *dir
	}
	lab := experiments.NewLab(settings)
	m, err := lab.Model(*model)
	if err != nil {
		fail(err)
	}

	hybrid := burstsnn.NewHybrid(inScheme, hidScheme)
	if *vth > 0 {
		hybrid = hybrid.WithVTh(*vth)
	}
	if *beta > 0 {
		hybrid = hybrid.WithBeta(*beta)
	}

	if *jsonOut {
		if err := evalJSON(m, hybrid, *steps, *images, *earlyExit); err != nil {
			fail(err)
		}
		return
	}

	res, err := burstsnn.Evaluate(m.Net, m.Set, burstsnn.EvalConfig{
		Hybrid: hybrid, Steps: *steps, MaxImages: *images,
	})
	if err != nil {
		fail(err)
	}

	best, at := res.BestAccuracy()
	fmt.Printf("configuration : %s on %s\n", hybrid.Notation(), m.Name)
	fmt.Printf("DNN accuracy  : %.4f\n", res.DNNAccuracy)
	fmt.Printf("SNN accuracy  : %.4f (best, first reached at step %d)\n", best, at)
	fmt.Printf("final accuracy: %.4f after %d steps\n", res.FinalAccuracy(), res.Steps)
	fmt.Printf("spikes/image  : %.0f (input %.0f, hidden %.0f)\n",
		res.SpikesPerImage, res.InputSpikesPerImage, res.HiddenSpikesPerImage)
	fmt.Printf("neurons       : %d\n", res.Neurons)
	fmt.Printf("spiking density: %.4f\n", res.Density())

	w := burstsnn.Workload{Spikes: res.SpikesPerImage, Density: res.Density(), Latency: float64(res.Steps)}
	fmt.Printf("energy (arb.) : TrueNorth %.3g, SpiNNaker %.3g\n",
		burstsnn.EstimateEnergy(burstsnn.TrueNorth(), w),
		burstsnn.EstimateEnergy(burstsnn.SpiNNaker(), w))
}

// evalReport is the -json document. PerImage entries share the schema of
// the serving API's /v1/classify response, with Label and Correct filled
// in from ground truth.
type evalReport struct {
	Schema      string                 `json:"schema"`
	Model       string                 `json:"model"`
	Notation    string                 `json:"notation"`
	Steps       int                    `json:"steps"`
	EarlyExit   bool                   `json:"earlyExit"`
	Images      int                    `json:"images"`
	DNNAccuracy float64                `json:"dnnAccuracy"`
	Accuracy    float64                `json:"accuracy"`
	MeanSteps   float64                `json:"meanSteps"`
	MeanSpikes  float64                `json:"meanSpikes"`
	Neurons     int                    `json:"neurons"`
	PerImage    []serve.ClassifyResult `json:"perImage"`
}

// evalJSON runs the offline evaluation through the serving stack (one
// in-process Server, no HTTP) so that each image's result is exactly a
// /v1/classify response.
func evalJSON(m *experiments.Model, hybrid burstsnn.Hybrid, steps, images int, earlyExit bool) error {
	exit := burstsnn.DefaultExitPolicy(steps)
	if !earlyExit {
		exit = burstsnn.ExitPolicy{MaxSteps: steps}
	}
	srv := burstsnn.NewServer(burstsnn.ServeConfig{MaxBatch: 1})
	model, err := srv.Register(burstsnn.ServeModelConfig{
		Name:     m.Name,
		Hybrid:   hybrid,
		Steps:    steps,
		Exit:     exit,
		Replicas: 1, // the evaluation loop below is serial
	}, m.Net, m.Set.Train)
	if err != nil {
		return err
	}
	defer srv.Shutdown(context.Background())

	samples := m.Set.Test
	if images > 0 && images < len(samples) {
		samples = samples[:images]
	}
	report := evalReport{
		Schema:      "burstsnn/eval-v1",
		Model:       m.Name,
		Notation:    hybrid.Notation(),
		Steps:       steps,
		EarlyExit:   earlyExit,
		Images:      len(samples),
		DNNAccuracy: burstsnn.EvaluateDNN(m.Net, samples),
		Neurons:     model.Info().Neurons,
		PerImage:    make([]serve.ClassifyResult, len(samples)),
	}
	ctx := context.Background()
	correct, totalSteps, totalSpikes := 0, 0, 0
	for i, s := range samples {
		res, err := srv.Classify(ctx, burstsnn.ClassifyRequest{Model: m.Name, Image: s.Image})
		if err != nil {
			return fmt.Errorf("image %d: %w", i, err)
		}
		label := s.Label
		ok := res.Prediction == label
		res.Label, res.Correct = &label, &ok
		report.PerImage[i] = res
		if ok {
			correct++
		}
		totalSteps += res.Steps
		totalSpikes += res.Spikes
	}
	n := float64(len(samples))
	report.Accuracy = float64(correct) / n
	report.MeanSteps = float64(totalSteps) / n
	report.MeanSpikes = float64(totalSpikes) / n

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
