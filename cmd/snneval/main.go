// Command snneval converts a baseline model to an SNN under one
// input-hidden coding configuration and reports accuracy, latency,
// spikes, density, and energy.
//
// Usage:
//
//	snneval -model textures10 -input phase -hidden burst -vth 0.125 -steps 192 -images 40
package main

import (
	"flag"
	"fmt"
	"os"

	"burstsnn"
	"burstsnn/internal/experiments"
)

func main() {
	var (
		model  = flag.String("model", "textures10", "baseline model: digits, textures10, textures100")
		input  = flag.String("input", "phase", "input coding: real, rate, phase, ttfs")
		hidden = flag.String("hidden", "burst", "hidden coding: rate, phase, burst")
		vth    = flag.Float64("vth", 0, "hidden threshold constant v_th (0 = scheme default)")
		beta   = flag.Float64("beta", 0, "burst constant β (0 = default 2)")
		steps  = flag.Int("steps", 192, "simulation time steps per image")
		images = flag.Int("images", 40, "test images to evaluate")
		dir    = flag.String("dir", "", "model cache directory (default: system temp)")
		tiny   = flag.Bool("tiny", false, "use the reduced test-scale recipes")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "snneval: %v\n", err)
		os.Exit(1)
	}

	inScheme, err := burstsnn.ParseScheme(*input)
	if err != nil {
		fail(err)
	}
	hidScheme, err := burstsnn.ParseScheme(*hidden)
	if err != nil {
		fail(err)
	}

	settings := experiments.DefaultSettings()
	settings.Log = os.Stderr
	settings.Steps = *steps
	settings.Images = *images
	settings.Tiny = *tiny
	if *dir != "" {
		settings.ModelDir = *dir
	}
	lab := experiments.NewLab(settings)
	m, err := lab.Model(*model)
	if err != nil {
		fail(err)
	}

	hybrid := burstsnn.NewHybrid(inScheme, hidScheme)
	if *vth > 0 {
		hybrid = hybrid.WithVTh(*vth)
	}
	if *beta > 0 {
		hybrid = hybrid.WithBeta(*beta)
	}

	res, err := burstsnn.Evaluate(m.Net, m.Set, burstsnn.EvalConfig{
		Hybrid: hybrid, Steps: *steps, MaxImages: *images,
	})
	if err != nil {
		fail(err)
	}

	best, at := res.BestAccuracy()
	fmt.Printf("configuration : %s on %s\n", hybrid.Notation(), m.Name)
	fmt.Printf("DNN accuracy  : %.4f\n", res.DNNAccuracy)
	fmt.Printf("SNN accuracy  : %.4f (best, first reached at step %d)\n", best, at)
	fmt.Printf("final accuracy: %.4f after %d steps\n", res.FinalAccuracy(), res.Steps)
	fmt.Printf("spikes/image  : %.0f (input %.0f, hidden %.0f)\n",
		res.SpikesPerImage, res.InputSpikesPerImage, res.HiddenSpikesPerImage)
	fmt.Printf("neurons       : %d\n", res.Neurons)
	fmt.Printf("spiking density: %.4f\n", res.Density())

	w := burstsnn.Workload{Spikes: res.SpikesPerImage, Density: res.Density(), Latency: float64(res.Steps)}
	fmt.Printf("energy (arb.) : TrueNorth %.3g, SpiNNaker %.3g\n",
		burstsnn.EstimateEnergy(burstsnn.TrueNorth(), w),
		burstsnn.EstimateEnergy(burstsnn.SpiNNaker(), w))
}
