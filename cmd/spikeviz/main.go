// Command spikeviz renders the paper's Fig. 1 as ASCII: the spike train,
// PSP staircase, and inter-spike-interval histogram of a single IF neuron
// under rate, phase, and burst coding.
//
// Usage:
//
//	spikeviz -current 0.7 -steps 64
package main

import (
	"flag"
	"fmt"
	"os"

	"burstsnn/internal/experiments"
)

func main() {
	var (
		current = flag.Float64("current", 0.7, "constant input current in [0,1.5]")
		steps   = flag.Int("steps", 64, "time steps to simulate")
	)
	flag.Parse()
	if *steps <= 0 || *current < 0 {
		fmt.Fprintln(os.Stderr, "spikeviz: current must be >= 0 and steps positive")
		os.Exit(2)
	}
	fmt.Print(experiments.Fig1(*current, *steps).Render())
}
