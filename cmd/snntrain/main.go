// Command snntrain trains one of the baseline DNN models (digits,
// textures10, textures100) and stores it in the model cache used by the
// other tools.
//
// Usage:
//
//	snntrain -model textures10 [-dir /path/to/cache] [-tiny]
package main

import (
	"flag"
	"fmt"
	"os"

	"burstsnn/internal/experiments"
)

func main() {
	var (
		model = flag.String("model", "textures10", "baseline to train: digits, textures10, textures100, or all")
		dir   = flag.String("dir", "", "model cache directory (default: system temp)")
		tiny  = flag.Bool("tiny", false, "use the reduced test-scale recipes")
	)
	flag.Parse()

	settings := experiments.DefaultSettings()
	settings.Log = os.Stdout
	settings.Tiny = *tiny
	if *dir != "" {
		settings.ModelDir = *dir
	}
	lab := experiments.NewLab(settings)

	names := []string{*model}
	if *model == "all" {
		names = []string{"digits", "textures10", "textures100"}
	}
	for _, name := range names {
		m, err := lab.Model(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snntrain: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: DNN accuracy %.4f (%d train / %d test images, %d parameters)\n",
			m.Name, m.DNNAcc, len(m.Set.Train), len(m.Set.Test), m.Net.NumParams())
	}
	fmt.Printf("models cached in %s\n", settings.ModelDir)
}
