// Package burstsnn is a from-scratch Go reproduction of "Fast and
// Efficient Information Transmission with Burst Spikes in Deep Spiking
// Neural Networks" (Park, Kim, Choe, Yoon — DAC 2019).
//
// The package is the supported public surface; it re-exports the pieces a
// downstream user composes:
//
//   - datasets: deterministic synthetic stand-ins for MNIST/CIFAR
//     (SynthDigits, SynthTextures),
//   - a small CPU DNN framework (BuildDNN, Train, model zoo specs),
//   - neural codings: Real, Rate, Phase, Burst (the paper's
//     contribution), and TTFS,
//   - DNN→SNN conversion with data-based or percentile weight
//     normalization,
//   - the event-driven spiking simulator and the Evaluate pipeline that
//     produces accuracy curves, spike counts, and latency metrics,
//   - spike-pattern analysis (ISI histograms, burst composition, firing
//     rate/regularity) and neuromorphic energy estimation,
//   - an online serving layer (NewServer): a model registry with cached
//     conversions, pooled simulator replicas, a microbatching request
//     queue, an early-exit engine that stops each request as soon as the
//     readout settles, and an always-on telemetry plane (per-request
//     stage traces, per-stage latency histograms, Prometheus text
//     exposition) — served over an HTTP JSON API by cmd/snnserve.
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	set := burstsnn.SynthDigits(burstsnn.DefaultDigitsConfig())
//	net, _ := burstsnn.BuildDNN(burstsnn.LeNetMini(1, 28, 28, 10), burstsnn.NewRNG(1))
//	burstsnn.Train(net, set, burstsnn.NewAdam(0.002), burstsnn.TrainConfig{Epochs: 3})
//	res, _ := burstsnn.Evaluate(net, set, burstsnn.EvalConfig{
//		Hybrid: burstsnn.NewHybrid(burstsnn.Phase, burstsnn.Burst),
//		Steps:  128,
//	})
//	fmt.Println(res.FinalAccuracy(), res.SpikesPerImage)
package burstsnn

import (
	"burstsnn/internal/analysis"
	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/core"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/energy"
	"burstsnn/internal/kernels"
	"burstsnn/internal/mathx"
	"burstsnn/internal/neuromorphic"
	"burstsnn/internal/obs"
	"burstsnn/internal/serve"
	"burstsnn/internal/snn"
)

// RNG is the deterministic random number generator used everywhere.
type RNG = mathx.RNG

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return mathx.NewRNG(seed) }

// Scheme identifies a neural coding scheme.
type Scheme = coding.Scheme

// The neural coding schemes.
const (
	Real  = coding.Real
	Rate  = coding.Rate
	Phase = coding.Phase
	Burst = coding.Burst
	TTFS  = coding.TTFS
)

// CodingConfig parameterizes a scheme (v_th, β, phase period).
type CodingConfig = coding.Config

// DefaultCodingConfig returns a scheme's default parameters.
func DefaultCodingConfig(s Scheme) CodingConfig { return coding.DefaultConfig(s) }

// ParseScheme converts a scheme name ("real", "rate", "phase", "burst",
// "ttfs") to its Scheme value.
func ParseScheme(name string) (Scheme, error) { return coding.ParseScheme(name) }

// Dataset types and generators.
type (
	// Set is a labelled dataset split into train and test partitions.
	Set = dataset.Set
	// Sample is one labelled CHW image with pixels in [0,1].
	Sample = dataset.Sample
	// DigitsConfig controls SynthDigits generation.
	DigitsConfig = dataset.DigitsConfig
	// TexturesConfig controls SynthTextures generation.
	TexturesConfig = dataset.TexturesConfig
)

// SynthDigits renders the MNIST stand-in (28×28 digit glyphs).
func SynthDigits(cfg DigitsConfig) *Set { return dataset.SynthDigits(cfg) }

// SynthTextures renders the CIFAR stand-in (RGB parametric textures, 10
// or 100 classes).
func SynthTextures(cfg TexturesConfig) *Set { return dataset.SynthTextures(cfg) }

// DefaultDigitsConfig returns the harness digits configuration.
func DefaultDigitsConfig() DigitsConfig { return dataset.DefaultDigitsConfig() }

// DefaultTexturesConfig returns the harness 10-class texture configuration.
func DefaultTexturesConfig() TexturesConfig { return dataset.DefaultTexturesConfig() }

// DefaultTextures100Config returns the 100-class texture configuration.
func DefaultTextures100Config() TexturesConfig { return dataset.DefaultTextures100Config() }

// DNN framework types.
type (
	// DNN is a trained or trainable analog network.
	DNN = dnn.Network
	// Spec declares a network architecture.
	Spec = dnn.Spec
	// TrainConfig controls the training loop.
	TrainConfig = dnn.TrainConfig
	// EpochStats summarizes one training epoch.
	EpochStats = dnn.EpochStats
	// Optimizer updates parameters from gradients.
	Optimizer = dnn.Optimizer
)

// BuildDNN materializes a Spec with fresh weights.
func BuildDNN(spec Spec, r *RNG) (*DNN, error) { return dnn.Build(spec, r) }

// Train fits net on set.Train and returns per-epoch statistics.
func Train(net *DNN, set *Set, opt Optimizer, cfg TrainConfig) []EpochStats {
	return dnn.Train(net, set, opt, cfg)
}

// EvaluateDNN returns the analog network's accuracy over samples.
func EvaluateDNN(net *DNN, samples []Sample) float64 { return dnn.Evaluate(net, samples) }

// NewSGD constructs an SGD optimizer with momentum and L2 decay.
func NewSGD(lr, momentum, decay float64) Optimizer { return dnn.NewSGD(lr, momentum, decay) }

// NewAdam constructs an Adam optimizer.
func NewAdam(lr float64) Optimizer { return dnn.NewAdam(lr) }

// LeNetMini returns the MNIST-scale CNN spec.
func LeNetMini(inC, inH, inW, classes int) Spec { return dnn.LeNetMini(inC, inH, inW, classes) }

// VGGMini returns the scaled-down VGG-16 spec.
func VGGMini(inC, inH, inW, classes int) Spec { return dnn.VGGMini(inC, inH, inW, classes) }

// VGGMiniBN returns VGGMini with batch normalization after every
// convolution (folded into weights at conversion time).
func VGGMiniBN(inC, inH, inW, classes int) Spec { return dnn.VGGMiniBN(inC, inH, inW, classes) }

// VGG16 returns the full 16-weighted-layer VGG spec the paper nominally
// evaluates (compact classifier head; see the spec's doc comment).
func VGG16(inC, inH, inW, classes int) Spec { return dnn.VGG16(inC, inH, inW, classes) }

// MLP returns a fully connected spec.
func MLP(inC, inH, inW int, hidden []int, classes int) Spec {
	return dnn.MLP(inC, inH, inW, hidden, classes)
}

// SaveModelFile persists a trained model; LoadModelFile restores it.
func SaveModelFile(path string, spec Spec, net *DNN) error {
	return dnn.SaveModelFile(path, spec, net)
}

// LoadModelFile reads a model written by SaveModelFile.
func LoadModelFile(path string) (Spec, *DNN, error) { return dnn.LoadModelFile(path) }

// Conversion and evaluation types.
type (
	// Hybrid is a layer-wise coding assignment (input scheme + hidden
	// scheme), the paper's "input-hidden" notation.
	Hybrid = core.Hybrid
	// EvalConfig controls an SNN evaluation run.
	EvalConfig = core.EvalConfig
	// EvalResult aggregates an evaluation run (accuracy curve, spikes,
	// density, latency helpers).
	EvalResult = core.EvalResult
	// PatternConfig controls spike-pattern collection.
	PatternConfig = core.PatternConfig
	// PatternResult holds recorded spike-pattern statistics.
	PatternResult = core.PatternResult
	// ConvertOptions configures a standalone DNN→SNN conversion.
	ConvertOptions = convert.Options
	// ConvertResult is the converted spiking network plus metadata.
	ConvertResult = convert.Result
	// SNN is the event-driven spiking network.
	SNN = snn.Network
	// DelayedSNN executes the same layers with per-edge axonal delays
	// (asynchronous-fabric model); delay 0 equals the synchronous SNN.
	DelayedSNN = snn.DelayedNetwork
	// SingleNeuron is a standalone IF neuron with full coding dynamics.
	SingleNeuron = snn.SingleNeuron
)

// Normalization method constants for ConvertOptions.
const (
	MaxNorm        = convert.MaxNorm
	PercentileNorm = convert.PercentileNorm
)

// NewHybrid builds a Hybrid from two schemes with default parameters.
func NewHybrid(input, hidden Scheme) Hybrid { return core.NewHybrid(input, hidden) }

// Evaluate converts net under the hybrid coding and measures it over the
// test split of set.
func Evaluate(net *DNN, set *Set, cfg EvalConfig) (*EvalResult, error) {
	return core.Evaluate(net, set, cfg)
}

// CollectPatterns records spike trains from a converted network for
// firing-pattern analysis.
func CollectPatterns(net *DNN, set *Set, cfg PatternConfig) (*PatternResult, error) {
	return core.CollectPatterns(net, set, cfg)
}

// Convert performs a standalone DNN→SNN conversion (Evaluate wraps this;
// use Convert directly to drive the SNN step by step).
func Convert(net *DNN, samples []Sample, opts ConvertOptions) (*ConvertResult, error) {
	return convert.Convert(net, samples, opts)
}

// DefaultConvertOptions returns conversion defaults for an input/hidden
// scheme pair.
func DefaultConvertOptions(input, hidden Scheme) ConvertOptions {
	return convert.DefaultOptions(input, hidden)
}

// NewSingleNeuron creates a standalone IF neuron under a hidden coding.
func NewSingleNeuron(cfg CodingConfig) *SingleNeuron { return snn.NewSingleNeuron(cfg) }

// WithDelays wraps a converted network in the asynchronous execution
// mode: every inter-layer edge gets the uniform delay (in time steps)
// plus deterministic per-neuron jitter in [0, jitter].
func WithDelays(net *SNN, uniformDelay, jitter int, seed uint64) (*DelayedSNN, error) {
	return snn.FromNetwork(net, uniformDelay, jitter, seed)
}

// Serving types: the online inference layer (see internal/serve and
// cmd/snnserve).
type (
	// Server is the inference-serving frontend: model registry, replica
	// pools, microbatching queues, and the HTTP JSON API.
	Server = serve.Server
	// ServeConfig tunes the server (address, batching, timeouts).
	ServeConfig = serve.Config
	// ServeModelConfig declares one servable model (hybrid coding, step
	// budget, exit policy, replica count).
	ServeModelConfig = serve.ModelConfig
	// ExitPolicy controls the early-exit engine.
	ExitPolicy = serve.ExitPolicy
	// ClassifyRequest and ClassifyResult are the /v1/classify schema;
	// snneval -json emits the same result schema per image.
	ClassifyRequest = serve.ClassifyRequest
	ClassifyResult  = serve.ClassifyResult
	// ServeSnapshot is a point-in-time metrics view (/metrics schema).
	ServeSnapshot = serve.Snapshot
	// StageStats summarizes one stage histogram in a snapshot (count,
	// histogram-estimated mean/p50/p90/p99).
	StageStats = serve.StageStats
	// StageTimes carries one request's measured stage spans (queue, form,
	// encode, simulate, readout) through the serving pipeline.
	StageTimes = obs.StageTimes
	// RequestTrace is one request's recorded stage breakdown, the
	// GET /v1/trace schema; RequestTrace.ID echoes
	// ClassifyResult.RequestID.
	RequestTrace = obs.Trace
	// TraceRing retains recent request traces plus a bounded
	// slowest-retained set (Server.Traces exposes the server's ring).
	TraceRing = obs.Ring
)

// NewServer builds an inference server with an empty model registry.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// DefaultExitPolicy returns the serving default early-exit policy for a
// step budget.
func DefaultExitPolicy(steps int) ExitPolicy { return serve.DefaultExitPolicy(steps) }

// BatchSNN is the float64 lockstep batch simulator: up to B images
// stepped through one set of weights and scatter tables at once,
// bit-identical per lane to the sequential simulator. The float32 plane
// (BatchSNN32) trades bit-identity for the kernel-backed tolerance
// contract; Lockstep is the plane-independent face the serving batcher
// drives.
type (
	BatchSNN   = snn.BatchNetwork
	BatchSNN32 = snn.BatchNetwork32
	Lockstep   = snn.Lockstep
)

// BatchKernel values for ServeConfig.BatchKernel: the float32 kernel
// plane (serving default) and the bit-exact float64 plane.
const (
	BatchKernelF32 = serve.BatchKernelF32
	BatchKernelF64 = serve.BatchKernelF64
)

// LockstepBatch values for ServeConfig.LockstepBatch: auto steers each
// microbatch with an occupancy feedback controller when the float32
// kernels dispatch to a packed tier (sse/avx2 — the only regime where
// lockstep beats the sequential engine); static keeps the fixed
// ≥6-request rule; on/off force the choice. See
// ServeConfig.OccupancyCrossover and ServeConfig.ExitHistorySize for
// the adaptive plane's knobs.
const (
	LockstepAuto   = serve.LockstepAuto
	LockstepStatic = serve.LockstepStatic
	LockstepOn     = serve.LockstepOn
	LockstepOff    = serve.LockstepOff
)

// DefaultOccupancyCrossover is the measured occupancy at which lockstep
// execution breaks even with the sequential engine — the adaptive
// scheduler's default threshold (ServeConfig.OccupancyCrossover).
const DefaultOccupancyCrossover = serve.DefaultOccupancyCrossover

// ErrServerOverloaded is returned when the admission plane sheds a
// request instead of queueing it (full queue, or projected queue wait
// past the request deadline); the HTTP layer maps it to 429 with a
// Retry-After hint. Check with errors.Is.
var ErrServerOverloaded = serve.ErrOverloaded

// Overload-plane defaults (see ServeConfig.ResponseCacheSize /
// ResponseCacheTTL / Degrade): the cross-batch response cache's bound
// and TTL, and the degraded-mode controller's queue-pressure hysteresis
// thresholds.
const (
	DefaultResponseCacheEntries = serve.DefaultResponseCacheEntries
	DefaultResponseCacheTTL     = serve.DefaultResponseCacheTTL
	DefaultDegradeEnterPressure = serve.DefaultDegradeEnterPressure
	DefaultDegradeExitPressure  = serve.DefaultDegradeExitPressure
)

// Kernel dispatch-tier controls, re-exported from internal/kernels: the
// float32 plane's block primitives are selected at runtime by CPUID
// (purego → sse → avx2); KernelLevel reports the active tier,
// ForceKernelLevel pins it ("" resets to the startup level), and
// KernelLevels lists the tiers this machine can run. All tiers are
// bit-identical; forcing is for benchmarking and conformance testing.
func KernelLevel() string                 { return kernels.ActiveLevel() }
func ForceKernelLevel(level string) error { return kernels.ForceLevel(level) }
func KernelLevels() []string              { return kernels.Available() }

// NewBatchSNN builds a B-lane float64 lockstep simulator over a
// converted network (weights and precomputed tables are shared, state is
// fresh).
func NewBatchSNN(net *SNN, b int) (*BatchSNN, error) { return snn.NewBatchNetwork(net, b) }

// NewLockstepSNN builds the B-lane lockstep simulator for the requested
// compute plane: the float32 kernel plane when f32 is true (identical
// predictions and early-exit outcomes, readout within accumulation
// tolerance), the bit-exact float64 plane otherwise.
func NewLockstepSNN(net *SNN, b int, f32 bool) (Lockstep, error) {
	return snn.NewLockstep(net, b, f32)
}

// ClassifyBatch runs a batch of images lockstep under per-lane exit
// policies, returning per-image outcomes plus the batch's lockstep step
// count. On the float64 plane outcomes are bit-identical to sequential
// classification; on the float32 plane they carry the tolerance contract
// (identical predictions, spike counts, and early-exit steps on the
// equivalence corpus).
func ClassifyBatch(bn Lockstep, images [][]float64, policies []ExitPolicy) ([]ServeOutcome, int) {
	return serve.ClassifyBatch(bn, images, policies)
}

// ServeOutcome is the transport-independent result of one classification.
type ServeOutcome = serve.Outcome

// Analysis types.
type (
	// SpikeTrain is the ordered firing times of one neuron.
	SpikeTrain = analysis.SpikeTrain
	// BurstStats describes burst content of spike trains.
	BurstStats = analysis.BurstStats
	// PatternPoint is a (<log λ>, <κ>) firing-pattern summary.
	PatternPoint = analysis.PatternPoint
)

// Bursts analyzes burst composition (Fig. 2 statistics).
func Bursts(trains []SpikeTrain) BurstStats { return analysis.Bursts(trains) }

// ISIH builds an inter-spike-interval histogram with unit bins.
func ISIH(trains []SpikeTrain, maxISI int) []int { return analysis.ISIH(trains, maxISI) }

// Pattern reduces trains to a firing-pattern point (Fig. 5 axes).
func Pattern(trains []SpikeTrain) PatternPoint { return analysis.Pattern(trains) }

// SpikingDensity is spikes/(neurons·latency), the paper's efficiency
// metric.
func SpikingDensity(totalSpikes, neurons, latency int) float64 {
	return analysis.SpikingDensity(totalSpikes, neurons, latency)
}

// Energy model types.
type (
	// EnergyProfile is one neuromorphic architecture's decomposition.
	EnergyProfile = energy.Profile
	// Workload captures one configuration's spikes/density/latency.
	Workload = energy.Workload
)

// TrueNorth returns the TrueNorth energy profile.
func TrueNorth() EnergyProfile { return energy.TrueNorth() }

// SpiNNaker returns the SpiNNaker energy profile.
func SpiNNaker() EnergyProfile { return energy.SpiNNaker() }

// EstimateEnergy returns a workload's unnormalized energy under a profile.
func EstimateEnergy(p EnergyProfile, w Workload) float64 { return energy.Estimate(p, w) }

// NormalizeEnergy expresses workloads' energies relative to a baseline.
func NormalizeEnergy(p EnergyProfile, ws []Workload, base int) ([]float64, error) {
	return energy.Normalize(p, ws, base)
}

// Neuromorphic-mapping types: ground the energy decomposition in a placed
// core mesh instead of analytic ratios.
type (
	// ChipConfig is one neuromorphic architecture (mesh, capacities,
	// per-event energies).
	ChipConfig = neuromorphic.ChipConfig
	// Topology is a converted network as a layered connectivity graph.
	Topology = neuromorphic.Topology
	// Placement assigns neurons to cores.
	Placement = neuromorphic.Placement
	// SpikeLoad is a recorded per-neuron spike workload.
	SpikeLoad = neuromorphic.SpikeLoad
	// TrafficReport is the replayed workload's traffic and energy.
	TrafficReport = neuromorphic.TrafficReport
	// AnnealOptions tunes placement refinement.
	AnnealOptions = neuromorphic.AnnealOptions
)

// TrueNorthChip returns a TrueNorth-style mesh configuration.
func TrueNorthChip(meshW, meshH int) ChipConfig { return neuromorphic.TrueNorthChip(meshW, meshH) }

// SpiNNakerChip returns a SpiNNaker-style mesh configuration.
func SpiNNakerChip(meshW, meshH int) ChipConfig { return neuromorphic.SpiNNakerChip(meshW, meshH) }

// ExtractTopology derives a converted network's connectivity graph.
func ExtractTopology(net *SNN) (*Topology, error) { return neuromorphic.ExtractTopology(net) }

// PlaceSequential maps neurons to cores in locality-preserving order.
func PlaceSequential(topo *Topology, chip ChipConfig) (*Placement, error) {
	return neuromorphic.PlaceSequential(topo, chip)
}

// PlaceRandom scatters neurons uniformly across cores.
func PlaceRandom(topo *Topology, chip ChipConfig, seed uint64) (*Placement, error) {
	return neuromorphic.PlaceRandom(topo, chip, seed)
}

// RefinePlacement improves a placement by simulated annealing on the
// spike-weighted hop cost.
func RefinePlacement(p *Placement, spikeCounts []float64, opts AnnealOptions) *Placement {
	return neuromorphic.RefinePlacement(p, spikeCounts, opts)
}

// RecordLoad runs the network over images and records per-neuron spike
// counts aligned with the topology's global neuron ids.
func RecordLoad(net *SNN, topo *Topology, images [][]float64, steps int) *SpikeLoad {
	return neuromorphic.RecordLoad(net, topo, images, steps)
}

// Replay routes a recorded workload over a placement and integrates
// traffic and energy.
func Replay(p *Placement, load *SpikeLoad, chip ChipConfig) (*TrafficReport, error) {
	return neuromorphic.Replay(p, load, chip)
}
