// Energy walks through the paper's Table 2 energy methodology: measure a
// configuration's spikes, spiking density, and latency, then decompose
// energy into computation/routing/static parts on the TrueNorth and
// SpiNNaker profiles and normalize against a rate-coding baseline.
//
// Run with: go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"burstsnn"
)

func main() {
	set := burstsnn.SynthDigits(burstsnn.DigitsConfig{
		TrainPerClass: 80, TestPerClass: 10, Noise: 0.05, Seed: 11,
	})
	net, err := burstsnn.BuildDNN(burstsnn.MLP(1, 28, 28, []int{64}, 10), burstsnn.NewRNG(5))
	if err != nil {
		log.Fatal(err)
	}
	burstsnn.Train(net, set, burstsnn.NewAdam(0.01), burstsnn.TrainConfig{
		Epochs: 10, BatchSize: 32, Seed: 6,
	})
	fmt.Printf("DNN accuracy: %.4f\n\n", burstsnn.EvaluateDNN(net, set.Test))

	// Three methods from Table 2: Diehl-style rate-rate, Kim-style
	// phase-phase, and the paper's real-burst.
	configs := []burstsnn.Hybrid{
		burstsnn.NewHybrid(burstsnn.Rate, burstsnn.Rate),
		burstsnn.NewHybrid(burstsnn.Phase, burstsnn.Phase),
		burstsnn.NewHybrid(burstsnn.Real, burstsnn.Burst).WithVTh(0.125),
	}

	var workloads []burstsnn.Workload
	fmt.Printf("%-12s %-10s %-9s %-12s %-9s\n", "coding", "accuracy", "latency", "spikes/image", "density")
	for _, h := range configs {
		res, err := burstsnn.Evaluate(net, set, burstsnn.EvalConfig{
			Hybrid: h, Steps: 128, MaxImages: 40,
		})
		if err != nil {
			log.Fatal(err)
		}
		best, at := res.BestAccuracy()
		spikes := res.SpikesPerImage * float64(at) / float64(res.Steps)
		density := burstsnn.SpikingDensity(int(spikes), res.Neurons, at)
		fmt.Printf("%-12s %-10.4f %-9d %-12.0f %-9.4f\n", h.Notation(), best, at, spikes, density)
		workloads = append(workloads, burstsnn.Workload{
			Spikes: spikes, Density: density, Latency: float64(at),
		})
	}

	// Normalize against the rate-rate baseline (row 0), as the paper
	// does for MNIST.
	fmt.Println("\nnormalized energy (baseline = rate-rate):")
	for _, profile := range []burstsnn.EnergyProfile{burstsnn.TrueNorth(), burstsnn.SpiNNaker()} {
		norm, err := burstsnn.NormalizeEnergy(profile, workloads, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s", profile.Name)
		for i, h := range configs {
			fmt.Printf("  %s=%.3f", h.Notation(), norm[i])
		}
		fmt.Println()
	}
	fmt.Println("\nThe paper's shape: phase-phase pays a large energy premium for its")
	fmt.Println("spike volume; burst coding stays at or below the rate baseline while")
	fmt.Println("being far faster.")
}
