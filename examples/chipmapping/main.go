// Chipmapping demonstrates the neuromorphic-hardware side of the paper's
// energy argument: map a converted SNN onto a TrueNorth-style core mesh,
// replay a measured spike workload, and see where the routing energy goes
// — and how much placement quality matters.
//
// Run with: go run ./examples/chipmapping
package main

import (
	"fmt"
	"log"

	"burstsnn"
)

func main() {
	// A small trained model to map.
	set := burstsnn.SynthDigits(burstsnn.DigitsConfig{
		TrainPerClass: 60, TestPerClass: 10, Noise: 0.05, Seed: 31,
	})
	net, err := burstsnn.BuildDNN(burstsnn.LeNetMini(1, 28, 28, 10), burstsnn.NewRNG(13))
	if err != nil {
		log.Fatal(err)
	}
	burstsnn.Train(net, set, burstsnn.NewAdam(0.002), burstsnn.TrainConfig{
		Epochs: 2, BatchSize: 32, Seed: 14,
	})

	// Convert with the paper's real-burst configuration and extract the
	// connectivity graph.
	conv, err := burstsnn.Convert(net, set.Train,
		burstsnn.DefaultConvertOptions(burstsnn.Real, burstsnn.Burst))
	if err != nil {
		log.Fatal(err)
	}
	topo, err := burstsnn.ExtractTopology(conv.Net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d neurons across %d layers\n", topo.TotalNeurons(), len(topo.Layers))

	// Record a spike workload: 3 test images, 64 steps each.
	images := [][]float64{set.Test[0].Image, set.Test[1].Image, set.Test[2].Image}
	load := burstsnn.RecordLoad(conv.Net, topo, images, 64)

	// A TrueNorth-style mesh large enough to host the network.
	side := 1
	for burstsnn.TrueNorthChip(side, side).Capacity() < topo.TotalNeurons() {
		side++
	}
	chip := burstsnn.TrueNorthChip(side, side)
	fmt.Printf("chip: %s %dx%d mesh, %d neurons/core\n\n", chip.Name, chip.MeshW, chip.MeshH, chip.NeuronsPerCore)

	show := func(label string, p *burstsnn.Placement) *burstsnn.TrafficReport {
		rep, err := burstsnn.Replay(p, load, chip)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s hops %.2fM  off-core %.1f%%  max link %.0f  E(route) %.2fG\n",
			label, rep.Hops/1e6, rep.OffCoreFraction*100, rep.MaxLinkLoad, rep.RouteEnergy/1e9)
		return rep
	}

	seq, err := burstsnn.PlaceSequential(topo, chip)
	if err != nil {
		log.Fatal(err)
	}
	repSeq := show("sequential placement", seq)

	rnd, err := burstsnn.PlaceRandom(topo, chip, 77)
	if err != nil {
		log.Fatal(err)
	}
	repRnd := show("random placement", rnd)

	burstsnn.RefinePlacement(rnd, load.Counts, burstsnn.AnnealOptions{Iterations: 40000, Seed: 5})
	repAnn := show("after annealing", rnd)

	fmt.Printf("\nenergy split (sequential): compute %.2fG, route %.2fG, static %.2fG\n",
		repSeq.CompEnergy/1e9, repSeq.RouteEnergy/1e9, repSeq.StaticEnergy/1e9)
	fmt.Printf("annealing recovered %.1f%% of the random placement's routing energy\n",
		100*(1-repAnn.RouteEnergy/repRnd.RouteEnergy))
}
