// Hybridcoding sweeps the input×hidden coding grid of the paper's
// Table 1 on a small texture-classification CNN and prints which
// combination wins on accuracy, latency, and spike count.
//
// Run with: go run ./examples/hybridcoding
package main

import (
	"fmt"
	"log"

	"burstsnn"
)

func main() {
	// CIFAR-10 stand-in, reduced for example runtime.
	cfg := burstsnn.DefaultTexturesConfig()
	cfg.TrainPerClass, cfg.TestPerClass = 80, 10
	set := burstsnn.SynthTextures(cfg)

	net, err := burstsnn.BuildDNN(burstsnn.LeNetMini(3, 16, 16, 10), burstsnn.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}
	burstsnn.Train(net, set, burstsnn.NewAdam(0.005), burstsnn.TrainConfig{
		Epochs: 4, BatchSize: 32, Seed: 4,
	})
	dnnAcc := burstsnn.EvaluateDNN(net, set.Test)
	fmt.Printf("DNN accuracy: %.4f\n\n", dnnAcc)

	inputs := []burstsnn.Scheme{burstsnn.Real, burstsnn.Rate, burstsnn.Phase}
	hiddens := []burstsnn.Scheme{burstsnn.Rate, burstsnn.Phase, burstsnn.Burst}

	fmt.Printf("%-12s %-10s %-9s %-12s\n", "coding", "accuracy", "latency", "spikes/image")
	type winner struct {
		name  string
		value float64
	}
	bestAcc := winner{value: -1}
	fewestSpikes := winner{value: 1e18}
	fastest := winner{value: 1e18}
	for _, in := range inputs {
		for _, hid := range hiddens {
			h := burstsnn.NewHybrid(in, hid)
			res, err := burstsnn.Evaluate(net, set, burstsnn.EvalConfig{
				Hybrid: h, Steps: 128, MaxImages: 40,
			})
			if err != nil {
				log.Fatal(err)
			}
			best, at := res.BestAccuracy()
			fmt.Printf("%-12s %-10.4f %-9d %-12.0f\n", h.Notation(), best, at, res.SpikesPerImage)
			if best > bestAcc.value {
				bestAcc = winner{h.Notation(), best}
			}
			// Only accurate configurations compete on efficiency.
			if best >= dnnAcc-0.02 {
				if res.SpikesPerImage < fewestSpikes.value {
					fewestSpikes = winner{h.Notation(), res.SpikesPerImage}
				}
				if lat := res.LatencyToTarget(dnnAcc - 0.02); lat > 0 && float64(lat) < fastest.value {
					fastest = winner{h.Notation(), float64(lat)}
				}
			}
		}
	}

	fmt.Printf("\nhighest accuracy      : %s (%.4f)\n", bestAcc.name, bestAcc.value)
	fmt.Printf("fewest spikes (accurate): %s (%.0f)\n", fewestSpikes.name, fewestSpikes.value)
	fmt.Printf("fastest to DNN-2%%     : %s (step %.0f)\n", fastest.name, fastest.value)
	fmt.Println("\nThe paper's conclusion: burst hidden coding wins on accuracy and")
	fmt.Println("efficiency, and phase-burst is the best overall hybrid.")
}
