// Directtraining stages the paper's Section 1-2 argument as a runnable
// comparison: train a shallow SNN directly with unsupervised STDP
// (Diehl & Cook 2015, the paper's reference [8]) and put it next to the
// conversion route (train a DNN, convert with burst coding) on the same
// reduced digit task.
//
// Run with: go run ./examples/directtraining
package main

import (
	"fmt"
	"log"

	"burstsnn"
	"burstsnn/internal/dataset"
	"burstsnn/internal/stdp"
)

func main() {
	set := burstsnn.SynthDigits(burstsnn.DigitsConfig{
		TrainPerClass: 30, TestPerClass: 10, Noise: 0.02, Seed: 77,
	})
	const classes = 4 // digits 0-3 keep the direct route tractable
	filter := func(samples []dataset.Sample) ([][]float64, []int, []dataset.Sample) {
		var imgs [][]float64
		var labels []int
		var kept []dataset.Sample
		for _, s := range samples {
			if s.Label < classes {
				imgs = append(imgs, s.Image)
				labels = append(labels, s.Label)
				kept = append(kept, s)
			}
		}
		return imgs, labels, kept
	}
	trainX, trainY, trainSamples := filter(set.Train)
	testX, testY, testSamples := filter(set.Test)

	// Route 1: direct unsupervised STDP training.
	fmt.Println("route 1: direct STDP training (shallow, unsupervised)")
	net, err := stdp.New(stdp.DefaultConfig(set.InputSize(), 30))
	if err != nil {
		log.Fatal(err)
	}
	const steps = 60
	for epoch := 0; epoch < 5; epoch++ {
		net.Train(trainX, steps)
	}
	net.AssignClasses(trainX, trainY, classes, steps)
	stdpAcc := net.Accuracy(testX, testY, classes, steps)
	fmt.Printf("  STDP accuracy: %.3f (chance %.3f)\n\n", stdpAcc, 1.0/classes)

	// Route 2: DNN training + conversion with burst coding.
	fmt.Println("route 2: DNN training + conversion (real-burst)")
	sub := &burstsnn.Set{Name: "digits-4", C: 1, H: 28, W: 28, Classes: classes,
		Train: trainSamples, Test: testSamples}
	dnnNet, err := burstsnn.BuildDNN(burstsnn.MLP(1, 28, 28, []int{48}, classes), burstsnn.NewRNG(5))
	if err != nil {
		log.Fatal(err)
	}
	burstsnn.Train(dnnNet, sub, burstsnn.NewAdam(0.01), burstsnn.TrainConfig{
		Epochs: 10, BatchSize: 16, Seed: 6,
	})
	res, err := burstsnn.Evaluate(dnnNet, sub, burstsnn.EvalConfig{
		Hybrid: burstsnn.NewHybrid(burstsnn.Real, burstsnn.Burst),
		Steps:  64,
	})
	if err != nil {
		log.Fatal(err)
	}
	best, at := res.BestAccuracy()
	fmt.Printf("  DNN accuracy: %.3f, converted SNN: %.3f at step %d\n\n",
		res.DNNAccuracy, best, at)

	fmt.Println("The paper's premise in one run: direct training works for shallow")
	fmt.Println("networks on easy tasks but cannot reach the converted network's")
	fmt.Println("accuracy — which is why efficient inference in *converted* deep SNNs")
	fmt.Println("(and burst coding's role there) is the problem worth solving.")
}
