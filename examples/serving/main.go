// Serving walkthrough: train a small model, register it with the
// inference server under the paper's phase-burst hybrid coding, start the
// HTTP API on an ephemeral port, classify images over HTTP, and read the
// serving metrics — including the early-exit step savings that turn the
// paper's accuracy-vs-timestep latency win into a serving win.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"burstsnn"
)

func main() {
	// 1. Train the baseline (a small MLP keeps the example fast; swap in
	// LeNetMini or VGGMini for the real thing).
	set := burstsnn.SynthDigits(burstsnn.DigitsConfig{
		TrainPerClass: 60, TestPerClass: 10, Noise: 0.04, Seed: 1009,
	})
	dnnNet, err := burstsnn.BuildDNN(burstsnn.MLP(1, 28, 28, []int{48}, 10), burstsnn.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	burstsnn.Train(dnnNet, set, burstsnn.NewAdam(0.01), burstsnn.TrainConfig{
		Epochs: 10, BatchSize: 32, Seed: 2,
	})
	fmt.Printf("DNN test accuracy: %.4f\n", burstsnn.EvaluateDNN(dnnNet, set.Test))

	// 2. Register the model: the server converts it once under the given
	// hybrid coding and builds a pool of weight-sharing simulator
	// replicas. The exit policy stops each request as soon as the
	// readout's top-1 has been stable for 16 consecutive steps.
	const budget = 128
	srv := burstsnn.NewServer(burstsnn.ServeConfig{
		MaxBatch: 8,
		MaxDelay: 2 * time.Millisecond,
	})
	model, err := srv.Register(burstsnn.ServeModelConfig{
		Name:   "digits",
		Hybrid: burstsnn.NewHybrid(burstsnn.Phase, burstsnn.Burst),
		Steps:  budget,
		Exit:   burstsnn.ExitPolicy{MaxSteps: budget, MinSteps: 24, StableWindow: 16},
	}, dnnNet, set.Train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %q: %d neurons, %d replicas, budget %d steps\n\n",
		model.Config().Name, model.Info().Neurons, model.Pool().Size(), budget)

	// 3. Start the HTTP API on an ephemeral port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// 4. Classify the first few test images over HTTP — exactly what a
	// remote client would do.
	for i, sample := range set.Test[:5] {
		body, _ := json.Marshal(burstsnn.ClassifyRequest{Model: "digits", Image: sample.Image})
		resp, err := http.Post(base+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var res burstsnn.ClassifyResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("image %d: predicted %d (true %d) in %d/%d steps, %d spikes, %.2fms\n",
			i, res.Prediction, sample.Label, res.Steps, res.MaxSteps, res.Spikes, res.LatencyMs)
	}

	// 5. The metrics endpoint aggregates the serving behavior: request
	// counts, latency percentiles, and the mean steps-to-exit that the
	// early-exit engine saves versus the full budget.
	snap := model.Metrics().Snapshot()
	fmt.Printf("\nmetrics: %d requests, p50 %.2fms, mean %.1f steps of %d budget (%.0f%% early exits)\n",
		snap.Requests, snap.P50Ms, snap.MeanSteps, budget, 100*snap.EarlyExitRate)

	// 6. Graceful shutdown: stop accepting, drain queues.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and stopped")
}
