// Quickstart: train a small CNN on the synthetic digit dataset, convert
// it to a spiking network with the paper's phase-burst hybrid coding, and
// compare SNN inference against the source DNN.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"burstsnn"
)

func main() {
	// 1. Data: a deterministic MNIST stand-in (see DESIGN.md for why the
	// datasets are synthetic).
	set := burstsnn.SynthDigits(burstsnn.DigitsConfig{
		TrainPerClass: 100, TestPerClass: 20, Noise: 0.05, Seed: 7,
	})
	fmt.Printf("dataset: %s, %d train / %d test images\n", set.Name, len(set.Train), len(set.Test))

	// 2. Train the analog baseline.
	net, err := burstsnn.BuildDNN(burstsnn.LeNetMini(1, 28, 28, 10), burstsnn.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	burstsnn.Train(net, set, burstsnn.NewAdam(0.002), burstsnn.TrainConfig{
		Epochs: 2, BatchSize: 32, Seed: 2, Log: os.Stdout,
	})
	dnnAcc := burstsnn.EvaluateDNN(net, set.Test)
	fmt.Printf("DNN test accuracy: %.4f\n\n", dnnAcc)

	// 3. Convert and evaluate under the paper's headline configuration:
	// phase coding in the input layer, burst coding in hidden layers.
	res, err := burstsnn.Evaluate(net, set, burstsnn.EvalConfig{
		Hybrid:    burstsnn.NewHybrid(burstsnn.Phase, burstsnn.Burst),
		Steps:     96,
		MaxImages: 60,
	})
	if err != nil {
		log.Fatal(err)
	}

	best, at := res.BestAccuracy()
	fmt.Printf("SNN (%s):\n", res.Notation)
	fmt.Printf("  best accuracy     : %.4f (first reached at step %d of %d)\n", best, at, res.Steps)
	fmt.Printf("  final accuracy    : %.4f\n", res.FinalAccuracy())
	fmt.Printf("  spikes per image  : %.0f\n", res.SpikesPerImage)
	fmt.Printf("  spiking density   : %.4f\n", res.Density())
	fmt.Printf("  neurons           : %d\n", res.Neurons)

	// 4. The same metric the paper's Fig. 4 plots: accuracy vs time.
	fmt.Println("\naccuracy curve (every 12 steps):")
	for t := 11; t < len(res.AccuracyAt); t += 12 {
		fmt.Printf("  step %3d: %.4f\n", t+1, res.AccuracyAt[t])
	}
}
