// Burstanalysis reproduces the spike-pattern side of the paper on a small
// model: the v_th sweep of Fig. 2 (burst share and composition) and the
// firing-rate/regularity scatter of Fig. 5.
//
// Run with: go run ./examples/burstanalysis
package main

import (
	"fmt"
	"log"

	"burstsnn"
)

func main() {
	cfg := burstsnn.DefaultTexturesConfig()
	cfg.TrainPerClass, cfg.TestPerClass = 80, 10
	set := burstsnn.SynthTextures(cfg)
	net, err := burstsnn.BuildDNN(burstsnn.LeNetMini(3, 16, 16, 10), burstsnn.NewRNG(9))
	if err != nil {
		log.Fatal(err)
	}
	burstsnn.Train(net, set, burstsnn.NewAdam(0.005), burstsnn.TrainConfig{
		Epochs: 4, BatchSize: 32, Seed: 10,
	})
	fmt.Printf("DNN accuracy: %.4f\n", burstsnn.EvaluateDNN(net, set.Test))

	// Fig. 2: burst share grows and bursts lengthen as v_th shrinks.
	fmt.Println("\nFig. 2 shape — burst composition vs v_th (phase-burst):")
	fmt.Printf("%-9s %-14s %-30s\n", "v_th", "% burst spikes", "burst lengths 2/3/4/5/>5")
	for _, vth := range []float64{0.5, 0.25, 0.125, 0.0625, 0.03125} {
		pat, err := burstsnn.CollectPatterns(net, set, burstsnn.PatternConfig{
			Hybrid: burstsnn.NewHybrid(burstsnn.Phase, burstsnn.Burst).WithVTh(vth),
			Steps:  128, Images: 3, SampleFrac: 0.25, Seed: 21,
		})
		if err != nil {
			log.Fatal(err)
		}
		b := pat.Bursts
		fmt.Printf("%-9.5f %-14.1f %d/%d/%d/%d/%d\n",
			vth, b.PercentBurstSpikes()*100,
			b.ByLength[0], b.ByLength[1], b.ByLength[2], b.ByLength[3], b.ByLength[4])
	}

	// Fig. 5: the firing-pattern plane. Phase hidden coding pins the
	// firing rate high; burst adapts to the input coding.
	fmt.Println("\nFig. 5 shape — firing rate vs regularity:")
	fmt.Printf("%-14s %-10s %-10s\n", "coding", "<log λ>", "<κ>")
	for _, in := range []burstsnn.Scheme{burstsnn.Real, burstsnn.Rate, burstsnn.Phase} {
		for _, hid := range []burstsnn.Scheme{burstsnn.Rate, burstsnn.Phase, burstsnn.Burst} {
			pat, err := burstsnn.CollectPatterns(net, set, burstsnn.PatternConfig{
				Hybrid: burstsnn.NewHybrid(in, hid),
				Steps:  128, Images: 3, SampleFrac: 0.1, Seed: 22,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %-10.3f %-10.3f\n",
				pat.Notation, pat.Point.MeanLogRate, pat.Point.MeanRegularity)
		}
	}
}
