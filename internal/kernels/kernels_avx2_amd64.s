//go:build amd64 && !purego

#include "textflag.h"

// AVX2 float32 kernels: the 8-lane tier of the dispatch ladder. One
// VEX-encoded 256-bit op covers a full B=8 lane stripe — twice the
// baseline-SSE width — with 4-lane (VEX.128) and scalar (VEX) tails, so
// no legacy-SSE instruction ever runs with dirty YMM uppers.
//
// Numerics contract: every element receives exactly the operations the
// generic Go implementations perform — one rounded multiply and one add
// for the scatters (deliberately VMULPS + VADDPS, never FMA: fusing
// would contract two roundings into one and break cross-tier
// bit-identity), compare + masked subtract for the fire passes — so all
// dispatch tiers produce bit-identical float32 state.

// func axpyBlockAVX2(dst, row *float32, n int, p float32, b, lanes int)
// for i in [0,n): wp = row[i]*p; dst[i*b : i*b+lanes] += wp
TEXT ·axpyBlockAVX2(SB), NOSPLIT, $0-48
	MOVQ         dst+0(FP), DI
	MOVQ         row+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSS p+24(FP), Y0
	MOVQ         b+32(FP), R8
	MOVQ         lanes+40(FP), R9
	SHLQ         $2, R8           // stride in bytes

rowloop:
	TESTQ        CX, CX
	JZ           done
	VBROADCASTSS (SI), Y1
	VMULPS       Y0, Y1, Y1       // wp = w * p, rounded once, all lanes
	MOVQ         R9, DX           // lanes remaining
	MOVQ         DI, BX           // stripe cursor

lane8:
	CMPQ    DX, $8
	JLT     lane4
	VMOVUPS (BX), Y2
	VADDPS  Y1, Y2, Y2
	VMOVUPS Y2, (BX)
	ADDQ    $32, BX
	SUBQ    $8, DX
	JMP     lane8

lane4:
	CMPQ    DX, $4
	JLT     lanetail
	VMOVUPS (BX), X2
	VADDPS  X1, X2, X2
	VMOVUPS X2, (BX)
	ADDQ    $16, BX
	SUBQ    $4, DX

lanetail:
	TESTQ  DX, DX
	JZ     nextrow
	VMOVSS (BX), X2
	VADDSS X1, X2, X2
	VMOVSS X2, (BX)
	ADDQ   $4, BX
	DECQ   DX
	JMP    lanetail

nextrow:
	ADDQ $4, SI
	ADDQ R8, DI
	DECQ CX
	JMP  rowloop

done:
	VZEROUPPER
	RET

// func axpyBlockVecAVX2(dst, row, pv *float32, n, b, lanes int)
// for i in [0,n): dst[i*b : i*b+lanes] += row[i] * pv[:lanes]
TEXT ·axpyBlockVecAVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ row+8(FP), SI
	MOVQ pv+16(FP), R10
	MOVQ n+24(FP), CX
	MOVQ b+32(FP), R8
	MOVQ lanes+40(FP), R9
	SHLQ $2, R8               // stride in bytes
	CMPQ R9, $8
	JEQ  vec8

vrowloop:
	TESTQ        CX, CX
	JZ           vdone
	VBROADCASTSS (SI), Y0
	MOVQ         R9, DX       // lanes remaining
	MOVQ         DI, BX       // stripe cursor
	MOVQ         R10, R11     // pv cursor

vlane8:
	CMPQ    DX, $8
	JLT     vlane4
	VMOVUPS (R11), Y1
	VMULPS  Y0, Y1, Y1        // w * pv[j..j+7]
	VMOVUPS (BX), Y2
	VADDPS  Y1, Y2, Y2
	VMOVUPS Y2, (BX)
	ADDQ    $32, BX
	ADDQ    $32, R11
	SUBQ    $8, DX
	JMP     vlane8

vlane4:
	CMPQ    DX, $4
	JLT     vlanetail
	VMOVUPS (R11), X1
	VMULPS  X0, X1, X1
	VMOVUPS (BX), X2
	VADDPS  X1, X2, X2
	VMOVUPS X2, (BX)
	ADDQ    $16, BX
	ADDQ    $16, R11
	SUBQ    $4, DX

vlanetail:
	TESTQ  DX, DX
	JZ     vnextrow
	VMOVSS (R11), X1
	VMULSS X0, X1, X1
	VMOVSS (BX), X2
	VADDSS X1, X2, X2
	VMOVSS X2, (BX)
	ADDQ   $4, BX
	ADDQ   $4, R11
	DECQ   DX
	JMP    vlanetail

vnextrow:
	ADDQ $4, SI
	ADDQ R8, DI
	DECQ CX
	JMP  vrowloop

	// lanes == 8 (the serving default batch width): pv stays in Y5
	// across rows and each row is one packed multiply-add over the
	// whole stripe.
vec8:
	VMOVUPS (R10), Y5

vec8loop:
	TESTQ        CX, CX
	JZ           vdone
	VBROADCASTSS (SI), Y0
	VMULPS       Y5, Y0, Y1   // w * pv
	VMOVUPS      (DI), Y2
	VADDPS       Y1, Y2, Y2
	VMOVUPS      Y2, (DI)
	ADDQ         $4, SI
	ADDQ         R8, DI
	DECQ         CX
	JMP          vec8loop

vdone:
	VZEROUPPER
	RET

// func scaleAddAVX2(dst *float32, n int, x float32)
// dst[i] += x for i in [0,n)
TEXT ·scaleAddAVX2(SB), NOSPLIT, $0-20
	MOVQ         dst+0(FP), DI
	MOVQ         n+8(FP), CX
	VBROADCASTSS x+16(FP), Y0

add8:
	CMPQ    CX, $8
	JLT     add4
	VMOVUPS (DI), Y1
	VADDPS  Y0, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, DI
	SUBQ    $8, CX
	JMP     add8

add4:
	CMPQ    CX, $4
	JLT     addtail
	VMOVUPS (DI), X1
	VADDPS  X0, X1, X1
	VMOVUPS X1, (DI)
	ADDQ    $16, DI
	SUBQ    $4, CX

addtail:
	TESTQ  CX, CX
	JZ     adddone
	VMOVSS (DI), X1
	VADDSS X0, X1, X1
	VMOVSS X1, (DI)
	ADDQ   $4, DI
	DECQ   CX
	JMP    addtail

adddone:
	VZEROUPPER
	RET

// func fireRowAVX2(v *float32, n int, th float32) uint64
// for s in [0,n): if v[s] >= th { v[s] -= th; mask |= 1<<s }
//
// The packed compare is th <= v (predicate 2, LE, ordered — NaN never
// fires, matching the scalar >= which is false on NaN).
TEXT ·fireRowAVX2(SB), NOSPLIT, $0-32
	MOVQ         v+0(FP), DI
	MOVQ         n+8(FP), R11
	VBROADCASTSS th+16(FP), Y0
	XORQ         AX, AX           // mask accumulator
	XORQ         CX, CX           // lane position (shift amount)

fire8:
	CMPQ      R11, $8
	JLT       fire4
	VMOVUPS   (DI), Y1            // v
	VCMPPS    $2, Y1, Y0, Y2      // Y2 = (th <= v) ? ^0 : 0
	VANDPS    Y0, Y2, Y3          // th where fired, else 0
	VSUBPS    Y3, Y1, Y1
	VMOVUPS   Y1, (DI)
	VMOVMSKPS Y2, DX
	SHLQ      CX, DX
	ORQ       DX, AX
	ADDQ      $32, DI
	ADDQ      $8, CX
	SUBQ      $8, R11
	JMP       fire8

fire4:
	CMPQ      R11, $4
	JLT       firetail
	VMOVUPS   (DI), X1
	VCMPPS    $2, X1, X0, X2
	VANDPS    X0, X2, X3
	VSUBPS    X3, X1, X1
	VMOVUPS   X1, (DI)
	VMOVMSKPS X2, DX
	SHLQ      CX, DX
	ORQ       DX, AX
	ADDQ      $16, DI
	ADDQ      $4, CX
	SUBQ      $4, R11

firetail:
	TESTQ    R11, R11
	JZ       firedone
	VMOVSS   (DI), X1
	VUCOMISS X0, X1               // compare v (X1) against th (X0)
	JB       firenext             // v < th (or NaN): no spike
	VSUBSS   X0, X1, X1
	VMOVSS   X1, (DI)
	MOVQ     $1, DX
	SHLQ     CX, DX
	ORQ      DX, AX

firenext:
	ADDQ $4, DI
	INCQ CX
	DECQ R11
	JMP  firetail

firedone:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func fireRowBiasAVX2(v *float32, n int, bias, th float32) uint64
// for s in [0,n): v[s] += bias; if v[s] >= th { v[s] -= th; mask |= 1<<s }
TEXT ·fireRowBiasAVX2(SB), NOSPLIT, $0-32
	MOVQ         v+0(FP), DI
	MOVQ         n+8(FP), R11
	VBROADCASTSS bias+16(FP), Y4
	VBROADCASTSS th+20(FP), Y0
	XORQ         AX, AX
	XORQ         CX, CX

bfire8:
	CMPQ      R11, $8
	JLT       bfire4
	VMOVUPS   (DI), Y1
	VADDPS    Y4, Y1, Y1          // v += bias
	VCMPPS    $2, Y1, Y0, Y2      // th <= v
	VANDPS    Y0, Y2, Y3
	VSUBPS    Y3, Y1, Y1
	VMOVUPS   Y1, (DI)
	VMOVMSKPS Y2, DX
	SHLQ      CX, DX
	ORQ       DX, AX
	ADDQ      $32, DI
	ADDQ      $8, CX
	SUBQ      $8, R11
	JMP       bfire8

bfire4:
	CMPQ      R11, $4
	JLT       bfiretail
	VMOVUPS   (DI), X1
	VADDPS    X4, X1, X1
	VCMPPS    $2, X1, X0, X2
	VANDPS    X0, X2, X3
	VSUBPS    X3, X1, X1
	VMOVUPS   X1, (DI)
	VMOVMSKPS X2, DX
	SHLQ      CX, DX
	ORQ       DX, AX
	ADDQ      $16, DI
	ADDQ      $4, CX
	SUBQ      $4, R11

bfiretail:
	TESTQ    R11, R11
	JZ       bfiredone
	VMOVSS   (DI), X1
	VADDSS   X4, X1, X1
	VUCOMISS X0, X1
	JB       bnofire
	VSUBSS   X0, X1, X1
	VMOVSS   X1, (DI)
	MOVQ     $1, DX
	SHLQ     CX, DX
	ORQ      DX, AX
	JMP      bfirenext

bnofire:
	VMOVSS X1, (DI)               // biased value is stored even without a spike

bfirenext:
	ADDQ $4, DI
	INCQ CX
	DECQ R11
	JMP  bfiretail

bfiredone:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func fireRowBurstAVX2(v, gs, pay *float32, fired *uint32, n, bias, beta, vth) uint64
// (the burst state pointer is named gs because g is a reserved asm name)
// The packed burst fire pass over full 8-lane groups; n must be a
// multiple of 8 (the Go wrapper handles 4-lane and scalar tails). The
// Eq. 8 select g' = fired ? beta·g : 1 is a mask blend, exact because
// fired words are all-ones or zero.
TEXT ·fireRowBurstAVX2(SB), NOSPLIT, $0-64
	MOVQ         v+0(FP), DI
	MOVQ         gs+8(FP), SI
	MOVQ         pay+16(FP), R10
	MOVQ         fired+24(FP), R12
	MOVQ         n+32(FP), R11
	MOVL         $0x3F800000, DX  // 1.0f
	VMOVD        DX, X15          // VEX move: a legacy MOVD after the
	VBROADCASTSS X15, Y15         // 256-bit broadcasts below would pay an
	VBROADCASTSS bias+40(FP), Y12 // SSE/AVX state-transition stall per call
	VBROADCASTSS beta+44(FP), Y13
	VBROADCASTSS vth+48(FP), Y14
	XORQ         AX, AX
	XORQ         CX, CX

burst8:
	TESTQ     R11, R11
	JZ        burstdone
	VMOVUPS   (DI), Y1            // v
	VADDPS    Y12, Y1, Y1         // v += bias
	VMOVUPS   (SI), Y2            // g
	VMOVUPS   (R12), Y3           // fired mask
	VMULPS    Y13, Y2, Y2         // beta*g
	VANDPS    Y3, Y2, Y2          // beta*g where fired, else 0
	VANDNPS   Y15, Y3, Y3         // ^fired & 1.0
	VORPS     Y3, Y2, Y2          // g' = fired ? beta*g : 1
	VMOVUPS   Y2, (SI)
	VMULPS    Y14, Y2, Y2         // th = g'*vth
	VMOVUPS   Y2, (R10)           // pay = th (unconditional)
	VCMPPS    $2, Y1, Y2, Y4      // m = (th <= v), ordered
	VANDPS    Y4, Y2, Y2          // th where fired, else 0
	VSUBPS    Y2, Y1, Y1          // v -= th (non-fired lanes subtract ±0)
	VMOVUPS   Y1, (DI)
	VMOVUPS   Y4, (R12)           // new fired mask
	VMOVMSKPS Y4, DX
	SHLQ      CX, DX
	ORQ       DX, AX
	ADDQ      $32, DI
	ADDQ      $32, SI
	ADDQ      $32, R10
	ADDQ      $32, R12
	ADDQ      $8, CX
	SUBQ      $8, R11
	JMP       burst8

burstdone:
	VZEROUPPER
	MOVQ AX, ret+56(FP)
	RET

// func convScatterVecAVX2(vmem, wsc *float32, taps *ConvTap, ntaps, outC int, pv *float32)
// The fused b=8 conv scatter: one call walks a column's whole tap list,
// the dense payload vector pinned in Y5 throughout; every stripe is one
// broadcast + multiply + add (VMULPS/VADDPS, same roundings as the
// per-tap form).
TEXT ·convScatterVecAVX2(SB), NOSPLIT, $0-48
	MOVQ    vmem+0(FP), DI
	MOVQ    wsc+8(FP), SI
	MOVQ    taps+16(FP), R10
	MOVQ    ntaps+24(FP), CX
	MOVQ    outC+32(FP), R8
	MOVQ    pv+40(FP), AX
	VMOVUPS (AX), Y5
	MOVQ    R8, R9
	SHLQ    $5, R9            // block bytes per base: outC * 8 lanes * 4

ctaploop:
	TESTQ   CX, CX
	JZ      cdone
	MOVLQSX 0(R10), BX        // tap.WOff
	MOVLQSX 4(R10), DX        // tap.Base
	LEAQ    (SI)(BX*4), BX    // kernel row cursor
	IMULQ   R9, DX
	LEAQ    (DI)(DX*1), DX    // destination block cursor
	MOVQ    R8, R11           // outC stripes

cstripe2:
	CMPQ         R11, $2      // two stripes per iteration: independent
	JLT          cstripe      // chains hide the broadcast+add latency
	VBROADCASTSS (BX), Y0
	VBROADCASTSS 4(BX), Y2
	VMULPS       Y5, Y0, Y0   // w * pv
	VMULPS       Y5, Y2, Y2
	VMOVUPS      (DX), Y1
	VADDPS       Y0, Y1, Y1
	VMOVUPS      Y1, (DX)
	VMOVUPS      32(DX), Y3
	VADDPS       Y2, Y3, Y3
	VMOVUPS      Y3, 32(DX)
	ADDQ         $8, BX
	ADDQ         $64, DX
	SUBQ         $2, R11
	JMP          cstripe2

cstripe:
	TESTQ        R11, R11
	JZ           cnexttap
	VBROADCASTSS (BX), Y0
	VMULPS       Y5, Y0, Y0   // w * pv
	VMOVUPS      (DX), Y1
	VADDPS       Y0, Y1, Y1
	VMOVUPS      Y1, (DX)
	ADDQ         $4, BX
	ADDQ         $32, DX
	DECQ         R11
	JMP          cstripe

cnexttap:
	ADDQ $8, R10
	DECQ CX
	JMP  ctaploop

cdone:
	VZEROUPPER
	RET

// func fireRowsBurstAVX2(v, gs, pay *float32, fired *uint32, masks, occ *uint64, n int, bias *float32, bsc, beta, vth float32)
// The fused b=8 burst fire pass over a whole population: one call runs n
// independent 8-lane rows back to back (row c's bias current is
// bias[c]*bsc, or 0 when bias is nil), writing each row's fired-lane
// bitmask to masks[c]. Same per-lane operations as fireRowBurstAVX2; the
// fusion removes a call and a serial broadcast chain per neuron and lets
// consecutive rows' dependency chains overlap.
TEXT ·fireRowsBurstAVX2(SB), NOSPLIT, $0-76
	MOVQ         v+0(FP), DI
	MOVQ         gs+8(FP), SI
	MOVQ         pay+16(FP), R10
	MOVQ         fired+24(FP), R12
	MOVQ         masks+32(FP), R13
	MOVQ         occ+40(FP), BX
	MOVQ         n+48(FP), R11
	MOVQ         bias+56(FP), R14
	MOVL         $0x3F800000, DX  // 1.0f
	VMOVD        DX, X15
	VBROADCASTSS X15, Y15
	VMOVSS       bsc+64(FP), X11
	VBROADCASTSS beta+68(FP), Y13
	VBROADCASTSS vth+72(FP), Y14
	XORQ         AX, AX           // occ word accumulator
	XORQ         CX, CX           // row bit position

frowloop:
	CMPQ   R11, $2
	JLT    frsingle
	// Two rows interleaved: each row's burst chain is serial
	// (bias → g-blend → threshold → compare), so pairing independent
	// rows keeps the execution ports fed.
	VXORPS X12, X12, X12          // bv (row A) = 0
	VXORPS X10, X10, X10          // bv (row B) = 0
	TESTQ  R14, R14
	JZ     frnobias2
	VMOVSS (R14), X12
	VMOVSS 4(R14), X10
	VMULSS X11, X12, X12          // bias[c] * bsc, rounded once
	VMULSS X11, X10, X10
	ADDQ   $8, R14

frnobias2:
	VBROADCASTSS X12, Y12
	VBROADCASTSS X10, Y10
	VMOVUPS      (DI), Y1         // v A
	VMOVUPS      32(DI), Y6       // v B
	VADDPS       Y12, Y1, Y1
	VADDPS       Y10, Y6, Y6
	VMOVUPS      (SI), Y2         // g A
	VMOVUPS      32(SI), Y7       // g B
	VMOVUPS      (R12), Y3        // fired A
	VMOVUPS      32(R12), Y8      // fired B
	VMULPS       Y13, Y2, Y2
	VMULPS       Y13, Y7, Y7
	VANDPS       Y3, Y2, Y2
	VANDPS       Y8, Y7, Y7
	VANDNPS      Y15, Y3, Y3
	VANDNPS      Y15, Y8, Y8
	VORPS        Y3, Y2, Y2       // g' A
	VORPS        Y8, Y7, Y7       // g' B
	VMOVUPS      Y2, (SI)
	VMOVUPS      Y7, 32(SI)
	VMULPS       Y14, Y2, Y2      // th A
	VMULPS       Y14, Y7, Y7      // th B
	VMOVUPS      Y2, (R10)
	VMOVUPS      Y7, 32(R10)
	VCMPPS       $2, Y1, Y2, Y4   // th <= v, A
	VCMPPS       $2, Y6, Y7, Y9   // th <= v, B
	VANDPS       Y4, Y2, Y2
	VANDPS       Y9, Y7, Y7
	VSUBPS       Y2, Y1, Y1
	VSUBPS       Y7, Y6, Y6
	VMOVUPS      Y1, (DI)
	VMOVUPS      Y6, 32(DI)
	VMOVUPS      Y4, (R12)
	VMOVUPS      Y9, 32(R12)
	VMOVMSKPS    Y4, DX
	MOVQ         DX, (R13)
	TESTQ        DX, DX
	JZ           froccza
	BTSQ         CX, AX

froccza:
	INCQ      CX
	VMOVMSKPS Y9, DX
	MOVQ      DX, 8(R13)
	TESTQ     DX, DX
	JZ        frocczb
	BTSQ      CX, AX

frocczb:
	INCQ CX
	CMPQ CX, $64
	JLT  frnoflush2
	MOVQ AX, (BX)                 // occ word complete (row count even ⇒
	ADDQ $8, BX                   // the pair never straddles a word)
	XORQ AX, AX
	XORQ CX, CX

frnoflush2:
	ADDQ $64, DI
	ADDQ $64, SI
	ADDQ $64, R10
	ADDQ $64, R12
	ADDQ $16, R13
	SUBQ $2, R11
	JMP  frowloop

frsingle:
	TESTQ  R11, R11
	JZ     frdone
	VXORPS X12, X12, X12          // bv = 0
	TESTQ  R14, R14
	JZ     frnobias
	VMOVSS (R14), X12
	VMULSS X11, X12, X12          // bias[c] * bsc, rounded once
	ADDQ   $4, R14

frnobias:
	VBROADCASTSS X12, Y12
	VMOVUPS      (DI), Y1         // v
	VADDPS       Y12, Y1, Y1      // v += bv
	VMOVUPS      (SI), Y2         // g
	VMOVUPS      (R12), Y3        // fired mask
	VMULPS       Y13, Y2, Y2      // beta*g
	VANDPS       Y3, Y2, Y2
	VANDNPS      Y15, Y3, Y3      // ^fired & 1.0
	VORPS        Y3, Y2, Y2       // g' = fired ? beta*g : 1
	VMOVUPS      Y2, (SI)
	VMULPS       Y14, Y2, Y2      // th = g'*vth
	VMOVUPS      Y2, (R10)        // pay = th
	VCMPPS       $2, Y1, Y2, Y4   // th <= v
	VANDPS       Y4, Y2, Y2
	VSUBPS       Y2, Y1, Y1
	VMOVUPS      Y1, (DI)
	VMOVUPS      Y4, (R12)
	VMOVMSKPS    Y4, DX
	MOVQ         DX, (R13)
	TESTQ        DX, DX
	JZ           froccz
	BTSQ         CX, AX           // occ bit for this spiking row

froccz:
	INCQ CX
	CMPQ CX, $64
	JLT  frnoflush
	MOVQ AX, (BX)                 // occ word complete
	ADDQ $8, BX
	XORQ AX, AX
	XORQ CX, CX

frnoflush:
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R10
	ADDQ $32, R12
	ADDQ $8, R13
	DECQ R11
	JMP  frowloop

frdone:
	TESTQ CX, CX
	JZ    frend
	MOVQ  AX, (BX)                // flush the partial occ word

frend:
	VZEROUPPER
	RET

// func selectMaxRowAVX2(best, row *float32, idx *int32, n int, o int32)
// for s in [0,n): if row[s] > best[s] { best[s] = row[s]; idx[s] = o }
// n must be a multiple of 4 (the Go wrapper handles the scalar tail).
//
// The compare is best < row (predicate 1, LT, ordered — a NaN row entry
// never wins, matching the scalar >), and both blends are mask selects,
// exact because the compare result is all-ones or zero per lane.
TEXT ·selectMaxRowAVX2(SB), NOSPLIT, $0-36
	MOVQ         best+0(FP), DI
	MOVQ         row+8(FP), SI
	MOVQ         idx+16(FP), R10
	MOVQ         n+24(FP), CX
	MOVL         o+32(FP), DX
	VMOVD        DX, X3
	VBROADCASTSS X3, Y3

max8:
	CMPQ    CX, $8
	JLT     max4
	VMOVUPS (DI), Y0          // best
	VMOVUPS (SI), Y1          // row
	VCMPPS  $1, Y1, Y0, Y2    // m = best < row
	VANDPS  Y1, Y2, Y4        // row where m
	VANDNPS Y0, Y2, Y5        // best where !m
	VORPS   Y4, Y5, Y5
	VMOVUPS Y5, (DI)
	VMOVUPS (R10), Y6         // idx (as raw 32-bit lanes)
	VANDPS  Y3, Y2, Y4        // o where m
	VANDNPS Y6, Y2, Y6        // idx where !m
	VORPS   Y4, Y6, Y6
	VMOVUPS Y6, (R10)
	ADDQ    $32, DI
	ADDQ    $32, SI
	ADDQ    $32, R10
	SUBQ    $8, CX
	JMP     max8

max4:
	TESTQ   CX, CX
	JZ      maxdone
	VMOVUPS (DI), X0
	VMOVUPS (SI), X1
	VCMPPS  $1, X1, X0, X2
	VANDPS  X1, X2, X4
	VANDNPS X0, X2, X5
	VORPS   X4, X5, X5
	VMOVUPS X5, (DI)
	VMOVUPS (R10), X6
	VANDPS  X3, X2, X4
	VANDNPS X6, X2, X6
	VORPS   X4, X6, X6
	VMOVUPS X6, (R10)
	ADDQ    $16, DI
	ADDQ    $16, SI
	ADDQ    $16, R10
	SUBQ    $4, CX
	JMP     max4

maxdone:
	VZEROUPPER
	RET

// func laneMaskBitAVX2(row *uint64, n int, shiftLeft uint64) uint64
// mask bit s = bit (63-shiftLeft) of row[s], for s in [0,n); n must be
// a multiple of 4. Shifting the target bit into the sign position and
// collecting sign bits with VMOVMSKPD turns the per-lane bit test into
// one shift + one movemask per 4 lanes.
TEXT ·laneMaskBitAVX2(SB), NOSPLIT, $0-32
	MOVQ  row+0(FP), SI
	MOVQ  n+8(FP), R11
	VMOVQ shiftLeft+16(FP), X0
	XORQ  AX, AX
	XORQ  CX, CX

bit4:
	TESTQ     R11, R11
	JZ        bitdone
	VMOVDQU   (SI), Y1
	VPSLLQ    X0, Y1, Y1
	VMOVMSKPD Y1, DX          // sign bit of each 64-bit lane
	SHLQ      CX, DX
	ORQ       DX, AX
	ADDQ      $32, SI
	ADDQ      $4, CX
	SUBQ      $4, R11
	JMP       bit4

bitdone:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func laneMaskEqAVX2(row *uint64, n int, want uint64) uint64
// mask bit s = (row[s] == want), for s in [0,n); n must be a multiple
// of 4.
TEXT ·laneMaskEqAVX2(SB), NOSPLIT, $0-32
	MOVQ         row+0(FP), SI
	MOVQ         n+8(FP), R11
	VPBROADCASTQ want+16(FP), Y0
	XORQ         AX, AX
	XORQ         CX, CX

eq4:
	TESTQ     R11, R11
	JZ        eqdone
	VMOVDQU   (SI), Y1
	VPCMPEQQ  Y0, Y1, Y1      // all-ones where equal (sign bit set)
	VMOVMSKPD Y1, DX
	SHLQ      CX, DX
	ORQ       DX, AX
	ADDQ      $32, SI
	ADDQ      $4, CX
	SUBQ      $4, R11
	JMP       eq4

eqdone:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET
