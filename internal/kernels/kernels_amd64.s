//go:build amd64 && !purego

#include "textflag.h"

// Baseline-SSE float32 kernels. All loops process 4 packed lanes per
// iteration with a scalar tail, and every element receives exactly the
// operations the generic Go implementations perform (one rounded multiply
// and one add for the scatters; compare + subtract for the fire pass), so
// the two builds produce bit-identical state.

// func axpyBlockAsm(dst, row *float32, n int, p float32, b, lanes int)
// for i in [0,n): wp = row[i]*p; dst[i*b : i*b+lanes] += wp
TEXT ·axpyBlockAsm(SB), NOSPLIT, $0-48
	MOVQ  dst+0(FP), DI
	MOVQ  row+8(FP), SI
	MOVQ  n+16(FP), CX
	MOVSS p+24(FP), X0
	MOVQ  b+32(FP), R8
	MOVQ  lanes+40(FP), R9
	SHLQ  $2, R8              // stride in bytes

rowloop:
	TESTQ CX, CX
	JZ    done
	MOVSS  (SI), X1
	MULSS  X0, X1
	SHUFPS $0x00, X1, X1      // broadcast wp
	MOVQ   R9, DX             // lanes remaining
	MOVQ   DI, BX             // stripe cursor

lane4:
	CMPQ   DX, $4
	JLT    lanetail
	MOVUPS (BX), X2
	ADDPS  X1, X2
	MOVUPS X2, (BX)
	ADDQ   $16, BX
	SUBQ   $4, DX
	JMP    lane4

lanetail:
	TESTQ DX, DX
	JZ    nextrow
	MOVSS (BX), X2
	ADDSS X1, X2
	MOVSS X2, (BX)
	ADDQ  $4, BX
	DECQ  DX
	JMP   lanetail

nextrow:
	ADDQ $4, SI
	ADDQ R8, DI
	DECQ CX
	JMP  rowloop

done:
	RET

// func axpyBlockVecAsm(dst, row, pv *float32, n, b, lanes int)
// for i in [0,n): dst[i*b : i*b+lanes] += row[i] * pv[:lanes]
TEXT ·axpyBlockVecAsm(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ row+8(FP), SI
	MOVQ pv+16(FP), R10
	MOVQ n+24(FP), CX
	MOVQ b+32(FP), R8
	MOVQ lanes+40(FP), R9
	SHLQ $2, R8               // stride in bytes
	CMPQ R9, $8
	JEQ  vec8
	CMPQ R9, $4
	JEQ  vec4

vrowloop:
	TESTQ CX, CX
	JZ    vdone
	MOVSS  (SI), X0
	SHUFPS $0x00, X0, X0      // broadcast w
	MOVQ   R9, DX             // lanes remaining
	MOVQ   DI, BX             // stripe cursor
	MOVQ   R10, R11           // pv cursor

vlane4:
	CMPQ   DX, $4
	JLT    vlanetail
	MOVUPS (R11), X1
	MULPS  X0, X1             // w * pv[j..j+3]
	MOVUPS (BX), X2
	ADDPS  X1, X2
	MOVUPS X2, (BX)
	ADDQ   $16, BX
	ADDQ   $16, R11
	SUBQ   $4, DX
	JMP    vlane4

vlanetail:
	TESTQ DX, DX
	JZ    vnextrow
	MOVSS (R11), X1
	MULSS X0, X1
	MOVSS (BX), X2
	ADDSS X1, X2
	MOVSS X2, (BX)
	ADDQ  $4, BX
	ADDQ  $4, R11
	DECQ  DX
	JMP   vlanetail

vnextrow:
	ADDQ $4, SI
	ADDQ R8, DI
	DECQ CX
	JMP  vrowloop

	// lanes == 8 (the serving default batch width): pv stays in X5/X6
	// across rows and the stripe update is fully unrolled.
vec8:
	MOVUPS (R10), X5
	MOVUPS 16(R10), X6

vec8loop:
	TESTQ CX, CX
	JZ    vdone
	MOVSS  (SI), X0
	SHUFPS $0x00, X0, X0
	MOVAPS X5, X1
	MULPS  X0, X1
	MOVAPS X6, X2
	MULPS  X0, X2
	MOVUPS (DI), X3
	ADDPS  X1, X3
	MOVUPS X3, (DI)
	MOVUPS 16(DI), X4
	ADDPS  X2, X4
	MOVUPS X4, 16(DI)
	ADDQ   $4, SI
	ADDQ   R8, DI
	DECQ   CX
	JMP    vec8loop

	// lanes == 4: one packed stripe per row.
vec4:
	MOVUPS (R10), X5

vec4loop:
	TESTQ CX, CX
	JZ    vdone
	MOVSS  (SI), X0
	SHUFPS $0x00, X0, X0
	MULPS  X5, X0
	MOVUPS (DI), X3
	ADDPS  X0, X3
	MOVUPS X3, (DI)
	ADDQ   $4, SI
	ADDQ   R8, DI
	DECQ   CX
	JMP    vec4loop

vdone:
	RET

// func scaleAddAsm(dst *float32, n int, x float32)
// dst[i] += x for i in [0,n)
TEXT ·scaleAddAsm(SB), NOSPLIT, $0-20
	MOVQ   dst+0(FP), DI
	MOVQ   n+8(FP), CX
	MOVSS  x+16(FP), X0
	SHUFPS $0x00, X0, X0

add4:
	CMPQ   CX, $4
	JLT    addtail
	MOVUPS (DI), X1
	ADDPS  X0, X1
	MOVUPS X1, (DI)
	ADDQ   $16, DI
	SUBQ   $4, CX
	JMP    add4

addtail:
	TESTQ CX, CX
	JZ    adddone
	MOVSS (DI), X1
	ADDSS X0, X1
	MOVSS X1, (DI)
	ADDQ  $4, DI
	DECQ  CX
	JMP   addtail

adddone:
	RET

// func fireRowAsm(v *float32, n int, th float32) uint64
// for s in [0,n): if v[s] >= th { v[s] -= th; mask |= 1<<s }
//
// The packed compare is th <= v (CMPLEPS, ordered, so NaN never fires —
// matching the scalar >= which is false on NaN).
TEXT ·fireRowAsm(SB), NOSPLIT, $0-32
	MOVQ   v+0(FP), DI
	MOVQ   n+8(FP), R11
	MOVSS  th+16(FP), X0
	SHUFPS $0x00, X0, X0
	XORQ   AX, AX             // mask accumulator
	XORQ   CX, CX             // lane position (shift amount)

fire4:
	CMPQ   R11, $4
	JLT    firetail
	MOVUPS (DI), X1           // v
	MOVAPS X0, X2             // th
	CMPPS  X1, X2, $2         // X2 = (th <= v) ? ^0 : 0
	MOVAPS X2, X3
	ANDPS  X0, X3             // th where fired, else 0
	SUBPS  X3, X1
	MOVUPS X1, (DI)
	MOVMSKPS X2, DX
	SHLQ   CX, DX
	ORQ    DX, AX
	ADDQ   $16, DI
	ADDQ   $4, CX
	SUBQ   $4, R11
	JMP    fire4

firetail:
	TESTQ   R11, R11
	JZ      firedone
	MOVSS   (DI), X1
	UCOMISS X0, X1            // compare v (X1) against th (X0)
	JB      firenext          // v < th (or NaN): no spike
	SUBSS   X0, X1
	MOVSS   X1, (DI)
	MOVQ    $1, DX
	SHLQ    CX, DX
	ORQ     DX, AX

firenext:
	ADDQ $4, DI
	INCQ CX
	DECQ R11
	JMP  firetail

firedone:
	MOVQ AX, ret+24(FP)
	RET

// func fireRowBurstAsm(v, gs, pay *float32, fired *uint32, n, bias, beta, vth) uint64
// (the burst state pointer is named gs because g is a reserved asm name)
// The packed burst fire pass (see kernels.FireRowBurst); n must be a
// multiple of 4 (the Go wrapper handles the tail). The Eq. 8 select
// g' = fired ? beta·g : 1 is a mask blend: (beta·g AND fired) OR
// (1.0 ANDN fired), exact because fired words are all-ones or zero.
TEXT ·fireRowBurstAsm(SB), NOSPLIT, $0-64
	MOVQ   v+0(FP), DI
	MOVQ   gs+8(FP), SI
	MOVQ   pay+16(FP), R10
	MOVQ   fired+24(FP), R12
	MOVQ   n+32(FP), R11
	MOVSS  bias+40(FP), X12
	SHUFPS $0x00, X12, X12
	MOVSS  beta+44(FP), X13
	SHUFPS $0x00, X13, X13
	MOVSS  vth+48(FP), X14
	SHUFPS $0x00, X14, X14
	MOVL   $0x3F800000, DX    // 1.0f
	MOVD   DX, X15
	SHUFPS $0x00, X15, X15
	XORQ   AX, AX
	XORQ   CX, CX

burst4:
	TESTQ  R11, R11
	JZ     burstdone
	MOVUPS (DI), X1           // v
	ADDPS  X12, X1            // v += bias
	MOVUPS (SI), X2           // g
	MOVUPS (R12), X3          // fired mask
	MULPS  X13, X2            // beta*g
	ANDPS  X3, X2             // beta*g where fired, else 0
	ANDNPS X15, X3            // X3 = ^fired & 1.0
	ORPS   X3, X2             // g' = fired ? beta*g : 1
	MOVUPS X2, (SI)
	MULPS  X14, X2            // th = g'*vth
	MOVUPS X2, (R10)          // pay = th (unconditional)
	MOVAPS X2, X4
	CMPPS  X1, X4, $2         // m = (th <= v), ordered
	ANDPS  X4, X2             // th where fired, else 0
	SUBPS  X2, X1             // v -= th (non-fired lanes subtract ±0)
	MOVUPS X1, (DI)
	MOVUPS X4, (R12)          // new fired mask
	MOVMSKPS X4, DX
	SHLQ   CX, DX
	ORQ    DX, AX
	ADDQ   $16, DI
	ADDQ   $16, SI
	ADDQ   $16, R10
	ADDQ   $16, R12
	ADDQ   $4, CX
	SUBQ   $4, R11
	JMP    burst4

burstdone:
	MOVQ AX, ret+56(FP)
	RET

// func fireRowBiasAsm(v *float32, n int, bias, th float32) uint64
// for s in [0,n): v[s] += bias; if v[s] >= th { v[s] -= th; mask |= 1<<s }
TEXT ·fireRowBiasAsm(SB), NOSPLIT, $0-32
	MOVQ   v+0(FP), DI
	MOVQ   n+8(FP), R11
	MOVSS  bias+16(FP), X4
	SHUFPS $0x00, X4, X4
	MOVSS  th+20(FP), X0
	SHUFPS $0x00, X0, X0
	XORQ   AX, AX
	XORQ   CX, CX

bfire4:
	CMPQ   R11, $4
	JLT    bfiretail
	MOVUPS (DI), X1
	ADDPS  X4, X1             // v += bias
	MOVAPS X0, X2
	CMPPS  X1, X2, $2         // th <= v
	MOVAPS X2, X3
	ANDPS  X0, X3
	SUBPS  X3, X1
	MOVUPS X1, (DI)
	MOVMSKPS X2, DX
	SHLQ   CX, DX
	ORQ    DX, AX
	ADDQ   $16, DI
	ADDQ   $4, CX
	SUBQ   $4, R11
	JMP    bfire4

bfiretail:
	TESTQ   R11, R11
	JZ      bfiredone
	MOVSS   (DI), X1
	ADDSS   X4, X1
	UCOMISS X0, X1
	JB      bnofire
	SUBSS   X0, X1
	MOVSS   X1, (DI)
	MOVQ    $1, DX
	SHLQ    CX, DX
	ORQ     DX, AX
	JMP     bfirenext

bnofire:
	MOVSS X1, (DI)            // biased value is stored even without a spike

bfirenext:
	ADDQ $4, DI
	INCQ CX
	DECQ R11
	JMP  bfiretail

bfiredone:
	MOVQ AX, ret+24(FP)
	RET
