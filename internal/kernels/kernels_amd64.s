//go:build amd64 && !purego

#include "textflag.h"

// Baseline-SSE float32 kernels: the 4-lane tier of the dispatch ladder
// (every amd64 CPU can run these — no CPUID gate). All loops process 4
// packed lanes per iteration with a scalar tail, and every element
// receives exactly the operations the generic Go implementations perform
// (one rounded multiply and one add for the scatters; compare + subtract
// for the fire pass), so all dispatch tiers produce bit-identical state.

// func axpyBlockAsm(dst, row *float32, n int, p float32, b, lanes int)
// for i in [0,n): wp = row[i]*p; dst[i*b : i*b+lanes] += wp
TEXT ·axpyBlockAsm(SB), NOSPLIT, $0-48
	MOVQ  dst+0(FP), DI
	MOVQ  row+8(FP), SI
	MOVQ  n+16(FP), CX
	MOVSS p+24(FP), X0
	MOVQ  b+32(FP), R8
	MOVQ  lanes+40(FP), R9
	SHLQ  $2, R8              // stride in bytes

rowloop:
	TESTQ CX, CX
	JZ    done
	MOVSS  (SI), X1
	MULSS  X0, X1
	SHUFPS $0x00, X1, X1      // broadcast wp
	MOVQ   R9, DX             // lanes remaining
	MOVQ   DI, BX             // stripe cursor

lane4:
	CMPQ   DX, $4
	JLT    lanetail
	MOVUPS (BX), X2
	ADDPS  X1, X2
	MOVUPS X2, (BX)
	ADDQ   $16, BX
	SUBQ   $4, DX
	JMP    lane4

lanetail:
	TESTQ DX, DX
	JZ    nextrow
	MOVSS (BX), X2
	ADDSS X1, X2
	MOVSS X2, (BX)
	ADDQ  $4, BX
	DECQ  DX
	JMP   lanetail

nextrow:
	ADDQ $4, SI
	ADDQ R8, DI
	DECQ CX
	JMP  rowloop

done:
	RET

// func axpyBlockVecAsm(dst, row, pv *float32, n, b, lanes int)
// for i in [0,n): dst[i*b : i*b+lanes] += row[i] * pv[:lanes]
TEXT ·axpyBlockVecAsm(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ row+8(FP), SI
	MOVQ pv+16(FP), R10
	MOVQ n+24(FP), CX
	MOVQ b+32(FP), R8
	MOVQ lanes+40(FP), R9
	SHLQ $2, R8               // stride in bytes
	CMPQ R9, $8
	JEQ  vec8
	CMPQ R9, $4
	JEQ  vec4

vrowloop:
	TESTQ CX, CX
	JZ    vdone
	MOVSS  (SI), X0
	SHUFPS $0x00, X0, X0      // broadcast w
	MOVQ   R9, DX             // lanes remaining
	MOVQ   DI, BX             // stripe cursor
	MOVQ   R10, R11           // pv cursor

vlane4:
	CMPQ   DX, $4
	JLT    vlanetail
	MOVUPS (R11), X1
	MULPS  X0, X1             // w * pv[j..j+3]
	MOVUPS (BX), X2
	ADDPS  X1, X2
	MOVUPS X2, (BX)
	ADDQ   $16, BX
	ADDQ   $16, R11
	SUBQ   $4, DX
	JMP    vlane4

vlanetail:
	TESTQ DX, DX
	JZ    vnextrow
	MOVSS (R11), X1
	MULSS X0, X1
	MOVSS (BX), X2
	ADDSS X1, X2
	MOVSS X2, (BX)
	ADDQ  $4, BX
	ADDQ  $4, R11
	DECQ  DX
	JMP   vlanetail

vnextrow:
	ADDQ $4, SI
	ADDQ R8, DI
	DECQ CX
	JMP  vrowloop

	// lanes == 8 (the serving default batch width): pv stays in X5/X6
	// across rows and the stripe update is fully unrolled.
vec8:
	MOVUPS (R10), X5
	MOVUPS 16(R10), X6

vec8loop:
	TESTQ CX, CX
	JZ    vdone
	MOVSS  (SI), X0
	SHUFPS $0x00, X0, X0
	MOVAPS X5, X1
	MULPS  X0, X1
	MOVAPS X6, X2
	MULPS  X0, X2
	MOVUPS (DI), X3
	ADDPS  X1, X3
	MOVUPS X3, (DI)
	MOVUPS 16(DI), X4
	ADDPS  X2, X4
	MOVUPS X4, 16(DI)
	ADDQ   $4, SI
	ADDQ   R8, DI
	DECQ   CX
	JMP    vec8loop

	// lanes == 4: one packed stripe per row.
vec4:
	MOVUPS (R10), X5

vec4loop:
	TESTQ CX, CX
	JZ    vdone
	MOVSS  (SI), X0
	SHUFPS $0x00, X0, X0
	MULPS  X5, X0
	MOVUPS (DI), X3
	ADDPS  X0, X3
	MOVUPS X3, (DI)
	ADDQ   $4, SI
	ADDQ   R8, DI
	DECQ   CX
	JMP    vec4loop

vdone:
	RET

// func scaleAddAsm(dst *float32, n int, x float32)
// dst[i] += x for i in [0,n)
TEXT ·scaleAddAsm(SB), NOSPLIT, $0-20
	MOVQ   dst+0(FP), DI
	MOVQ   n+8(FP), CX
	MOVSS  x+16(FP), X0
	SHUFPS $0x00, X0, X0

add4:
	CMPQ   CX, $4
	JLT    addtail
	MOVUPS (DI), X1
	ADDPS  X0, X1
	MOVUPS X1, (DI)
	ADDQ   $16, DI
	SUBQ   $4, CX
	JMP    add4

addtail:
	TESTQ CX, CX
	JZ    adddone
	MOVSS (DI), X1
	ADDSS X0, X1
	MOVSS X1, (DI)
	ADDQ  $4, DI
	DECQ  CX
	JMP   addtail

adddone:
	RET

// func fireRowAsm(v *float32, n int, th float32) uint64
// for s in [0,n): if v[s] >= th { v[s] -= th; mask |= 1<<s }
//
// The packed compare is th <= v (CMPLEPS, ordered, so NaN never fires —
// matching the scalar >= which is false on NaN).
TEXT ·fireRowAsm(SB), NOSPLIT, $0-32
	MOVQ   v+0(FP), DI
	MOVQ   n+8(FP), R11
	MOVSS  th+16(FP), X0
	SHUFPS $0x00, X0, X0
	XORQ   AX, AX             // mask accumulator
	XORQ   CX, CX             // lane position (shift amount)

fire4:
	CMPQ   R11, $4
	JLT    firetail
	MOVUPS (DI), X1           // v
	MOVAPS X0, X2             // th
	CMPPS  X1, X2, $2         // X2 = (th <= v) ? ^0 : 0
	MOVAPS X2, X3
	ANDPS  X0, X3             // th where fired, else 0
	SUBPS  X3, X1
	MOVUPS X1, (DI)
	MOVMSKPS X2, DX
	SHLQ   CX, DX
	ORQ    DX, AX
	ADDQ   $16, DI
	ADDQ   $4, CX
	SUBQ   $4, R11
	JMP    fire4

firetail:
	TESTQ   R11, R11
	JZ      firedone
	MOVSS   (DI), X1
	UCOMISS X0, X1            // compare v (X1) against th (X0)
	JB      firenext          // v < th (or NaN): no spike
	SUBSS   X0, X1
	MOVSS   X1, (DI)
	MOVQ    $1, DX
	SHLQ    CX, DX
	ORQ     DX, AX

firenext:
	ADDQ $4, DI
	INCQ CX
	DECQ R11
	JMP  firetail

firedone:
	MOVQ AX, ret+24(FP)
	RET

// func fireRowBurstAsm(v, gs, pay *float32, fired *uint32, n, bias, beta, vth) uint64
// (the burst state pointer is named gs because g is a reserved asm name)
// The packed burst fire pass (see kernels.FireRowBurst); n must be a
// multiple of 4 (the Go wrapper handles the tail). The Eq. 8 select
// g' = fired ? beta·g : 1 is a mask blend: (beta·g AND fired) OR
// (1.0 ANDN fired), exact because fired words are all-ones or zero.
TEXT ·fireRowBurstAsm(SB), NOSPLIT, $0-64
	MOVQ   v+0(FP), DI
	MOVQ   gs+8(FP), SI
	MOVQ   pay+16(FP), R10
	MOVQ   fired+24(FP), R12
	MOVQ   n+32(FP), R11
	MOVSS  bias+40(FP), X12
	SHUFPS $0x00, X12, X12
	MOVSS  beta+44(FP), X13
	SHUFPS $0x00, X13, X13
	MOVSS  vth+48(FP), X14
	SHUFPS $0x00, X14, X14
	MOVL   $0x3F800000, DX    // 1.0f
	MOVD   DX, X15
	SHUFPS $0x00, X15, X15
	XORQ   AX, AX
	XORQ   CX, CX

burst4:
	TESTQ  R11, R11
	JZ     burstdone
	MOVUPS (DI), X1           // v
	ADDPS  X12, X1            // v += bias
	MOVUPS (SI), X2           // g
	MOVUPS (R12), X3          // fired mask
	MULPS  X13, X2            // beta*g
	ANDPS  X3, X2             // beta*g where fired, else 0
	ANDNPS X15, X3            // X3 = ^fired & 1.0
	ORPS   X3, X2             // g' = fired ? beta*g : 1
	MOVUPS X2, (SI)
	MULPS  X14, X2            // th = g'*vth
	MOVUPS X2, (R10)          // pay = th (unconditional)
	MOVAPS X2, X4
	CMPPS  X1, X4, $2         // m = (th <= v), ordered
	ANDPS  X4, X2             // th where fired, else 0
	SUBPS  X2, X1             // v -= th (non-fired lanes subtract ±0)
	MOVUPS X1, (DI)
	MOVUPS X4, (R12)          // new fired mask
	MOVMSKPS X4, DX
	SHLQ   CX, DX
	ORQ    DX, AX
	ADDQ   $16, DI
	ADDQ   $16, SI
	ADDQ   $16, R10
	ADDQ   $16, R12
	ADDQ   $4, CX
	SUBQ   $4, R11
	JMP    burst4

burstdone:
	MOVQ AX, ret+56(FP)
	RET

// func fireRowBiasAsm(v *float32, n int, bias, th float32) uint64
// for s in [0,n): v[s] += bias; if v[s] >= th { v[s] -= th; mask |= 1<<s }
TEXT ·fireRowBiasAsm(SB), NOSPLIT, $0-32
	MOVQ   v+0(FP), DI
	MOVQ   n+8(FP), R11
	MOVSS  bias+16(FP), X4
	SHUFPS $0x00, X4, X4
	MOVSS  th+20(FP), X0
	SHUFPS $0x00, X0, X0
	XORQ   AX, AX
	XORQ   CX, CX

bfire4:
	CMPQ   R11, $4
	JLT    bfiretail
	MOVUPS (DI), X1
	ADDPS  X4, X1             // v += bias
	MOVAPS X0, X2
	CMPPS  X1, X2, $2         // th <= v
	MOVAPS X2, X3
	ANDPS  X0, X3
	SUBPS  X3, X1
	MOVUPS X1, (DI)
	MOVMSKPS X2, DX
	SHLQ   CX, DX
	ORQ    DX, AX
	ADDQ   $16, DI
	ADDQ   $4, CX
	SUBQ   $4, R11
	JMP    bfire4

bfiretail:
	TESTQ   R11, R11
	JZ      bfiredone
	MOVSS   (DI), X1
	ADDSS   X4, X1
	UCOMISS X0, X1
	JB      bnofire
	SUBSS   X0, X1
	MOVSS   X1, (DI)
	MOVQ    $1, DX
	SHLQ    CX, DX
	ORQ     DX, AX
	JMP     bfirenext

bnofire:
	MOVSS X1, (DI)            // biased value is stored even without a spike

bfirenext:
	ADDQ $4, DI
	INCQ CX
	DECQ R11
	JMP  bfiretail

bfiredone:
	MOVQ AX, ret+24(FP)
	RET

// func convScatterVecAsm(vmem, wsc *float32, taps *ConvTap, ntaps, outC int, pv *float32)
// The fused b=8 conv scatter, SSE tier: the dense payload vector stays
// in X5/X6 across the whole tap walk; each stripe is two packed
// multiply-adds (same roundings as the per-tap form).
TEXT ·convScatterVecAsm(SB), NOSPLIT, $0-48
	MOVQ   vmem+0(FP), DI
	MOVQ   wsc+8(FP), SI
	MOVQ   taps+16(FP), R10
	MOVQ   ntaps+24(FP), CX
	MOVQ   outC+32(FP), R8
	MOVQ   pv+40(FP), AX
	MOVUPS (AX), X5
	MOVUPS 16(AX), X6
	MOVQ   R8, R9
	SHLQ   $5, R9             // block bytes per base: outC * 8 lanes * 4

ctaploop:
	TESTQ   CX, CX
	JZ      cdone
	MOVLQSX 0(R10), BX        // tap.WOff
	MOVLQSX 4(R10), DX        // tap.Base
	LEAQ    (SI)(BX*4), BX    // kernel row cursor
	IMULQ   R9, DX
	LEAQ    (DI)(DX*1), DX    // destination block cursor
	MOVQ    R8, R11           // outC stripes

cstripe:
	MOVSS  (BX), X0
	SHUFPS $0x00, X0, X0      // broadcast w
	MOVAPS X5, X1
	MULPS  X0, X1             // w * pv[0..3]
	MOVUPS (DX), X2
	ADDPS  X1, X2
	MOVUPS X2, (DX)
	MOVAPS X6, X1
	MULPS  X0, X1             // w * pv[4..7]
	MOVUPS 16(DX), X2
	ADDPS  X1, X2
	MOVUPS X2, 16(DX)
	ADDQ   $4, BX
	ADDQ   $32, DX
	DECQ   R11
	JNZ    cstripe

	ADDQ $8, R10
	DECQ CX
	JMP  ctaploop

cdone:
	RET

// func fireRowsBurstAsm(v, gs, pay *float32, fired *uint32, masks, occ *uint64, n int, bias *float32, bsc, beta, vth float32)
// The fused b=8 burst fire pass, SSE tier: each row is two 4-lane
// groups of the fireRowBurstAsm body, the bias current bias[c]*bsc (or 0
// when bias is nil) broadcast once per row, masks written per row.
TEXT ·fireRowsBurstAsm(SB), NOSPLIT, $0-76
	MOVQ   v+0(FP), DI
	MOVQ   gs+8(FP), SI
	MOVQ   pay+16(FP), R10
	MOVQ   fired+24(FP), R12
	MOVQ   masks+32(FP), R13
	MOVQ   occ+40(FP), BX
	MOVQ   n+48(FP), R11
	MOVQ   bias+56(FP), R14
	MOVSS  bsc+64(FP), X11
	MOVSS  beta+68(FP), X13
	SHUFPS $0x00, X13, X13
	MOVSS  vth+72(FP), X14
	SHUFPS $0x00, X14, X14
	XORQ   R9, R9             // occ word accumulator
	XORQ   CX, CX             // row bit position
	MOVL   $0x3F800000, DX    // 1.0f
	MOVD   DX, X15
	SHUFPS $0x00, X15, X15

frowloop:
	TESTQ R11, R11
	JZ    frdone
	XORPS X6, X6              // bv = 0
	TESTQ R14, R14
	JZ    frnobias
	MOVSS (R14), X6
	MULSS X11, X6             // bias[c] * bsc, rounded once
	ADDQ  $4, R14

frnobias:
	SHUFPS $0x00, X6, X6

	// lanes 0..3
	MOVUPS (DI), X1           // v
	ADDPS  X6, X1             // v += bv
	MOVUPS (SI), X2           // g
	MOVUPS (R12), X3          // fired mask
	MULPS  X13, X2            // beta*g
	ANDPS  X3, X2
	ANDNPS X15, X3            // ^fired & 1.0
	ORPS   X3, X2             // g'
	MOVUPS X2, (SI)
	MULPS  X14, X2            // th = g'*vth
	MOVUPS X2, (R10)
	MOVAPS X2, X4
	CMPPS  X1, X4, $2         // th <= v
	ANDPS  X4, X2
	SUBPS  X2, X1
	MOVUPS X1, (DI)
	MOVUPS X4, (R12)
	MOVMSKPS X4, AX

	// lanes 4..7
	MOVUPS 16(DI), X1
	ADDPS  X6, X1
	MOVUPS 16(SI), X2
	MOVUPS 16(R12), X3
	MULPS  X13, X2
	ANDPS  X3, X2
	ANDNPS X15, X3
	ORPS   X3, X2
	MOVUPS X2, 16(SI)
	MULPS  X14, X2
	MOVUPS X2, 16(R10)
	MOVAPS X2, X4
	CMPPS  X1, X4, $2
	ANDPS  X4, X2
	SUBPS  X2, X1
	MOVUPS X1, 16(DI)
	MOVUPS X4, 16(R12)
	MOVMSKPS X4, DX
	SHLQ   $4, DX
	ORQ    DX, AX
	MOVQ   AX, (R13)
	TESTQ  AX, AX
	JZ     froccz
	BTSQ   CX, R9             // occ bit for this spiking row

froccz:
	INCQ CX
	CMPQ CX, $64
	JLT  frnoflush
	MOVQ R9, (BX)             // occ word complete
	ADDQ $8, BX
	XORQ R9, R9
	XORQ CX, CX

frnoflush:
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R10
	ADDQ $32, R12
	ADDQ $8, R13
	DECQ R11
	JMP  frowloop

frdone:
	TESTQ CX, CX
	JZ    frend
	MOVQ  R9, (BX)            // flush the partial occ word

frend:
	RET

// func selectMaxRowAsm(best, row *float32, idx *int32, n int, o int32)
// for s in [0,n): if row[s] > best[s] { best[s] = row[s]; idx[s] = o }
// n must be a multiple of 4 (the Go wrapper handles the scalar tail).
//
// The compare is best < row (CMPLTPS, ordered — a NaN row entry never
// wins, matching the scalar >); both blends are mask selects over the
// all-ones/zero compare result, applied bitwise to the float and int32
// lanes alike.
TEXT ·selectMaxRowAsm(SB), NOSPLIT, $0-36
	MOVQ   best+0(FP), DI
	MOVQ   row+8(FP), SI
	MOVQ   idx+16(FP), R10
	MOVQ   n+24(FP), CX
	MOVL   o+32(FP), DX
	MOVD   DX, X3
	SHUFPS $0x00, X3, X3      // broadcast o (raw 32-bit lanes)

max4:
	TESTQ  CX, CX
	JZ     maxdone
	MOVUPS (DI), X0           // best
	MOVUPS (SI), X1           // row
	MOVAPS X0, X2
	CMPPS  X1, X2, $1         // m = best < row
	MOVAPS X2, X4
	ANDPS  X1, X4             // row where m
	MOVAPS X2, X5             // m copy for the idx blend
	ANDNPS X0, X2             // best where !m
	ORPS   X4, X2
	MOVUPS X2, (DI)
	MOVUPS (R10), X6          // idx
	MOVAPS X3, X7
	ANDPS  X5, X7             // o where m
	ANDNPS X6, X5             // idx where !m
	ORPS   X7, X5
	MOVUPS X5, (R10)
	ADDQ   $16, DI
	ADDQ   $16, SI
	ADDQ   $16, R10
	SUBQ   $4, CX
	JMP    max4

maxdone:
	RET
