package kernels

// Pure-Go float32 implementations: modestly unrolled scalar loops. These
// are the `purego` (and non-amd64) kernels and the semantic model the
// assembly must match bit for bit — every element receives the same
// sequence of float32 operations. The multiply is always materialized
// (`wp := w * p`) before the add so no build can contract it into an FMA
// and round differently.

func axpyBlockGeneric(dst, row []float32, p float32, b, lanes int) {
	off := 0
	for _, w := range row {
		wp := w * p
		stripe := dst[off : off+lanes]
		i := 0
		for ; i+4 <= len(stripe); i += 4 {
			stripe[i] += wp
			stripe[i+1] += wp
			stripe[i+2] += wp
			stripe[i+3] += wp
		}
		for ; i < len(stripe); i++ {
			stripe[i] += wp
		}
		off += b
	}
}

func axpyBlockVecGeneric(dst, row, pv []float32, b, lanes int) {
	pv = pv[:lanes]
	off := 0
	for _, w := range row {
		stripe := dst[off : off+lanes]
		for j, p := range pv {
			wp := w * p
			stripe[j] += wp
		}
		off += b
	}
}

func scaleAddGeneric(dst []float32, x float32) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] += x
		dst[i+1] += x
		dst[i+2] += x
		dst[i+3] += x
	}
	for ; i < len(dst); i++ {
		dst[i] += x
	}
}

func fireRowGeneric(v []float32, th float32) uint64 {
	var m uint64
	for s, x := range v {
		if x >= th {
			v[s] = x - th
			m |= 1 << uint(s)
		}
	}
	return m
}

// fireRowBurstScalar runs the burst fire pass over lanes [from, len(v)),
// or-ing new fire bits into m. It is both the pure-Go kernel body and
// the tail the packed amd64 implementation falls back to past the last
// full 4-lane group.
func fireRowBurstScalar(v, g, pay []float32, fired []uint32, from int, m uint64, bias, beta, vth float32) uint64 {
	for s := from; s < len(v); s++ {
		x := v[s] + bias
		gv := float32(1)
		if fired[s] != 0 {
			gv = beta * g[s]
		}
		g[s] = gv
		th := gv * vth
		pay[s] = th
		if x >= th {
			x -= th
			fired[s] = ^uint32(0)
			m |= 1 << uint(s)
		} else {
			fired[s] = 0
		}
		v[s] = x
	}
	return m
}

func fireRowBurstGeneric(v, g, pay []float32, fired []uint32, bias, beta, vth float32) uint64 {
	return fireRowBurstScalar(v, g, pay, fired, 0, 0, bias, beta, vth)
}

func fireRowBiasGeneric(v []float32, bias, th float32) uint64 {
	var m uint64
	for s, x := range v {
		x += bias
		if x >= th {
			x -= th
			m |= 1 << uint(s)
		}
		v[s] = x
	}
	return m
}

func convScatterVecGeneric(vmem, wsc []float32, taps []ConvTap, outC, b int, pv []float32) {
	outCb := outC * b
	pv = pv[:b]
	for _, tp := range taps {
		dst := vmem[int(tp.Base)*outCb : int(tp.Base)*outCb+outCb]
		row := wsc[tp.WOff : int(tp.WOff)+outC]
		off := 0
		for _, w := range row {
			stripe := dst[off : off+b]
			for j, p := range pv {
				wp := w * p
				stripe[j] += wp
			}
			off += b
		}
	}
}

// fireRowsBurstLoop is the shared row sweep of the non-fused
// FireRowsBurst forms: it applies rowFn to each b-wide row and keeps the
// masks/occ bookkeeping (including the partial-word flush) in exactly
// one place, so the generic and per-row-packed fallbacks cannot diverge
// on the subtle part.
func fireRowsBurstLoop(v, g, pay []float32, fired []uint32, masks, occ []uint64, n, b int, bias []float32, bsc float32,
	rowFn func(v, g, pay []float32, fired []uint32, bv float32) uint64) {
	var w uint64
	for c := 0; c < n; c++ {
		var bv float32
		if bias != nil {
			bv = bias[c] * bsc
		}
		o := c * b
		m := rowFn(v[o:o+b], g[o:o+b], pay[o:o+b], fired[o:o+b], bv)
		masks[c] = m
		if m != 0 {
			w |= 1 << (uint(c) & 63)
		}
		if c&63 == 63 {
			occ[c>>6] = w
			w = 0
		}
	}
	if n&63 != 0 {
		occ[(n-1)>>6] = w
	}
}

func fireRowsBurstGeneric(v, g, pay []float32, fired []uint32, masks, occ []uint64, n, b int, bias []float32, bsc, beta, vth float32) {
	fireRowsBurstLoop(v, g, pay, fired, masks, occ, n, b, bias, bsc,
		func(v, g, pay []float32, fired []uint32, bv float32) uint64 {
			return fireRowBurstScalar(v, g, pay, fired, 0, 0, bv, beta, vth)
		})
}

// selectMaxRowScalar merges row into the running argmax over lanes
// [from, lanes) — both the pure-Go kernel body and the tail the packed
// implementations fall back to past the last full 4-lane group.
func selectMaxRowScalar(best, row []float32, idx []int32, o int32, from, lanes int) {
	for s := from; s < lanes; s++ {
		if row[s] > best[s] {
			best[s] = row[s]
			idx[s] = o
		}
	}
}

// laneMaskBitScalar gathers bit `shift` of each row element into a lane
// bitmask, over lanes [from, len(row)). Branch-free: the compiler turns
// the masked shift into straight-line code.
func laneMaskBitScalar(row []uint64, shift uint, from int) uint64 {
	var m uint64
	for s := from; s < len(row); s++ {
		m |= (row[s] >> shift & 1) << uint(s)
	}
	return m
}

// laneMaskEqScalar sets mask bit s where row[s] == want, over lanes
// [from, len(row)).
func laneMaskEqScalar(row []uint64, want uint64, from int) uint64 {
	var m uint64
	for s := from; s < len(row); s++ {
		if row[s] == want {
			m |= 1 << uint(s)
		}
	}
	return m
}
