package kernels

// Pure-Go float32 implementations: modestly unrolled scalar loops. These
// are the `purego` (and non-amd64) kernels and the semantic model the
// assembly must match bit for bit — every element receives the same
// sequence of float32 operations. The multiply is always materialized
// (`wp := w * p`) before the add so no build can contract it into an FMA
// and round differently.

func axpyBlockGeneric(dst, row []float32, p float32, b, lanes int) {
	off := 0
	for _, w := range row {
		wp := w * p
		stripe := dst[off : off+lanes]
		i := 0
		for ; i+4 <= len(stripe); i += 4 {
			stripe[i] += wp
			stripe[i+1] += wp
			stripe[i+2] += wp
			stripe[i+3] += wp
		}
		for ; i < len(stripe); i++ {
			stripe[i] += wp
		}
		off += b
	}
}

func axpyBlockVecGeneric(dst, row, pv []float32, b, lanes int) {
	pv = pv[:lanes]
	off := 0
	for _, w := range row {
		stripe := dst[off : off+lanes]
		for j, p := range pv {
			wp := w * p
			stripe[j] += wp
		}
		off += b
	}
}

func scaleAddGeneric(dst []float32, x float32) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] += x
		dst[i+1] += x
		dst[i+2] += x
		dst[i+3] += x
	}
	for ; i < len(dst); i++ {
		dst[i] += x
	}
}

func fireRowGeneric(v []float32, th float32) uint64 {
	var m uint64
	for s, x := range v {
		if x >= th {
			v[s] = x - th
			m |= 1 << uint(s)
		}
	}
	return m
}

// fireRowBurstScalar runs the burst fire pass over lanes [from, len(v)),
// or-ing new fire bits into m. It is both the pure-Go kernel body and
// the tail the packed amd64 implementation falls back to past the last
// full 4-lane group.
func fireRowBurstScalar(v, g, pay []float32, fired []uint32, from int, m uint64, bias, beta, vth float32) uint64 {
	for s := from; s < len(v); s++ {
		x := v[s] + bias
		gv := float32(1)
		if fired[s] != 0 {
			gv = beta * g[s]
		}
		g[s] = gv
		th := gv * vth
		pay[s] = th
		if x >= th {
			x -= th
			fired[s] = ^uint32(0)
			m |= 1 << uint(s)
		} else {
			fired[s] = 0
		}
		v[s] = x
	}
	return m
}

func fireRowBurstGeneric(v, g, pay []float32, fired []uint32, bias, beta, vth float32) uint64 {
	return fireRowBurstScalar(v, g, pay, fired, 0, 0, bias, beta, vth)
}

func fireRowBiasGeneric(v []float32, bias, th float32) uint64 {
	var m uint64
	for s, x := range v {
		x += bias
		if x >= th {
			x -= th
			m |= 1 << uint(s)
		}
		v[s] = x
	}
	return m
}
