package kernels

import (
	"math"
	"testing"

	"burstsnn/internal/mathx"
)

// The reference implementations below are deliberately naive scalar
// loops — no unrolling, no hoisting beyond the single wp product (which
// the contract requires: the multiply is rounded once, then added). The
// fuzz tests drive the exported kernels against them at random shapes,
// requiring bit-exact float32 agreement, and forEachLevel repeats every
// fuzz under every dispatch tier this machine can run (purego, sse,
// avx2), so each tier is pinned to the same scalar reference — and
// therefore to every other tier — on every commit. CI additionally runs
// the package under the purego build and under forced KERNELS_LEVEL
// tiers.

// forEachLevel runs fn once per available dispatch tier, forcing the
// tier for the duration and restoring the detected level afterwards.
func forEachLevel(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	for _, lv := range Available() {
		t.Run("level="+lv, func(t *testing.T) {
			if err := ForceLevel(lv); err != nil {
				t.Fatal(err)
			}
			defer ForceLevel("")
			if got := ActiveLevel(); got != lv {
				t.Fatalf("ActiveLevel() = %q after ForceLevel(%q)", got, lv)
			}
			fn(t)
		})
	}
}

func refAxpyBlock(dst, row []float32, p float32, b, lanes int) {
	for i, w := range row {
		wp := w * p
		for j := 0; j < lanes; j++ {
			dst[i*b+j] += wp
		}
	}
}

func refScaleAdd(dst []float32, x float32) {
	for i := range dst {
		dst[i] += x
	}
}

func refFireRow(v []float32, th float32) uint64 {
	var m uint64
	for s := range v {
		if v[s] >= th {
			v[s] -= th
			m |= 1 << uint(s)
		}
	}
	return m
}

func refFireRowBias(v []float32, bias, th float32) uint64 {
	var m uint64
	for s := range v {
		v[s] += bias
		if v[s] >= th {
			v[s] -= th
			m |= 1 << uint(s)
		}
	}
	return m
}

func randF32s(r *mathx.RNG, n int, scale float64) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.Norm(0, scale))
	}
	return v
}

func TestKindNames(t *testing.T) {
	if k := Kind(); k != "f32" && k != "f32-sse" && k != "f32-avx2" {
		t.Fatalf("Kind() = %q, want f32, f32-sse, or f32-avx2", k)
	}
	if KindF64 != "f64" {
		t.Fatalf("KindF64 = %q", KindF64)
	}
}

func TestAxpyBlockFuzz(t *testing.T) { forEachLevel(t, testAxpyBlockFuzz) }

func testAxpyBlockFuzz(t *testing.T) {
	r := mathx.NewRNG(0xA1B0)
	for round := 0; round < 500; round++ {
		b := 1 + r.Intn(70)
		lanes := 1 + r.Intn(b)
		n := r.Intn(33)
		row := randF32s(r, n, 0.5)
		size := 1
		if n > 0 {
			size = (n-1)*b + lanes
		}
		dst := randF32s(r, size, 1)
		want := append([]float32(nil), dst...)
		p := float32(r.Norm(0, 1))

		AxpyBlock(dst, row, p, b, lanes)
		refAxpyBlock(want, row, p, b, lanes)
		for i := range want {
			if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
				t.Fatalf("round %d (b=%d lanes=%d n=%d): dst[%d] = %v, want %v",
					round, b, lanes, n, i, dst[i], want[i])
			}
		}
	}
}

func refAxpyBlockVec(dst, row, pv []float32, b, lanes int) {
	for i, w := range row {
		for j := 0; j < lanes; j++ {
			wp := w * pv[j]
			dst[i*b+j] += wp
		}
	}
}

func TestAxpyBlockVecFuzz(t *testing.T) { forEachLevel(t, testAxpyBlockVecFuzz) }

func testAxpyBlockVecFuzz(t *testing.T) {
	r := mathx.NewRNG(0xA1B2)
	for round := 0; round < 500; round++ {
		b := 1 + r.Intn(70)
		lanes := 1 + r.Intn(b)
		n := r.Intn(33)
		row := randF32s(r, n, 0.5)
		pv := randF32s(r, b, 1)
		for i := range pv {
			if r.Intn(3) == 0 {
				pv[i] = 0 // absent lanes are zero-filled in real use
			}
		}
		size := 1
		if n > 0 {
			size = (n-1)*b + lanes
		}
		dst := randF32s(r, size, 1)
		want := append([]float32(nil), dst...)

		AxpyBlockVec(dst, row, pv, b, lanes)
		refAxpyBlockVec(want, row, pv, b, lanes)
		for i := range want {
			if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
				t.Fatalf("round %d (b=%d lanes=%d n=%d): dst[%d] = %v, want %v",
					round, b, lanes, n, i, dst[i], want[i])
			}
		}
	}
}

func TestAxpyLaneFuzz(t *testing.T) { forEachLevel(t, testAxpyLaneFuzz) }

func testAxpyLaneFuzz(t *testing.T) {
	r := mathx.NewRNG(0xA1B1)
	for round := 0; round < 200; round++ {
		b := 1 + r.Intn(32)
		lane := r.Intn(b)
		n := 1 + r.Intn(40)
		row := randF32s(r, n, 0.5)
		dst := randF32s(r, n*b, 1)
		want := append([]float32(nil), dst...)
		p := float32(r.Norm(0, 1))

		AxpyLane(dst, row, p, b, lane)
		for i, w := range row {
			wp := w * p
			want[lane+i*b] += wp
		}
		for i := range want {
			if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
				t.Fatalf("round %d: dst[%d] = %v, want %v", round, i, dst[i], want[i])
			}
		}
	}
}

func TestScaleAddFuzz(t *testing.T) { forEachLevel(t, testScaleAddFuzz) }

func testScaleAddFuzz(t *testing.T) {
	r := mathx.NewRNG(0x5CA1)
	for round := 0; round < 300; round++ {
		dst := randF32s(r, r.Intn(130), 1)
		want := append([]float32(nil), dst...)
		x := float32(r.Norm(0, 1))
		ScaleAdd(dst, x)
		refScaleAdd(want, x)
		for i := range want {
			if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
				t.Fatalf("round %d: dst[%d] = %v, want %v", round, i, dst[i], want[i])
			}
		}
	}
}

// fireCase fuzzes one fire kernel against its reference, including
// exact-threshold lanes (v == th must fire and reset to exactly 0).
func fireCase(t *testing.T, round int, r *mathx.RNG, bias bool) {
	t.Helper()
	n := 1 + r.Intn(64)
	th := float32(0.125 * math.Pow(2, float64(r.Intn(6))))
	v := make([]float32, n)
	for i := range v {
		switch r.Intn(5) {
		case 0:
			v[i] = th // exact threshold: must fire
		case 1:
			v[i] = th * float32(r.Norm(1, 1e-6)) // near-threshold
		default:
			v[i] = float32(r.Norm(0, float64(th)*2))
		}
	}
	want := append([]float32(nil), v...)
	var got, ref uint64
	if bias {
		bv := float32(r.Norm(0, 0.1))
		got = FireRowBias(v, bv, th)
		ref = refFireRowBias(want, bv, th)
	} else {
		got = FireRow(v, th)
		ref = refFireRow(want, th)
	}
	if got != ref {
		t.Fatalf("round %d (bias=%v n=%d th=%v): mask %064b, want %064b", round, bias, n, th, got, ref)
	}
	for i := range want {
		if math.Float32bits(v[i]) != math.Float32bits(want[i]) {
			t.Fatalf("round %d (bias=%v): v[%d] = %v, want %v", round, bias, i, v[i], want[i])
		}
	}
}

func TestFireRowFuzz(t *testing.T) { forEachLevel(t, testFireRowFuzz) }

func testFireRowFuzz(t *testing.T) {
	r := mathx.NewRNG(0xF12E)
	for round := 0; round < 500; round++ {
		fireCase(t, round, r, false)
		fireCase(t, round, r, true)
	}
}

func refFireRowBurst(v, g, pay []float32, fired []uint32, bias, beta, vth float32) uint64 {
	var m uint64
	for s := range v {
		v[s] += bias
		gv := float32(1)
		if fired[s] != 0 {
			gv = beta * g[s]
		}
		g[s] = gv
		th := gv * vth
		pay[s] = th
		if v[s] >= th {
			v[s] -= th
			fired[s] = ^uint32(0)
			m |= 1 << uint(s)
		} else {
			fired[s] = 0
		}
	}
	return m
}

func TestFireRowBurstFuzz(t *testing.T) { forEachLevel(t, testFireRowBurstFuzz) }

func testFireRowBurstFuzz(t *testing.T) {
	r := mathx.NewRNG(0xB125)
	for round := 0; round < 600; round++ {
		n := 1 + r.Intn(64)
		beta := float32(2)
		vth := float32(0.125)
		bias := float32(r.Norm(0, 0.05))
		v := make([]float32, n)
		g := make([]float32, n)
		fired := make([]uint32, n)
		for i := range v {
			v[i] = float32(r.Norm(0, 0.5))
			g[i] = float32(math.Pow(2, float64(r.Intn(6)))) // burst ladder states
			if r.Bernoulli(0.5) {
				fired[i] = ^uint32(0)
			}
			if r.Intn(5) == 0 {
				// Exact threshold: must fire and reset to exactly 0.
				gv := g[i]
				if fired[i] == 0 {
					gv = 1
				} else {
					gv = beta * g[i]
				}
				v[i] = gv*vth - bias
			}
		}
		pay := make([]float32, n)
		wantV := append([]float32(nil), v...)
		wantG := append([]float32(nil), g...)
		wantF := append([]uint32(nil), fired...)
		wantP := make([]float32, n)

		got := FireRowBurst(v, g, pay, fired, bias, beta, vth)
		want := refFireRowBurst(wantV, wantG, wantP, wantF, bias, beta, vth)
		if got != want {
			t.Fatalf("round %d (n=%d): mask %064b, want %064b", round, n, got, want)
		}
		for i := range wantV {
			if math.Float32bits(v[i]) != math.Float32bits(wantV[i]) ||
				math.Float32bits(g[i]) != math.Float32bits(wantG[i]) ||
				math.Float32bits(pay[i]) != math.Float32bits(wantP[i]) ||
				fired[i] != wantF[i] {
				t.Fatalf("round %d lane %d: v %v/%v g %v/%v pay %v/%v fired %x/%x",
					round, i, v[i], wantV[i], g[i], wantG[i], pay[i], wantP[i], fired[i], wantF[i])
			}
		}
	}
}

func TestConvScatterVecFuzz(t *testing.T) { forEachLevel(t, testConvScatterVecFuzz) }

func testConvScatterVecFuzz(t *testing.T) {
	r := mathx.NewRNG(0xC05C)
	for round := 0; round < 400; round++ {
		b := 1 + r.Intn(12)
		if r.Bernoulli(0.5) {
			b = 8 // exercise the packed fast path half the time
		}
		outC := 1 + r.Intn(9)
		nBases := 1 + r.Intn(6)
		wscLen := outC * (1 + r.Intn(5))
		wsc := randF32s(r, wscLen, 0.5)
		taps := make([]ConvTap, r.Intn(9))
		for i := range taps {
			taps[i] = ConvTap{
				WOff: int32(r.Intn(wscLen-outC+1) / outC * outC),
				Base: int32(r.Intn(nBases)),
			}
		}
		vmem := randF32s(r, nBases*outC*b, 1)
		pv := randF32s(r, b, 1)
		for i := range pv {
			if r.Intn(3) == 0 {
				pv[i] = 0
			}
		}
		want := append([]float32(nil), vmem...)
		// Reference: the per-tap AxpyBlockVec contract, naive scalar form.
		for _, tp := range taps {
			for i := 0; i < outC; i++ {
				w := wsc[int(tp.WOff)+i]
				for j := 0; j < b; j++ {
					wp := w * pv[j]
					want[int(tp.Base)*outC*b+i*b+j] += wp
				}
			}
		}
		ConvScatterVec(vmem, wsc, taps, outC, b, pv)
		for i := range want {
			if math.Float32bits(vmem[i]) != math.Float32bits(want[i]) {
				t.Fatalf("round %d (b=%d outC=%d taps=%d): vmem[%d] = %v, want %v",
					round, b, outC, len(taps), i, vmem[i], want[i])
			}
		}
	}
}

func TestFireRowsBurstFuzz(t *testing.T) { forEachLevel(t, testFireRowsBurstFuzz) }

func testFireRowsBurstFuzz(t *testing.T) {
	r := mathx.NewRNG(0xF805)
	for round := 0; round < 300; round++ {
		b := 1 + r.Intn(12)
		if r.Bernoulli(0.5) {
			b = 8
		}
		n := 1 + r.Intn(150) // cross occ-word boundaries regularly
		beta := float32(2)
		vth := float32(0.125)
		bsc := float32(r.Norm(1, 0.2))
		var bias []float32
		if r.Bernoulli(0.7) {
			bias = randF32s(r, n, 0.05)
		}
		v := randF32s(r, n*b, 0.25)
		g := make([]float32, n*b)
		fired := make([]uint32, n*b)
		for i := range g {
			g[i] = float32(math.Pow(2, float64(r.Intn(5))))
			if r.Bernoulli(0.5) {
				fired[i] = ^uint32(0)
			}
		}
		pay := make([]float32, n*b)
		masks := make([]uint64, n)
		occ := make([]uint64, (n+63)/64)

		wantV := append([]float32(nil), v...)
		wantG := append([]float32(nil), g...)
		wantF := append([]uint32(nil), fired...)
		wantP := make([]float32, n*b)
		wantM := make([]uint64, n)
		wantOcc := make([]uint64, len(occ))
		for c := 0; c < n; c++ {
			var bv float32
			if bias != nil {
				bv = bias[c] * bsc
			}
			o := c * b
			wantM[c] = refFireRowBurst(wantV[o:o+b], wantG[o:o+b], wantP[o:o+b], wantF[o:o+b], bv, beta, vth)
			if wantM[c] != 0 {
				wantOcc[c>>6] |= 1 << (uint(c) & 63)
			}
		}

		FireRowsBurst(v, g, pay, fired, masks, occ, n, b, bias, bsc, beta, vth)
		for c := 0; c < n; c++ {
			if masks[c] != wantM[c] {
				t.Fatalf("round %d (n=%d b=%d): masks[%d] %064b, want %064b", round, n, b, c, masks[c], wantM[c])
			}
		}
		for w := range occ {
			if occ[w] != wantOcc[w] {
				t.Fatalf("round %d (n=%d b=%d): occ[%d] %064b, want %064b", round, n, b, w, occ[w], wantOcc[w])
			}
		}
		for i := range wantV {
			if math.Float32bits(v[i]) != math.Float32bits(wantV[i]) ||
				math.Float32bits(g[i]) != math.Float32bits(wantG[i]) ||
				math.Float32bits(pay[i]) != math.Float32bits(wantP[i]) ||
				fired[i] != wantF[i] {
				t.Fatalf("round %d (n=%d b=%d) elem %d: v %v/%v g %v/%v pay %v/%v fired %x/%x",
					round, n, b, i, v[i], wantV[i], g[i], wantG[i], pay[i], wantP[i], fired[i], wantF[i])
			}
		}
	}
}

func refSelectMaxRow(best, row []float32, idx []int32, o int32, lanes int) {
	for s := 0; s < lanes; s++ {
		if row[s] > best[s] {
			best[s] = row[s]
			idx[s] = o
		}
	}
}

func TestSelectMaxRowFuzz(t *testing.T) { forEachLevel(t, testSelectMaxRowFuzz) }

func testSelectMaxRowFuzz(t *testing.T) {
	r := mathx.NewRNG(0xA26A)
	for round := 0; round < 400; round++ {
		lanes := 1 + r.Intn(64)
		best := randF32s(r, lanes, 1)
		row := randF32s(r, lanes, 1)
		for i := range row {
			if r.Intn(4) == 0 {
				row[i] = best[i] // exact ties must NOT replace (first wins)
			}
		}
		idx := make([]int32, lanes)
		for i := range idx {
			idx[i] = int32(r.Intn(10))
		}
		o := int32(r.Intn(100))
		wantBest := append([]float32(nil), best...)
		wantIdx := append([]int32(nil), idx...)

		SelectMaxRow(best, row, idx, o, lanes)
		refSelectMaxRow(wantBest, row, wantIdx, o, lanes)
		for s := 0; s < lanes; s++ {
			if math.Float32bits(best[s]) != math.Float32bits(wantBest[s]) || idx[s] != wantIdx[s] {
				t.Fatalf("round %d lane %d (lanes=%d o=%d): best %v/%v idx %d/%d",
					round, s, lanes, o, best[s], wantBest[s], idx[s], wantIdx[s])
			}
		}
	}
}

func TestLaneMaskFuzz(t *testing.T) { forEachLevel(t, testLaneMaskFuzz) }

func testLaneMaskFuzz(t *testing.T) {
	r := mathx.NewRNG(0x1A5E)
	for round := 0; round < 400; round++ {
		n := 1 + r.Intn(64)
		row := make([]uint64, n)
		for i := range row {
			row[i] = uint64(r.Intn(1 << 16))
			if r.Bernoulli(0.3) {
				row[i] = uint64(r.Intn(8)) // dense small values for the eq sweep
			}
		}
		shift := uint(r.Intn(64))
		want := uint64(r.Intn(8))

		var refBit, refEq uint64
		for s, bv := range row {
			if bv>>shift&1 == 1 {
				refBit |= 1 << uint(s)
			}
			if bv == want {
				refEq |= 1 << uint(s)
			}
		}
		if got := LaneMaskBit(row, shift); got != refBit {
			t.Fatalf("round %d (n=%d shift=%d): LaneMaskBit %064b, want %064b", round, n, shift, got, refBit)
		}
		if got := LaneMaskEq(row, want); got != refEq {
			t.Fatalf("round %d (n=%d want=%d): LaneMaskEq %064b, want %064b", round, n, want, got, refEq)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	AxpyBlock(nil, nil, 1, 4, 2)
	AxpyBlock([]float32{1}, []float32{1}, 1, 4, 0)
	AxpyBlockVec(nil, nil, nil, 4, 2)
	AxpyBlockVec([]float32{1}, []float32{1}, []float32{1}, 4, 0)
	ScaleAdd(nil, 1)
	if FireRow(nil, 1) != 0 || FireRowBias(nil, 1, 1) != 0 {
		t.Fatal("empty fire rows must return empty masks")
	}
	SelectMaxRow(nil, nil, nil, 3, 0)
	if LaneMaskBit(nil, 5) != 0 || LaneMaskEq(nil, 1) != 0 {
		t.Fatal("empty lane sweeps must return empty masks")
	}
}

func BenchmarkAxpyBlock(b *testing.B) {
	const outC, lanes = 4, 8
	dst := make([]float32, outC*lanes)
	row := make([]float32, outC)
	for i := range row {
		row[i] = float32(i) * 0.25
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AxpyBlock(dst, row, 0.5, lanes, lanes)
	}
}

func BenchmarkFireRow(b *testing.B) {
	v := make([]float32, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range v {
			v[j] = float32(j) * 0.3
		}
		FireRow(v, 1)
	}
}
