package kernels

import (
	"math"
	"testing"

	"burstsnn/internal/mathx"
)

// The reference implementations below are deliberately naive scalar
// loops — no unrolling, no hoisting beyond the single wp product (which
// the contract requires: the multiply is rounded once, then added). The
// fuzz tests drive the exported kernels against them at random shapes,
// requiring bit-exact float32 agreement; CI runs this package under both
// the assembly and the purego builds.

func refAxpyBlock(dst, row []float32, p float32, b, lanes int) {
	for i, w := range row {
		wp := w * p
		for j := 0; j < lanes; j++ {
			dst[i*b+j] += wp
		}
	}
}

func refScaleAdd(dst []float32, x float32) {
	for i := range dst {
		dst[i] += x
	}
}

func refFireRow(v []float32, th float32) uint64 {
	var m uint64
	for s := range v {
		if v[s] >= th {
			v[s] -= th
			m |= 1 << uint(s)
		}
	}
	return m
}

func refFireRowBias(v []float32, bias, th float32) uint64 {
	var m uint64
	for s := range v {
		v[s] += bias
		if v[s] >= th {
			v[s] -= th
			m |= 1 << uint(s)
		}
	}
	return m
}

func randF32s(r *mathx.RNG, n int, scale float64) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.Norm(0, scale))
	}
	return v
}

func TestKindNames(t *testing.T) {
	if k := Kind(); k != "f32" && k != "f32-asm" {
		t.Fatalf("Kind() = %q, want f32 or f32-asm", k)
	}
	if KindF64 != "f64" {
		t.Fatalf("KindF64 = %q", KindF64)
	}
}

func TestAxpyBlockFuzz(t *testing.T) {
	r := mathx.NewRNG(0xA1B0)
	for round := 0; round < 500; round++ {
		b := 1 + r.Intn(70)
		lanes := 1 + r.Intn(b)
		n := r.Intn(33)
		row := randF32s(r, n, 0.5)
		size := 1
		if n > 0 {
			size = (n-1)*b + lanes
		}
		dst := randF32s(r, size, 1)
		want := append([]float32(nil), dst...)
		p := float32(r.Norm(0, 1))

		AxpyBlock(dst, row, p, b, lanes)
		refAxpyBlock(want, row, p, b, lanes)
		for i := range want {
			if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
				t.Fatalf("round %d (b=%d lanes=%d n=%d): dst[%d] = %v, want %v",
					round, b, lanes, n, i, dst[i], want[i])
			}
		}
	}
}

func refAxpyBlockVec(dst, row, pv []float32, b, lanes int) {
	for i, w := range row {
		for j := 0; j < lanes; j++ {
			wp := w * pv[j]
			dst[i*b+j] += wp
		}
	}
}

func TestAxpyBlockVecFuzz(t *testing.T) {
	r := mathx.NewRNG(0xA1B2)
	for round := 0; round < 500; round++ {
		b := 1 + r.Intn(70)
		lanes := 1 + r.Intn(b)
		n := r.Intn(33)
		row := randF32s(r, n, 0.5)
		pv := randF32s(r, b, 1)
		for i := range pv {
			if r.Intn(3) == 0 {
				pv[i] = 0 // absent lanes are zero-filled in real use
			}
		}
		size := 1
		if n > 0 {
			size = (n-1)*b + lanes
		}
		dst := randF32s(r, size, 1)
		want := append([]float32(nil), dst...)

		AxpyBlockVec(dst, row, pv, b, lanes)
		refAxpyBlockVec(want, row, pv, b, lanes)
		for i := range want {
			if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
				t.Fatalf("round %d (b=%d lanes=%d n=%d): dst[%d] = %v, want %v",
					round, b, lanes, n, i, dst[i], want[i])
			}
		}
	}
}

func TestAxpyLaneFuzz(t *testing.T) {
	r := mathx.NewRNG(0xA1B1)
	for round := 0; round < 200; round++ {
		b := 1 + r.Intn(32)
		lane := r.Intn(b)
		n := 1 + r.Intn(40)
		row := randF32s(r, n, 0.5)
		dst := randF32s(r, n*b, 1)
		want := append([]float32(nil), dst...)
		p := float32(r.Norm(0, 1))

		AxpyLane(dst, row, p, b, lane)
		for i, w := range row {
			wp := w * p
			want[lane+i*b] += wp
		}
		for i := range want {
			if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
				t.Fatalf("round %d: dst[%d] = %v, want %v", round, i, dst[i], want[i])
			}
		}
	}
}

func TestScaleAddFuzz(t *testing.T) {
	r := mathx.NewRNG(0x5CA1)
	for round := 0; round < 300; round++ {
		dst := randF32s(r, r.Intn(130), 1)
		want := append([]float32(nil), dst...)
		x := float32(r.Norm(0, 1))
		ScaleAdd(dst, x)
		refScaleAdd(want, x)
		for i := range want {
			if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
				t.Fatalf("round %d: dst[%d] = %v, want %v", round, i, dst[i], want[i])
			}
		}
	}
}

// fireCase fuzzes one fire kernel against its reference, including
// exact-threshold lanes (v == th must fire and reset to exactly 0).
func fireCase(t *testing.T, round int, r *mathx.RNG, bias bool) {
	t.Helper()
	n := 1 + r.Intn(64)
	th := float32(0.125 * math.Pow(2, float64(r.Intn(6))))
	v := make([]float32, n)
	for i := range v {
		switch r.Intn(5) {
		case 0:
			v[i] = th // exact threshold: must fire
		case 1:
			v[i] = th * float32(r.Norm(1, 1e-6)) // near-threshold
		default:
			v[i] = float32(r.Norm(0, float64(th)*2))
		}
	}
	want := append([]float32(nil), v...)
	var got, ref uint64
	if bias {
		bv := float32(r.Norm(0, 0.1))
		got = FireRowBias(v, bv, th)
		ref = refFireRowBias(want, bv, th)
	} else {
		got = FireRow(v, th)
		ref = refFireRow(want, th)
	}
	if got != ref {
		t.Fatalf("round %d (bias=%v n=%d th=%v): mask %064b, want %064b", round, bias, n, th, got, ref)
	}
	for i := range want {
		if math.Float32bits(v[i]) != math.Float32bits(want[i]) {
			t.Fatalf("round %d (bias=%v): v[%d] = %v, want %v", round, bias, i, v[i], want[i])
		}
	}
}

func TestFireRowFuzz(t *testing.T) {
	r := mathx.NewRNG(0xF12E)
	for round := 0; round < 500; round++ {
		fireCase(t, round, r, false)
		fireCase(t, round, r, true)
	}
}

func refFireRowBurst(v, g, pay []float32, fired []uint32, bias, beta, vth float32) uint64 {
	var m uint64
	for s := range v {
		v[s] += bias
		gv := float32(1)
		if fired[s] != 0 {
			gv = beta * g[s]
		}
		g[s] = gv
		th := gv * vth
		pay[s] = th
		if v[s] >= th {
			v[s] -= th
			fired[s] = ^uint32(0)
			m |= 1 << uint(s)
		} else {
			fired[s] = 0
		}
	}
	return m
}

func TestFireRowBurstFuzz(t *testing.T) {
	r := mathx.NewRNG(0xB125)
	for round := 0; round < 600; round++ {
		n := 1 + r.Intn(64)
		beta := float32(2)
		vth := float32(0.125)
		bias := float32(r.Norm(0, 0.05))
		v := make([]float32, n)
		g := make([]float32, n)
		fired := make([]uint32, n)
		for i := range v {
			v[i] = float32(r.Norm(0, 0.5))
			g[i] = float32(math.Pow(2, float64(r.Intn(6)))) // burst ladder states
			if r.Bernoulli(0.5) {
				fired[i] = ^uint32(0)
			}
			if r.Intn(5) == 0 {
				// Exact threshold: must fire and reset to exactly 0.
				gv := g[i]
				if fired[i] == 0 {
					gv = 1
				} else {
					gv = beta * g[i]
				}
				v[i] = gv*vth - bias
			}
		}
		pay := make([]float32, n)
		wantV := append([]float32(nil), v...)
		wantG := append([]float32(nil), g...)
		wantF := append([]uint32(nil), fired...)
		wantP := make([]float32, n)

		got := FireRowBurst(v, g, pay, fired, bias, beta, vth)
		want := refFireRowBurst(wantV, wantG, wantP, wantF, bias, beta, vth)
		if got != want {
			t.Fatalf("round %d (n=%d): mask %064b, want %064b", round, n, got, want)
		}
		for i := range wantV {
			if math.Float32bits(v[i]) != math.Float32bits(wantV[i]) ||
				math.Float32bits(g[i]) != math.Float32bits(wantG[i]) ||
				math.Float32bits(pay[i]) != math.Float32bits(wantP[i]) ||
				fired[i] != wantF[i] {
				t.Fatalf("round %d lane %d: v %v/%v g %v/%v pay %v/%v fired %x/%x",
					round, i, v[i], wantV[i], g[i], wantG[i], pay[i], wantP[i], fired[i], wantF[i])
			}
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	AxpyBlock(nil, nil, 1, 4, 2)
	AxpyBlock([]float32{1}, []float32{1}, 1, 4, 0)
	AxpyBlockVec(nil, nil, nil, 4, 2)
	AxpyBlockVec([]float32{1}, []float32{1}, []float32{1}, 4, 0)
	ScaleAdd(nil, 1)
	if FireRow(nil, 1) != 0 || FireRowBias(nil, 1, 1) != 0 {
		t.Fatal("empty fire rows must return empty masks")
	}
}

func BenchmarkAxpyBlock(b *testing.B) {
	const outC, lanes = 4, 8
	dst := make([]float32, outC*lanes)
	row := make([]float32, outC)
	for i := range row {
		row[i] = float32(i) * 0.25
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AxpyBlock(dst, row, 0.5, lanes, lanes)
	}
}

func BenchmarkFireRow(b *testing.B) {
	v := make([]float32, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range v {
			v[j] = float32(j) * 0.3
		}
		FireRow(v, 1)
	}
}
