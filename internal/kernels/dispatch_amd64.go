//go:build amd64 && !purego

package kernels

const kind = "f32-asm"

// The assembly kernels (kernels_amd64.s) use only baseline SSE — MOVUPS,
// ADDPS, MULSS, SHUFPS, CMPPS, MOVMSKPS — which every amd64 CPU
// guarantees, so there is no CPUID dispatch. They take raw pointers; the
// exported wrappers in kernels.go have already validated lengths.

//go:noescape
func axpyBlockAsm(dst, row *float32, n int, p float32, b, lanes int)

//go:noescape
func axpyBlockVecAsm(dst, row, pv *float32, n, b, lanes int)

//go:noescape
func scaleAddAsm(dst *float32, n int, x float32)

//go:noescape
func fireRowAsm(v *float32, n int, th float32) uint64

//go:noescape
func fireRowBiasAsm(v *float32, n int, bias, th float32) uint64

//go:noescape
func fireRowBurstAsm(v, gs, pay *float32, fired *uint32, n int, bias, beta, vth float32) uint64

func axpyBlock(dst, row []float32, p float32, b, lanes int) {
	axpyBlockAsm(&dst[0], &row[0], len(row), p, b, lanes)
}

func axpyBlockVec(dst, row, pv []float32, b, lanes int) {
	axpyBlockVecAsm(&dst[0], &row[0], &pv[0], len(row), b, lanes)
}

func scaleAdd(dst []float32, x float32) {
	scaleAddAsm(&dst[0], len(dst), x)
}

func fireRow(v []float32, th float32) uint64 {
	return fireRowAsm(&v[0], len(v), th)
}

func fireRowBias(v []float32, bias, th float32) uint64 {
	return fireRowBiasAsm(&v[0], len(v), bias, th)
}

func fireRowBurst(v, g, pay []float32, fired []uint32, bias, beta, vth float32) uint64 {
	n4 := len(v) &^ 3
	var m uint64
	if n4 > 0 {
		m = fireRowBurstAsm(&v[0], &g[0], &pay[0], &fired[0], n4, bias, beta, vth)
	}
	return fireRowBurstScalar(v, g, pay, fired, n4, m, bias, beta, vth)
}
