//go:build amd64 && !purego

package kernels

import (
	"fmt"
	"sync/atomic"
)

// The amd64 build carries three dispatch tiers (see level.go):
//
//   - purego: the generic Go loops, shared with the purego build;
//   - sse: baseline-SSE assembly (kernels_amd64.s) — MOVUPS, ADDPS,
//     MULSS, SHUFPS, CMPPS, MOVMSKPS — which every amd64 CPU guarantees;
//   - avx2: AVX2 assembly (kernels_avx2_amd64.s) — VEX-encoded 8-lane
//     packed single precision, gated on CPUID (AVX2 + OSXSAVE with
//     YMM state enabled in XCR0).
//
// The tier is detected once at startup (hand-rolled CPUID — no
// dependencies) and stored in an atomic so ForceLevel is safe against
// concurrent kernel calls; the per-call load is an ordinary x86 read.
// The assembly kernels take raw pointers; the exported wrappers in
// kernels.go have already validated lengths.

type level int32

const (
	levelPurego level = iota
	levelSSE
	levelAVX2
)

var levelNames = [...]string{LevelPurego, LevelSSE, LevelAVX2}

var (
	detected = detectLevel()
	baseline = detected // startup level: detected, or the KERNELS_LEVEL override
	active   atomic.Int32
)

func init() {
	active.Store(int32(detected))
	initLevelFromEnv()
	baseline = activeLevel()
}

// cpuid executes CPUID with the given leaf/subleaf (cpuid_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask (cpuid_amd64.s).
func xgetbv0() (eax, edx uint32)

// detectLevel walks the CPUID ladder: AVX2 requires the AVX2 feature
// bit (leaf 7 EBX[5]) plus AVX and OSXSAVE (leaf 1 ECX[28], ECX[27])
// with the OS actually enabling XMM+YMM state in XCR0 (bits 1 and 2) —
// without the XCR0 check a kernel or VM that masks YMM state would
// fault on the first VMOVUPS. Baseline SSE needs no detection.
func detectLevel() level {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return levelSSE
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return levelSSE
	}
	if xcr0, _ := xgetbv0(); xcr0&0x6 != 0x6 {
		return levelSSE
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	if b7&avx2 == 0 {
		return levelSSE
	}
	return levelAVX2
}

func activeLevel() level { return level(active.Load()) }

func activeLevelName() string   { return levelNames[activeLevel()] }
func detectedLevelName() string { return levelNames[detected] }

func availableLevels() []string {
	return append([]string(nil), levelNames[:detected+1]...)
}

func forceLevel(name string) error {
	lv := baseline
	if name != "" {
		found := false
		for i, n := range levelNames {
			if n == name {
				lv, found = level(i), true
				break
			}
		}
		if !found {
			return fmt.Errorf("kernels: unknown dispatch level %q (want %q, %q, or %q)",
				name, LevelPurego, LevelSSE, LevelAVX2)
		}
		if lv > detected {
			return fmt.Errorf("kernels: dispatch level %q is not supported on this machine (detected %q)",
				name, detectedLevelName())
		}
	}
	active.Store(int32(lv))
	return nil
}

func kindName() string {
	switch activeLevel() {
	case levelAVX2:
		return "f32-avx2"
	case levelSSE:
		return "f32-sse"
	default:
		return "f32"
	}
}

// Baseline-SSE kernels (kernels_amd64.s).

//go:noescape
func axpyBlockAsm(dst, row *float32, n int, p float32, b, lanes int)

//go:noescape
func axpyBlockVecAsm(dst, row, pv *float32, n, b, lanes int)

//go:noescape
func scaleAddAsm(dst *float32, n int, x float32)

//go:noescape
func fireRowAsm(v *float32, n int, th float32) uint64

//go:noescape
func fireRowBiasAsm(v *float32, n int, bias, th float32) uint64

//go:noescape
func fireRowBurstAsm(v, gs, pay *float32, fired *uint32, n int, bias, beta, vth float32) uint64

//go:noescape
func selectMaxRowAsm(best, row *float32, idx *int32, n int, o int32)

//go:noescape
func convScatterVecAsm(vmem, wsc *float32, taps *ConvTap, ntaps, outC int, pv *float32)

//go:noescape
func fireRowsBurstAsm(v, gs, pay *float32, fired *uint32, masks, occ *uint64, n int, bias *float32, bsc, beta, vth float32)

// AVX2 kernels (kernels_avx2_amd64.s).

//go:noescape
func axpyBlockAVX2(dst, row *float32, n int, p float32, b, lanes int)

//go:noescape
func axpyBlockVecAVX2(dst, row, pv *float32, n, b, lanes int)

//go:noescape
func scaleAddAVX2(dst *float32, n int, x float32)

//go:noescape
func fireRowAVX2(v *float32, n int, th float32) uint64

//go:noescape
func fireRowBiasAVX2(v *float32, n int, bias, th float32) uint64

//go:noescape
func fireRowBurstAVX2(v, gs, pay *float32, fired *uint32, n int, bias, beta, vth float32) uint64

//go:noescape
func selectMaxRowAVX2(best, row *float32, idx *int32, n int, o int32)

//go:noescape
func laneMaskBitAVX2(row *uint64, n int, shiftLeft uint64) uint64

//go:noescape
func laneMaskEqAVX2(row *uint64, n int, want uint64) uint64

//go:noescape
func convScatterVecAVX2(vmem, wsc *float32, taps *ConvTap, ntaps, outC int, pv *float32)

//go:noescape
func fireRowsBurstAVX2(v, gs, pay *float32, fired *uint32, masks, occ *uint64, n int, bias *float32, bsc, beta, vth float32)

func axpyBlock(dst, row []float32, p float32, b, lanes int) {
	switch activeLevel() {
	case levelAVX2:
		axpyBlockAVX2(&dst[0], &row[0], len(row), p, b, lanes)
	case levelSSE:
		axpyBlockAsm(&dst[0], &row[0], len(row), p, b, lanes)
	default:
		axpyBlockGeneric(dst, row, p, b, lanes)
	}
}

func axpyBlockVec(dst, row, pv []float32, b, lanes int) {
	switch activeLevel() {
	case levelAVX2:
		axpyBlockVecAVX2(&dst[0], &row[0], &pv[0], len(row), b, lanes)
	case levelSSE:
		axpyBlockVecAsm(&dst[0], &row[0], &pv[0], len(row), b, lanes)
	default:
		axpyBlockVecGeneric(dst, row, pv, b, lanes)
	}
}

func scaleAdd(dst []float32, x float32) {
	switch activeLevel() {
	case levelAVX2:
		scaleAddAVX2(&dst[0], len(dst), x)
	case levelSSE:
		scaleAddAsm(&dst[0], len(dst), x)
	default:
		scaleAddGeneric(dst, x)
	}
}

func fireRow(v []float32, th float32) uint64 {
	switch activeLevel() {
	case levelAVX2:
		return fireRowAVX2(&v[0], len(v), th)
	case levelSSE:
		return fireRowAsm(&v[0], len(v), th)
	default:
		return fireRowGeneric(v, th)
	}
}

func fireRowBias(v []float32, bias, th float32) uint64 {
	switch activeLevel() {
	case levelAVX2:
		return fireRowBiasAVX2(&v[0], len(v), bias, th)
	case levelSSE:
		return fireRowBiasAsm(&v[0], len(v), bias, th)
	default:
		return fireRowBiasGeneric(v, bias, th)
	}
}

func fireRowBurst(v, g, pay []float32, fired []uint32, bias, beta, vth float32) uint64 {
	switch activeLevel() {
	case levelAVX2:
		// Packed 8-lane groups, then 4-lane SSE on the next full group
		// (its mask bits shifted into place), then the scalar tail.
		n := len(v) &^ 7
		var m uint64
		if n > 0 {
			m = fireRowBurstAVX2(&v[0], &g[0], &pay[0], &fired[0], n, bias, beta, vth)
		}
		if len(v)-n >= 4 {
			m |= fireRowBurstAsm(&v[n], &g[n], &pay[n], &fired[n], 4, bias, beta, vth) << uint(n)
			n += 4
		}
		return fireRowBurstScalar(v, g, pay, fired, n, m, bias, beta, vth)
	case levelSSE:
		n4 := len(v) &^ 3
		var m uint64
		if n4 > 0 {
			m = fireRowBurstAsm(&v[0], &g[0], &pay[0], &fired[0], n4, bias, beta, vth)
		}
		return fireRowBurstScalar(v, g, pay, fired, n4, m, bias, beta, vth)
	default:
		return fireRowBurstGeneric(v, g, pay, fired, bias, beta, vth)
	}
}

func convScatterVec(vmem, wsc []float32, taps []ConvTap, outC, b int, pv []float32) {
	// The packed forms are specialized to the serving stripe width
	// (b == 8: one YMM, or one XMM pair, per stripe, payloads pinned in
	// registers across the whole tap walk); other widths take the
	// generic walk.
	if b == 8 {
		switch activeLevel() {
		case levelAVX2:
			convScatterVecAVX2(&vmem[0], &wsc[0], &taps[0], len(taps), outC, &pv[0])
			return
		case levelSSE:
			convScatterVecAsm(&vmem[0], &wsc[0], &taps[0], len(taps), outC, &pv[0])
			return
		}
	}
	if activeLevel() == levelPurego {
		convScatterVecGeneric(vmem, wsc, taps, outC, b, pv)
		return
	}
	// Other stripe widths: per-tap packed scatters (identical operations
	// — the fusion is specialized to the serving width, the arithmetic
	// is not).
	outCb := outC * b
	for _, tp := range taps {
		axpyBlockVec(vmem[int(tp.Base)*outCb:int(tp.Base)*outCb+outCb],
			wsc[tp.WOff:int(tp.WOff)+outC], pv, b, b)
	}
}

func fireRowsBurst(v, g, pay []float32, fired []uint32, masks, occ []uint64, n, b int, bias []float32, bsc, beta, vth float32) {
	if b == 8 {
		var bp *float32
		if bias != nil {
			bp = &bias[0]
		}
		switch activeLevel() {
		case levelAVX2:
			fireRowsBurstAVX2(&v[0], &g[0], &pay[0], &fired[0], &masks[0], &occ[0], n, bp, bsc, beta, vth)
			return
		case levelSSE:
			fireRowsBurstAsm(&v[0], &g[0], &pay[0], &fired[0], &masks[0], &occ[0], n, bp, bsc, beta, vth)
			return
		}
	}
	if activeLevel() == levelPurego {
		fireRowsBurstGeneric(v, g, pay, fired, masks, occ, n, b, bias, bsc, beta, vth)
		return
	}
	// Other stripe widths: per-row packed fire passes through the shared
	// row sweep (identical bookkeeping to the generic form).
	fireRowsBurstLoop(v, g, pay, fired, masks, occ, n, b, bias, bsc,
		func(v, g, pay []float32, fired []uint32, bv float32) uint64 {
			return fireRowBurst(v, g, pay, fired, bv, beta, vth)
		})
}

func selectMaxRow(best, row []float32, idx []int32, o int32, lanes int) {
	switch activeLevel() {
	case levelAVX2:
		n := lanes &^ 3
		if n > 0 {
			selectMaxRowAVX2(&best[0], &row[0], &idx[0], n, o)
		}
		selectMaxRowScalar(best, row, idx, o, n, lanes)
	case levelSSE:
		n := lanes &^ 3
		if n > 0 {
			selectMaxRowAsm(&best[0], &row[0], &idx[0], n, o)
		}
		selectMaxRowScalar(best, row, idx, o, n, lanes)
	default:
		selectMaxRowScalar(best, row, idx, o, 0, lanes)
	}
}

func laneMaskBit(row []uint64, shift uint) uint64 {
	if activeLevel() == levelAVX2 {
		n := len(row) &^ 3
		var m uint64
		if n > 0 {
			m = laneMaskBitAVX2(&row[0], n, uint64(63-shift))
		}
		return m | laneMaskBitScalar(row, shift, n)
	}
	// The integer bit sweep has no profitable baseline-SSE form (64-bit
	// packed shifts and compares arrived with AVX2 for YMM widths); the
	// sse tier shares the scalar loop.
	return laneMaskBitScalar(row, shift, 0)
}

func laneMaskEq(row []uint64, want uint64) uint64 {
	if activeLevel() == levelAVX2 {
		n := len(row) &^ 3
		var m uint64
		if n > 0 {
			m = laneMaskEqAVX2(&row[0], n, want)
		}
		return m | laneMaskEqScalar(row, want, n)
	}
	return laneMaskEqScalar(row, want, 0)
}
