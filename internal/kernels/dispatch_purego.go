//go:build purego || !amd64

package kernels

const kind = "f32"

func axpyBlock(dst, row []float32, p float32, b, lanes int) {
	axpyBlockGeneric(dst, row, p, b, lanes)
}

func axpyBlockVec(dst, row, pv []float32, b, lanes int) {
	axpyBlockVecGeneric(dst, row, pv, b, lanes)
}

func scaleAdd(dst []float32, x float32) {
	scaleAddGeneric(dst, x)
}

func fireRow(v []float32, th float32) uint64 {
	return fireRowGeneric(v, th)
}

func fireRowBias(v []float32, bias, th float32) uint64 {
	return fireRowBiasGeneric(v, bias, th)
}

func fireRowBurst(v, g, pay []float32, fired []uint32, bias, beta, vth float32) uint64 {
	return fireRowBurstGeneric(v, g, pay, fired, bias, beta, vth)
}
