//go:build purego || !amd64

package kernels

import "fmt"

// The pure-Go build has a one-rung dispatch ladder: every kernel call
// runs the generic loops and the only accepted level is LevelPurego
// (so KERNELS_LEVEL=purego works identically on both builds, and
// anything else fails loudly instead of silently testing the wrong
// tier).

func init() { initLevelFromEnv() }

func activeLevelName() string   { return LevelPurego }
func detectedLevelName() string { return LevelPurego }

func availableLevels() []string { return []string{LevelPurego} }

func forceLevel(name string) error {
	switch name {
	case "", LevelPurego:
		return nil
	case LevelSSE, LevelAVX2:
		return fmt.Errorf("kernels: dispatch level %q is not supported on this build (pure Go only)", name)
	}
	return fmt.Errorf("kernels: unknown dispatch level %q (want %q, %q, or %q)",
		name, LevelPurego, LevelSSE, LevelAVX2)
}

func kindName() string { return "f32" }

func axpyBlock(dst, row []float32, p float32, b, lanes int) {
	axpyBlockGeneric(dst, row, p, b, lanes)
}

func axpyBlockVec(dst, row, pv []float32, b, lanes int) {
	axpyBlockVecGeneric(dst, row, pv, b, lanes)
}

func scaleAdd(dst []float32, x float32) {
	scaleAddGeneric(dst, x)
}

func fireRow(v []float32, th float32) uint64 {
	return fireRowGeneric(v, th)
}

func fireRowBias(v []float32, bias, th float32) uint64 {
	return fireRowBiasGeneric(v, bias, th)
}

func fireRowBurst(v, g, pay []float32, fired []uint32, bias, beta, vth float32) uint64 {
	return fireRowBurstGeneric(v, g, pay, fired, bias, beta, vth)
}

func convScatterVec(vmem, wsc []float32, taps []ConvTap, outC, b int, pv []float32) {
	convScatterVecGeneric(vmem, wsc, taps, outC, b, pv)
}

func fireRowsBurst(v, g, pay []float32, fired []uint32, masks, occ []uint64, n, b int, bias []float32, bsc, beta, vth float32) {
	fireRowsBurstGeneric(v, g, pay, fired, masks, occ, n, b, bias, bsc, beta, vth)
}

func selectMaxRow(best, row []float32, idx []int32, o int32, lanes int) {
	selectMaxRowScalar(best, row, idx, o, 0, lanes)
}

func laneMaskBit(row []uint64, shift uint) uint64 {
	return laneMaskBitScalar(row, shift, 0)
}

func laneMaskEq(row []uint64, want uint64) uint64 {
	return laneMaskEqScalar(row, want, 0)
}
