package kernels

import (
	"math"
	"testing"

	"burstsnn/internal/mathx"
)

// Dispatch-selection contract: ForceLevel round-trips through
// ActiveLevel and Kind, rejects garbage, and the detected ladder is
// monotone — a machine that can run a tier can run every narrower one.

func TestForceLevelRoundTrip(t *testing.T) {
	start := ActiveLevel() // startup level: detected, or the env override
	defer ForceLevel("")
	kinds := map[string]string{
		LevelPurego: "f32",
		LevelSSE:    "f32-sse",
		LevelAVX2:   "f32-avx2",
	}
	for _, lv := range Available() {
		if err := ForceLevel(lv); err != nil {
			t.Fatalf("ForceLevel(%q): %v", lv, err)
		}
		if got := ActiveLevel(); got != lv {
			t.Fatalf("ActiveLevel() = %q after ForceLevel(%q)", got, lv)
		}
		if got, want := Kind(), kinds[lv]; got != want {
			t.Fatalf("Kind() = %q at level %q, want %q", got, lv, want)
		}
	}
	if err := ForceLevel(""); err != nil {
		t.Fatalf(`ForceLevel(""): %v`, err)
	}
	if got := ActiveLevel(); got != start {
		t.Fatalf("ActiveLevel() = %q after reset, want startup level %q", got, start)
	}
}

func TestForceLevelInvalid(t *testing.T) {
	before := ActiveLevel()
	for _, bad := range []string{"sse3", "AVX2", "f32", "avx512", "f32-sse"} {
		if err := ForceLevel(bad); err == nil {
			t.Fatalf("ForceLevel(%q) accepted", bad)
		}
		if got := ActiveLevel(); got != before {
			t.Fatalf("failed ForceLevel(%q) changed the active level to %q", bad, got)
		}
	}
}

func TestLevelLadderMonotone(t *testing.T) {
	ladder := []string{LevelPurego, LevelSSE, LevelAVX2}
	avail := Available()
	if len(avail) == 0 || len(avail) > len(ladder) {
		t.Fatalf("Available() = %v", avail)
	}
	// Available must be a prefix of the ladder ending at DetectedLevel:
	// avx2 implies sse implies purego.
	for i, lv := range avail {
		if lv != ladder[i] {
			t.Fatalf("Available()[%d] = %q, want ladder prefix %v", i, lv, ladder[:len(avail)])
		}
	}
	if got := avail[len(avail)-1]; got != DetectedLevel() {
		t.Fatalf("Available() ends at %q, want DetectedLevel %q", got, DetectedLevel())
	}
	// Every rung above the detected one must be rejected.
	for i := len(avail); i < len(ladder); i++ {
		if err := ForceLevel(ladder[i]); err == nil {
			ForceLevel("")
			t.Fatalf("ForceLevel(%q) accepted beyond detected level %q", ladder[i], DetectedLevel())
		}
	}
}

// TestCrossTierTailAlignmentFuzz hammers the masked-load/store edges the
// packed tiers are most likely to get wrong: odd lane counts (B not a
// multiple of the vector width), sub-stripe blocks, and unaligned slice
// offsets (the kernels only ever see unaligned-capable moves, but an
// offset start shifts every 8-lane group boundary). Each round builds
// one random case and replays it under every available tier from
// identical inputs; all tiers must agree bit for bit with the purego
// tier — not just with a reference at friendly shapes.
func TestCrossTierTailAlignmentFuzz(t *testing.T) {
	levels := Available()
	if len(levels) < 2 {
		t.Skip("single-tier build: nothing to cross-check")
	}
	defer ForceLevel("")
	r := mathx.NewRNG(0x7A11)

	type result struct {
		f32  []float32
		u32  []uint32
		mask uint64
	}
	// randLike tiles src to n elements, so every tier's case sees the
	// same deterministic inputs without another RNG draw mid-round.
	randLike := func(src []float32, n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = src[i%len(src)]
		}
		return v
	}
	// run executes one primitive case under a tier from copies of the
	// canonical inputs and returns everything the call may have written.
	for round := 0; round < 300; round++ {
		off := r.Intn(9)       // unaligned start offset (elements)
		b := 1 + r.Intn(21)    // stripe stride, incl. non-multiples of 8
		lanes := 1 + r.Intn(b) // sub-stripe and odd lane counts
		n := r.Intn(13)        // rows, incl. zero
		size := off + 1
		if n > 0 {
			size = off + (n-1)*b + lanes
		}
		buf := randF32s(r, size, 1)
		row := randF32s(r, n, 0.5)
		pv := randF32s(r, b, 1)
		p := float32(r.Norm(0, 1))
		th := float32(0.125 * math.Pow(2, float64(r.Intn(4))))
		bias := float32(r.Norm(0, 0.1))
		vrow := randF32s(r, lanes, float64(th)*2)
		g := make([]float32, lanes)
		fired := make([]uint32, lanes)
		for i := range g {
			g[i] = float32(math.Pow(2, float64(r.Intn(5))))
			if r.Bernoulli(0.5) {
				fired[i] = ^uint32(0)
			}
		}
		idx := make([]int32, lanes)
		bits := make([]uint64, lanes)
		for i := range bits {
			bits[i] = uint64(r.Intn(1 << 12))
		}
		shift := uint(r.Intn(64))

		cases := []struct {
			name string
			run  func() result
		}{
			{"axpy", func() result {
				dst := append([]float32(nil), buf...)
				AxpyBlock(dst[off:], row, p, b, lanes)
				return result{f32: dst}
			}},
			{"axpyvec", func() result {
				dst := append([]float32(nil), buf...)
				AxpyBlockVec(dst[off:], row, append([]float32(nil), pv...), b, lanes)
				return result{f32: dst}
			}},
			{"scaleadd", func() result {
				dst := append([]float32(nil), buf...)
				ScaleAdd(dst[off:], p)
				return result{f32: dst}
			}},
			{"fire", func() result {
				v := append([]float32(nil), vrow...)
				m := FireRow(v, th)
				return result{f32: v, mask: m}
			}},
			{"firebias", func() result {
				v := append([]float32(nil), vrow...)
				m := FireRowBias(v, bias, th)
				return result{f32: v, mask: m}
			}},
			{"fireburst", func() result {
				v := append([]float32(nil), vrow...)
				gs := append([]float32(nil), g...)
				fs := append([]uint32(nil), fired...)
				pay := make([]float32, lanes)
				m := FireRowBurst(v, gs, pay, fs, bias, 2, th)
				return result{f32: append(append(append([]float32(nil), v...), gs...), pay...), u32: fs, mask: m}
			}},
			{"selectmax", func() result {
				best := append([]float32(nil), vrow...)
				ix := append([]int32(nil), idx...)
				SelectMaxRow(best, pv[:lanes], ix, int32(round), lanes)
				u := make([]uint32, lanes)
				for i, x := range ix {
					u[i] = uint32(x)
				}
				return result{f32: best, u32: u}
			}},
			{"lanemask", func() result {
				return result{mask: LaneMaskBit(bits, shift)<<1 ^ LaneMaskEq(bits, bits[0])}
			}},
			{"convscatter", func() result {
				outC := 1 + lanes%4
				taps := make([]ConvTap, n%5)
				for i := range taps {
					taps[i] = ConvTap{WOff: int32((i * outC) % max(1, len(row)-outC+1)), Base: int32(i % 3)}
				}
				if len(row) < outC {
					taps = nil
				}
				vm := make([]float32, 3*outC*b)
				copy(vm, buf)
				ConvScatterVec(vm, row, taps, outC, b, pv)
				return result{f32: vm}
			}},
			{"firerows", func() result {
				nr := 1 + n
				v := randLike(vrow, nr*b)
				gs := randLike(g, nr*b)
				fs := make([]uint32, nr*b)
				for i := range fs {
					fs[i] = fired[i%len(fired)]
				}
				pay := make([]float32, nr*b)
				masks := make([]uint64, nr)
				occ := make([]uint64, (nr+63)/64)
				FireRowsBurst(v, gs, pay, fs, masks, occ, nr, b, nil, 1, 2, th)
				sum := occ[0]
				for _, m := range masks {
					sum = sum*1099511628211 ^ m
				}
				return result{f32: append(append(append([]float32(nil), v...), gs...), pay...), u32: fs, mask: sum}
			}},
		}
		for _, c := range cases {
			var ref result
			for li, lv := range levels {
				if err := ForceLevel(lv); err != nil {
					t.Fatal(err)
				}
				got := c.run()
				if li == 0 {
					ref = got
					continue
				}
				if got.mask != ref.mask {
					t.Fatalf("round %d %s (off=%d b=%d lanes=%d n=%d): tier %s mask %064b, %s %064b",
						round, c.name, off, b, lanes, n, lv, got.mask, levels[0], ref.mask)
				}
				for i := range ref.f32 {
					if math.Float32bits(got.f32[i]) != math.Float32bits(ref.f32[i]) {
						t.Fatalf("round %d %s (off=%d b=%d lanes=%d n=%d): tier %s f32[%d] = %v, %s %v",
							round, c.name, off, b, lanes, n, lv, i, got.f32[i], levels[0], ref.f32[i])
					}
				}
				for i := range ref.u32 {
					if got.u32[i] != ref.u32[i] {
						t.Fatalf("round %d %s: tier %s u32[%d] = %x, %s %x",
							round, c.name, lv, i, got.u32[i], levels[0], ref.u32[i])
					}
				}
			}
		}
	}
}
