package kernels

import "os"

// The dispatch ladder: which implementation executes a kernel call is a
// *runtime* property now, not only a build-time one. The `purego` build
// tag still selects the pure-Go-only binary (and every non-amd64
// platform gets it implicitly); the amd64 assembly build additionally
// carries every tier and picks the widest one the CPU supports at
// process start via CPUID:
//
//	purego  — the unrolled pure-Go float32 loops (always available)
//	sse     — 4-lane baseline-SSE packed kernels (every amd64 CPU)
//	avx2    — 8-lane AVX2 packed kernels (one full B=8 stripe per
//	          packed multiply-add; CPUID-gated: AVX2 + OS-enabled
//	          YMM state)
//
// All tiers are semantically identical, not merely close: every element
// receives exactly the same rounded float32 operations whichever tier
// runs (the AVX2 kernels deliberately use separate packed multiply and
// add — never FMA, which would contract the two roundings into one), so
// simulations are bit-identical across tiers. The cross-tier conformance
// suites (internal/kernels fuzz tests under every tier,
// snn.TestBatch32CrossTierConformance over the full hybrid corpus) pin
// that contract on every commit.
//
// The active tier can be overridden — per process via the KERNELS_LEVEL
// environment variable, or programmatically via ForceLevel — so any tier
// can be exercised on any machine that supports it (CI runs the whole
// suite once per tier). Overriding is a process-startup decision: the
// serving layer reports the tier that was active at model registration,
// so flipping tiers mid-flight would make /metrics lie.

// Dispatch tier names, ordered narrowest to widest.
const (
	LevelPurego = "purego"
	LevelSSE    = "sse"
	LevelAVX2   = "avx2"
)

// ActiveLevel returns the dispatch tier kernel calls currently execute
// on: LevelPurego, LevelSSE, or LevelAVX2.
func ActiveLevel() string { return activeLevelName() }

// DetectedLevel returns the widest tier this machine supports (the tier
// selected at startup absent any override). On the purego build it is
// always LevelPurego.
func DetectedLevel() string { return detectedLevelName() }

// Available returns the runnable tiers on this machine and build,
// narrowest first. It is always a prefix of the full ladder
// {purego, sse, avx2} ending at DetectedLevel: a CPU that can run a
// tier can run every narrower one.
func Available() []string { return availableLevels() }

// ForceLevel pins kernel dispatch to the named tier for the rest of the
// process (or until the next call). The empty string resets to the
// startup level — DetectedLevel, or the KERNELS_LEVEL override if one
// was set — so a test that forces tiers and restores with ForceLevel("")
// cannot silently undo a CI-wide override. Requesting a tier the machine
// or build cannot run is an error and leaves the active tier unchanged.
func ForceLevel(level string) error { return forceLevel(level) }

// initLevelFromEnv applies the KERNELS_LEVEL override. Called from each
// build's dispatch init after detection so CI can exercise a forced tier
// without code changes; an unsatisfiable value panics rather than
// silently testing the wrong tier.
func initLevelFromEnv() {
	if lv, ok := os.LookupEnv("KERNELS_LEVEL"); ok && lv != "" {
		if err := forceLevel(lv); err != nil {
			panic("kernels: KERNELS_LEVEL: " + err.Error())
		}
	}
}
