// Package kernels is the float32 compute plane's block-primitive layer:
// the handful of inner loops the batched lockstep simulator spends its
// time in, shaped for SIMD. The batch path stores neuron state B-striped
// (lane-major) and the conv population base-major, so one scatter tap —
// one weight row applied to one event column — updates a contiguous
// OutC×B float32 block. These primitives consume exactly that shape.
//
// Three dispatch tiers share one contract (see level.go for the
// runtime-selection machinery):
//
//   - purego: unrolled scalar float32 loops the compiler schedules well
//     (the whole story on the `purego` build and every non-amd64
//     platform);
//   - sse: 4-lane packed single precision using only baseline SSE
//     instructions, so it runs on every amd64 CPU; and
//   - avx2: 8-lane VEX-encoded packed single precision — one full B=8
//     lane stripe per instruction — selected by CPUID at startup.
//
// The tiers are semantically identical, not merely close: every
// primitive performs the same float32 operations on the same elements —
// each destination element receives exactly one rounded multiply and one
// add per call (the AVX2 kernels use separate multiply and add, never
// FMA), and the threshold test subtracts the same float32 value — so a
// simulation produces bit-identical float32 trajectories whichever tier
// executes it. CI runs the suite once per tier via KERNELS_LEVEL (see
// .github/workflows/ci.yml); the fuzz tests in this package pin each
// primitive to a naive scalar reference at random shapes under every
// available tier.
//
// Kind reports which tier kernel calls currently execute on ("f32" pure
// Go, "f32-sse", "f32-avx2"); serving surfaces it in /metrics so an
// operator can see which kernels a replica actually ran.
package kernels

// Kind identifies the kernel implementation behind the float32 plane
// right now: "f32" for the pure-Go loops (the purego build, or the
// purego tier forced on the assembly build), "f32-sse" or "f32-avx2"
// for the amd64 assembly tiers. It tracks ActiveLevel, so a ForceLevel
// or KERNELS_LEVEL override is reflected here and in /metrics.
func Kind() string { return kindName() }

// KindF64 names the float64 scalar batch path in artifacts and metrics,
// alongside the Kind() values of this package's float32 kernels.
const KindF64 = "f64"

// AxpyBlock scatters one weighted tap into a lane-striped block:
//
//	dst[i*b : i*b+lanes] += row[i] * p   for every i in range(len(row))
//
// b is the lane stride (the batch capacity B) and lanes the active-lane
// count. This is the batched scatter's workhorse: one event column with
// a uniform payload p applies weight row `row` to every active lane, the
// product row[i]*p hoisted out of the lane loop. dst must hold at least
// (len(row)-1)*b+lanes elements.
func AxpyBlock(dst, row []float32, p float32, b, lanes int) {
	if len(row) == 0 || lanes <= 0 {
		return
	}
	_ = dst[(len(row)-1)*b+lanes-1] // one bounds check up front
	axpyBlock(dst, row, p, b, lanes)
}

// AxpyBlockVec scatters one weight row against a dense per-lane payload
// vector:
//
//	dst[i*b+j] += row[i] * pv[j]   for i in range(len(row)), j in [0, lanes)
//
// This is the partial-column scatter: a column that spiked in only some
// lanes (or with per-lane burst payloads) is densified into pv — payload
// at each spiking lane's slot, zero elsewhere — and every tap then runs
// as one packed multiply-add over the contiguous stripe instead of a
// strided per-lane walk. Lanes absent from the column accumulate
// row[i]*0, which is exact for finite weights (a ±0 add leaves every
// membrane value unchanged, except that it may normalize a -0 to +0 —
// invisible to thresholds, payloads, and argmax). pv must hold at least
// lanes elements and dst at least (len(row)-1)*b+lanes.
func AxpyBlockVec(dst, row, pv []float32, b, lanes int) {
	if len(row) == 0 || lanes <= 0 {
		return
	}
	_ = dst[(len(row)-1)*b+lanes-1]
	_ = pv[lanes-1]
	axpyBlockVec(dst, row, pv, b, lanes)
}

// AxpyLane scatters one weighted tap into a single lane of a striped
// block: dst[lane+i*b] += row[i] * p. The strided single-lane form of
// AxpyBlock, used for partial event columns; it stays scalar on every
// build (a stride-B walk has no profitable SSE form at these widths).
func AxpyLane(dst, row []float32, p float32, b, lane int) {
	vb := lane
	for _, w := range row {
		dst[vb] += w * p
		vb += b
	}
}

// ScaleAdd adds the scalar x to every element of dst — the lane-stripe
// bias/current add (dst is one neuron's active-lane stripe).
func ScaleAdd(dst []float32, x float32) {
	if len(dst) == 0 {
		return
	}
	scaleAdd(dst, x)
}

// FireRow is the fused threshold-compare + lane-bitmask emission over one
// neuron's lane stripe: for every s, if v[s] >= th then v[s] -= th
// (reset by subtraction) and bit s is set in the returned mask. len(v)
// must be at most 64.
func FireRow(v []float32, th float32) uint64 {
	if len(v) == 0 {
		return 0
	}
	return fireRow(v, th)
}

// FireRowBias is FireRow with the neuron's per-step bias current fused
// in: v[s] += bias first, then the threshold test. The bias lands on
// every lane (firing or not), exactly like the scalar fused fire pass.
func FireRowBias(v []float32, bias, th float32) uint64 {
	if len(v) == 0 {
		return 0
	}
	return fireRowBias(v, bias, th)
}

// FireRowBurst is the fused burst-coding fire pass (Eq. 8/9) over one
// neuron's lane stripe: per lane s,
//
//	v[s] += bias
//	g[s] = fired[s] != 0 ? beta·g[s] : 1     (Eq. 8)
//	th   = g[s]·vth                          (Eq. 9)
//	pay[s] = th
//	if v[s] >= th { v[s] -= th; fired[s] = ^0; bit s set } else { fired[s] = 0 }
//
// fired is the previous step's fired-lane state as full words (zero /
// all-ones — the blend-mask representation the packed implementation
// needs), updated in place. pay receives the per-lane threshold
// unconditionally; consumers read it only at set mask bits. bias is
// added on every call (pass 0 for bias-free layers — exact except that
// a -0 membrane normalizes to +0, which no threshold or payload can
// observe). All slices must share v's length (at most 64).
func FireRowBurst(v, g, pay []float32, fired []uint32, bias, beta, vth float32) uint64 {
	if len(v) == 0 {
		return 0
	}
	_ = g[len(v)-1]
	_ = pay[len(v)-1]
	_ = fired[len(v)-1]
	return fireRowBurst(v, g, pay, fired, bias, beta, vth)
}

// ConvTap is one entry of a conv layer's precomputed scatter table: the
// offset of the tap's kernel row in the scatter-ordered weight copy
// (WOff, in elements — the OutC weights of one tap are contiguous) and
// the output spatial base (Base — the tap's destination block starts at
// element Base·OutC·b of the base-major accumulator). The simulator
// builds these tables once at layer construction; the fused scatter
// below consumes them directly so one event column costs one kernel
// call, not one per tap.
type ConvTap struct {
	WOff int32
	Base int32
}

// ConvScatterVec applies one event column to a base-major conv
// accumulator, walking the column's whole tap list in a single call:
//
//	for each tap t:
//	  vmem[t.Base·outC·b + i·b + j] += wsc[t.WOff+i] * pv[j]
//	                                   for i in [0,outC), j in [0,b)
//
// pv is the lane-dense payload vector padded with zeros to the full
// stripe width b (absent or retired lanes accumulate row[i]*0, exact for
// finite weights — see AxpyBlockVec). Fusing the tap walk matters
// because conv taps are short (OutC stripes): per-tap kernel calls spend
// comparable time in call overhead as in arithmetic, which caps what a
// wider vector tier can win. Each element receives exactly one rounded
// multiply and one add, identical on every tier. vmem and wsc must cover
// every tap's block and row; pv must hold at least b elements.
func ConvScatterVec(vmem, wsc []float32, taps []ConvTap, outC, b int, pv []float32) {
	if len(taps) == 0 || outC <= 0 || b <= 0 {
		return
	}
	_ = pv[b-1]
	convScatterVec(vmem, wsc, taps, outC, b, pv)
}

// FireRowsBurst runs the fused burst fire pass (see FireRowBurst) over n
// consecutive b-wide lane rows in one call — the whole population's
// threshold sweep per step. Row c uses the bias current bias[c]*bsc
// (or 0 when bias is nil, both rounded exactly as the per-row form) and
// deposits its fired-lane bitmask in masks[c]:
//
//	masks[c] = FireRowBurst(v[c·b:(c+1)·b], g[...], pay[...], fired[...],
//	                        bv, beta, vth)
//
// occ receives a row-occupancy summary: bit c&63 of occ[c>>6] is set iff
// masks[c] != 0 (every covered word is fully rewritten). Spiking is
// sparse, so the emission sweep that follows the fire pass uses occ to
// skip 64 silent rows per word instead of touching every mask.
//
// The full b-wide stripe is processed including retired lanes (their
// state is never read again — callers strip retired lanes from masks at
// emission), which keeps every row one packed pass and lets independent
// rows pipeline instead of paying a call and a serial dependency chain
// per neuron. v, g, pay must hold n·b floats, fired n·b words, masks n
// words, occ ⌈n/64⌉ words, and bias (when non-nil) n values; b may be at
// most 64.
func FireRowsBurst(v, g, pay []float32, fired []uint32, masks, occ []uint64, n, b int, bias []float32, bsc, beta, vth float32) {
	if n <= 0 || b <= 0 {
		return
	}
	_ = v[n*b-1]
	_ = g[n*b-1]
	_ = pay[n*b-1]
	_ = fired[n*b-1]
	_ = masks[n-1]
	_ = occ[(n-1)>>6]
	if bias != nil {
		_ = bias[n-1]
	}
	fireRowsBurst(v, g, pay, fired, masks, occ, n, b, bias, bsc, beta, vth)
}

// SelectMaxRow merges one row of a lane-striped matrix into a running
// lane-wise argmax: for every s in [0, lanes),
//
//	if row[s] > best[s] { best[s] = row[s]; idx[s] = o }
//
// Sweeping a readout's class rows in ascending o order through
// SelectMaxRow yields, per lane, the argmax with the first-wins tie rule
// (strictly-greater replacement) — the batched form of the per-slot
// strided argmax, turned into contiguous row passes the packed tiers
// blend in one compare + select. All slices must hold at least lanes
// elements; lanes may be at most 64.
func SelectMaxRow(best, row []float32, idx []int32, o int32, lanes int) {
	if lanes <= 0 {
		return
	}
	_ = best[lanes-1]
	_ = row[lanes-1]
	_ = idx[lanes-1]
	selectMaxRow(best, row, idx, o, lanes)
}

// LaneMaskBit returns the lane bitmask with bit s set iff bit `shift` of
// row[s] is set — the batched phase-encoder sweep (row is one pixel's
// lane-striped quantization words; the result feeds BatchEvents32.AddMask
// with the step's uniform payload). len(row) must be at most 64 and
// shift at most 63.
func LaneMaskBit(row []uint64, shift uint) uint64 {
	if len(row) == 0 {
		return 0
	}
	return laneMaskBit(row, shift)
}

// LaneMaskEq returns the lane bitmask with bit s set iff row[s] == want —
// the batched TTFS-encoder sweep (row is one pixel's lane-striped firing
// phases, want the phase that fires at this step). len(row) must be at
// most 64.
func LaneMaskEq(row []uint64, want uint64) uint64 {
	if len(row) == 0 {
		return 0
	}
	return laneMaskEq(row, want)
}
