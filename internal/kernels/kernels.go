// Package kernels is the float32 compute plane's block-primitive layer:
// the handful of inner loops the batched lockstep simulator spends its
// time in, shaped for SIMD. The batch path stores neuron state B-striped
// (lane-major) and the conv population base-major, so one scatter tap —
// one weight row applied to one event column — updates a contiguous
// OutC×B float32 block. These primitives consume exactly that shape.
//
// Two implementations share one contract:
//
//   - a pure-Go build (the `purego` build tag, and every non-amd64
//     platform): unrolled scalar float32 loops the compiler schedules
//     well, and
//   - an amd64 SSE implementation (the default on amd64): 4-lane packed
//     single-precision arithmetic using only baseline SSE instructions,
//     so it runs on every GOAMD64 level without dispatch.
//
// The two are semantically identical, not merely close: every primitive
// performs the same float32 operations on the same elements — each
// destination element receives exactly one rounded multiply and one add
// per call, and the threshold test subtracts the same float32 value — so
// a simulation produces bit-identical float32 trajectories whichever
// build executes it. The equivalence suite runs under both builds in CI
// (see .github/workflows/ci.yml) and the fuzz tests in this package pin
// each primitive to a naive scalar reference at random shapes.
//
// Kind reports which implementation is linked in ("f32" pure Go,
// "f32-asm" SSE); serving surfaces it in /metrics so an operator can see
// which kernel a replica picked at build time.
package kernels

// Kind identifies the kernel implementation compiled into this binary:
// "f32" for the pure-Go loops, "f32-asm" for the amd64 SSE kernels.
// The choice is a build-time property (the `purego` build tag), not a
// runtime switch.
func Kind() string { return kind }

// KindF64 names the float64 scalar batch path in artifacts and metrics,
// alongside the Kind() values of this package's float32 kernels.
const KindF64 = "f64"

// AxpyBlock scatters one weighted tap into a lane-striped block:
//
//	dst[i*b : i*b+lanes] += row[i] * p   for every i in range(len(row))
//
// b is the lane stride (the batch capacity B) and lanes the active-lane
// count. This is the batched scatter's workhorse: one event column with
// a uniform payload p applies weight row `row` to every active lane, the
// product row[i]*p hoisted out of the lane loop. dst must hold at least
// (len(row)-1)*b+lanes elements.
func AxpyBlock(dst, row []float32, p float32, b, lanes int) {
	if len(row) == 0 || lanes <= 0 {
		return
	}
	_ = dst[(len(row)-1)*b+lanes-1] // one bounds check up front
	axpyBlock(dst, row, p, b, lanes)
}

// AxpyBlockVec scatters one weight row against a dense per-lane payload
// vector:
//
//	dst[i*b+j] += row[i] * pv[j]   for i in range(len(row)), j in [0, lanes)
//
// This is the partial-column scatter: a column that spiked in only some
// lanes (or with per-lane burst payloads) is densified into pv — payload
// at each spiking lane's slot, zero elsewhere — and every tap then runs
// as one packed multiply-add over the contiguous stripe instead of a
// strided per-lane walk. Lanes absent from the column accumulate
// row[i]*0, which is exact for finite weights (a ±0 add leaves every
// membrane value unchanged, except that it may normalize a -0 to +0 —
// invisible to thresholds, payloads, and argmax). pv must hold at least
// lanes elements and dst at least (len(row)-1)*b+lanes.
func AxpyBlockVec(dst, row, pv []float32, b, lanes int) {
	if len(row) == 0 || lanes <= 0 {
		return
	}
	_ = dst[(len(row)-1)*b+lanes-1]
	_ = pv[lanes-1]
	axpyBlockVec(dst, row, pv, b, lanes)
}

// AxpyLane scatters one weighted tap into a single lane of a striped
// block: dst[lane+i*b] += row[i] * p. The strided single-lane form of
// AxpyBlock, used for partial event columns; it stays scalar on every
// build (a stride-B walk has no profitable SSE form at these widths).
func AxpyLane(dst, row []float32, p float32, b, lane int) {
	vb := lane
	for _, w := range row {
		dst[vb] += w * p
		vb += b
	}
}

// ScaleAdd adds the scalar x to every element of dst — the lane-stripe
// bias/current add (dst is one neuron's active-lane stripe).
func ScaleAdd(dst []float32, x float32) {
	if len(dst) == 0 {
		return
	}
	scaleAdd(dst, x)
}

// FireRow is the fused threshold-compare + lane-bitmask emission over one
// neuron's lane stripe: for every s, if v[s] >= th then v[s] -= th
// (reset by subtraction) and bit s is set in the returned mask. len(v)
// must be at most 64.
func FireRow(v []float32, th float32) uint64 {
	if len(v) == 0 {
		return 0
	}
	return fireRow(v, th)
}

// FireRowBias is FireRow with the neuron's per-step bias current fused
// in: v[s] += bias first, then the threshold test. The bias lands on
// every lane (firing or not), exactly like the scalar fused fire pass.
func FireRowBias(v []float32, bias, th float32) uint64 {
	if len(v) == 0 {
		return 0
	}
	return fireRowBias(v, bias, th)
}

// FireRowBurst is the fused burst-coding fire pass (Eq. 8/9) over one
// neuron's lane stripe: per lane s,
//
//	v[s] += bias
//	g[s] = fired[s] != 0 ? beta·g[s] : 1     (Eq. 8)
//	th   = g[s]·vth                          (Eq. 9)
//	pay[s] = th
//	if v[s] >= th { v[s] -= th; fired[s] = ^0; bit s set } else { fired[s] = 0 }
//
// fired is the previous step's fired-lane state as full words (zero /
// all-ones — the blend-mask representation the packed implementation
// needs), updated in place. pay receives the per-lane threshold
// unconditionally; consumers read it only at set mask bits. bias is
// added on every call (pass 0 for bias-free layers — exact except that
// a -0 membrane normalizes to +0, which no threshold or payload can
// observe). All slices must share v's length (at most 64).
func FireRowBurst(v, g, pay []float32, fired []uint32, bias, beta, vth float32) uint64 {
	if len(v) == 0 {
		return 0
	}
	_ = g[len(v)-1]
	_ = pay[len(v)-1]
	_ = fired[len(v)-1]
	return fireRowBurst(v, g, pay, fired, bias, beta, vth)
}
