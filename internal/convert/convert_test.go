package convert

import (
	"math"
	"testing"

	"burstsnn/internal/coding"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/mathx"
	"burstsnn/internal/snn"
	"burstsnn/internal/tensor"
)

// trainTinyNet builds and trains a small MLP on a separable 2-feature
// task; used as a realistic conversion source.
func trainTinyNet(t *testing.T) (*dnn.Network, *dataset.Set) {
	t.Helper()
	r := mathx.NewRNG(31)
	set := &dataset.Set{Name: "sep", C: 1, H: 1, W: 4, Classes: 2}
	mk := func(n int) []dataset.Sample {
		out := make([]dataset.Sample, n)
		for i := range out {
			label := i % 2
			img := make([]float64, 4)
			for j := range img {
				img[j] = mathx.Clamp(r.Norm(0.3, 0.1), 0, 1)
			}
			if label == 1 {
				img[0] = mathx.Clamp(r.Norm(0.8, 0.1), 0, 1)
			}
			out[i] = dataset.Sample{Image: img, Label: label}
		}
		return out
	}
	set.Train, set.Test = mk(300), mk(80)
	net, err := dnn.Build(dnn.MLP(1, 1, 4, []int{8}, 2), mathx.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	dnn.Train(net, set, dnn.NewAdam(0.01), dnn.TrainConfig{Epochs: 20, BatchSize: 16, Seed: 3})
	if acc := dnn.Evaluate(net, set.Test); acc < 0.95 {
		t.Fatalf("tiny net failed to train: %.3f", acc)
	}
	return net, set
}

func TestConvertRejectsBadConfigs(t *testing.T) {
	net, set := trainTinyNet(t)
	cases := []Options{
		{Input: coding.DefaultConfig(coding.Real), Hidden: coding.DefaultConfig(coding.Real)},
		{Input: coding.DefaultConfig(coding.Real), Hidden: coding.Config{Scheme: coding.Burst, VTh: 1, Beta: 0.3}},
		{Input: coding.Config{Scheme: coding.Rate, VTh: -1}, Hidden: coding.DefaultConfig(coding.Rate)},
	}
	for i, opts := range cases {
		if _, err := Convert(net, set.Train, opts); err == nil {
			t.Errorf("case %d: Convert accepted invalid options", i)
		}
	}
}

func TestConvertRequiresSamples(t *testing.T) {
	net, _ := trainTinyNet(t)
	if _, err := Convert(net, nil, DefaultOptions(coding.Real, coding.Rate)); err == nil {
		t.Fatal("Convert accepted empty sample set")
	}
}

func TestConvertStructure(t *testing.T) {
	net, set := trainTinyNet(t)
	res, err := Convert(net, set.Train, DefaultOptions(coding.Real, coding.Rate))
	if err != nil {
		t.Fatal(err)
	}
	// MLP: flatten, dense+relu, dense => one hidden spiking layer + readout.
	if len(res.Net.Layers) != 1 {
		t.Fatalf("expected 1 spiking layer, got %d", len(res.Net.Layers))
	}
	if res.Net.Output == nil {
		t.Fatal("missing readout layer")
	}
	if res.Net.NumNeurons() != 4+8+2 {
		t.Fatalf("NumNeurons = %d", res.Net.NumNeurons())
	}
}

// The core conversion guarantee: a real-rate SNN's accuracy approaches the
// DNN's accuracy as the time budget grows.
func TestConvertedSNNMatchesDNNAccuracy(t *testing.T) {
	net, set := trainTinyNet(t)
	res, err := Convert(net, set.Train, DefaultOptions(coding.Real, coding.Rate))
	if err != nil {
		t.Fatal(err)
	}
	dnnAcc := dnn.Evaluate(net, set.Test)
	correct := 0
	for _, s := range set.Test {
		r := res.Net.Run(s.Image, 120)
		if r.FinalPrediction() == s.Label {
			correct++
		}
	}
	snnAcc := float64(correct) / float64(len(set.Test))
	if snnAcc < dnnAcc-0.05 {
		t.Fatalf("SNN accuracy %.3f too far below DNN %.3f", snnAcc, dnnAcc)
	}
}

// With real input and rate hidden coding, the readout potential after T
// steps divided by T must approximate the DNN logits (up to the residual
// truncation error of one threshold per layer).
func TestReadoutTracksLogits(t *testing.T) {
	net, set := trainTinyNet(t)
	res, err := Convert(net, set.Train, DefaultOptions(coding.Real, coding.Rate))
	if err != nil {
		t.Fatal(err)
	}
	sample := set.Test[0]
	logits := net.Forward(tensor.FromSlice(sample.Image, net.InShape...))

	const T = 400
	res.Net.Reset(sample.Image)
	for step := 0; step < T; step++ {
		res.Net.Step(step)
	}
	pots := res.Net.Output.Potentials()
	for i := range pots {
		got := pots[i] / T
		if math.Abs(got-logits.Data[i]) > 0.08 {
			t.Fatalf("readout %d: %.4f vs logit %.4f", i, got, logits.Data[i])
		}
	}
}

func TestConvertConvNetwork(t *testing.T) {
	r := mathx.NewRNG(17)
	spec := dnn.Spec{
		Name:    "conv-tiny",
		InShape: []int{1, 6, 6},
		Layers: []dnn.LayerSpec{
			{Kind: dnn.KindConv, OutC: 2, K: 3, Stride: 1, Pad: 1},
			{Kind: dnn.KindReLU},
			{Kind: dnn.KindAvgPool, Window: 2},
			{Kind: dnn.KindFlatten},
			{Kind: dnn.KindDense, Units: 4},
			{Kind: dnn.KindReLU},
			{Kind: dnn.KindDense, Units: 2},
		},
	}
	net, err := dnn.Build(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	samples := []dataset.Sample{}
	for i := 0; i < 8; i++ {
		img := make([]float64, 36)
		for j := range img {
			img[j] = r.Float64()
		}
		samples = append(samples, dataset.Sample{Image: img, Label: 0})
	}
	res, err := Convert(net, samples, DefaultOptions(coding.Phase, coding.Burst))
	if err != nil {
		t.Fatal(err)
	}
	// conv, avgpool, dense => 3 spiking layers + readout.
	if len(res.Net.Layers) != 3 {
		t.Fatalf("expected 3 spiking layers, got %d", len(res.Net.Layers))
	}
	// The conversion must be runnable.
	out := res.Net.Run(samples[0].Image, 32)
	if out.Steps != 32 {
		t.Fatal("run did not complete")
	}
}

func TestConvertDropoutAndMaxPoolHandled(t *testing.T) {
	r := mathx.NewRNG(23)
	spec := dnn.Spec{
		Name:    "mp-do",
		InShape: []int{1, 4, 4},
		Layers: []dnn.LayerSpec{
			{Kind: dnn.KindConv, OutC: 2, K: 3, Stride: 1, Pad: 1},
			{Kind: dnn.KindReLU},
			{Kind: dnn.KindMaxPool, Window: 2},
			{Kind: dnn.KindFlatten},
			{Kind: dnn.KindDense, Units: 4},
			{Kind: dnn.KindDropout, Rate: 0.5},
			{Kind: dnn.KindReLU},
			{Kind: dnn.KindDense, Units: 2},
		},
	}
	net, err := dnn.Build(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	samples := []dataset.Sample{{Image: make([]float64, 16), Label: 0}}
	for i := range samples[0].Image {
		samples[0].Image[i] = r.Float64()
	}
	res, err := Convert(net, samples, DefaultOptions(coding.Real, coding.Rate))
	if err != nil {
		t.Fatal(err)
	}
	// conv, maxpool gate, dense (dropout skipped, relu folded).
	if len(res.Net.Layers) != 3 {
		t.Fatalf("expected 3 layers, got %d", len(res.Net.Layers))
	}
	res.Net.Run(samples[0].Image, 16)
}

func TestNormalizationScalesBoundActivations(t *testing.T) {
	net, set := trainTinyNet(t)
	res, err := Convert(net, set.Train, Options{
		Input:  coding.DefaultConfig(coding.Real),
		Hidden: coding.DefaultConfig(coding.Rate),
		Norm:   MaxNorm, NormSamples: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After max normalization, the hidden spiking layer driven by any
	// training image must emit payload at a rate ≤ 1 per step.
	hidden := res.Net.Layers[0].(*snn.SpikingDense)
	_ = hidden
	for _, s := range set.Train[:20] {
		r := res.Net.Run(s.Image, 100)
		perNeuronRate := float64(r.HiddenSpikes) / 100 / 8
		if perNeuronRate > 1 {
			t.Fatalf("firing rate %v exceeds 1 per neuron per step", perNeuronRate)
		}
	}
}

func TestPercentileVsMaxNormScales(t *testing.T) {
	net, set := trainTinyNet(t)
	resMax, err := Convert(net, set.Train, Options{
		Input: coding.DefaultConfig(coding.Real), Hidden: coding.DefaultConfig(coding.Rate),
		Norm: MaxNorm, NormSamples: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	resPct, err := Convert(net, set.Train, Options{
		Input: coding.DefaultConfig(coding.Real), Hidden: coding.DefaultConfig(coding.Rate),
		Norm: PercentileNorm, Percentile: 90, NormSamples: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Percentile scale is never above the max scale.
	for i := range resMax.Scales {
		if resPct.Scales[i] > resMax.Scales[i]+1e-12 {
			t.Fatalf("layer %d: percentile scale %v exceeds max scale %v", i, resPct.Scales[i], resMax.Scales[i])
		}
	}
}

func TestNormMethodString(t *testing.T) {
	if MaxNorm.String() != "max" || PercentileNorm.String() != "percentile" {
		t.Fatal("NormMethod names wrong")
	}
}

// TestBatchNormFoldingEquivalence verifies BN folding: the converted SNN
// readout must track the BN network's inference logits just as it does
// for plain networks.
func TestBatchNormFoldingEquivalence(t *testing.T) {
	r := mathx.NewRNG(41)
	spec := dnn.Spec{
		Name:    "bn-conv",
		InShape: []int{1, 6, 6},
		Layers: []dnn.LayerSpec{
			{Kind: dnn.KindConv, OutC: 3, K: 3, Stride: 1, Pad: 1},
			{Kind: dnn.KindBatchNorm},
			{Kind: dnn.KindReLU},
			{Kind: dnn.KindAvgPool, Window: 2},
			{Kind: dnn.KindFlatten},
			{Kind: dnn.KindDense, Units: 2},
		},
	}
	net, err := dnn.Build(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	// Push the BN stats and affine away from identity, as training would.
	for _, l := range net.Layers {
		bn, ok := l.(*dnn.BatchNorm)
		if !ok {
			continue
		}
		for c := 0; c < bn.C; c++ {
			bn.Gamma.W.Data[c] = 0.5 + r.Float64()
			bn.Beta.W.Data[c] = r.Norm(0.2, 0.1)
			bn.RunMean[c] = r.Norm(0, 0.2)
			bn.RunVar[c] = 0.5 + r.Float64()
		}
	}
	var samples []dataset.Sample
	for i := 0; i < 10; i++ {
		img := make([]float64, 36)
		for j := range img {
			img[j] = r.Float64()
		}
		samples = append(samples, dataset.Sample{Image: img, Label: 0})
	}
	res, err := Convert(net, samples, DefaultOptions(coding.Real, coding.Rate))
	if err != nil {
		t.Fatal(err)
	}
	// BN is folded, so conv+pool+readout => 2 spiking layers + readout.
	if len(res.Net.Layers) != 2 {
		t.Fatalf("expected 2 spiking layers after folding, got %d", len(res.Net.Layers))
	}
	const T = 400
	logits := net.Forward(tensor.FromSlice(samples[0].Image, net.InShape...))
	res.Net.Reset(samples[0].Image)
	for step := 0; step < T; step++ {
		res.Net.Step(step)
	}
	pots := res.Net.Output.Potentials()
	for i := range pots {
		if math.Abs(pots[i]/T-logits.Data[i]) > 0.05 {
			t.Fatalf("readout %d: %.4f vs logit %.4f", i, pots[i]/T, logits.Data[i])
		}
	}
}

// A BatchNorm that does not follow a convolution cannot be folded and
// must be rejected.
func TestBatchNormWithoutConvRejected(t *testing.T) {
	r := mathx.NewRNG(43)
	spec := dnn.Spec{
		Name:    "bn-after-pool",
		InShape: []int{1, 4, 4},
		Layers: []dnn.LayerSpec{
			{Kind: dnn.KindConv, OutC: 2, K: 3, Stride: 1, Pad: 1},
			{Kind: dnn.KindReLU},
			{Kind: dnn.KindAvgPool, Window: 2},
			{Kind: dnn.KindBatchNorm},
			{Kind: dnn.KindReLU},
			{Kind: dnn.KindFlatten},
			{Kind: dnn.KindDense, Units: 2},
		},
	}
	net, err := dnn.Build(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	samples := []dataset.Sample{{Image: make([]float64, 16), Label: 0}}
	if _, err := Convert(net, samples, DefaultOptions(coding.Real, coding.Rate)); err == nil {
		t.Fatal("unfoldable batchnorm accepted")
	}
}

// TestRandomArchitectureEquivalenceProperty is the catch-all conversion
// correctness check: for random small conv/pool/dense architectures with
// random weights, the real-rate SNN readout divided by T must track the
// DNN logits. This exercises every layer pairing the converter supports.
func TestRandomArchitectureEquivalenceProperty(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		r := mathx.NewRNG(uint64(1000 + trial))
		inC := 1 + r.Intn(2)
		spec := dnn.Spec{
			Name:    "random",
			InShape: []int{inC, 8, 8},
		}
		// 1-2 conv blocks, optional pool, then dense head.
		blocks := 1 + r.Intn(2)
		for b := 0; b < blocks; b++ {
			spec.Layers = append(spec.Layers,
				dnn.LayerSpec{Kind: dnn.KindConv, OutC: 2 + r.Intn(3), K: 3, Stride: 1, Pad: 1},
				dnn.LayerSpec{Kind: dnn.KindReLU})
			if b == 0 && r.Bernoulli(0.7) {
				spec.Layers = append(spec.Layers, dnn.LayerSpec{Kind: dnn.KindAvgPool, Window: 2})
			}
		}
		spec.Layers = append(spec.Layers,
			dnn.LayerSpec{Kind: dnn.KindFlatten},
			dnn.LayerSpec{Kind: dnn.KindDense, Units: 4 + r.Intn(5)},
			dnn.LayerSpec{Kind: dnn.KindReLU},
			dnn.LayerSpec{Kind: dnn.KindDense, Units: 3})
		net, err := dnn.Build(spec, r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		var samples []dataset.Sample
		for i := 0; i < 12; i++ {
			img := make([]float64, inC*64)
			for j := range img {
				img[j] = r.Float64()
			}
			samples = append(samples, dataset.Sample{Image: img, Label: 0})
		}
		res, err := Convert(net, samples, DefaultOptions(coding.Real, coding.Rate))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		const T = 300
		logits := net.Forward(tensor.FromSlice(samples[0].Image, net.InShape...))
		res.Net.Reset(samples[0].Image)
		for step := 0; step < T; step++ {
			res.Net.Step(step)
		}
		pots := res.Net.Output.Potentials()
		for i := range pots {
			if math.Abs(pots[i]/T-logits.Data[i]) > 0.15 {
				t.Fatalf("trial %d (%d layers): readout %d = %.4f vs logit %.4f",
					trial, len(spec.Layers), i, pots[i]/T, logits.Data[i])
			}
		}
	}
}
