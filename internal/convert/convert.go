// Package convert turns a trained dnn.Network into an event-driven
// snn.Network, implementing the data-based weight normalization of Diehl
// et al. 2015 and the outlier-robust percentile normalization of
// Rueckauer et al. 2017.
//
// Normalization rescales each weighted layer so the largest (or p-th
// percentile) post-ReLU activation maps to 1.0, the dynamic range an IF
// neuron with v_th=1 can transmit per time step:
//
//	W'_l = W_l · λ_{l-1}/λ_l     b'_l = b_l/λ_l
//
// Linear layers without weights (average pooling, flatten) carry the
// running scale through unchanged. The final readout layer is rescaled by
// the incoming λ only, so its accumulated potential recovers the DNN's
// logits (times the step count), keeping argmax decisions aligned.
package convert

import (
	"fmt"

	"burstsnn/internal/coding"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/mathx"
	"burstsnn/internal/snn"
	"burstsnn/internal/tensor"
)

// NormMethod selects the activation-scale estimator.
type NormMethod int

const (
	// MaxNorm uses the layer-wise maximum activation (Diehl et al. 2015).
	MaxNorm NormMethod = iota
	// PercentileNorm uses a high percentile of the activation
	// distribution, which is robust to outliers (Rueckauer et al. 2017).
	PercentileNorm
)

// String returns the method name.
func (m NormMethod) String() string {
	switch m {
	case MaxNorm:
		return "max"
	case PercentileNorm:
		return "percentile"
	default:
		return fmt.Sprintf("norm(%d)", int(m))
	}
}

// Options configures a conversion.
type Options struct {
	// Input selects the input-layer coding (real/rate/phase/ttfs).
	Input coding.Config
	// Hidden selects the hidden-layer coding (rate/phase/burst).
	Hidden coding.Config
	// Norm picks the normalization estimator; PercentileNorm is the
	// default used by the experiments.
	Norm NormMethod
	// Percentile is the percentile for PercentileNorm (default 99.9).
	Percentile float64
	// NormSamples is how many images are used to record activation
	// statistics (default 64, capped by available samples).
	NormSamples int
	// Seed feeds stochastic encoders (unused by the deterministic ones).
	Seed uint64
}

// DefaultOptions returns the conversion settings used by the experiment
// harness for the given input/hidden schemes.
func DefaultOptions(input, hidden coding.Scheme) Options {
	return Options{
		Input:       coding.DefaultConfig(input),
		Hidden:      coding.DefaultConfig(hidden),
		Norm:        PercentileNorm,
		Percentile:  99.9,
		NormSamples: 64,
	}
}

// Result is the converted network plus conversion metadata.
type Result struct {
	Net *snn.Network
	// Scales[i] is the activation scale λ assigned to dnn layer i
	// (1.0 for layers that only carry the scale through).
	Scales []float64
}

// Convert builds the spiking network. samples provide the activation
// statistics for weight normalization (typically the training set; a
// subset of NormSamples images is used).
func Convert(net *dnn.Network, samples []dataset.Sample, opts Options) (*Result, error) {
	if err := opts.Input.Validate(); err != nil {
		return nil, fmt.Errorf("convert: input coding: %w", err)
	}
	if err := opts.Hidden.Validate(); err != nil {
		return nil, fmt.Errorf("convert: hidden coding: %w", err)
	}
	switch opts.Hidden.Scheme {
	case coding.Rate, coding.Phase, coding.Burst:
	default:
		return nil, fmt.Errorf("convert: %v is not a hidden-layer coding", opts.Hidden.Scheme)
	}
	if opts.Percentile == 0 {
		opts.Percentile = 99.9
	}
	if opts.NormSamples == 0 {
		opts.NormSamples = 64
	}

	// Capacity matching for periodic hidden codings: a phase (or TTFS)
	// neuron can emit at most Σ Π(t)·v_th ≈ v_th per oscillation period,
	// but a real- or rate-coded input delivers the full activation every
	// step — k× more per period. Scaling the hidden threshold constant by
	// the period k equalizes the per-period throughput, which is what
	// makes the paper's real-phase hybrid viable; without it the phase
	// hidden layers saturate and accuracy decays over time. Phase input
	// already delivers one value per period, so no adjustment is needed,
	// and burst hidden coding adapts its own range (Eq. 8) by design.
	if (opts.Hidden.Scheme == coding.Phase || opts.Hidden.Scheme == coding.TTFS) &&
		(opts.Input.Scheme == coding.Real || opts.Input.Scheme == coding.Rate) {
		opts.Hidden.VTh *= float64(opts.Hidden.Period)
	}

	scales, err := activationScales(net, samples, opts)
	if err != nil {
		return nil, err
	}

	inSize := 1
	for _, d := range net.InShape {
		inSize *= d
	}
	encoder, err := coding.NewInputEncoder(opts.Input, inSize, opts.Seed)
	if err != nil {
		return nil, err
	}

	out := &snn.Network{Encoder: encoder}
	prevScale := 1.0 // input pixels are already in [0,1]
	layers := net.Layers
	for i := 0; i < len(layers); i++ {
		switch l := layers[i].(type) {
		case *dnn.Conv2D:
			scale := scales[i]
			isOutput := !followedByReLU(layers, i)
			if isOutput {
				return nil, fmt.Errorf("convert: layer %d: convolutional readout is not supported (end the network with a dense layer)", i)
			}
			wRaw, bRaw := l.Weight.W.Data, l.Bias.W.Data
			if bn := batchNormAfter(layers, i); bn != nil {
				// Fold BN's inference affine into the convolution
				// (Rueckauer et al. 2017): w' = w·γ/σ, b' = b·γ/σ + shift.
				wRaw, bRaw = foldBN(wRaw, bRaw, l.Spec.OutC, bn)
			}
			w, b := normalizeWeights(wRaw, bRaw, prevScale, scale)
			geom := snn.ConvGeom{
				InC: l.Spec.InC, InH: l.Spec.InH, InW: l.Spec.InW,
				OutC: l.Spec.OutC, K: l.Spec.KH, Stride: l.Spec.Stride, Pad: l.Spec.Pad,
			}
			out.Layers = append(out.Layers, snn.NewSpikingConv(w, b, geom, opts.Hidden))
			prevScale = scale
		case *dnn.Dense:
			if followedByReLU(layers, i) {
				scale := scales[i]
				w, b := normalizeWeights(l.Weight.W.Data, l.Bias.W.Data, prevScale, scale)
				out.Layers = append(out.Layers, snn.NewSpikingDense(w, b, l.In, l.Out, opts.Hidden))
				prevScale = scale
			} else {
				// Readout: undo the incoming normalization so the
				// accumulated potential tracks the DNN logits.
				w := make([]float64, len(l.Weight.W.Data))
				for j, v := range l.Weight.W.Data {
					w[j] = v * prevScale
				}
				b := append([]float64(nil), l.Bias.W.Data...)
				if out.Output != nil {
					return nil, fmt.Errorf("convert: layer %d: multiple readout layers", i)
				}
				out.Output = snn.NewOutputLayer(w, b, l.In, l.Out)
			}
		case *dnn.AvgPool2D:
			out.Layers = append(out.Layers, snn.NewSpikingAvgPool(l.C, l.H, l.W, l.Window, opts.Hidden))
		case *dnn.MaxPool2D:
			out.Layers = append(out.Layers, snn.NewSpikingMaxPool(l.C, l.H, l.W, l.Window))
		case *dnn.ReLU, *dnn.Flatten, *dnn.Dropout:
			// ReLU is realized by the IF dynamics; flatten is an index
			// identity in event space; dropout is inference-inert.
		case *dnn.BatchNorm:
			// Folded into the preceding convolution above; a BatchNorm
			// without a preceding weighted layer is unconvertible.
			if i == 0 {
				return nil, fmt.Errorf("convert: layer %d: batchnorm without a preceding convolution", i)
			}
			if _, ok := layers[i-1].(*dnn.Conv2D); !ok {
				if _, ok := layers[i-1].(*dnn.Dropout); !ok {
					return nil, fmt.Errorf("convert: layer %d: batchnorm must directly follow a convolution", i)
				}
			}
		default:
			return nil, fmt.Errorf("convert: layer %d: unsupported layer %q", i, layers[i].Name())
		}
	}
	if out.Output == nil {
		return nil, fmt.Errorf("convert: network has no readout layer (final dense without ReLU)")
	}
	return &Result{Net: out, Scales: scales}, nil
}

// followedByReLU reports whether a ReLU consumes layer i's output,
// looking through inference-inert layers (dropout, foldable batchnorm).
func followedByReLU(layers []dnn.Layer, i int) bool {
	for j := i + 1; j < len(layers); j++ {
		switch layers[j].(type) {
		case *dnn.ReLU:
			return true
		case *dnn.Dropout, *dnn.BatchNorm:
			continue
		default:
			return false
		}
	}
	return false
}

// batchNormAfter returns the BatchNorm directly consuming layer i's
// output (through dropout), or nil.
func batchNormAfter(layers []dnn.Layer, i int) *dnn.BatchNorm {
	for j := i + 1; j < len(layers); j++ {
		switch l := layers[j].(type) {
		case *dnn.BatchNorm:
			return l
		case *dnn.Dropout:
			continue
		default:
			return nil
		}
	}
	return nil
}

// foldBN merges a BatchNorm's inference affine into convolution weights
// (row-major OutC × fanIn) and biases.
func foldBN(w, b []float64, outC int, bn *dnn.BatchNorm) ([]float64, []float64) {
	scale, shift := bn.FoldedAffine()
	fanIn := len(w) / outC
	wf := make([]float64, len(w))
	bf := make([]float64, len(b))
	for oc := 0; oc < outC; oc++ {
		for k := 0; k < fanIn; k++ {
			wf[oc*fanIn+k] = w[oc*fanIn+k] * scale[oc]
		}
		bf[oc] = b[oc]*scale[oc] + shift[oc]
	}
	return wf, bf
}

// normalizeWeights applies W' = W·(prev/cur), b' = b/cur.
func normalizeWeights(w, b []float64, prev, cur float64) ([]float64, []float64) {
	wn := make([]float64, len(w))
	f := prev / cur
	for i, v := range w {
		wn[i] = v * f
	}
	bn := make([]float64, len(b))
	for i, v := range b {
		bn[i] = v / cur
	}
	return wn, bn
}

// activationScales records post-ReLU activation statistics per layer and
// returns the scale λ for every layer index (1.0 where not applicable).
// The scale of a weighted layer is stored at the *weighted* layer's index
// and estimated from the ReLU output that consumes it.
func activationScales(net *dnn.Network, samples []dataset.Sample, opts Options) ([]float64, error) {
	scales := make([]float64, len(net.Layers))
	for i := range scales {
		scales[i] = 1
	}
	n := opts.NormSamples
	if n > len(samples) {
		n = len(samples)
	}
	if n == 0 {
		return nil, fmt.Errorf("convert: no samples provided for activation recording")
	}
	// Gather activation values of the ReLU following each weighted layer.
	values := map[int][]float64{}
	for s := 0; s < n; s++ {
		x := tensor.FromSlice(samples[s].Image, net.InShape...)
		outs := net.ForwardCollect(x)
		for i := range net.Layers {
			switch net.Layers[i].(type) {
			case *dnn.Conv2D, *dnn.Dense:
				if ri := reluIndexAfter(net.Layers, i); ri >= 0 {
					values[i] = append(values[i], outs[ri].Data...)
				}
			}
		}
	}
	for i, vals := range values {
		var scale float64
		switch opts.Norm {
		case MaxNorm:
			scale = mathx.Max(vals)
		case PercentileNorm:
			scale = mathx.Percentile(vals, opts.Percentile)
		default:
			return nil, fmt.Errorf("convert: unknown normalization method %v", opts.Norm)
		}
		if scale <= 0 {
			scale = 1 // dead layer: avoid dividing by zero
		}
		scales[i] = scale
	}
	return scales, nil
}

// reluIndexAfter finds the ReLU layer that consumes layer i's output,
// looking through dropout and batchnorm, or -1.
func reluIndexAfter(layers []dnn.Layer, i int) int {
	for j := i + 1; j < len(layers); j++ {
		switch layers[j].(type) {
		case *dnn.ReLU:
			return j
		case *dnn.Dropout, *dnn.BatchNorm:
			continue
		default:
			return -1
		}
	}
	return -1
}
