// Package dnn is a from-scratch CPU deep-learning framework: the substrate
// the paper assumes when it says "a trained DNN". It provides the layers,
// losses, and optimizers needed to train the ReLU CNNs (LeNet-mini,
// VGG-mini) that the DNN→SNN conversion experiments start from, plus the
// activation recording hooks that weight normalization requires.
//
// The framework processes one sample at a time (mini-batches accumulate
// gradients across samples); at the model sizes this repository uses that
// is simpler and fast enough, and it keeps every layer's backward pass
// easy to verify with numerical gradient checks.
package dnn

import (
	"fmt"

	"burstsnn/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// Layer is one differentiable stage of a network. Forward stores whatever
// state Backward needs, so a Layer instance is not safe for concurrent
// samples; Network runs samples sequentially.
type Layer interface {
	// Name identifies the layer kind for logging and serialization.
	Name() string
	// Forward computes the layer output. train enables behaviour such as
	// dropout that differs between training and inference.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input),
	// accumulating parameter gradients along the way.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters, or nil.
	Params() []*Param
	// OutShape returns the output shape for the configured input shape.
	OutShape() []int
}

// Network is an ordered stack of layers.
type Network struct {
	Layers  []Layer
	InShape []int
}

// Forward runs inference (train=false) through all layers.
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	return n.forward(x, false)
}

func (n *Network) forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// ForwardCollect runs inference and returns the output of every layer, in
// order. The conversion code uses this to record activation statistics.
func (n *Network) ForwardCollect(x *tensor.Tensor) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, 0, len(n.Layers))
	for _, l := range n.Layers {
		x = l.Forward(x, false)
		outs = append(outs, x)
	}
	return outs
}

// Backward propagates the loss gradient through all layers in reverse.
func (n *Network) Backward(grad *tensor.Tensor) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// Params returns every trainable parameter in the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// OutShape returns the network's final output shape.
func (n *Network) OutShape() []int {
	if len(n.Layers) == 0 {
		return n.InShape
	}
	return n.Layers[len(n.Layers)-1].OutShape()
}

// NumParams returns the total number of scalar weights.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Len()
	}
	return total
}

// Summary returns a human-readable architecture description.
func (n *Network) Summary() string {
	s := fmt.Sprintf("input %v\n", n.InShape)
	for i, l := range n.Layers {
		s += fmt.Sprintf("%2d %-10s -> %v\n", i, l.Name(), l.OutShape())
	}
	s += fmt.Sprintf("parameters: %d\n", n.NumParams())
	return s
}
