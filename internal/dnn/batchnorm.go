package dnn

import (
	"fmt"
	"math"

	"burstsnn/internal/tensor"
)

// BatchNorm normalizes a CHW tensor per channel. Because this framework
// trains one sample at a time, training-mode statistics are computed per
// sample over the spatial dimensions (instance statistics) while an
// exponential moving average accumulates the running mean/variance used
// at inference — the affine per-channel form that DNN→SNN conversion
// folds into the preceding convolution (Rueckauer et al. 2017).
//
// BatchNorm is only valid over spatial tensors (it needs H·W > 1 to
// estimate per-sample statistics); Build rejects it after Flatten.
type BatchNorm struct {
	C, H, W  int
	Momentum float64 // EMA coefficient for running stats (default 0.9)
	Eps      float64 // numerical floor for variance (default 1e-5)

	Gamma *Param // per-channel scale
	Beta  *Param // per-channel shift
	// Running statistics used at inference.
	RunMean []float64
	RunVar  []float64

	// Forward state for Backward.
	lastXHat  []float64
	lastStd   []float64 // per channel, sqrt(var+eps)
	lastTrain bool
}

// NewBatchNorm creates the layer with γ=1, β=0, running stats at (0,1).
func NewBatchNorm(c, h, w int) *BatchNorm {
	bn := &BatchNorm{
		C: c, H: h, W: w,
		Momentum: 0.9, Eps: 1e-5,
		Gamma:   newParam("bn.gamma", c),
		Beta:    newParam("bn.beta", c),
		RunMean: make([]float64, c),
		RunVar:  make([]float64, c),
	}
	for i := 0; i < c; i++ {
		bn.Gamma.W.Data[i] = 1
		bn.RunVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (l *BatchNorm) Name() string { return "batchnorm" }

// Params implements Layer.
func (l *BatchNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// OutShape implements Layer.
func (l *BatchNorm) OutShape() []int { return []int{l.C, l.H, l.W} }

// Forward implements Layer.
func (l *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	hw := l.H * l.W
	if x.Len() != l.C*hw {
		panic(fmt.Sprintf("dnn: batchnorm expects %d values, got %d", l.C*hw, x.Len()))
	}
	out := tensor.New(l.C, l.H, l.W)
	if cap(l.lastXHat) < x.Len() {
		l.lastXHat = make([]float64, x.Len())
		l.lastStd = make([]float64, l.C)
	}
	l.lastXHat = l.lastXHat[:x.Len()]
	l.lastStd = l.lastStd[:l.C]

	for c := 0; c < l.C; c++ {
		ch := x.Data[c*hw : (c+1)*hw]
		var mean, variance float64
		if train {
			for _, v := range ch {
				mean += v
			}
			mean /= float64(hw)
			for _, v := range ch {
				d := v - mean
				variance += d * d
			}
			variance /= float64(hw)
			// EMA update of running statistics.
			l.RunMean[c] = l.Momentum*l.RunMean[c] + (1-l.Momentum)*mean
			l.RunVar[c] = l.Momentum*l.RunVar[c] + (1-l.Momentum)*variance
		} else {
			mean, variance = l.RunMean[c], l.RunVar[c]
		}
		std := math.Sqrt(variance + l.Eps)
		l.lastStd[c] = std
		g, b := l.Gamma.W.Data[c], l.Beta.W.Data[c]
		for i, v := range ch {
			xh := (v - mean) / std
			l.lastXHat[c*hw+i] = xh
			out.Data[c*hw+i] = g*xh + b
		}
	}
	l.lastTrain = train
	return out
}

// Backward implements Layer. In training mode the statistics depend on
// the input, giving the instance-norm gradient per channel with N
// spatial positions:
//
//	dx = γ/std · (dy − mean(dy) − x̂·mean(dy·x̂))
//
// In inference mode the running statistics are constants, so the layer is
// a plain per-channel affine: dx = γ/std · dy.
func (l *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	hw := l.H * l.W
	dx := tensor.New(l.C, l.H, l.W)
	n := float64(hw)
	for c := 0; c < l.C; c++ {
		gy := grad.Data[c*hw : (c+1)*hw]
		xh := l.lastXHat[c*hw : (c+1)*hw]
		var sumGy, sumGyXh float64
		for i, g := range gy {
			sumGy += g
			sumGyXh += g * xh[i]
			l.Beta.Grad.Data[c] += g
			l.Gamma.Grad.Data[c] += g * xh[i]
		}
		scale := l.Gamma.W.Data[c] / l.lastStd[c]
		if !l.lastTrain {
			for i, g := range gy {
				dx.Data[c*hw+i] = scale * g
			}
			continue
		}
		meanGy, meanGyXh := sumGy/n, sumGyXh/n
		for i, g := range gy {
			dx.Data[c*hw+i] = scale * (g - meanGy - xh[i]*meanGyXh)
		}
	}
	return dx
}

// FoldedAffine returns the inference-time per-channel affine (scale,
// shift) such that BN(x) = scale·x + shift. Conversion uses this to fold
// the layer into the preceding convolution's weights and biases.
func (l *BatchNorm) FoldedAffine() (scale, shift []float64) {
	scale = make([]float64, l.C)
	shift = make([]float64, l.C)
	for c := 0; c < l.C; c++ {
		std := math.Sqrt(l.RunVar[c] + l.Eps)
		scale[c] = l.Gamma.W.Data[c] / std
		shift[c] = l.Beta.W.Data[c] - l.Gamma.W.Data[c]*l.RunMean[c]/std
	}
	return scale, shift
}
