package dnn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter. scale divides the
	// accumulated gradient (typically 1/batchSize) before the update.
	Step(params []*Param, scale float64)
}

// SGD is stochastic gradient descent with classical momentum and optional
// L2 weight decay.
type SGD struct {
	LR       float64
	Momentum float64
	Decay    float64 // L2 coefficient

	velocity map[*Param][]float64
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, decay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Decay: decay, velocity: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param, scale float64) {
	for _, p := range params {
		v := o.velocity[p]
		if v == nil {
			v = make([]float64, p.W.Len())
			o.velocity[p] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i]*scale + o.Decay*p.W.Data[i]
			v[i] = o.Momentum*v[i] - o.LR*g
			p.W.Data[i] += v[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015).
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam constructs an Adam optimizer with the usual defaults for the
// moment coefficients.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param, scale float64) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, v := o.m[p], o.v[p]
		if m == nil {
			m = make([]float64, p.W.Len())
			v = make([]float64, p.W.Len())
			o.m[p], o.v[p] = m, v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i] * scale
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			p.W.Data[i] -= o.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + o.Eps)
		}
	}
}
