package dnn

import (
	"math"
	"testing"

	"burstsnn/internal/mathx"
	"burstsnn/internal/tensor"
)

// numericalGrad estimates dLoss/dθ for every parameter element with
// central differences, where loss is softmax-CE of the network output.
func numericalGrad(t *testing.T, net *Network, x *tensor.Tensor, label int, p *Param, eps float64) []float64 {
	t.Helper()
	grad := make([]float64, p.W.Len())
	for i := range p.W.Data {
		orig := p.W.Data[i]
		p.W.Data[i] = orig + eps
		lossPlus, _ := CrossEntropyLoss(net.Forward(x), label)
		p.W.Data[i] = orig - eps
		lossMinus, _ := CrossEntropyLoss(net.Forward(x), label)
		p.W.Data[i] = orig
		grad[i] = (lossPlus - lossMinus) / (2 * eps)
	}
	return grad
}

// checkGradients compares analytic and numerical gradients for every
// parameter of the network on one sample.
func checkGradients(t *testing.T, spec Spec, seed uint64) {
	t.Helper()
	r := mathx.NewRNG(seed)
	net, err := Build(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(spec.InShape...)
	x.RandNorm(r, 0.3, 0.4)
	label := 1

	net.ZeroGrads()
	logits := net.forward(x, false)
	_, lossGrad := CrossEntropyLoss(logits, label)
	net.Backward(lossGrad)

	for _, p := range net.Params() {
		num := numericalGrad(t, net, x, label, p, 1e-5)
		for i := range num {
			got := p.Grad.Data[i]
			want := num[i]
			diff := math.Abs(got - want)
			scale := math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
			if diff/scale > 1e-4 {
				t.Fatalf("%s[%d]: analytic %v vs numerical %v", p.Name, i, got, want)
			}
		}
	}
}

func TestGradDense(t *testing.T) {
	checkGradients(t, MLP(1, 2, 3, []int{5}, 3), 1)
}

func TestGradDeepMLP(t *testing.T) {
	checkGradients(t, MLP(1, 2, 2, []int{6, 4}, 3), 2)
}

func TestGradConvNet(t *testing.T) {
	spec := Spec{
		Name:    "tiny-conv",
		InShape: []int{2, 6, 6},
		Layers: []LayerSpec{
			{Kind: KindConv, OutC: 3, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindAvgPool, Window: 2},
			{Kind: KindFlatten},
			{Kind: KindDense, Units: 4},
		},
	}
	checkGradients(t, spec, 3)
}

func TestGradConvStride2(t *testing.T) {
	spec := Spec{
		Name:    "stride2",
		InShape: []int{1, 7, 7},
		Layers: []LayerSpec{
			{Kind: KindConv, OutC: 2, K: 3, Stride: 2, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindFlatten},
			{Kind: KindDense, Units: 3},
		},
	}
	checkGradients(t, spec, 4)
}

func TestGradMaxPoolNet(t *testing.T) {
	spec := Spec{
		Name:    "maxpool-net",
		InShape: []int{1, 4, 4},
		Layers: []LayerSpec{
			{Kind: KindConv, OutC: 2, K: 3, Stride: 1, Pad: 1},
			{Kind: KindMaxPool, Window: 2},
			{Kind: KindFlatten},
			{Kind: KindDense, Units: 3},
		},
	}
	checkGradients(t, spec, 5)
}
