package dnn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"burstsnn/internal/dataset"
	"burstsnn/internal/mathx"
	"burstsnn/internal/tensor"
)

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		logits := make([]float64, 1+r.Intn(20))
		for i := range logits {
			logits[i] = r.Range(-50, 50)
		}
		p := Softmax(logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := Softmax([]float64{1, 2, 3})
	b := Softmax([]float64{1001, 1002, 1003})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatal("softmax must be shift invariant")
		}
	}
}

func TestCrossEntropyGradSumZero(t *testing.T) {
	logits := tensor.FromSlice([]float64{0.5, -1, 2}, 3)
	loss, grad := CrossEntropyLoss(logits, 2)
	if loss < 0 {
		t.Fatalf("CE loss must be non-negative, got %v", loss)
	}
	sum := 0.0
	for _, g := range grad.Data {
		sum += g
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("CE gradient must sum to zero, got %v", sum)
	}
}

func TestBuildShapes(t *testing.T) {
	spec := VGGMini(3, 16, 16, 10)
	net, err := Build(spec, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	out := net.OutShape()
	if len(out) != 1 || out[0] != 10 {
		t.Fatalf("VGGMini output shape %v", out)
	}
	x := tensor.New(3, 16, 16)
	y := net.Forward(x)
	if y.Len() != 10 {
		t.Fatalf("forward output length %d", y.Len())
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "dense-before-flatten", InShape: []int{1, 4, 4},
			Layers: []LayerSpec{{Kind: KindDense, Units: 3}}},
		{Name: "conv-after-flatten", InShape: []int{1, 4, 4},
			Layers: []LayerSpec{{Kind: KindFlatten}, {Kind: KindConv, OutC: 2, K: 3, Stride: 1, Pad: 1}}},
		{Name: "bad-pool", InShape: []int{1, 5, 5},
			Layers: []LayerSpec{{Kind: KindAvgPool, Window: 2}}},
		{Name: "unknown", InShape: []int{1, 4, 4},
			Layers: []LayerSpec{{Kind: "bogus"}}},
		{Name: "bad-shape", InShape: []int{4, 4},
			Layers: nil},
	}
	for _, spec := range bad {
		if _, err := Build(spec, mathx.NewRNG(1)); err == nil {
			t.Errorf("Build accepted invalid spec %q", spec.Name)
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	l := NewReLU([]int{4})
	x := tensor.FromSlice([]float64{-1, 0, 2, -3}, 4)
	y := l.Forward(x, false)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("ReLU forward = %v", y.Data)
		}
	}
	g := l.Backward(tensor.FromSlice([]float64{1, 1, 1, 1}, 4))
	wantG := []float64{0, 0, 1, 0}
	for i := range wantG {
		if g.Data[i] != wantG[i] {
			t.Fatalf("ReLU backward = %v", g.Data)
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	l := &Dropout{Rate: 0.5, Shape: []int{100}, RNG: mathx.NewRNG(1)}
	x := tensor.New(100)
	x.Fill(1)
	yEval := l.Forward(x, false)
	for _, v := range yEval.Data {
		if v != 1 {
			t.Fatal("dropout must be identity at inference")
		}
	}
	yTrain := l.Forward(x, true)
	zeros := 0
	for _, v := range yTrain.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			// kept and rescaled by 1/(1-0.5)
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 25 || zeros > 75 {
		t.Fatalf("dropout rate far from 0.5: %d/100 zeros", zeros)
	}
}

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(mathx.NewRNG(1), 2, 2)
	copy(d.Weight.W.Data, []float64{1, 2, 3, 4})
	copy(d.Bias.W.Data, []float64{10, 20})
	y := d.Forward(tensor.FromSlice([]float64{1, 1}, 2), false)
	if y.Data[0] != 13 || y.Data[1] != 27 {
		t.Fatalf("dense forward = %v", y.Data)
	}
}

func TestTrainLearnsXORLikeTask(t *testing.T) {
	// A tiny nonlinear task: 2-pixel images, class = whether the two
	// pixels are on the same side of 0.5. Linear models cannot solve it;
	// an MLP with a hidden layer must.
	r := mathx.NewRNG(77)
	set := &dataset.Set{Name: "xor", C: 1, H: 1, W: 2, Classes: 2}
	mk := func(n int) []dataset.Sample {
		out := make([]dataset.Sample, n)
		for i := range out {
			a, b := r.Float64(), r.Float64()
			label := 0
			if (a > 0.5) != (b > 0.5) {
				label = 1
			}
			out[i] = dataset.Sample{Image: []float64{a, b}, Label: label}
		}
		return out
	}
	set.Train = mk(400)
	set.Test = mk(100)

	net, err := Build(MLP(1, 1, 2, []int{32}, 2), mathx.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	stats := Train(net, set, NewAdam(0.02), TrainConfig{Epochs: 80, BatchSize: 16, Seed: 9})
	final := stats[len(stats)-1]
	if final.TestAcc < 0.9 {
		t.Fatalf("MLP failed to learn XOR-like task: test acc %.3f", final.TestAcc)
	}
}

func TestTrainReducesLoss(t *testing.T) {
	set := dataset.SynthDigits(dataset.DigitsConfig{TrainPerClass: 10, TestPerClass: 3, Noise: 0.05, Seed: 4})
	net, err := Build(MLP(1, 28, 28, []int{32}, 10), mathx.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	stats := Train(net, set, NewSGD(0.05, 0.9, 0), TrainConfig{Epochs: 5, BatchSize: 16, Seed: 10, Log: &log})
	if stats[len(stats)-1].Loss >= stats[0].Loss {
		t.Fatalf("loss did not decrease: %v -> %v", stats[0].Loss, stats[len(stats)-1].Loss)
	}
	if log.Len() == 0 {
		t.Fatal("training log writer received nothing")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	spec := LeNetMini(1, 28, 28, 10)
	net, err := Build(spec, mathx.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, spec, net); err != nil {
		t.Fatal(err)
	}
	spec2, net2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if spec2.Name != spec.Name {
		t.Fatalf("spec name %q != %q", spec2.Name, spec.Name)
	}
	x := tensor.New(1, 28, 28)
	x.RandNorm(mathx.NewRNG(12), 0.5, 0.2)
	y1 := net.Forward(x)
	y2 := net2.Forward(x)
	for i := range y1.Data {
		if math.Abs(y1.Data[i]-y2.Data[i]) > 1e-12 {
			t.Fatal("loaded model produces different outputs")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	spec := MLP(1, 2, 2, []int{3}, 2)
	net, _ := Build(spec, mathx.NewRNG(1))
	path := dir + "/model.gob"
	if err := SaveModelFile(path, spec, net); err != nil {
		t.Fatal(err)
	}
	_, net2, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if net2.NumParams() != net.NumParams() {
		t.Fatal("parameter count changed across save/load")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	net, _ := Build(MLP(1, 1, 1, nil, 2), mathx.NewRNG(1))
	if acc := Evaluate(net, nil); acc != 0 {
		t.Fatalf("Evaluate(empty) = %v", acc)
	}
}

func TestForwardCollectLayerCount(t *testing.T) {
	spec := LeNetMini(1, 28, 28, 10)
	net, _ := Build(spec, mathx.NewRNG(2))
	outs := net.ForwardCollect(tensor.New(1, 28, 28))
	if len(outs) != len(net.Layers) {
		t.Fatalf("ForwardCollect returned %d outputs for %d layers", len(outs), len(net.Layers))
	}
	last := outs[len(outs)-1]
	if last.Len() != 10 {
		t.Fatalf("final output has %d elements", last.Len())
	}
}

func TestSGDMomentumMovesWeights(t *testing.T) {
	p := newParam("w", 2)
	p.W.Data[0], p.W.Data[1] = 1, 1
	p.Grad.Data[0], p.Grad.Data[1] = 1, -1
	opt := NewSGD(0.1, 0.9, 0)
	opt.Step([]*Param{p}, 1)
	if p.W.Data[0] >= 1 || p.W.Data[1] <= 1 {
		t.Fatalf("SGD moved weights in the wrong direction: %v", p.W.Data)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 with Adam; gradient is 2(w-3).
	p := newParam("w", 1)
	p.W.Data[0] = 0
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.W.Data[0] - 3)
		opt.Step([]*Param{p}, 1)
	}
	if math.Abs(p.W.Data[0]-3) > 0.05 {
		t.Fatalf("Adam did not converge: w = %v", p.W.Data[0])
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	p := newParam("w", 1)
	p.W.Data[0] = 10
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p}, 1) // grad is zero, only decay acts
	if p.W.Data[0] >= 10 {
		t.Fatalf("weight decay did not shrink weight: %v", p.W.Data[0])
	}
}

func TestNetworkSummary(t *testing.T) {
	net, _ := Build(LeNetMini(1, 28, 28, 10), mathx.NewRNG(1))
	s := net.Summary()
	if len(s) == 0 {
		t.Fatal("empty summary")
	}
}
