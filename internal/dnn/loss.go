package dnn

import (
	"math"

	"burstsnn/internal/tensor"
)

// Softmax returns the softmax of logits, computed with the max-subtraction
// trick for numerical stability.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	if len(logits) == 0 {
		return out
	}
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// CrossEntropyLoss computes softmax cross-entropy against an integer label
// and returns both the scalar loss and the gradient with respect to the
// logits (softmax(x) - onehot(label)).
func CrossEntropyLoss(logits *tensor.Tensor, label int) (float64, *tensor.Tensor) {
	p := Softmax(logits.Data)
	grad := tensor.FromSlice(p, logits.Shape...)
	loss := -math.Log(math.Max(p[label], 1e-12))
	grad.Data[label] -= 1
	return loss, grad
}
