package dnn

import (
	"fmt"
	"math"

	"burstsnn/internal/mathx"
	"burstsnn/internal/tensor"
)

// Dense is a fully connected layer y = Wx + b.
type Dense struct {
	In, Out int
	Weight  *Param // Out × In
	Bias    *Param // Out

	lastIn *tensor.Tensor
}

// NewDense creates a dense layer with He-initialized weights.
func NewDense(r *mathx.RNG, in, out int) *Dense {
	d := &Dense{In: in, Out: out,
		Weight: newParam("dense.w", out, in),
		Bias:   newParam("dense.b", out),
	}
	d.Weight.W.RandNorm(r, 0, math.Sqrt(2/float64(in)))
	return d
}

func (d *Dense) Name() string     { return "dense" }
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }
func (d *Dense) OutShape() []int  { return []int{d.Out} }

func (d *Dense) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Len() != d.In {
		panic(fmt.Sprintf("dnn: dense expects %d inputs, got %d", d.In, x.Len()))
	}
	d.lastIn = x
	y := tensor.MatVec(d.Weight.W, x.Data)
	for i := range y {
		y[i] += d.Bias.W.Data[i]
	}
	return tensor.FromSlice(y, d.Out)
}

func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW += g xᵀ, db += g, dx = Wᵀ g.
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		if g == 0 {
			continue
		}
		row := d.Weight.Grad.Data[o*d.In : (o+1)*d.In]
		for i, xv := range d.lastIn.Data {
			row[i] += g * xv
		}
		d.Bias.Grad.Data[o] += g
	}
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		if g == 0 {
			continue
		}
		row := d.Weight.W.Data[o*d.In : (o+1)*d.In]
		for i, w := range row {
			dx[i] += w * g
		}
	}
	return tensor.FromSlice(dx, d.In)
}

// Conv2D is a 2-D convolution layer over CHW tensors.
type Conv2D struct {
	Spec   tensor.ConvSpec
	Weight *Param // OutC × InC*KH*KW
	Bias   *Param // OutC

	lastCols *tensor.Tensor
}

// NewConv2D creates a He-initialized convolution layer.
func NewConv2D(r *mathx.RNG, spec tensor.ConvSpec) *Conv2D {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	fanIn := spec.InC * spec.KH * spec.KW
	c := &Conv2D{Spec: spec,
		Weight: newParam("conv.w", spec.OutC, fanIn),
		Bias:   newParam("conv.b", spec.OutC),
	}
	c.Weight.W.RandNorm(r, 0, math.Sqrt(2/float64(fanIn)))
	return c
}

func (c *Conv2D) Name() string     { return "conv2d" }
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }
func (c *Conv2D) OutShape() []int {
	return []int{c.Spec.OutC, c.Spec.OutH(), c.Spec.OutW()}
}

func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	cols := tensor.Im2Col(x, c.Spec)
	c.lastCols = cols
	prod := tensor.MatMul(c.Weight.W, cols)
	outH, outW := c.Spec.OutH(), c.Spec.OutW()
	n := outH * outW
	for oc := 0; oc < c.Spec.OutC; oc++ {
		b := c.Bias.W.Data[oc]
		row := prod.Data[oc*n : (oc+1)*n]
		for i := range row {
			row[i] += b
		}
	}
	return prod.Reshape(c.Spec.OutC, outH, outW)
}

func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	outH, outW := c.Spec.OutH(), c.Spec.OutW()
	n := outH * outW
	g2d := grad.Reshape(c.Spec.OutC, n)
	// dW += g · colsᵀ.
	c.Weight.Grad.AddInPlace(tensor.MatMulTransB(g2d, c.lastCols))
	// db += row sums of g.
	for oc := 0; oc < c.Spec.OutC; oc++ {
		s := 0.0
		for _, v := range g2d.Data[oc*n : (oc+1)*n] {
			s += v
		}
		c.Bias.Grad.Data[oc] += s
	}
	// dx = col2im(Wᵀ · g).
	dcols := tensor.MatMulTransA(c.Weight.W, g2d)
	return tensor.Col2Im(dcols, c.Spec)
}

// ReLU is the rectified-linear activation. Conversion-friendly networks
// use ReLU after every weighted layer because an IF neuron's firing rate
// approximates exactly the ReLU transfer function.
type ReLU struct {
	shape []int
	mask  []bool
}

// NewReLU creates a ReLU for the given input/output shape.
func NewReLU(shape []int) *ReLU {
	s := make([]int, len(shape))
	copy(s, shape)
	return &ReLU{shape: s}
}

func (l *ReLU) Name() string     { return "relu" }
func (l *ReLU) Params() []*Param { return nil }
func (l *ReLU) OutShape() []int  { return l.shape }

func (l *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := x.Clone()
	if cap(l.mask) < len(out.Data) {
		l.mask = make([]bool, len(out.Data))
	}
	l.mask = l.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v > 0 {
			l.mask[i] = true
		} else {
			l.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !l.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// AvgPool2D is non-overlapping average pooling. Converted SNNs prefer
// average pooling because it is a linear operation that spiking neurons
// implement exactly (Cao et al. 2015).
type AvgPool2D struct {
	C, H, W, Window int
}

func (l *AvgPool2D) Name() string     { return "avgpool" }
func (l *AvgPool2D) Params() []*Param { return nil }
func (l *AvgPool2D) OutShape() []int {
	return []int{l.C, l.H / l.Window, l.W / l.Window}
}

func (l *AvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	return tensor.AvgPool2D(x, l.C, l.H, l.W, l.Window)
}

func (l *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	outH, outW := l.H/l.Window, l.W/l.Window
	dx := tensor.New(l.C, l.H, l.W)
	inv := 1.0 / float64(l.Window*l.Window)
	for c := 0; c < l.C; c++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				g := grad.Data[(c*outH+oy)*outW+ox] * inv
				for ky := 0; ky < l.Window; ky++ {
					row := (c*l.H + oy*l.Window + ky) * l.W
					for kx := 0; kx < l.Window; kx++ {
						dx.Data[row+ox*l.Window+kx] += g
					}
				}
			}
		}
	}
	return dx
}

// MaxPool2D is non-overlapping max pooling.
type MaxPool2D struct {
	C, H, W, Window int

	lastArg []int
}

func (l *MaxPool2D) Name() string     { return "maxpool" }
func (l *MaxPool2D) Params() []*Param { return nil }
func (l *MaxPool2D) OutShape() []int {
	return []int{l.C, l.H / l.Window, l.W / l.Window}
}

func (l *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out, arg := tensor.MaxPool2D(x, l.C, l.H, l.W, l.Window)
	l.lastArg = arg
	return out
}

func (l *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(l.C, l.H, l.W)
	for o, idx := range l.lastArg {
		dx.Data[idx] += grad.Data[o]
	}
	return dx
}

// Flatten reshapes a CHW tensor into a vector.
type Flatten struct {
	InShapeSpec []int
}

func (l *Flatten) Name() string     { return "flatten" }
func (l *Flatten) Params() []*Param { return nil }
func (l *Flatten) OutShape() []int {
	n := 1
	for _, d := range l.InShapeSpec {
		n *= d
	}
	return []int{n}
}

func (l *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	return x.Reshape(x.Len())
}

func (l *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(l.InShapeSpec...)
}

// Dropout randomly zeroes activations during training with probability
// Rate and rescales survivors by 1/(1-Rate) (inverted dropout), so
// inference needs no adjustment.
type Dropout struct {
	Rate  float64
	Shape []int
	RNG   *mathx.RNG

	mask []bool
}

func (l *Dropout) Name() string     { return "dropout" }
func (l *Dropout) Params() []*Param { return nil }
func (l *Dropout) OutShape() []int  { return l.Shape }

func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.Rate <= 0 {
		l.mask = nil
		return x
	}
	out := x.Clone()
	if cap(l.mask) < len(out.Data) {
		l.mask = make([]bool, len(out.Data))
	}
	l.mask = l.mask[:len(out.Data)]
	scale := 1 / (1 - l.Rate)
	for i := range out.Data {
		if l.RNG.Bernoulli(l.Rate) {
			l.mask[i] = false
			out.Data[i] = 0
		} else {
			l.mask[i] = true
			out.Data[i] *= scale
		}
	}
	return out
}

func (l *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		return grad
	}
	out := grad.Clone()
	scale := 1 / (1 - l.Rate)
	for i := range out.Data {
		if l.mask[i] {
			out.Data[i] *= scale
		} else {
			out.Data[i] = 0
		}
	}
	return out
}
