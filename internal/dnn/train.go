package dnn

import (
	"fmt"
	"io"

	"burstsnn/internal/dataset"
	"burstsnn/internal/mathx"
	"burstsnn/internal/tensor"
)

// TrainConfig controls the training loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Seed      uint64
	// Log receives one line per epoch when non-nil.
	Log io.Writer
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Epoch    int
	Loss     float64
	TrainAcc float64
	TestAcc  float64
}

// Train fits net on set.Train with the given optimizer and reports per-
// epoch statistics. Gradients are accumulated per mini-batch and averaged.
func Train(net *Network, set *dataset.Set, opt Optimizer, cfg TrainConfig) []EpochStats {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	r := mathx.NewRNG(cfg.Seed)
	train := make([]dataset.Sample, len(set.Train))
	copy(train, set.Train)
	inShape := net.InShape

	var stats []EpochStats
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		dataset.Shuffle(r, train)
		totalLoss, correct := 0.0, 0
		for _, batch := range dataset.Batches(train, cfg.BatchSize) {
			net.ZeroGrads()
			for bi, img := range batch.Images {
				x := tensor.FromSlice(img, inShape...)
				logits := net.forward(x, true)
				loss, grad := CrossEntropyLoss(logits, batch.Labels[bi])
				totalLoss += loss
				if mathx.ArgMax(logits.Data) == batch.Labels[bi] {
					correct++
				}
				net.Backward(grad)
			}
			opt.Step(net.Params(), 1/float64(len(batch.Images)))
		}
		st := EpochStats{
			Epoch:    epoch,
			Loss:     totalLoss / float64(len(train)),
			TrainAcc: float64(correct) / float64(len(train)),
			TestAcc:  Evaluate(net, set.Test),
		}
		stats = append(stats, st)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %2d  loss %.4f  train %.4f  test %.4f\n",
				st.Epoch, st.Loss, st.TrainAcc, st.TestAcc)
		}
	}
	return stats
}

// Evaluate returns classification accuracy of net over samples.
func Evaluate(net *Network, samples []dataset.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		x := tensor.FromSlice(s.Image, net.InShape...)
		logits := net.Forward(x)
		if mathx.ArgMax(logits.Data) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// Predict returns the argmax class for one image.
func Predict(net *Network, image []float64) int {
	x := tensor.FromSlice(image, net.InShape...)
	return mathx.ArgMax(net.Forward(x).Data)
}
