package dnn

import (
	"bytes"
	"math"
	"testing"

	"burstsnn/internal/mathx"
	"burstsnn/internal/tensor"
)

func TestBatchNormIdentityAtInit(t *testing.T) {
	// γ=1, β=0, running stats (0,1): inference BN is ~identity.
	bn := NewBatchNorm(2, 3, 3)
	x := tensor.New(2, 3, 3)
	x.RandNorm(mathx.NewRNG(1), 0, 1)
	y := bn.Forward(x, false)
	for i := range x.Data {
		if math.Abs(y.Data[i]-x.Data[i]) > 1e-3 {
			t.Fatalf("initial inference BN is not identity at %d: %v vs %v", i, y.Data[i], x.Data[i])
		}
	}
}

func TestBatchNormTrainNormalizes(t *testing.T) {
	bn := NewBatchNorm(1, 4, 4)
	x := tensor.New(1, 4, 4)
	r := mathx.NewRNG(2)
	for i := range x.Data {
		x.Data[i] = r.Norm(5, 3) // deliberately off-center
	}
	y := bn.Forward(x, true)
	mean, meanSq := 0.0, 0.0
	for _, v := range y.Data {
		mean += v
		meanSq += v * v
	}
	mean /= 16
	variance := meanSq/16 - mean*mean
	if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-3 {
		t.Fatalf("train-mode output not normalized: mean %v var %v", mean, variance)
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	bn := NewBatchNorm(1, 8, 8)
	r := mathx.NewRNG(3)
	x := tensor.New(1, 8, 8)
	for step := 0; step < 300; step++ {
		for i := range x.Data {
			x.Data[i] = r.Norm(2, 0.5)
		}
		bn.Forward(x, true)
	}
	if math.Abs(bn.RunMean[0]-2) > 0.2 {
		t.Fatalf("running mean %v, want ~2", bn.RunMean[0])
	}
	if math.Abs(bn.RunVar[0]-0.25) > 0.1 {
		t.Fatalf("running var %v, want ~0.25", bn.RunVar[0])
	}
}

// Train-mode gradient check: numerical vs analytic through the instance
// statistics.
func TestBatchNormGradTrainMode(t *testing.T) {
	r := mathx.NewRNG(4)
	spec := Spec{
		Name:    "bn-net",
		InShape: []int{2, 4, 4},
		Layers: []LayerSpec{
			{Kind: KindConv, OutC: 2, K: 3, Stride: 1, Pad: 1},
			{Kind: KindBatchNorm},
			{Kind: KindReLU},
			{Kind: KindFlatten},
			{Kind: KindDense, Units: 3},
		},
	}
	net, err := Build(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 4, 4)
	x.RandNorm(r, 0.3, 0.5)
	label := 1

	lossAt := func() float64 {
		loss, _ := CrossEntropyLoss(net.forward(x, true), label)
		return loss
	}
	net.ZeroGrads()
	logits := net.forward(x, true)
	_, g := CrossEntropyLoss(logits, label)
	net.Backward(g)

	const eps = 1e-5
	for _, p := range net.Params() {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			plus := lossAt()
			p.W.Data[i] = orig - eps
			minus := lossAt()
			p.W.Data[i] = orig
			want := (plus - minus) / (2 * eps)
			got := p.Grad.Data[i]
			scale := math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
			if math.Abs(got-want)/scale > 1e-3 {
				t.Fatalf("%s[%d]: analytic %v vs numerical %v", p.Name, i, got, want)
			}
		}
	}
}

// Inference-mode gradcheck: BN is a constant affine.
func TestBatchNormGradEvalMode(t *testing.T) {
	spec := Spec{
		Name:    "bn-eval",
		InShape: []int{1, 4, 4},
		Layers: []LayerSpec{
			{Kind: KindConv, OutC: 2, K: 3, Stride: 1, Pad: 1},
			{Kind: KindBatchNorm},
			{Kind: KindReLU},
			{Kind: KindFlatten},
			{Kind: KindDense, Units: 2},
		},
	}
	checkGradients(t, spec, 7)
}

func TestBatchNormFoldedAffine(t *testing.T) {
	bn := NewBatchNorm(2, 2, 2)
	bn.Gamma.W.Data[0], bn.Gamma.W.Data[1] = 2, 0.5
	bn.Beta.W.Data[0], bn.Beta.W.Data[1] = 1, -1
	bn.RunMean[0], bn.RunMean[1] = 3, -2
	bn.RunVar[0], bn.RunVar[1] = 4, 0.25

	scale, shift := bn.FoldedAffine()
	x := tensor.New(2, 2, 2)
	x.RandNorm(mathx.NewRNG(5), 0, 2)
	y := bn.Forward(x, false)
	hw := 4
	for c := 0; c < 2; c++ {
		for i := 0; i < hw; i++ {
			want := scale[c]*x.Data[c*hw+i] + shift[c]
			if math.Abs(y.Data[c*hw+i]-want) > 1e-9 {
				t.Fatalf("folded affine mismatch at c=%d i=%d", c, i)
			}
		}
	}
}

func TestBuildRejectsBatchNormAfterFlatten(t *testing.T) {
	spec := Spec{
		Name:    "bad-bn",
		InShape: []int{1, 2, 2},
		Layers:  []LayerSpec{{Kind: KindFlatten}, {Kind: KindBatchNorm}},
	}
	if _, err := Build(spec, mathx.NewRNG(1)); err == nil {
		t.Fatal("BN after flatten accepted")
	}
}

func TestSaveLoadPreservesRunningStats(t *testing.T) {
	spec := Spec{
		Name:    "bn-io",
		InShape: []int{1, 4, 4},
		Layers: []LayerSpec{
			{Kind: KindConv, OutC: 2, K: 3, Stride: 1, Pad: 1},
			{Kind: KindBatchNorm},
			{Kind: KindReLU},
			{Kind: KindFlatten},
			{Kind: KindDense, Units: 2},
		},
	}
	net, err := Build(spec, mathx.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	// Drive the running stats away from the defaults.
	x := tensor.New(1, 4, 4)
	r := mathx.NewRNG(7)
	for i := 0; i < 50; i++ {
		x.RandNorm(r, 1, 2)
		net.forward(x, true)
	}

	var buf bytes.Buffer
	if err := SaveModel(&buf, spec, net); err != nil {
		t.Fatal(err)
	}
	_, net2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x.RandNorm(r, 0.5, 1)
	y1 := net.Forward(x)
	y2 := net2.Forward(x)
	for i := range y1.Data {
		if math.Abs(y1.Data[i]-y2.Data[i]) > 1e-12 {
			t.Fatal("inference differs after save/load (running stats lost?)")
		}
	}
}

func TestVGG16SpecBuildsAndRuns(t *testing.T) {
	net, err := Build(VGG16(3, 32, 32, 10), mathx.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	// 13 conv + 3 dense = 16 weighted layers.
	weighted := 0
	for _, l := range net.Layers {
		switch l.(type) {
		case *Conv2D, *Dense:
			weighted++
		}
	}
	if weighted != 16 {
		t.Fatalf("VGG16 has %d weighted layers", weighted)
	}
	y := net.Forward(tensor.New(3, 32, 32))
	if y.Len() != 10 {
		t.Fatalf("output %v", y.Shape)
	}
}

func TestVGGMiniBNBuilds(t *testing.T) {
	net, err := Build(VGGMiniBN(3, 16, 16, 10), mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	bns := 0
	for _, l := range net.Layers {
		if _, ok := l.(*BatchNorm); ok {
			bns++
		}
	}
	if bns != 5 {
		t.Fatalf("expected 5 BN layers, got %d", bns)
	}
}
