package dnn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"burstsnn/internal/mathx"
)

// modelFile is the on-disk representation: the architecture spec, a flat
// weight blob per parameter in network order, and non-parameter state
// (batch-norm running statistics) in layer order.
type modelFile struct {
	Spec    Spec
	Weights [][]float64
	// RunStats holds, for each BatchNorm layer in order, its running
	// mean followed by its running variance.
	RunStats [][]float64
}

// SaveModel serializes the network (spec + weights + running statistics)
// to w with gob.
func SaveModel(w io.Writer, spec Spec, net *Network) error {
	mf := modelFile{Spec: spec}
	for _, p := range net.Params() {
		buf := make([]float64, p.W.Len())
		copy(buf, p.W.Data)
		mf.Weights = append(mf.Weights, buf)
	}
	for _, l := range net.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			stats := make([]float64, 0, 2*bn.C)
			stats = append(stats, bn.RunMean...)
			stats = append(stats, bn.RunVar...)
			mf.RunStats = append(mf.RunStats, stats)
		}
	}
	return gob.NewEncoder(w).Encode(mf)
}

// LoadModel reconstructs a network saved with SaveModel.
func LoadModel(r io.Reader) (Spec, *Network, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return Spec{}, nil, fmt.Errorf("dnn: decoding model: %w", err)
	}
	// Weights are overwritten below, so the init RNG seed is irrelevant.
	net, err := Build(mf.Spec, mathx.NewRNG(0))
	if err != nil {
		return Spec{}, nil, err
	}
	params := net.Params()
	if len(params) != len(mf.Weights) {
		return Spec{}, nil, fmt.Errorf("dnn: model has %d weight blobs, spec needs %d", len(mf.Weights), len(params))
	}
	for i, p := range params {
		if p.W.Len() != len(mf.Weights[i]) {
			return Spec{}, nil, fmt.Errorf("dnn: weight blob %d has %d values, want %d", i, len(mf.Weights[i]), p.W.Len())
		}
		copy(p.W.Data, mf.Weights[i])
	}
	si := 0
	for _, l := range net.Layers {
		bn, ok := l.(*BatchNorm)
		if !ok {
			continue
		}
		if si >= len(mf.RunStats) || len(mf.RunStats[si]) != 2*bn.C {
			return Spec{}, nil, fmt.Errorf("dnn: missing or malformed running stats for batchnorm layer %d", si)
		}
		copy(bn.RunMean, mf.RunStats[si][:bn.C])
		copy(bn.RunVar, mf.RunStats[si][bn.C:])
		si++
	}
	return mf.Spec, net, nil
}

// SaveModelFile writes the model to path, creating parent-relative files
// atomically via a temp file then rename.
func SaveModelFile(path string, spec Spec, net *Network) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := SaveModel(f, spec, net); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadModelFile reads a model written by SaveModelFile.
func LoadModelFile(path string) (Spec, *Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
