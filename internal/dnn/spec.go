package dnn

import (
	"fmt"

	"burstsnn/internal/mathx"
	"burstsnn/internal/tensor"
)

// LayerKind enumerates the serializable layer types.
type LayerKind string

// Layer kinds understood by Build and the gob model files.
const (
	KindConv      LayerKind = "conv"
	KindDense     LayerKind = "dense"
	KindReLU      LayerKind = "relu"
	KindAvgPool   LayerKind = "avgpool"
	KindMaxPool   LayerKind = "maxpool"
	KindFlatten   LayerKind = "flatten"
	KindDropout   LayerKind = "dropout"
	KindBatchNorm LayerKind = "batchnorm"
)

// LayerSpec is the declarative description of one layer. Only the fields
// relevant to the Kind are read.
type LayerSpec struct {
	Kind   LayerKind
	OutC   int     // conv: output channels
	K      int     // conv: square kernel size
	Stride int     // conv
	Pad    int     // conv
	Units  int     // dense: output units
	Window int     // pooling window
	Rate   float64 // dropout probability
}

// Spec is a full architecture: the input geometry plus the layer stack.
type Spec struct {
	Name    string
	InShape []int // CHW
	Layers  []LayerSpec
}

// Build materializes the spec into a Network with freshly initialized
// weights drawn from r.
func Build(spec Spec, r *mathx.RNG) (*Network, error) {
	if len(spec.InShape) != 3 {
		return nil, fmt.Errorf("dnn: spec %q needs a CHW input shape, got %v", spec.Name, spec.InShape)
	}
	n := &Network{InShape: append([]int(nil), spec.InShape...)}
	cur := append([]int(nil), spec.InShape...)
	flat := false
	for i, ls := range spec.Layers {
		switch ls.Kind {
		case KindConv:
			if flat {
				return nil, fmt.Errorf("dnn: layer %d: conv after flatten", i)
			}
			cs := tensor.ConvSpec{
				InC: cur[0], InH: cur[1], InW: cur[2],
				OutC: ls.OutC, KH: ls.K, KW: ls.K, Stride: ls.Stride, Pad: ls.Pad,
			}
			if err := cs.Validate(); err != nil {
				return nil, fmt.Errorf("dnn: layer %d: %w", i, err)
			}
			n.Layers = append(n.Layers, NewConv2D(r, cs))
			cur = []int{cs.OutC, cs.OutH(), cs.OutW()}
		case KindDense:
			if !flat {
				return nil, fmt.Errorf("dnn: layer %d: dense before flatten", i)
			}
			n.Layers = append(n.Layers, NewDense(r, cur[0], ls.Units))
			cur = []int{ls.Units}
		case KindReLU:
			n.Layers = append(n.Layers, NewReLU(cur))
		case KindAvgPool:
			if flat {
				return nil, fmt.Errorf("dnn: layer %d: pool after flatten", i)
			}
			if cur[1]%ls.Window != 0 || cur[2]%ls.Window != 0 {
				return nil, fmt.Errorf("dnn: layer %d: pool window %d does not divide %dx%d", i, ls.Window, cur[1], cur[2])
			}
			n.Layers = append(n.Layers, &AvgPool2D{C: cur[0], H: cur[1], W: cur[2], Window: ls.Window})
			cur = []int{cur[0], cur[1] / ls.Window, cur[2] / ls.Window}
		case KindMaxPool:
			if flat {
				return nil, fmt.Errorf("dnn: layer %d: pool after flatten", i)
			}
			if cur[1]%ls.Window != 0 || cur[2]%ls.Window != 0 {
				return nil, fmt.Errorf("dnn: layer %d: pool window %d does not divide %dx%d", i, ls.Window, cur[1], cur[2])
			}
			n.Layers = append(n.Layers, &MaxPool2D{C: cur[0], H: cur[1], W: cur[2], Window: ls.Window})
			cur = []int{cur[0], cur[1] / ls.Window, cur[2] / ls.Window}
		case KindFlatten:
			n.Layers = append(n.Layers, &Flatten{InShapeSpec: append([]int(nil), cur...)})
			size := 1
			for _, d := range cur {
				size *= d
			}
			cur = []int{size}
			flat = true
		case KindDropout:
			n.Layers = append(n.Layers, &Dropout{Rate: ls.Rate, Shape: append([]int(nil), cur...), RNG: r.Fork()})
		case KindBatchNorm:
			if flat {
				return nil, fmt.Errorf("dnn: layer %d: batchnorm after flatten", i)
			}
			n.Layers = append(n.Layers, NewBatchNorm(cur[0], cur[1], cur[2]))
		default:
			return nil, fmt.Errorf("dnn: layer %d: unknown kind %q", i, ls.Kind)
		}
	}
	return n, nil
}

// LeNetMini returns the MNIST-scale CNN spec: two conv/pool stages and two
// dense layers, mirroring the "CNN" rows of the paper's Table 2.
func LeNetMini(inC, inH, inW, classes int) Spec {
	return Spec{
		Name:    "lenet-mini",
		InShape: []int{inC, inH, inW},
		Layers: []LayerSpec{
			{Kind: KindConv, OutC: 8, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindAvgPool, Window: 2},
			{Kind: KindConv, OutC: 16, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindAvgPool, Window: 2},
			{Kind: KindFlatten},
			{Kind: KindDense, Units: 64},
			{Kind: KindReLU},
			{Kind: KindDense, Units: classes},
		},
	}
}

// VGGMini returns the scaled-down VGG-16 stand-in: three conv/conv/pool
// stages with doubling channel widths followed by two dense layers. It is
// the CIFAR-10/100 workhorse of the experiment harness.
func VGGMini(inC, inH, inW, classes int) Spec {
	return Spec{
		Name:    "vgg-mini",
		InShape: []int{inC, inH, inW},
		Layers: []LayerSpec{
			{Kind: KindConv, OutC: 16, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindConv, OutC: 16, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindAvgPool, Window: 2},
			{Kind: KindConv, OutC: 32, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindConv, OutC: 32, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindAvgPool, Window: 2},
			{Kind: KindConv, OutC: 64, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindAvgPool, Window: 2},
			{Kind: KindFlatten},
			{Kind: KindDense, Units: 128},
			{Kind: KindReLU},
			{Kind: KindDense, Units: classes},
		},
	}
}

// VGGMiniBN returns VGGMini with batch normalization after every
// convolution — the variant used to exercise BN folding in conversion.
func VGGMiniBN(inC, inH, inW, classes int) Spec {
	base := VGGMini(inC, inH, inW, classes)
	spec := Spec{Name: "vgg-mini-bn", InShape: base.InShape}
	for _, ls := range base.Layers {
		spec.Layers = append(spec.Layers, ls)
		if ls.Kind == KindConv {
			spec.Layers = append(spec.Layers, LayerSpec{Kind: KindBatchNorm})
		}
	}
	return spec
}

// VGG16 returns the full 16-weighted-layer VGG architecture (13
// convolutions + 3 dense layers) with average pooling, sized for 32×32
// inputs. The classifier head uses 512-unit dense layers instead of the
// original 4096 (the original head exists for 224×224 ImageNet crops and
// would dominate the parameter count pointlessly at this input size).
// Training it on the synthetic workloads is possible but slow; the spec
// exists so the paper's nominal model can be built, converted, and
// smoke-tested end to end.
func VGG16(inC, inH, inW, classes int) Spec {
	conv := func(c int) []LayerSpec {
		return []LayerSpec{
			{Kind: KindConv, OutC: c, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
		}
	}
	pool := LayerSpec{Kind: KindAvgPool, Window: 2}
	var layers []LayerSpec
	block := func(c, reps int) {
		for i := 0; i < reps; i++ {
			layers = append(layers, conv(c)...)
		}
		layers = append(layers, pool)
	}
	block(64, 2)
	block(128, 2)
	block(256, 3)
	block(512, 3)
	block(512, 3)
	layers = append(layers,
		LayerSpec{Kind: KindFlatten},
		LayerSpec{Kind: KindDense, Units: 512},
		LayerSpec{Kind: KindReLU},
		LayerSpec{Kind: KindDropout, Rate: 0.5},
		LayerSpec{Kind: KindDense, Units: 512},
		LayerSpec{Kind: KindReLU},
		LayerSpec{Kind: KindDense, Units: classes},
	)
	return Spec{Name: "vgg16", InShape: []int{inC, inH, inW}, Layers: layers}
}

// MLP returns a small fully connected spec, used by fast tests.
func MLP(inC, inH, inW int, hidden []int, classes int) Spec {
	spec := Spec{
		Name:    "mlp",
		InShape: []int{inC, inH, inW},
		Layers:  []LayerSpec{{Kind: KindFlatten}},
	}
	for _, h := range hidden {
		spec.Layers = append(spec.Layers,
			LayerSpec{Kind: KindDense, Units: h},
			LayerSpec{Kind: KindReLU})
	}
	spec.Layers = append(spec.Layers, LayerSpec{Kind: KindDense, Units: classes})
	return spec
}
