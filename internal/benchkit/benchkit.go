// Package benchkit defines the canonical synthetic workloads for the
// simulator hot-path benchmarks. Both the go-test benchmark suite
// (bench_test.go) and the snnbench -hotpath artifact mode build their
// layers and event streams here, so the perf trajectory recorded in CI
// always measures exactly the workload the test benchmarks measure.
package benchkit

import (
	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
	"burstsnn/internal/snn"
)

// HotpathConvGeom is the canonical conv micro-benchmark geometry.
var HotpathConvGeom = snn.ConvGeom{InC: 8, InH: 16, InW: 16, OutC: 16, K: 3, Stride: 1, Pad: 1}

// Canonical dense micro-benchmark shape and pooling stage shape.
const (
	HotpathDenseIn  = 512
	HotpathDenseOut = 256
	HotpathPoolC    = 16
	HotpathPoolH    = 16
	HotpathPoolW    = 16
)

// Randn returns n deterministic N(0, std) weights.
func Randn(n int, std float64, seed uint64) []float64 {
	r := mathx.NewRNG(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Norm(0, std)
	}
	return v
}

// Events builds a deterministic event stream covering ~frac of the n
// input indices with coarse payloads.
func Events(n int, frac float64, seed uint64) []coding.Event {
	r := mathx.NewRNG(seed)
	var evs []coding.Event
	for i := 0; i < n; i++ {
		if r.Bernoulli(frac) {
			evs = append(evs, coding.Event{Index: i, Payload: 0.25 * float64(1+r.Intn(3))})
		}
	}
	return evs
}

// HotpathConv builds the canonical conv layer (burst coding) and its
// 10%-density input stream.
func HotpathConv() (*snn.SpikingConv, []coding.Event) {
	g := HotpathConvGeom
	layer := snn.NewSpikingConv(
		Randn(g.OutC*g.InC*g.K*g.K, 0.2, 1), Randn(g.OutC, 0.05, 2),
		g, coding.DefaultConfig(coding.Burst))
	return layer, Events(g.InC*g.InH*g.InW, 0.1, 3)
}

// HotpathDense builds the canonical dense layer (burst coding) and its
// 10%-density input stream.
func HotpathDense() (*snn.SpikingDense, []coding.Event) {
	layer := snn.NewSpikingDense(
		Randn(HotpathDenseIn*HotpathDenseOut, 0.1, 4), Randn(HotpathDenseOut, 0.05, 5),
		HotpathDenseIn, HotpathDenseOut, coding.DefaultConfig(coding.Burst))
	return layer, Events(HotpathDenseIn, 0.1, 6)
}

// HotpathPools builds the canonical pooling stages and their 15%-density
// input stream.
func HotpathPools() (*snn.SpikingAvgPool, *snn.SpikingMaxPool, []coding.Event) {
	avg := snn.NewSpikingAvgPool(HotpathPoolC, HotpathPoolH, HotpathPoolW, 2, coding.DefaultConfig(coding.Burst))
	maxp := snn.NewSpikingMaxPool(HotpathPoolC, HotpathPoolH, HotpathPoolW, 2)
	return avg, maxp, Events(HotpathPoolC*HotpathPoolH*HotpathPoolW, 0.15, 7)
}

// HotpathBatchB is the canonical lane count of the batched hot-path
// workloads (the serving default MaxBatch).
const HotpathBatchB = 8

// BatchEventStream builds a deterministic column stream over n neuron
// indices and b lanes: each (index, lane) spikes with probability frac,
// with the per-lane payload perturbation making a perLane fraction of
// columns non-uniform (the mid-burst case). The stream exercises every
// scatter specialization: single-lane, partial, and full-uniform columns.
func BatchEventStream(n, b int, frac float64, seed uint64) *coding.BatchEvents {
	r := mathx.NewRNG(seed)
	ev := &coding.BatchEvents{}
	ev.Grow(n, n*b)
	for i := 0; i < n; i++ {
		pay := 0.25 * float64(1+r.Intn(3))
		for s := 0; s < b; s++ {
			if r.Bernoulli(frac) {
				p := pay
				if r.Bernoulli(0.25) {
					p *= 2 // non-uniform lane payload
				}
				ev.Add(int32(s), p)
			}
		}
		ev.Commit(int32(i))
	}
	return ev
}

// HotpathConvBatch builds the B-lane batched variant of the canonical
// conv layer and a 40%-per-lane-density column stream (the occupancy a
// phase-coded input presents).
func HotpathConvBatch(b int) (snn.BatchLayer, *coding.BatchEvents) {
	g := HotpathConvGeom
	layer, _ := HotpathConv()
	return layer.NewBatch(b), BatchEventStream(g.InC*g.InH*g.InW, b, 0.4, 8)
}

// HotpathDenseBatch builds the B-lane batched variant of the canonical
// dense layer and its column stream.
func HotpathDenseBatch(b int) (snn.BatchLayer, *coding.BatchEvents) {
	layer, _ := HotpathDense()
	return layer.NewBatch(b), BatchEventStream(HotpathDenseIn, b, 0.4, 9)
}
