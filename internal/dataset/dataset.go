// Package dataset generates the deterministic synthetic image-classification
// workloads that stand in for MNIST, CIFAR-10, and CIFAR-100.
//
// The paper's datasets are an offline gate, so this package procedurally
// renders two families:
//
//   - SynthDigits: 28×28 grayscale glyphs of the digits 0-9 with random
//     shift, scale, stroke-thickness, and pixel noise (MNIST stand-in).
//   - SynthTextures: H×W×3 parametric textures (stripes, checkers, rings,
//     blobs, gradients, ...) with color jitter and noise, in a 10-class
//     (CIFAR-10 stand-in) and 100-class (CIFAR-100 stand-in) variant.
//
// Both are fully deterministic from a seed and learnable to high accuracy
// by small CNNs, which is what the DNN→SNN conversion experiments need:
// a trained ReLU network with a meaningful accuracy target.
package dataset

import (
	"fmt"

	"burstsnn/internal/mathx"
)

// Sample is a single labelled image in CHW layout with pixel values in
// [0, 1].
type Sample struct {
	Image []float64
	Label int
}

// Set is a labelled dataset split into train and test partitions.
type Set struct {
	Name    string
	C, H, W int // image geometry, CHW
	Classes int
	Train   []Sample
	Test    []Sample
}

// InputSize returns the flattened image length.
func (s *Set) InputSize() int { return s.C * s.H * s.W }

// Validate checks structural invariants: geometry, label ranges, and pixel
// bounds.
func (s *Set) Validate() error {
	want := s.InputSize()
	check := func(part string, samples []Sample) error {
		for i, smp := range samples {
			if len(smp.Image) != want {
				return fmt.Errorf("dataset %s: %s[%d] has %d pixels, want %d", s.Name, part, i, len(smp.Image), want)
			}
			if smp.Label < 0 || smp.Label >= s.Classes {
				return fmt.Errorf("dataset %s: %s[%d] label %d out of range", s.Name, part, i, smp.Label)
			}
			for j, p := range smp.Image {
				if p < 0 || p > 1 {
					return fmt.Errorf("dataset %s: %s[%d] pixel %d = %v out of [0,1]", s.Name, part, i, j, p)
				}
			}
		}
		return nil
	}
	if err := check("train", s.Train); err != nil {
		return err
	}
	return check("test", s.Test)
}

// Batch is a contiguous group of samples handed to the trainer.
type Batch struct {
	Images [][]float64
	Labels []int
}

// Batches splits samples into batches of at most size elements, in the
// order given. Callers shuffle beforehand when they need randomness.
func Batches(samples []Sample, size int) []Batch {
	if size <= 0 {
		panic("dataset: batch size must be positive")
	}
	var out []Batch
	for start := 0; start < len(samples); start += size {
		end := start + size
		if end > len(samples) {
			end = len(samples)
		}
		b := Batch{
			Images: make([][]float64, 0, end-start),
			Labels: make([]int, 0, end-start),
		}
		for _, s := range samples[start:end] {
			b.Images = append(b.Images, s.Image)
			b.Labels = append(b.Labels, s.Label)
		}
		out = append(out, b)
	}
	return out
}

// Shuffle permutes samples in place deterministically from the RNG.
func Shuffle(r *mathx.RNG, samples []Sample) {
	r.Shuffle(len(samples), func(i, j int) {
		samples[i], samples[j] = samples[j], samples[i]
	})
}

// ClassCounts returns a histogram of labels, used by balance tests.
func ClassCounts(samples []Sample, classes int) []int {
	counts := make([]int, classes)
	for _, s := range samples {
		counts[s.Label]++
	}
	return counts
}
