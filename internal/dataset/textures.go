package dataset

import (
	"math"

	"burstsnn/internal/mathx"
)

// TexturesConfig controls SynthTextures generation.
type TexturesConfig struct {
	Classes       int // 10 (CIFAR-10 stand-in) or 100 (CIFAR-100 stand-in)
	Size          int // square image side; the harness default is 16
	TrainPerClass int
	TestPerClass  int
	Noise         float64
	Seed          uint64
}

// DefaultTexturesConfig returns the CIFAR-10 stand-in configuration used
// by the experiment harness. Size 16 keeps VGG-mini training tractable on
// a small CPU box while preserving a three-stage conv/pool pyramid.
func DefaultTexturesConfig() TexturesConfig {
	return TexturesConfig{Classes: 10, Size: 16, TrainPerClass: 200, TestPerClass: 40, Noise: 0.05, Seed: 2027}
}

// DefaultTextures100Config returns the CIFAR-100 stand-in configuration:
// 100 classes formed as 10 texture families × 10 parameter bins.
func DefaultTextures100Config() TexturesConfig {
	return TexturesConfig{Classes: 100, Size: 16, TrainPerClass: 60, TestPerClass: 10, Noise: 0.04, Seed: 3037}
}

// SynthTextures renders the CIFAR stand-in: RGB parametric textures. Class
// identity is (family, parameter-bin); with 10 classes each family uses its
// middle parameter bin, with 100 classes all 10 bins appear.
func SynthTextures(cfg TexturesConfig) *Set {
	if cfg.Classes != 10 && cfg.Classes != 100 {
		panic("dataset: SynthTextures supports 10 or 100 classes")
	}
	r := mathx.NewRNG(cfg.Seed)
	name := "synth-textures10"
	if cfg.Classes == 100 {
		name = "synth-textures100"
	}
	set := &Set{Name: name, C: 3, H: cfg.Size, W: cfg.Size, Classes: cfg.Classes}
	for class := 0; class < cfg.Classes; class++ {
		family, bin := class, 5
		if cfg.Classes == 100 {
			family, bin = class/10, class%10
		}
		for i := 0; i < cfg.TrainPerClass; i++ {
			set.Train = append(set.Train, Sample{Image: renderTexture(r, family, bin, cfg.Size, cfg.Noise), Label: class})
		}
		for i := 0; i < cfg.TestPerClass; i++ {
			set.Test = append(set.Test, Sample{Image: renderTexture(r, family, bin, cfg.Size, cfg.Noise), Label: class})
		}
	}
	Shuffle(r, set.Train)
	Shuffle(r, set.Test)
	return set
}

// renderTexture draws one image of the given texture family. bin in [0,9]
// selects the family's structural parameter (frequency, radius, ...), so
// different bins of the same family are distinct but related classes —
// mirroring CIFAR-100's fine labels within coarse categories.
func renderTexture(r *mathx.RNG, family, bin, size int, noise float64) []float64 {
	img := make([]float64, 3*size*size)
	// Per-sample jitter: phase, base color, and orientation wobble.
	phase := r.Range(0, 2*math.Pi)
	baseR, baseG, baseB := r.Range(0.2, 0.8), r.Range(0.2, 0.8), r.Range(0.2, 0.8)
	wobble := r.Range(-0.15, 0.15)
	freq := 1.5 + float64(bin)*0.4
	fs := float64(size)

	value := func(y, x int) (float64, float64, float64) {
		fy, fx := float64(y)/fs, float64(x)/fs
		switch family {
		case 0: // horizontal stripes
			v := 0.5 + 0.5*math.Sin(2*math.Pi*freq*(fy+wobble*fx)+phase)
			return v, v * 0.6, 1 - v
		case 1: // vertical stripes
			v := 0.5 + 0.5*math.Sin(2*math.Pi*freq*(fx+wobble*fy)+phase)
			return 1 - v, v, v * 0.7
		case 2: // diagonal stripes
			v := 0.5 + 0.5*math.Sin(2*math.Pi*freq*(fx+fy)/1.4+phase)
			return v, 1 - v, baseB
		case 3: // checkerboard
			k := int(freq) + 2
			v := 0.15
			if ((y*k/size)+(x*k/size))%2 == 0 {
				v = 0.9
			}
			return v, v, baseG
		case 4: // concentric rings
			dy, dx := fy-0.5, fx-0.5
			d := math.Sqrt(dy*dy + dx*dx)
			v := 0.5 + 0.5*math.Cos(2*math.Pi*freq*2*d+phase)
			return v * baseR, v, v * baseB
		case 5: // radial gradient blob
			dy, dx := fy-0.5-wobble, fx-0.5+wobble
			d := math.Sqrt(dy*dy+dx*dx) * (1.2 + float64(bin)*0.12)
			v := mathx.Clamp(1-d*2, 0, 1)
			return v, v * baseG, 1 - v
		case 6: // linear gradient
			v := mathx.Clamp(fy*(0.6+float64(bin)*0.08)+wobble*fx, 0, 1)
			return v, 1 - v, baseB
		case 7: // grid of dots
			k := int(freq) + 2
			cy := math.Mod(fy*float64(k), 1) - 0.5
			cx := math.Mod(fx*float64(k), 1) - 0.5
			v := 0.1
			if cy*cy+cx*cx < 0.08 {
				v = 0.95
			}
			return v, v * 0.5, v
		case 8: // plaid (sum of both stripe directions)
			v := 0.25 * (2 + math.Sin(2*math.Pi*freq*fy+phase) + math.Sin(2*math.Pi*freq*fx+phase)) * 0.9
			return v, baseG * v, 1 - v*0.5
		default: // 9: half-and-half split with tilted boundary
			tilt := (float64(bin) - 4.5) * 0.15
			if fy > 0.5+tilt*(fx-0.5) {
				return baseR, 0.85, 0.2
			}
			return 0.2, baseG * 0.4, 0.9
		}
	}

	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			vr, vg, vb := value(y, x)
			idx := y*size + x
			img[idx] = mathx.Clamp(vr+r.Norm(0, noise), 0, 1)
			img[size*size+idx] = mathx.Clamp(vg+r.Norm(0, noise), 0, 1)
			img[2*size*size+idx] = mathx.Clamp(vb+r.Norm(0, noise), 0, 1)
		}
	}
	return img
}
