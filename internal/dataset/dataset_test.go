package dataset

import (
	"testing"
	"testing/quick"

	"burstsnn/internal/mathx"
)

func TestSynthDigitsStructure(t *testing.T) {
	cfg := DigitsConfig{TrainPerClass: 5, TestPerClass: 2, Noise: 0.05, Seed: 1}
	set := SynthDigits(cfg)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(set.Train) != 50 || len(set.Test) != 20 {
		t.Fatalf("split sizes: %d/%d", len(set.Train), len(set.Test))
	}
	if set.InputSize() != 28*28 {
		t.Fatalf("input size %d", set.InputSize())
	}
}

func TestSynthDigitsDeterminism(t *testing.T) {
	cfg := DigitsConfig{TrainPerClass: 3, TestPerClass: 1, Noise: 0.05, Seed: 7}
	a := SynthDigits(cfg)
	b := SynthDigits(cfg)
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatal("labels diverge for equal seeds")
		}
		for j := range a.Train[i].Image {
			if a.Train[i].Image[j] != b.Train[i].Image[j] {
				t.Fatal("pixels diverge for equal seeds")
			}
		}
	}
}

func TestSynthDigitsSeedsDiffer(t *testing.T) {
	a := SynthDigits(DigitsConfig{TrainPerClass: 2, TestPerClass: 1, Noise: 0.05, Seed: 1})
	b := SynthDigits(DigitsConfig{TrainPerClass: 2, TestPerClass: 1, Noise: 0.05, Seed: 2})
	same := true
	for i := range a.Train {
		for j := range a.Train[i].Image {
			if a.Train[i].Image[j] != b.Train[i].Image[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSynthDigitsClassBalance(t *testing.T) {
	set := SynthDigits(DigitsConfig{TrainPerClass: 4, TestPerClass: 3, Noise: 0, Seed: 3})
	for c, n := range ClassCounts(set.Train, 10) {
		if n != 4 {
			t.Fatalf("train class %d has %d samples", c, n)
		}
	}
	for c, n := range ClassCounts(set.Test, 10) {
		if n != 3 {
			t.Fatalf("test class %d has %d samples", c, n)
		}
	}
}

func TestSynthDigitsClassesVisuallyDistinct(t *testing.T) {
	// Mean images of different classes should differ substantially; if
	// they do not, the dataset is unlearnable and the whole pipeline
	// degenerates.
	set := SynthDigits(DigitsConfig{TrainPerClass: 30, TestPerClass: 1, Noise: 0.03, Seed: 5})
	means := make([][]float64, 10)
	counts := make([]int, 10)
	for i := range means {
		means[i] = make([]float64, set.InputSize())
	}
	for _, s := range set.Train {
		counts[s.Label]++
		for j, p := range s.Image {
			means[s.Label][j] += p
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			dist := 0.0
			for j := range means[a] {
				d := means[a][j] - means[b][j]
				dist += d * d
			}
			if dist < 1.0 {
				t.Fatalf("classes %d and %d are nearly identical (dist %v)", a, b, dist)
			}
		}
	}
}

func TestSynthTexturesStructure(t *testing.T) {
	cfg := TexturesConfig{Classes: 10, Size: 16, TrainPerClass: 4, TestPerClass: 2, Noise: 0.05, Seed: 9}
	set := SynthTextures(cfg)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.C != 3 || set.H != 16 || set.W != 16 {
		t.Fatalf("geometry %dx%dx%d", set.C, set.H, set.W)
	}
	if len(set.Train) != 40 || len(set.Test) != 20 {
		t.Fatalf("split sizes %d/%d", len(set.Train), len(set.Test))
	}
}

func TestSynthTextures100(t *testing.T) {
	cfg := TexturesConfig{Classes: 100, Size: 16, TrainPerClass: 1, TestPerClass: 1, Noise: 0.03, Seed: 11}
	set := SynthTextures(cfg)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.Classes != 100 || len(set.Train) != 100 {
		t.Fatalf("expected 100 classes, got %d with %d samples", set.Classes, len(set.Train))
	}
}

func TestSynthTexturesRejectsBadClassCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported class count")
		}
	}()
	SynthTextures(TexturesConfig{Classes: 17, Size: 16, TrainPerClass: 1, TestPerClass: 1})
}

func TestSynthTexturesDeterminism(t *testing.T) {
	cfg := TexturesConfig{Classes: 10, Size: 12, TrainPerClass: 2, TestPerClass: 1, Noise: 0.05, Seed: 13}
	a := SynthTextures(cfg)
	b := SynthTextures(cfg)
	for i := range a.Test {
		for j := range a.Test[i].Image {
			if a.Test[i].Image[j] != b.Test[i].Image[j] {
				t.Fatal("texture generation is not deterministic")
			}
		}
	}
}

func TestBatches(t *testing.T) {
	samples := make([]Sample, 10)
	for i := range samples {
		samples[i] = Sample{Image: []float64{float64(i)}, Label: i % 3}
	}
	bs := Batches(samples, 4)
	if len(bs) != 3 {
		t.Fatalf("expected 3 batches, got %d", len(bs))
	}
	if len(bs[0].Images) != 4 || len(bs[2].Images) != 2 {
		t.Fatalf("batch sizes wrong: %d, %d", len(bs[0].Images), len(bs[2].Images))
	}
	if bs[1].Images[0][0] != 4 {
		t.Fatal("batches must preserve order")
	}
}

func TestBatchesPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Batches(0) did not panic")
		}
	}()
	Batches(nil, 0)
}

func TestBatchesCoverAllSamplesProperty(t *testing.T) {
	f := func(seed uint64, nRaw, szRaw uint8) bool {
		n := int(nRaw%50) + 1
		sz := int(szRaw%10) + 1
		samples := make([]Sample, n)
		for i := range samples {
			samples[i] = Sample{Image: []float64{float64(i)}, Label: 0}
		}
		total := 0
		for _, b := range Batches(samples, sz) {
			if len(b.Images) > sz || len(b.Images) == 0 {
				return false
			}
			total += len(b.Images)
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleDeterministic(t *testing.T) {
	mk := func() []Sample {
		s := make([]Sample, 20)
		for i := range s {
			s[i] = Sample{Label: i}
		}
		return s
	}
	a, b := mk(), mk()
	Shuffle(mathx.NewRNG(99), a)
	Shuffle(mathx.NewRNG(99), b)
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("Shuffle is not deterministic for equal seeds")
		}
	}
}

func TestValidateCatchesBadLabel(t *testing.T) {
	set := &Set{Name: "x", C: 1, H: 1, W: 1, Classes: 2,
		Train: []Sample{{Image: []float64{0.5}, Label: 5}}}
	if err := set.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range label")
	}
}

func TestValidateCatchesBadPixel(t *testing.T) {
	set := &Set{Name: "x", C: 1, H: 1, W: 1, Classes: 2,
		Test: []Sample{{Image: []float64{1.5}, Label: 0}}}
	if err := set.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range pixel")
	}
}
