package dataset

import "burstsnn/internal/mathx"

// digitGlyphs are coarse 7×5 bitmaps of the digits 0-9 that the renderer
// upsamples, jitters, and corrupts into MNIST-like 28×28 images.
var digitGlyphs = [10][7]string{
	{"#####", "#...#", "#...#", "#...#", "#...#", "#...#", "#####"}, // 0
	{"..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."}, // 1
	{"#####", "....#", "....#", "#####", "#....", "#....", "#####"}, // 2
	{"#####", "....#", "....#", ".####", "....#", "....#", "#####"}, // 3
	{"#...#", "#...#", "#...#", "#####", "....#", "....#", "....#"}, // 4
	{"#####", "#....", "#....", "#####", "....#", "....#", "#####"}, // 5
	{"#####", "#....", "#....", "#####", "#...#", "#...#", "#####"}, // 6
	{"#####", "....#", "...#.", "..#..", "..#..", ".#...", ".#..."}, // 7
	{"#####", "#...#", "#...#", "#####", "#...#", "#...#", "#####"}, // 8
	{"#####", "#...#", "#...#", "#####", "....#", "....#", "#####"}, // 9
}

// DigitsConfig controls SynthDigits generation.
type DigitsConfig struct {
	TrainPerClass int
	TestPerClass  int
	Noise         float64 // std of additive pixel noise
	Seed          uint64
}

// DefaultDigitsConfig returns the configuration used by the experiment
// harness: enough samples to train a small CNN past 95% test accuracy in
// a couple of epochs.
func DefaultDigitsConfig() DigitsConfig {
	return DigitsConfig{TrainPerClass: 220, TestPerClass: 40, Noise: 0.06, Seed: 1009}
}

// SynthDigits renders the MNIST stand-in: 28×28×1 digit glyphs with random
// geometric jitter and noise.
func SynthDigits(cfg DigitsConfig) *Set {
	r := mathx.NewRNG(cfg.Seed)
	set := &Set{Name: "synth-digits", C: 1, H: 28, W: 28, Classes: 10}
	for class := 0; class < 10; class++ {
		for i := 0; i < cfg.TrainPerClass; i++ {
			set.Train = append(set.Train, Sample{Image: renderDigit(r, class, cfg.Noise), Label: class})
		}
		for i := 0; i < cfg.TestPerClass; i++ {
			set.Test = append(set.Test, Sample{Image: renderDigit(r, class, cfg.Noise), Label: class})
		}
	}
	Shuffle(r, set.Train)
	Shuffle(r, set.Test)
	return set
}

// renderDigit draws one jittered glyph. The glyph occupies a randomly
// scaled and shifted box inside the 28×28 canvas; stroke intensity varies
// per sample and Gaussian noise is added everywhere.
func renderDigit(r *mathx.RNG, class int, noise float64) []float64 {
	const size = 28
	img := make([]float64, size*size)
	glyph := digitGlyphs[class]

	scale := r.Range(0.75, 1.0)
	boxH := int(20 * scale)
	boxW := int(14 * scale)
	offY := 4 + r.Intn(5) - 2
	offX := 7 + r.Intn(5) - 2
	ink := r.Range(0.75, 1.0)
	thick := r.Bernoulli(0.4)

	for y := 0; y < boxH; y++ {
		gy := y * 7 / boxH
		for x := 0; x < boxW; x++ {
			gx := x * 5 / boxW
			if glyph[gy][gx] != '#' {
				continue
			}
			setPix(img, size, offY+y, offX+x, ink)
			if thick {
				setPix(img, size, offY+y, offX+x+1, ink*0.9)
			}
		}
	}
	for i := range img {
		img[i] = mathx.Clamp(img[i]+r.Norm(0, noise), 0, 1)
	}
	return img
}

func setPix(img []float64, size, y, x int, v float64) {
	if y < 0 || y >= size || x < 0 || x >= size {
		return
	}
	if v > img[y*size+x] {
		img[y*size+x] = v
	}
}
