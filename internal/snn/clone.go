package snn

import (
	"fmt"

	"burstsnn/internal/coding"
)

// Replicating a converted network: every layer can stamp out a copy that
// shares the read-only weight arrays but owns fresh neuron state (membrane
// potentials, burst state, event buffers). Serving replica pools and
// parallel evaluation use this instead of re-running the conversion (and
// its activation-recording pass) once per worker.

// CloneableLayer is a Layer that supports weight-sharing replication.
// All layers built by the converter implement it.
type CloneableLayer interface {
	Layer
	// CloneLayer returns an independent copy: shared weights, fresh state.
	CloneLayer() Layer
}

func (p *population) clone() *population {
	return newPopulation(len(p.vmem), p.cfg)
}

// CloneLayer implements CloneableLayer.
func (l *SpikingDense) CloneLayer() Layer {
	return &SpikingDense{
		In: l.In, Out: l.Out, WT: l.WT, Bias: l.Bias,
		WT32: l.WT32, Bias32: l.Bias32,
		pop: l.pop.clone(),
		z:   make([]float64, l.Out),
	}
}

// CloneLayer implements CloneableLayer. The scatter table (taps/tapStart)
// is immutable after construction, so clones share it like the weights.
func (l *SpikingConv) CloneLayer() Layer {
	return &SpikingConv{
		Geom: l.Geom, WScatter: l.WScatter, Bias: l.Bias,
		WScatter32: l.WScatter32,
		taps:       l.taps, tapStart: l.tapStart, outHW: l.outHW,
		pop:  l.pop.clone(),
		bias: l.bias, bias32: l.bias32,
	}
}

// CloneLayer implements CloneableLayer (the outIdx table is shared).
func (l *SpikingAvgPool) CloneLayer() Layer {
	return &SpikingAvgPool{
		C: l.C, H: l.H, W: l.W, Window: l.Window,
		outIdx: l.outIdx,
		pop:    l.pop.clone(),
		inv:    l.inv,
	}
}

// CloneLayer implements CloneableLayer. Window geometry tables are
// shared; cumulative payloads and the spike stamps are fresh state.
func (l *SpikingMaxPool) CloneLayer() Layer {
	nIn := l.C * l.H * l.W
	nWin := len(l.winStart) - 1
	return &SpikingMaxPool{
		C: l.C, H: l.H, W: l.W, Window: l.Window,
		cum:     make([]float64, nIn),
		lastPay: make([]float64, nIn),
		buf:     make([]coding.Event, 0, cap(l.buf)),
		winOf:   l.winOf, winStart: l.winStart, winMembers: l.winMembers,
		seen:     make([]int, nIn),
		winStamp: make([]int, nWin),
		touched:  make([]int32, 0, nWin),
	}
}

// Clone returns a copy of the readout with shared weights and zeroed
// accumulators.
func (l *OutputLayer) Clone() *OutputLayer {
	return &OutputLayer{
		In: l.In, Out: l.Out, WT: l.WT, Bias: l.Bias,
		WT32: l.WT32, Bias32: l.Bias32,
		pot: make([]float64, l.Out),
	}
}

// Clone replicates the network: the copy shares every weight array with
// the original but has its own encoder, neuron state, and readout
// accumulators, so the two can simulate different images concurrently.
// Probes are not copied (the Ref flag is). It fails if the encoder or a
// layer does not support replication (all standard converter output does).
func (n *Network) Clone() (*Network, error) {
	enc, ok := n.Encoder.(coding.CloneableEncoder)
	if !ok {
		return nil, fmt.Errorf("snn: encoder %T does not support cloning", n.Encoder)
	}
	out := &Network{
		Encoder: enc.Clone(),
		Layers:  make([]Layer, len(n.Layers)),
		Output:  n.Output.Clone(),
		Ref:     n.Ref,
	}
	for i, l := range n.Layers {
		c, ok := l.(CloneableLayer)
		if !ok {
			return nil, fmt.Errorf("snn: layer %d (%s) does not support cloning", i, l.Name())
		}
		out.Layers[i] = c.CloneLayer()
	}
	return out, nil
}
