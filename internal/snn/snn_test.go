package snn

import (
	"math"
	"testing"
	"testing/quick"

	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
)

// drive pushes a constant current into a 1-neuron population for T steps
// and returns the emitted events plus the residual membrane.
func drive(cfg coding.Config, current float64, T int) ([]coding.Event, float64) {
	pop := newPopulation(1, cfg)
	var events []coding.Event
	for t := 0; t < T; t++ {
		pop.vmem[0] += current
		for _, ev := range pop.fire(t, nil, 0) {
			events = append(events, coding.Event{Index: ev.Index, Payload: ev.Payload})
		}
	}
	return events, pop.vmem[0]
}

func payloadSum(events []coding.Event) float64 {
	s := 0.0
	for _, ev := range events {
		s += ev.Payload
	}
	return s
}

// Conservation: emitted payload + residual membrane == integrated input.
// This is the reset-by-subtraction invariant (Eq. 4/5) and must hold for
// every hidden-layer coding scheme.
func TestPayloadConservationProperty(t *testing.T) {
	schemes := []coding.Config{
		coding.DefaultConfig(coding.Rate),
		coding.DefaultConfig(coding.Phase),
		coding.DefaultConfig(coding.Burst),
		{Scheme: coding.Burst, VTh: 0.0625, Beta: 2, Period: 8},
		{Scheme: coding.Burst, VTh: 0.25, Beta: 4, Period: 8},
	}
	for _, cfg := range schemes {
		cfg := cfg
		f := func(seed uint64) bool {
			r := mathx.NewRNG(seed)
			current := r.Range(0, 1.2)
			T := 20 + r.Intn(100)
			events, residual := drive(cfg, current, T)
			total := payloadSum(events) + residual
			want := current * float64(T)
			return math.Abs(total-want) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("scheme %v: %v", cfg.Scheme, err)
		}
	}
}

// An IF neuron under rate coding approximates ReLU: firing-rate payload
// per step converges to the input current (clipped at v_th per step).
func TestRateNeuronApproximatesReLU(t *testing.T) {
	cfg := coding.DefaultConfig(coding.Rate)
	for _, current := range []float64{0.1, 0.33, 0.5, 0.9} {
		events, _ := drive(cfg, current, 500)
		rate := payloadSum(events) / 500
		if math.Abs(rate-current) > 0.01 {
			t.Fatalf("current %v: payload rate %v", current, rate)
		}
	}
	// Negative current must stay silent (the ReLU cut-off).
	events, _ := drive(cfg, -0.5, 200)
	if len(events) != 0 {
		t.Fatal("negative current must not fire")
	}
}

// A burst neuron facing a large membrane drains it in logarithmically
// many consecutive spikes with geometrically growing payloads.
func TestBurstDrainsLargeMembraneFast(t *testing.T) {
	cfg := coding.Config{Scheme: coding.Burst, VTh: 0.125, Beta: 2, Period: 8}
	pop := newPopulation(1, cfg)
	pop.vmem[0] = 10.0
	var payloads []float64
	firstBurst := true
	var burst []float64
	for t0 := 0; t0 < 30; t0++ {
		evs := pop.fire(t0, nil, 0)
		if len(evs) == 0 {
			firstBurst = false
		} else if firstBurst {
			burst = append(burst, evs[0].Payload)
		}
		for _, ev := range evs {
			payloads = append(payloads, ev.Payload)
		}
	}
	// Rate coding at v_th=0.125 would need 80 unit steps; burst must be
	// far faster. V=10 with β=2 drains in a handful of geometric bursts.
	if len(payloads) == 0 || len(payloads) > 16 {
		t.Fatalf("expected burst to drain V=10 in few spikes, got %d", len(payloads))
	}
	// Within the first burst payloads must grow geometrically by β.
	if len(burst) < 4 {
		t.Fatalf("first burst too short: %v", burst)
	}
	for i := 1; i < len(burst); i++ {
		if math.Abs(burst[i]-2*burst[i-1]) > 1e-12 {
			t.Fatalf("burst payloads must double: %v", burst)
		}
	}
	if pop.vmem[0] >= 0.125 {
		t.Fatalf("membrane not drained below v_th: %v", pop.vmem[0])
	}
}

// After a silent step the burst state must reset, so the next spike again
// carries the base payload v_th.
func TestBurstStateResetsAfterSilence(t *testing.T) {
	cfg := coding.Config{Scheme: coding.Burst, VTh: 0.125, Beta: 2, Period: 8}
	pop := newPopulation(1, cfg)
	pop.vmem[0] = 1.0
	var first []float64
	for t0 := 0; t0 < 10; t0++ {
		for _, ev := range pop.fire(t0, nil, 0) {
			first = append(first, ev.Payload)
		}
	}
	// Now silent for a while, then a new charge.
	pop.vmem[0] = 1.0
	ev2 := pop.fire(50, nil, 0)
	if len(ev2) != 1 || ev2[0].Payload != 0.125 {
		t.Fatalf("after silence the first spike must carry v_th, got %+v", ev2)
	}
	_ = first
}

// Phase-coded neuron payloads must follow the oscillation Π(t)·v_th.
func TestPhaseNeuronPayloadFollowsOscillation(t *testing.T) {
	cfg := coding.DefaultConfig(coding.Phase)
	events, _ := drive(cfg, 0.9, 16)
	if len(events) == 0 {
		t.Fatal("phase neuron with strong input must fire")
	}
	for i, ev := range events {
		if ev.Payload > 0.5 || ev.Payload <= 0 {
			t.Fatalf("event %d payload %v outside phase envelope", i, ev.Payload)
		}
	}
}

func TestSpikingDenseScatter(t *testing.T) {
	// 2 inputs, 3 outputs; W row-major Out×In.
	w := []float64{
		1, 2,
		3, 4,
		5, 6,
	}
	bias := []float64{0.1, 0.2, 0.3}
	l := NewSpikingDense(w, bias, 2, 3, coding.DefaultConfig(coding.Rate))
	// Send one event on input 1, payload 0.5 => z = w[:,1]*0.5 + bias.
	l.Step(0, 1, []coding.Event{{Index: 1, Payload: 0.5}})
	want := []float64{1*0.1 + 2*0.5 - 0, 0.2 + 4*0.5, 0.3 + 6*0.5}
	want[0] = 0.1 + 2*0.5
	for i, wv := range want {
		got := l.Potential(i)
		// Neuron 1 (z=2.2) and 2 (z=3.3) crossed v_th=1 and were reset.
		if wv >= 1 {
			wv -= 1
		}
		if math.Abs(got-wv) > 1e-12 {
			t.Fatalf("neuron %d potential %v, want %v", i, got, wv)
		}
	}
}

func TestSpikingDenseRejectsBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad dims did not panic")
		}
	}()
	NewSpikingDense([]float64{1, 2, 3}, []float64{0}, 2, 1, coding.DefaultConfig(coding.Rate))
}

// A single input event through SpikingConv must integrate exactly the
// same membrane pattern as the dense convolution of a one-hot input.
func TestSpikingConvMatchesDenseConv(t *testing.T) {
	r := mathx.NewRNG(42)
	geom := ConvGeom{InC: 2, InH: 5, InW: 5, OutC: 3, K: 3, Stride: 1, Pad: 1}
	nW := geom.OutC * geom.InC * geom.K * geom.K
	w := make([]float64, nW)
	for i := range w {
		w[i] = r.Norm(0, 1)
	}
	bias := make([]float64, geom.OutC) // zero bias isolates the scatter

	// Rate config with a huge threshold so nothing fires and vmem holds
	// the raw integration.
	cfg := coding.Config{Scheme: coding.Rate, VTh: 1e18}
	l := NewSpikingConv(w, bias, geom, cfg)

	evIdx := (1*geom.InH+2)*geom.InW + 3 // channel 1, y=2, x=3
	payload := 0.7
	l.Step(0, 1, []coding.Event{{Index: evIdx, Payload: payload}})

	// Reference: dense conv of the one-hot image.
	outH, outW := geom.OutH(), geom.OutW()
	ref := make([]float64, geom.OutC*outH*outW)
	for oc := 0; oc < geom.OutC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				sum := 0.0
				for ic := 0; ic < geom.InC; ic++ {
					for kh := 0; kh < geom.K; kh++ {
						iy := oy*geom.Stride + kh - geom.Pad
						if iy < 0 || iy >= geom.InH {
							continue
						}
						for kw := 0; kw < geom.K; kw++ {
							ix := ox*geom.Stride + kw - geom.Pad
							if ix < 0 || ix >= geom.InW {
								continue
							}
							inIdx := (ic*geom.InH+iy)*geom.InW + ix
							if inIdx != evIdx {
								continue
							}
							sum += w[((oc*geom.InC+ic)*geom.K+kh)*geom.K+kw] * payload
						}
					}
				}
				ref[(oc*outH+oy)*outW+ox] = sum
			}
		}
	}
	for i, want := range ref {
		if math.Abs(l.pop.vmem[i]-want) > 1e-9 {
			t.Fatalf("conv scatter diverges at %d: got %v want %v", i, l.pop.vmem[i], want)
		}
	}
}

func TestSpikingConvStride2(t *testing.T) {
	geom := ConvGeom{InC: 1, InH: 4, InW: 4, OutC: 1, K: 3, Stride: 2, Pad: 1}
	if geom.OutH() != 2 || geom.OutW() != 2 {
		t.Fatalf("geometry %dx%d", geom.OutH(), geom.OutW())
	}
	w := make([]float64, 9)
	for i := range w {
		w[i] = 1
	}
	cfg := coding.Config{Scheme: coding.Rate, VTh: 1e18}
	l := NewSpikingConv(w, []float64{0}, geom, cfg)
	// Event at (0,0): contributes to outputs whose window covers (0,0).
	l.Step(0, 1, []coding.Event{{Index: 0, Payload: 1}})
	// Output (0,0) window covers input rows/cols -1..1 => includes (0,0);
	// output (0,1) covers cols 1..3 => excludes col 0. Same for rows.
	if l.pop.vmem[0] != 1 || l.pop.vmem[1] != 0 || l.pop.vmem[2] != 0 || l.pop.vmem[3] != 0 {
		t.Fatalf("stride-2 scatter wrong: %v", l.pop.vmem)
	}
}

func TestSpikingAvgPoolConservation(t *testing.T) {
	cfg := coding.Config{Scheme: coding.Rate, VTh: 1e18}
	l := NewSpikingAvgPool(1, 4, 4, 2, cfg)
	// Four events in the same window must integrate their mean.
	events := []coding.Event{
		{Index: 0, Payload: 1}, {Index: 1, Payload: 1},
		{Index: 4, Payload: 1}, {Index: 5, Payload: 1},
	}
	l.Step(0, 1, events)
	if math.Abs(l.pop.vmem[0]-1) > 1e-12 {
		t.Fatalf("pool neuron 0 = %v, want 1 (mean of window)", l.pop.vmem[0])
	}
	for i := 1; i < 4; i++ {
		if l.pop.vmem[i] != 0 {
			t.Fatalf("pool neuron %d leaked: %v", i, l.pop.vmem[i])
		}
	}
}

func TestSpikingMaxPoolGatesWinner(t *testing.T) {
	l := NewSpikingMaxPool(1, 2, 2, 2)
	// Input 0 fires twice, input 3 once: after the first step input 0 is
	// the cumulative max and passes; input 3's spike is suppressed while
	// it trails.
	out := l.Step(0, 1, []coding.Event{{Index: 0, Payload: 1}})
	if len(out) != 1 || out[0].Index != 0 {
		t.Fatalf("step 0 output %+v", out)
	}
	out = l.Step(1, 1, []coding.Event{{Index: 0, Payload: 1}, {Index: 3, Payload: 0.5}})
	if len(out) != 1 || out[0].Payload != 1 {
		t.Fatalf("step 1: only the cumulative winner must pass, got %+v", out)
	}
	if l.NumNeurons() != 0 {
		t.Fatal("max pool gate must report zero neurons")
	}
}

func TestOutputLayerAccumulates(t *testing.T) {
	w := []float64{1, 0, 0, 1} // identity 2x2
	l := NewOutputLayer(w, []float64{0.5, 0}, 2, 2)
	l.Step(0, 1, []coding.Event{{Index: 0, Payload: 2}})
	l.Step(1, 1, nil)
	pot := l.Potentials()
	if pot[0] != 2+0.5*2 || pot[1] != 0 {
		t.Fatalf("potentials %v", pot)
	}
	l.Reset()
	if l.Potentials()[0] != 0 {
		t.Fatal("Reset did not clear potentials")
	}
}

// End-to-end: a hand-built real→rate SNN must converge to the underlying
// analog network's decision. Analog net: y = W2·ReLU(W1·x), picks class
// by argmax.
func TestNetworkConvergesToAnalogDecision(t *testing.T) {
	w1 := []float64{
		0.8, 0.1,
		0.1, 0.7,
	}
	b1 := []float64{0, 0}
	w2 := []float64{
		0.9, 0.1,
		0.1, 0.9,
	}
	b2 := []float64{0, 0}
	enc, err := coding.NewInputEncoder(coding.DefaultConfig(coding.Real), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	net := &Network{
		Encoder: enc,
		Layers: []Layer{
			NewSpikingDense(w1, b1, 2, 2, coding.DefaultConfig(coding.Rate)),
		},
		Output: NewOutputLayer(w2, b2, 2, 2),
	}
	// Input favouring class 0.
	res := net.Run([]float64{0.9, 0.2}, 100)
	if res.FinalPrediction() != 0 {
		t.Fatalf("predicted %d, want 0", res.FinalPrediction())
	}
	// And the mirrored input favours class 1.
	res = net.Run([]float64{0.2, 0.9}, 100)
	if res.FinalPrediction() != 1 {
		t.Fatalf("predicted %d, want 1", res.FinalPrediction())
	}
	if res.HiddenSpikes == 0 {
		t.Fatal("no hidden spikes recorded")
	}
	if res.InputSpikes != 0 {
		t.Fatal("real encoder events must not count as spikes")
	}
}

func TestNetworkProbeSeesSpikes(t *testing.T) {
	enc, _ := coding.NewInputEncoder(coding.DefaultConfig(coding.Rate), 1, 0)
	net := &Network{
		Encoder: enc,
		Layers: []Layer{
			NewSpikingDense([]float64{1}, []float64{0}, 1, 1, coding.DefaultConfig(coding.Rate)),
		},
		Output: NewOutputLayer([]float64{1}, []float64{0}, 1, 1),
	}
	var layerSpikes, inputSpikes int
	net.AttachProbe(0, func(_ int, evs []coding.Event) { layerSpikes += len(evs) })
	net.AttachProbe(-1, func(_ int, evs []coding.Event) { inputSpikes += len(evs) })
	res := net.Run([]float64{1}, 50)
	if layerSpikes == 0 || inputSpikes == 0 {
		t.Fatalf("probes saw %d/%d events", inputSpikes, layerSpikes)
	}
	if res.HiddenSpikes != layerSpikes {
		t.Fatalf("probe count %d != result count %d", layerSpikes, res.HiddenSpikes)
	}
}

func TestNetworkNumNeurons(t *testing.T) {
	enc, _ := coding.NewInputEncoder(coding.DefaultConfig(coding.Rate), 4, 0)
	net := &Network{
		Encoder: enc,
		Layers: []Layer{
			NewSpikingDense(make([]float64, 4*3), make([]float64, 3), 4, 3, coding.DefaultConfig(coding.Rate)),
		},
		Output: NewOutputLayer(make([]float64, 3*2), make([]float64, 2), 3, 2),
	}
	if got := net.NumNeurons(); got != 4+3+2 {
		t.Fatalf("NumNeurons = %d, want 9", got)
	}
}

func TestNetworkResetClearsState(t *testing.T) {
	enc, _ := coding.NewInputEncoder(coding.DefaultConfig(coding.Real), 1, 0)
	net := &Network{
		Encoder: enc,
		Layers: []Layer{
			NewSpikingDense([]float64{1}, []float64{0}, 1, 1, coding.DefaultConfig(coding.Rate)),
		},
		Output: NewOutputLayer([]float64{1}, []float64{0}, 1, 1),
	}
	r1 := net.Run([]float64{0.7}, 40)
	r2 := net.Run([]float64{0.7}, 40)
	if r1.HiddenSpikes != r2.HiddenSpikes {
		t.Fatalf("identical runs diverged: %d vs %d spikes", r1.HiddenSpikes, r2.HiddenSpikes)
	}
	if math.Abs(float64(r1.TotalSpikes()-r2.TotalSpikes())) > 0 {
		t.Fatal("TotalSpikes mismatch across identical runs")
	}
}

func TestAttachProbeOutOfRangePanics(t *testing.T) {
	enc, _ := coding.NewInputEncoder(coding.DefaultConfig(coding.Real), 1, 0)
	net := &Network{Encoder: enc, Output: NewOutputLayer([]float64{1}, []float64{0}, 1, 1)}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.AttachProbe(3, func(int, []coding.Event) {})
}

// Leak = 0 must reproduce pure IF behaviour exactly.
func TestLeakZeroMatchesIF(t *testing.T) {
	base := coding.DefaultConfig(coding.Rate)
	leaky := base
	leaky.Leak = 0
	e1, r1 := drive(base, 0.4, 100)
	e2, r2 := drive(leaky, 0.4, 100)
	if len(e1) != len(e2) || r1 != r2 {
		t.Fatal("Leak=0 diverges from IF")
	}
}

// A leaky neuron under weak drive loses charge: it fires strictly less
// than the IF neuron and conservation no longer holds.
func TestLeakReducesOutput(t *testing.T) {
	base := coding.DefaultConfig(coding.Rate)
	leaky := base
	leaky.Leak = 0.05
	eIF, _ := drive(base, 0.3, 300)
	eLK, _ := drive(leaky, 0.3, 300)
	if payloadSum(eLK) >= payloadSum(eIF) {
		t.Fatalf("leaky output %v must be below IF output %v",
			payloadSum(eLK), payloadSum(eIF))
	}
}

// Strong leak silences sub-threshold drive entirely: the membrane
// equilibrium (1-ℓ)·z/ℓ stays below threshold.
func TestLeakSilencesWeakDrive(t *testing.T) {
	cfg := coding.DefaultConfig(coding.Rate) // v_th = 1
	cfg.Leak = 0.5                           // equilibrium = z
	events, _ := drive(cfg, 0.3, 200)
	if len(events) != 0 {
		t.Fatalf("weak drive fired %d spikes under strong leak", len(events))
	}
}
