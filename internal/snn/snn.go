// Package snn is the event-driven spiking-network simulator. It executes
// converted networks of integrate-and-fire neurons with reset-by-
// subtraction (Eq. 4), payload spikes (Eq. 5), and per-scheme threshold
// dynamics (Eq. 6-9 via internal/coding).
//
// Propagation is event-driven: each layer consumes a sparse list of
// (index, payload) events, scatters weighted payloads into its membrane
// accumulators, and emits its own events. Within one time step events
// flow through the whole stack (no axonal delay), which is the standard
// synchronous model in the DNN→SNN conversion literature and makes the
// phase oscillation Π(t) globally consistent across layers.
package snn

import (
	"fmt"

	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
)

// population holds the integrate-and-fire state for one layer's neurons:
// membrane potentials, burst state g, and the previous-step firing flags
// that drive the burst function (Eq. 8).
type population struct {
	cfg       coding.Config
	vmem      []float64
	g         []float64
	firedPrev []bool
	buf       []coding.Event
}

func newPopulation(n int, cfg coding.Config) *population {
	p := &population{
		cfg:       cfg,
		vmem:      make([]float64, n),
		g:         make([]float64, n),
		firedPrev: make([]bool, n),
	}
	p.resetState()
	return p
}

func (p *population) resetState() {
	for i := range p.vmem {
		p.vmem[i] = 0
		p.g[i] = 1
		p.firedPrev[i] = false
	}
}

// fire runs the threshold test for every neuron at time t after inputs
// have been integrated into vmem, applying reset-by-subtraction and the
// burst update, and returns the emitted events. A neuron fires at most
// once per time step.
func (p *population) fire(t int) []coding.Event {
	p.buf = p.buf[:0]
	useBurst := p.cfg.UsesBurstState()
	if p.cfg.Leak > 0 {
		// Leaky-IF extension: V(t) = (1-ℓ)(V(t-1)+z(t)); inputs were
		// already integrated into vmem by the layer.
		keep := 1 - p.cfg.Leak
		for i := range p.vmem {
			p.vmem[i] *= keep
		}
	}
	for i := range p.vmem {
		g := p.g[i]
		if useBurst {
			// Eq. 8: g(t) depends on whether the neuron fired at t-1.
			g = coding.NextG(g, p.firedPrev[i], p.cfg.Beta)
			p.g[i] = g
		}
		th := p.cfg.Threshold(t, g)
		if p.vmem[i] >= th {
			// Eq. 4 (reset-by-subtraction): the membrane keeps the
			// residual, and the spike carries exactly the subtracted
			// amount (Eq. 5 payload).
			p.vmem[i] -= th
			p.firedPrev[i] = true
			p.buf = append(p.buf, coding.Event{Index: i, Payload: th})
		} else {
			p.firedPrev[i] = false
		}
	}
	return p.buf
}

// Layer is one spiking stage.
type Layer interface {
	// Name identifies the layer kind.
	Name() string
	// NumNeurons returns the population size (0 for stateless gates).
	NumNeurons() int
	// Step consumes the presynaptic events of time t and returns the
	// layer's own events. biasScale modulates the layer's constant bias
	// current to match the input encoder's information rate. The
	// returned slice may be reused.
	Step(t int, biasScale float64, in []coding.Event) []coding.Event
	// Reset clears all neuron state for a new input presentation.
	Reset()
}

// Probe observes the events a layer emitted at time t.
type Probe func(t int, events []coding.Event)

// Network is a stack of spiking layers fed by an input encoder and read
// out by a non-spiking output accumulator.
type Network struct {
	Encoder coding.InputEncoder
	Layers  []Layer
	Output  *OutputLayer

	probes map[int]Probe // layer index -> probe; -1 probes the encoder
}

// AttachProbe registers a spike observer for a layer index. Index -1
// observes the input encoder's events; len(Layers) is invalid because the
// output layer never spikes.
func (n *Network) AttachProbe(layer int, p Probe) {
	if layer < -1 || layer >= len(n.Layers) {
		panic(fmt.Sprintf("snn: probe index %d out of range", layer))
	}
	if n.probes == nil {
		n.probes = map[int]Probe{}
	}
	n.probes[layer] = p
}

// NumNeurons returns the total neuron count: input, hidden, and output.
// This is the denominator of the paper's spiking-density metric.
func (n *Network) NumNeurons() int {
	total := n.Encoder.Size()
	for _, l := range n.Layers {
		total += l.NumNeurons()
	}
	total += n.Output.NumNeurons()
	return total
}

// Reset prepares the network for a new input image.
func (n *Network) Reset(image []float64) {
	n.Encoder.Reset(image)
	for _, l := range n.Layers {
		l.Reset()
	}
	n.Output.Reset()
}

// StepStats reports what happened during a single time step.
type StepStats struct {
	InputEvents  int
	HiddenSpikes int
	// Predicted is the argmax of the output accumulator after the step.
	Predicted int
}

// Step advances the network by one time step and returns its statistics.
func (n *Network) Step(t int) StepStats {
	events := n.Encoder.Step(t)
	if p := n.probes[-1]; p != nil {
		p(t, events)
	}
	biasScale := n.Encoder.BiasScale(t)
	st := StepStats{InputEvents: len(events)}
	for li, l := range n.Layers {
		events = l.Step(t, biasScale, events)
		if p := n.probes[li]; p != nil {
			p(t, events)
		}
		st.HiddenSpikes += len(events)
	}
	n.Output.Step(t, biasScale, events)
	st.Predicted = mathx.ArgMax(n.Output.Potentials())
	return st
}

// Result summarizes a full presentation of one input.
type Result struct {
	// PredictedAt[t] is the output argmax after step t.
	PredictedAt []int
	// InputSpikes counts encoder events over the run (0 when the encoder
	// is analog, i.e. real coding).
	InputSpikes int
	// HiddenSpikes counts all spikes emitted by hidden layers.
	HiddenSpikes int
	// Steps is the number of simulated time steps.
	Steps int
}

// TotalSpikes returns the spike count the paper reports: input spikes (if
// the encoder emits physical spikes) plus hidden-layer spikes.
func (r Result) TotalSpikes() int { return r.InputSpikes + r.HiddenSpikes }

// FinalPrediction returns the prediction after the last step, or -1 for
// an empty run.
func (r Result) FinalPrediction() int {
	if len(r.PredictedAt) == 0 {
		return -1
	}
	return r.PredictedAt[len(r.PredictedAt)-1]
}

// Run presents image for steps time steps and collects the result.
func (n *Network) Run(image []float64, steps int) Result {
	n.Reset(image)
	res := Result{Steps: steps, PredictedAt: make([]int, steps)}
	countInput := n.Encoder.CountsAsSpikes()
	for t := 0; t < steps; t++ {
		st := n.Step(t)
		if countInput {
			res.InputSpikes += st.InputEvents
		}
		res.HiddenSpikes += st.HiddenSpikes
		res.PredictedAt[t] = st.Predicted
	}
	return res
}
