// Package snn is the event-driven spiking-network simulator. It executes
// converted networks of integrate-and-fire neurons with reset-by-
// subtraction (Eq. 4), payload spikes (Eq. 5), and per-scheme threshold
// dynamics (Eq. 6-9 via internal/coding).
//
// Propagation is event-driven: each layer consumes a sparse list of
// (index, payload) events, scatters weighted payloads into its membrane
// accumulators, and emits its own events. Within one time step events
// flow through the whole stack (no axonal delay), which is the standard
// synchronous model in the DNN→SNN conversion literature and makes the
// phase oscillation Π(t) globally consistent across layers.
package snn

import (
	"fmt"

	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
)

// population holds the integrate-and-fire state for one layer's neurons:
// membrane potentials, burst state g, and the previous-step firing flags
// that drive the burst function (Eq. 8).
type population struct {
	cfg       coding.Config
	vmem      []float64
	g         []float64
	firedPrev []bool
	buf       []coding.Event
}

func newPopulation(n int, cfg coding.Config) *population {
	p := &population{
		cfg:       cfg,
		vmem:      make([]float64, n),
		g:         make([]float64, n),
		firedPrev: make([]bool, n),
		// A neuron fires at most once per step, so n is the event-buffer
		// high-watermark; pre-sizing keeps the steady-state hot path
		// allocation-free (see internal/README.md).
		buf: make([]coding.Event, 0, n),
	}
	p.resetState()
	return p
}

func (p *population) resetState() {
	for i := range p.vmem {
		p.vmem[i] = 0
		p.g[i] = 1
		p.firedPrev[i] = false
	}
}

// fire runs the threshold test for every neuron at time t after the
// layer's synaptic events have been scattered into vmem, and returns the
// emitted events. A neuron fires at most once per time step.
//
// This is the fused hot path: the layer's constant bias current
// (bias[i]·biasScale; bias may be nil for bias-free layers), the leaky-IF
// decay, the burst update, and the reset-by-subtraction threshold test all
// happen in one pass over the population instead of one full sweep each.
// For non-burst schemes the threshold does not depend on per-neuron state,
// so it is computed once per step — this hoists the math.Pow inside the
// phase oscillation Π(t) out of the per-neuron loop.
func (p *population) fire(t int, bias []float64, biasScale float64) []coding.Event {
	p.buf = p.buf[:0]
	useBurst := p.cfg.UsesBurstState()
	leak := p.cfg.Leak
	vmem := p.vmem
	if !useBurst && leak == 0 {
		// Pure-IF, scheme-constant threshold (rate/phase/TTFS): no
		// per-neuron state beyond the membrane, so the loop is branch-
		// minimal. firedPrev is only read by the burst update and is left
		// untouched here.
		th := p.cfg.Threshold(t, 1)
		if bias == nil {
			for i, v := range vmem {
				if v >= th {
					vmem[i] = v - th
					p.buf = append(p.buf, coding.Event{Index: i, Payload: th})
				}
			}
			return p.buf
		}
		bias = bias[:len(vmem)]
		for i, v := range vmem {
			v += bias[i] * biasScale
			if v >= th {
				// Eq. 4 (reset-by-subtraction): the membrane keeps the
				// residual, and the spike carries exactly the subtracted
				// amount (Eq. 5 payload).
				v -= th
				p.buf = append(p.buf, coding.Event{Index: i, Payload: th})
			}
			vmem[i] = v
		}
		return p.buf
	}
	if useBurst && leak == 0 {
		// Pure-IF burst (the paper's configuration): hoist the burst
		// constants and state slices; Eq. 8/9 inlined.
		beta, vth := p.cfg.Beta, p.cfg.VTh
		gs := p.g[:len(vmem)]
		fp := p.firedPrev[:len(vmem)]
		if bias != nil {
			bias = bias[:len(vmem)]
		}
		for i, v := range vmem {
			if bias != nil {
				v += bias[i] * biasScale
			}
			g := 1.0
			if fp[i] {
				g = beta * gs[i]
			}
			gs[i] = g
			th := g * vth
			if v >= th {
				v -= th
				fp[i] = true
				p.buf = append(p.buf, coding.Event{Index: i, Payload: th})
			} else {
				fp[i] = false
			}
			vmem[i] = v
		}
		return p.buf
	}
	keep := 1 - leak
	var thConst float64
	if !useBurst {
		thConst = p.cfg.Threshold(t, 1)
	}
	for i := range vmem {
		v := vmem[i]
		if bias != nil {
			v += bias[i] * biasScale
		}
		if leak > 0 {
			// Leaky-IF extension: V(t) = (1-ℓ)(V(t-1)+z(t)).
			v *= keep
		}
		th := thConst
		if useBurst {
			// Eq. 8: g(t) depends on whether the neuron fired at t-1;
			// Eq. 9: V_th(t) = g(t)·v_th.
			g := coding.NextG(p.g[i], p.firedPrev[i], p.cfg.Beta)
			p.g[i] = g
			th = g * p.cfg.VTh
		}
		if v >= th {
			v -= th
			p.firedPrev[i] = true
			p.buf = append(p.buf, coding.Event{Index: i, Payload: th})
		} else {
			p.firedPrev[i] = false
		}
		vmem[i] = v
	}
	return p.buf
}

// fireSlow is the pre-optimization reference implementation of fire: the
// layer has already integrated bias and inputs into vmem, and leak,
// burst update, and threshold test run as separate full-population passes
// with a coding.Threshold call per neuron. Kept verbatim so the
// equivalence suite can pin the fused path against it.
func (p *population) fireSlow(t int) []coding.Event {
	p.buf = p.buf[:0]
	useBurst := p.cfg.UsesBurstState()
	if p.cfg.Leak > 0 {
		keep := 1 - p.cfg.Leak
		for i := range p.vmem {
			p.vmem[i] *= keep
		}
	}
	for i := range p.vmem {
		g := p.g[i]
		if useBurst {
			g = coding.NextG(g, p.firedPrev[i], p.cfg.Beta)
			p.g[i] = g
		}
		th := p.cfg.Threshold(t, g)
		if p.vmem[i] >= th {
			p.vmem[i] -= th
			p.firedPrev[i] = true
			p.buf = append(p.buf, coding.Event{Index: i, Payload: th})
		} else {
			p.firedPrev[i] = false
		}
	}
	return p.buf
}

// Layer is one spiking stage.
type Layer interface {
	// Name identifies the layer kind.
	Name() string
	// NumNeurons returns the population size (0 for stateless gates).
	NumNeurons() int
	// Step consumes the presynaptic events of time t and returns the
	// layer's own events. biasScale modulates the layer's constant bias
	// current to match the input encoder's information rate. The
	// returned slice may be reused.
	Step(t int, biasScale float64, in []coding.Event) []coding.Event
	// Reset clears all neuron state for a new input presentation.
	Reset()
}

// RefLayer is a Layer that also retains the pre-optimization reference
// implementation of Step. StepSlow must be semantically equivalent to
// Step — same spikes, same payloads, same early-exit behaviour — while
// keeping the original algorithmic structure (per-event div/mod address
// arithmetic, separate bias/integration/fire passes). Every layer the
// converter builds implements it; the equivalence suite runs whole
// networks through both paths and asserts identical outcomes.
type RefLayer interface {
	Layer
	// StepSlow is the reference implementation of Step.
	StepSlow(t int, biasScale float64, in []coding.Event) []coding.Event
}

// Probe observes the events a layer emitted at time t.
type Probe func(t int, events []coding.Event)

// Network is a stack of spiking layers fed by an input encoder and read
// out by a non-spiking output accumulator.
type Network struct {
	Encoder coding.InputEncoder
	Layers  []Layer
	Output  *OutputLayer

	// Ref switches every layer to its reference (slow) Step
	// implementation — the equivalence-testing and benchmarking baseline.
	// Layers that do not implement RefLayer make Step panic under Ref.
	Ref bool

	probes map[int]Probe // layer index -> probe; -1 probes the encoder
}

// AttachProbe registers a spike observer for a layer index. Index -1
// observes the input encoder's events; len(Layers) is invalid because the
// output layer never spikes.
func (n *Network) AttachProbe(layer int, p Probe) {
	if layer < -1 || layer >= len(n.Layers) {
		panic(fmt.Sprintf("snn: probe index %d out of range", layer))
	}
	if n.probes == nil {
		n.probes = map[int]Probe{}
	}
	n.probes[layer] = p
}

// NumNeurons returns the total neuron count: input, hidden, and output.
// This is the denominator of the paper's spiking-density metric.
func (n *Network) NumNeurons() int {
	total := n.Encoder.Size()
	for _, l := range n.Layers {
		total += l.NumNeurons()
	}
	total += n.Output.NumNeurons()
	return total
}

// Reset prepares the network for a new input image.
func (n *Network) Reset(image []float64) {
	n.Encoder.Reset(image)
	for _, l := range n.Layers {
		l.Reset()
	}
	n.Output.Reset()
}

// StepStats reports what happened during a single time step.
type StepStats struct {
	InputEvents  int
	HiddenSpikes int
	// Predicted is the argmax of the output accumulator after the step.
	Predicted int
}

// Step advances the network by one time step and returns its statistics.
func (n *Network) Step(t int) StepStats {
	events := n.Encoder.Step(t)
	if p := n.probes[-1]; p != nil {
		p(t, events)
	}
	biasScale := n.Encoder.BiasScale(t)
	st := StepStats{InputEvents: len(events)}
	for li, l := range n.Layers {
		if n.Ref {
			r, ok := l.(RefLayer)
			if !ok {
				panic(fmt.Sprintf("snn: layer %d (%s) has no reference path", li, l.Name()))
			}
			events = r.StepSlow(t, biasScale, events)
		} else {
			events = l.Step(t, biasScale, events)
		}
		if p := n.probes[li]; p != nil {
			p(t, events)
		}
		st.HiddenSpikes += len(events)
	}
	if n.Ref {
		n.Output.StepSlow(t, biasScale, events)
	} else {
		n.Output.Step(t, biasScale, events)
	}
	st.Predicted = mathx.ArgMax(n.Output.Potentials())
	return st
}

// Result summarizes a full presentation of one input.
type Result struct {
	// PredictedAt[t] is the output argmax after step t.
	PredictedAt []int
	// InputSpikes counts encoder events over the run (0 when the encoder
	// is analog, i.e. real coding).
	InputSpikes int
	// HiddenSpikes counts all spikes emitted by hidden layers.
	HiddenSpikes int
	// Steps is the number of simulated time steps.
	Steps int
}

// TotalSpikes returns the spike count the paper reports: input spikes (if
// the encoder emits physical spikes) plus hidden-layer spikes.
func (r Result) TotalSpikes() int { return r.InputSpikes + r.HiddenSpikes }

// FinalPrediction returns the prediction after the last step, or -1 for
// an empty run.
func (r Result) FinalPrediction() int {
	if len(r.PredictedAt) == 0 {
		return -1
	}
	return r.PredictedAt[len(r.PredictedAt)-1]
}

// Run presents image for steps time steps and collects the result.
func (n *Network) Run(image []float64, steps int) Result {
	return n.RunInto(image, steps, make([]int, steps))
}

// RunInto is Run with a caller-owned per-step prediction buffer, so tight
// evaluation loops can present many images without a per-image
// allocation. predictedAt must have length steps; the returned Result
// aliases it.
func (n *Network) RunInto(image []float64, steps int, predictedAt []int) Result {
	if len(predictedAt) != steps {
		panic(fmt.Sprintf("snn: prediction buffer holds %d steps, want %d", len(predictedAt), steps))
	}
	n.Reset(image)
	res := Result{Steps: steps, PredictedAt: predictedAt}
	countInput := n.Encoder.CountsAsSpikes()
	for t := 0; t < steps; t++ {
		st := n.Step(t)
		if countInput {
			res.InputSpikes += st.InputEvents
		}
		res.HiddenSpikes += st.HiddenSpikes
		res.PredictedAt[t] = st.Predicted
	}
	return res
}
