package snn

import (
	"math"
	"testing"

	"burstsnn/internal/coding"
)

// buildPair constructs a synchronous network and a delayed twin sharing
// fresh (identical) layer stacks.
func buildPair(t *testing.T, hidden coding.Config, delay, jitter int) (*Network, *DelayedNetwork) {
	t.Helper()
	mk := func() (*Network, []Layer, coding.InputEncoder, *OutputLayer) {
		enc, err := coding.NewInputEncoder(coding.DefaultConfig(coding.Real), 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		w1 := []float64{
			0.5, 0.2, 0.1, 0.0,
			0.0, 0.4, 0.3, 0.2,
			0.2, 0.0, 0.6, 0.1,
		}
		b1 := []float64{0, 0, 0} // zero bias: the delay-shift property is exact only for the signal path
		w2 := []float64{
			0.7, 0.1, 0.2,
			0.1, 0.8, 0.1,
		}
		b2 := []float64{0, 0}
		layers := []Layer{NewSpikingDense(w1, b1, 4, 3, hidden)}
		out := NewOutputLayer(w2, b2, 3, 2)
		return &Network{Encoder: enc, Layers: layers, Output: out}, layers, enc, out
	}
	sync, _, _, _ := mk()
	_, layers2, enc2, out2 := mk()
	delays := []int{delay, delay}
	dn, err := NewDelayedNetwork(enc2, layers2, out2, delays, jitter, 7)
	if err != nil {
		t.Fatal(err)
	}
	return sync, dn
}

// Zero delays must reproduce the synchronous semantics exactly, for every
// hidden coding.
func TestDelayedZeroEqualsSynchronous(t *testing.T) {
	for _, scheme := range []coding.Scheme{coding.Rate, coding.Phase, coding.Burst} {
		sync, dn := buildPair(t, coding.DefaultConfig(scheme), 0, 0)
		img := []float64{0.9, 0.4, 0.7, 0.2}
		const T = 60
		rs := sync.Run(img, T)
		rd := dn.Run(img, T)
		if rs.HiddenSpikes != rd.HiddenSpikes {
			t.Fatalf("%v: spike counts differ: %d vs %d", scheme, rs.HiddenSpikes, rd.HiddenSpikes)
		}
		for i := range rs.PredictedAt {
			if rs.PredictedAt[i] != rd.PredictedAt[i] {
				t.Fatalf("%v: predictions diverge at step %d", scheme, i)
			}
		}
		ps := sync.Output.Potentials()
		pd := dn.Output.Potentials()
		for i := range ps {
			if math.Abs(ps[i]-pd[i]) > 1e-12 {
				t.Fatalf("%v: potentials differ: %v vs %v", scheme, ps, pd)
			}
		}
	}
}

// Under rate coding (time-invariant thresholds) a uniform delay d on both
// edges shifts the readout by exactly 2d steps.
func TestDelayedUniformDelayShiftsReadout(t *testing.T) {
	const d = 3
	sync, dn := buildPair(t, coding.DefaultConfig(coding.Rate), d, 0)
	img := []float64{0.8, 0.3, 0.6, 0.1}
	const T = 80

	// Collect per-step potentials for both.
	collect := func(step func(int) StepStats, pots func() []float64, reset func()) [][]float64 {
		reset()
		out := make([][]float64, T)
		for t0 := 0; t0 < T; t0++ {
			step(t0)
			out[t0] = append([]float64(nil), pots()...)
		}
		return out
	}
	sp := collect(sync.Step, sync.Output.Potentials, func() { sync.Reset(img) })
	dp := collect(dn.Step, dn.Output.Potentials, func() { dn.Reset(img) })

	shift := dn.TotalBaseDelay()
	if shift != 2*d {
		t.Fatalf("TotalBaseDelay = %d", shift)
	}
	for t0 := shift; t0 < T; t0++ {
		for i := range sp[t0-shift] {
			if math.Abs(dp[t0][i]-sp[t0-shift][i]) > 1e-12 {
				t.Fatalf("delayed potential at %d != sync at %d: %v vs %v",
					t0, t0-shift, dp[t0], sp[t0-shift])
			}
		}
	}
}

// Jittered delivery must preserve total payload (no event lost within the
// horizon) and still classify like the synchronous network at the end.
func TestDelayedJitterPreservesDecision(t *testing.T) {
	sync, dn := buildPair(t, coding.DefaultConfig(coding.Rate), 1, 2)
	img := []float64{0.9, 0.2, 0.5, 0.3}
	const T = 100
	rs := sync.Run(img, T)
	rd := dn.Run(img, T)
	if rs.FinalPrediction() != rd.FinalPrediction() {
		t.Fatalf("jittered network changed the decision: %d vs %d",
			rs.FinalPrediction(), rd.FinalPrediction())
	}
	// Spike counts stay close: only pipeline-tail events differ.
	if math.Abs(float64(rs.HiddenSpikes-rd.HiddenSpikes)) > 0.1*float64(rs.HiddenSpikes)+5 {
		t.Fatalf("spike counts far apart: %d vs %d", rs.HiddenSpikes, rd.HiddenSpikes)
	}
}

func TestDelayedValidation(t *testing.T) {
	enc, _ := coding.NewInputEncoder(coding.DefaultConfig(coding.Real), 1, 0)
	out := NewOutputLayer([]float64{1}, []float64{0}, 1, 1)
	if _, err := NewDelayedNetwork(enc, nil, out, []int{1, 2}, 0, 0); err == nil {
		t.Fatal("wrong delay count accepted")
	}
	if _, err := NewDelayedNetwork(enc, nil, out, []int{-1}, 0, 0); err == nil {
		t.Fatal("negative delay accepted")
	}
	if _, err := NewDelayedNetwork(enc, nil, out, []int{0}, -2, 0); err == nil {
		t.Fatal("negative jitter accepted")
	}
}

func TestFromNetworkWrapper(t *testing.T) {
	syncNet, _ := buildPair(t, coding.DefaultConfig(coding.Burst), 0, 0)
	dn, err := FromNetwork(syncNet, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dn.TotalBaseDelay() != 4 { // 2 edges × delay 2
		t.Fatalf("TotalBaseDelay = %d", dn.TotalBaseDelay())
	}
	res := dn.Run([]float64{0.5, 0.5, 0.5, 0.5}, 40)
	if res.HiddenSpikes == 0 {
		t.Fatal("delayed burst network is silent")
	}
}
