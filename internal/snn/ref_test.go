package snn

import (
	"math"
	"testing"

	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
	"burstsnn/internal/tensor"
)

// equivGeom is the conv geometry used by the equivalence network: every
// layer kind the converter can emit, small enough to run 16 hybrids in
// milliseconds.
var equivGeom = ConvGeom{InC: 2, InH: 8, InW: 8, OutC: 4, K: 3, Stride: 1, Pad: 1}

// buildEquivNetwork assembles conv → maxpool → avgpool → dense → output
// with deterministic pseudo-random weights under the given hybrid.
func buildEquivNetwork(t *testing.T, input, hidden coding.Config, seed uint64) *Network {
	t.Helper()
	r := mathx.NewRNG(seed)
	randn := func(n int, std float64) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Norm(0, std)
		}
		return v
	}
	g := equivGeom
	enc, err := coding.NewInputEncoder(input, g.InC*g.InH*g.InW, seed)
	if err != nil {
		t.Fatalf("encoder: %v", err)
	}
	conv := NewSpikingConv(randn(g.OutC*g.InC*g.K*g.K, 0.35), randn(g.OutC, 0.05), g, hidden)
	maxp := NewSpikingMaxPool(g.OutC, g.OutH(), g.OutW(), 2)
	avgp := NewSpikingAvgPool(g.OutC, g.OutH()/2, g.OutW()/2, 2, hidden)
	denseIn := g.OutC * g.OutH() / 4 * g.OutW() / 4
	dense := NewSpikingDense(randn(denseIn*12, 0.4), randn(12, 0.05), denseIn, 12, hidden)
	out := NewOutputLayer(randn(12*4, 0.5), randn(4, 0.05), 12, 4)
	return &Network{
		Encoder: enc,
		Layers:  []Layer{conv, maxp, avgp, dense},
		Output:  out,
	}
}

func equivImage(seed uint64, n int) []float64 {
	r := mathx.NewRNG(seed)
	img := make([]float64, n)
	for i := range img {
		img[i] = r.Float64()
	}
	return img
}

// TestFastPathMatchesReference is the tentpole safety net: for every
// input-hidden hybrid, the optimized path (scatter tables, fused bias,
// single-pass fire) and the reference path (StepSlow: per-event div/mod,
// z-buffer, separate sweeps) must emit bit-identical spike trains at
// every layer of every step, the same per-step predictions, and the same
// spike counts.
func TestFastPathMatchesReference(t *testing.T) {
	inputs := []coding.Scheme{coding.Real, coding.Rate, coding.Phase, coding.TTFS}
	leaky := func(s coding.Scheme) coding.Config {
		cfg := coding.DefaultConfig(s)
		cfg.Leak = 0.05
		return cfg
	}
	hiddens := []struct {
		name string
		cfg  coding.Config
	}{
		{"rate", coding.DefaultConfig(coding.Rate)},
		{"phase", coding.DefaultConfig(coding.Phase)},
		{"burst", coding.DefaultConfig(coding.Burst)},
		{"ttfs", coding.DefaultConfig(coding.TTFS)},
		// Leaky-IF variants drive the general (non-specialized) fire
		// loop, pinning its bias-then-leak ordering to the reference.
		{"rate-leaky", leaky(coding.Rate)},
		{"burst-leaky", leaky(coding.Burst)},
	}
	const steps = 24
	for _, in := range inputs {
		for hi, hid := range hiddens {
			name := in.String() + "-" + hid.name
			t.Run(name, func(t *testing.T) {
				inCfg, hidCfg := coding.DefaultConfig(in), hid.cfg
				fast := buildEquivNetwork(t, inCfg, hidCfg, 0xABC0+uint64(in)*16+uint64(hi))
				ref, err := fast.Clone()
				if err != nil {
					t.Fatalf("clone: %v", err)
				}
				ref.Ref = true

				// Capture each layer's events per step on both networks.
				nL := len(fast.Layers)
				fastEv := make([][]coding.Event, nL+1)
				refEv := make([][]coding.Event, nL+1)
				record := func(sink [][]coding.Event, li int) Probe {
					return func(_ int, events []coding.Event) {
						sink[li+1] = append(sink[li+1][:0], events...)
					}
				}
				for li := -1; li < nL; li++ {
					fast.AttachProbe(li, record(fastEv, li))
					ref.AttachProbe(li, record(refEv, li))
				}

				// Two presentations back to back, to also prove Reset (and
				// the max-pool spike stamps) carry no state across images.
				for img := 0; img < 2; img++ {
					image := equivImage(0x515EED+uint64(img), fast.Encoder.Size())
					fast.Reset(image)
					ref.Reset(image)
					for s := 0; s < steps; s++ {
						stF := fast.Step(s)
						stR := ref.Step(s)
						if stF != stR {
							t.Fatalf("img %d step %d: stats diverge: fast %+v ref %+v", img, s, stF, stR)
						}
						for li := 0; li <= nL; li++ {
							a, b := fastEv[li], refEv[li]
							if len(a) != len(b) {
								t.Fatalf("img %d step %d layer %d: %d vs %d events", img, s, li-1, len(a), len(b))
							}
							for k := range a {
								if a[k] != b[k] {
									t.Fatalf("img %d step %d layer %d event %d: fast %+v ref %+v",
										img, s, li-1, k, a[k], b[k])
								}
							}
						}
						for o, p := range fast.Output.Potentials() {
							if diff := math.Abs(p - ref.Output.Potentials()[o]); diff > 1e-9 {
								t.Fatalf("img %d step %d: readout %d diverges by %v", img, s, o, diff)
							}
						}
					}
				}
			})
		}
	}
}

// TestRunMatchesReferenceRun pins the aggregate Result (per-step argmax
// trajectory and spike totals) of both paths on a full Run.
func TestRunMatchesReferenceRun(t *testing.T) {
	fast := buildEquivNetwork(t, coding.DefaultConfig(coding.Phase), coding.DefaultConfig(coding.Burst), 99)
	ref, err := fast.Clone()
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	ref.Ref = true
	image := equivImage(31337, fast.Encoder.Size())
	a := fast.Run(image, 32)
	b := ref.Run(image, 32)
	if a.InputSpikes != b.InputSpikes || a.HiddenSpikes != b.HiddenSpikes {
		t.Fatalf("spike counts diverge: fast %d/%d ref %d/%d",
			a.InputSpikes, a.HiddenSpikes, b.InputSpikes, b.HiddenSpikes)
	}
	for s := range a.PredictedAt {
		if a.PredictedAt[s] != b.PredictedAt[s] {
			t.Fatalf("step %d: prediction %d vs %d", s, a.PredictedAt[s], b.PredictedAt[s])
		}
	}
}

// naiveConvTaps recomputes one input pixel's scatter destinations with
// the reference stride/pad arithmetic (the pre-table hot-path code).
func naiveConvTaps(g ConvGeom, index int) []convTap {
	outH, outW := g.OutH(), g.OutW()
	ic := index / (g.InH * g.InW)
	rem := index % (g.InH * g.InW)
	iy, ix := rem/g.InW, rem%g.InW
	var taps []convTap
	for kh := 0; kh < g.K; kh++ {
		oyNum := iy + g.Pad - kh
		if oyNum < 0 || oyNum%g.Stride != 0 {
			continue
		}
		oy := oyNum / g.Stride
		if oy >= outH {
			continue
		}
		for kw := 0; kw < g.K; kw++ {
			oxNum := ix + g.Pad - kw
			if oxNum < 0 || oxNum%g.Stride != 0 {
				continue
			}
			ox := oxNum / g.Stride
			if ox >= outW {
				continue
			}
			taps = append(taps, convTap{
				WOff: int32(((ic*g.K+kh)*g.K + kw) * g.OutC),
				Base: int32(oy*outW + ox),
			})
		}
	}
	return taps
}

// TestConvScatterTableFuzz fuzzes ConvGeom and checks the precomputed
// scatter table against (a) the naive per-event arithmetic and (b) the
// dense tensor.Conv2D output when every input spikes exactly once with
// its pixel value as payload.
func TestConvScatterTableFuzz(t *testing.T) {
	r := mathx.NewRNG(0xC0FFEE)
	trials := 0
	for trials < 60 {
		g := ConvGeom{
			InC:    1 + r.Intn(3),
			InH:    3 + r.Intn(8),
			InW:    3 + r.Intn(8),
			OutC:   1 + r.Intn(4),
			K:      1 + r.Intn(4),
			Stride: 1 + r.Intn(3),
			Pad:    r.Intn(3),
		}
		if g.InH+2*g.Pad < g.K || g.InW+2*g.Pad < g.K {
			continue
		}
		trials++
		nIn := g.InC * g.InH * g.InW
		w := make([]float64, g.OutC*g.InC*g.K*g.K)
		for i := range w {
			w[i] = r.Norm(0, 1)
		}
		bias := make([]float64, g.OutC)
		l := NewSpikingConv(w, bias, g, coding.Config{Scheme: coding.Rate, VTh: 1e18})

		// (a) table vs naive arithmetic, every input pixel.
		for idx := 0; idx < nIn; idx++ {
			want := naiveConvTaps(g, idx)
			got := l.taps[l.tapStart[idx]:l.tapStart[idx+1]]
			if len(got) != len(want) {
				t.Fatalf("geom %+v input %d: %d taps, want %d", g, idx, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("geom %+v input %d tap %d: got %+v want %+v", g, idx, k, got[k], want[k])
				}
			}
		}

		// (b) all inputs spike once → membranes equal the dense convolution.
		img := make([]float64, nIn)
		events := make([]coding.Event, nIn)
		for i := range img {
			img[i] = r.Float64()
			events[i] = coding.Event{Index: i, Payload: img[i]}
		}
		l.Step(0, 0, events)
		in := tensor.New(g.InC, g.InH, g.InW)
		copy(in.Data, img)
		wT := tensor.New(g.OutC, g.InC*g.K*g.K)
		copy(wT.Data, w)
		dense := tensor.Conv2D(in, wT, nil, tensor.ConvSpec{
			InC: g.InC, InH: g.InH, InW: g.InW, OutC: g.OutC,
			KH: g.K, KW: g.K, Stride: g.Stride, Pad: g.Pad,
		})
		for i, want := range dense.Data {
			if math.Abs(l.pop.vmem[i]-want) > 1e-9 {
				t.Fatalf("geom %+v neuron %d: scatter %v, dense %v", g, i, l.pop.vmem[i], want)
			}
		}
	}
}

// TestSpikingMaxPoolTieForwardsSpikingWinner is the regression test for
// the tie-break bug: a spiking input whose cumulative payload ties a
// silent lower-indexed input must still be forwarded (previously the
// window went silent for the step).
func TestSpikingMaxPoolTieForwardsSpikingWinner(t *testing.T) {
	for _, path := range []struct {
		name string
		step func(l *SpikingMaxPool, t int, in []coding.Event) []coding.Event
	}{
		{"fast", func(l *SpikingMaxPool, tt int, in []coding.Event) []coding.Event { return l.Step(tt, 0, in) }},
		{"ref", func(l *SpikingMaxPool, tt int, in []coding.Event) []coding.Event { return l.StepSlow(tt, 0, in) }},
	} {
		t.Run(path.name, func(t *testing.T) {
			l := NewSpikingMaxPool(1, 2, 2, 2)
			// Step 0: input 0 spikes (cum 1) and passes the gate.
			out := path.step(l, 0, []coding.Event{{Index: 0, Payload: 1}})
			if len(out) != 1 || out[0].Index != 0 || out[0].Payload != 1 {
				t.Fatalf("step 0 output %+v", out)
			}
			// Step 1: input 3 spikes to cum 1, tying silent input 0. The
			// spiking winner must be forwarded, not muted by the tie.
			out = path.step(l, 1, []coding.Event{{Index: 3, Payload: 1}})
			if len(out) != 1 || out[0].Index != 0 || out[0].Payload != 1 {
				t.Fatalf("tie with silent max muted the spiking input: %+v", out)
			}
			// Two spiking inputs tied at the max forward exactly one event
			// (deterministically the lowest-indexed of the two).
			l2 := NewSpikingMaxPool(1, 2, 2, 2)
			out = path.step(l2, 0, []coding.Event{
				{Index: 1, Payload: 0.5}, {Index: 2, Payload: 0.5},
			})
			if len(out) != 1 || out[0].Index != 0 || out[0].Payload != 0.5 {
				t.Fatalf("spiking tie must forward exactly the lowest spiking winner, got %+v", out)
			}
			// A trailing input still never passes while it is below the max.
			out = path.step(l2, 1, []coding.Event{
				{Index: 1, Payload: 1}, {Index: 2, Payload: 0.1},
			})
			if len(out) != 1 || out[0].Payload != 1 {
				t.Fatalf("trailing input must stay gated: %+v", out)
			}
		})
	}
}

// TestMaxPoolFastMatchesSlowFuzz cross-checks the precomputed window
// tables against the arithmetic reference on random event streams.
func TestMaxPoolFastMatchesSlowFuzz(t *testing.T) {
	r := mathx.NewRNG(0xBEEF)
	fast := NewSpikingMaxPool(2, 4, 4, 2)
	slow := NewSpikingMaxPool(2, 4, 4, 2)
	n := 2 * 4 * 4
	for step := 0; step < 200; step++ {
		var in []coding.Event
		for i := 0; i < n; i++ {
			if r.Bernoulli(0.3) {
				// Coarse payloads make cumulative ties common.
				in = append(in, coding.Event{Index: i, Payload: float64(1+r.Intn(3)) * 0.25})
			}
		}
		a := append([]coding.Event(nil), fast.Step(step, 0, in)...)
		b := slow.StepSlow(step, 0, in)
		if len(a) != len(b) {
			t.Fatalf("step %d: %d vs %d events", step, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("step %d event %d: fast %+v slow %+v", step, k, a[k], b[k])
			}
		}
		if step%37 == 0 {
			fast.Reset()
			slow.Reset()
		}
	}
}
