package snn

import (
	"fmt"

	"burstsnn/internal/coding"
	"burstsnn/internal/kernels"
)

// Batched lockstep simulation: a BatchNetwork steps up to B images
// through one set of weights and scatter tables at once. All neuron state
// is B-striped — lane-major within a neuron, so neuron i's lane s lives
// at state[i*B+s] — and the event stream between layers is column-form
// (coding.BatchEvents): the spikes of one step grouped by neuron index,
// with the lanes in which that neuron spiked attached to the column.
//
// The payoff is amortization, not parallelism: a layer consuming a column
// resolves the scatter-table taps and loads each weight row once, then
// applies it to every lane in the column; when the column covers every
// active lane with a uniform payload (the common case under phase/TTFS
// input, whose per-step payload Π(t) is lane-invariant), the innermost
// loop degenerates to a contiguous add with the weight·payload product
// hoisted.
//
// Correctness is defined per lane: every lane must produce bit-identical
// spike trains, predictions, and early-exit steps to a sequential
// Network presented with the same image. That holds because (a) all
// per-lane state is disjoint, (b) columns are ordered by neuron index —
// the same order every sequential layer emits in (SpikingMaxPool emits in
// ascending window order for exactly this reason) — so each lane's
// contributions accumulate in the sequential order, and (c) each striped
// arithmetic path mirrors its sequential counterpart operation for
// operation.
//
// Lanes are retired by physical compaction: when an image finishes
// (early exit), the last active slot's state is copied over the finished
// slot and the active count shrinks, so the scatter and fire loops always
// run over the dense slot prefix [0, nActive) and a batch never pays
// full-batch cost for its slowest image.

// Lockstep is the plane-independent face of a lockstep batch simulator:
// what the serving engine needs to drive a batch — load images, step,
// read per-slot predictions and potentials, retire lanes — without
// caring whether the state underneath is float64 (BatchNetwork,
// bit-identical to the sequential path) or float32 (BatchNetwork32,
// kernel-backed, tolerance contract). NewLockstep picks the plane.
type Lockstep interface {
	// B returns the lane capacity.
	B() int
	// NumActive returns the number of live lanes.
	NumActive() int
	// LaneID returns the caller lane id occupying slot s.
	LaneID(s int) int
	// Reset loads a new batch of images (len in [1, B]).
	Reset(images [][]float64)
	// Retire removes slot s by physical compaction.
	Retire(s int)
	// Step advances every active lane by one time step.
	Step(t int) BatchStepStats
	// CountsInputSpikes mirrors coding.InputEncoder.CountsAsSpikes.
	CountsInputSpikes() bool
	// Classes returns the readout width.
	Classes() int
	// Predicted returns slot s's current readout argmax.
	Predicted(slot int) int
	// PredictedAll fills dst (len ≥ NumActive()) with every active
	// slot's readout argmax in one lane-major sweep and returns the
	// filled prefix; dst[s] == Predicted(s) for every slot. The batched
	// form is what the early-exit engine polls every step: sweeping
	// class rows beats NumActive() strided per-slot walks once the
	// scatter loops vectorize.
	PredictedAll(dst []int) []int
	// PotentialsInto copies slot s's class scores into dst (len ≥
	// Classes()) and returns the filled prefix.
	PotentialsInto(slot int, dst []float64) []float64
	// Kernel names the simulator's compute plane for metrics and
	// artifacts: kernels.KindF64 or the float32 kernels.Kind().
	Kernel() string
}

// NewLockstep builds the B-lane lockstep simulator for the requested
// compute plane: the float32 kernel plane when f32 is true (the serving
// default), the bit-exact float64 plane otherwise.
func NewLockstep(net *Network, b int, f32 bool) (Lockstep, error) {
	if f32 {
		return NewBatchNetwork32(net, b)
	}
	return NewBatchNetwork(net, b)
}

// BatchLayer is one spiking stage of a batched network. Slots
// [0, lanes) are active; the returned stream is owned by the layer and
// reused across calls.
type BatchLayer interface {
	// Name identifies the layer kind.
	Name() string
	// NumNeurons returns the per-lane population size (0 for stateless
	// gates), matching the sequential layer.
	NumNeurons() int
	// Step consumes the batch's presynaptic columns of time t and returns
	// the layer's own columns.
	Step(t int, biasScale float64, lanes int, in *coding.BatchEvents) *coding.BatchEvents
	// Reset clears the neuron state of every lane.
	Reset()
	// Retire copies slot src's state over slot dst (lane compaction).
	Retire(dst, src int)
}

// BatchableLayer is a Layer that can stamp out a B-lane batched variant
// sharing its weights and precomputed tables. Every layer the converter
// builds implements it.
type BatchableLayer interface {
	Layer
	// NewBatch returns a batched variant with b lanes and fresh state.
	NewBatch(b int) BatchLayer
}

// batchPopulation is the B-striped integrate-and-fire state of one
// batched layer: the lane-major counterpart of population, with the same
// fused bias→leak→burst→threshold pass per (neuron, lane).
//
// Neuron i's lane stripe normally lives at cell i (offset i*b). A layer
// may instead install a storage permutation (perm) mapping neuron order
// to cell order — BatchConv stores its population base-major so that one
// scatter tap's destinations are a single contiguous OutC×B block — and
// fire then walks cells through the permutation so the emitted columns
// stay in ascending neuron order regardless of layout.
type batchPopulation struct {
	cfg       coding.Config
	b         int
	vmem      []float64
	g         []float64
	firedPrev []bool

	// Permuted layout (installed by setPerm; conv only). The firing pass
	// then runs in two stages: a storage-order sweep over the state
	// arrays (contiguous, prefetch-friendly) that records each cell's
	// fired lanes in mask (and, for burst, the per-lane payloads in pay),
	// and a neuron-order emission pass that only gathers spiking cells.
	perm     []int32   // neuron -> storage cell; nil = identity
	biasPerm []float64 // bias in storage order (nil when perm is nil or bias-free)
	mask     []uint64  // per cell: fired-lane bits; zero outside fire
	pay      []float64 // per (cell, lane): staged payloads (burst schemes)
}

func newBatchPopulation(n, b int, cfg coding.Config) *batchPopulation {
	p := &batchPopulation{
		cfg:       cfg,
		b:         b,
		vmem:      make([]float64, n*b),
		g:         make([]float64, n*b),
		firedPrev: make([]bool, n*b),
	}
	p.resetState()
	return p
}

// setPerm installs a storage permutation (neuron i lives at cell perm[i])
// and the layer bias re-indexed to storage order. Lane masks require
// b <= 64 (NewBatchNetwork enforces this).
func (p *batchPopulation) setPerm(perm []int32, bias []float64) {
	n := len(p.vmem) / p.b
	p.perm = perm
	p.mask = make([]uint64, n)
	if p.cfg.UsesBurstState() {
		p.pay = make([]float64, n*p.b)
	}
	if bias != nil {
		p.biasPerm = make([]float64, n)
		for i, cell := range perm {
			p.biasPerm[cell] = bias[i]
		}
	}
}

func (p *batchPopulation) resetState() {
	for i := range p.vmem {
		p.vmem[i] = 0
		p.g[i] = 1
		p.firedPrev[i] = false
	}
}

func (p *batchPopulation) retire(dst, src int) {
	for base := 0; base < len(p.vmem); base += p.b {
		p.vmem[base+dst] = p.vmem[base+src]
		p.g[base+dst] = p.g[base+src]
		p.firedPrev[base+dst] = p.firedPrev[base+src]
	}
}

// fire runs the threshold test for every (neuron, active lane) pair at
// time t and appends the emitted columns to out. Each arithmetic path
// mirrors population.fire exactly — same operations in the same order per
// lane — so a lane's membrane trajectory is bit-identical to the
// sequential simulator's.
func (p *batchPopulation) fire(t, lanes int, bias []float64, biasScale float64, out *coding.BatchEvents) {
	out.Reset()
	if p.perm == nil {
		p.fireDirect(t, lanes, bias, biasScale, out)
		return
	}
	p.fireMasked(t, lanes, biasScale, out)
}

// fireDirect is the identity-layout firing pass: neuron i's lanes are the
// contiguous stripe at i*b, swept once in neuron order.
func (p *batchPopulation) fireDirect(t, lanes int, bias []float64, biasScale float64, out *coding.BatchEvents) {
	n := len(p.vmem) / p.b
	useBurst := p.cfg.UsesBurstState()
	leak := p.cfg.Leak
	b := p.b
	if !useBurst && leak == 0 {
		// Pure-IF, scheme-constant threshold (rate/phase/TTFS).
		th := p.cfg.Threshold(t, 1)
		for i := 0; i < n; i++ {
			vrow := p.vmem[i*b : i*b+lanes]
			if bias == nil {
				for s, v := range vrow {
					if v >= th {
						vrow[s] = v - th
						out.Add(int32(s), th)
					}
				}
			} else {
				bv := bias[i] * biasScale
				for s, v := range vrow {
					v += bv
					if v >= th {
						v -= th
						out.Add(int32(s), th)
					}
					vrow[s] = v
				}
			}
			out.Commit(int32(i))
		}
		return
	}
	if useBurst && leak == 0 {
		// Pure-IF burst (the paper's configuration), Eq. 8/9 inlined.
		beta, vth := p.cfg.Beta, p.cfg.VTh
		for i := 0; i < n; i++ {
			vrow := p.vmem[i*b : i*b+lanes]
			grow := p.g[i*b : i*b+lanes]
			frow := p.firedPrev[i*b : i*b+lanes]
			var bv float64
			if bias != nil {
				bv = bias[i] * biasScale
			}
			for s, v := range vrow {
				if bias != nil {
					v += bv
				}
				g := 1.0
				if frow[s] {
					g = beta * grow[s]
				}
				grow[s] = g
				th := g * vth
				if v >= th {
					v -= th
					frow[s] = true
					out.Add(int32(s), th)
				} else {
					frow[s] = false
				}
				vrow[s] = v
			}
			out.Commit(int32(i))
		}
		return
	}
	keep := 1 - leak
	var thConst float64
	if !useBurst {
		thConst = p.cfg.Threshold(t, 1)
	}
	for i := 0; i < n; i++ {
		base := i * b
		for s := 0; s < lanes; s++ {
			v := p.vmem[base+s]
			if bias != nil {
				v += bias[i] * biasScale
			}
			if leak > 0 {
				v *= keep
			}
			th := thConst
			if useBurst {
				g := coding.NextG(p.g[base+s], p.firedPrev[base+s], p.cfg.Beta)
				p.g[base+s] = g
				th = g * p.cfg.VTh
			}
			if v >= th {
				v -= th
				p.firedPrev[base+s] = true
				out.Add(int32(s), th)
			} else {
				p.firedPrev[base+s] = false
			}
			p.vmem[base+s] = v
		}
		out.Commit(int32(i))
	}
}

// fireMasked is the permuted-layout firing pass (base-major conv): stage
// one sweeps the state arrays in storage order — contiguous, so the
// threshold pass streams instead of hopping through the permutation —
// recording each cell's fired lanes in mask (and burst payloads in pay);
// stage two walks neurons in emission order and gathers only the spiking
// cells into columns. The per-(neuron, lane) arithmetic and the emitted
// columns are identical to fireDirect's.
func (p *batchPopulation) fireMasked(t, lanes int, biasScale float64, out *coding.BatchEvents) {
	n := len(p.vmem) / p.b
	useBurst := p.cfg.UsesBurstState()
	leak := p.cfg.Leak
	b := p.b
	bias := p.biasPerm
	mask := p.mask
	switch {
	case !useBurst && leak == 0:
		th := p.cfg.Threshold(t, 1)
		for c := 0; c < n; c++ {
			vrow := p.vmem[c*b : c*b+lanes]
			var m uint64
			if bias == nil {
				for s, v := range vrow {
					if v >= th {
						vrow[s] = v - th
						m |= 1 << uint(s)
					}
				}
			} else {
				bv := bias[c] * biasScale
				for s, v := range vrow {
					v += bv
					if v >= th {
						v -= th
						m |= 1 << uint(s)
					}
					vrow[s] = v
				}
			}
			if m != 0 {
				mask[c] = m
			}
		}
		// Constant threshold: every payload is th, no staging needed.
		for i, cell := range p.perm {
			m := mask[cell]
			if m == 0 {
				continue
			}
			mask[cell] = 0
			for s := 0; s < lanes; s++ {
				if m>>uint(s)&1 == 1 {
					out.Add(int32(s), th)
				}
			}
			out.Commit(int32(i))
		}
	case useBurst && leak == 0:
		beta, vth := p.cfg.Beta, p.cfg.VTh
		pay := p.pay
		for c := 0; c < n; c++ {
			vrow := p.vmem[c*b : c*b+lanes]
			grow := p.g[c*b : c*b+lanes]
			frow := p.firedPrev[c*b : c*b+lanes]
			var bv float64
			if bias != nil {
				bv = bias[c] * biasScale
			}
			var m uint64
			for s, v := range vrow {
				if bias != nil {
					v += bv
				}
				g := 1.0
				if frow[s] {
					g = beta * grow[s]
				}
				grow[s] = g
				th := g * vth
				if v >= th {
					v -= th
					frow[s] = true
					m |= 1 << uint(s)
					pay[c*b+s] = th
				} else {
					frow[s] = false
				}
				vrow[s] = v
			}
			if m != 0 {
				mask[c] = m
			}
		}
		p.emitMasked(lanes, out)
	default:
		keep := 1 - leak
		var thConst float64
		if !useBurst {
			thConst = p.cfg.Threshold(t, 1)
		}
		pay := p.pay
		for c := 0; c < n; c++ {
			base := c * b
			var m uint64
			for s := 0; s < lanes; s++ {
				v := p.vmem[base+s]
				if bias != nil {
					v += bias[c] * biasScale
				}
				if leak > 0 {
					v *= keep
				}
				th := thConst
				if useBurst {
					g := coding.NextG(p.g[base+s], p.firedPrev[base+s], p.cfg.Beta)
					p.g[base+s] = g
					th = g * p.cfg.VTh
				}
				if v >= th {
					v -= th
					p.firedPrev[base+s] = true
					m |= 1 << uint(s)
					if pay != nil {
						pay[base+s] = th
					}
				} else {
					p.firedPrev[base+s] = false
				}
				p.vmem[base+s] = v
			}
			if m != 0 {
				mask[c] = m
			}
		}
		if pay != nil {
			p.emitMasked(lanes, out)
		} else {
			for i, cell := range p.perm {
				m := mask[cell]
				if m == 0 {
					continue
				}
				mask[cell] = 0
				for s := 0; s < lanes; s++ {
					if m>>uint(s)&1 == 1 {
						out.Add(int32(s), thConst)
					}
				}
				out.Commit(int32(i))
			}
		}
	}
}

// emitMasked drains mask/pay into neuron-ordered columns.
func (p *batchPopulation) emitMasked(lanes int, out *coding.BatchEvents) {
	b := p.b
	mask := p.mask
	pay := p.pay
	for i, cell := range p.perm {
		m := mask[cell]
		if m == 0 {
			continue
		}
		mask[cell] = 0
		base := int(cell) * b
		for s := 0; s < lanes; s++ {
			if m>>uint(s)&1 == 1 {
				out.Add(int32(s), pay[base+s])
			}
		}
		out.Commit(int32(i))
	}
}

// uniformPayload reports whether every payload in a column is the same
// value — true for all non-burst columns (their per-step threshold is
// lane-invariant), which unlocks the hoisted-product scatter path.
func uniformPayload(p []float64) bool {
	p0 := p[0]
	for _, v := range p[1:] {
		if v != p0 {
			return false
		}
	}
	return true
}

// scatterRowColumn applies one weight row to one event column of a
// lane-striped accumulator laid out dst[o*b+lane] (the dense and readout
// layers' layout). Rows are long, so every specialization keeps the
// weights outermost: each row streams through the cache exactly once per
// column, however many lanes consume it. A lane's accumulation order
// (ascending output index) matches the sequential path's, so the scatter
// is bit-identical per lane.
func scatterRowColumn(dst, row []float64, b, lanes int, colLanes []int32, pays []float64) {
	p := pays[0]
	vb := 0
	switch {
	case len(colLanes) == 1:
		vb = int(colLanes[0])
		for _, w := range row {
			dst[vb] += w * p
			vb += b
		}
	case len(colLanes) == lanes && uniformPayload(pays):
		// Full uniform column: one weight·payload product serves every
		// lane, and the lane stripe is contiguous.
		for _, w := range row {
			wp := w * p
			stripe := dst[vb : vb+lanes]
			for k := range stripe {
				stripe[k] += wp
			}
			vb += b
		}
	case uniformPayload(pays):
		for _, w := range row {
			wp := w * p
			for _, lane := range colLanes {
				dst[vb+int(lane)] += wp
			}
			vb += b
		}
	default:
		for _, w := range row {
			for k, lane := range colLanes {
				dst[vb+int(lane)] += w * pays[k]
			}
			vb += b
		}
	}
}

// BatchDense is the B-lane variant of SpikingDense, sharing its weights.
type BatchDense struct {
	src *SpikingDense
	pop *batchPopulation
	out coding.BatchEvents
}

// NewBatch implements BatchableLayer.
func (l *SpikingDense) NewBatch(b int) BatchLayer {
	d := &BatchDense{src: l, pop: newBatchPopulation(l.Out, b, l.pop.cfg)}
	d.out.Grow(l.Out, l.Out*b)
	return d
}

// Name implements BatchLayer.
func (l *BatchDense) Name() string { return "sdense" }

// NumNeurons implements BatchLayer.
func (l *BatchDense) NumNeurons() int { return l.src.Out }

// Reset implements BatchLayer.
func (l *BatchDense) Reset() { l.pop.resetState() }

// Retire implements BatchLayer.
func (l *BatchDense) Retire(dst, src int) { l.pop.retire(dst, src) }

// Step implements BatchLayer: one weight-row load per column serves every
// lane the input spiked in (see scatterRowColumn).
func (l *BatchDense) Step(t int, biasScale float64, lanes int, in *coding.BatchEvents) *coding.BatchEvents {
	vmem := l.pop.vmem
	b := l.pop.b
	outN := l.src.Out
	for c := range in.Index {
		s, e := in.Start[c], in.Start[c+1]
		row := l.src.WT[int(in.Index[c])*outN : int(in.Index[c]+1)*outN]
		scatterRowColumn(vmem, row, b, lanes, in.Lane[s:e], in.Payload[s:e])
	}
	l.pop.fire(t, lanes, l.src.Bias, biasScale, &l.out)
	return &l.out
}

// BatchConv is the B-lane variant of SpikingConv, sharing its re-laid-out
// kernel and the precomputed scatter table.
//
// Unlike the sequential layer (CHW membrane order, so one tap's OutC
// destinations are OutH·OutW apart), the batched population is stored
// base-major: neuron (oc, base) lives at cell base·OutC+oc. One scatter
// tap's destinations are then a single contiguous OutC×B block that zips
// with the contiguous weight row — the layout that makes the batched
// scatter stream instead of stride. The population's perm table maps
// neuron order back onto this layout for the firing pass, so emitted
// columns remain in ascending (CHW) neuron order.
type BatchConv struct {
	src *SpikingConv
	pop *batchPopulation
	out coding.BatchEvents
}

// NewBatch implements BatchableLayer.
func (l *SpikingConv) NewBatch(b int) BatchLayer {
	n := len(l.pop.vmem)
	c := &BatchConv{src: l, pop: newBatchPopulation(n, b, l.pop.cfg)}
	outC, outHW := l.Geom.OutC, l.outHW
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i%outHW*outC + i/outHW)
	}
	c.pop.setPerm(perm, l.bias)
	c.out.Grow(n, n*b)
	return c
}

// Name implements BatchLayer.
func (l *BatchConv) Name() string { return "sconv" }

// NumNeurons implements BatchLayer.
func (l *BatchConv) NumNeurons() int { return len(l.src.pop.vmem) }

// Reset implements BatchLayer.
func (l *BatchConv) Reset() { l.pop.resetState() }

// Retire implements BatchLayer.
func (l *BatchConv) Retire(dst, src int) { l.pop.retire(dst, src) }

// Step implements BatchLayer: per column, the scatter-table walk and
// every kernel-row load happen once, amortized over the column's lanes,
// and each tap updates one contiguous OutC×B membrane block (the
// base-major layout). A lane's own accumulation order (column → tap →
// output channel) matches the sequential path exactly, so the scatter
// stays bit-identical per lane.
func (l *BatchConv) Step(t int, biasScale float64, lanes int, in *coding.BatchEvents) *coding.BatchEvents {
	vmem := l.pop.vmem
	b := l.pop.b
	outC := l.src.Geom.OutC
	outCb := outC * b
	for c := range in.Index {
		idx := int(in.Index[c])
		s, e := in.Start[c], in.Start[c+1]
		colLanes := in.Lane[s:e]
		pays := in.Payload[s:e]
		p := pays[0]
		fullUniform := len(colLanes) == lanes && uniformPayload(pays)
		for _, tp := range l.src.taps[l.src.tapStart[idx]:l.src.tapStart[idx+1]] {
			row := l.src.WScatter[tp.WOff : int(tp.WOff)+outC]
			block := vmem[int(tp.Base)*outCb : int(tp.Base+1)*outCb]
			if fullUniform {
				// Every active lane, one payload: hoist the weight·payload
				// product into a contiguous per-lane add.
				k := 0
				for _, w := range row {
					wp := w * p
					dst := block[k : k+lanes]
					for j := range dst {
						dst[j] += wp
					}
					k += b
				}
			} else {
				// Partial column: per lane, a long weight-major walk with
				// the sequential loop's control cost per madd; the walks
				// revisit the same L1-resident block, so the tap's cache
				// lines are loaded once and reused lane over lane.
				for j, lane := range colLanes {
					pj := pays[j]
					vb := int(lane)
					for _, w := range row {
						block[vb] += w * pj
						vb += b
					}
				}
			}
		}
	}
	l.pop.fire(t, lanes, l.src.bias, biasScale, &l.out)
	return &l.out
}

// BatchAvgPool is the B-lane variant of SpikingAvgPool, sharing its
// input→output index table.
type BatchAvgPool struct {
	src *SpikingAvgPool
	pop *batchPopulation
	out coding.BatchEvents
}

// NewBatch implements BatchableLayer.
func (l *SpikingAvgPool) NewBatch(b int) BatchLayer {
	n := len(l.pop.vmem)
	p := &BatchAvgPool{src: l, pop: newBatchPopulation(n, b, l.pop.cfg)}
	p.out.Grow(n, n*b)
	return p
}

// Name implements BatchLayer.
func (l *BatchAvgPool) Name() string { return "savgpool" }

// NumNeurons implements BatchLayer.
func (l *BatchAvgPool) NumNeurons() int { return len(l.src.pop.vmem) }

// Reset implements BatchLayer.
func (l *BatchAvgPool) Reset() { l.pop.resetState() }

// Retire implements BatchLayer.
func (l *BatchAvgPool) Retire(dst, src int) { l.pop.retire(dst, src) }

// Step implements BatchLayer.
func (l *BatchAvgPool) Step(t int, _ float64, lanes int, in *coding.BatchEvents) *coding.BatchEvents {
	vmem := l.pop.vmem
	b := l.pop.b
	inv := l.src.inv
	for c := range in.Index {
		s, e := in.Start[c], in.Start[c+1]
		vb := int(l.src.outIdx[in.Index[c]]) * b
		for k := s; k < e; k++ {
			vmem[vb+int(in.Lane[k])] += in.Payload[k] * inv
		}
	}
	l.pop.fire(t, lanes, nil, 0, &l.out)
	return &l.out
}

// BatchMaxPool is the B-lane variant of the max-pooling gate: cumulative
// payloads and spike stamps are lane-striped, the window geometry tables
// are shared, and the winner rule runs per (window, lane).
type BatchMaxPool struct {
	src *SpikingMaxPool
	b   int

	cum     []float64 // cum[i*b+lane]
	lastPay []float64
	seen    []int
	stamp   int

	winStamp []int // per window, touched by ANY lane this step
	touched  []int32
	out      coding.BatchEvents
}

// NewBatch implements BatchableLayer.
func (l *SpikingMaxPool) NewBatch(b int) BatchLayer {
	nIn := l.C * l.H * l.W
	nWin := len(l.winStart) - 1
	m := &BatchMaxPool{
		src: l, b: b,
		cum:      make([]float64, nIn*b),
		lastPay:  make([]float64, nIn*b),
		seen:     make([]int, nIn*b),
		winStamp: make([]int, nWin),
		touched:  make([]int32, 0, nWin),
	}
	m.out.Grow(nWin, nWin*b)
	return m
}

// Name implements BatchLayer.
func (l *BatchMaxPool) Name() string { return "smaxpool" }

// NumNeurons implements BatchLayer.
func (l *BatchMaxPool) NumNeurons() int { return 0 }

// Reset implements BatchLayer.
func (l *BatchMaxPool) Reset() {
	for i := range l.cum {
		l.cum[i] = 0
	}
}

// Retire implements BatchLayer.
func (l *BatchMaxPool) Retire(dst, src int) {
	for base := 0; base < len(l.cum); base += l.b {
		l.cum[base+dst] = l.cum[base+src]
		l.lastPay[base+dst] = l.lastPay[base+src]
		l.seen[base+dst] = l.seen[base+src]
	}
}

// winnerLane applies the sequential winner rule within one lane: the
// lowest-indexed member at the lane's cumulative maximum that spiked this
// step, or -1 when every maximal member is silent.
func (l *BatchMaxPool) winnerLane(members []int32, s int) int {
	b := l.b
	best := l.cum[int(members[0])*b+s]
	for _, idx := range members[1:] {
		if c := l.cum[int(idx)*b+s]; c > best {
			best = c
		}
	}
	for _, idx := range members {
		if l.cum[int(idx)*b+s] == best && l.seen[int(idx)*b+s] == l.stamp {
			return int(idx)
		}
	}
	return -1
}

// Step implements BatchLayer: accumulate the batch's events, then emit
// each touched window's per-lane winners in ascending window order —
// matching the sequential gate's emission order lane by lane.
func (l *BatchMaxPool) Step(t int, _ float64, lanes int, in *coding.BatchEvents) *coding.BatchEvents {
	l.stamp++
	l.touched = l.touched[:0]
	b := l.b
	for c := range in.Index {
		idx := int(in.Index[c])
		s, e := in.Start[c], in.Start[c+1]
		base := idx * b
		for k := s; k < e; k++ {
			lane := int(in.Lane[k])
			l.cum[base+lane] += in.Payload[k]
			l.seen[base+lane] = l.stamp
			l.lastPay[base+lane] = in.Payload[k]
		}
		if w := l.src.winOf[idx]; l.winStamp[w] != l.stamp {
			l.winStamp[w] = l.stamp
			l.touched = insertSorted(l.touched, w)
		}
	}
	l.out.Reset()
	for _, w := range l.touched {
		members := l.src.winMembers[l.src.winStart[w]:l.src.winStart[w+1]]
		for s := 0; s < lanes; s++ {
			if win := l.winnerLane(members, s); win >= 0 {
				l.out.Add(int32(s), l.lastPay[win*b+s])
			}
		}
		l.out.Commit(w)
	}
	return &l.out
}

// BatchOutput is the B-lane readout: per-lane accumulated class scores
// over shared weights, never firing.
type BatchOutput struct {
	src  *OutputLayer
	b    int
	pot  []float64 // pot[o*b+lane]
	amax []float64 // PredictedAll running-max scratch, one slot per lane
}

// NewBatch returns the batched readout.
func (l *OutputLayer) NewBatch(b int) *BatchOutput {
	return &BatchOutput{src: l, b: b, pot: make([]float64, l.Out*b), amax: make([]float64, b)}
}

// Reset clears every lane's accumulators.
func (l *BatchOutput) Reset() {
	for i := range l.pot {
		l.pot[i] = 0
	}
}

// Retire copies slot src's scores over slot dst.
func (l *BatchOutput) Retire(dst, src int) {
	for base := 0; base < len(l.pot); base += l.b {
		l.pot[base+dst] = l.pot[base+src]
	}
}

// Step integrates the batch's columns plus the rate-matched bias current,
// in the sequential readout's events-then-bias order (scatter shape
// shared with BatchDense via scatterRowColumn).
func (l *BatchOutput) Step(biasScale float64, lanes int, in *coding.BatchEvents) {
	pot := l.pot
	b := l.b
	outN := l.src.Out
	for c := range in.Index {
		s, e := in.Start[c], in.Start[c+1]
		row := l.src.WT[int(in.Index[c])*outN : int(in.Index[c]+1)*outN]
		scatterRowColumn(pot, row, b, lanes, in.Lane[s:e], in.Payload[s:e])
	}
	for o, bv := range l.src.Bias {
		x := bv * biasScale
		dst := pot[o*b : o*b+lanes]
		for k := range dst {
			dst[k] += x
		}
	}
}

// Classes returns the readout width.
func (l *BatchOutput) Classes() int { return l.src.Out }

// Predicted returns slot s's current argmax, with the same first-wins tie
// rule as mathx.ArgMax on the sequential readout.
func (l *BatchOutput) Predicted(s int) int {
	best := 0
	bestV := l.pot[s]
	for o := 1; o < l.src.Out; o++ {
		if v := l.pot[o*l.b+s]; v > bestV {
			best, bestV = o, v
		}
	}
	return best
}

// PredictedAll fills dst[:lanes] with every active slot's argmax in one
// lane-major sweep over the class rows (contiguous reads instead of
// lanes strided walks), with the same first-wins tie rule as Predicted.
func (l *BatchOutput) PredictedAll(lanes int, dst []int) []int {
	dst = dst[:lanes]
	best := l.amax[:lanes]
	copy(best, l.pot[:lanes])
	for s := range dst {
		dst[s] = 0
	}
	for o := 1; o < l.src.Out; o++ {
		row := l.pot[o*l.b : o*l.b+lanes]
		for s, v := range row {
			if v > best[s] {
				best[s] = v
				dst[s] = o
			}
		}
	}
	return dst
}

// PotentialsInto copies slot s's class scores into dst (len ≥ classes)
// and returns the filled prefix.
func (l *BatchOutput) PotentialsInto(s int, dst []float64) []float64 {
	dst = dst[:l.src.Out]
	for o := range dst {
		dst[o] = l.pot[o*l.b+s]
	}
	return dst
}

// BatchProbe observes the batch columns a stage emitted at time t.
type BatchProbe func(t int, events *coding.BatchEvents)

// BatchNetwork is the lockstep batch simulator built over an existing
// Network: same weights and scatter tables, B-striped state.
type BatchNetwork struct {
	Encoder coding.BatchEncoder
	Layers  []BatchLayer
	Output  *BatchOutput

	b       int
	nActive int
	laneIDs []int // slot -> caller's lane id (stable across compaction)

	encOut   coding.BatchEvents
	inCount  []int
	hidCount []int
	probes   map[int]BatchProbe
}

// MaxBatchLanes is the lane-capacity ceiling of a BatchNetwork: the
// permuted-layout firing pass tracks fired lanes in a uint64 bitmask per
// cell. Callers batching more requests than this run them in chunks (the
// serving Batcher does).
const MaxBatchLanes = 64

// NewBatchNetwork builds a B-lane batched simulator from net, sharing its
// weights and precomputed tables. It fails if the encoder or a layer does
// not support batching (all standard converter output does).
func NewBatchNetwork(net *Network, b int) (*BatchNetwork, error) {
	if b < 1 || b > MaxBatchLanes {
		return nil, fmt.Errorf("snn: batch size must be in [1,%d], got %d", MaxBatchLanes, b)
	}
	enc, ok := net.Encoder.(coding.BatchableEncoder)
	if !ok {
		return nil, fmt.Errorf("snn: encoder %T does not support batching", net.Encoder)
	}
	bn := &BatchNetwork{
		Encoder: enc.NewBatch(b),
		Layers:  make([]BatchLayer, len(net.Layers)),
		Output:  net.Output.NewBatch(b),
		b:       b,
		laneIDs: make([]int, b),
		inCount: make([]int, b),

		hidCount: make([]int, b),
	}
	for i, l := range net.Layers {
		bl, ok := l.(BatchableLayer)
		if !ok {
			return nil, fmt.Errorf("snn: layer %d (%s) does not support batching", i, l.Name())
		}
		bn.Layers[i] = bl.NewBatch(b)
	}
	size := bn.Encoder.Size()
	bn.encOut.Grow(size, size*b)
	return bn, nil
}

// B returns the lane capacity.
func (bn *BatchNetwork) B() int { return bn.b }

// NumActive returns the number of live lanes.
func (bn *BatchNetwork) NumActive() int { return bn.nActive }

// LaneID returns the caller lane id occupying slot s (lane ids are the
// positions in the Reset images slice and survive compaction).
func (bn *BatchNetwork) LaneID(s int) int { return bn.laneIDs[s] }

// CountsInputSpikes implements Lockstep.
func (bn *BatchNetwork) CountsInputSpikes() bool { return bn.Encoder.CountsAsSpikes() }

// Classes implements Lockstep.
func (bn *BatchNetwork) Classes() int { return bn.Output.Classes() }

// Predicted implements Lockstep.
func (bn *BatchNetwork) Predicted(slot int) int { return bn.Output.Predicted(slot) }

// PredictedAll implements Lockstep.
func (bn *BatchNetwork) PredictedAll(dst []int) []int {
	return bn.Output.PredictedAll(bn.nActive, dst)
}

// PotentialsInto implements Lockstep.
func (bn *BatchNetwork) PotentialsInto(slot int, dst []float64) []float64 {
	return bn.Output.PotentialsInto(slot, dst)
}

// Kernel implements Lockstep: the float64 scalar plane.
func (bn *BatchNetwork) Kernel() string { return kernels.KindF64 }

// AttachProbe registers a batch-column observer for a layer index; -1
// observes the encoder (test hook, mirroring Network.AttachProbe).
func (bn *BatchNetwork) AttachProbe(layer int, p BatchProbe) {
	if layer < -1 || layer >= len(bn.Layers) {
		panic(fmt.Sprintf("snn: batch probe index %d out of range", layer))
	}
	if bn.probes == nil {
		bn.probes = map[int]BatchProbe{}
	}
	bn.probes[layer] = p
}

// Reset loads a new batch of images into lanes 0..len(images)-1 and
// clears all neuron state. len(images) must be in [1, B].
func (bn *BatchNetwork) Reset(images [][]float64) {
	if len(images) == 0 || len(images) > bn.b {
		panic(fmt.Sprintf("snn: batch of %d images exceeds [1,%d]", len(images), bn.b))
	}
	bn.nActive = len(images)
	for s, img := range images {
		bn.Encoder.SetLane(s, img)
		bn.laneIDs[s] = s
	}
	for _, l := range bn.Layers {
		l.Reset()
	}
	bn.Output.Reset()
}

// Retire removes slot s from the batch: the last active slot's state is
// copied over it (physical compaction) and the active count shrinks. The
// remaining lanes are unaffected — their state is disjoint and the slot
// move is a pure relabeling.
func (bn *BatchNetwork) Retire(s int) {
	if s < 0 || s >= bn.nActive {
		panic(fmt.Sprintf("snn: retire slot %d out of active range [0,%d)", s, bn.nActive))
	}
	last := bn.nActive - 1
	if s != last {
		bn.Encoder.Retire(s, last)
		for _, l := range bn.Layers {
			l.Retire(s, last)
		}
		bn.Output.Retire(s, last)
		bn.laneIDs[s] = bn.laneIDs[last]
	}
	bn.nActive--
}

// BatchStepStats reports one lockstep step; the slices are indexed by
// slot, valid until the next Step, and must not be mutated.
type BatchStepStats struct {
	// InputEvents and HiddenSpikes count the step's events per slot.
	InputEvents  []int
	HiddenSpikes []int
}

func countLanes(counts []int, ev *coding.BatchEvents) {
	for _, lane := range ev.Lane {
		counts[lane]++
	}
}

// Step advances every active lane by one time step.
func (bn *BatchNetwork) Step(t int) BatchStepStats {
	lanes := bn.nActive
	bn.Encoder.Step(t, lanes, &bn.encOut)
	if p := bn.probes[-1]; p != nil {
		p(t, &bn.encOut)
	}
	biasScale := bn.Encoder.BiasScale(t)
	for s := 0; s < lanes; s++ {
		bn.inCount[s] = 0
		bn.hidCount[s] = 0
	}
	countLanes(bn.inCount, &bn.encOut)
	ev := &bn.encOut
	for li, l := range bn.Layers {
		ev = l.Step(t, biasScale, lanes, ev)
		if p := bn.probes[li]; p != nil {
			p(t, ev)
		}
		countLanes(bn.hidCount, ev)
	}
	bn.Output.Step(biasScale, lanes, ev)
	return BatchStepStats{
		InputEvents:  bn.inCount[:lanes],
		HiddenSpikes: bn.hidCount[:lanes],
	}
}
