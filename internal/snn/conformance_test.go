package snn

import (
	"math"
	"reflect"
	"testing"

	"burstsnn/internal/coding"
	"burstsnn/internal/kernels"
)

// The cross-tier conformance suite: TestBatch32MatchesSequential pins
// the float32 plane to the float64 sequential simulator under whichever
// dispatch tier is active, with a *tolerance* contract on the readout.
// This suite pins the tiers to EACH OTHER, and the contract here is
// strictly stronger: every available tier (purego, sse, avx2) must
// produce bit-identical trajectories — the same event columns (indices,
// lane sets, payload bits), the same per-lane spike counts, the same
// predictions, and bit-equal float32 readout potentials at every step of
// the full 24-hybrid × B∈{1,3,8} corpus. The tiers perform the same
// rounded float32 operations by construction (no FMA contraction — see
// internal/kernels), so any divergence is a kernel bug, not rounding.

// tierStep is one lockstep step's full observable state under one tier.
type tierStep struct {
	In, Hid []int      // per-lane input events / hidden spikes
	Preds   []int      // per-lane readout argmax (PredictedAll)
	Events  [][]uint64 // per stage: flattened columns (index, then lane<<32|payload bits)
	Pots    [][]uint32 // per lane: float32 bit patterns of the readout
}

func flattenEvents32(ev *coding.BatchEvents32) []uint64 {
	flat := make([]uint64, 0, len(ev.Index)+len(ev.Lane))
	for c := range ev.Index {
		flat = append(flat, uint64(ev.Index[c]))
		for k := ev.Start[c]; k < ev.Start[c+1]; k++ {
			flat = append(flat, uint64(ev.Lane[k])<<32|uint64(math.Float32bits(ev.Payload[k])))
		}
	}
	return flat
}

// runTierTrace presents two batches of images through a fresh float32
// lockstep simulator under the active tier and records every step.
func runTierTrace(t *testing.T, proto *Network, B, steps int) []tierStep {
	t.Helper()
	batch, err := NewBatchNetwork32(proto, B)
	if err != nil {
		t.Fatalf("NewBatchNetwork32: %v", err)
	}
	nL := len(proto.Layers)
	stepEv := make([]*coding.BatchEvents32, nL+1)
	for li := -1; li < nL; li++ {
		li := li
		batch.AttachProbe(li, func(_ int, ev *coding.BatchEvents32) {
			stepEv[li+1] = ev
		})
	}
	var trace []tierStep
	pot := make([]float64, batch.Classes())
	preds := make([]int, B)
	for img := 0; img < 2; img++ {
		images := make([][]float64, B)
		for lane := range images {
			seed := 0x1A9E + uint64(lane)*131
			if img == 1 {
				seed = 0xF00D + uint64(lane)*37
			}
			images[lane] = equivImage(seed, proto.Encoder.Size())
		}
		batch.Reset(images)
		for s := 0; s < steps; s++ {
			st := batch.Step(s)
			ts := tierStep{
				In:     append([]int(nil), st.InputEvents...),
				Hid:    append([]int(nil), st.HiddenSpikes...),
				Preds:  append([]int(nil), batch.PredictedAll(preds)...),
				Events: make([][]uint64, nL+1),
				Pots:   make([][]uint32, B),
			}
			for li := 0; li <= nL; li++ {
				ts.Events[li] = flattenEvents32(stepEv[li])
			}
			for lane := 0; lane < B; lane++ {
				// PredictedAll must agree with the per-slot walk on every
				// tier (same first-wins rule through the packed blend).
				if p := batch.Predicted(lane); p != ts.Preds[lane] {
					t.Fatalf("img %d step %d lane %d: PredictedAll %d, Predicted %d (tier %s)",
						img, s, lane, ts.Preds[lane], p, kernels.ActiveLevel())
				}
				pot = batch.PotentialsInto(lane, pot)
				bits := make([]uint32, len(pot))
				for o, v := range pot {
					bits[o] = math.Float32bits(float32(v))
				}
				ts.Pots[lane] = bits
			}
			trace = append(trace, ts)
		}
	}
	return trace
}

// TestBatch32CrossTierConformance runs the full equivalence corpus once
// per available dispatch tier and requires bit-identical trajectories
// across every tier pair (all tiers are compared against the narrowest,
// which makes every pair transitively identical).
func TestBatch32CrossTierConformance(t *testing.T) {
	levels := kernels.Available()
	if len(levels) < 2 {
		t.Skipf("single-tier build (%v): cross-tier conformance needs the amd64 assembly build", levels)
	}
	defer kernels.ForceLevel("")

	inputs := []coding.Scheme{coding.Real, coding.Rate, coding.Phase, coding.TTFS}
	leaky := func(s coding.Scheme) coding.Config {
		cfg := coding.DefaultConfig(s)
		cfg.Leak = 0.05
		return cfg
	}
	hiddens := []struct {
		name string
		cfg  coding.Config
	}{
		{"rate", coding.DefaultConfig(coding.Rate)},
		{"phase", coding.DefaultConfig(coding.Phase)},
		{"burst", coding.DefaultConfig(coding.Burst)},
		{"ttfs", coding.DefaultConfig(coding.TTFS)},
		{"rate-leaky", leaky(coding.Rate)},
		{"burst-leaky", leaky(coding.Burst)},
	}
	const steps = 20
	for _, B := range []int{1, 3, 8} {
		for _, in := range inputs {
			for hi, hid := range hiddens {
				name := in.String() + "-" + hid.name
				t.Run(name+"/B="+string(rune('0'+B)), func(t *testing.T) {
					inCfg := coding.DefaultConfig(in)
					proto := buildEquivNetwork(t, inCfg, hid.cfg, 0xBA7C0+uint64(in)*64+uint64(hi)*8+uint64(B))
					var ref []tierStep
					for li, lv := range levels {
						if err := kernels.ForceLevel(lv); err != nil {
							t.Fatal(err)
						}
						trace := runTierTrace(t, proto, B, steps)
						if li == 0 {
							ref = trace
							continue
						}
						for s := range ref {
							if !reflect.DeepEqual(trace[s], ref[s]) {
								t.Fatalf("step %d (of 2×%d): tier %s diverged from %s\n%s: %+v\n%s: %+v",
									s, steps, lv, levels[0], lv, trace[s], levels[0], ref[s])
							}
						}
					}
				})
			}
		}
	}
}
