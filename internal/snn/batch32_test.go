package snn

import (
	"math"
	"testing"

	"burstsnn/internal/coding"
	"burstsnn/internal/kernels"
	"burstsnn/internal/mathx"
)

// potTolerance bounds the float32 readout drift the equivalence corpus
// tolerates: |pot32 - pot64| ≤ potTolerance · max(1, |pot64|) per class
// per step. Weight rounding contributes ~6e-8 relative per product and
// float32 accumulation ~1e-7 per add over a few hundred adds, so 1e-3 is
// three orders of magnitude of headroom while still catching any real
// arithmetic divergence (a wrong payload or a dropped tap shows up as
// O(v_th) ≈ 0.1+).
const potTolerance = 1e-3

// TestBatch32MatchesSequential is the float32 plane's tolerance contract,
// pinned over the full equivalence corpus: for every input-hidden hybrid
// (4 inputs × 6 hidden configs = 24) and B ∈ {1, 3, 8}, the float32
// lockstep simulator must produce — per lane, per step — identical spike
// counts, identical event indices and timing, identical predictions, and
// readout potentials within potTolerance of B independent float64
// sequential runs. Payload values may differ only by float32 rounding.
//
// This is deliberately NOT the float64 plane's bit-identity test: the
// contract is empirical over this fixed corpus (deterministic weights,
// images, and steps), which is exactly the guarantee serving relies on —
// see internal/README.md "The float32 compute plane".
func TestBatch32MatchesSequential(t *testing.T) {
	inputs := []coding.Scheme{coding.Real, coding.Rate, coding.Phase, coding.TTFS}
	leaky := func(s coding.Scheme) coding.Config {
		cfg := coding.DefaultConfig(s)
		cfg.Leak = 0.05
		return cfg
	}
	hiddens := []struct {
		name string
		cfg  coding.Config
	}{
		{"rate", coding.DefaultConfig(coding.Rate)},
		{"phase", coding.DefaultConfig(coding.Phase)},
		{"burst", coding.DefaultConfig(coding.Burst)},
		{"ttfs", coding.DefaultConfig(coding.TTFS)},
		{"rate-leaky", leaky(coding.Rate)},
		{"burst-leaky", leaky(coding.Burst)},
	}
	const steps = 20
	for _, B := range []int{1, 3, 8} {
		for _, in := range inputs {
			for hi, hid := range hiddens {
				name := in.String() + "-" + hid.name
				t.Run(name+"/B="+string(rune('0'+B)), func(t *testing.T) {
					inCfg := coding.DefaultConfig(in)
					proto := buildEquivNetwork(t, inCfg, hid.cfg, 0xBA7C0+uint64(in)*64+uint64(hi)*8+uint64(B))
					batch, err := NewBatchNetwork32(proto, B)
					if err != nil {
						t.Fatalf("NewBatchNetwork32: %v", err)
					}
					if k := batch.Kernel(); k != kernels.Kind() {
						t.Fatalf("Kernel() = %q, want %q", k, kernels.Kind())
					}

					nL := len(proto.Layers)
					seqs := make([]*Network, B)
					images := make([][]float64, B)
					seqEv := make([][][]coding.Event, B)
					for lane := 0; lane < B; lane++ {
						seqs[lane], err = proto.Clone()
						if err != nil {
							t.Fatalf("clone: %v", err)
						}
						images[lane] = equivImage(0x1A9E+uint64(lane)*131, proto.Encoder.Size())
						seqEv[lane] = make([][]coding.Event, nL+1)
						for li := -1; li < nL; li++ {
							lane, li := lane, li
							seqs[lane].AttachProbe(li, func(_ int, events []coding.Event) {
								seqEv[lane][li+1] = append(seqEv[lane][li+1][:0], events...)
							})
						}
					}
					batchEv := make([]*coding.BatchEvents32, nL+1)
					for li := -1; li < nL; li++ {
						li := li
						batch.AttachProbe(li, func(_ int, ev *coding.BatchEvents32) {
							batchEv[li+1] = ev
						})
					}

					// Two presentations, to prove batch Reset carries no
					// state across batches.
					pot := make([]float64, 4)
					for img := 0; img < 2; img++ {
						if img == 1 {
							for lane := range images {
								images[lane] = equivImage(0xF00D+uint64(lane)*37, proto.Encoder.Size())
							}
						}
						batch.Reset(images)
						for lane := 0; lane < B; lane++ {
							seqs[lane].Reset(images[lane])
						}
						for s := 0; s < steps; s++ {
							st := batch.Step(s)
							for lane := 0; lane < B; lane++ {
								sst := seqs[lane].Step(s)
								if st.InputEvents[lane] != sst.InputEvents || st.HiddenSpikes[lane] != sst.HiddenSpikes {
									t.Fatalf("img %d step %d lane %d: counts f32 %d/%d f64 %d/%d",
										img, s, lane, st.InputEvents[lane], st.HiddenSpikes[lane],
										sst.InputEvents, sst.HiddenSpikes)
								}
								if p := batch.Predicted(lane); p != sst.Predicted {
									t.Fatalf("img %d step %d lane %d: predicted %d, f64 %d", img, s, lane, p, sst.Predicted)
								}
								for li := 0; li <= nL; li++ {
									got := batchEv[li].AppendLane(int32(lane), nil)
									want := seqEv[lane][li]
									if len(got) != len(want) {
										t.Fatalf("img %d step %d lane %d layer %d: %d vs %d events",
											img, s, lane, li-1, len(got), len(want))
									}
									for k := range want {
										if got[k].Index != want[k].Index {
											t.Fatalf("img %d step %d lane %d layer %d event %d: f32 index %d f64 %d",
												img, s, lane, li-1, k, got[k].Index, want[k].Index)
										}
										// Payloads agree to float32 rounding
										// (exactly, for power-of-two payloads).
										if float32(got[k].Payload) != float32(want[k].Payload) {
											t.Fatalf("img %d step %d lane %d layer %d event %d: f32 payload %v f64 %v",
												img, s, lane, li-1, k, got[k].Payload, want[k].Payload)
										}
									}
								}
								pot = batch.PotentialsInto(lane, pot)
								for o, v := range seqs[lane].Output.Potentials() {
									bound := potTolerance * math.Max(1, math.Abs(v))
									if d := math.Abs(pot[o] - v); d > bound {
										t.Fatalf("img %d step %d lane %d: readout %d f32 %v f64 %v (|Δ|=%g > %g)",
											img, s, lane, o, pot[o], v, d, bound)
									}
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestBatch32LaneRetirementFuzz drives the float32 plane's physical lane
// compaction under random staggered retirements, mirroring the float64
// fuzz: surviving lanes must keep identical spike counts and predictions
// to their float64 sequential runs, and potentials within tolerance.
func TestBatch32LaneRetirementFuzz(t *testing.T) {
	hybrids := []struct {
		in, hid coding.Scheme
	}{
		{coding.Phase, coding.Burst},
		{coding.Rate, coding.Rate},
		{coding.Real, coding.Phase},
		{coding.TTFS, coding.Burst},
	}
	const B, steps, rounds = 8, 24, 4
	for _, h := range hybrids {
		t.Run(h.in.String()+"-"+h.hid.String(), func(t *testing.T) {
			r := mathx.NewRNG(0x5AFE32)
			proto := buildEquivNetwork(t, coding.DefaultConfig(h.in), coding.DefaultConfig(h.hid), 0xF022)
			batch, err := NewBatchNetwork32(proto, B)
			if err != nil {
				t.Fatalf("NewBatchNetwork32: %v", err)
			}
			seqs := make([]*Network, B)
			for lane := range seqs {
				if seqs[lane], err = proto.Clone(); err != nil {
					t.Fatalf("clone: %v", err)
				}
			}
			scores := make([]float64, 4)
			for round := 0; round < rounds; round++ {
				n := 2 + r.Intn(B-1)
				images := make([][]float64, n)
				for lane := range images {
					images[lane] = equivImage(uint64(round)*100+uint64(lane), proto.Encoder.Size())
					seqs[lane].Reset(images[lane])
				}
				batch.Reset(images)
				for s := 0; s < steps && batch.NumActive() > 0; s++ {
					st := batch.Step(s)
					for slot := 0; slot < batch.NumActive(); slot++ {
						lane := batch.LaneID(slot)
						sst := seqs[lane].Step(s)
						if st.InputEvents[slot] != sst.InputEvents || st.HiddenSpikes[slot] != sst.HiddenSpikes {
							t.Fatalf("round %d step %d lane %d (slot %d): counts f32 %d/%d f64 %d/%d",
								round, s, lane, slot, st.InputEvents[slot], st.HiddenSpikes[slot],
								sst.InputEvents, sst.HiddenSpikes)
						}
						if p := batch.Predicted(slot); p != sst.Predicted {
							t.Fatalf("round %d step %d lane %d: predicted %d, f64 %d", round, s, lane, p, sst.Predicted)
						}
						scores = batch.PotentialsInto(slot, scores)
						for o, v := range seqs[lane].Output.Potentials() {
							bound := potTolerance * math.Max(1, math.Abs(v))
							if d := math.Abs(scores[o] - v); d > bound {
								t.Fatalf("round %d step %d lane %d: readout %d f32 %v f64 %v", round, s, lane, o, scores[o], v)
							}
						}
					}
					for batch.NumActive() > 0 && r.Bernoulli(0.15) {
						batch.Retire(r.Intn(batch.NumActive()))
					}
				}
			}
		})
	}
}
