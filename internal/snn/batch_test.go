package snn

import (
	"testing"

	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
)

// laneEvents projects one lane out of a batch column stream into a
// sequential event list.
func laneEvents(ev *coding.BatchEvents, lane int32) []coding.Event {
	return ev.AppendLane(lane, nil)
}

// TestBatchMatchesSequential is the tentpole safety net of the batched
// lockstep simulator: for every input-hidden hybrid and B ∈ {1, 3, 8},
// a batch of B distinct images must produce — per lane — bit-identical
// per-layer spike trains, per-step predictions, per-lane spike counts,
// and readout potentials to B independent sequential fast-path runs.
func TestBatchMatchesSequential(t *testing.T) {
	inputs := []coding.Scheme{coding.Real, coding.Rate, coding.Phase, coding.TTFS}
	leaky := func(s coding.Scheme) coding.Config {
		cfg := coding.DefaultConfig(s)
		cfg.Leak = 0.05
		return cfg
	}
	hiddens := []struct {
		name string
		cfg  coding.Config
	}{
		{"rate", coding.DefaultConfig(coding.Rate)},
		{"phase", coding.DefaultConfig(coding.Phase)},
		{"burst", coding.DefaultConfig(coding.Burst)},
		{"ttfs", coding.DefaultConfig(coding.TTFS)},
		{"rate-leaky", leaky(coding.Rate)},
		{"burst-leaky", leaky(coding.Burst)},
	}
	const steps = 20
	for _, B := range []int{1, 3, 8} {
		for _, in := range inputs {
			for hi, hid := range hiddens {
				name := in.String() + "-" + hid.name
				t.Run(name+"/B="+string(rune('0'+B)), func(t *testing.T) {
					inCfg := coding.DefaultConfig(in)
					proto := buildEquivNetwork(t, inCfg, hid.cfg, 0xBA7C0+uint64(in)*64+uint64(hi)*8+uint64(B))
					batch, err := NewBatchNetwork(proto, B)
					if err != nil {
						t.Fatalf("NewBatchNetwork: %v", err)
					}

					// One independent sequential replica per lane, with
					// distinct images.
					nL := len(proto.Layers)
					seqs := make([]*Network, B)
					images := make([][]float64, B)
					seqEv := make([][][]coding.Event, B) // [lane][layer+1]
					for lane := 0; lane < B; lane++ {
						seqs[lane], err = proto.Clone()
						if err != nil {
							t.Fatalf("clone: %v", err)
						}
						images[lane] = equivImage(0x1A9E+uint64(lane)*131, proto.Encoder.Size())
						seqEv[lane] = make([][]coding.Event, nL+1)
						for li := -1; li < nL; li++ {
							lane, li := lane, li
							seqs[lane].AttachProbe(li, func(_ int, events []coding.Event) {
								seqEv[lane][li+1] = append(seqEv[lane][li+1][:0], events...)
							})
						}
					}
					batchEv := make([]*coding.BatchEvents, nL+1)
					for li := -1; li < nL; li++ {
						li := li
						batch.AttachProbe(li, func(_ int, ev *coding.BatchEvents) {
							batchEv[li+1] = ev
						})
					}

					// Two presentations, to prove batch Reset carries no
					// state across batches.
					for img := 0; img < 2; img++ {
						if img == 1 {
							for lane := range images {
								images[lane] = equivImage(0xF00D+uint64(lane)*37, proto.Encoder.Size())
							}
						}
						batch.Reset(images)
						for lane := 0; lane < B; lane++ {
							seqs[lane].Reset(images[lane])
						}
						for s := 0; s < steps; s++ {
							st := batch.Step(s)
							for lane := 0; lane < B; lane++ {
								sst := seqs[lane].Step(s)
								if st.InputEvents[lane] != sst.InputEvents || st.HiddenSpikes[lane] != sst.HiddenSpikes {
									t.Fatalf("img %d step %d lane %d: counts batch %d/%d seq %d/%d",
										img, s, lane, st.InputEvents[lane], st.HiddenSpikes[lane],
										sst.InputEvents, sst.HiddenSpikes)
								}
								if p := batch.Output.Predicted(lane); p != sst.Predicted {
									t.Fatalf("img %d step %d lane %d: predicted %d, seq %d", img, s, lane, p, sst.Predicted)
								}
								for li := 0; li <= nL; li++ {
									got := laneEvents(batchEv[li], int32(lane))
									want := seqEv[lane][li]
									if len(got) != len(want) {
										t.Fatalf("img %d step %d lane %d layer %d: %d vs %d events",
											img, s, lane, li-1, len(got), len(want))
									}
									for k := range want {
										if got[k] != want[k] {
											t.Fatalf("img %d step %d lane %d layer %d event %d: batch %+v seq %+v",
												img, s, lane, li-1, k, got[k], want[k])
										}
									}
								}
								pot := batch.Output.PotentialsInto(lane, make([]float64, 4))
								for o, v := range seqs[lane].Output.Potentials() {
									if pot[o] != v {
										t.Fatalf("img %d step %d lane %d: readout %d batch %v seq %v",
											img, s, lane, o, pot[o], v)
									}
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestBatchLaneRetirementFuzz drives the physical lane compaction under
// random staggered retirements: lanes drop out at random steps (as early
// exits do) and every surviving lane must keep producing bit-identical
// spike counts, predictions, and potentials to its sequential run. Runs
// several rounds per hybrid to also cover batch reuse after Reset.
func TestBatchLaneRetirementFuzz(t *testing.T) {
	r := mathx.NewRNG(0x5AFE)
	hybrids := []struct {
		in, hid coding.Scheme
	}{
		{coding.Phase, coding.Burst},
		{coding.Rate, coding.Rate},
		{coding.Real, coding.Phase},
		{coding.TTFS, coding.Burst},
	}
	const B, steps, rounds = 8, 24, 4
	for _, h := range hybrids {
		t.Run(h.in.String()+"-"+h.hid.String(), func(t *testing.T) {
			proto := buildEquivNetwork(t, coding.DefaultConfig(h.in), coding.DefaultConfig(h.hid), 0xF022)
			batch, err := NewBatchNetwork(proto, B)
			if err != nil {
				t.Fatalf("NewBatchNetwork: %v", err)
			}
			seqs := make([]*Network, B)
			for lane := range seqs {
				if seqs[lane], err = proto.Clone(); err != nil {
					t.Fatalf("clone: %v", err)
				}
			}
			scores := make([]float64, 4)
			for round := 0; round < rounds; round++ {
				n := 2 + r.Intn(B-1) // batch sizes 2..B
				images := make([][]float64, n)
				for lane := range images {
					images[lane] = equivImage(uint64(round)*100+uint64(lane), proto.Encoder.Size())
					seqs[lane].Reset(images[lane])
				}
				batch.Reset(images)
				alive := make(map[int]bool, n)
				for lane := 0; lane < n; lane++ {
					alive[lane] = true
				}
				for s := 0; s < steps && batch.NumActive() > 0; s++ {
					st := batch.Step(s)
					for slot := 0; slot < batch.NumActive(); slot++ {
						lane := batch.LaneID(slot)
						sst := seqs[lane].Step(s)
						if st.InputEvents[slot] != sst.InputEvents || st.HiddenSpikes[slot] != sst.HiddenSpikes {
							t.Fatalf("round %d step %d lane %d (slot %d): counts batch %d/%d seq %d/%d",
								round, s, lane, slot, st.InputEvents[slot], st.HiddenSpikes[slot],
								sst.InputEvents, sst.HiddenSpikes)
						}
						if p := batch.Output.Predicted(slot); p != sst.Predicted {
							t.Fatalf("round %d step %d lane %d: predicted %d, seq %d", round, s, lane, p, sst.Predicted)
						}
						pot := batch.Output.PotentialsInto(slot, scores)
						for o, v := range seqs[lane].Output.Potentials() {
							if pot[o] != v {
								t.Fatalf("round %d step %d lane %d: readout %d batch %v seq %v", round, s, lane, o, pot[o], v)
							}
						}
					}
					// Random staggered retirement, sometimes several per step.
					for batch.NumActive() > 0 && r.Bernoulli(0.15) {
						slot := r.Intn(batch.NumActive())
						delete(alive, batch.LaneID(slot))
						batch.Retire(slot)
					}
				}
				if len(alive) != batch.NumActive() {
					t.Fatalf("round %d: %d lanes alive, batch reports %d", round, len(alive), batch.NumActive())
				}
			}
		})
	}
}

// TestBatchNetworkRejectsUnbatchable pins the construction errors.
func TestBatchNetworkRejectsUnbatchable(t *testing.T) {
	proto := buildEquivNetwork(t, coding.DefaultConfig(coding.Phase), coding.DefaultConfig(coding.Burst), 7)
	if _, err := NewBatchNetwork(proto, 0); err == nil {
		t.Error("B=0 should fail")
	}
	proto.Encoder = &coding.PoissonEncoder{SizeN: proto.Encoder.Size(), RNG: mathx.NewRNG(1)}
	if _, err := NewBatchNetwork(proto, 4); err == nil {
		t.Error("stream-stateful encoder should not be batchable")
	}
}
