package snn

import (
	"fmt"

	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
)

// DelayedNetwork executes the same layer stack as Network but with
// integer axonal delays on every inter-layer edge, modelling asynchronous
// neuromorphic fabrics (SpiNNaker packets take a nonzero, possibly
// per-neuron, number of time steps to arrive). A spike fired by layer l
// at step t is integrated by layer l+1 at step t+delay.
//
// With all delays zero the behaviour is exactly Network's synchronous
// semantics (events traverse the whole stack within one step), which the
// tests pin down. Per-neuron jitter can be added on top of the base
// delay to model congestion-dependent delivery.
type DelayedNetwork struct {
	Encoder coding.InputEncoder
	Layers  []Layer
	Output  *OutputLayer

	// BaseDelay[i] is the delay in steps of the edge feeding Layers[i]
	// (index len(Layers) feeds the readout). All zero = synchronous.
	BaseDelay []int
	// Jitter adds a deterministic per-source-neuron extra delay in
	// [0, Jitter], drawn from Seed. Zero disables it.
	Jitter int
	Seed   uint64

	// inbox[i] is a ring of pending event buffers for stage i; slot
	// (t % len) holds the events arriving at step t.
	inbox   [][][]coding.Event
	jitters [][]int // per stage, per source neuron extra delay
	maxLag  int
}

// NewDelayedNetwork wraps the given stages with delays. baseDelay must
// have len(layers)+1 entries (the last one feeds the readout).
func NewDelayedNetwork(enc coding.InputEncoder, layers []Layer, out *OutputLayer, baseDelay []int, jitter int, seed uint64) (*DelayedNetwork, error) {
	if len(baseDelay) != len(layers)+1 {
		return nil, fmt.Errorf("snn: need %d delays, got %d", len(layers)+1, len(baseDelay))
	}
	for i, d := range baseDelay {
		if d < 0 {
			return nil, fmt.Errorf("snn: negative delay at edge %d", i)
		}
	}
	if jitter < 0 {
		return nil, fmt.Errorf("snn: negative jitter")
	}
	n := &DelayedNetwork{
		Encoder:   enc,
		Layers:    layers,
		Output:    out,
		BaseDelay: append([]int(nil), baseDelay...),
		Jitter:    jitter,
		Seed:      seed,
	}
	n.maxLag = 0
	for _, d := range baseDelay {
		if d+jitter > n.maxLag {
			n.maxLag = d + jitter
		}
	}
	ring := n.maxLag + 1
	n.inbox = make([][][]coding.Event, len(layers)+1)
	for i := range n.inbox {
		n.inbox[i] = make([][]coding.Event, ring)
	}
	// Per-source-neuron jitter tables, deterministic from the seed.
	n.jitters = make([][]int, len(layers)+1)
	if jitter > 0 {
		r := mathx.NewRNG(seed ^ 0x517cc1b727220a95)
		sizes := make([]int, len(layers)+1)
		sizes[0] = enc.Size()
		for i, l := range layers {
			sizes[i+1] = l.NumNeurons()
		}
		for i, size := range sizes {
			if size == 0 {
				continue
			}
			table := make([]int, size)
			for j := range table {
				table[j] = r.Intn(jitter + 1)
			}
			n.jitters[i] = table
		}
	}
	return n, nil
}

// FromNetwork builds a DelayedNetwork sharing the layers of a converted
// synchronous network, with a uniform delay on every edge.
func FromNetwork(net *Network, uniformDelay, jitter int, seed uint64) (*DelayedNetwork, error) {
	delays := make([]int, len(net.Layers)+1)
	for i := range delays {
		delays[i] = uniformDelay
	}
	return NewDelayedNetwork(net.Encoder, net.Layers, net.Output, delays, jitter, seed)
}

// TotalBaseDelay returns the pipeline fill time: the sum of edge delays.
func (n *DelayedNetwork) TotalBaseDelay() int {
	total := 0
	for _, d := range n.BaseDelay {
		total += d
	}
	return total
}

// Reset prepares for a new input presentation.
func (n *DelayedNetwork) Reset(image []float64) {
	n.Encoder.Reset(image)
	for _, l := range n.Layers {
		l.Reset()
	}
	n.Output.Reset()
	for i := range n.inbox {
		for j := range n.inbox[i] {
			n.inbox[i][j] = n.inbox[i][j][:0]
		}
	}
}

// deliver schedules events onto stage's inbox at step t+delay(+jitter).
func (n *DelayedNetwork) deliver(stage, t int, events []coding.Event) {
	base := n.BaseDelay[stage]
	ring := len(n.inbox[stage])
	jt := n.jitters[stage-0]
	// The jitter table is indexed by the *source* neuron, which lives in
	// stage-1's population; the table was built per stage edge using the
	// source sizes, so jitters[stage] is keyed by source index. (For
	// stage 0 there is no feeding edge; deliver is never called with 0.)
	for _, ev := range events {
		d := base
		if n.Jitter > 0 && jt != nil && ev.Index < len(jt) {
			d += jt[ev.Index]
		}
		slot := (t + d) % ring
		n.inbox[stage][slot] = append(n.inbox[stage][slot], ev)
	}
}

// Step advances one time step and returns the same statistics as the
// synchronous network.
func (n *DelayedNetwork) Step(t int) StepStats {
	// Encoder events enter edge 0 (feeding Layers[0] or the readout).
	n.deliver(0, t, n.Encoder.Step(t))
	st := StepStats{}
	biasScale := n.Encoder.BiasScale(t)
	ring := 0
	for li, l := range n.Layers {
		ring = len(n.inbox[li])
		slot := t % ring
		in := n.inbox[li][slot]
		n.inbox[li][slot] = in[:0:0] // consume; allocate fresh next time
		if li == 0 {
			st.InputEvents = len(in)
		}
		out := l.Step(t, biasScale, in)
		st.HiddenSpikes += len(out)
		n.deliver(li+1, t, out)
	}
	last := len(n.Layers)
	ring = len(n.inbox[last])
	slot := t % ring
	in := n.inbox[last][slot]
	n.inbox[last][slot] = in[:0:0]
	n.Output.Step(t, biasScale, in)
	st.Predicted = mathx.ArgMax(n.Output.Potentials())
	return st
}

// Run presents image for steps time steps.
func (n *DelayedNetwork) Run(image []float64, steps int) Result {
	n.Reset(image)
	res := Result{Steps: steps, PredictedAt: make([]int, steps)}
	countInput := n.Encoder.CountsAsSpikes()
	for t := 0; t < steps; t++ {
		st := n.Step(t)
		if countInput {
			res.InputSpikes += st.InputEvents
		}
		res.HiddenSpikes += st.HiddenSpikes
		res.PredictedAt[t] = st.Predicted
	}
	return res
}
