package snn

import (
	"fmt"
	"math/bits"

	"burstsnn/internal/coding"
	"burstsnn/internal/kernels"
)

// The float32 compute plane: BatchNetwork32 is the lockstep batch
// simulator re-based on float32 state and the internal/kernels block
// primitives. Layout and ordering invariants are exactly the float64
// plane's (B-striped lane-major state, base-major conv storage, ascending
// column emission, physical lane retirement) — only the element type and
// the inner loops change, so the structure of this file deliberately
// mirrors batch.go.
//
// Numerics contract (see internal/README.md "The float32 compute
// plane"): weights and biases are rounded to float32 once at conversion
// (the layers' WT32/WScatter32/Bias32 copies); per-step scheme scalars
// (thresholds, Π(t), bias scale) are computed in float64 and rounded per
// step; all membrane/readout accumulation is float32. The plane does NOT
// promise bit-identity to the float64 simulators — it promises identical
// predictions, spike counts, and early-exit outcomes on the equivalence
// corpus, with readout potentials within accumulation tolerance, which
// the suites in batch32_test.go and serve pin. Per-lane trajectories are
// still exactly deterministic and independent of batch composition: a
// lane's accumulation order never depends on which other lanes are
// present, and every specialization computes the same rounded float32
// operations per lane.

// BatchLayer32 is one spiking stage of a float32 batched network,
// mirroring BatchLayer over float32 columns.
type BatchLayer32 interface {
	Name() string
	NumNeurons() int
	Step(t int, biasScale float64, lanes int, in *coding.BatchEvents32) *coding.BatchEvents32
	Reset()
	Retire(dst, src int)
}

// BatchableLayer32 is a Layer that can stamp out a float32 B-lane batched
// variant sharing its float32 weight copies. Every layer the converter
// builds implements it.
type BatchableLayer32 interface {
	Layer
	// NewBatch32 returns a float32 batched variant with b lanes.
	NewBatch32(b int) BatchLayer32
}

// batchPopulation32 is the float32 counterpart of batchPopulation: the
// B-striped integrate-and-fire state with the same fused
// bias→leak→burst→threshold pass, its leak-free paths delegated to the
// fused kernels.FireRow* primitives. The previous-step fired flags are
// stored as full mask words (zero / all-ones) — the blend representation
// the packed burst kernel consumes.
type batchPopulation32 struct {
	cfg   coding.Config
	b     int
	vmem  []float32
	g     []float32
	fired []uint32

	perm     []int32   // neuron -> storage cell; nil = identity
	biasPerm []float32 // bias in storage order (nil when perm is nil or bias-free)
	mask     []uint64  // per cell: fired-lane bits (fused fire rows / masked emission)
	occ      []uint64  // row-occupancy summary: bit c&63 of occ[c>>6] = (mask[c] != 0)
	pay      []float32 // per (cell, lane): staged payloads (burst schemes)
}

func newBatchPopulation32(n, b int, cfg coding.Config) *batchPopulation32 {
	p := &batchPopulation32{
		cfg:   cfg,
		b:     b,
		vmem:  make([]float32, n*b),
		g:     make([]float32, n*b),
		fired: make([]uint32, n*b),
		mask:  make([]uint64, n),
		occ:   make([]uint64, (n+63)/64),
	}
	if cfg.UsesBurstState() {
		p.pay = make([]float32, n*b)
	}
	p.resetState()
	return p
}

func (p *batchPopulation32) setPerm(perm []int32, bias32 []float32) {
	n := len(p.vmem) / p.b
	p.perm = perm
	if bias32 != nil {
		p.biasPerm = make([]float32, n)
		for i, cell := range perm {
			p.biasPerm[cell] = bias32[i]
		}
	}
}

func (p *batchPopulation32) resetState() {
	for i := range p.vmem {
		p.vmem[i] = 0
		p.g[i] = 1
		p.fired[i] = 0
	}
}

func (p *batchPopulation32) retire(dst, src int) {
	for base := 0; base < len(p.vmem); base += p.b {
		p.vmem[base+dst] = p.vmem[base+src]
		p.g[base+dst] = p.g[base+src]
		p.fired[base+dst] = p.fired[base+src]
	}
}

// fire runs the threshold test for every (neuron, active lane) pair at
// time t. The leak-free non-burst sweeps are the kernels' fused
// compare+subtract+bitmask rows; burst and leaky paths mirror the float64
// plane's loops in float32 arithmetic.
func (p *batchPopulation32) fire(t, lanes int, bias []float32, biasScale float64, out *coding.BatchEvents32) {
	out.Reset()
	if p.perm == nil {
		p.fireDirect(t, lanes, bias, biasScale, out)
		return
	}
	p.fireMasked(t, lanes, biasScale, out)
}

func (p *batchPopulation32) fireDirect(t, lanes int, bias []float32, biasScale float64, out *coding.BatchEvents32) {
	n := len(p.vmem) / p.b
	useBurst := p.cfg.UsesBurstState()
	leak := p.cfg.Leak
	b := p.b
	bsc := float32(biasScale)
	if !useBurst && leak == 0 {
		// Pure-IF, scheme-constant threshold: one fused kernel row per
		// neuron, columns emitted straight from the lane bitmask.
		th := float32(p.cfg.Threshold(t, 1))
		for i := 0; i < n; i++ {
			vrow := p.vmem[i*b : i*b+lanes]
			var m uint64
			if bias == nil {
				m = kernels.FireRow(vrow, th)
			} else {
				m = kernels.FireRowBias(vrow, bias[i]*bsc, th)
			}
			if m != 0 {
				out.AddMask(int32(i), m, th)
			}
		}
		return
	}
	if useBurst && leak == 0 {
		// Pure-IF burst (the paper's configuration): one fused kernel call
		// runs the whole population's Eq. 8/9 rows over the full stripe
		// width (retired lanes' state is stepped but never read — their
		// fire bits are stripped by keepBits here), and payloads come out
		// of the staged pay rows at each mask's set bits.
		beta, vth := float32(p.cfg.Beta), float32(p.cfg.VTh)
		kernels.FireRowsBurst(p.vmem, p.g, p.pay, p.fired, p.mask, p.occ, n, b, bias, bsc, beta, vth)
		keepBits := laneMask(lanes)
		for w, ow := range p.occ {
			for ; ow != 0; ow &= ow - 1 {
				i := w<<6 + bits.TrailingZeros64(ow)
				m := p.mask[i] & keepBits
				if m == 0 {
					continue
				}
				payrow := p.pay[i*b:]
				for ; m != 0; m &= m - 1 {
					s := bits.TrailingZeros64(m)
					out.Add(int32(s), payrow[s])
				}
				out.Commit(int32(i))
			}
		}
		return
	}
	keep := float32(1 - leak)
	var thConst float32
	if !useBurst {
		thConst = float32(p.cfg.Threshold(t, 1))
	}
	beta, vth := float32(p.cfg.Beta), float32(p.cfg.VTh)
	for i := 0; i < n; i++ {
		base := i * b
		for s := 0; s < lanes; s++ {
			v := p.vmem[base+s]
			if bias != nil {
				v += bias[i] * bsc
			}
			if leak > 0 {
				v *= keep
			}
			th := thConst
			if useBurst {
				g := float32(1)
				if p.fired[base+s] != 0 {
					g = beta * p.g[base+s]
				}
				p.g[base+s] = g
				th = g * vth
			}
			if v >= th {
				v -= th
				p.fired[base+s] = ^uint32(0)
				out.Add(int32(s), th)
			} else {
				p.fired[base+s] = 0
			}
			p.vmem[base+s] = v
		}
		out.Commit(int32(i))
	}
}

func (p *batchPopulation32) fireMasked(t, lanes int, biasScale float64, out *coding.BatchEvents32) {
	n := len(p.vmem) / p.b
	useBurst := p.cfg.UsesBurstState()
	leak := p.cfg.Leak
	b := p.b
	bias := p.biasPerm
	mask := p.mask
	bsc := float32(biasScale)
	switch {
	case !useBurst && leak == 0:
		th := float32(p.cfg.Threshold(t, 1))
		occ := p.occ
		for i := range occ {
			occ[i] = 0
		}
		for c := 0; c < n; c++ {
			vrow := p.vmem[c*b : c*b+lanes]
			var m uint64
			if bias == nil {
				m = kernels.FireRow(vrow, th)
			} else {
				m = kernels.FireRowBias(vrow, bias[c]*bsc, th)
			}
			if m != 0 {
				mask[c] = m
				occ[c>>6] |= 1 << (uint(c) & 63)
			}
		}
		// Constant threshold: every payload is th, no staging needed.
		for i, cell := range p.perm {
			if occ[cell>>6]>>(uint(cell)&63)&1 != 0 {
				out.AddMask(int32(i), mask[cell], th)
			}
		}
	case useBurst && leak == 0:
		beta, vth := float32(p.cfg.Beta), float32(p.cfg.VTh)
		kernels.FireRowsBurst(p.vmem, p.g, p.pay, p.fired, mask, p.occ, n, b, bias, bsc, beta, vth)
		p.emitMasked(lanes, out)
	default:
		keep := float32(1 - leak)
		var thConst float32
		if !useBurst {
			thConst = float32(p.cfg.Threshold(t, 1))
		}
		beta, vth := float32(p.cfg.Beta), float32(p.cfg.VTh)
		occ := p.occ
		for i := range occ {
			occ[i] = 0
		}
		pay := p.pay
		for c := 0; c < n; c++ {
			base := c * b
			var m uint64
			for s := 0; s < lanes; s++ {
				v := p.vmem[base+s]
				if bias != nil {
					v += bias[c] * bsc
				}
				if leak > 0 {
					v *= keep
				}
				th := thConst
				if useBurst {
					g := float32(1)
					if p.fired[base+s] != 0 {
						g = beta * p.g[base+s]
					}
					p.g[base+s] = g
					th = g * vth
				}
				if v >= th {
					v -= th
					p.fired[base+s] = ^uint32(0)
					m |= 1 << uint(s)
					if pay != nil {
						pay[base+s] = th
					}
				} else {
					p.fired[base+s] = 0
				}
				p.vmem[base+s] = v
			}
			if m != 0 {
				mask[c] = m
				occ[c>>6] |= 1 << (uint(c) & 63)
			}
		}
		if pay != nil {
			p.emitMasked(lanes, out)
		} else {
			for i, cell := range p.perm {
				if occ[cell>>6]>>(uint(cell)&63)&1 != 0 {
					out.AddMask(int32(i), mask[cell], thConst)
				}
			}
		}
	}
}

// emitMasked drains mask/pay into neuron-ordered columns. The emission
// order is a permutation of storage order, so the per-neuron mask read
// is a random access over the whole mask array; the occ summary (one
// bit per cell, L1-resident) answers "did this cell fire at all" first,
// and the mask word is only touched for cells that did. Retired lanes'
// bits (the fused burst kernel records full-stripe masks) are stripped
// by keepBits.
func (p *batchPopulation32) emitMasked(lanes int, out *coding.BatchEvents32) {
	b := p.b
	mask := p.mask
	occ := p.occ
	pay := p.pay
	keepBits := laneMask(lanes)
	for i, cell := range p.perm {
		if occ[cell>>6]>>(uint(cell)&63)&1 == 0 {
			continue
		}
		m := mask[cell] & keepBits
		if m == 0 {
			continue
		}
		base := int(cell) * b
		for ; m != 0; m &= m - 1 {
			s := bits.TrailingZeros64(m)
			out.Add(int32(s), pay[base+s])
		}
		out.Commit(int32(i))
	}
}

// laneMask returns the bitmask covering the first lanes bits.
func laneMask(lanes int) uint64 {
	if lanes >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(lanes) - 1
}

func uniformPayload32(p []float32) bool {
	p0 := p[0]
	for _, v := range p[1:] {
		if v != p0 {
			return false
		}
	}
	return true
}

// densify spreads a column's payloads into the lane-dense vector pv
// (payload at each spiking lane's slot, zero elsewhere) — the shape
// kernels.AxpyBlockVec consumes.
func densify(pv []float32, colLanes []int32, pays []float32) {
	for s := range pv {
		pv[s] = 0
	}
	for j, lane := range colLanes {
		pv[lane] = pays[j]
	}
}

// scatterRowColumn32 applies one float32 weight row to one event column
// of a lane-striped accumulator laid out dst[o*b+lane] — the float32 twin
// of scatterRowColumn. A full uniform column is a single AxpyBlock; any
// other multi-lane column is densified into the pv scratch (len ≥ lanes)
// and runs as one AxpyBlockVec, so even per-lane burst payloads scatter
// as packed stripes. A spiking lane receives the same rounded
// multiply-add whatever the column shape, so its trajectory never
// depends on its batchmates (absent lanes accumulate only exact ±0s —
// see AxpyBlockVec).
func scatterRowColumn32(dst, row []float32, b, lanes int, colLanes []int32, pays, pv []float32) {
	switch {
	case len(colLanes) == 1:
		kernels.AxpyLane(dst, row, pays[0], b, int(colLanes[0]))
	case len(colLanes) == lanes && uniformPayload32(pays):
		kernels.AxpyBlock(dst, row, pays[0], b, lanes)
	default:
		densify(pv[:lanes], colLanes, pays)
		kernels.AxpyBlockVec(dst, row, pv, b, lanes)
	}
}

// BatchDense32 is the float32 B-lane variant of SpikingDense, sharing its
// WT32 copy.
type BatchDense32 struct {
	src *SpikingDense
	pop *batchPopulation32
	pv  []float32 // densified-column scratch
	out coding.BatchEvents32
}

// NewBatch32 implements BatchableLayer32.
func (l *SpikingDense) NewBatch32(b int) BatchLayer32 {
	d := &BatchDense32{src: l, pop: newBatchPopulation32(l.Out, b, l.pop.cfg), pv: make([]float32, b)}
	d.out.Grow(l.Out, l.Out*b)
	return d
}

// Name implements BatchLayer32.
func (l *BatchDense32) Name() string { return "sdense" }

// NumNeurons implements BatchLayer32.
func (l *BatchDense32) NumNeurons() int { return l.src.Out }

// Reset implements BatchLayer32.
func (l *BatchDense32) Reset() { l.pop.resetState() }

// Retire implements BatchLayer32.
func (l *BatchDense32) Retire(dst, src int) { l.pop.retire(dst, src) }

// Step implements BatchLayer32.
func (l *BatchDense32) Step(t int, biasScale float64, lanes int, in *coding.BatchEvents32) *coding.BatchEvents32 {
	vmem := l.pop.vmem
	b := l.pop.b
	outN := l.src.Out
	for c := range in.Index {
		s, e := in.Start[c], in.Start[c+1]
		row := l.src.WT32[int(in.Index[c])*outN : int(in.Index[c]+1)*outN]
		scatterRowColumn32(vmem, row, b, lanes, in.Lane[s:e], in.Payload[s:e], l.pv)
	}
	l.pop.fire(t, lanes, l.src.Bias32, biasScale, &l.out)
	return &l.out
}

// BatchConv32 is the float32 B-lane variant of SpikingConv: base-major
// population storage (one scatter tap = one contiguous OutC×B float32
// block, fed straight to kernels.AxpyBlock) over the shared scatter table
// and WScatter32 kernel copy.
type BatchConv32 struct {
	src *SpikingConv
	pop *batchPopulation32
	pv  []float32 // densified-column scratch
	out coding.BatchEvents32
}

// NewBatch32 implements BatchableLayer32.
func (l *SpikingConv) NewBatch32(b int) BatchLayer32 {
	n := len(l.pop.vmem)
	c := &BatchConv32{src: l, pop: newBatchPopulation32(n, b, l.pop.cfg), pv: make([]float32, b)}
	outC, outHW := l.Geom.OutC, l.outHW
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i%outHW*outC + i/outHW)
	}
	c.pop.setPerm(perm, l.bias32)
	c.out.Grow(n, n*b)
	return c
}

// Name implements BatchLayer32.
func (l *BatchConv32) Name() string { return "sconv" }

// NumNeurons implements BatchLayer32.
func (l *BatchConv32) NumNeurons() int { return len(l.src.pop.vmem) }

// Reset implements BatchLayer32.
func (l *BatchConv32) Reset() { l.pop.resetState() }

// Retire implements BatchLayer32.
func (l *BatchConv32) Retire(dst, src int) { l.pop.retire(dst, src) }

// Step implements BatchLayer32: per column the scatter-table walk
// happens once, inside the kernel layer. A multi-lane column (uniform or
// not) is densified into the full-width pv scratch — zeros at absent and
// retired lanes, whose ±0 accumulation is exact — and the whole tap list
// runs as one fused kernels.ConvScatterVec call (the payload vector
// pinned in registers across every tap at the serving stripe width);
// conv taps are short, so the per-tap call overhead this removes is
// comparable to the taps' own arithmetic. A single-lane column takes the
// strided scalar walk.
func (l *BatchConv32) Step(t int, biasScale float64, lanes int, in *coding.BatchEvents32) *coding.BatchEvents32 {
	vmem := l.pop.vmem
	b := l.pop.b
	outC := l.src.Geom.OutC
	outCb := outC * b
	for c := range in.Index {
		idx := int(in.Index[c])
		s, e := in.Start[c], in.Start[c+1]
		colLanes := in.Lane[s:e]
		pays := in.Payload[s:e]
		taps := l.src.taps[l.src.tapStart[idx]:l.src.tapStart[idx+1]]
		if len(colLanes) == 1 {
			p, lane := pays[0], int(colLanes[0])
			for _, tp := range taps {
				kernels.AxpyLane(vmem[int(tp.Base)*outCb:int(tp.Base+1)*outCb],
					l.src.WScatter32[tp.WOff:int(tp.WOff)+outC], p, b, lane)
			}
			continue
		}
		densify(l.pv, colLanes, pays)
		kernels.ConvScatterVec(vmem, l.src.WScatter32, taps, outC, b, l.pv)
	}
	l.pop.fire(t, lanes, l.src.bias32, biasScale, &l.out)
	return &l.out
}

// BatchAvgPool32 is the float32 B-lane variant of SpikingAvgPool.
type BatchAvgPool32 struct {
	src *SpikingAvgPool
	pop *batchPopulation32
	inv float32
	out coding.BatchEvents32
}

// NewBatch32 implements BatchableLayer32.
func (l *SpikingAvgPool) NewBatch32(b int) BatchLayer32 {
	n := len(l.pop.vmem)
	p := &BatchAvgPool32{src: l, pop: newBatchPopulation32(n, b, l.pop.cfg), inv: float32(l.inv)}
	p.out.Grow(n, n*b)
	return p
}

// Name implements BatchLayer32.
func (l *BatchAvgPool32) Name() string { return "savgpool" }

// NumNeurons implements BatchLayer32.
func (l *BatchAvgPool32) NumNeurons() int { return len(l.src.pop.vmem) }

// Reset implements BatchLayer32.
func (l *BatchAvgPool32) Reset() { l.pop.resetState() }

// Retire implements BatchLayer32.
func (l *BatchAvgPool32) Retire(dst, src int) { l.pop.retire(dst, src) }

// Step implements BatchLayer32.
func (l *BatchAvgPool32) Step(t int, _ float64, lanes int, in *coding.BatchEvents32) *coding.BatchEvents32 {
	vmem := l.pop.vmem
	b := l.pop.b
	inv := l.inv
	for c := range in.Index {
		s, e := in.Start[c], in.Start[c+1]
		vb := int(l.src.outIdx[in.Index[c]]) * b
		for k := s; k < e; k++ {
			wp := in.Payload[k] * inv
			vmem[vb+int(in.Lane[k])] += wp
		}
	}
	l.pop.fire(t, lanes, nil, 0, &l.out)
	return &l.out
}

// BatchMaxPool32 is the float32 B-lane variant of the max-pooling gate.
type BatchMaxPool32 struct {
	src *SpikingMaxPool
	b   int

	cum     []float32 // cum[i*b+lane]
	lastPay []float32
	seen    []int
	stamp   int

	winStamp []int
	touched  []int32
	out      coding.BatchEvents32
}

// NewBatch32 implements BatchableLayer32.
func (l *SpikingMaxPool) NewBatch32(b int) BatchLayer32 {
	nIn := l.C * l.H * l.W
	nWin := len(l.winStart) - 1
	m := &BatchMaxPool32{
		src: l, b: b,
		cum:      make([]float32, nIn*b),
		lastPay:  make([]float32, nIn*b),
		seen:     make([]int, nIn*b),
		winStamp: make([]int, nWin),
		touched:  make([]int32, 0, nWin),
	}
	m.out.Grow(nWin, nWin*b)
	return m
}

// Name implements BatchLayer32.
func (l *BatchMaxPool32) Name() string { return "smaxpool" }

// NumNeurons implements BatchLayer32.
func (l *BatchMaxPool32) NumNeurons() int { return 0 }

// Reset implements BatchLayer32.
func (l *BatchMaxPool32) Reset() {
	for i := range l.cum {
		l.cum[i] = 0
	}
}

// Retire implements BatchLayer32.
func (l *BatchMaxPool32) Retire(dst, src int) {
	for base := 0; base < len(l.cum); base += l.b {
		l.cum[base+dst] = l.cum[base+src]
		l.lastPay[base+dst] = l.lastPay[base+src]
		l.seen[base+dst] = l.seen[base+src]
	}
}

// winnerLane applies the winner rule within one lane over float32
// cumulative payloads.
func (l *BatchMaxPool32) winnerLane(members []int32, s int) int {
	b := l.b
	best := l.cum[int(members[0])*b+s]
	for _, idx := range members[1:] {
		if c := l.cum[int(idx)*b+s]; c > best {
			best = c
		}
	}
	for _, idx := range members {
		if l.cum[int(idx)*b+s] == best && l.seen[int(idx)*b+s] == l.stamp {
			return int(idx)
		}
	}
	return -1
}

// Step implements BatchLayer32.
func (l *BatchMaxPool32) Step(t int, _ float64, lanes int, in *coding.BatchEvents32) *coding.BatchEvents32 {
	l.stamp++
	l.touched = l.touched[:0]
	b := l.b
	for c := range in.Index {
		idx := int(in.Index[c])
		s, e := in.Start[c], in.Start[c+1]
		base := idx * b
		for k := s; k < e; k++ {
			lane := int(in.Lane[k])
			l.cum[base+lane] += in.Payload[k]
			l.seen[base+lane] = l.stamp
			l.lastPay[base+lane] = in.Payload[k]
		}
		if w := l.src.winOf[idx]; l.winStamp[w] != l.stamp {
			l.winStamp[w] = l.stamp
			l.touched = insertSorted(l.touched, w)
		}
	}
	l.out.Reset()
	for _, w := range l.touched {
		members := l.src.winMembers[l.src.winStart[w]:l.src.winStart[w+1]]
		for s := 0; s < lanes; s++ {
			if win := l.winnerLane(members, s); win >= 0 {
				l.out.Add(int32(s), l.lastPay[win*b+s])
			}
		}
		l.out.Commit(w)
	}
	return &l.out
}

// BatchOutput32 is the float32 B-lane readout.
type BatchOutput32 struct {
	src  *OutputLayer
	b    int
	pot  []float32 // pot[o*b+lane]
	pv   []float32 // densified-column scratch
	amax []float32 // PredictedAll running-max scratch
	aidx []int32   // PredictedAll running-argmax scratch
}

// NewBatch32 returns the float32 batched readout.
func (l *OutputLayer) NewBatch32(b int) *BatchOutput32 {
	return &BatchOutput32{
		src: l, b: b,
		pot:  make([]float32, l.Out*b),
		pv:   make([]float32, b),
		amax: make([]float32, b),
		aidx: make([]int32, b),
	}
}

// Reset clears every lane's accumulators.
func (l *BatchOutput32) Reset() {
	for i := range l.pot {
		l.pot[i] = 0
	}
}

// Retire copies slot src's scores over slot dst.
func (l *BatchOutput32) Retire(dst, src int) {
	for base := 0; base < len(l.pot); base += l.b {
		l.pot[base+dst] = l.pot[base+src]
	}
}

// Step integrates the batch's columns plus the rate-matched bias current
// in float32 (events then bias, like the float64 readout).
func (l *BatchOutput32) Step(biasScale float64, lanes int, in *coding.BatchEvents32) {
	pot := l.pot
	b := l.b
	outN := l.src.Out
	for c := range in.Index {
		s, e := in.Start[c], in.Start[c+1]
		row := l.src.WT32[int(in.Index[c])*outN : int(in.Index[c]+1)*outN]
		scatterRowColumn32(pot, row, b, lanes, in.Lane[s:e], in.Payload[s:e], l.pv)
	}
	bsc := float32(biasScale)
	for o, bv := range l.src.Bias32 {
		kernels.ScaleAdd(pot[o*b:o*b+lanes], bv*bsc)
	}
}

// Classes returns the readout width.
func (l *BatchOutput32) Classes() int { return l.src.Out }

// Predicted returns slot s's current argmax with the first-wins tie rule.
func (l *BatchOutput32) Predicted(s int) int {
	best := 0
	bestV := l.pot[s]
	for o := 1; o < l.src.Out; o++ {
		if v := l.pot[o*l.b+s]; v > bestV {
			best, bestV = o, v
		}
	}
	return best
}

// PredictedAll fills dst[:lanes] with every active slot's argmax in one
// lane-major sweep: class row o is merged into a running per-lane
// maximum by kernels.SelectMaxRow (one packed compare+blend per 8
// lanes), so the whole batch's argmax costs Out contiguous row passes
// instead of lanes strided walks. Replacement is strictly-greater, so
// the first-wins tie rule matches Predicted exactly.
func (l *BatchOutput32) PredictedAll(lanes int, dst []int) []int {
	dst = dst[:lanes]
	best := l.amax[:lanes]
	idx := l.aidx[:lanes]
	copy(best, l.pot[:lanes])
	for s := range idx {
		idx[s] = 0
	}
	for o := 1; o < l.src.Out; o++ {
		kernels.SelectMaxRow(best, l.pot[o*l.b:o*l.b+lanes], idx, int32(o), lanes)
	}
	for s, v := range idx {
		dst[s] = int(v)
	}
	return dst
}

// PotentialsInto copies slot s's class scores into dst (len ≥ classes),
// widened to float64, and returns the filled prefix.
func (l *BatchOutput32) PotentialsInto(s int, dst []float64) []float64 {
	dst = dst[:l.src.Out]
	for o := range dst {
		dst[o] = float64(l.pot[o*l.b+s])
	}
	return dst
}

// BatchProbe32 observes the float32 batch columns a stage emitted at t.
type BatchProbe32 func(t int, events *coding.BatchEvents32)

// BatchNetwork32 is the float32 lockstep batch simulator built over an
// existing Network: float32 weight copies (shared with every clone),
// B-striped float32 state, kernel-backed inner loops.
type BatchNetwork32 struct {
	Encoder coding.BatchEncoder
	Layers  []BatchLayer32
	Output  *BatchOutput32

	b       int
	nActive int
	laneIDs []int

	encOut   coding.BatchEvents32
	inCount  []int
	hidCount []int
	probes   map[int]BatchProbe32
}

// NewBatchNetwork32 builds a float32 B-lane lockstep simulator from net,
// sharing its float32 weight copies and precomputed tables. Like
// NewBatchNetwork it fails if the encoder or a layer does not support
// batching.
func NewBatchNetwork32(net *Network, b int) (*BatchNetwork32, error) {
	if b < 1 || b > MaxBatchLanes {
		return nil, fmt.Errorf("snn: batch size must be in [1,%d], got %d", MaxBatchLanes, b)
	}
	enc, ok := net.Encoder.(coding.BatchableEncoder)
	if !ok {
		return nil, fmt.Errorf("snn: encoder %T does not support batching", net.Encoder)
	}
	bn := &BatchNetwork32{
		Encoder:  enc.NewBatch(b),
		Layers:   make([]BatchLayer32, len(net.Layers)),
		Output:   net.Output.NewBatch32(b),
		b:        b,
		laneIDs:  make([]int, b),
		inCount:  make([]int, b),
		hidCount: make([]int, b),
	}
	for i, l := range net.Layers {
		bl, ok := l.(BatchableLayer32)
		if !ok {
			return nil, fmt.Errorf("snn: layer %d (%s) does not support float32 batching", i, l.Name())
		}
		bn.Layers[i] = bl.NewBatch32(b)
	}
	size := bn.Encoder.Size()
	bn.encOut.Grow(size, size*b)
	return bn, nil
}

// B returns the lane capacity.
func (bn *BatchNetwork32) B() int { return bn.b }

// NumActive returns the number of live lanes.
func (bn *BatchNetwork32) NumActive() int { return bn.nActive }

// LaneID returns the caller lane id occupying slot s.
func (bn *BatchNetwork32) LaneID(s int) int { return bn.laneIDs[s] }

// CountsInputSpikes implements Lockstep.
func (bn *BatchNetwork32) CountsInputSpikes() bool { return bn.Encoder.CountsAsSpikes() }

// Classes implements Lockstep.
func (bn *BatchNetwork32) Classes() int { return bn.Output.Classes() }

// Predicted implements Lockstep.
func (bn *BatchNetwork32) Predicted(slot int) int { return bn.Output.Predicted(slot) }

// PredictedAll implements Lockstep.
func (bn *BatchNetwork32) PredictedAll(dst []int) []int {
	return bn.Output.PredictedAll(bn.nActive, dst)
}

// PotentialsInto implements Lockstep.
func (bn *BatchNetwork32) PotentialsInto(slot int, dst []float64) []float64 {
	return bn.Output.PotentialsInto(slot, dst)
}

// Kernel implements Lockstep: the linked-in float32 kernel variant.
func (bn *BatchNetwork32) Kernel() string { return kernels.Kind() }

// AttachProbe registers a float32 batch-column observer for a layer
// index; -1 observes the encoder.
func (bn *BatchNetwork32) AttachProbe(layer int, p BatchProbe32) {
	if layer < -1 || layer >= len(bn.Layers) {
		panic(fmt.Sprintf("snn: batch probe index %d out of range", layer))
	}
	if bn.probes == nil {
		bn.probes = map[int]BatchProbe32{}
	}
	bn.probes[layer] = p
}

// Reset loads a new batch of images into lanes 0..len(images)-1 and
// clears all neuron state. len(images) must be in [1, B].
func (bn *BatchNetwork32) Reset(images [][]float64) {
	if len(images) == 0 || len(images) > bn.b {
		panic(fmt.Sprintf("snn: batch of %d images exceeds [1,%d]", len(images), bn.b))
	}
	bn.nActive = len(images)
	for s, img := range images {
		bn.Encoder.SetLane(s, img)
		bn.laneIDs[s] = s
	}
	for _, l := range bn.Layers {
		l.Reset()
	}
	bn.Output.Reset()
}

// Retire removes slot s from the batch by physical compaction, exactly
// like BatchNetwork.Retire.
func (bn *BatchNetwork32) Retire(s int) {
	if s < 0 || s >= bn.nActive {
		panic(fmt.Sprintf("snn: retire slot %d out of active range [0,%d)", s, bn.nActive))
	}
	last := bn.nActive - 1
	if s != last {
		bn.Encoder.Retire(s, last)
		for _, l := range bn.Layers {
			l.Retire(s, last)
		}
		bn.Output.Retire(s, last)
		bn.laneIDs[s] = bn.laneIDs[last]
	}
	bn.nActive--
}

func countLanes32(counts []int, ev *coding.BatchEvents32) {
	for _, lane := range ev.Lane {
		counts[lane]++
	}
}

// Step advances every active lane by one time step.
func (bn *BatchNetwork32) Step(t int) BatchStepStats {
	lanes := bn.nActive
	bn.Encoder.Step32(t, lanes, &bn.encOut)
	if p := bn.probes[-1]; p != nil {
		p(t, &bn.encOut)
	}
	biasScale := bn.Encoder.BiasScale(t)
	for s := 0; s < lanes; s++ {
		bn.inCount[s] = 0
		bn.hidCount[s] = 0
	}
	countLanes32(bn.inCount, &bn.encOut)
	ev := &bn.encOut
	for li, l := range bn.Layers {
		ev = l.Step(t, biasScale, lanes, ev)
		if p := bn.probes[li]; p != nil {
			p(t, ev)
		}
		countLanes32(bn.hidCount, ev)
	}
	bn.Output.Step(biasScale, lanes, ev)
	return BatchStepStats{
		InputEvents:  bn.inCount[:lanes],
		HiddenSpikes: bn.hidCount[:lanes],
	}
}
