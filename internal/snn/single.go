package snn

import "burstsnn/internal/coding"

// SingleNeuron is a standalone integrate-and-fire neuron with the full
// coding dynamics, used for the paper's Fig. 1 illustration and for unit
// experiments on neuron behaviour without building a network.
type SingleNeuron struct {
	pop *population
	t   int
}

// NewSingleNeuron creates a neuron under the given hidden-layer coding.
func NewSingleNeuron(cfg coding.Config) *SingleNeuron {
	return &SingleNeuron{pop: newPopulation(1, cfg)}
}

// Step injects the input current for one time step and reports whether
// the neuron fired and with what payload (0 when silent).
func (n *SingleNeuron) Step(current float64) (fired bool, payload float64) {
	n.pop.vmem[0] += current
	events := n.pop.fire(n.t, nil, 0)
	n.t++
	if len(events) == 0 {
		return false, 0
	}
	return true, events[0].Payload
}

// Membrane returns the current membrane potential.
func (n *SingleNeuron) Membrane() float64 { return n.pop.vmem[0] }

// Reset restores the neuron to its initial state.
func (n *SingleNeuron) Reset() {
	n.pop.resetState()
	n.t = 0
}
