package snn

import (
	"fmt"

	"burstsnn/internal/coding"
)

// SpikingDense is a fully connected spiking layer: in events scatter
// through the weight matrix into membrane potentials, then the population
// fires under its coding dynamics.
type SpikingDense struct {
	In, Out int
	// WT is the transposed weight matrix (In × Out) so one input event
	// touches a contiguous row — the event-driven hot path.
	WT   []float64
	Bias []float64

	pop *population
	z   []float64
}

// NewSpikingDense builds the layer from a row-major Out×In weight matrix.
func NewSpikingDense(w []float64, bias []float64, in, out int, cfg coding.Config) *SpikingDense {
	if len(w) != in*out || len(bias) != out {
		panic(fmt.Sprintf("snn: dense weight dims %d/%d do not match %dx%d", len(w), len(bias), out, in))
	}
	wt := make([]float64, in*out)
	for o := 0; o < out; o++ {
		for i := 0; i < in; i++ {
			wt[i*out+o] = w[o*in+i]
		}
	}
	return &SpikingDense{
		In: in, Out: out, WT: wt, Bias: append([]float64(nil), bias...),
		pop: newPopulation(out, cfg),
		z:   make([]float64, out),
	}
}

// Name implements Layer.
func (l *SpikingDense) Name() string { return "sdense" }

// NumNeurons implements Layer.
func (l *SpikingDense) NumNeurons() int { return l.Out }

// Reset implements Layer.
func (l *SpikingDense) Reset() { l.pop.resetState() }

// Step implements Layer.
func (l *SpikingDense) Step(t int, biasScale float64, in []coding.Event) []coding.Event {
	z := l.z
	// Bias acts as an input current whose per-step magnitude follows the
	// input encoder's information rate (see coding.InputEncoder.BiasScale).
	for o, b := range l.Bias {
		z[o] = b * biasScale
	}
	for _, ev := range in {
		row := l.WT[ev.Index*l.Out : (ev.Index+1)*l.Out]
		p := ev.Payload
		for o, w := range row {
			z[o] += w * p
		}
	}
	for o, v := range z {
		l.pop.vmem[o] += v
	}
	return l.pop.fire(t)
}

// Potential returns neuron i's membrane potential (test hook).
func (l *SpikingDense) Potential(i int) float64 { return l.pop.vmem[i] }

// ConvGeom describes a spiking convolution geometry (same semantics as
// tensor.ConvSpec, duplicated here to keep the event-driven layout local).
type ConvGeom struct {
	InC, InH, InW int
	OutC          int
	K             int // square kernel
	Stride, Pad   int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.K)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.K)/g.Stride + 1 }

// SpikingConv is a 2-D convolution spiking layer. An input event at
// (ic, iy, ix) scatters its kernel taps into the affected output membrane
// positions; weights are stored as [ic][kh][kw][oc] so the innermost
// output-channel loop is contiguous.
type SpikingConv struct {
	Geom ConvGeom
	// WScatter is the re-laid-out kernel: index ((ic*K+kh)*K+kw)*OutC+oc.
	WScatter []float64
	Bias     []float64 // per output channel

	pop  *population
	bias []float64 // pre-expanded per-neuron bias
}

// NewSpikingConv builds the layer from a row-major OutC×(InC*K*K) weight
// matrix (the dnn.Conv2D layout).
func NewSpikingConv(w []float64, bias []float64, geom ConvGeom, cfg coding.Config) *SpikingConv {
	k, inC, outC := geom.K, geom.InC, geom.OutC
	if len(w) != outC*inC*k*k || len(bias) != outC {
		panic(fmt.Sprintf("snn: conv weight dims %d/%d do not match geom %+v", len(w), len(bias), geom))
	}
	ws := make([]float64, len(w))
	for oc := 0; oc < outC; oc++ {
		for ic := 0; ic < inC; ic++ {
			for kh := 0; kh < k; kh++ {
				for kw := 0; kw < k; kw++ {
					src := ((oc*inC+ic)*k+kh)*k + kw
					dst := ((ic*k+kh)*k+kw)*outC + oc
					ws[dst] = w[src]
				}
			}
		}
	}
	n := outC * geom.OutH() * geom.OutW()
	l := &SpikingConv{
		Geom: geom, WScatter: ws, Bias: append([]float64(nil), bias...),
		pop:  newPopulation(n, cfg),
		bias: make([]float64, n),
	}
	outHW := geom.OutH() * geom.OutW()
	for oc := 0; oc < outC; oc++ {
		for i := 0; i < outHW; i++ {
			l.bias[oc*outHW+i] = bias[oc]
		}
	}
	return l
}

// Name implements Layer.
func (l *SpikingConv) Name() string { return "sconv" }

// NumNeurons implements Layer.
func (l *SpikingConv) NumNeurons() int { return len(l.pop.vmem) }

// Reset implements Layer.
func (l *SpikingConv) Reset() { l.pop.resetState() }

// Step implements Layer.
func (l *SpikingConv) Step(t int, biasScale float64, in []coding.Event) []coding.Event {
	g := l.Geom
	outH, outW := g.OutH(), g.OutW()
	outHW := outH * outW
	vmem := l.pop.vmem
	for i, b := range l.bias {
		vmem[i] += b * biasScale
	}
	for _, ev := range in {
		ic := ev.Index / (g.InH * g.InW)
		rem := ev.Index % (g.InH * g.InW)
		iy, ix := rem/g.InW, rem%g.InW
		p := ev.Payload
		for kh := 0; kh < g.K; kh++ {
			oyNum := iy + g.Pad - kh
			if oyNum < 0 || oyNum%g.Stride != 0 {
				continue
			}
			oy := oyNum / g.Stride
			if oy >= outH {
				continue
			}
			for kw := 0; kw < g.K; kw++ {
				oxNum := ix + g.Pad - kw
				if oxNum < 0 || oxNum%g.Stride != 0 {
					continue
				}
				ox := oxNum / g.Stride
				if ox >= outW {
					continue
				}
				wRow := l.WScatter[((ic*g.K+kh)*g.K+kw)*g.OutC : ((ic*g.K+kh)*g.K+kw+1)*g.OutC]
				base := oy*outW + ox
				for oc, w := range wRow {
					vmem[oc*outHW+base] += w * p
				}
			}
		}
	}
	return l.pop.fire(t)
}

// SpikingAvgPool is average pooling realized as an IF population: each
// output neuron integrates 1/window² of every input event in its window
// and fires under the hidden-layer coding dynamics. Pooling neurons have
// no bias.
type SpikingAvgPool struct {
	C, H, W, Window int

	pop *population
	inv float64
}

// NewSpikingAvgPool constructs the pooling layer.
func NewSpikingAvgPool(c, h, w, window int, cfg coding.Config) *SpikingAvgPool {
	if h%window != 0 || w%window != 0 {
		panic(fmt.Sprintf("snn: pool window %d does not divide %dx%d", window, h, w))
	}
	outH, outW := h/window, w/window
	return &SpikingAvgPool{
		C: c, H: h, W: w, Window: window,
		pop: newPopulation(c*outH*outW, cfg),
		inv: 1 / float64(window*window),
	}
}

// Name implements Layer.
func (l *SpikingAvgPool) Name() string { return "savgpool" }

// NumNeurons implements Layer.
func (l *SpikingAvgPool) NumNeurons() int { return len(l.pop.vmem) }

// Reset implements Layer.
func (l *SpikingAvgPool) Reset() { l.pop.resetState() }

// Step implements Layer.
func (l *SpikingAvgPool) Step(t int, _ float64, in []coding.Event) []coding.Event {
	outH, outW := l.H/l.Window, l.W/l.Window
	for _, ev := range in {
		c := ev.Index / (l.H * l.W)
		rem := ev.Index % (l.H * l.W)
		iy, ix := rem/l.W, rem%l.W
		oIdx := (c*outH+iy/l.Window)*outW + ix/l.Window
		l.pop.vmem[oIdx] += ev.Payload * l.inv
	}
	return l.pop.fire(t)
}

// SpikingMaxPool is the spiking max-pooling gate of Rueckauer et al.:
// each output position forwards the events of whichever input in its
// window currently has the largest cumulative payload. It has no neurons
// of its own (the winner's spikes pass through).
type SpikingMaxPool struct {
	C, H, W, Window int

	cum []float64 // cumulative payload per input neuron
	buf []coding.Event
}

// NewSpikingMaxPool constructs the gate.
func NewSpikingMaxPool(c, h, w, window int) *SpikingMaxPool {
	if h%window != 0 || w%window != 0 {
		panic(fmt.Sprintf("snn: pool window %d does not divide %dx%d", window, h, w))
	}
	return &SpikingMaxPool{C: c, H: h, W: w, Window: window, cum: make([]float64, c*h*w)}
}

// Name implements Layer.
func (l *SpikingMaxPool) Name() string { return "smaxpool" }

// NumNeurons implements Layer.
func (l *SpikingMaxPool) NumNeurons() int { return 0 }

// Reset implements Layer.
func (l *SpikingMaxPool) Reset() {
	for i := range l.cum {
		l.cum[i] = 0
	}
}

// Step implements Layer.
func (l *SpikingMaxPool) Step(t int, _ float64, in []coding.Event) []coding.Event {
	outH, outW := l.H/l.Window, l.W/l.Window
	l.buf = l.buf[:0]
	for _, ev := range in {
		l.cum[ev.Index] += ev.Payload
	}
	// Forward an event when its source is the window's cumulative max.
	for _, ev := range in {
		c := ev.Index / (l.H * l.W)
		rem := ev.Index % (l.H * l.W)
		iy, ix := rem/l.W, rem%l.W
		oy, ox := iy/l.Window, ix/l.Window
		best, bestIdx := -1.0, -1
		for ky := 0; ky < l.Window; ky++ {
			for kx := 0; kx < l.Window; kx++ {
				idx := (c*l.H+oy*l.Window+ky)*l.W + ox*l.Window + kx
				if l.cum[idx] > best {
					best, bestIdx = l.cum[idx], idx
				}
			}
		}
		if bestIdx == ev.Index {
			l.buf = append(l.buf, coding.Event{
				Index:   (c*outH+oy)*outW + ox,
				Payload: ev.Payload,
			})
		}
	}
	return l.buf
}

// OutputLayer is the readout: a dense weight matrix whose neurons
// accumulate membrane potential but never fire. Class scores are the
// accumulated potentials, the standard decoding for converted SNNs.
type OutputLayer struct {
	In, Out int
	WT      []float64
	Bias    []float64

	pot []float64
}

// NewOutputLayer builds the readout from a row-major Out×In matrix.
func NewOutputLayer(w []float64, bias []float64, in, out int) *OutputLayer {
	if len(w) != in*out || len(bias) != out {
		panic(fmt.Sprintf("snn: output weight dims %d/%d do not match %dx%d", len(w), len(bias), out, in))
	}
	wt := make([]float64, in*out)
	for o := 0; o < out; o++ {
		for i := 0; i < in; i++ {
			wt[i*out+o] = w[o*in+i]
		}
	}
	return &OutputLayer{In: in, Out: out, WT: wt, Bias: append([]float64(nil), bias...), pot: make([]float64, out)}
}

// NumNeurons returns the readout population size.
func (l *OutputLayer) NumNeurons() int { return l.Out }

// Reset clears the accumulators.
func (l *OutputLayer) Reset() {
	for i := range l.pot {
		l.pot[i] = 0
	}
}

// Step integrates the incoming events plus the rate-matched bias current.
func (l *OutputLayer) Step(_ int, biasScale float64, in []coding.Event) {
	for o, b := range l.Bias {
		l.pot[o] += b * biasScale
	}
	for _, ev := range in {
		row := l.WT[ev.Index*l.Out : (ev.Index+1)*l.Out]
		p := ev.Payload
		for o, w := range row {
			l.pot[o] += w * p
		}
	}
}

// Potentials returns the accumulated class scores (live slice; callers
// must not mutate).
func (l *OutputLayer) Potentials() []float64 { return l.pot }
