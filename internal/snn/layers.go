package snn

import (
	"fmt"

	"burstsnn/internal/coding"
	"burstsnn/internal/kernels"
)

// f32s materializes the float32 copy of a weight or bias array: the
// float32 compute plane's view of the model, rounded once at conversion
// time (IEEE round-to-nearest) and shared read-only by every clone and
// batched simulator. Constructors call it eagerly so a served model pays
// the rounding exactly once, not per replica.
func f32s(v []float64) []float32 {
	w := make([]float32, len(v))
	for i, x := range v {
		w[i] = float32(x)
	}
	return w
}

// SpikingDense is a fully connected spiking layer: in events scatter
// through the weight matrix into membrane potentials, then the population
// fires under its coding dynamics.
type SpikingDense struct {
	In, Out int
	// WT is the transposed weight matrix (In × Out) so one input event
	// touches a contiguous row — the event-driven hot path.
	WT   []float64
	Bias []float64
	// WT32/Bias32 are the float32 compute plane's copies (same layout).
	WT32   []float32
	Bias32 []float32

	pop *population
	z   []float64 // reference-path scratch (StepSlow only)
}

// NewSpikingDense builds the layer from a row-major Out×In weight matrix.
func NewSpikingDense(w []float64, bias []float64, in, out int, cfg coding.Config) *SpikingDense {
	if len(w) != in*out || len(bias) != out {
		panic(fmt.Sprintf("snn: dense weight dims %d/%d do not match %dx%d", len(w), len(bias), out, in))
	}
	wt := make([]float64, in*out)
	for o := 0; o < out; o++ {
		for i := 0; i < in; i++ {
			wt[i*out+o] = w[o*in+i]
		}
	}
	return &SpikingDense{
		In: in, Out: out, WT: wt, Bias: append([]float64(nil), bias...),
		WT32: f32s(wt), Bias32: f32s(bias),
		pop: newPopulation(out, cfg),
		z:   make([]float64, out),
	}
}

// Name implements Layer.
func (l *SpikingDense) Name() string { return "sdense" }

// NumNeurons implements Layer.
func (l *SpikingDense) NumNeurons() int { return l.Out }

// Reset implements Layer.
func (l *SpikingDense) Reset() { l.pop.resetState() }

// Step implements Layer. Events scatter straight into the membrane
// accumulators and the bias current (scaled to the input encoder's
// information rate, see coding.InputEncoder.BiasScale) is folded into the
// population's firing pass, so the whole step is one sweep over the
// events plus one sweep over the neurons.
func (l *SpikingDense) Step(t int, biasScale float64, in []coding.Event) []coding.Event {
	vmem := l.pop.vmem
	for _, ev := range in {
		row := l.WT[ev.Index*l.Out : (ev.Index+1)*l.Out]
		p := ev.Payload
		for o, w := range row {
			vmem[o] += w * p
		}
	}
	return l.pop.fire(t, l.Bias, biasScale)
}

// StepSlow implements RefLayer: the pre-optimization three-pass version
// (bias into the z scratch, event scatter into z, z into vmem, fire).
func (l *SpikingDense) StepSlow(t int, biasScale float64, in []coding.Event) []coding.Event {
	z := l.z
	for o, b := range l.Bias {
		z[o] = b * biasScale
	}
	for _, ev := range in {
		row := l.WT[ev.Index*l.Out : (ev.Index+1)*l.Out]
		p := ev.Payload
		for o, w := range row {
			z[o] += w * p
		}
	}
	for o, v := range z {
		l.pop.vmem[o] += v
	}
	return l.pop.fireSlow(t)
}

// Potential returns neuron i's membrane potential (test hook).
func (l *SpikingDense) Potential(i int) float64 { return l.pop.vmem[i] }

// ConvGeom describes a spiking convolution geometry (same semantics as
// tensor.ConvSpec, duplicated here to keep the event-driven layout local).
type ConvGeom struct {
	InC, InH, InW int
	OutC          int
	K             int // square kernel
	Stride, Pad   int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.K)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.K)/g.Stride + 1 }

// convTap is one precomputed scatter destination of an input pixel: the
// offset of the kernel row in WScatter (the tap's (ic,kh,kw) block, OutC
// contiguous weights) and the output spatial base oy*OutW+ox it feeds.
// Output channel oc's neuron is oc*OutH*OutW+base. Two int32s keep the
// table at 8 bytes per tap; it is immutable after construction and shared
// by every clone. The type lives in internal/kernels (kernels.ConvTap)
// so the float32 plane's fused scatter can walk the table directly.
type convTap = kernels.ConvTap

// SpikingConv is a 2-D convolution spiking layer. An input event at
// (ic, iy, ix) scatters its kernel taps into the affected output membrane
// positions; weights are stored as [ic][kh][kw][oc] so the innermost
// output-channel loop is contiguous.
//
// The stride/pad geometry is resolved once at construction into a scatter
// table (taps/tapStart): Step looks up an event's destinations by input
// index instead of re-deriving them with div/mod arithmetic and bounds
// branches per event, which dominated the hot path's cost.
type SpikingConv struct {
	Geom ConvGeom
	// WScatter is the re-laid-out kernel: index ((ic*K+kh)*K+kw)*OutC+oc.
	WScatter []float64
	Bias     []float64 // per output channel
	// WScatter32 is the float32 compute plane's kernel copy (same layout).
	WScatter32 []float32

	// taps[tapStart[i]:tapStart[i+1]] are input neuron i's scatter
	// destinations, in (kh,kw) order.
	taps     []convTap
	tapStart []int32
	outHW    int

	pop    *population
	bias   []float64 // pre-expanded per-neuron bias
	bias32 []float32 // float32 copy of bias
}

// NewSpikingConv builds the layer from a row-major OutC×(InC*K*K) weight
// matrix (the dnn.Conv2D layout).
func NewSpikingConv(w []float64, bias []float64, geom ConvGeom, cfg coding.Config) *SpikingConv {
	k, inC, outC := geom.K, geom.InC, geom.OutC
	if len(w) != outC*inC*k*k || len(bias) != outC {
		panic(fmt.Sprintf("snn: conv weight dims %d/%d do not match geom %+v", len(w), len(bias), geom))
	}
	ws := make([]float64, len(w))
	for oc := 0; oc < outC; oc++ {
		for ic := 0; ic < inC; ic++ {
			for kh := 0; kh < k; kh++ {
				for kw := 0; kw < k; kw++ {
					src := ((oc*inC+ic)*k+kh)*k + kw
					dst := ((ic*k+kh)*k+kw)*outC + oc
					ws[dst] = w[src]
				}
			}
		}
	}
	outH, outW := geom.OutH(), geom.OutW()
	n := outC * outH * outW
	l := &SpikingConv{
		Geom: geom, WScatter: ws, Bias: append([]float64(nil), bias...),
		outHW: outH * outW,
		pop:   newPopulation(n, cfg),
		bias:  make([]float64, n),
	}
	for oc := 0; oc < outC; oc++ {
		for i := 0; i < l.outHW; i++ {
			l.bias[oc*l.outHW+i] = bias[oc]
		}
	}
	l.WScatter32 = f32s(ws)
	l.bias32 = f32s(l.bias)
	// Precompute the scatter table: for every input pixel, the (weight
	// row, output base) pairs its events touch under the stride/pad
	// geometry. Same arithmetic as the reference StepSlow, run once.
	nIn := inC * geom.InH * geom.InW
	l.tapStart = make([]int32, nIn+1)
	l.taps = make([]convTap, 0, nIn*k*k)
	for ic := 0; ic < inC; ic++ {
		for iy := 0; iy < geom.InH; iy++ {
			for ix := 0; ix < geom.InW; ix++ {
				for kh := 0; kh < k; kh++ {
					oyNum := iy + geom.Pad - kh
					if oyNum < 0 || oyNum%geom.Stride != 0 {
						continue
					}
					oy := oyNum / geom.Stride
					if oy >= outH {
						continue
					}
					for kw := 0; kw < k; kw++ {
						oxNum := ix + geom.Pad - kw
						if oxNum < 0 || oxNum%geom.Stride != 0 {
							continue
						}
						ox := oxNum / geom.Stride
						if ox >= outW {
							continue
						}
						l.taps = append(l.taps, convTap{
							WOff: int32(((ic*k+kh)*k + kw) * outC),
							Base: int32(oy*outW + ox),
						})
					}
				}
				idx := (ic*geom.InH+iy)*geom.InW + ix
				l.tapStart[idx+1] = int32(len(l.taps))
			}
		}
	}
	return l
}

// Name implements Layer.
func (l *SpikingConv) Name() string { return "sconv" }

// NumNeurons implements Layer.
func (l *SpikingConv) NumNeurons() int { return len(l.pop.vmem) }

// Reset implements Layer.
func (l *SpikingConv) Reset() { l.pop.resetState() }

// Step implements Layer: table-driven event scatter (no div/mod or
// stride/pad branching per event) with the per-neuron bias folded into
// the firing pass.
func (l *SpikingConv) Step(t int, biasScale float64, in []coding.Event) []coding.Event {
	vmem := l.pop.vmem
	outC := l.Geom.OutC
	outHW := l.outHW
	for _, ev := range in {
		p := ev.Payload
		for _, tp := range l.taps[l.tapStart[ev.Index]:l.tapStart[ev.Index+1]] {
			row := l.WScatter[tp.WOff : int(tp.WOff)+outC]
			idx := int(tp.Base)
			for _, w := range row {
				vmem[idx] += w * p
				idx += outHW
			}
		}
	}
	return l.pop.fire(t, l.bias, biasScale)
}

// StepSlow implements RefLayer: the pre-optimization version with a full
// bias sweep up front and per-event stride/pad address arithmetic.
func (l *SpikingConv) StepSlow(t int, biasScale float64, in []coding.Event) []coding.Event {
	g := l.Geom
	outH, outW := g.OutH(), g.OutW()
	outHW := outH * outW
	vmem := l.pop.vmem
	for i, b := range l.bias {
		vmem[i] += b * biasScale
	}
	for _, ev := range in {
		ic := ev.Index / (g.InH * g.InW)
		rem := ev.Index % (g.InH * g.InW)
		iy, ix := rem/g.InW, rem%g.InW
		p := ev.Payload
		for kh := 0; kh < g.K; kh++ {
			oyNum := iy + g.Pad - kh
			if oyNum < 0 || oyNum%g.Stride != 0 {
				continue
			}
			oy := oyNum / g.Stride
			if oy >= outH {
				continue
			}
			for kw := 0; kw < g.K; kw++ {
				oxNum := ix + g.Pad - kw
				if oxNum < 0 || oxNum%g.Stride != 0 {
					continue
				}
				ox := oxNum / g.Stride
				if ox >= outW {
					continue
				}
				wRow := l.WScatter[((ic*g.K+kh)*g.K+kw)*g.OutC : ((ic*g.K+kh)*g.K+kw+1)*g.OutC]
				base := oy*outW + ox
				for oc, w := range wRow {
					vmem[oc*outHW+base] += w * p
				}
			}
		}
	}
	return l.pop.fireSlow(t)
}

// SpikingAvgPool is average pooling realized as an IF population: each
// output neuron integrates 1/window² of every input event in its window
// and fires under the hidden-layer coding dynamics. Pooling neurons have
// no bias.
type SpikingAvgPool struct {
	C, H, W, Window int

	outIdx []int32 // input neuron -> pooled output neuron, precomputed
	pop    *population
	inv    float64
}

// NewSpikingAvgPool constructs the pooling layer.
func NewSpikingAvgPool(c, h, w, window int, cfg coding.Config) *SpikingAvgPool {
	if h%window != 0 || w%window != 0 {
		panic(fmt.Sprintf("snn: pool window %d does not divide %dx%d", window, h, w))
	}
	outH, outW := h/window, w/window
	l := &SpikingAvgPool{
		C: c, H: h, W: w, Window: window,
		outIdx: make([]int32, c*h*w),
		pop:    newPopulation(c*outH*outW, cfg),
		inv:    1 / float64(window*window),
	}
	for ch := 0; ch < c; ch++ {
		for iy := 0; iy < h; iy++ {
			for ix := 0; ix < w; ix++ {
				l.outIdx[(ch*h+iy)*w+ix] = int32((ch*outH+iy/window)*outW + ix/window)
			}
		}
	}
	return l
}

// Name implements Layer.
func (l *SpikingAvgPool) Name() string { return "savgpool" }

// NumNeurons implements Layer.
func (l *SpikingAvgPool) NumNeurons() int { return len(l.pop.vmem) }

// Reset implements Layer.
func (l *SpikingAvgPool) Reset() { l.pop.resetState() }

// Step implements Layer using the precomputed input→output index table.
func (l *SpikingAvgPool) Step(t int, _ float64, in []coding.Event) []coding.Event {
	vmem := l.pop.vmem
	for _, ev := range in {
		vmem[l.outIdx[ev.Index]] += ev.Payload * l.inv
	}
	return l.pop.fire(t, nil, 0)
}

// StepSlow implements RefLayer with the original per-event div/mod
// address arithmetic.
func (l *SpikingAvgPool) StepSlow(t int, _ float64, in []coding.Event) []coding.Event {
	outH, outW := l.H/l.Window, l.W/l.Window
	for _, ev := range in {
		c := ev.Index / (l.H * l.W)
		rem := ev.Index % (l.H * l.W)
		iy, ix := rem/l.W, rem%l.W
		oIdx := (c*outH+iy/l.Window)*outW + ix/l.Window
		l.pop.vmem[oIdx] += ev.Payload * l.inv
	}
	return l.pop.fireSlow(t)
}

// SpikingMaxPool is the spiking max-pooling gate of Rueckauer et al.:
// each output position forwards the events of whichever input in its
// window currently has the largest cumulative payload. It has no neurons
// of its own (the winner's spikes pass through).
//
// Winner rule: among the window inputs whose cumulative payload equals
// the window maximum, the gate forwards the lowest-indexed one that
// spiked this step. The spiking requirement is the tie-break fix: a
// silent input that merely ties the maximum must not mute an equally
// maximal input that is actually spiking, otherwise the window goes
// silent for the step and the pooled signal is lost.
//
// Emission order: forwarded events are emitted in ascending window index
// order (not input-event order). Every other layer already emits in
// ascending neuron order, and the batched lockstep simulator relies on
// that invariant — a lane projected out of a batch column stream must see
// events in exactly the sequential order, or downstream float
// accumulation diverges (see internal/README.md).
type SpikingMaxPool struct {
	C, H, W, Window int

	cum     []float64 // cumulative payload per input neuron
	lastPay []float64 // payload of input i's most recent spike
	buf     []coding.Event

	// Precomputed window geometry: winOf[i] is input i's window (== the
	// gate's output index); winMembers[winStart[w]:winStart[w+1]] are
	// window w's input indices in ascending order.
	winOf      []int32
	winStart   []int32
	winMembers []int32

	// seen[i] == stamp marks inputs that spiked during the current Step
	// call (stamp increments per call, so no per-step clearing sweep).
	// winStamp does the same per window, deduplicating the touched list.
	seen     []int
	winStamp []int
	touched  []int32 // windows touched this step, kept sorted
	stamp    int
}

// NewSpikingMaxPool constructs the gate.
func NewSpikingMaxPool(c, h, w, window int) *SpikingMaxPool {
	if h%window != 0 || w%window != 0 {
		panic(fmt.Sprintf("snn: pool window %d does not divide %dx%d", window, h, w))
	}
	outH, outW := h/window, w/window
	nIn, nWin := c*h*w, c*outH*outW
	l := &SpikingMaxPool{
		C: c, H: h, W: w, Window: window,
		cum:        make([]float64, nIn),
		lastPay:    make([]float64, nIn),
		buf:        make([]coding.Event, 0, nWin), // ≤ one event per window per step
		winOf:      make([]int32, nIn),
		winStart:   make([]int32, nWin+1),
		winMembers: make([]int32, 0, nIn),
		seen:       make([]int, nIn),
		winStamp:   make([]int, nWin),
		touched:    make([]int32, 0, nWin),
	}
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				win := (ch*outH+oy)*outW + ox
				for ky := 0; ky < window; ky++ {
					for kx := 0; kx < window; kx++ {
						idx := (ch*h+oy*window+ky)*w + ox*window + kx
						l.winOf[idx] = int32(win)
						l.winMembers = append(l.winMembers, int32(idx))
					}
				}
				l.winStart[win+1] = int32(len(l.winMembers))
			}
		}
	}
	return l
}

// Name implements Layer.
func (l *SpikingMaxPool) Name() string { return "smaxpool" }

// NumNeurons implements Layer.
func (l *SpikingMaxPool) NumNeurons() int { return 0 }

// Reset implements Layer.
func (l *SpikingMaxPool) Reset() {
	for i := range l.cum {
		l.cum[i] = 0
	}
}

// winner returns the input index the window forwards this step: the
// lowest-indexed member at the cumulative maximum that spiked (seen ==
// stamp), or -1 when every maximal member is silent.
func (l *SpikingMaxPool) winner(members []int32) int {
	best := l.cum[members[0]]
	for _, idx := range members[1:] {
		if c := l.cum[idx]; c > best {
			best = c
		}
	}
	for _, idx := range members {
		if l.cum[idx] == best && l.seen[idx] == l.stamp {
			return int(idx)
		}
	}
	return -1
}

// insertSorted inserts w into the ascending slice s and returns it.
// Callers never insert duplicates (they dedupe with a stamp first). The
// input events arrive in ascending neuron order, so the windows are
// discovered nearly sorted and the memmove is almost always empty.
func insertSorted(s []int32, w int32) []int32 {
	i := len(s)
	for i > 0 && s[i-1] > w {
		i--
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = w
	return s
}

// Step implements Layer using the precomputed window tables: accumulate
// the step's events, then forward each touched window's spiking winner,
// in ascending window order.
func (l *SpikingMaxPool) Step(t int, _ float64, in []coding.Event) []coding.Event {
	l.buf = l.buf[:0]
	l.stamp++
	l.touched = l.touched[:0]
	for _, ev := range in {
		l.cum[ev.Index] += ev.Payload
		l.seen[ev.Index] = l.stamp
		l.lastPay[ev.Index] = ev.Payload
		if w := l.winOf[ev.Index]; l.winStamp[w] != l.stamp {
			l.winStamp[w] = l.stamp
			l.touched = insertSorted(l.touched, w)
		}
	}
	for _, w := range l.touched {
		members := l.winMembers[l.winStart[w]:l.winStart[w+1]]
		if win := l.winner(members); win >= 0 {
			l.buf = append(l.buf, coding.Event{Index: int(w), Payload: l.lastPay[win]})
		}
	}
	return l.buf
}

// StepSlow implements RefLayer with the original per-event div/mod window
// arithmetic (and the same winner rule and ascending-window emission
// order as Step): after accumulating the step's events it scans every
// window in index order and forwards its spiking winner, if any.
func (l *SpikingMaxPool) StepSlow(t int, _ float64, in []coding.Event) []coding.Event {
	outH, outW := l.H/l.Window, l.W/l.Window
	l.buf = l.buf[:0]
	l.stamp++
	for _, ev := range in {
		l.cum[ev.Index] += ev.Payload
		l.seen[ev.Index] = l.stamp
		l.lastPay[ev.Index] = ev.Payload
	}
	for c := 0; c < l.C; c++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				first := (c*l.H+oy*l.Window)*l.W + ox*l.Window
				best, winner := l.cum[first], -1
				for ky := 0; ky < l.Window; ky++ {
					for kx := 0; kx < l.Window; kx++ {
						idx := (c*l.H+oy*l.Window+ky)*l.W + ox*l.Window + kx
						if l.cum[idx] > best {
							best = l.cum[idx]
						}
					}
				}
				for ky := 0; ky < l.Window && winner < 0; ky++ {
					for kx := 0; kx < l.Window; kx++ {
						idx := (c*l.H+oy*l.Window+ky)*l.W + ox*l.Window + kx
						if l.cum[idx] == best && l.seen[idx] == l.stamp {
							winner = idx
							break
						}
					}
				}
				if winner >= 0 {
					l.buf = append(l.buf, coding.Event{
						Index:   (c*outH+oy)*outW + ox,
						Payload: l.lastPay[winner],
					})
				}
			}
		}
	}
	return l.buf
}

// OutputLayer is the readout: a dense weight matrix whose neurons
// accumulate membrane potential but never fire. Class scores are the
// accumulated potentials, the standard decoding for converted SNNs.
type OutputLayer struct {
	In, Out int
	WT      []float64
	Bias    []float64
	// WT32/Bias32 are the float32 compute plane's copies (same layout).
	WT32   []float32
	Bias32 []float32

	pot []float64
}

// NewOutputLayer builds the readout from a row-major Out×In matrix.
func NewOutputLayer(w []float64, bias []float64, in, out int) *OutputLayer {
	if len(w) != in*out || len(bias) != out {
		panic(fmt.Sprintf("snn: output weight dims %d/%d do not match %dx%d", len(w), len(bias), out, in))
	}
	wt := make([]float64, in*out)
	for o := 0; o < out; o++ {
		for i := 0; i < in; i++ {
			wt[i*out+o] = w[o*in+i]
		}
	}
	return &OutputLayer{
		In: in, Out: out, WT: wt, Bias: append([]float64(nil), bias...),
		WT32: f32s(wt), Bias32: f32s(bias),
		pot: make([]float64, out),
	}
}

// NumNeurons returns the readout population size.
func (l *OutputLayer) NumNeurons() int { return l.Out }

// Reset clears the accumulators.
func (l *OutputLayer) Reset() {
	for i := range l.pot {
		l.pot[i] = 0
	}
}

// Step integrates the incoming events plus the rate-matched bias current,
// in the same events-then-bias order the fused hidden layers use. The
// readout has no firing pass to fold the bias into, but it is O(classes),
// not O(population), so it stays a plain sweep.
func (l *OutputLayer) Step(_ int, biasScale float64, in []coding.Event) {
	pot := l.pot
	for _, ev := range in {
		row := l.WT[ev.Index*l.Out : (ev.Index+1)*l.Out]
		p := ev.Payload
		for o, w := range row {
			pot[o] += w * p
		}
	}
	for o, b := range l.Bias {
		pot[o] += b * biasScale
	}
}

// StepSlow is the reference readout step (bias sweep before the event
// scatter, as in the pre-optimization implementation).
func (l *OutputLayer) StepSlow(_ int, biasScale float64, in []coding.Event) {
	for o, b := range l.Bias {
		l.pot[o] += b * biasScale
	}
	for _, ev := range in {
		row := l.WT[ev.Index*l.Out : (ev.Index+1)*l.Out]
		p := ev.Payload
		for o, w := range row {
			l.pot[o] += w * p
		}
	}
}

// Potentials returns the accumulated class scores (live slice; callers
// must not mutate).
func (l *OutputLayer) Potentials() []float64 { return l.pot }
