package coding

import (
	"testing"

	"burstsnn/internal/mathx"
)

func randomImage(seed uint64, n int) []float64 {
	r := mathx.NewRNG(seed)
	img := make([]float64, n)
	for i := range img {
		img[i] = r.Float64()
	}
	return img
}

func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuantCacheEncoderEquivalence checks that attaching a quantization
// cache never changes an encoder's event stream: cold (miss), warm (hit),
// and cacheless paths must emit identical events over a full period, for
// both periodic encoders.
func TestQuantCacheEncoderEquivalence(t *testing.T) {
	const size = 96
	for _, scheme := range []Scheme{Phase, TTFS} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := DefaultConfig(scheme)
			plain, err := NewInputEncoder(cfg, size, 1)
			if err != nil {
				t.Fatal(err)
			}
			cached, err := NewInputEncoder(cfg, size, 1)
			if err != nil {
				t.Fatal(err)
			}
			cache := NewQuantCache(0)
			cached.(QuantCached).SetQuantCache(cache)

			images := [][]float64{
				randomImage(11, size),
				randomImage(22, size),
				randomImage(11, size), // second sighting → stored
				randomImage(11, size), // third sighting → hit
			}
			for round, img := range images {
				plain.Reset(img)
				cached.Reset(img)
				for s := 0; s < cfg.Period; s++ {
					a := append([]Event(nil), plain.Step(s)...)
					b := cached.Step(s)
					if !eventsEqual(a, b) {
						t.Fatalf("round %d step %d: cached events diverge", round, s)
					}
				}
			}
			// Entries are stored on a key's second miss (so unique-image
			// traffic never populates the cache): resets 1-3 miss, the
			// third stores, the fourth hits.
			hits, misses := cache.Stats()
			if hits != 1 || misses != 3 {
				t.Errorf("hits/misses = %d/%d, want 1/3", hits, misses)
			}

			// Clones share the cache: a clone resetting a stored image hits.
			clone := cached.(CloneableEncoder).Clone()
			clone.Reset(images[0])
			if h, _ := cache.Stats(); h != 2 {
				t.Errorf("clone reset did not hit the shared cache (hits=%d)", h)
			}
		})
	}
}

// TestQuantCacheCollisionDegradesToMiss pins the defense against hash
// collisions: a key match whose pixels differ (the serving layer accepts
// arbitrary client images, and the 64-bit content hash is not
// collision-resistant) must count as a miss and never serve the other
// image's quantization.
func TestQuantCacheCollisionDegradesToMiss(t *testing.T) {
	c := NewQuantCache(0)
	imgA := randomImage(1, 16)
	imgB := randomImage(2, 16)
	k := quantKey{hash: 42, scheme: Phase, size: 16, period: 8}
	qA := make([]uint64, 16)
	quantizeBits(qA, imgA, 8)
	c.store(k, imgA, qA)
	if _, ok, promote := c.lookup(k, imgB); ok {
		t.Fatal("colliding key with different pixels served the cached quantization")
	} else if !promote {
		t.Fatal("collision miss should ask the caller to re-store")
	}
	if q, ok, _ := c.lookup(k, imgA); !ok || &q[0] != &qA[0] {
		t.Fatal("matching pixels should hit the stored entry")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

// TestQuantCacheBatchLanes checks the batch-lane payoff: lanes loaded
// with the same image quantize once and hit thereafter, and the batched
// encoder's stream is unaffected by the cache.
func TestQuantCacheBatchLanes(t *testing.T) {
	const size, b = 64, 4
	cfg := DefaultConfig(Phase)
	seq, err := NewInputEncoder(cfg, size, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewQuantCache(0)
	seq.(QuantCached).SetQuantCache(cache)
	batch := seq.(BatchableEncoder).NewBatch(b)

	img := randomImage(77, size)
	for lane := 0; lane < b; lane++ {
		batch.SetLane(lane, img)
	}
	// Lane 0 misses (first sighting), lane 1 misses and stores (second
	// sighting), the remaining lanes hit.
	hits, misses := cache.Stats()
	if misses != 2 || hits != b-2 {
		t.Errorf("hits/misses = %d/%d, want %d/2", hits, misses, b-2)
	}

	// The batched stream must match the sequential encoder lane by lane.
	seq.Reset(img)
	var cols BatchEvents
	cols.Grow(size, size*b)
	for s := 0; s < cfg.Period; s++ {
		want := seq.Step(s)
		batch.Step(s, b, &cols)
		for lane := int32(0); lane < b; lane++ {
			if got := cols.AppendLane(lane, nil); !eventsEqual(got, want) {
				t.Fatalf("step %d lane %d: batched events diverge", s, lane)
			}
		}
	}
}
