package coding

import (
	"fmt"

	"burstsnn/internal/mathx"
)

// BatchEvents is the column-form event stream of the batched lockstep
// simulator: one presentation of B images advances through the network
// together, and the spikes of one time step are grouped by neuron index
// into columns. Column c is
//
//	Index[c]                      — the neuron that spiked,
//	Lane[Start[c]:Start[c+1]]     — the batch lanes in which it spiked
//	                                (ascending slot order), and
//	Payload[Start[c]:Start[c+1]]  — the per-lane spike payloads.
//
// Columns are ordered by ascending neuron index, so projecting a single
// lane out of a BatchEvents stream yields exactly the (index-ordered)
// event list the sequential simulator emits for that lane's image. That
// projection property is what lets the batched path stay bit-identical
// per lane: a downstream layer walking columns in order applies each
// lane's contributions in the same order the sequential path would.
//
// The point of the representation is amortization: a layer consuming a
// column resolves the scatter-table taps and loads the weight rows for
// Index[c] once, then applies them to every lane in the column.
type BatchEvents struct {
	Index   []int32
	Start   []int32 // len(Index)+1; Start[0] == 0
	Lane    []int32
	Payload []float64
}

// Grow pre-sizes the buffers for up to cols columns and laneEvents total
// lane entries, so steady-state appends never allocate.
func (e *BatchEvents) Grow(cols, laneEvents int) {
	if cap(e.Index) < cols {
		e.Index = make([]int32, 0, cols)
	}
	if cap(e.Start) < cols+1 {
		e.Start = make([]int32, 1, cols+1)
	}
	if cap(e.Lane) < laneEvents {
		e.Lane = make([]int32, 0, laneEvents)
	}
	if cap(e.Payload) < laneEvents {
		e.Payload = make([]float64, 0, laneEvents)
	}
	e.Reset()
}

// Reset empties the stream, keeping capacity.
func (e *BatchEvents) Reset() {
	e.Index = e.Index[:0]
	if cap(e.Start) == 0 {
		e.Start = append(e.Start, 0)
	}
	e.Start = e.Start[:1]
	e.Start[0] = 0
	e.Lane = e.Lane[:0]
	e.Payload = e.Payload[:0]
}

// Cols returns the number of columns.
func (e *BatchEvents) Cols() int { return len(e.Index) }

// LaneEvents returns the total number of (lane, payload) entries — the
// batch's spike count for the step.
func (e *BatchEvents) LaneEvents() int { return len(e.Lane) }

// Column returns column c's neuron index, lanes, and payloads.
func (e *BatchEvents) Column(c int) (index int32, lanes []int32, payloads []float64) {
	s, t := e.Start[c], e.Start[c+1]
	return e.Index[c], e.Lane[s:t], e.Payload[s:t]
}

// Add stages one lane entry for the column being built. Lanes must be
// staged in ascending slot order.
func (e *BatchEvents) Add(lane int32, payload float64) {
	e.Lane = append(e.Lane, lane)
	e.Payload = append(e.Payload, payload)
}

// Commit closes the column under construction: if any lane entries were
// staged since the previous Commit, a column with the given neuron index
// is recorded. Indices must be committed in ascending order.
func (e *BatchEvents) Commit(index int32) {
	if int(e.Start[len(e.Start)-1]) == len(e.Lane) {
		return
	}
	e.Index = append(e.Index, index)
	e.Start = append(e.Start, int32(len(e.Lane)))
}

// AppendLane projects one lane's events out of the stream, appending them
// to dst in column (that is, neuron-index) order — the sequential event
// list for that lane.
func (e *BatchEvents) AppendLane(lane int32, dst []Event) []Event {
	for c := range e.Index {
		s, t := e.Start[c], e.Start[c+1]
		for k := s; k < t; k++ {
			if e.Lane[k] == lane {
				dst = append(dst, Event{Index: int(e.Index[c]), Payload: e.Payload[k]})
				break
			}
		}
	}
	return dst
}

// BatchEncoder is the batched counterpart of InputEncoder: it holds up to
// B images (one per lane slot) and emits their per-step events as a
// single column stream. Slots [0, lanes) are active; the batched network
// physically compacts lanes, so a retired slot's state is overwritten by
// Retire and never stepped again.
type BatchEncoder interface {
	// Size returns the number of input neurons.
	Size() int
	// Lanes returns the lane capacity B.
	Lanes() int
	// CountsAsSpikes mirrors InputEncoder.CountsAsSpikes.
	CountsAsSpikes() bool
	// BiasScale mirrors InputEncoder.BiasScale (it depends only on the
	// scheme and t, never on the images, so one value serves every lane).
	BiasScale(t int) float64
	// SetLane loads an image into a lane slot, equivalent to Reset on a
	// sequential encoder.
	SetLane(lane int, image []float64)
	// Step appends the events of time t for slots [0, lanes) into out
	// (which is Reset first).
	Step(t int, lanes int, out *BatchEvents)
	// Step32 is Step for the float32 compute plane: identical event
	// timing, payloads emitted as float32. A BatchEncoder instance is
	// owned by exactly one simulator, which calls one of the two.
	Step32(t int, lanes int, out *BatchEvents32)
	// Retire copies slot src's encoder state over slot dst (lane
	// compaction after an early exit).
	Retire(dst, src int)
}

// BatchableEncoder is an InputEncoder that can stamp out a batched
// variant of itself with the same configuration (size, period, seed,
// quantization cache). All encoders built by NewInputEncoder implement
// it; stream-stateful encoders like PoissonEncoder do not, because their
// lanes could not reproduce the sequential trains.
type BatchableEncoder interface {
	InputEncoder
	// NewBatch returns a batched encoder with b lane slots.
	NewBatch(b int) BatchEncoder
}

func checkLaneImage(size, b, lane int, image []float64) {
	if lane < 0 || lane >= b {
		panic(fmt.Sprintf("coding: lane %d out of range [0,%d)", lane, b))
	}
	if len(image) != size {
		panic(fmt.Sprintf("coding: batch encoder got %d pixels, want %d", len(image), size))
	}
}

// batchRealEncoder is the batched real (analog-current) encoder: pixel
// values are stored lane-striped and every nonzero pixel emits its value
// as payload each step.
type batchRealEncoder struct {
	size, b int
	px      []float64 // px[i*b+lane]
}

func newBatchRealEncoder(size, b int) *batchRealEncoder {
	return &batchRealEncoder{size: size, b: b, px: make([]float64, size*b)}
}

func (e *batchRealEncoder) Size() int             { return e.size }
func (e *batchRealEncoder) Lanes() int            { return e.b }
func (e *batchRealEncoder) CountsAsSpikes() bool  { return false }
func (e *batchRealEncoder) BiasScale(int) float64 { return 1 }

func (e *batchRealEncoder) SetLane(lane int, image []float64) {
	checkLaneImage(e.size, e.b, lane, image)
	for i, v := range image {
		e.px[i*e.b+lane] = v
	}
}

func (e *batchRealEncoder) Step(_ int, lanes int, out *BatchEvents) {
	out.Reset()
	for i := 0; i < e.size; i++ {
		row := e.px[i*e.b : i*e.b+lanes]
		for s, v := range row {
			if v != 0 {
				out.Add(int32(s), v)
			}
		}
		out.Commit(int32(i))
	}
}

func (e *batchRealEncoder) Retire(dst, src int) {
	for i := 0; i < e.size; i++ {
		e.px[i*e.b+dst] = e.px[i*e.b+src]
	}
}

// batchRateEncoder is the batched Bernoulli rate encoder. Each lane owns
// an RNG reseeded from its image hash exactly like the sequential
// encoder, and Step consumes each lane's draws in pixel order, so every
// lane's train is bit-identical to the train the sequential encoder
// produces for the same image.
type batchRateEncoder struct {
	size, b int
	seed    uint64
	px      []float64
	rngs    []mathx.RNG // inline states, so Retire copies by assignment
}

func newBatchRateEncoder(size, b int, seed uint64) *batchRateEncoder {
	return &batchRateEncoder{
		size: size, b: b, seed: seed,
		px:   make([]float64, size*b),
		rngs: make([]mathx.RNG, b),
	}
}

func (e *batchRateEncoder) Size() int             { return e.size }
func (e *batchRateEncoder) Lanes() int            { return e.b }
func (e *batchRateEncoder) CountsAsSpikes() bool  { return true }
func (e *batchRateEncoder) BiasScale(int) float64 { return 1 }

func (e *batchRateEncoder) SetLane(lane int, image []float64) {
	checkLaneImage(e.size, e.b, lane, image)
	for i, v := range image {
		e.px[i*e.b+lane] = v
	}
	e.rngs[lane].Reseed(imageHash(image) ^ e.seed)
}

func (e *batchRateEncoder) Step(_ int, lanes int, out *BatchEvents) {
	out.Reset()
	for i := 0; i < e.size; i++ {
		row := e.px[i*e.b : i*e.b+lanes]
		for s, v := range row {
			if v <= 0 {
				continue
			}
			if v > 1 {
				v = 1
			}
			if e.rngs[s].Bernoulli(v) {
				out.Add(int32(s), 1)
			}
		}
		out.Commit(int32(i))
	}
}

func (e *batchRateEncoder) Retire(dst, src int) {
	for i := 0; i < e.size; i++ {
		e.px[i*e.b+dst] = e.px[i*e.b+src]
	}
	e.rngs[dst] = e.rngs[src]
}

// batchPhaseEncoder is the batched weighted-spike encoder: the quantized
// bit patterns are lane-striped and one period carries each lane's whole
// value, with the per-step payload Π(t) shared by every lane in a column.
type batchPhaseEncoder struct {
	size, b, period int
	bits            []uint64 // bits[i*b+lane]
	scratch         []uint64 // quantization staging (cache-miss path)
	quant           *QuantCache
}

func newBatchPhaseEncoder(size, b, period int, quant *QuantCache) *batchPhaseEncoder {
	return &batchPhaseEncoder{
		size: size, b: b, period: period,
		bits:    make([]uint64, size*b),
		scratch: make([]uint64, size),
		quant:   quant,
	}
}

func (e *batchPhaseEncoder) Size() int            { return e.size }
func (e *batchPhaseEncoder) Lanes() int           { return e.b }
func (e *batchPhaseEncoder) CountsAsSpikes() bool { return true }
func (e *batchPhaseEncoder) BiasScale(t int) float64 {
	return phaseBiasScale(t, e.period)
}
func (e *batchPhaseEncoder) SetQuantCache(c *QuantCache) { e.quant = c }

func (e *batchPhaseEncoder) SetLane(lane int, image []float64) {
	checkLaneImage(e.size, e.b, lane, image)
	q := quantizedBits(image, e.period, e.quant, e.scratch)
	for i, b := range q {
		e.bits[i*e.b+lane] = b
	}
}

func (e *batchPhaseEncoder) Step(t int, lanes int, out *BatchEvents) {
	out.Reset()
	shift := uint(e.period - 1 - t%e.period)
	payload := Pi(t, e.period)
	for i := 0; i < e.size; i++ {
		row := e.bits[i*e.b : i*e.b+lanes]
		for s, bv := range row {
			if bv>>shift&1 == 1 {
				out.Add(int32(s), payload)
			}
		}
		out.Commit(int32(i))
	}
}

func (e *batchPhaseEncoder) Retire(dst, src int) {
	for i := 0; i < e.size; i++ {
		e.bits[i*e.b+dst] = e.bits[i*e.b+src]
	}
}

// batchTTFSEncoder is the batched time-to-first-spike encoder: per-lane
// firing phases are lane-striped; a pixel's lane entry is phase+1 with 0
// meaning silent (the same packing the quantization cache stores).
type batchTTFSEncoder struct {
	size, b, period int
	phase           []uint64 // phase[i*b+lane]; value = firing phase + 1, 0 = silent
	scratch         []uint64
	quant           *QuantCache
}

func newBatchTTFSEncoder(size, b, period int, quant *QuantCache) *batchTTFSEncoder {
	return &batchTTFSEncoder{
		size: size, b: b, period: period,
		phase:   make([]uint64, size*b),
		scratch: make([]uint64, size),
		quant:   quant,
	}
}

func (e *batchTTFSEncoder) Size() int            { return e.size }
func (e *batchTTFSEncoder) Lanes() int           { return e.b }
func (e *batchTTFSEncoder) CountsAsSpikes() bool { return true }
func (e *batchTTFSEncoder) BiasScale(t int) float64 {
	return phaseBiasScale(t, e.period)
}
func (e *batchTTFSEncoder) SetQuantCache(c *QuantCache) { e.quant = c }

func (e *batchTTFSEncoder) SetLane(lane int, image []float64) {
	checkLaneImage(e.size, e.b, lane, image)
	q := quantizedPhases(image, e.period, e.quant, e.scratch)
	for i, p := range q {
		e.phase[i*e.b+lane] = p
	}
}

func (e *batchTTFSEncoder) Step(t int, lanes int, out *BatchEvents) {
	out.Reset()
	want := uint64(t%e.period) + 1
	payload := Pi(t, e.period)
	for i := 0; i < e.size; i++ {
		row := e.phase[i*e.b : i*e.b+lanes]
		for s, p := range row {
			if p == want {
				out.Add(int32(s), payload)
			}
		}
		out.Commit(int32(i))
	}
}

func (e *batchTTFSEncoder) Retire(dst, src int) {
	for i := 0; i < e.size; i++ {
		e.phase[i*e.b+dst] = e.phase[i*e.b+src]
	}
}
