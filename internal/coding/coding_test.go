package coding

import (
	"math"
	"testing"
	"testing/quick"

	"burstsnn/internal/mathx"
)

func TestSchemeStringRoundTrip(t *testing.T) {
	for _, s := range []Scheme{Real, Rate, Phase, Burst, TTFS} {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip failed for %v: %v %v", s, got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Fatal("ParseScheme accepted garbage")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	for _, s := range []Scheme{Real, Rate, Phase, Burst, TTFS} {
		if err := DefaultConfig(s).Validate(); err != nil {
			t.Fatalf("default config for %v invalid: %v", s, err)
		}
	}
}

func TestConfigValidateRejectsBad(t *testing.T) {
	bad := []Config{
		{Scheme: Rate, VTh: 0},
		{Scheme: Burst, VTh: 1, Beta: 0.5},
		{Scheme: Burst, VTh: 1, Beta: 1},
		{Scheme: Phase, VTh: 1, Period: 0},
		{Scheme: Phase, VTh: 1, Period: 100},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

func TestPiOscillation(t *testing.T) {
	// Π(t) = 2^-(1+mod(t,k)): first phase 1/2, halving each step, then
	// wrapping.
	k := 4
	want := []float64{0.5, 0.25, 0.125, 0.0625, 0.5, 0.25}
	for t0, w := range want {
		if got := Pi(t0, k); got != w {
			t.Fatalf("Pi(%d,%d) = %v, want %v", t0, k, got, w)
		}
	}
}

func TestPiPeriodSumsToAlmostOne(t *testing.T) {
	// One full period transmits sum 2^-1..2^-k = 1 - 2^-k.
	k := 8
	sum := 0.0
	for t0 := 0; t0 < k; t0++ {
		sum += Pi(t0, k)
	}
	if math.Abs(sum-(1-math.Pow(2, -float64(k)))) > 1e-12 {
		t.Fatalf("period sum = %v", sum)
	}
}

func TestNextG(t *testing.T) {
	beta := 2.0
	g := 1.0
	g = NextG(g, true, beta)
	if g != 2 {
		t.Fatalf("g after one spike = %v", g)
	}
	g = NextG(g, true, beta)
	if g != 4 {
		t.Fatalf("g after burst of 2 = %v", g)
	}
	g = NextG(g, false, beta)
	if g != 1.0 {
		t.Fatalf("g must reset to 1 after a silent step, got %v", g)
	}
}

// Property: after n consecutive spikes g = β^n; payloads grow
// geometrically, which is what lets a burst drain a large membrane in
// logarithmically many spikes.
func TestBurstGeometricGrowthProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw % 20)
		beta := 2.0
		g := 1.0
		for i := 0; i < n; i++ {
			g = NextG(g, true, beta)
		}
		return math.Abs(g-math.Pow(beta, float64(n))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdPerScheme(t *testing.T) {
	rate := Config{Scheme: Rate, VTh: 2}
	if rate.Threshold(5, 1) != 2 {
		t.Fatal("rate threshold must be constant v_th")
	}
	phase := Config{Scheme: Phase, VTh: 1, Period: 8}
	if phase.Threshold(0, 1) != 0.5 || phase.Threshold(1, 1) != 0.25 {
		t.Fatal("phase threshold must follow Π(t)")
	}
	burst := Config{Scheme: Burst, VTh: 0.125, Beta: 2}
	if burst.Threshold(3, 4) != 0.125*4 {
		t.Fatal("burst threshold must be g·v_th")
	}
}

func TestThresholdRealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("real threshold did not panic")
		}
	}()
	Config{Scheme: Real, VTh: 1}.Threshold(0, 1)
}

func TestRealEncoderConstantCurrent(t *testing.T) {
	enc, err := NewInputEncoder(DefaultConfig(Real), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc.Reset([]float64{0.5, 0, 1, 0.25})
	for step := 0; step < 3; step++ {
		evs := enc.Step(step)
		if len(evs) != 3 { // zero pixel omitted
			t.Fatalf("step %d: %d events", step, len(evs))
		}
		if evs[0].Payload != 0.5 || evs[2].Payload != 0.25 {
			t.Fatalf("payloads wrong: %+v", evs)
		}
	}
	if enc.CountsAsSpikes() {
		t.Fatal("real coding must not count as spikes")
	}
}

func TestRateEncoderFrequencyMatchesValue(t *testing.T) {
	enc, _ := NewInputEncoder(DefaultConfig(Rate), 3, 0)
	enc.Reset([]float64{0.25, 0.5, 1.0})
	counts := make([]int, 3)
	const T = 20000
	for step := 0; step < T; step++ {
		for _, ev := range enc.Step(step) {
			if ev.Payload != 1 {
				t.Fatalf("rate payload must be 1, got %v", ev.Payload)
			}
			counts[ev.Index]++
		}
	}
	wants := []float64{0.25, 0.5, 1.0}
	for i, w := range wants {
		rate := float64(counts[i]) / T
		if math.Abs(rate-w) > 0.02 {
			t.Fatalf("pixel %d: rate %v, want %v", i, rate, w)
		}
	}
}

// The rate encoder must produce identical trains for identical images —
// independent of presentation order — because its RNG reseeds from the
// image hash at Reset.
func TestRateEncoderReproducibleAcrossOrder(t *testing.T) {
	imgA := []float64{0.3, 0.6}
	imgB := []float64{0.9, 0.1}
	collect := func(enc InputEncoder, img []float64) []int {
		enc.Reset(img)
		var out []int
		for s := 0; s < 50; s++ {
			for _, ev := range enc.Step(s) {
				out = append(out, s*10+ev.Index)
			}
		}
		return out
	}
	enc1, _ := NewInputEncoder(DefaultConfig(Rate), 2, 7)
	enc2, _ := NewInputEncoder(DefaultConfig(Rate), 2, 7)
	// enc1 sees A then B; enc2 sees B only. B's train must match.
	collect(enc1, imgA)
	b1 := collect(enc1, imgB)
	b2 := collect(enc2, imgB)
	if len(b1) != len(b2) {
		t.Fatalf("train lengths differ: %d vs %d", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("rate trains depend on presentation order")
		}
	}
	// Different seeds must differ.
	enc3, _ := NewInputEncoder(DefaultConfig(Rate), 2, 8)
	b3 := collect(enc3, imgB)
	same := len(b3) == len(b2)
	if same {
		for i := range b3 {
			if b3[i] != b2[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical trains")
	}
}

func TestRateEncoderZeroSilent(t *testing.T) {
	enc, _ := NewInputEncoder(DefaultConfig(Rate), 2, 0)
	enc.Reset([]float64{0, 0})
	for step := 0; step < 50; step++ {
		if len(enc.Step(step)) != 0 {
			t.Fatal("zero image must be silent")
		}
	}
}

// Property: one phase-coding period transmits exactly the k-bit quantized
// value: Σ payloads = round(v·2^k)/2^k (saturated below 1).
func TestPhaseEncoderExactValueProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		v := r.Float64()
		enc, err := NewInputEncoder(DefaultConfig(Phase), 1, 0)
		if err != nil {
			return false
		}
		enc.Reset([]float64{v})
		sum := 0.0
		for step := 0; step < 8; step++ {
			for _, ev := range enc.Step(step) {
				sum += ev.Payload
			}
		}
		levels := 256.0
		q := math.Round(v * levels)
		if q >= levels {
			q = levels - 1
		}
		return math.Abs(sum-q/levels) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseEncoderPeriodicity(t *testing.T) {
	enc, _ := NewInputEncoder(DefaultConfig(Phase), 1, 0)
	enc.Reset([]float64{0.7})
	collect := func(from int) []Event {
		var out []Event
		for s := from; s < from+8; s++ {
			out = append(out, append([]Event(nil), enc.Step(s)...)...)
		}
		return out
	}
	p1, p2 := collect(0), collect(8)
	if len(p1) != len(p2) {
		t.Fatalf("periods differ in spike count: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("phase encoding must repeat every period")
		}
	}
}

func TestPhaseEncoderMSBFirst(t *testing.T) {
	enc, _ := NewInputEncoder(DefaultConfig(Phase), 1, 0)
	enc.Reset([]float64{0.5}) // binary 0.10000000
	evs := enc.Step(0)
	if len(evs) != 1 || evs[0].Payload != 0.5 {
		t.Fatalf("0.5 must spike at phase 0 with payload 1/2, got %+v", evs)
	}
	for s := 1; s < 8; s++ {
		if len(enc.Step(s)) != 0 {
			t.Fatalf("0.5 must be silent after its MSB, step %d fired", s)
		}
	}
}

func TestTTFSSingleSpikePerPeriod(t *testing.T) {
	enc, _ := NewInputEncoder(DefaultConfig(TTFS), 3, 0)
	enc.Reset([]float64{0.9, 0.3, 0})
	counts := make([]int, 3)
	firstPhase := map[int]int{}
	for s := 0; s < 8; s++ {
		for _, ev := range enc.Step(s) {
			counts[ev.Index]++
			if _, ok := firstPhase[ev.Index]; !ok {
				firstPhase[ev.Index] = s
			}
		}
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 0 {
		t.Fatalf("TTFS spike counts = %v, want one per nonzero pixel", counts)
	}
	if firstPhase[0] >= firstPhase[1] {
		t.Fatalf("stronger input must fire earlier: %v", firstPhase)
	}
}

func TestBurstInputEncoderRejected(t *testing.T) {
	if _, err := NewInputEncoder(DefaultConfig(Burst), 4, 0); err == nil {
		t.Fatal("burst input encoder must be rejected")
	}
}

func TestPoissonEncoderRate(t *testing.T) {
	enc := &PoissonEncoder{SizeN: 1, RNG: mathx.NewRNG(42)}
	enc.Reset([]float64{0.4})
	hits := 0
	const T = 20000
	for s := 0; s < T; s++ {
		hits += len(enc.Step(s))
	}
	if rate := float64(hits) / T; math.Abs(rate-0.4) > 0.02 {
		t.Fatalf("poisson rate %v, want ~0.4", rate)
	}
	if !enc.CountsAsSpikes() || enc.Size() != 1 {
		t.Fatal("poisson metadata wrong")
	}
}

func TestEncoderResetSizeMismatchPanics(t *testing.T) {
	enc, _ := NewInputEncoder(DefaultConfig(Rate), 3, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	enc.Reset([]float64{1})
}
