// Package coding implements the neural coding schemes the paper studies:
// real, rate, phase (weighted spikes, Kim et al. 2018), and the proposed
// burst coding, plus a time-to-first-spike (TTFS) extension.
//
// A coding scheme has two facets:
//
//   - an input encoder that turns a static image into spike events over
//     time (Section 3.2's "input layer" role), and
//   - a threshold dynamics rule for hidden integrate-and-fire neurons
//     (Section 3.1's Eq. 6-9), which determines each spike's payload.
//
// Spikes are "payload events": a neuron that fires at time t transmits
// magnitude V_th(t) — the amount reset-by-subtraction removes from its
// membrane — so downstream PSPs are Σ w·payload (Eq. 5) and burst spikes
// realize the dynamic effective weight ŵ = w·g(t) of Eq. 10.
package coding

import (
	"fmt"
	"math"
)

// Scheme identifies a neural coding scheme.
type Scheme int

// The coding schemes of the paper (plus TTFS, mentioned as related work
// and implemented here as an extension).
const (
	Real Scheme = iota
	Rate
	Phase
	Burst
	TTFS
)

// String returns the lower-case scheme name used in the paper's
// "input-hidden" notation.
func (s Scheme) String() string {
	switch s {
	case Real:
		return "real"
	case Rate:
		return "rate"
	case Phase:
		return "phase"
	case Burst:
		return "burst"
	case TTFS:
		return "ttfs"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// ParseScheme converts a scheme name to its Scheme value.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "real":
		return Real, nil
	case "rate":
		return Rate, nil
	case "phase":
		return Phase, nil
	case "burst":
		return Burst, nil
	case "ttfs":
		return TTFS, nil
	default:
		return 0, fmt.Errorf("coding: unknown scheme %q", name)
	}
}

// Config parameterizes a scheme.
type Config struct {
	Scheme Scheme
	// VTh is the threshold constant v_th of Eq. 9. Rate coding uses 1.0
	// after weight normalization; burst coding trades precision against
	// spike count through this value (Fig. 2).
	VTh float64
	// Beta is the burst constant β of Eq. 8 (burst coding only).
	Beta float64
	// Period is the oscillation period k of Eq. 6 (phase coding and the
	// phase input encoder).
	Period int
	// Leak is the per-step membrane decay of the leaky-IF extension:
	// V(t) = (1-Leak)·(V(t-1) + z(t)). The paper's neuron model is pure
	// IF (Leak = 0); a small leak trades accuracy for robustness to
	// stale residual charge and is exposed for ablation.
	Leak float64
}

// DefaultConfig returns the parameters the experiment harness uses for a
// scheme: v_th=1 for rate/phase/real, v_th=0.125 and β=2 for burst (the
// paper's headline configuration), and k=8 phases.
//
// β must exceed 1: Eq. 8 contracts g on paper but the surrounding text —
// burst spikes "induce synaptic potentiation (strengthening of synapse)"
// with growing PSP steps (Fig. 1-B3) and "unbounded" transmission range —
// requires the effective weight ŵ = w·g to grow during a burst. With β=2
// a burst emits payloads v_th, 2v_th, 4v_th, ..., i.e. an LSB-first
// binary expansion of the membrane: v_th sets the precision and a
// membrane V drains in ~log2(V/v_th) spikes.
func DefaultConfig(s Scheme) Config {
	cfg := Config{Scheme: s, VTh: 1.0, Beta: 2.0, Period: 8}
	if s == Burst {
		cfg.VTh = 0.125
	}
	return cfg
}

// Validate checks parameter sanity.
func (c Config) Validate() error {
	if c.VTh <= 0 {
		return fmt.Errorf("coding: v_th must be positive, got %v", c.VTh)
	}
	if c.Leak < 0 || c.Leak >= 1 {
		return fmt.Errorf("coding: leak must be in [0,1), got %v", c.Leak)
	}
	switch c.Scheme {
	case Burst:
		if c.Beta <= 1 {
			return fmt.Errorf("coding: burst constant β must exceed 1, got %v", c.Beta)
		}
	case Phase, TTFS:
		if c.Period < 1 || c.Period > 62 {
			return fmt.Errorf("coding: phase period must be in [1,62], got %d", c.Period)
		}
	}
	return nil
}

// Pi is the phase-coding oscillation function Π(t) = 2^-(1+mod(t,k)) of
// Eq. 6.
func Pi(t, k int) float64 {
	return math.Pow(2, -float64(1+t%k))
}

// NextG advances the burst function g of Eq. 8: after a spike the
// effective weight scales by β (synaptic potentiation, β>1, so follow-up
// spikes in the burst carry geometrically larger payloads); any silent
// step resets g to 1.
func NextG(prevG float64, fired bool, beta float64) float64 {
	if fired {
		return beta * prevG
	}
	return 1.0
}

// Threshold returns V_th(t) for a neuron with burst state g under the
// configured scheme (Eq. 7 for phase, Eq. 9 for burst, constant v_th for
// rate). Real is not a hidden-layer scheme and panics.
func (c Config) Threshold(t int, g float64) float64 {
	switch c.Scheme {
	case Rate:
		return c.VTh
	case Phase:
		return Pi(t, c.Period) * c.VTh
	case Burst:
		return g * c.VTh
	case TTFS:
		// TTFS hidden neurons reuse the phase envelope but are only
		// allowed one spike per period; the encoder side enforces that.
		return Pi(t, c.Period) * c.VTh
	default:
		panic(fmt.Sprintf("coding: scheme %v has no hidden-layer threshold dynamics", c.Scheme))
	}
}

// UsesBurstState reports whether the scheme maintains per-neuron burst
// state g.
func (c Config) UsesBurstState() bool { return c.Scheme == Burst }
