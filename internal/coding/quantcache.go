package coding

import (
	"sync"
	"sync/atomic"
)

// QuantCache memoizes the per-image quantization work of the periodic
// input encoders (phase and TTFS), keyed by a hash of the image contents.
// The phase/TTFS Reset path re-derives the per-pixel bit pattern (or
// first-spike phase) with a clamp, a round, and — for TTFS — an MSB scan
// on every presentation; for serving workloads that see repeated images
// (retries, replayed traffic, batch lanes sharing an input) the cache
// turns that into a single map lookup.
//
// Entries are immutable after Store: encoders may alias a cached slice
// directly instead of copying it, which is what makes a hit allocation-
// free. The cache is safe for concurrent use and shared by every replica
// of a served model (clones inherit the pointer).
type QuantCache struct {
	mu      sync.Mutex
	max     int
	entries map[quantKey]quantEntry
	// seen records keys missed exactly once. An entry (with its image and
	// quantization copies) is only stored on a key's second sighting, so
	// unique-image traffic — the common serving case — pays one hash and
	// two map probes per Reset but never allocates; only traffic that
	// actually repeats images graduates into the cache.
	seen map[quantKey]struct{}

	hits   atomic.Int64
	misses atomic.Int64
}

// quantEntry keeps the source image alongside the quantization so a hit
// can verify pixel equality: the 64-bit content hash is not
// collision-resistant, and the serving layer feeds the cache arbitrary
// client images — a crafted collision must degrade to a miss, never
// serve another image's quantization.
type quantEntry struct {
	image []float64
	q     []uint64
}

// quantKey identifies one quantization result. The scheme is part of the
// key because phase caches the raw bit pattern while TTFS caches derived
// first-spike phases; size and period guard against improbable hash
// collisions across models.
type quantKey struct {
	hash   uint64
	scheme Scheme
	size   int
	period int
}

// DefaultQuantCacheEntries bounds a model's quantization cache: at MNIST
// scale (784 pixels ≈ 6.3 KB per entry) the default costs at most ~13 MB.
const DefaultQuantCacheEntries = 2048

// NewQuantCache returns a cache bounded to maxEntries (<= 0 uses
// DefaultQuantCacheEntries). When full, an arbitrary entry is evicted per
// insert — the workloads this serves are dominated by a small hot set, so
// approximate eviction is enough.
func NewQuantCache(maxEntries int) *QuantCache {
	if maxEntries <= 0 {
		maxEntries = DefaultQuantCacheEntries
	}
	return &QuantCache{
		max:     maxEntries,
		entries: map[quantKey]quantEntry{},
		seen:    map[quantKey]struct{}{},
	}
}

// Stats returns the lifetime hit/miss counters (serving metrics surface
// them as encoderCacheHits/encoderCacheMisses).
func (c *QuantCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// lookup returns the cached quantization for image, counting a hit or
// miss. A key match with different pixel contents (hash collision)
// counts as a miss. promote reports whether the key has now been missed
// more than once, i.e. the caller should store the freshly computed
// quantization. The returned slice must not be mutated.
func (c *QuantCache) lookup(k quantKey, image []float64) (q []uint64, ok, promote bool) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		if _, promote = c.seen[k]; !promote {
			if len(c.seen) >= c.max {
				for old := range c.seen {
					delete(c.seen, old)
					break
				}
			}
			c.seen[k] = struct{}{}
		}
	}
	c.mu.Unlock()
	if ok && !SameImage(e.image, image) {
		ok = false
		promote = true // colliding or changed entry: re-store
	}
	if ok {
		c.hits.Add(1)
		return e.q, true, false
	}
	c.misses.Add(1)
	return nil, false, promote
}

// store inserts a quantization result for image. q must not be mutated
// afterwards; the image is copied.
func (c *QuantCache) store(k quantKey, image []float64, q []uint64) {
	e := quantEntry{image: append([]float64(nil), image...), q: q}
	c.mu.Lock()
	if len(c.entries) >= c.max {
		for old := range c.entries {
			delete(c.entries, old)
			break
		}
	}
	c.entries[k] = e
	c.mu.Unlock()
}

// QuantCached is implemented by encoders whose Reset work can be memoized
// through a QuantCache (phase and TTFS, sequential and batched). Attaching
// a cache is optional; a nil-cache encoder quantizes in place as before.
type QuantCached interface {
	SetQuantCache(*QuantCache)
}
