package coding

import (
	"math/bits"

	"burstsnn/internal/kernels"
)

// BatchEvents32 is the float32 counterpart of BatchEvents: the column-form
// event stream the float32 compute plane's lockstep simulator consumes.
// Structure and ordering invariants are identical — columns ascend by
// neuron index, lanes ascend by slot within a column — only the payloads
// are float32.
//
// Payload rounding note: the spike payloads of every physical coding
// scheme (rate's unit payload, phase/TTFS's Π(t) = 2^-(1+t mod k), and
// burst's β^n·v_th with power-of-two defaults) are exactly representable
// in float32, so the stream itself typically loses nothing; the float32
// plane's tolerance contract comes from weight rounding and membrane
// accumulation, not from the events (see internal/README.md).
type BatchEvents32 struct {
	Index   []int32
	Start   []int32 // len(Index)+1; Start[0] == 0
	Lane    []int32
	Payload []float32
}

// Grow pre-sizes the buffers for up to cols columns and laneEvents total
// lane entries, so steady-state appends never allocate.
func (e *BatchEvents32) Grow(cols, laneEvents int) {
	if cap(e.Index) < cols {
		e.Index = make([]int32, 0, cols)
	}
	if cap(e.Start) < cols+1 {
		e.Start = make([]int32, 1, cols+1)
	}
	if cap(e.Lane) < laneEvents {
		e.Lane = make([]int32, 0, laneEvents)
	}
	if cap(e.Payload) < laneEvents {
		e.Payload = make([]float32, 0, laneEvents)
	}
	e.Reset()
}

// Reset empties the stream, keeping capacity.
func (e *BatchEvents32) Reset() {
	e.Index = e.Index[:0]
	if cap(e.Start) == 0 {
		e.Start = append(e.Start, 0)
	}
	e.Start = e.Start[:1]
	e.Start[0] = 0
	e.Lane = e.Lane[:0]
	e.Payload = e.Payload[:0]
}

// Cols returns the number of columns.
func (e *BatchEvents32) Cols() int { return len(e.Index) }

// LaneEvents returns the total number of (lane, payload) entries — the
// batch's spike count for the step.
func (e *BatchEvents32) LaneEvents() int { return len(e.Lane) }

// Column returns column c's neuron index, lanes, and payloads.
func (e *BatchEvents32) Column(c int) (index int32, lanes []int32, payloads []float32) {
	s, t := e.Start[c], e.Start[c+1]
	return e.Index[c], e.Lane[s:t], e.Payload[s:t]
}

// Add stages one lane entry for the column being built. Lanes must be
// staged in ascending slot order.
func (e *BatchEvents32) Add(lane int32, payload float32) {
	e.Lane = append(e.Lane, lane)
	e.Payload = append(e.Payload, payload)
}

// Commit closes the column under construction: if any lane entries were
// staged since the previous Commit, a column with the given neuron index
// is recorded. Indices must be committed in ascending order.
func (e *BatchEvents32) Commit(index int32) {
	if int(e.Start[len(e.Start)-1]) == len(e.Lane) {
		return
	}
	e.Index = append(e.Index, index)
	e.Start = append(e.Start, int32(len(e.Lane)))
}

// AddMask appends one whole column from a fired-lane bitmask with a
// uniform payload and commits it — the shape the fused FireRow kernels
// emit. m must be non-zero; bit s corresponds to lane slot s, so lanes
// come out in ascending slot order.
func (e *BatchEvents32) AddMask(index int32, m uint64, payload float32) {
	for ; m != 0; m &= m - 1 {
		e.Lane = append(e.Lane, int32(bits.TrailingZeros64(m)))
		e.Payload = append(e.Payload, payload)
	}
	e.Index = append(e.Index, index)
	e.Start = append(e.Start, int32(len(e.Lane)))
}

// AppendLane projects one lane's events out of the stream in column
// (neuron-index) order, widening payloads to float64 — the event list a
// float64 observer (test suites, probes) compares against.
func (e *BatchEvents32) AppendLane(lane int32, dst []Event) []Event {
	for c := range e.Index {
		s, t := e.Start[c], e.Start[c+1]
		for k := s; k < t; k++ {
			if e.Lane[k] == lane {
				dst = append(dst, Event{Index: int(e.Index[c]), Payload: float64(e.Payload[k])})
				break
			}
		}
	}
	return dst
}

// Step32 implementations for the batched encoders: identical event
// timing to Step (same pixels spike at the same steps in the same
// lanes), payloads emitted as float32. Phase/TTFS round the per-step
// Π(t) once; the real encoder rounds each pixel value at emission.
//
// The phase and TTFS sweeps are vectorized: their per-step payload is
// uniform across lanes, so a pixel row reduces to one lane bitmask
// (kernels.LaneMaskBit / LaneMaskEq — packed 4-wide on the avx2 tier)
// fed straight into AddMask, which emits the same ascending-lane column
// the scalar loop would. Rate (per-lane RNG draws) and real (per-pixel
// payloads) sweeps stay scalar.

func (e *batchRealEncoder) Step32(_ int, lanes int, out *BatchEvents32) {
	out.Reset()
	for i := 0; i < e.size; i++ {
		row := e.px[i*e.b : i*e.b+lanes]
		for s, v := range row {
			if v != 0 {
				out.Add(int32(s), float32(v))
			}
		}
		out.Commit(int32(i))
	}
}

func (e *batchRateEncoder) Step32(_ int, lanes int, out *BatchEvents32) {
	out.Reset()
	for i := 0; i < e.size; i++ {
		row := e.px[i*e.b : i*e.b+lanes]
		for s, v := range row {
			if v <= 0 {
				continue
			}
			if v > 1 {
				v = 1
			}
			if e.rngs[s].Bernoulli(v) {
				out.Add(int32(s), 1)
			}
		}
		out.Commit(int32(i))
	}
}

func (e *batchPhaseEncoder) Step32(t int, lanes int, out *BatchEvents32) {
	out.Reset()
	shift := uint(e.period - 1 - t%e.period)
	payload := float32(Pi(t, e.period))
	for i := 0; i < e.size; i++ {
		if m := kernels.LaneMaskBit(e.bits[i*e.b:i*e.b+lanes], shift); m != 0 {
			out.AddMask(int32(i), m, payload)
		}
	}
}

func (e *batchTTFSEncoder) Step32(t int, lanes int, out *BatchEvents32) {
	out.Reset()
	want := uint64(t%e.period) + 1
	payload := float32(Pi(t, e.period))
	for i := 0; i < e.size; i++ {
		if m := kernels.LaneMaskEq(e.phase[i*e.b:i*e.b+lanes], want); m != 0 {
			out.AddMask(int32(i), m, payload)
		}
	}
}
