package coding

import (
	"fmt"
	"math"
	"math/bits"

	"burstsnn/internal/mathx"
)

// Event is one spike: the flat index of the neuron that fired and the
// payload it transmits (see the package comment for payload semantics).
type Event struct {
	Index   int
	Payload float64
}

// InputEncoder turns a static input vector into a deterministic event
// stream, one call per simulation time step.
type InputEncoder interface {
	// Reset prepares the encoder for a new input image.
	Reset(image []float64)
	// Step returns the events emitted at time t. Implementations may
	// reuse the returned slice across calls.
	Step(t int) []Event
	// CountsAsSpikes reports whether the emitted events are physical
	// spikes (true for rate/phase/ttfs) or analog currents (false for
	// real coding), which the efficiency metrics must not count.
	CountsAsSpikes() bool
	// Size returns the number of input neurons.
	Size() int
	// BiasScale returns the factor by which downstream layers must scale
	// their per-step bias current at time t so biases stay commensurate
	// with the encoder's information rate. Real and rate coding deliver
	// the full input value every step (scale 1); phase and TTFS deliver
	// it once per period, so the bias is spread over the period with the
	// oscillation envelope (Σ over a period = 1). Without this, biases
	// are over-weighted k-fold under phase input and the readout drifts.
	BiasScale(t int) float64
}

// CloneableEncoder is an InputEncoder that can stamp out an independent
// copy of itself: same configuration (size, period, seed), fresh
// per-image state. Serving replica pools use this to share one converted
// network's weights across concurrent simulator instances. All encoders
// built by NewInputEncoder implement it.
type CloneableEncoder interface {
	InputEncoder
	// Clone returns an independent encoder equivalent to this one before
	// any Reset call.
	Clone() InputEncoder
}

// NewInputEncoder constructs the encoder for a scheme. Size is the input
// dimensionality. seed only matters for stochastic encoders (Poisson rate
// variant); the default encoders are deterministic.
func NewInputEncoder(cfg Config, size int, seed uint64) (InputEncoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Scheme {
	case Real:
		return newRealEncoder(size), nil
	case Rate:
		return newRateEncoder(size, seed), nil
	case Phase:
		return newPhaseEncoder(size, cfg.Period), nil
	case TTFS:
		return newTTFSEncoder(size, cfg.Period), nil
	case Burst:
		// The paper never uses burst as an input coding (the input is
		// static, so adaptivity buys nothing); reject it explicitly.
		return nil, fmt.Errorf("coding: burst is a hidden-layer coding, not an input coding")
	default:
		return nil, fmt.Errorf("coding: no input encoder for scheme %v", cfg.Scheme)
	}
}

// realEncoder transmits the analog pixel value as a constant input
// current every time step ("real coding" of Rueckauer et al.). Fast and
// exact, but the events are not spikes.
//
// Every encoder pre-sizes its event buffer to the input size — the
// per-step high-watermark (each pixel emits at most one event per step) —
// so Reset and Step never allocate in steady state; serving's zero-alloc
// Classify invariant depends on this (see internal/README.md).
type realEncoder struct {
	size  int
	image []float64
	buf   []Event
}

func newRealEncoder(size int) *realEncoder {
	return &realEncoder{size: size, buf: make([]Event, 0, size)}
}

func (e *realEncoder) Reset(image []float64) {
	if len(image) != e.size {
		panic(fmt.Sprintf("coding: real encoder got %d pixels, want %d", len(image), e.size))
	}
	e.image = image
	e.buf = e.buf[:0]
	for i, v := range image {
		if v != 0 {
			e.buf = append(e.buf, Event{Index: i, Payload: v})
		}
	}
}

func (e *realEncoder) Step(int) []Event      { return e.buf }
func (e *realEncoder) CountsAsSpikes() bool  { return false }
func (e *realEncoder) Size() int             { return e.size }
func (e *realEncoder) BiasScale(int) float64 { return 1 }
func (e *realEncoder) Clone() InputEncoder   { return newRealEncoder(e.size) }

// NewBatch implements BatchableEncoder.
func (e *realEncoder) NewBatch(b int) BatchEncoder { return newBatchRealEncoder(e.size, b) }

// rateEncoder emits unit-payload spikes whose frequency equals the pixel
// value: each pixel fires with Bernoulli probability v per step, the
// Poisson-like input of the rate-coding conversion literature (Diehl et
// al. 2015). Estimating a value v to k-bit precision from such a train
// needs on the order of 2^k observations — the paper's argument for why
// rate input converges slowly.
//
// The stream is reproducible without being order-dependent: the RNG is
// reseeded at every Reset from a hash of the image contents, so the same
// image always produces the same train regardless of evaluation order or
// worker partitioning.
type rateEncoder struct {
	size int
	seed uint64

	image []float64
	rng   mathx.RNG // inline so per-image reseeding does not allocate
	buf   []Event
}

func newRateEncoder(size int, seed uint64) *rateEncoder {
	return &rateEncoder{size: size, seed: seed, buf: make([]Event, 0, size)}
}

func (e *rateEncoder) Reset(image []float64) {
	if len(image) != e.size {
		panic(fmt.Sprintf("coding: rate encoder got %d pixels, want %d", len(image), e.size))
	}
	e.image = image
	e.rng.Reseed(imageHash(image) ^ e.seed)
}

// HashImage is FNV-1a over the pixel bit patterns: the content hash the
// rate encoder reseeds from (so identical images always produce identical
// trains), the quantization-cache key, and the serving batcher's
// duplicate-request key. It is fast, not collision-resistant — callers
// that act on a match must verify pixel equality with SameImage (as
// QuantCache and the batcher dedupe do).
func HashImage(image []float64) uint64 { return imageHash(image) }

// SameImage reports whether two images have identical pixel bit
// patterns — the HashImage view of the pixels, so NaN payloads cannot
// defeat the check. It is the verification a HashImage match requires
// before acting on it: a collision degrades to a non-match, never to
// another image's result.
func SameImage(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if math.Float64bits(v) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func imageHash(image []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range image {
		bits := math.Float64bits(v)
		for shift := 0; shift < 64; shift += 8 {
			h ^= bits >> shift & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func (e *rateEncoder) Step(int) []Event {
	e.buf = e.buf[:0]
	for i, v := range e.image {
		if v <= 0 {
			continue
		}
		if v > 1 {
			v = 1
		}
		if e.rng.Bernoulli(v) {
			e.buf = append(e.buf, Event{Index: i, Payload: 1})
		}
	}
	return e.buf
}

func (e *rateEncoder) CountsAsSpikes() bool  { return true }
func (e *rateEncoder) Size() int             { return e.size }
func (e *rateEncoder) BiasScale(int) float64 { return 1 }
func (e *rateEncoder) Clone() InputEncoder   { return newRateEncoder(e.size, e.seed) }

// NewBatch implements BatchableEncoder.
func (e *rateEncoder) NewBatch(b int) BatchEncoder { return newBatchRateEncoder(e.size, b, e.seed) }

// quantizeBits fills dst with each pixel's period-bit quantization
// (round(clamp(v)·2^k), saturating at all-ones for v = 1.0).
func quantizeBits(dst []uint64, image []float64, period int) {
	levels := math.Pow(2, float64(period))
	for i, v := range image {
		q := uint64(math.Round(mathx.Clamp(v, 0, 1) * levels))
		if q >= uint64(levels) {
			q = uint64(levels) - 1 // value 1.0 saturates to all-ones
		}
		dst[i] = q
	}
}

// quantizedBits returns the image's quantized bit patterns, consulting
// cache when non-nil. On a hit the returned slice aliases the immutable
// cache entry (no per-pixel work, no copy); on a miss or with no cache it
// is quantized into scratch, and on a miss a copy is stored. Callers must
// treat the result as read-only.
func quantizedBits(image []float64, period int, cache *QuantCache, scratch []uint64) []uint64 {
	if cache == nil {
		quantizeBits(scratch, image, period)
		return scratch
	}
	k := quantKey{hash: imageHash(image), scheme: Phase, size: len(image), period: period}
	q, ok, promote := cache.lookup(k, image)
	if ok {
		return q
	}
	quantizeBits(scratch, image, period)
	if promote {
		cache.store(k, image, append([]uint64(nil), scratch...))
	}
	return scratch
}

// quantizedPhases returns the image's TTFS firing phases packed as
// phase+1 (0 = silent), with the same cache/scratch contract as
// quantizedBits.
func quantizedPhases(image []float64, period int, cache *QuantCache, scratch []uint64) []uint64 {
	var k quantKey
	promote := false
	if cache != nil {
		k = quantKey{hash: imageHash(image), scheme: TTFS, size: len(image), period: period}
		var q []uint64
		var ok bool
		if q, ok, promote = cache.lookup(k, image); ok {
			return q
		}
	}
	quantizeBits(scratch, image, period)
	for i, q := range scratch {
		if q == 0 {
			continue
		}
		// Most significant set bit determines the firing phase.
		msb := bits.Len64(q) - 1
		scratch[i] = uint64(period-1-msb) + 1
	}
	if promote {
		cache.store(k, image, append([]uint64(nil), scratch...))
	}
	return scratch
}

// phaseBiasScale spreads the bias over the oscillation: Π(t)/(1-2^-k)
// sums to exactly 1 over one period, matching the one-value-per-period
// input rate of the phase and TTFS encoders.
func phaseBiasScale(t, period int) float64 {
	return Pi(t, period) / (1 - math.Pow(2, -float64(period)))
}

// phaseEncoder implements the weighted-spike input of Kim et al. 2018:
// the pixel value is quantized to k bits and bit j (MSB first) is
// transmitted at phase j with payload Π(t) = 2^-(1+j). One period carries
// the whole value exactly, so a k-bit input needs only k steps.
type phaseEncoder struct {
	size   int
	period int
	// bits holds the quantized bit pattern per pixel (MSB = phase 0). It
	// aliases either the owned scratch buffer or an immutable QuantCache
	// entry and is never written outside Reset.
	bits    []uint64
	scratch []uint64
	quant   *QuantCache
	buf     []Event
}

func newPhaseEncoder(size, period int) *phaseEncoder {
	scratch := make([]uint64, size)
	return &phaseEncoder{
		size: size, period: period,
		bits:    scratch,
		scratch: scratch,
		buf:     make([]Event, 0, size),
	}
}

// SetQuantCache implements QuantCached.
func (e *phaseEncoder) SetQuantCache(c *QuantCache) { e.quant = c }

func (e *phaseEncoder) Reset(image []float64) {
	if len(image) != e.size {
		panic(fmt.Sprintf("coding: phase encoder got %d pixels, want %d", len(image), e.size))
	}
	e.bits = quantizedBits(image, e.period, e.quant, e.scratch)
}

func (e *phaseEncoder) Step(t int) []Event {
	e.buf = e.buf[:0]
	phase := t % e.period
	// Bit (period-1-phase) of the quantized value, MSB transmitted first.
	shift := uint(e.period - 1 - phase)
	payload := Pi(t, e.period)
	for i, b := range e.bits {
		if b>>shift&1 == 1 {
			e.buf = append(e.buf, Event{Index: i, Payload: payload})
		}
	}
	return e.buf
}

func (e *phaseEncoder) CountsAsSpikes() bool { return true }
func (e *phaseEncoder) Size() int            { return e.size }
func (e *phaseEncoder) Clone() InputEncoder {
	c := newPhaseEncoder(e.size, e.period)
	c.quant = e.quant
	return c
}

// NewBatch implements BatchableEncoder.
func (e *phaseEncoder) NewBatch(b int) BatchEncoder {
	return newBatchPhaseEncoder(e.size, b, e.period, e.quant)
}

// BiasScale spreads the bias over the oscillation: Π(t)/(1-2^-k) sums to
// exactly 1 over one period, matching the one-value-per-period input rate.
func (e *phaseEncoder) BiasScale(t int) float64 {
	return phaseBiasScale(t, e.period)
}

// ttfsEncoder is the time-to-first-spike extension: each pixel emits a
// single spike per period at the phase of its most significant set bit,
// i.e. stronger inputs fire earlier and carry exponentially larger
// payloads. It transmits log2 precision with one spike — cheaper but
// coarser than phase coding.
type ttfsEncoder struct {
	size   int
	period int
	// phase holds each pixel's firing phase packed as phase+1, 0 for
	// silent (the QuantCache representation); it aliases the scratch
	// buffer or an immutable cache entry, like phaseEncoder.bits.
	phase   []uint64
	scratch []uint64
	quant   *QuantCache
	buf     []Event
}

func newTTFSEncoder(size, period int) *ttfsEncoder {
	scratch := make([]uint64, size)
	return &ttfsEncoder{
		size: size, period: period,
		phase:   scratch,
		scratch: scratch,
		buf:     make([]Event, 0, size),
	}
}

// SetQuantCache implements QuantCached.
func (e *ttfsEncoder) SetQuantCache(c *QuantCache) { e.quant = c }

func (e *ttfsEncoder) Reset(image []float64) {
	if len(image) != e.size {
		panic(fmt.Sprintf("coding: ttfs encoder got %d pixels, want %d", len(image), e.size))
	}
	e.phase = quantizedPhases(image, e.period, e.quant, e.scratch)
}

func (e *ttfsEncoder) Step(t int) []Event {
	e.buf = e.buf[:0]
	want := uint64(t%e.period) + 1
	payload := Pi(t, e.period)
	for i, p := range e.phase {
		if p == want {
			e.buf = append(e.buf, Event{Index: i, Payload: payload})
		}
	}
	return e.buf
}

func (e *ttfsEncoder) CountsAsSpikes() bool { return true }
func (e *ttfsEncoder) Size() int            { return e.size }
func (e *ttfsEncoder) Clone() InputEncoder {
	c := newTTFSEncoder(e.size, e.period)
	c.quant = e.quant
	return c
}

// NewBatch implements BatchableEncoder.
func (e *ttfsEncoder) NewBatch(b int) BatchEncoder {
	return newBatchTTFSEncoder(e.size, b, e.period, e.quant)
}

// BiasScale matches the phase encoder: one value per period.
func (e *ttfsEncoder) BiasScale(t int) float64 {
	return phaseBiasScale(t, e.period)
}

// PoissonEncoder is a stream-stateful rate encoder: unlike the default
// rate encoder it does NOT reseed per image, so successive presentations
// of the same image yield different trains. Useful for studying trial
// variability; the default encoder is preferred for reproducible
// benchmarks.
type PoissonEncoder struct {
	SizeN int
	RNG   *mathx.RNG

	image []float64
	buf   []Event
}

// Reset implements InputEncoder.
func (e *PoissonEncoder) Reset(image []float64) {
	if len(image) != e.SizeN {
		panic(fmt.Sprintf("coding: poisson encoder got %d pixels, want %d", len(image), e.SizeN))
	}
	e.image = image
}

// Step implements InputEncoder.
func (e *PoissonEncoder) Step(int) []Event {
	e.buf = e.buf[:0]
	for i, v := range e.image {
		if v > 0 && e.RNG.Bernoulli(v) {
			e.buf = append(e.buf, Event{Index: i, Payload: 1})
		}
	}
	return e.buf
}

// CountsAsSpikes implements InputEncoder.
func (e *PoissonEncoder) CountsAsSpikes() bool { return true }

// Size implements InputEncoder.
func (e *PoissonEncoder) Size() int { return e.SizeN }

// BiasScale implements InputEncoder: Poisson rate coding delivers the
// full value per step in expectation.
func (e *PoissonEncoder) BiasScale(int) float64 { return 1 }

// Clone implements CloneableEncoder. The copy starts from the current RNG
// state but advances independently, so clone trains diverge from the
// original's — the encoder is stream-stateful by design.
func (e *PoissonEncoder) Clone() InputEncoder {
	rng := *e.RNG
	return &PoissonEncoder{SizeN: e.SizeN, RNG: &rng}
}
