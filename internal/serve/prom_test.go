package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"burstsnn/internal/obs"
)

// TestPromExposition is the golden gate for the Prometheus surface: it
// drives real traffic, scrapes both routes, runs every line through the
// strict validator, and checks the families a dashboard would sit on.
func TestPromExposition(t *testing.T) {
	s := testServer(t, Config{})
	classifySome(t, s, 5)
	// One admission error so the split counter has signal.
	if _, err := s.Classify(t.Context(), ClassifyRequest{Model: "digits", Image: []float64{1}}); err == nil {
		t.Fatal("short image accepted")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var body string
	for _, path := range []string{"/metrics/prom", "/metrics?format=prom"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		rawBytes, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		raw := string(rawBytes)
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s Content-Type = %q", path, ct)
		}
		samples, err := obs.ValidatePromText(strings.NewReader(raw))
		if err != nil {
			t.Fatalf("%s failed validation: %v\n%s", path, err, raw)
		}
		if samples == 0 {
			t.Fatalf("%s: no samples", path)
		}
		body = raw
	}

	for _, want := range []string{
		`burstsnn_requests_total{model="digits"} 5`,
		`burstsnn_errors_total{model="digits",kind="admission"} 1`,
		`burstsnn_errors_total{model="digits",kind="shed"} 0`,
		`burstsnn_errors_total{model="digits",kind="simulation"} 0`,
		`burstsnn_response_cache_hits_total{model="digits"} 0`,
		`burstsnn_response_cache_misses_total{model="digits"} 5`,
		`burstsnn_degraded_requests_total{model="digits"} 0`,
		`burstsnn_queue_pressure{model="digits"} 0`,
		`burstsnn_degraded_mode{model="digits"} 0`,
		`burstsnn_stage_duration_seconds_count{model="digits",stage="simulate"} 5`,
		`burstsnn_pool_size{model="digits"} 4`,
		`burstsnn_queue_depth{model="digits"} 0`,
		`burstsnn_kernel_dispatch_info{active=`,
		`burstsnn_batch_kernel_info{model="digits",kernel=`,
		`burstsnn_batch_occupancy_count{model="digits"}`,
		`burstsnn_build_info{module=`,
		"# TYPE burstsnn_stage_duration_seconds histogram",
		"# TYPE burstsnn_uptime_seconds gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Histogram buckets must be cumulative (monotonically non-decreasing)
	// and end at the +Inf total.
	var last uint64
	var bucketLines int
	prefix := `burstsnn_stage_duration_seconds_bucket{model="digits",stage="total",`
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		bucketLines++
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("non-cumulative bucket %q after %d", line, last)
		}
		last = v
	}
	if bucketLines != 54 { // 53 finite bounds + the +Inf bucket
		t.Errorf("total-stage bucket lines = %d, want 54", bucketLines)
	}
	if last != 5 {
		t.Errorf("+Inf bucket = %d, want 5 requests", last)
	}
}
