package serve

import (
	"io"
	"net/http"
	"runtime"
	"sort"
	"time"

	"burstsnn/internal/kernels"
	"burstsnn/internal/obs"
)

// handleMetricsProm serves GET /metrics/prom (and GET /metrics?format=prom):
// the same telemetry as the JSON page in Prometheus text exposition format
// 0.0.4, with the stage-duration and batch-occupancy histograms emitted as
// native histogram families rather than pre-digested percentiles.
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeProm(w)
}

// writeProm emits the full exposition page. Families are emitted in a
// fixed order with one # HELP/# TYPE pair each and model-labelled samples
// beneath, per the format (the golden test runs this page through
// obs.ValidatePromText).
func (s *Server) writeProm(w io.Writer) error {
	pw := obs.NewPromWriter(w)

	pw.Header("burstsnn_uptime_seconds", "Server uptime.", "gauge")
	pw.Metric("burstsnn_uptime_seconds", nil, time.Since(s.start).Seconds())

	path, version := buildInfo()
	pw.Header("burstsnn_build_info", "Build metadata; value is always 1.", "gauge")
	pw.Metric("burstsnn_build_info", []obs.Label{
		{Name: "module", Value: path},
		{Name: "version", Value: version},
		{Name: "goversion", Value: runtime.Version()},
	}, 1)

	pw.Header("burstsnn_kernel_dispatch_info",
		"Kernel dispatch tier: active is the tier running now (after KERNELS_LEVEL/ForceLevel overrides), detected is the CPUID probe result; value is always 1.",
		"gauge")
	pw.Metric("burstsnn_kernel_dispatch_info", []obs.Label{
		{Name: "active", Value: kernels.Kind()},
		{Name: "detected", Value: kernels.DetectedLevel()},
	}, 1)

	resident, evicted, warming := s.lifecycleCounts()
	pw.Header("burstsnn_resident_models", "Models resident with a live pool right now.", "gauge")
	pw.Metric("burstsnn_resident_models", nil, float64(resident))
	pw.Header("burstsnn_evicted_models", "Models evicted to the conversion archive right now.", "gauge")
	pw.Metric("burstsnn_evicted_models", nil, float64(evicted))
	pw.Header("burstsnn_warming_models", "Models mid-restore from the archive right now.", "gauge")
	pw.Metric("burstsnn_warming_models", nil, float64(warming))

	// Stable model order so consecutive scrapes diff cleanly; statRows is
	// already name-sorted and includes evicted models (retained counters,
	// zero live gauges).
	type modelRow struct {
		name string
		met  *Metrics
		snap Snapshot
	}
	statrows := s.statRows()
	rows := make([]modelRow, 0, len(statrows))
	for _, row := range statrows {
		rows = append(rows, modelRow{row.name, row.met, s.fillSnapshot(row)})
	}

	counter := func(name, help string, get func(Snapshot) float64) {
		pw.Header(name, help, "counter")
		for _, r := range rows {
			pw.Metric(name, []obs.Label{{Name: "model", Value: r.name}}, get(r.snap))
		}
	}
	gauge := func(name, help string, get func(Snapshot) float64) {
		pw.Header(name, help, "gauge")
		for _, r := range rows {
			pw.Metric(name, []obs.Label{{Name: "model", Value: r.name}}, get(r.snap))
		}
	}

	counter("burstsnn_requests_total", "Successfully served classifications.",
		func(s Snapshot) float64 { return float64(s.Requests) })

	pw.Header("burstsnn_errors_total",
		"Failed requests by failure site: admission (refused before simulating: validation, shutdown), shed (overload: full queue, projected-wait refusal, deadline expiry), simulation (failed during batch execution).",
		"counter")
	for _, r := range rows {
		pw.Metric("burstsnn_errors_total", []obs.Label{
			{Name: "model", Value: r.name}, {Name: "kind", Value: "admission"},
		}, float64(r.snap.AdmissionErrors))
		pw.Metric("burstsnn_errors_total", []obs.Label{
			{Name: "model", Value: r.name}, {Name: "kind", Value: "shed"},
		}, float64(r.snap.SheddedRequests))
		pw.Metric("burstsnn_errors_total", []obs.Label{
			{Name: "model", Value: r.name}, {Name: "kind", Value: "simulation"},
		}, float64(r.snap.SimulationErrors))
	}

	counter("burstsnn_early_exits_total", "Requests that exited before their full step budget.",
		func(s Snapshot) float64 { return float64(s.EarlyExits) })
	counter("burstsnn_batches_total", "Executed lockstep microbatches.",
		func(s Snapshot) float64 { return float64(s.Batches) })
	counter("burstsnn_batch_steps_saved_total",
		"Lockstep steps avoided by retiring early-exited lanes.",
		func(s Snapshot) float64 { return float64(s.BatchStepsSaved) })
	counter("burstsnn_deduped_requests_total",
		"Requests answered by duplicate fan-out instead of simulating.",
		func(s Snapshot) float64 { return float64(s.DedupedRequests) })
	counter("burstsnn_lockstep_fallbacks_total",
		"Batches routed lockstep that degraded to sequential because the replica could not batch.",
		func(s Snapshot) float64 { return float64(s.LockstepFallbacks) })

	pw.Header("burstsnn_sched_dispatch_total",
		"Multi-request batches by the scheduling plane's dispatch verdict.",
		"counter")
	for _, r := range rows {
		pw.Metric("burstsnn_sched_dispatch_total", []obs.Label{
			{Name: "model", Value: r.name}, {Name: "mode", Value: "lockstep"},
		}, float64(r.snap.SchedLockstepBatches))
		pw.Metric("burstsnn_sched_dispatch_total", []obs.Label{
			{Name: "model", Value: r.name}, {Name: "mode", Value: "sequential"},
		}, float64(r.snap.SchedSequentialBatches))
	}

	pw.Header("burstsnn_sched_decisions_total",
		"Steering decisions by reason (see internal/serve sched.go).",
		"counter")
	for _, r := range rows {
		reasons := make([]string, 0, len(r.snap.SchedReasons))
		for reason := range r.snap.SchedReasons {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			pw.Metric("burstsnn_sched_decisions_total", []obs.Label{
				{Name: "model", Value: r.name}, {Name: "reason", Value: reason},
			}, float64(r.snap.SchedReasons[reason]))
		}
	}

	counter("burstsnn_exit_prediction_hits_total",
		"Exit-history lookups that produced a verified exit-step prediction.",
		func(s Snapshot) float64 { return float64(s.ExitHistoryHits) })
	counter("burstsnn_exit_prediction_misses_total",
		"Exit-history lookups with no usable prediction (unseen image or hash collision).",
		func(s Snapshot) float64 { return float64(s.ExitHistoryMisses) })
	counter("burstsnn_encoder_cache_hits_total", "Encoder quantization-cache hits.",
		func(s Snapshot) float64 { return float64(s.EncoderCacheHits) })
	counter("burstsnn_encoder_cache_misses_total", "Encoder quantization-cache misses.",
		func(s Snapshot) float64 { return float64(s.EncoderCacheMisses) })
	counter("burstsnn_response_cache_hits_total",
		"Cross-batch response-cache hits (replayed requests served without a queue slot or replica).",
		func(s Snapshot) float64 { return float64(s.ResponseCacheHits) })
	counter("burstsnn_response_cache_misses_total", "Cross-batch response-cache misses.",
		func(s Snapshot) float64 { return float64(s.ResponseCacheMisses) })
	counter("burstsnn_degraded_requests_total",
		"Requests served under the degraded-mode tightened exit policy.",
		func(s Snapshot) float64 { return float64(s.DegradedRequests) })
	counter("burstsnn_model_evictions_total",
		"Evict cycles: pool released, conversion and metrics archived.",
		func(s Snapshot) float64 { return float64(s.Evictions) })
	counter("burstsnn_model_warms_total",
		"Warm cycles: model restored from the archive on demand.",
		func(s Snapshot) float64 { return float64(s.Warms) })

	gauge("burstsnn_queue_depth", "Requests waiting in the model's admission queue right now.",
		func(s Snapshot) float64 { return float64(s.QueueDepth) })
	gauge("burstsnn_pool_in_flight", "Replicas checked out right now.",
		func(s Snapshot) float64 { return float64(s.PoolInFlight) })
	gauge("burstsnn_pool_size", "Replica pool bound.",
		func(s Snapshot) float64 { return float64(s.PoolSize) })
	gauge("burstsnn_queue_pressure",
		"EWMA'd admission-queue fill fraction driving degraded mode (0 with no degrade controller).",
		func(s Snapshot) float64 { return s.QueuePressure })
	gauge("burstsnn_degraded_mode",
		"1 while the model serves under the degraded-mode tightened policy, else 0.",
		func(s Snapshot) float64 {
			if s.DegradeMode == "degraded" {
				return 1
			}
			return 0
		})
	gauge("burstsnn_model_resident",
		"1 while the model is resident with a live pool, 0 while evicted.",
		func(s Snapshot) float64 {
			if s.State == StateResident {
				return 1
			}
			return 0
		})

	if s.fair != nil {
		gauge("burstsnn_fair_weight", "Configured fair-share weight.",
			func(s Snapshot) float64 { return s.FairWeight })
		gauge("burstsnn_fair_share",
			"Normalized fair share of the execution-slot capacity (weight over sum of weights).",
			func(s Snapshot) float64 { return s.FairShare })
		gauge("burstsnn_fair_waiting",
			"Batches waiting for a fair execution slot right now (persistently high with few grants = starvation).",
			func(s Snapshot) float64 { return float64(s.FairWaiting) })
		counter("burstsnn_fair_grants_total", "Execution slots granted by the fair dispatcher.",
			func(s Snapshot) float64 { return float64(s.FairGrants) })
	}

	pw.Header("burstsnn_batch_kernel_info",
		"Resolved lockstep compute plane per model; value is always 1.", "gauge")
	for _, r := range rows {
		if k := r.snap.BatchKernel; k != "" {
			pw.Metric("burstsnn_batch_kernel_info", []obs.Label{
				{Name: "model", Value: r.name}, {Name: "kernel", Value: k},
			}, 1)
		}
	}

	pw.Header("burstsnn_scheduler_info",
		"Resolved batch-steering policy per model; value is always 1.", "gauge")
	for _, r := range rows {
		if sc := r.snap.Scheduler; sc != "" {
			pw.Metric("burstsnn_scheduler_info", []obs.Label{
				{Name: "model", Value: r.name}, {Name: "scheduler", Value: sc},
			}, 1)
		}
	}

	pw.Header("burstsnn_stage_duration_seconds",
		"Per-request stage spans (see internal/obs for the taxonomy).", "histogram")
	for _, r := range rows {
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			pw.Histogram("burstsnn_stage_duration_seconds", []obs.Label{
				{Name: "model", Value: r.name}, {Name: "stage", Value: st.String()},
			}, r.met.StageHistogram(st).Snapshot())
		}
	}

	pw.Header("burstsnn_batch_occupancy",
		"Lane occupancy of executed lockstep microbatches.", "histogram")
	for _, r := range rows {
		pw.Histogram("burstsnn_batch_occupancy",
			[]obs.Label{{Name: "model", Value: r.name}},
			r.met.OccupancyHistogram().Snapshot())
	}

	pw.Header("burstsnn_exit_prediction_error_steps",
		"Absolute predicted-vs-actual exit-step error over predicted lanes (le=0 counts exact predictions).",
		"histogram")
	for _, r := range rows {
		pw.Histogram("burstsnn_exit_prediction_error_steps",
			[]obs.Label{{Name: "model", Value: r.name}},
			r.met.ExitPredictionHistogram().Snapshot())
	}

	return pw.Flush()
}
