// Package serve is the online inference-serving subsystem: it turns
// trained-and-converted spiking networks into a concurrent, low-latency
// classification service.
//
// The pieces, composable on their own or behind the HTTP server:
//
//   - Registry: names a trained DNN, converts it once per (model, hybrid)
//     configuration, and caches the conversion;
//   - Pool: a checkout pool of weight-sharing simulator replicas (the
//     simulator is stateful, so a request holds a replica exclusively);
//   - Classify / ExitPolicy: the early-exit engine — the simulator stops
//     as soon as the readout's top-1 prediction has been stable for a
//     configurable window (optionally with a confidence margin), turning
//     the paper's accuracy-vs-timestep latency win into a serving win;
//   - Batcher: a microbatching queue (max-batch / max-delay) that
//     amortizes replica checkout under load;
//   - Server: the HTTP JSON API (POST /v1/classify, GET /v1/models,
//     GET /v1/trace, /healthz, /metrics — JSON and Prometheus text via
//     /metrics/prom) with per-model metrics, per-request stage tracing
//     (internal/obs), and graceful shutdown.
//
// Everything is deterministic: the same image and policy produce the same
// prediction and step count on any replica, regardless of pool contention
// or batching.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/kernels"
	"burstsnn/internal/obs"
)

// Config tunes the server.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8344").
	Addr string
	// MaxBatch is the microbatch size limit (default 8).
	MaxBatch int
	// MaxDelay is how long a batch waits for company after its first
	// request (default 2ms). Negative dispatches immediately.
	MaxDelay time.Duration
	// QueueDepth bounds each model's admission queue; Submits beyond it
	// are shed with ErrOverloaded (HTTP 429 + Retry-After) rather than
	// blocked. Default 4×MaxBatch×GOMAXPROCS — the queue scales with the
	// cores (and so the default pool width) actually draining it, so a
	// wide machine is not throttled by a 1-core queue bound. The old
	// fixed bound is reachable explicitly (snnserve -queue-depth).
	QueueDepth int
	// LockstepBatch selects the scheduling policy for multi-request
	// microbatches: lockstep through the batch simulator (amortized
	// scatter-table walks, SIMD lane kernels), or back to back on the
	// replica. See internal/README.md "The scheduling plane".
	//
	//   - LockstepAuto (the default): with the float32 plane on a packed
	//     dispatch tier (sse or avx2), an occupancy feedback controller
	//     (AdaptiveSched) steers each microbatch from measured lane
	//     occupancy — lockstep exactly when the batch's estimated
	//     occupancy clears OccupancyCrossover, the measured break-even
	//     point (see BENCH_batch.json and internal/README.md "When
	//     lockstep pays"). Until the controller has measured enough
	//     batches it falls back to the static ≥6-request rule. On the
	//     purego tier, or the f64 plane, auto is always sequential.
	//   - LockstepStatic: the pre-measurement policy — a fixed
	//     ≥6-request rule on packed f32 tiers, sequential otherwise
	//     (what LockstepAuto meant before the adaptive controller).
	//   - LockstepOn / LockstepOff: force the choice for every
	//     multi-request batch either way.
	//
	// Resolved once per model at Register time (after any
	// kernels.ForceLevel / KERNELS_LEVEL override has been applied).
	LockstepBatch string
	// OccupancyCrossover overrides the occupancy at which the adaptive
	// scheduler (LockstepAuto) switches a microbatch to lockstep
	// execution. 0 uses DefaultOccupancyCrossover, the measured
	// break-even on the packed tiers.
	OccupancyCrossover float64
	// ExitHistorySize bounds the per-model (image-hash → observed exit
	// step) history behind exit-aware batch forming: 0 uses
	// DefaultExitHistoryEntries, negative disables the history entirely
	// (no exit predictions, FIFO batch forming).
	ExitHistorySize int
	// BatchKernel selects the lockstep simulator's compute plane:
	// BatchKernelF32 (the default — float32 state over the
	// internal/kernels block primitives, tolerance contract) or
	// BatchKernelF64 (scalar float64, bit-identical to the sequential
	// path). Picked once at registration; /metrics reports the resolved
	// variant per model — for the float32 plane that is the kernel
	// dispatch tier actually running ("f32", "f32-sse", or "f32-avx2";
	// see internal/kernels and KERNELS_LEVEL). See internal/README.md
	// "The float32 compute plane" for the contract each plane offers.
	BatchKernel string
	// RequestTimeout bounds one classification end to end (default 30s).
	// The resulting deadline also drives admission: a request whose
	// remaining deadline is below the projected queue wait is shed
	// immediately (429) instead of queued to time out.
	RequestTimeout time.Duration
	// ResponseCacheSize bounds each model's cross-batch
	// (image-hash, policy) → Outcome response cache: replayed requests
	// are answered without a queue slot or replica checkout, with
	// pixel-verified hits (collisions degrade to misses — see
	// ResponseCache). 0 uses DefaultResponseCacheEntries; negative
	// disables the cache. Cached outcomes are byte-identical to fresh
	// classification (the simulator is deterministic), so the cache is
	// on by default.
	ResponseCacheSize int
	// ResponseCacheTTL bounds how long a cached outcome may be served
	// (0 uses DefaultResponseCacheTTL).
	ResponseCacheTTL time.Duration
	// Degrade enables graceful degradation: a per-model controller
	// EWMAs admission-queue pressure and, while it is high, serves every
	// admitted request under a tightened exit policy (halved step
	// budget — see DegradeController.Tighten), relaxing again on
	// recovery. Off by default: degraded outcomes intentionally differ
	// from the full-budget ones, so the trade is opt-in. Mode and
	// pressure are visible in /metrics, /metrics/prom, and /healthz.
	Degrade bool
	// InjectLatency artificially extends every batch's replica hold time
	// (overload-testing hook used by the selftest to saturate a pool
	// deterministically; zero in production).
	InjectLatency time.Duration
	// MaxResidentModels bounds how many models stay resident at once
	// (0 = unbounded). Registering or warming past the bound evicts the
	// least-recently-used other model: its queue drains on the live pool,
	// the pool is released, and the conversion + metrics are archived so
	// the next request for the name warms it back in transparently (see
	// internal/README.md "Model lifecycle & fairness").
	MaxResidentModels int
	// EvictIdle, when positive, evicts any resident model that has served
	// no request for this long (same archive/warm cycle as the resident
	// bound). Zero disables idle eviction.
	EvictIdle time.Duration
	// FairSlots enables the cross-model weighted-fair dispatcher with
	// this many execution slots: every batch acquires a slot before
	// replica checkout, and slots are granted across models in weighted
	// start-time-fair order, so one saturated model cannot starve the
	// others' share of the machine. 0 auto-enables with GOMAXPROCS slots
	// when ModelWeights is non-empty (off otherwise); negative forces it
	// off.
	FairSlots int
	// ModelWeights assigns fair-share weights by model name (unlisted
	// models weigh 1; weights ≤ 0 are treated as 1). Non-empty weights
	// auto-enable the fair dispatcher (see FairSlots).
	ModelWeights map[string]float64
	// TraceCapacity bounds the recent-trace ring behind GET /v1/trace
	// (default 256 traces; negative disables tracing entirely).
	TraceCapacity int
	// SlowTraceThreshold pins any request at or over this end-to-end
	// latency into the slowest-retained trace set, so tail spikes
	// survive ring turnover until scraped (default 250ms; negative
	// disables pinning).
	SlowTraceThreshold time.Duration
	// Logger, when set, emits one structured line per classification
	// (request ID, model, stage spans, outcome) — `snnserve -log`.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's handler — `snnserve -pprof`. Off by default: profiling
	// endpoints are opt-in on a serving port.
	EnablePprof bool
}

// BatchKernel values for Config: the float32 kernel plane (default) and
// the bit-exact float64 plane.
const (
	BatchKernelF32 = "f32"
	BatchKernelF64 = "f64"
)

// LockstepBatch values for Config.
const (
	LockstepAuto   = "auto"
	LockstepStatic = "static"
	LockstepOn     = "on"
	LockstepOff    = "off"
)

// autoLockstepMinLanes is the batch size from which the static rule
// (LockstepStatic, and LockstepAuto's cold-start fallback) routes a
// microbatch through the lockstep simulator: the measured crossover on
// the packed tiers lies between the B=4 (lockstep ~0.7–0.8× of
// sequential) and B=8 (~1.4–2.0×) benchmark points, so the rule takes
// the midpoint and leaves smaller batches on the sequential path.
const autoLockstepMinLanes = 6

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8344"
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.BatchKernel == "" {
		c.BatchKernel = BatchKernelF32
	}
	if c.LockstepBatch == "" {
		c.LockstepBatch = LockstepAuto
	}
	if c.TraceCapacity == 0 {
		c.TraceCapacity = 256
	}
	if c.SlowTraceThreshold == 0 {
		c.SlowTraceThreshold = 250 * time.Millisecond
	}
	return c
}

// resolvedKernel maps a Config.BatchKernel value to the concrete variant
// name reported in /metrics and BENCH_batch.json: the float32 plane
// resolves to the kernel dispatch tier active right now (kernels.Kind
// tracks ForceLevel/KERNELS_LEVEL), so /metrics names the tier the
// model's kernels actually run on.
func resolvedKernel(k string) string {
	if k == BatchKernelF64 {
		return kernels.KindF64
	}
	return kernels.Kind()
}

// ClassifyRequest is the POST /v1/classify body.
type ClassifyRequest struct {
	// Model names a registered model.
	Model string `json:"model"`
	// Image is the flat CHW pixel vector in [0,1]; its length must equal
	// the model's input size.
	Image []float64 `json:"image"`
	// MaxSteps overrides the model's per-request budget (0 = model
	// default; capped at the model's configured budget).
	MaxSteps int `json:"maxSteps,omitempty"`
	// NoEarlyExit forces the full step budget (for A/B-ing the early-exit
	// engine against fixed-latency inference).
	NoEarlyExit bool `json:"noEarlyExit,omitempty"`
}

// ClassifyResult is the POST /v1/classify response. cmd/snneval -json
// emits the same schema per image, so offline and online results are
// directly comparable.
type ClassifyResult struct {
	Model      string `json:"model"`
	Prediction int    `json:"prediction"`
	// Label and Correct are set by offline evaluation (snneval -json),
	// where ground truth is known; the server omits them.
	Label   *int  `json:"label,omitempty"`
	Correct *bool `json:"correct,omitempty"`
	// Steps is the simulated step count; EarlyExit reports whether the
	// engine stopped before MaxSteps.
	Steps     int  `json:"steps"`
	MaxSteps  int  `json:"maxSteps"`
	EarlyExit bool `json:"earlyExit"`
	// Margin is the mean per-step readout gap top1−top2 at exit.
	Margin float64 `json:"margin"`
	// Spike counts over the run (the paper's efficiency metric).
	InputSpikes  int `json:"inputSpikes"`
	HiddenSpikes int `json:"hiddenSpikes"`
	Spikes       int `json:"spikes"`
	// LatencyMs is wall-clock time including queueing and batching.
	LatencyMs float64 `json:"latencyMs"`
	// Cached marks a response served from the cross-batch response cache
	// (no queue wait, no simulation); Degraded marks a request served
	// under the degraded-mode tightened exit policy.
	Cached   bool `json:"cached,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// RequestID identifies this request in the server's trace ring: the
	// matching GET /v1/trace entry carries the same id with the
	// per-stage breakdown. Empty for in-process calls without tracing.
	RequestID string `json:"requestId,omitempty"`
}

// Server is the inference-serving frontend: a Registry plus one
// microbatching queue per model and the HTTP API. Each resident model is
// one entry — an atomically-swapped (model, batcher) pair — so a request
// can never pair one registration's weights with another's queue (see
// lifecycle.go for the registration/eviction/warming state machine).
type Server struct {
	cfg   Config
	reg   *Registry
	start time.Time
	// traces retains recent + slowest request traces for GET /v1/trace
	// (nil when tracing is disabled); reqID numbers requests.
	traces *obs.Ring
	reqID  atomic.Uint64
	// fair is the cross-model weighted-fair slot dispatcher (nil unless
	// enabled; see Config.FairSlots).
	fair *FairDispatcher

	mu      sync.Mutex
	entries map[string]*entry
	warming map[string]*warmOp
	// epochs counts installs and removals per model name. A warm leader
	// samples the epoch when it claims the singleflight and installs only
	// if it is unchanged, so a restore can never clobber a newer
	// registration (or resurrect a name removed mid-warm). Never deleted:
	// a fresh epoch of 0 after removal could alias a sampled one.
	epochs  map[string]uint64
	httpSrv *http.Server
	lnAddr  string
	closed  bool

	// evictStop/evictDone bracket the idle evictor goroutine (nil when
	// Config.EvictIdle is zero).
	evictStop chan struct{}
	evictDone chan struct{}
}

// New builds a Server with an empty registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(),
		start:   time.Now(),
		entries: map[string]*entry{},
		warming: map[string]*warmOp{},
		epochs:  map[string]uint64{},
	}
	if cfg.FairSlots > 0 || (cfg.FairSlots == 0 && len(cfg.ModelWeights) > 0) {
		capacity := cfg.FairSlots
		if capacity <= 0 {
			capacity = runtime.GOMAXPROCS(0)
		}
		s.fair = NewFairDispatcher(capacity)
	}
	if cfg.TraceCapacity > 0 {
		thr := cfg.SlowTraceThreshold
		if thr < 0 {
			thr = 0 // pinning disabled
		}
		s.traces = obs.NewRing(cfg.TraceCapacity, 32, thr)
	}
	if cfg.EvictIdle > 0 {
		s.evictStop = make(chan struct{})
		s.evictDone = make(chan struct{})
		go s.evictIdleLoop()
	}
	return s
}

// Traces exposes the server's trace ring (nil when disabled) for
// in-process consumers like the selftest.
func (s *Server) Traces() *obs.Ring { return s.traces }

// Registry exposes the model registry (for listing or direct pool use).
func (s *Server) Registry() *Registry { return s.reg }

// collaborators is a registration's per-model pipeline state built from
// the server config: scheduling policy, exit history, response cache,
// and degrade controller. A fresh set is built for every install —
// initial registration, hot swap, and evict/warm restore alike.
type collaborators struct {
	sched   Scheduler
	history *ExitHistory
	cache   *ResponseCache
	degrade *DegradeController
	f32     bool
}

// buildCollaborators resolves the kernel plane and scheduling policy
// from the server config. The batch kernel variant is picked here, once
// per install: every replica of the model will build (at most) one
// lockstep simulator on the configured plane, and /metrics reports the
// resolved variant as batchKernel.
func (s *Server) buildCollaborators() (collaborators, error) {
	switch s.cfg.BatchKernel {
	case BatchKernelF32, BatchKernelF64:
	default:
		return collaborators{}, fmt.Errorf("serve: unknown batch kernel %q (want %q or %q)",
			s.cfg.BatchKernel, BatchKernelF32, BatchKernelF64)
	}
	f32 := s.cfg.BatchKernel != BatchKernelF64
	// packed: the regime where lockstep can beat the sequential engine at
	// all — the float32 plane on a SIMD dispatch tier (the resolved tier
	// at this moment; ForceLevel/KERNELS_LEVEL overrides apply at
	// startup). Outside it, auto and static never dispatch lockstep.
	packed := f32 && kernels.ActiveLevel() != kernels.LevelPurego
	var sched Scheduler
	switch s.cfg.LockstepBatch {
	case LockstepOn:
		sched = NewStaticSched(2)
	case LockstepOff:
		sched = NewStaticSched(0)
	case LockstepStatic:
		// The pre-measurement rule: a fixed request-count threshold in
		// the winning bracket of BENCH_batch.json, sequential off the
		// packed tiers.
		if packed {
			sched = NewStaticSched(autoLockstepMinLanes)
		} else {
			sched = NewStaticSched(0)
		}
	case LockstepAuto:
		// Measurement-driven: the occupancy feedback controller steers
		// each microbatch from the measured occupancy of recent batches
		// (and per-lane exit predictions), with the static rule as its
		// cold-start fallback.
		if packed {
			sched = NewAdaptiveSched(s.cfg.OccupancyCrossover, autoLockstepMinLanes)
		} else {
			sched = NewStaticSched(0)
		}
	default:
		return collaborators{}, fmt.Errorf("serve: unknown lockstep mode %q (want %q, %q, %q, or %q)",
			s.cfg.LockstepBatch, LockstepAuto, LockstepStatic, LockstepOn, LockstepOff)
	}
	c := collaborators{sched: sched, f32: f32}
	if s.cfg.ExitHistorySize >= 0 {
		c.history = NewExitHistory(s.cfg.ExitHistorySize)
	}
	if s.cfg.ResponseCacheSize >= 0 {
		c.cache = NewResponseCache(s.cfg.ResponseCacheSize, s.cfg.ResponseCacheTTL)
	}
	if s.cfg.Degrade {
		c.degrade = NewDegradeController(0, 0)
	}
	return c, nil
}

// Register converts a model and makes it resident with a live request
// queue. Re-registering a name hot-swaps it: the (model, batcher) pair
// is replaced atomically — no request can pair the new model's weights
// with the old queue or vice versa — and the displaced queue hands its
// requests to the new one, so a swap under load costs latency, never
// errors. If the install pushes the resident count past
// Config.MaxResidentModels, the least-recently-used other model is
// evicted.
func (s *Server) Register(cfg ModelConfig, net *dnn.Network, normSamples []dataset.Sample) (*Model, error) {
	c, err := s.buildCollaborators()
	if err != nil {
		return nil, err
	}
	m, err := s.reg.Prepare(cfg, net, normSamples)
	if err != nil {
		return nil, err
	}
	e, err := s.installModel(m, c)
	if err != nil {
		return nil, err
	}
	s.enforceResidentBound(cfg.Name)
	return e.model, nil
}

// RegisterFile loads a dnn.SaveModelFile model and registers it.
func (s *Server) RegisterFile(cfg ModelConfig, path string, normSamples []dataset.Sample) (*Model, error) {
	_, net, err := dnn.LoadModelFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", cfg.Name, err)
	}
	return s.Register(cfg, net, normSamples)
}

// Classify runs one request through the model's batching queue and
// replica pool. It is the in-process path the HTTP handler, the selftest
// load generator, and offline evaluation all share. An evicted model is
// warmed back in transparently (the request blocks behind the
// singleflight restore); a request that races a hot swap or eviction
// re-resolves the entry instead of failing.
func (s *Server) Classify(ctx context.Context, req ClassifyRequest) (ClassifyResult, error) {
	rid := s.requestID()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	began := time.Now()
	var (
		m      *Model
		policy ExitPolicy
		out    Outcome
		stages obs.StageTimes
		flags  SubmitFlags
		err    error
	)
	for attempt := 0; ; attempt++ {
		var e *entry
		e, err = s.resolveEntry(ctx, req.Model)
		if err != nil {
			return ClassifyResult{}, err
		}
		m = e.model
		if len(req.Image) != m.InputSize() {
			m.Metrics().ObserveAdmissionError()
			return ClassifyResult{}, fmt.Errorf("serve: model %q expects %d pixels, got %d",
				req.Model, m.InputSize(), len(req.Image))
		}
		policy = m.Config().Exit
		if req.MaxSteps != 0 {
			if req.MaxSteps < 0 || req.MaxSteps > m.Config().Steps {
				m.Metrics().ObserveAdmissionError()
				return ClassifyResult{}, fmt.Errorf("serve: maxSteps must be in [1,%d], got %d",
					m.Config().Steps, req.MaxSteps)
			}
			policy.MaxSteps = req.MaxSteps
			if policy.MinSteps > policy.MaxSteps {
				policy.MinSteps = policy.MaxSteps
			}
		}
		if req.NoEarlyExit {
			policy.StableWindow = 0
		}
		e.touch()
		out, stages, flags, err = e.batcher.SubmitTraced(ctx, req.Image, policy)
		if err != nil && errors.Is(err, ErrClosed) && attempt < 3 && !s.isClosed() {
			// The entry was evicted or unregistered between resolve and
			// submit: re-resolve (warming the model back in if it was
			// evicted; 404ing if it is truly gone). Hot swaps never land
			// here — the displaced batcher forwards to its successor.
			continue
		}
		break
	}
	latency := time.Since(began)
	if err != nil {
		// Split error accounting three ways: overload sheds (queue full,
		// projected-wait refusal, deadline expiry, cancellation) are
		// distinguishable from bad-input/shutdown admission errors, and
		// both from failures inside batch execution.
		switch {
		case isShedError(err):
			m.Metrics().ObserveShed()
		case isAdmissionError(err):
			m.Metrics().ObserveAdmissionError()
		default:
			m.Metrics().ObserveSimError()
		}
		s.record(rid, req.Model, began, latency, stages, out, flags, m, err)
		return ClassifyResult{}, err
	}
	if flags.Degraded {
		m.Metrics().ObserveDegraded()
	}
	m.Metrics().Observe(out, latency)
	if flags.Cached {
		// A cache hit never entered the pipeline: record only the
		// end-to-end span so the per-stage histograms stay pure
		// measurements of executed work.
		m.Metrics().ObserveTotalOnly(latency)
	} else {
		m.Metrics().ObserveStages(stages, latency)
	}
	s.record(rid, req.Model, began, latency, stages, out, flags, m, nil)
	return ClassifyResult{
		Model:        req.Model,
		Prediction:   out.Prediction,
		Steps:        out.Steps,
		MaxSteps:     policy.MaxSteps,
		EarlyExit:    out.EarlyExit,
		Margin:       out.Margin,
		InputSpikes:  out.InputSpikes,
		HiddenSpikes: out.HiddenSpikes,
		Spikes:       out.TotalSpikes(),
		LatencyMs:    float64(latency) / float64(time.Millisecond),
		Cached:       flags.Cached,
		Degraded:     flags.Degraded,
		RequestID:    rid,
	}, nil
}

// requestID returns the next request id ("" with tracing disabled — the
// id exists to be looked up in the ring).
func (s *Server) requestID() string {
	if s.traces == nil {
		return ""
	}
	return strconv.FormatUint(s.reqID.Add(1), 16)
}

// isShedError reports whether err is an overload shed: the admission
// plane refused the request (full queue, projected wait past the
// deadline) or its deadline/cancellation fired before execution
// completed. Sheds are counted separately (sheddedRequests) so overload
// is distinguishable from bad input and shutdown.
func isShedError(err error) bool {
	return errors.Is(err, ErrOverloaded) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// isAdmissionError reports whether err happened before the request
// simulated without being an overload shed: today that is batcher
// shutdown (input validation errors are counted at the call site).
func isAdmissionError(err error) bool {
	return errors.Is(err, ErrClosed)
}

// record adds the request's trace to the ring and emits the structured
// request log line, when either is enabled.
func (s *Server) record(rid, model string, began time.Time, latency time.Duration,
	stages obs.StageTimes, out Outcome, flags SubmitFlags, m *Model, err error) {
	if s.traces == nil && s.cfg.Logger == nil {
		return
	}
	tr := obs.Trace{
		ID:         rid,
		Model:      model,
		Start:      began,
		Steps:      out.Steps,
		EarlyExit:  out.EarlyExit,
		Prediction: out.Prediction,
		Deduped:    flags.Deduped,
		Cached:     flags.Cached,
		Degraded:   flags.Degraded,
	}
	tr.SetTimes(stages, latency)
	if stages.Lockstep {
		tr.Kernel = m.Metrics().BatchKernel()
	}
	if err != nil {
		tr.Error = err.Error()
	}
	if s.traces != nil {
		s.traces.Add(tr)
	}
	if l := s.cfg.Logger; l != nil {
		attrs := []slog.Attr{
			slog.String("id", rid),
			slog.String("model", model),
			slog.Float64("totalMs", tr.TotalMs),
			slog.Float64("queueMs", tr.QueueMs),
			slog.Float64("simulateMs", tr.SimulateMs),
			slog.Int("steps", out.Steps),
			slog.Bool("earlyExit", out.EarlyExit),
			slog.Bool("lockstep", stages.Lockstep),
			slog.Int("lanes", stages.Lanes),
		}
		if flags.Deduped {
			attrs = append(attrs, slog.Bool("deduped", true))
		}
		if flags.Cached {
			attrs = append(attrs, slog.Bool("cached", true))
		}
		if flags.Degraded {
			attrs = append(attrs, slog.Bool("degraded", true))
		}
		if err != nil {
			attrs = append(attrs, slog.String("error", err.Error()))
			l.LogAttrs(context.Background(), slog.LevelWarn, "classify", attrs...)
			return
		}
		attrs = append(attrs, slog.Int("prediction", out.Prediction))
		l.LogAttrs(context.Background(), slog.LevelInfo, "classify", attrs...)
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", s.handleClassify)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("DELETE /v1/models/{name}", s.handleUnregister)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics/prom", s.handleMetricsProm)
	mux.HandleFunc("GET /metrics/shard", s.handleShardStats)
	mux.HandleFunc("POST /v1/pool", s.handlePoolResize)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	res, err := s.Classify(r.Context(), req)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrOverloaded):
			// Shed at admission: tell the client when the queue should
			// have drained enough to try again.
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(req.Model)))
		case errors.Is(err, ErrClosed), context.Cause(r.Context()) != nil:
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded):
			// The server-side RequestTimeout expired (overload), not a
			// malformed request.
			status = http.StatusGatewayTimeout
		}
		if !s.reg.Known(req.Model) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// RetryAfter is the model queue's projected drain time (the Retry-After
// hint on 429s), floored at one second. Exported so a fleet front tier
// can surface the owning shard's projection — not a fleet average — when
// it sheds on that shard's behalf.
func (s *Server) RetryAfter(model string) time.Duration {
	s.mu.Lock()
	e := s.entries[model]
	s.mu.Unlock()
	if e == nil {
		return time.Second
	}
	return e.batcher.RetryAfter()
}

// Pressure reports the model queue's smoothed fill fraction in [0,1]
// (see Batcher.Pressure) — the fleet autoscaler's per-shard control
// signal. Zero for unknown models.
func (s *Server) Pressure(model string) float64 {
	s.mu.Lock()
	e := s.entries[model]
	s.mu.Unlock()
	if e == nil {
		return 0
	}
	return e.batcher.Pressure()
}

// ResizePool retargets the model's replica pool within [1, MaxReplicas]
// (see Pool.Resize), returning the clamped width. The fleet autoscaler
// calls this — directly in process, or through POST /v1/pool on a worker
// process.
func (s *Server) ResizePool(model string, replicas int) (int, error) {
	m, err := s.reg.Get(model)
	if err != nil {
		return 0, err
	}
	return m.Pool().Resize(replicas)
}

// retryAfterSeconds rounds the model queue's projected drain time up to
// whole seconds (the Retry-After unit), floored at 1.
func (s *Server) retryAfterSeconds(model string) int {
	secs := int(math.Ceil(s.RetryAfter(model).Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	// ListAll: evicted models stay listed (state "evicted", 0 replicas) —
	// they are still servable, one warm away.
	writeJSON(w, http.StatusOK, map[string]any{"models": s.reg.ListAll()})
}

// handleTrace serves the recent-trace ring: the newest traces (up to
// ?n=, default 32, capped at the ring's capacity) plus the pinned
// slowest set, newest/slowest first.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled (TraceCapacity < 0)"))
		return
	}
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", q))
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"recent":          s.traces.Recent(n),
		"slow":            s.traces.Slow(),
		"slowThresholdMs": float64(s.traces.SlowThreshold()) / float64(time.Millisecond),
		"capacity":        s.traces.Capacity(),
	})
}

// buildInfo returns the main module path and version from the embedded
// build info ("unknown" outside module builds, e.g. some test binaries).
func buildInfo() (path, version string) {
	path, version = "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			path = bi.Main.Path
		}
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
	}
	return path, version
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	path, version := buildInfo()
	// Per-model overload state: degraded-mode status and the smoothed
	// queue-pressure signal driving it, so a health probe sees "up but
	// degraded" without parsing /metrics.
	overload := map[string]any{}
	s.mu.Lock()
	for name, e := range s.entries {
		mode, pressure := e.batcher.DegradeState()
		overload[name] = map[string]any{"mode": mode, "queuePressure": pressure}
	}
	s.mu.Unlock()
	resident, evicted, warmingN := s.lifecycleCounts()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"uptimeSec":  time.Since(s.start).Seconds(),
		"module":     path,
		"version":    version,
		"goVersion":  runtime.Version(),
		"goroutines": runtime.NumGoroutine(),
		"models":     resident,
		"lifecycle": map[string]int{
			"resident": resident, "evicted": evicted, "warming": warmingN,
		},
		"overload": overload,
		"kernels": map[string]string{
			// active is the tier actually dispatching (after any
			// KERNELS_LEVEL / ForceLevel override); detected is what CPUID
			// probing found — a mismatch means an override is in effect.
			"active":   kernels.Kind(),
			"detected": kernels.DetectedLevel(),
		},
	})
}

// snapshotModels collects one Snapshot per known model — resident or
// evicted (retained metrics, zero live gauges) — with the live gauges
// (queue depth, pool checkouts, fair share) filled in at scrape time.
func (s *Server) snapshotModels() map[string]Snapshot {
	models := map[string]Snapshot{}
	for _, row := range s.statRows() {
		models[row.name] = s.fillSnapshot(row)
	}
	return models
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		s.handleMetricsProm(w, r)
		return
	}
	resident, evicted, warmingN := s.lifecycleCounts()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptimeSec": time.Since(s.start).Seconds(),
		"lifecycle": map[string]int{
			"resident": resident, "evicted": evicted, "warming": warmingN,
		},
		"models": s.snapshotModels(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ListenAndServe starts the HTTP server on cfg.Addr and blocks until
// Shutdown (returning nil) or a listener error.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve runs the HTTP server on an existing listener (useful for
// ephemeral ports) and blocks like ListenAndServe.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.httpSrv = srv
	s.lnAddr = ln.Addr().String()
	s.mu.Unlock()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Addr returns the bound listen address once Serve is running ("" before).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lnAddr
}

// Shutdown gracefully stops the server: the HTTP listener stops accepting,
// in-flight requests finish (bounded by ctx), the idle evictor stops,
// then every model queue drains. Safe to call without a running HTTP
// server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	srv := s.httpSrv
	batchers := make([]*Batcher, 0, len(s.entries))
	for _, e := range s.entries {
		batchers = append(batchers, e.batcher)
	}
	s.mu.Unlock()

	if s.evictStop != nil {
		close(s.evictStop)
		<-s.evictDone
	}
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	for _, b := range batchers {
		b.Close()
	}
	return err
}
