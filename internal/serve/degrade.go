package serve

import "sync"

// Degraded-mode defaults. Pressure is the EWMA'd admission-queue
// fill fraction (depth / capacity) sampled at every submit; the enter
// and exit thresholds are deliberately far apart so the mode doesn't
// flap at the boundary (classic hysteresis), and the EWMA weight
// matches AdaptiveSched's occupancy filter — both are smoothing the
// same kind of bursty per-event signal.
const (
	DefaultDegradeEnterPressure = 0.75
	DefaultDegradeExitPressure  = 0.25

	degradeEWMAWeight = 0.25
)

// DegradeController decides when serving should trade answer quality
// for queue headroom. It watches admission-queue pressure and flips a
// two-state machine (normal ⇄ degraded) with hysteresis: enter when
// the smoothed fill fraction reaches the enter threshold, leave only
// once it has fallen back below the exit threshold. While degraded,
// the batcher runs every admitted request under Tighten(policy) — a
// halved simulation budget — so each queued request drains in roughly
// half the steps and pressure self-corrects. Safe for concurrent use.
type DegradeController struct {
	enter float64
	exit  float64

	mu       sync.Mutex
	pressure float64
	samples  int
	degraded bool
	enters   int64
}

// NewDegradeController returns a controller with the given hysteresis
// thresholds; values <= 0 use the defaults, and an exit threshold at or
// above enter is clamped to half of enter so the hysteresis band never
// collapses.
func NewDegradeController(enter, exit float64) *DegradeController {
	if enter <= 0 {
		enter = DefaultDegradeEnterPressure
	}
	if exit <= 0 || exit >= enter {
		exit = enter / 2
		if DefaultDegradeExitPressure < exit {
			exit = DefaultDegradeExitPressure
		}
	}
	return &DegradeController{enter: enter, exit: exit}
}

// Observe feeds one queue-depth sample (taken at admission time) into
// the pressure EWMA and advances the state machine.
func (d *DegradeController) Observe(depth, capacity int) {
	if capacity <= 0 {
		return
	}
	sample := float64(depth) / float64(capacity)
	d.mu.Lock()
	if d.samples == 0 {
		d.pressure = sample
	} else {
		d.pressure += degradeEWMAWeight * (sample - d.pressure)
	}
	d.samples++
	if d.degraded {
		if d.pressure <= d.exit {
			d.degraded = false
		}
	} else if d.pressure >= d.enter {
		d.degraded = true
		d.enters++
	}
	d.mu.Unlock()
}

// Degraded reports whether the controller is currently in degraded mode.
func (d *DegradeController) Degraded() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded
}

// State returns the current mode name ("normal" or "degraded") and the
// smoothed queue-pressure signal, for /metrics and /healthz.
func (d *DegradeController) State() (mode string, pressure float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	mode = "normal"
	if d.degraded {
		mode = "degraded"
	}
	return mode, d.pressure
}

// Enters returns how many times the controller has entered degraded
// mode since creation.
func (d *DegradeController) Enters() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.enters
}

// Tighten maps an exit policy to its degraded-mode variant: the step
// budget (and, when early exit is enabled, the floor and stability
// window) are halved, halving the worst-case replica time a queued
// request can consume. The mapping is deterministic — the same input
// policy always degrades to the same tightened policy, so degraded
// responses stay reproducible and cacheable under their tightened key.
// Margin is left alone: it shapes *when* an early exit fires, not how
// much budget a request may burn. The result always satisfies
// ExitPolicy.Validate for any valid input.
func (d *DegradeController) Tighten(p ExitPolicy) ExitPolicy {
	q := p
	q.MaxSteps = (p.MaxSteps + 1) / 2
	if q.MaxSteps < 1 {
		q.MaxSteps = 1
	}
	if p.StableWindow > 0 {
		q.StableWindow = (p.StableWindow + 1) / 2
	}
	if p.MinSteps > 0 {
		q.MinSteps = (p.MinSteps + 1) / 2
	}
	if q.MinSteps > q.MaxSteps {
		q.MinSteps = q.MaxSteps
	}
	return q
}
