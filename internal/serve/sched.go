package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"burstsnn/internal/coding"
)

// This file is the serving scheduling plane: every decision about *how*
// a formed microbatch executes — lockstep through the batch simulator or
// back to back on the replica, and in what lane order — lives behind the
// Scheduler interface instead of constants scattered through the
// batcher. Two implementations ship: StaticSched (the fixed
// request-count rule serving used through PR 5) and AdaptiveSched (a
// per-microbatch feedback controller steered by measured occupancy,
// the LockstepBatch "auto" default). Scheduling is outcome-invariant by
// construction: a scheduler only reorders which requests share a
// microbatch and picks the execution mode — per-request Outcomes stay
// pinned by the bit-identity/tolerance contracts either way.

// Decision reasons, the `reason` label on the steering counters
// (burstsnn_sched_decisions_total and Snapshot.SchedReasons). They make
// a steering regression diagnosable from a metrics scrape alone: a
// plane stuck on "cold-start" never measured a batch, one stuck on
// "occupancy-low" is seeing exits erode its batches.
const (
	// ReasonDisabled: the policy never dispatches lockstep (LockstepOff,
	// an unpacked tier, or the f64 plane under auto/static).
	ReasonDisabled = "disabled"
	// ReasonBelowMin: fewer live requests than the static threshold.
	ReasonBelowMin = "below-min"
	// ReasonStaticMin: the static request-count rule fired (LockstepOn
	// uses the rule with threshold 2, so forced-on batches land here).
	ReasonStaticMin = "static-min"
	// ReasonColdStart: the adaptive controller had no occupancy
	// measurements yet and fell back to the static rule.
	ReasonColdStart = "cold-start"
	// ReasonOccHigh / ReasonOccLow: the adaptive controller estimated
	// the batch's occupancy above / below the lockstep crossover.
	ReasonOccHigh = "occupancy-high"
	ReasonOccLow  = "occupancy-low"
)

// Decision is a scheduler's verdict for one formed microbatch.
type Decision struct {
	// Lockstep selects the batch simulator; false runs the requests back
	// to back on the replica.
	Lockstep bool
	// Reason names why (the Reason* constants), for the steering
	// counters and the selftest decision trace.
	Reason string
	// EstOccupancy is the occupancy estimate the decision was based on
	// (0 when the policy doesn't estimate, e.g. the static rules).
	EstOccupancy float64
}

// Scheduler owns the lockstep-vs-sequential decision for multi-request
// microbatches. Implementations must be safe for concurrent use: the
// batcher calls Decide from every batch-execution goroutine and feeds
// ObserveOccupancy back from both execution paths.
type Scheduler interface {
	// Decide picks the execution mode for a formed microbatch of lanes
	// live (deduped) requests. preds carries the exit-history
	// predictions aligned with the batch's lanes — preds[i] <= 0 means
	// lane i has no prediction; preds may be nil when no history is
	// attached.
	Decide(lanes int, preds []int) Decision
	// ObserveOccupancy feeds back one executed multi-request batch:
	// the lane count, the batch's lockstep step count (its slowest
	// lane), and the per-lane exit-step sum. Sequential dispatches
	// report the same triple for the batch they *would* have been
	// (max steps, summed steps), so the controller keeps measuring the
	// workload's occupancy even while it steers sequential — no
	// exploration traffic needed.
	ObserveOccupancy(lanes, batchSteps, laneStepsSum int)
	// Name identifies the policy in /metrics and bench output.
	Name() string
}

// StaticSched is the fixed request-count rule: batches of at least min
// live requests run lockstep, smaller ones run sequentially. min <= 0
// never dispatches lockstep (the LockstepOff policy); min 1 is
// normalized to 2 (a single request has nothing to lockstep with).
// This is exactly the scheduling serving shipped through PR 5, kept as
// one implementation behind the plane interface (LockstepBatch:
// "static", and the cold-start fallback inside AdaptiveSched).
type StaticSched struct {
	min int
}

// NewStaticSched builds the static rule with the given threshold.
func NewStaticSched(min int) *StaticSched {
	if min == 1 {
		min = 2
	}
	return &StaticSched{min: min}
}

// Min returns the configured threshold (0 = never lockstep).
func (s *StaticSched) Min() int { return s.min }

// Decide applies the request-count rule.
func (s *StaticSched) Decide(lanes int, _ []int) Decision {
	switch {
	case s.min <= 0:
		return Decision{Reason: ReasonDisabled}
	case lanes >= s.min:
		return Decision{Lockstep: true, Reason: ReasonStaticMin}
	default:
		return Decision{Reason: ReasonBelowMin}
	}
}

// ObserveOccupancy is a no-op: the static rule does not measure.
func (s *StaticSched) ObserveOccupancy(lanes, batchSteps, laneStepsSum int) {}

// Name identifies the policy.
func (s *StaticSched) Name() string {
	if s.min <= 0 {
		return "sequential"
	}
	return fmt.Sprintf("static(min=%d)", s.min)
}

// DefaultOccupancyCrossover is the measured occupancy at which lockstep
// execution breaks even with the sequential engine on the packed
// dispatch tiers: BENCH_batch.json brackets the crossover between the
// B=4 point (occupancy ≈1.6, lockstep ~0.7–0.8× sequential) and the B=8
// point (occupancy ≈2.4, ~1.4–2.0×), so the default takes the midpoint
// of the bracket. Config.OccupancyCrossover overrides it per server.
const DefaultOccupancyCrossover = 2.0

// Adaptive controller tuning: the EWMA weight for new occupancy
// samples, and how many measured batches the controller wants before it
// trusts its estimate over the static cold-start rule.
const (
	adaptiveEWMAWeight = 0.25
	adaptiveWarmup     = 3
)

// AdaptiveSched is the occupancy feedback controller behind
// LockstepBatch "auto": instead of a hard-coded request count, it
// estimates each candidate microbatch's mean lane occupancy and
// dispatches lockstep exactly when the estimate clears the measured
// crossover.
//
// The estimate composes two signals:
//
//   - per-lane exit-step predictions from the model's ExitHistory: k
//     predicted lanes contribute sum(pred)/max(pred) — the occupancy a
//     batch of exactly those lanes would run at, assuming retirement at
//     the predicted steps;
//   - the measured EWMA occupancy fraction for unpredicted lanes: every
//     executed multi-request batch (lockstep or sequential — sequential
//     dispatches report the batch they would have been) contributes a
//     sample (laneStepsSum/batchSteps)/lanes, the fraction of the batch
//     each lane stayed live for; m unpredicted lanes contribute
//     m × EWMA(fraction).
//
// Until the controller has seen adaptiveWarmup measured batches (and
// the candidate is not fully predicted), it falls back to the static
// request-count rule (ReasonColdStart), so a fresh server behaves
// exactly like PR 5's auto until measurement takes over.
type AdaptiveSched struct {
	crossover float64
	fallback  *StaticSched

	mu      sync.Mutex
	samples int
	occFrac float64 // EWMA of (laneStepsSum/batchSteps)/lanes
}

// NewAdaptiveSched builds the controller. crossover <= 0 uses
// DefaultOccupancyCrossover; fallbackMin is the static cold-start
// threshold (autoLockstepMinLanes at Register time).
func NewAdaptiveSched(crossover float64, fallbackMin int) *AdaptiveSched {
	if crossover <= 0 {
		crossover = DefaultOccupancyCrossover
	}
	return &AdaptiveSched{crossover: crossover, fallback: NewStaticSched(fallbackMin)}
}

// Decide estimates the candidate batch's occupancy and compares it to
// the crossover.
func (a *AdaptiveSched) Decide(lanes int, preds []int) Decision {
	sumPred, maxPred, unpredicted := 0, 0, lanes
	for _, p := range preds {
		if p > 0 {
			sumPred += p
			if p > maxPred {
				maxPred = p
			}
			unpredicted--
		}
	}
	a.mu.Lock()
	samples, frac := a.samples, a.occFrac
	a.mu.Unlock()
	if samples < adaptiveWarmup && unpredicted > 0 {
		d := a.fallback.Decide(lanes, nil)
		d.Reason = ReasonColdStart
		return d
	}
	est := float64(unpredicted) * frac
	if maxPred > 0 {
		est += float64(sumPred) / float64(maxPred)
	}
	if est >= a.crossover {
		return Decision{Lockstep: true, Reason: ReasonOccHigh, EstOccupancy: est}
	}
	return Decision{Reason: ReasonOccLow, EstOccupancy: est}
}

// ObserveOccupancy folds one executed batch into the EWMA.
func (a *AdaptiveSched) ObserveOccupancy(lanes, batchSteps, laneStepsSum int) {
	if lanes < 2 || batchSteps <= 0 || laneStepsSum <= 0 {
		return
	}
	sample := float64(laneStepsSum) / float64(batchSteps) / float64(lanes)
	a.mu.Lock()
	if a.samples == 0 {
		a.occFrac = sample
	} else {
		a.occFrac += adaptiveEWMAWeight * (sample - a.occFrac)
	}
	a.samples++
	a.mu.Unlock()
}

// Stats exposes the controller state (measured batches, EWMA occupancy
// fraction) for tests and the bench harness.
func (a *AdaptiveSched) Stats() (samples int, occFrac float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.samples, a.occFrac
}

// Name identifies the policy.
func (a *AdaptiveSched) Name() string {
	return fmt.Sprintf("adaptive(crossover=%.2g)", a.crossover)
}

// OrderByPredictedExit returns the lane indices 0..len(preds)-1 stably
// sorted by predicted exit step ascending, with unpredicted lanes
// (preds[i] <= 0) after every predicted one, in arrival order. This is
// the exit-aware batch-forming rule: grouping lanes predicted to retire
// together keeps lockstep occupancy high — a chunk of early-exiters
// retires as a block instead of each chunk dragging one late lane to
// the end at occupancy 1.
func OrderByPredictedExit(preds []int) []int {
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		pi, pj := preds[order[i]], preds[order[j]]
		if pi <= 0 || pj <= 0 {
			return pi > 0 && pj <= 0 // predicted lanes before unpredicted
		}
		return pi < pj
	})
	return order
}

// DefaultExitHistoryEntries bounds a model's exit history: each entry
// keeps the source image for collision verification (~6.3 KB at MNIST
// scale), so the default costs at most ~13 MB per model — the same
// bound and reasoning as coding.DefaultQuantCacheEntries.
const DefaultExitHistoryEntries = 2048

// ExitHistory is the tiny bounded (image hash → observed exit step)
// memory behind exit-aware batch forming: the batcher records every
// classified request's exit step and consults the history when forming
// the next batch, so lanes predicted to retire together share a chunk.
//
// The discipline is coding.QuantCache's, exactly: keys go through
// coding.HashImage, every hit verifies pixel equality against the
// stored image (a hash collision degrades to "no prediction", never to
// another image's exit step), and an entry — with its verification
// image copy — is only stored on a key's second sighting, so
// unique-image traffic never allocates history entries. The observed
// step count is policy-dependent (budget, stability window), so the
// policy is part of the key. Safe for concurrent use.
type ExitHistory struct {
	mu      sync.Mutex
	max     int
	entries map[exitKey]exitEntry
	seen    map[exitKey]struct{}

	hits   atomic.Int64
	misses atomic.Int64
}

type exitKey struct {
	hash   uint64
	policy ExitPolicy
}

type exitEntry struct {
	image []float64
	steps int
}

// NewExitHistory returns a history bounded to maxEntries (<= 0 uses
// DefaultExitHistoryEntries). When full, an arbitrary entry is evicted
// per insert, like the quant cache: the workloads this serves are
// dominated by a small hot set.
func NewExitHistory(maxEntries int) *ExitHistory {
	if maxEntries <= 0 {
		maxEntries = DefaultExitHistoryEntries
	}
	return &ExitHistory{
		max:     maxEntries,
		entries: map[exitKey]exitEntry{},
		seen:    map[exitKey]struct{}{},
	}
}

// Stats returns the lifetime predict hit/miss counters (surfaced as
// exitHistoryHits/exitHistoryMisses in /metrics).
func (h *ExitHistory) Stats() (hits, misses int64) {
	return h.hits.Load(), h.misses.Load()
}

// Predict returns the exit step observed the last time this exact
// (image, policy) pair was classified. hash must be
// coding.HashImage(image) — the batcher hashes each request once at
// submit and reuses it here and in dedupe. A key match with different
// pixel contents counts as a miss.
func (h *ExitHistory) Predict(hash uint64, image []float64, p ExitPolicy) (int, bool) {
	h.mu.Lock()
	e, ok := h.entries[exitKey{hash: hash, policy: p}]
	h.mu.Unlock()
	if ok && coding.SameImage(e.image, image) {
		h.hits.Add(1)
		return e.steps, true
	}
	h.misses.Add(1)
	return 0, false
}

// Record notes one observed exit step for (image, policy). The first
// sighting of a key only marks it seen; the second stores the entry
// (copying the image for collision verification); later sightings
// update the step count in place. A colliding key (same hash, different
// pixels) replaces the stored entry, mirroring QuantCache's re-store.
func (h *ExitHistory) Record(hash uint64, image []float64, p ExitPolicy, steps int) {
	if steps <= 0 {
		return
	}
	k := exitKey{hash: hash, policy: p}
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.entries[k]; ok {
		if coding.SameImage(e.image, image) {
			e.steps = steps
			h.entries[k] = e
			return
		}
		// Collision (or changed pixels under the same hash): replace.
		h.entries[k] = exitEntry{image: append([]float64(nil), image...), steps: steps}
		return
	}
	if _, ok := h.seen[k]; !ok {
		if len(h.seen) >= h.max {
			for old := range h.seen {
				delete(h.seen, old)
				break
			}
		}
		h.seen[k] = struct{}{}
		return
	}
	if len(h.entries) >= h.max {
		for old := range h.entries {
			delete(h.entries, old)
			break
		}
	}
	h.entries[k] = exitEntry{image: append([]float64(nil), image...), steps: steps}
}
