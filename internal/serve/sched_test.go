package serve

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"burstsnn/internal/coding"
)

func TestStaticSchedRule(t *testing.T) {
	cases := []struct {
		min    int
		lanes  int
		want   bool
		reason string
	}{
		{0, 8, false, ReasonDisabled},
		{-1, 8, false, ReasonDisabled},
		{6, 5, false, ReasonBelowMin},
		{6, 6, true, ReasonStaticMin},
		{6, 8, true, ReasonStaticMin},
		{2, 2, true, ReasonStaticMin},
		// min 1 normalizes to 2: a single request has nothing to lockstep with.
		{1, 1, false, ReasonBelowMin},
		{1, 2, true, ReasonStaticMin},
	}
	for _, c := range cases {
		d := NewStaticSched(c.min).Decide(c.lanes, nil)
		if d.Lockstep != c.want || d.Reason != c.reason {
			t.Errorf("StaticSched(min=%d).Decide(%d) = %+v, want lockstep=%v reason=%q",
				c.min, c.lanes, d, c.want, c.reason)
		}
	}
}

// TestAdaptiveSchedFlipsOnOccupancy is the acceptance check for
// measurement-driven steering: the same candidate batch flips between
// lockstep and sequential purely on the measured occupancy stream —
// no request-count rule involved once the controller is warm.
func TestAdaptiveSchedFlipsOnOccupancy(t *testing.T) {
	// High-occupancy stream: every lane stays live to the end
	// (laneStepsSum = lanes × batchSteps → occupancy fraction 1), so an
	// 8-lane candidate estimates occupancy 8 ≫ crossover.
	high := NewAdaptiveSched(0, autoLockstepMinLanes)
	for i := 0; i < adaptiveWarmup; i++ {
		high.ObserveOccupancy(8, 100, 800)
	}
	if d := high.Decide(3, nil); !d.Lockstep || d.Reason != ReasonOccHigh {
		// 3 lanes — below the old static ≥6 rule — must still go lockstep
		// when measured occupancy says it pays.
		t.Fatalf("high-occupancy stream, 3 lanes: %+v, want lockstep/occupancy-high", d)
	}

	// Low-occupancy stream: lanes retire almost immediately (fraction
	// 0.2), so even a full 8-lane batch estimates 1.6 < 2.0 and stays
	// sequential — the static rule would have said lockstep.
	low := NewAdaptiveSched(0, autoLockstepMinLanes)
	for i := 0; i < adaptiveWarmup; i++ {
		low.ObserveOccupancy(8, 100, 160)
	}
	d := low.Decide(8, nil)
	if d.Lockstep || d.Reason != ReasonOccLow {
		t.Fatalf("low-occupancy stream, 8 lanes: %+v, want sequential/occupancy-low", d)
	}
	if d.EstOccupancy < 1.5 || d.EstOccupancy > 1.7 {
		t.Fatalf("estimated occupancy %.3f, want ≈1.6 (8 lanes × 0.2 fraction)", d.EstOccupancy)
	}

	// The EWMA tracks a workload shift: the low-occupancy controller fed
	// a sustained high-occupancy stream flips back to lockstep.
	for i := 0; i < 20; i++ {
		low.ObserveOccupancy(8, 100, 800)
	}
	if d := low.Decide(8, nil); !d.Lockstep {
		t.Fatalf("after occupancy recovered: %+v, want lockstep", d)
	}
}

func TestAdaptiveSchedColdStart(t *testing.T) {
	a := NewAdaptiveSched(0, autoLockstepMinLanes)
	// No measurements and unpredicted lanes: the static fallback rule
	// decides, labelled cold-start either way.
	if d := a.Decide(8, nil); !d.Lockstep || d.Reason != ReasonColdStart {
		t.Fatalf("cold 8 lanes: %+v, want lockstep/cold-start (static ≥%d rule)", d, autoLockstepMinLanes)
	}
	if d := a.Decide(3, nil); d.Lockstep || d.Reason != ReasonColdStart {
		t.Fatalf("cold 3 lanes: %+v, want sequential/cold-start", d)
	}
	// A fully predicted batch needs no measurements: sum/max of the
	// predicted exits is the batch's occupancy.
	if d := a.Decide(3, []int{90, 100, 95}); !d.Lockstep || d.Reason != ReasonOccHigh {
		t.Fatalf("cold fully-predicted batch (occ 2.85): %+v, want lockstep/occupancy-high", d)
	}
	if d := a.Decide(3, []int{8, 10, 100}); d.Lockstep || d.Reason != ReasonOccLow {
		t.Fatalf("cold fully-predicted spread batch (occ 1.18): %+v, want sequential/occupancy-low", d)
	}
}

func TestAdaptiveSchedCrossoverKnob(t *testing.T) {
	// The same measured stream lands on opposite sides of two crossovers.
	for _, c := range []struct {
		crossover float64
		want      bool
	}{{1.2, true}, {3.0, false}} {
		a := NewAdaptiveSched(c.crossover, autoLockstepMinLanes)
		for i := 0; i < adaptiveWarmup; i++ {
			a.ObserveOccupancy(8, 100, 200) // fraction 0.25 → 8 lanes ≈ 2.0
		}
		if d := a.Decide(8, nil); d.Lockstep != c.want {
			t.Errorf("crossover %.1f: %+v, want lockstep=%v", c.crossover, d, c.want)
		}
	}
}

func TestOrderByPredictedExit(t *testing.T) {
	cases := []struct {
		preds []int
		want  []int
	}{
		// Predicted ascending first, unpredicted (<=0) last in arrival order.
		{[]int{0, 50, 10, 0, 30}, []int{2, 4, 1, 0, 3}},
		{[]int{5, 4, 3}, []int{2, 1, 0}},
		{[]int{0, 0, 0}, []int{0, 1, 2}},
		// Stable among equal predictions.
		{[]int{7, 7, 3, 7}, []int{2, 0, 1, 3}},
		{nil, []int{}},
	}
	for _, c := range cases {
		got := OrderByPredictedExit(c.preds)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("OrderByPredictedExit(%v) = %v, want %v", c.preds, got, c.want)
		}
	}
}

func TestExitHistoryDiscipline(t *testing.T) {
	h := NewExitHistory(4)
	img := []float64{0.1, 0.2, 0.3}
	p := ExitPolicy{MaxSteps: 96, MinSteps: 8, StableWindow: 6}
	hash := coding.HashImage(img)

	// First sighting only marks the key seen — unique traffic must not
	// allocate entries (the QuantCache promotion discipline).
	h.Record(hash, img, p, 40)
	if steps, ok := h.Predict(hash, img, p); ok {
		t.Fatalf("prediction after one sighting: %d; entries must need two sightings", steps)
	}
	h.Record(hash, img, p, 40)
	steps, ok := h.Predict(hash, img, p)
	if !ok || steps != 40 {
		t.Fatalf("Predict after promotion = %d,%v, want 40,true", steps, ok)
	}

	// The policy is part of the key: a different exit policy observes a
	// different step count and must not alias.
	other := ExitPolicy{MaxSteps: 96}
	if _, ok := h.Predict(hash, img, other); ok {
		t.Fatal("prediction leaked across exit policies")
	}

	// Re-recording updates in place.
	h.Record(hash, img, p, 44)
	if steps, _ := h.Predict(hash, img, p); steps != 44 {
		t.Fatalf("updated prediction = %d, want 44", steps)
	}

	// A hash collision (same hash, different pixels) must degrade to "no
	// prediction", never to the other image's exit step. Predict takes
	// the caller's hash, so the test forces the collision directly.
	collider := []float64{9, 9, 9}
	if steps, ok := h.Predict(hash, collider, p); ok {
		t.Fatalf("collision produced a prediction (%d steps)", steps)
	}

	// Stats counted the traffic above: hits and misses both nonzero.
	if hits, misses := h.Stats(); hits == 0 || misses == 0 {
		t.Fatalf("Stats() = %d hits, %d misses; want both nonzero", hits, misses)
	}
}

func TestExitHistoryBounded(t *testing.T) {
	h := NewExitHistory(8)
	img := func(i int) []float64 { return []float64{float64(i), 1, 2} }
	p := ExitPolicy{MaxSteps: 96}
	for i := 0; i < 100; i++ {
		im := img(i)
		hash := coding.HashImage(im)
		h.Record(hash, im, p, 10+i)
		h.Record(hash, im, p, 10+i)
	}
	h.mu.Lock()
	entries, seen := len(h.entries), len(h.seen)
	h.mu.Unlock()
	if entries > 8 || seen > 8 {
		t.Fatalf("history grew past its bound: %d entries, %d seen (max 8)", entries, seen)
	}
}

// TestAdaptiveBatcherOutcomeInvariance is the outcome-invariance
// acceptance check at the batcher level: with the adaptive scheduler
// and exit-aware forming live, staggered-exit traffic (mixed early-exit
// and full-budget policies, so the history reorders lanes and the
// controller's estimate moves) still produces exactly the sequential
// engine's outcomes — scheduling only changes who shares a microbatch.
func TestAdaptiveBatcherOutcomeInvariance(t *testing.T) {
	pool, image := testPool(t, 1)
	metrics := NewMetrics()
	images := make([][]float64, 8)
	policies := make([]ExitPolicy, 8)
	for i := range images {
		img := append([]float64(nil), image...)
		img[i*5] = float64(i+1) / 9
		images[i] = img
		if i%2 == 0 {
			policies[i] = ExitPolicy{MaxSteps: 48, MinSteps: 8, StableWindow: 6}
		} else {
			policies[i] = ExitPolicy{MaxSteps: 48}
		}
	}
	want := make([]Outcome, len(images))
	func() {
		rep, err := pool.Get(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Put(rep)
		for i := range images {
			want[i] = Classify(rep.Net, images[i], policies[i])
		}
	}()

	history := NewExitHistory(0)
	metrics.AttachExitHistory(history)
	// fallbackMin 2 so even cold-start batches dispatch lockstep on the
	// f64 plane (bit-identical, so invariance is an exact comparison).
	sched := NewAdaptiveSched(0, 2)
	b := NewBatcher(pool, BatcherConfig{
		Metrics: metrics, Sched: sched, History: history,
		MaxBatch: 8, MaxDelay: 300 * time.Millisecond,
	})
	defer b.Close()

	// Several rounds: round 1 runs cold (no predictions), later rounds
	// hit the warmed history and re-order lanes by predicted exit.
	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		for i := range images {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				out, err := b.Submit(context.Background(), images[i], policies[i])
				if err != nil {
					t.Errorf("round %d request %d: %v", round, i, err)
					return
				}
				if out != want[i] {
					t.Errorf("round %d request %d: adaptive-scheduled %+v, sequential %+v",
						round, i, out, want[i])
				}
			}(i)
		}
		wg.Wait()
	}

	s := metrics.Snapshot()
	if s.SchedLockstepBatches+s.SchedSequentialBatches == 0 {
		t.Fatal("no steering decisions recorded")
	}
	if s.ExitHistoryHits == 0 {
		t.Errorf("exit history never produced a prediction across warm rounds: %+v", s)
	}
	if s.ExitPredictionError.Count == 0 {
		t.Errorf("no exit predictions were scored: %+v", s)
	}
	if samples, _ := sched.Stats(); samples == 0 {
		t.Error("adaptive controller measured no batches")
	}

	// Invariance across the response cache: attach it to the warmed
	// batcher and replay one request. The first two replays run the full
	// pipeline (sighting, then promotion); the third is a cache hit and
	// must still report the exact sequential outcome — with no pipeline
	// spans, since it never queued or simulated.
	cache := NewResponseCache(0, time.Hour)
	metrics.AttachResponseCache(cache)
	b.cache = cache
	for replay := 0; replay < 2; replay++ {
		out, err := b.Submit(context.Background(), images[0], policies[0])
		if err != nil {
			t.Fatalf("replay %d: %v", replay, err)
		}
		if out != want[0] {
			t.Errorf("replay %d: outcome %+v, sequential %+v", replay, out, want[0])
		}
	}
	out, stages, flags, err := b.SubmitTraced(context.Background(), images[0], policies[0])
	if err != nil || !flags.Cached {
		t.Fatalf("replay after promotion: err=%v cached=%v, want cached hit", err, flags.Cached)
	}
	if out != want[0] {
		t.Errorf("cached outcome %+v differs from fresh classification %+v", out, want[0])
	}
	if stages.Simulate != 0 || stages.Queue != 0 {
		t.Errorf("cache hit reported pipeline spans %+v, want none", stages)
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Error("response cache recorded no hits after promotion replay")
	}
}

// --- deterministic overload harness (unstarted batcher) ---

// unstartedBatcher builds a Batcher whose dispatcher never runs, so
// admission behavior — queue fill, shedding, dispatch-time expiry — is
// observable deterministically (a live dispatcher would drain the queue
// before the states of interest could be pinned).
func unstartedBatcher(queueDepth int) *Batcher {
	closeCtx, closeCancel := context.WithCancel(context.Background())
	return &Batcher{
		maxBatch:    8,
		queue:       make(chan *batchRequest, queueDepth),
		done:        make(chan struct{}),
		closeCtx:    closeCtx,
		closeCancel: closeCancel,
	}
}

func TestSubmitShedsOnFullQueue(t *testing.T) {
	b := unstartedBatcher(2)
	img := []float64{0.5}
	p := ExitPolicy{MaxSteps: 8}

	// Fill the admission queue: these Submits enqueue immediately and
	// then block waiting for a (never-coming) result.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := b.Submit(context.Background(), img, p)
			results <- err
		}()
	}
	waitFor(t, func() bool { return b.QueueDepth() == 2 })

	// The queue is full: a third Submit must shed immediately with
	// ErrOverloaded — the admission contract is shed-don't-block, so
	// overload becomes a 429 signal instead of client-side timeouts.
	if _, err := b.Submit(context.Background(), img, p); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit on a full queue returned %v, want ErrOverloaded", err)
	}
	// The shed request never entered the queue.
	if d := b.QueueDepth(); d != 2 {
		t.Fatalf("QueueDepth = %d after shed Submit, want 2", d)
	}

	// Unblock the two queued requests so their goroutines exit.
	for i := 0; i < 2; i++ {
		req := <-b.queue
		req.done <- batchResult{err: ErrClosed}
		if err := <-results; err != ErrClosed {
			t.Fatalf("drained request returned %v, want ErrClosed", err)
		}
	}
}

func TestSubmitShedsOnProjectedWait(t *testing.T) {
	b := unstartedBatcher(8)
	img := []float64{0.5}
	p := ExitPolicy{MaxSteps: 8}

	// Teach the drain estimator one second per request and park four
	// requests in the queue: projected wait = 4s (pool of 1).
	b.observeDrain(4*time.Second, 4)
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := b.Submit(context.Background(), img, p)
			results <- err
		}()
	}
	waitFor(t, func() bool { return b.QueueDepth() == 4 })
	if w := b.projectedWait(); w < 3*time.Second {
		t.Fatalf("projectedWait = %v with 4 queued at 1s/request, want ~4s", w)
	}

	// A request with 50ms of deadline left cannot possibly be served
	// through a 4s backlog: it must shed now, without a queue slot.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := b.Submit(ctx, img, p); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit with doomed deadline returned %v, want ErrOverloaded", err)
	}
	if d := b.QueueDepth(); d != 4 {
		t.Fatalf("QueueDepth = %d after projected-wait shed, want 4", d)
	}
	// Retry-After reflects the projected backlog (floored at 1s).
	if ra := b.RetryAfter(); ra < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", ra)
	}

	for i := 0; i < 4; i++ {
		req := <-b.queue
		req.done <- batchResult{err: ErrClosed}
		if err := <-results; err != ErrClosed {
			t.Fatalf("drained request returned %v, want ErrClosed", err)
		}
	}
}

// TestDispatchShedsExpired proves expired requests are failed at
// dispatch time without joining a batch: the batcher has a nil pool, so
// any attempt to execute would panic in run().
func TestDispatchShedsExpired(t *testing.T) {
	b := unstartedBatcher(4)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]*batchRequest, 3)
	for i := range reqs {
		reqs[i] = &batchRequest{ctx: canceled, done: make(chan batchResult, 1)}
		b.queue <- reqs[i]
	}
	close(b.queue)
	b.dispatch() // synchronous: runs to completion on the closed queue
	<-b.done
	for i, req := range reqs {
		select {
		case res := <-req.done:
			if !errors.Is(res.err, context.Canceled) {
				t.Fatalf("request %d: err = %v, want context.Canceled", i, res.err)
			}
		default:
			t.Fatalf("request %d was never resolved at dispatch", i)
		}
	}
}

// TestDispatchShedsOnClose proves queued requests fail with ErrClosed at
// dispatch once Close has fired, instead of executing (nil pool again:
// execution would panic).
func TestDispatchShedsOnClose(t *testing.T) {
	b := unstartedBatcher(4)
	b.closeCancel() // Close's signal, without Close's queue teardown
	reqs := make([]*batchRequest, 3)
	for i := range reqs {
		reqs[i] = &batchRequest{ctx: context.Background(), done: make(chan batchResult, 1)}
		b.queue <- reqs[i]
	}
	close(b.queue)
	b.dispatch()
	<-b.done
	for i, req := range reqs {
		select {
		case res := <-req.done:
			if !errors.Is(res.err, ErrClosed) {
				t.Fatalf("request %d: err = %v, want ErrClosed", i, res.err)
			}
		default:
			t.Fatalf("request %d was never resolved at dispatch", i)
		}
	}
}

// TestDegradeControllerHysteresis pins the degraded-mode state machine
// deterministically: EWMA'd pressure enters at the high threshold, holds
// through the hysteresis band, and exits only below the low threshold.
func TestDegradeControllerHysteresis(t *testing.T) {
	d := NewDegradeController(0, 0)
	if d.Degraded() {
		t.Fatal("controller born degraded")
	}
	// Saturated queue: pressure EWMA climbs to 1.0 and crosses enter.
	for i := 0; i < 10; i++ {
		d.Observe(8, 8)
	}
	if !d.Degraded() {
		t.Fatal("controller not degraded after sustained full-queue pressure")
	}
	if mode, p := d.State(); mode != "degraded" || p < DefaultDegradeEnterPressure {
		t.Fatalf("State() = %q/%.2f, want degraded at >= %.2f", mode, p, DefaultDegradeEnterPressure)
	}
	// Mid-band pressure (0.5): inside the hysteresis band, stays degraded.
	for i := 0; i < 20; i++ {
		d.Observe(4, 8)
	}
	if !d.Degraded() {
		t.Fatal("controller left degraded mode inside the hysteresis band")
	}
	// Empty queue: pressure decays below exit and the mode relaxes.
	for i := 0; i < 20; i++ {
		d.Observe(0, 8)
	}
	if d.Degraded() {
		t.Fatal("controller still degraded after sustained recovery")
	}
	if d.Enters() != 1 {
		t.Fatalf("Enters() = %d, want exactly 1 transition", d.Enters())
	}
}

func TestDegradeTightenPolicy(t *testing.T) {
	d := NewDegradeController(0, 0)
	cases := []struct{ in, want ExitPolicy }{
		{ExitPolicy{MaxSteps: 96, MinSteps: 16, StableWindow: 12, Margin: 0.1},
			ExitPolicy{MaxSteps: 48, MinSteps: 8, StableWindow: 6, Margin: 0.1}},
		{ExitPolicy{MaxSteps: 96}, ExitPolicy{MaxSteps: 48}},
		{ExitPolicy{MaxSteps: 1}, ExitPolicy{MaxSteps: 1}},
		{ExitPolicy{MaxSteps: 3, MinSteps: 3, StableWindow: 1},
			ExitPolicy{MaxSteps: 2, MinSteps: 2, StableWindow: 1}},
	}
	for _, c := range cases {
		got := d.Tighten(c.in)
		if got != c.want {
			t.Errorf("Tighten(%+v) = %+v, want %+v", c.in, got, c.want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("Tighten(%+v) produced invalid policy: %v", c.in, err)
		}
		// Determinism: same input, same tightened policy.
		if again := d.Tighten(c.in); again != got {
			t.Errorf("Tighten not deterministic: %+v then %+v", got, again)
		}
	}
}

// TestSubmitDegradedPolicy proves a degraded batcher enqueues requests
// under the tightened policy and flags them Degraded.
func TestSubmitDegradedPolicy(t *testing.T) {
	b := unstartedBatcher(4)
	d := NewDegradeController(0, 0)
	for i := 0; i < 10; i++ {
		d.Observe(8, 8) // force degraded before the batcher observes
	}
	b.degrade = d
	p := ExitPolicy{MaxSteps: 96, MinSteps: 16, StableWindow: 12}

	flagsCh := make(chan SubmitFlags, 1)
	go func() {
		_, _, flags, _ := b.SubmitTraced(context.Background(), []float64{0.5}, p)
		flagsCh <- flags
	}()
	req := <-b.queue
	if want := d.Tighten(p); req.policy != want {
		t.Fatalf("degraded request enqueued with policy %+v, want tightened %+v", req.policy, want)
	}
	req.done <- batchResult{err: ErrClosed}
	if flags := <-flagsCh; !flags.Degraded {
		t.Fatalf("SubmitFlags = %+v, want Degraded", flags)
	}
}

func TestSubmitCancelWhileWaitingForResult(t *testing.T) {
	b := unstartedBatcher(4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, []float64{0.5}, ExitPolicy{MaxSteps: 8})
		done <- err
	}()
	// The request enqueues (queue has room) and then waits on its result.
	waitFor(t, func() bool { return b.QueueDepth() == 1 })
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Submit returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Submit did not observe cancellation while waiting for its result")
	}
	// The abandoned request's done channel is buffered: a late delivery
	// must not block the (hypothetical) runner.
	req := <-b.queue
	req.done <- batchResult{}
}

func TestQueueDepthTracksLoad(t *testing.T) {
	b := unstartedBatcher(8)
	if d := b.QueueDepth(); d != 0 {
		t.Fatalf("idle QueueDepth = %d, want 0", d)
	}
	for n := 1; n <= 8; n++ {
		go func() { _, _ = b.Submit(context.Background(), []float64{0.5}, ExitPolicy{MaxSteps: 8}) }()
		n := n
		waitFor(t, func() bool { return b.QueueDepth() == n })
	}
	// Draining one request at a time steps the gauge back down.
	for n := 7; n >= 0; n-- {
		req := <-b.queue
		req.done <- batchResult{err: ErrClosed}
		n := n
		waitFor(t, func() bool { return b.QueueDepth() == n })
	}
}

// waitFor polls cond until true or the deadline; backpressure state
// transitions are asynchronous (goroutine scheduling), never slow.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
