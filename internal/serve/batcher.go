package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/obs"
	"burstsnn/internal/snn"
)

// ErrClosed is returned by Submit after the batcher has been closed.
var ErrClosed = errors.New("serve: batcher closed")

// Batcher is the microbatching request queue in front of a replica pool.
// Requests are grouped into batches of up to MaxBatch, waiting at most
// MaxDelay after the first request before dispatch; each batch checks out
// one replica and hands the execution decision to the scheduling plane
// (see sched.go): multi-request batches run lockstep through the
// replica's batch simulator — amortizing scatter-table walks, weight
// loads, and threshold computation across lanes — or back to back on the
// sequential engine, per the Scheduler's verdict. Networks that cannot
// batch (and single-request dispatches) always run sequentially; both
// paths produce outcomes pinned by the same bit-identity/tolerance
// contracts, so scheduling is outcome-invariant.
type Batcher struct {
	pool     *Pool
	metrics  *Metrics     // batch-occupancy/steps-saved/steering gauges; may be nil
	sched    Scheduler    // lockstep-vs-sequential policy; nil = never lockstep
	history  *ExitHistory // exit-aware forming memory; nil disables forming/prediction
	f32      bool         // lockstep compute plane, fixed at construction
	maxBatch int
	maxDelay time.Duration

	queue chan *batchRequest

	mu      sync.Mutex
	closed  bool
	sending sync.WaitGroup // Submits past the closed check, not yet enqueued

	fallbackOnce sync.Once // one log line for a replica that cannot batch

	done chan struct{} // dispatcher drained and all batches finished
}

type batchRequest struct {
	ctx      context.Context
	image    []float64
	hash     uint64 // coding.HashImage(image), computed once at submit
	policy   ExitPolicy
	enqueued time.Time // Submit time; queue-wait span start
	done     chan batchResult
}

type batchResult struct {
	out Outcome
	// stages carries the request's measured stage spans back to the
	// server (queue/form from the batcher, engine spans from the
	// classify call that served it).
	stages  obs.StageTimes
	deduped bool
	err     error
}

// NewBatcher starts the dispatcher. metrics receives the batch gauges
// (nil disables them); sched owns the lockstep-vs-sequential decision
// for multi-request batches (nil never dispatches lockstep — see
// Config.LockstepBatch for how the server picks a policy), and f32
// picks the lockstep compute plane once for the batcher's lifetime (see
// Config.BatchKernel); history, when non-nil, records every observed
// exit step and drives exit-aware batch forming; maxBatch <= 0 defaults
// to 1 (no batching); maxDelay <= 0 dispatches as soon as the queue
// momentarily drains; queueDepth <= 0 defaults to 4× maxBatch.
func NewBatcher(pool *Pool, metrics *Metrics, sched Scheduler, history *ExitHistory,
	f32 bool, maxBatch int, maxDelay time.Duration, queueDepth int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 1
	}
	if queueDepth <= 0 {
		queueDepth = 4 * maxBatch
	}
	b := &Batcher{
		pool:     pool,
		metrics:  metrics,
		sched:    sched,
		history:  history,
		f32:      f32,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		queue:    make(chan *batchRequest, queueDepth),
		done:     make(chan struct{}),
	}
	go b.dispatch()
	return b
}

// Submit enqueues one classification and blocks until its result, the
// context's cancellation, or batcher shutdown.
func (b *Batcher) Submit(ctx context.Context, image []float64, p ExitPolicy) (Outcome, error) {
	out, _, _, err := b.SubmitTraced(ctx, image, p)
	return out, err
}

// SubmitTraced is Submit returning the request's measured stage spans
// (queue wait, batch formation, and the engine's encode/simulate/readout
// — see internal/obs) plus whether the request was answered by duplicate
// fan-out instead of its own simulation. Spans are zero on error paths
// that never executed.
func (b *Batcher) SubmitTraced(ctx context.Context, image []float64, p ExitPolicy) (Outcome, obs.StageTimes, bool, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return Outcome{}, obs.StageTimes{}, false, ErrClosed
	}
	b.sending.Add(1)
	b.mu.Unlock()

	// Hash once per request: dedupe and the exit-history lookups both key
	// on this, so no later stage rehashes the pixels.
	req := &batchRequest{
		ctx: ctx, image: image, hash: coding.HashImage(image), policy: p,
		enqueued: time.Now(), done: make(chan batchResult, 1),
	}
	select {
	case b.queue <- req:
		b.sending.Done()
	case <-ctx.Done():
		b.sending.Done()
		return Outcome{}, obs.StageTimes{}, false, ctx.Err()
	}
	select {
	case res := <-req.done:
		return res.out, res.stages, res.deduped, res.err
	case <-ctx.Done():
		// The batch may still execute the request; done is buffered so
		// the runner never blocks on an abandoned request.
		return Outcome{}, obs.StageTimes{}, false, ctx.Err()
	}
}

// QueueDepth reports how many submitted requests are waiting in the
// admission queue right now (a live gauge for /metrics; the queue's
// bound is the backpressure limit, see NewBatcher's queueDepth).
func (b *Batcher) QueueDepth() int { return len(b.queue) }

// Close stops accepting requests, drains the queue, and waits for every
// in-flight batch to finish. It is idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.sending.Wait() // every in-flight Submit has enqueued or bailed
	close(b.queue)
	<-b.done
}

// dispatch collects batches until the queue is closed and drained.
func (b *Batcher) dispatch() {
	var batches sync.WaitGroup
	defer func() {
		batches.Wait()
		close(b.done)
	}()
	for first := range b.queue {
		formStart := time.Now()
		batch := append(make([]*batchRequest, 0, b.maxBatch), first)
		if b.maxDelay > 0 {
			timer := time.NewTimer(b.maxDelay)
		collect:
			for len(batch) < b.maxBatch {
				select {
				case req, ok := <-b.queue:
					if !ok {
						break collect
					}
					batch = append(batch, req)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < b.maxBatch {
				select {
				case req, ok := <-b.queue:
					if !ok {
						break drain
					}
					batch = append(batch, req)
				default:
					break drain
				}
			}
		}
		batches.Add(1)
		go func(reqs []*batchRequest, form time.Duration) {
			defer batches.Done()
			b.run(reqs, form)
		}(batch, time.Since(formStart))
	}
}

// run executes one batch on a single checked-out replica. Checkout uses
// the background context: replicas always come back (every batch returns
// its replica), and a canceled request must not fail its batchmates.
//
// Identical requests — same pixel contents, same policy — are classified
// once and fanned out: the simulator is deterministic, so a duplicate's
// outcome is exactly its representative's. Matching goes through the
// image content hash with a pixel-equality check on hit (like
// coding.QuantCache), so a hash collision degrades to a non-duplicate,
// never to another image's result. Retry/replay-heavy traffic thus pays
// for one simulation per distinct image per microbatch; the deduped
// count is surfaced as dedupedRequests in /metrics.
//
// The surviving unique requests go through the scheduling plane: the
// exit history (when attached) predicts each lane's exit step and the
// batch is re-ordered so lanes predicted to retire together share a
// lockstep chunk; the Scheduler then picks lockstep or sequential
// execution per its policy, and both execution paths report measured
// occupancy back to it. Scheduling only reorders microbatch membership
// — on the default float32 plane both paths produce the outcomes pinned
// by the tolerance contract; on the float64 plane they are bit-identical.
func (b *Batcher) run(reqs []*batchRequest, form time.Duration) {
	rep, err := b.pool.Get(context.Background())
	if err != nil {
		for _, req := range reqs {
			req.done <- batchResult{err: fmt.Errorf("serve: replica checkout: %w", err)}
		}
		return
	}
	defer b.pool.Put(rep)
	// Queue wait ends here: the batch holds a replica and starts
	// executing. Each request's queue span (enqueue → execStart) covers
	// the channel wait, the formation window, and the checkout wait.
	execStart := time.Now()
	live := reqs[:0]
	for _, req := range reqs {
		if req.ctx.Err() != nil {
			req.done <- batchResult{err: req.ctx.Err()}
			continue
		}
		live = append(live, req)
	}
	var dups map[*batchRequest][]*batchRequest
	if len(live) > 1 {
		live, dups = b.dedupe(live)
	}
	// Exit-aware forming: predict each lane's exit step from history and
	// order lanes by predicted exit (unpredicted last), so lockstep
	// chunks group lanes that retire together. preds stays aligned with
	// live through the reorder and the chunking below (all zeros — no
	// predictions — when no history is attached).
	var preds []int
	if len(live) > 1 {
		preds = make([]int, len(live))
	}
	if b.history != nil && len(live) > 1 {
		predicted := false
		for i, req := range live {
			if steps, ok := b.history.Predict(req.hash, req.image, req.policy); ok {
				preds[i] = steps
				predicted = true
			}
		}
		if predicted {
			order := OrderByPredictedExit(preds)
			sortedLive := make([]*batchRequest, len(live))
			sortedPreds := make([]int, len(preds))
			for dst, src := range order {
				sortedLive[dst] = live[src]
				sortedPreds[dst] = preds[src]
			}
			copy(live, sortedLive)
			copy(preds, sortedPreds)
		}
	}
	if b.sched != nil && len(live) > 1 {
		dec := b.sched.Decide(len(live), preds)
		if b.metrics != nil {
			b.metrics.ObserveSchedDecision(dec)
		}
		if dec.Lockstep {
			// The lockstep simulator caps a batch at snn.MaxBatchLanes
			// lanes; a MaxBatch configured beyond that runs in chunks
			// rather than silently degrading to sequential execution.
			laneCap := b.maxBatch
			if laneCap > snn.MaxBatchLanes {
				laneCap = snn.MaxBatchLanes
			}
			bn, err := rep.Batch(laneCap, b.f32)
			if err != nil {
				// The steering plane asked for lockstep but the replica
				// cannot batch (encoder or network shape): degrading to
				// sequential silently would just look slow, so count every
				// occurrence and say why once.
				if b.metrics != nil {
					b.metrics.ObserveLockstepFallback()
				}
				b.fallbackOnce.Do(func() {
					slog.Warn("serve: lockstep unavailable, batches run sequentially",
						"error", err)
				})
			} else {
				for len(live) > 1 {
					chunk, chunkPreds := live, preds
					if len(chunk) > laneCap {
						chunk, chunkPreds = chunk[:laneCap], chunkPreds[:laneCap]
					}
					live, preds = live[len(chunk):], preds[len(chunk):]
					images := make([][]float64, len(chunk))
					policies := make([]ExitPolicy, len(chunk))
					for i, req := range chunk {
						images[i] = req.image
						policies[i] = req.policy
					}
					outs, batchSteps, times := ClassifyBatchStaged(bn, images, policies)
					times.Form = form
					saved, laneSteps := 0, 0
					for i, req := range chunk {
						saved += batchSteps - outs[i].Steps
						laneSteps += outs[i].Steps
						b.observeOutcome(req, chunkPreds[i], outs[i])
						deliver(req, batchResult{out: outs[i], stages: times}, dups, execStart)
					}
					b.sched.ObserveOccupancy(len(chunk), batchSteps, laneSteps)
					if b.metrics != nil {
						b.metrics.ObserveBatch(len(chunk), saved)
					}
				}
			}
		}
	}
	// Sequential path: the scheduler declined lockstep (or a lone lane
	// remained after chunking). A multi-lane sequential group still
	// reports the occupancy its lockstep batch *would* have had (summed
	// steps over max steps), so the adaptive controller keeps measuring
	// the workload without dispatching exploratory lockstep batches.
	maxSteps, sumSteps, seqLanes := 0, 0, len(live)
	for i, req := range live {
		out, times := ClassifyStaged(rep.Net, req.image, req.policy)
		times.Form = form
		pred := 0
		if preds != nil {
			pred = preds[i]
		}
		b.observeOutcome(req, pred, out)
		sumSteps += out.Steps
		if out.Steps > maxSteps {
			maxSteps = out.Steps
		}
		deliver(req, batchResult{out: out, stages: times}, dups, execStart)
	}
	if b.sched != nil && seqLanes > 1 {
		b.sched.ObserveOccupancy(seqLanes, maxSteps, sumSteps)
	}
}

// observeOutcome feeds one classified request back into the scheduling
// plane: the exit history learns the observed exit step, and a lane that
// carried a prediction scores it against the actual step count (the
// predicted-vs-actual error histogram in /metrics).
func (b *Batcher) observeOutcome(req *batchRequest, pred int, out Outcome) {
	if b.history != nil {
		b.history.Record(req.hash, req.image, req.policy, out.Steps)
	}
	if pred > 0 && b.metrics != nil {
		b.metrics.ObserveExitPrediction(pred, out.Steps)
	}
}

// dedupe partitions live requests into unique representatives and their
// duplicate fans. Requests count as duplicates only when the policies
// are equal and the images match pixel for pixel (bit patterns, so a
// HashImage collision — or NaN pixels — can never alias two requests).
func (b *Batcher) dedupe(live []*batchRequest) ([]*batchRequest, map[*batchRequest][]*batchRequest) {
	var dups map[*batchRequest][]*batchRequest
	byHash := make(map[uint64][]*batchRequest, len(live))
	uniq := live[:0]
next:
	for _, req := range live {
		for _, cand := range byHash[req.hash] {
			if cand.policy == req.policy && coding.SameImage(cand.image, req.image) {
				if dups == nil {
					dups = map[*batchRequest][]*batchRequest{}
				}
				dups[cand] = append(dups[cand], req)
				continue next
			}
		}
		byHash[req.hash] = append(byHash[req.hash], req)
		uniq = append(uniq, req)
	}
	if deduped := len(live) - len(uniq); deduped > 0 && b.metrics != nil {
		b.metrics.ObserveDeduped(deduped)
	}
	return uniq, dups
}

// deliver sends one result to its request and every duplicate riding it.
// Each recipient's queue span is its own (enqueue → batch execution
// start); duplicates share the representative's engine spans and are
// marked deduped.
func deliver(req *batchRequest, res batchResult, dups map[*batchRequest][]*batchRequest, execStart time.Time) {
	res.stages.Queue = execStart.Sub(req.enqueued)
	req.done <- res
	for _, d := range dups[req] {
		r := res
		r.stages.Queue = execStart.Sub(d.enqueued)
		r.deduped = true
		d.done <- r
	}
}
