package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/obs"
	"burstsnn/internal/snn"
)

// ErrClosed is returned by Submit after the batcher has been closed.
var ErrClosed = errors.New("serve: batcher closed")

// ErrOverloaded is returned by Submit when the admission plane sheds a
// request instead of queueing it: the admission queue is full, or the
// projected queue wait already exceeds the request's deadline. The
// server maps it to HTTP 429 with a Retry-After hint.
var ErrOverloaded = errors.New("serve: overloaded")

// drainEWMAWeight smooths the measured per-request drain time that
// backs projected-wait shedding and Retry-After hints (same weight as
// the scheduler's occupancy filter — both smooth bursty per-batch
// samples).
const drainEWMAWeight = 0.25

// Batcher is the microbatching request queue in front of a replica pool.
// Requests are grouped into batches of up to MaxBatch, waiting at most
// MaxDelay after the first request before dispatch; each batch checks out
// one replica and hands the execution decision to the scheduling plane
// (see sched.go): multi-request batches run lockstep through the
// replica's batch simulator — amortizing scatter-table walks, weight
// loads, and threshold computation across lanes — or back to back on the
// sequential engine, per the Scheduler's verdict. Networks that cannot
// batch (and single-request dispatches) always run sequentially; both
// paths produce outcomes pinned by the same bit-identity/tolerance
// contracts, so scheduling is outcome-invariant.
//
// In front of the queue sits the overload plane: an optional cross-batch
// response cache answers replayed (image, policy) pairs without a queue
// slot or replica; admission sheds (ErrOverloaded) instead of blocking
// when the queue is full or the projected wait exceeds the request's
// deadline; requests whose deadline expired while queued are shed at
// dispatch time, before they join a batch; and an optional degrade
// controller tightens the exit policy of every admitted request while
// queue pressure is high. Concurrent batch execution is bounded to the
// pool size, so the queue — not a pile of goroutines blocked on replica
// checkout — is where backlog accumulates and gets measured.
type Batcher struct {
	pool     *Pool
	metrics  *Metrics           // batch-occupancy/steps-saved/steering gauges; may be nil
	sched    Scheduler          // lockstep-vs-sequential policy; nil = never lockstep
	history  *ExitHistory       // exit-aware forming memory; nil disables forming/prediction
	cache    *ResponseCache     // cross-batch response cache; nil disables
	degrade  *DegradeController // degraded-mode state machine; nil disables
	fair     *FairSlot          // cross-model fair execution slots; nil disables
	f32      bool               // lockstep compute plane, fixed at construction
	maxBatch int
	maxDelay time.Duration

	injectLatency time.Duration // test hook: extra per-batch replica hold time
	injectFault   func() error  // test hook: non-nil error fails the batch

	queue chan *batchRequest

	mu      sync.Mutex
	closed  bool
	handoff *Batcher       // successor installed by CloseHandoff; nil otherwise
	sending sync.WaitGroup // Submits past the closed check, not yet enqueued

	// drainPerReq is the EWMA'd replica-seconds one queued request costs
	// (batch wall time / batch size), the basis of projected queue wait.
	drainMu      sync.Mutex
	drainPerReq  float64 // seconds
	drainSamples int

	// pressure is an always-on EWMA of queue fill (len/cap in [0,1])
	// sampled at every admission — the same signal the degrade controller
	// filters, but available even when no controller is attached. The
	// fleet tier's pool autoscaler reads it per shard. pressureAt is the
	// filter's last-fold time, driving idle decay (see decayPressure).
	pressureMu sync.Mutex
	pressure   float64
	pressureAt time.Time

	fallbackOnce sync.Once // one log line for a replica that cannot batch

	// closeCtx is canceled by Close: replica checkouts for batches that
	// have not started abort immediately (ErrClosed) while batches
	// already holding a replica drain normally.
	closeCtx    context.Context
	closeCancel context.CancelFunc

	done chan struct{} // dispatcher drained and all batches finished
}

// BatcherConfig carries NewBatcher's optional collaborators and tuning;
// the zero value is a plain 1-request-at-a-time batcher.
type BatcherConfig struct {
	Metrics  *Metrics           // batch/steering gauges; nil disables
	Sched    Scheduler          // lockstep-vs-sequential policy; nil never lockstep
	History  *ExitHistory       // exit-step memory; nil disables exit-aware forming
	Cache    *ResponseCache     // cross-batch response cache; nil disables
	Degrade  *DegradeController // degraded-mode controller; nil disables
	Fair     *FairSlot          // cross-model fair slots (see FairDispatcher); nil disables
	F32      bool               // lockstep compute plane (see Config.BatchKernel)
	MaxBatch int                // lanes per microbatch; <= 0 defaults to 1
	MaxDelay time.Duration      // batch-forming window; <= 0 dispatches on queue drain
	// QueueDepth bounds the admission queue; <= 0 defaults to 4× MaxBatch.
	// Submits beyond it shed with ErrOverloaded.
	QueueDepth int

	// InjectLatency and InjectFault are overload-test hooks: every batch
	// holds its replica InjectLatency longer, and a non-nil InjectFault
	// error fails the batch's live requests before execution.
	InjectLatency time.Duration
	InjectFault   func() error
}

type batchRequest struct {
	ctx      context.Context
	image    []float64
	hash     uint64 // coding.HashImage(image), computed once at submit
	policy   ExitPolicy
	enqueued time.Time // Submit time; queue-wait span start
	done     chan batchResult
}

type batchResult struct {
	out Outcome
	// stages carries the request's measured stage spans back to the
	// server (queue/form from the batcher, engine spans from the
	// classify call that served it).
	stages  obs.StageTimes
	deduped bool
	err     error
}

// SubmitFlags reports how a request was served, alongside its outcome.
type SubmitFlags struct {
	Deduped  bool // answered by in-window duplicate fan-out
	Cached   bool // answered by the response cache; never queued or simulated
	Degraded bool // ran under the degraded-mode tightened policy
}

// NewBatcher starts the dispatcher. See BatcherConfig for the knobs and
// collaborators; the batcher owns none of them (the server shares
// Metrics/History/Cache with its snapshot plane).
func NewBatcher(pool *Pool, cfg BatcherConfig) *Batcher {
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 1
	}
	queueDepth := cfg.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 4 * maxBatch
	}
	closeCtx, closeCancel := context.WithCancel(context.Background())
	b := &Batcher{
		pool:          pool,
		metrics:       cfg.Metrics,
		sched:         cfg.Sched,
		history:       cfg.History,
		cache:         cfg.Cache,
		degrade:       cfg.Degrade,
		fair:          cfg.Fair,
		f32:           cfg.F32,
		maxBatch:      maxBatch,
		maxDelay:      cfg.MaxDelay,
		injectLatency: cfg.InjectLatency,
		injectFault:   cfg.InjectFault,
		queue:         make(chan *batchRequest, queueDepth),
		closeCtx:      closeCtx,
		closeCancel:   closeCancel,
		done:          make(chan struct{}),
	}
	go b.dispatch()
	return b
}

// Submit enqueues one classification and blocks until its result, the
// context's cancellation, or batcher shutdown.
func (b *Batcher) Submit(ctx context.Context, image []float64, p ExitPolicy) (Outcome, error) {
	out, _, _, err := b.SubmitTraced(ctx, image, p)
	return out, err
}

// SubmitTraced is Submit returning the request's measured stage spans
// (queue wait, batch formation, and the engine's encode/simulate/readout
// — see internal/obs) plus how the request was served (SubmitFlags).
// Spans are zero on error paths that never executed and on cache hits,
// which never enter the pipeline.
//
// Admission runs in order: degraded-mode observation (and policy
// tightening while degraded), response-cache lookup, then deadline-aware
// admission — a request already past its deadline, or whose remaining
// deadline is smaller than the projected queue wait, or arriving at a
// full queue, is shed immediately (ErrOverloaded / its context error)
// rather than left to time out while holding a queue slot.
func (b *Batcher) SubmitTraced(ctx context.Context, image []float64, p ExitPolicy) (Outcome, obs.StageTimes, SubmitFlags, error) {
	var flags SubmitFlags
	b.mu.Lock()
	if b.closed {
		nb := b.handoff
		b.mu.Unlock()
		if nb != nil {
			// Hot swap in progress: this batcher was replaced, so the
			// request belongs to its successor. Submitting there re-runs
			// the successor's own admission (pressure, degrade, cache).
			return nb.SubmitTraced(ctx, image, p)
		}
		return Outcome{}, obs.StageTimes{}, flags, ErrClosed
	}
	b.sending.Add(1)
	b.mu.Unlock()

	b.observePressure()
	if b.degrade != nil {
		// Pressure is sampled at every admission — including ones that end
		// as cache hits or sheds — so the controller sees recovery too.
		b.degrade.Observe(len(b.queue), cap(b.queue))
		if b.degrade.Degraded() {
			p = b.degrade.Tighten(p)
			flags.Degraded = true
		}
	}

	// Hash once per request: the cache, dedupe, and exit-history lookups
	// all key on this, so no later stage rehashes the pixels. The lookup
	// uses the (possibly tightened) effective policy — a degraded request
	// can only be answered by a degraded-policy entry.
	hash := coding.HashImage(image)
	if b.cache != nil {
		if out, ok := b.cache.Lookup(hash, image, p); ok {
			b.sending.Done()
			flags.Cached = true
			return out, obs.StageTimes{}, flags, nil
		}
	}

	if err := ctx.Err(); err != nil {
		b.sending.Done()
		return Outcome{}, obs.StageTimes{}, flags, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		if wait := b.projectedWait(); wait > 0 && time.Until(deadline) < wait {
			b.sending.Done()
			return Outcome{}, obs.StageTimes{}, flags,
				fmt.Errorf("%w: projected queue wait %v exceeds request deadline", ErrOverloaded, wait)
		}
	}

	req := &batchRequest{
		ctx: ctx, image: image, hash: hash, policy: p,
		enqueued: time.Now(), done: make(chan batchResult, 1),
	}
	select {
	case b.queue <- req:
		b.sending.Done()
	default:
		// Queue full: shed now. Blocking here would just convert the
		// overload into client-side timeouts with no signal.
		b.sending.Done()
		return Outcome{}, obs.StageTimes{}, flags, ErrOverloaded
	}
	select {
	case res := <-req.done:
		flags.Deduped = res.deduped
		return res.out, res.stages, flags, res.err
	case <-ctx.Done():
		// The batch may still execute the request; done is buffered so
		// the runner never blocks on an abandoned request.
		return Outcome{}, obs.StageTimes{}, flags, ctx.Err()
	}
}

// QueueDepth reports how many submitted requests are waiting in the
// admission queue right now (a live gauge for /metrics; the queue's
// bound is the shedding limit, see BatcherConfig.QueueDepth).
func (b *Batcher) QueueDepth() int { return len(b.queue) }

// DegradeState reports the degraded-mode state machine's mode and
// smoothed queue-pressure signal ("off" when no controller is attached).
func (b *Batcher) DegradeState() (mode string, pressure float64) {
	if b.degrade == nil {
		return "off", 0
	}
	return b.degrade.State()
}

// pressureIdleTick is the synthetic observation period for the pressure
// EWMA while no admissions arrive. The filter is admission-driven, so
// without it a saturated reading would pin forever once traffic stops —
// an idle queue is an empty queue, and the autoscaler's shrink path must
// see that drain.
const pressureIdleTick = 100 * time.Millisecond

// observePressure folds the instantaneous queue fill into the always-on
// pressure EWMA (same smoothing weight as the drain filter).
func (b *Batcher) observePressure() {
	fill := float64(len(b.queue)) / float64(cap(b.queue))
	now := time.Now()
	b.pressureMu.Lock()
	b.decayPressureLocked(now)
	b.pressure += drainEWMAWeight * (fill - b.pressure)
	b.pressureAt = now
	b.pressureMu.Unlock()
}

// decayPressureLocked applies one zero-fill fold per pressureIdleTick
// elapsed since the last observation. Under steady traffic admissions
// arrive well inside a tick and this is a no-op.
func (b *Batcher) decayPressureLocked(now time.Time) {
	if b.pressureAt.IsZero() {
		return
	}
	if ticks := now.Sub(b.pressureAt) / pressureIdleTick; ticks > 0 {
		b.pressure *= math.Pow(1-drainEWMAWeight, float64(ticks))
		b.pressureAt = b.pressureAt.Add(ticks * pressureIdleTick)
	}
}

// Pressure reports the smoothed queue-fill fraction in [0,1]. Unlike
// DegradeState's signal it needs no controller attached; it is the fleet
// autoscaler's per-shard control input.
func (b *Batcher) Pressure() float64 {
	b.pressureMu.Lock()
	defer b.pressureMu.Unlock()
	b.decayPressureLocked(time.Now())
	return b.pressure
}

// projectedWait estimates how long a request admitted right now would
// wait before executing: queued requests × EWMA'd per-request drain
// time, divided across the replica pool. Zero until the first batch has
// been measured or while the queue is empty.
func (b *Batcher) projectedWait() time.Duration {
	b.drainMu.Lock()
	perReq := b.drainPerReq
	b.drainMu.Unlock()
	queued := len(b.queue)
	if perReq <= 0 || queued <= 0 {
		return 0
	}
	replicas := 1
	if b.pool != nil {
		replicas = b.pool.Size()
	}
	return time.Duration(float64(queued) * perReq / float64(replicas) * float64(time.Second))
}

// RetryAfter is the server's Retry-After hint on 429 responses: the
// projected queue wait, floored at one second.
func (b *Batcher) RetryAfter() time.Duration {
	if wait := b.projectedWait(); wait > time.Second {
		return wait
	}
	return time.Second
}

// observeDrain feeds one executed batch's wall time into the per-request
// drain-time EWMA behind projectedWait.
func (b *Batcher) observeDrain(wall time.Duration, requests int) {
	if requests <= 0 || wall <= 0 {
		return
	}
	perReq := wall.Seconds() / float64(requests)
	b.drainMu.Lock()
	if b.drainSamples == 0 {
		b.drainPerReq = perReq
	} else {
		b.drainPerReq += drainEWMAWeight * (perReq - b.drainPerReq)
	}
	b.drainSamples++
	b.drainMu.Unlock()
}

// Close stops accepting requests and shuts down: batches already holding
// a replica drain to completion, while queued requests — and formed
// batches still waiting for an execution slot — fail fast with ErrClosed
// instead of executing (under saturation the queue can hold many
// multiples of a replica's drain rate; executing it all would stall
// shutdown for seconds). It is idempotent and returns only after the
// dispatcher and every batch goroutine have exited.
func (b *Batcher) Close() { b.closeWith(nil, false) }

// CloseHandoff closes like Close but re-routes instead of failing: late
// Submits and every queued or not-yet-executing request are re-submitted
// to nb, the batcher that replaced this one in a hot swap. Clients see
// at most extra latency (or an honest ErrOverloaded if the successor's
// queue is full) — never ErrClosed. Handoffs chain: if nb is itself
// replaced before the drain finishes, requests follow the successor
// links to the live batcher.
func (b *Batcher) CloseHandoff(nb *Batcher) { b.closeWith(nb, false) }

// CloseGraceful closes without abandoning queued work: admission stops
// (late Submits get ErrClosed), but everything already queued executes
// on the still-live pool before the call returns. This is the
// unregister/evict drain — the pool is about to be released, so queued
// requests must finish on it rather than re-route.
func (b *Batcher) CloseGraceful() { b.closeWith(nil, true) }

// closeWith implements the three close modes. Fast modes (Close,
// CloseHandoff) cancel closeCtx first so queued requests fail or
// forward without executing; graceful mode leaves closeCtx live until
// the dispatcher has drained the queue for real.
func (b *Batcher) closeWith(nb *Batcher, graceful bool) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.handoff = nb
	b.mu.Unlock()
	if !graceful {
		b.closeCancel()
	}
	b.sending.Wait() // every in-flight Submit has enqueued or bailed
	close(b.queue)
	<-b.done
	if graceful {
		b.closeCancel()
	}
}

// forward re-routes a request this batcher can no longer execute to the
// successor installed by CloseHandoff, falling back to ErrClosed when
// there is none (plain Close / CloseGraceful).
func (b *Batcher) forward(req *batchRequest) {
	b.mu.Lock()
	nb := b.handoff
	b.mu.Unlock()
	if nb == nil {
		req.done <- batchResult{err: ErrClosed}
		return
	}
	nb.accept(req)
}

// accept takes a forwarded, already-admitted request into this batcher's
// queue (non-blocking: a full successor queue sheds honestly with
// ErrOverloaded rather than stalling the predecessor's drain). If this
// batcher has itself been closed, the request follows the handoff chain.
func (b *Batcher) accept(req *batchRequest) {
	b.mu.Lock()
	if b.closed {
		nb := b.handoff
		b.mu.Unlock()
		if nb != nil {
			nb.accept(req)
			return
		}
		req.done <- batchResult{err: ErrClosed}
		return
	}
	b.sending.Add(1)
	b.mu.Unlock()
	select {
	case b.queue <- req:
	default:
		req.done <- batchResult{err: ErrOverloaded}
	}
	b.sending.Done()
}

// shedAtDispatch fails a dequeued request that should not join a batch:
// the batcher is closing, or the request's deadline expired / context
// was canceled while it sat in the queue. Returns true when shed. This
// runs before the request would consume batch-forming time or replica
// work (previously dead requests were only dropped at batch-exec start,
// after riding a formed batch through replica checkout).
func (b *Batcher) shedAtDispatch(req *batchRequest) bool {
	if b.closeCtx.Err() != nil {
		b.forward(req)
		return true
	}
	if err := req.ctx.Err(); err != nil {
		req.done <- batchResult{err: err}
		return true
	}
	return false
}

// dispatch collects batches until the queue is closed and drained. The
// slots channel bounds concurrently executing batches to the pool size:
// without it the dispatcher would eagerly drain the queue into a pile
// of goroutines serialized on replica checkout, and the queue bound —
// the overload signal — would never engage.
func (b *Batcher) dispatch() {
	var batches sync.WaitGroup
	defer func() {
		batches.Wait()
		close(b.done)
	}()
	// Slots are sized to the pool's ceiling, not its current width:
	// replica checkout still serializes execution at the live Size, and
	// sizing to Max lets an autoscaler grow the pool without restarting
	// the dispatcher. With a fixed pool (Max == Size, the non-fleet
	// default) this is the old bound exactly.
	slotCap := 1
	if b.pool != nil {
		slotCap = b.pool.Max()
	}
	slots := make(chan struct{}, slotCap)
	for i := 0; i < slotCap; i++ {
		slots <- struct{}{}
	}
	for first := range b.queue {
		if b.shedAtDispatch(first) {
			continue
		}
		formStart := time.Now()
		batch := append(make([]*batchRequest, 0, b.maxBatch), first)
		if b.maxDelay > 0 {
			timer := time.NewTimer(b.maxDelay)
		collect:
			for len(batch) < b.maxBatch {
				select {
				case req, ok := <-b.queue:
					if !ok {
						break collect
					}
					if b.shedAtDispatch(req) {
						continue
					}
					batch = append(batch, req)
				case <-timer.C:
					break collect
				case <-b.closeCtx.Done():
					break collect
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < b.maxBatch {
				select {
				case req, ok := <-b.queue:
					if !ok {
						break drain
					}
					if b.shedAtDispatch(req) {
						continue
					}
					batch = append(batch, req)
				default:
					break drain
				}
			}
		}
		gotSlot := false
		select {
		case <-slots:
			gotSlot = true
		case <-b.closeCtx.Done():
			// Closing while waiting to execute: take a free slot if one
			// exists, otherwise this batch counts as queued and fails.
			select {
			case <-slots:
				gotSlot = true
			default:
			}
		}
		if !gotSlot {
			for _, req := range batch {
				b.forward(req)
			}
			continue
		}
		batches.Add(1)
		go func(reqs []*batchRequest, form time.Duration) {
			defer func() {
				slots <- struct{}{}
				batches.Done()
			}()
			b.run(reqs, form)
		}(batch, time.Since(formStart))
	}
}

// run executes one batch on a single checked-out replica. Checkout uses
// closeCtx — never a request context, since a canceled request must not
// fail its batchmates — so a batch that has not yet obtained a replica
// when Close fires fails with ErrClosed instead of executing.
//
// Identical requests — same pixel contents, same policy — are classified
// once and fanned out: the simulator is deterministic, so a duplicate's
// outcome is exactly its representative's. Matching goes through the
// image content hash with a pixel-equality check on hit (like
// coding.QuantCache), so a hash collision degrades to a non-duplicate,
// never to another image's result. Retry/replay-heavy traffic thus pays
// for one simulation per distinct image per microbatch; the deduped
// count is surfaced as dedupedRequests in /metrics.
//
// The surviving unique requests go through the scheduling plane: the
// exit history (when attached) predicts each lane's exit step and the
// batch is re-ordered so lanes predicted to retire together share a
// lockstep chunk; the Scheduler then picks lockstep or sequential
// execution per its policy, and both execution paths report measured
// occupancy back to it. Scheduling only reorders microbatch membership
// — on the default float32 plane both paths produce the outcomes pinned
// by the tolerance contract; on the float64 plane they are bit-identical.
func (b *Batcher) run(reqs []*batchRequest, form time.Duration) {
	if b.fair != nil {
		if err := b.fair.Acquire(b.closeCtx); err != nil {
			// Closed before a slot was granted: same disposition as a
			// failed checkout — follow the handoff chain or fail closed.
			for _, req := range reqs {
				b.forward(req)
			}
			return
		}
		defer b.fair.Release()
	}
	rep, err := b.pool.Get(b.closeCtx)
	if err != nil {
		if b.closeCtx.Err() != nil {
			for _, req := range reqs {
				b.forward(req)
			}
			return
		}
		resErr := fmt.Errorf("serve: replica checkout: %w", err)
		for _, req := range reqs {
			req.done <- batchResult{err: resErr}
		}
		return
	}
	defer b.pool.Put(rep)
	// Queue wait ends here: the batch holds a replica and starts
	// executing. Each request's queue span (enqueue → execStart) covers
	// the channel wait, the formation window, and the checkout wait.
	execStart := time.Now()
	defer func() { b.observeDrain(time.Since(execStart), len(reqs)) }()
	if b.injectLatency > 0 {
		time.Sleep(b.injectLatency)
	}
	live := reqs[:0]
	for _, req := range reqs {
		if req.ctx.Err() != nil {
			req.done <- batchResult{err: req.ctx.Err()}
			continue
		}
		live = append(live, req)
	}
	if b.injectFault != nil {
		if err := b.injectFault(); err != nil {
			for _, req := range live {
				req.done <- batchResult{err: fmt.Errorf("serve: injected fault: %w", err)}
			}
			return
		}
	}
	var dups map[*batchRequest][]*batchRequest
	if len(live) > 1 {
		live, dups = b.dedupe(live)
	}
	// Exit-aware forming: predict each lane's exit step from history and
	// order lanes by predicted exit (unpredicted last), so lockstep
	// chunks group lanes that retire together. preds stays aligned with
	// live through the reorder and the chunking below (all zeros — no
	// predictions — when no history is attached).
	var preds []int
	if len(live) > 1 {
		preds = make([]int, len(live))
	}
	if b.history != nil && len(live) > 1 {
		predicted := false
		for i, req := range live {
			if steps, ok := b.history.Predict(req.hash, req.image, req.policy); ok {
				preds[i] = steps
				predicted = true
			}
		}
		if predicted {
			order := OrderByPredictedExit(preds)
			sortedLive := make([]*batchRequest, len(live))
			sortedPreds := make([]int, len(preds))
			for dst, src := range order {
				sortedLive[dst] = live[src]
				sortedPreds[dst] = preds[src]
			}
			copy(live, sortedLive)
			copy(preds, sortedPreds)
		}
	}
	if b.sched != nil && len(live) > 1 {
		dec := b.sched.Decide(len(live), preds)
		if b.metrics != nil {
			b.metrics.ObserveSchedDecision(dec)
		}
		if dec.Lockstep {
			// The lockstep simulator caps a batch at snn.MaxBatchLanes
			// lanes; a MaxBatch configured beyond that runs in chunks
			// rather than silently degrading to sequential execution.
			laneCap := b.maxBatch
			if laneCap > snn.MaxBatchLanes {
				laneCap = snn.MaxBatchLanes
			}
			bn, err := rep.Batch(laneCap, b.f32)
			if err != nil {
				// The steering plane asked for lockstep but the replica
				// cannot batch (encoder or network shape): degrading to
				// sequential silently would just look slow, so count every
				// occurrence and say why once.
				if b.metrics != nil {
					b.metrics.ObserveLockstepFallback()
				}
				b.fallbackOnce.Do(func() {
					slog.Warn("serve: lockstep unavailable, batches run sequentially",
						"error", err)
				})
			} else {
				for len(live) > 1 {
					chunk, chunkPreds := live, preds
					if len(chunk) > laneCap {
						chunk, chunkPreds = chunk[:laneCap], chunkPreds[:laneCap]
					}
					live, preds = live[len(chunk):], preds[len(chunk):]
					images := make([][]float64, len(chunk))
					policies := make([]ExitPolicy, len(chunk))
					for i, req := range chunk {
						images[i] = req.image
						policies[i] = req.policy
					}
					outs, batchSteps, times := ClassifyBatchStaged(bn, images, policies)
					times.Form = form
					saved, laneSteps := 0, 0
					for i, req := range chunk {
						saved += batchSteps - outs[i].Steps
						laneSteps += outs[i].Steps
						b.observeOutcome(req, chunkPreds[i], outs[i])
						deliver(req, batchResult{out: outs[i], stages: times}, dups, execStart)
					}
					b.sched.ObserveOccupancy(len(chunk), batchSteps, laneSteps)
					if b.metrics != nil {
						b.metrics.ObserveBatch(len(chunk), saved)
					}
				}
			}
		}
	}
	// Sequential path: the scheduler declined lockstep (or a lone lane
	// remained after chunking). A multi-lane sequential group still
	// reports the occupancy its lockstep batch *would* have had (summed
	// steps over max steps), so the adaptive controller keeps measuring
	// the workload without dispatching exploratory lockstep batches.
	maxSteps, sumSteps, seqLanes := 0, 0, len(live)
	for i, req := range live {
		out, times := ClassifyStaged(rep.Net, req.image, req.policy)
		times.Form = form
		pred := 0
		if preds != nil {
			pred = preds[i]
		}
		b.observeOutcome(req, pred, out)
		sumSteps += out.Steps
		if out.Steps > maxSteps {
			maxSteps = out.Steps
		}
		deliver(req, batchResult{out: out, stages: times}, dups, execStart)
	}
	if b.sched != nil && seqLanes > 1 {
		b.sched.ObserveOccupancy(seqLanes, maxSteps, sumSteps)
	}
}

// observeOutcome feeds one classified request back into the scheduling
// and caching planes: the exit history learns the observed exit step, a
// lane that carried a prediction scores it against the actual step count
// (the predicted-vs-actual error histogram in /metrics), and the
// response cache learns the outcome so replays are served upstream.
func (b *Batcher) observeOutcome(req *batchRequest, pred int, out Outcome) {
	if b.history != nil {
		b.history.Record(req.hash, req.image, req.policy, out.Steps)
	}
	if b.cache != nil {
		b.cache.Record(req.hash, req.image, req.policy, out)
	}
	if pred > 0 && b.metrics != nil {
		b.metrics.ObserveExitPrediction(pred, out.Steps)
	}
}

// dedupe partitions live requests into unique representatives and their
// duplicate fans. Requests count as duplicates only when the policies
// are equal and the images match pixel for pixel (bit patterns, so a
// HashImage collision — or NaN pixels — can never alias two requests).
func (b *Batcher) dedupe(live []*batchRequest) ([]*batchRequest, map[*batchRequest][]*batchRequest) {
	var dups map[*batchRequest][]*batchRequest
	byHash := make(map[uint64][]*batchRequest, len(live))
	uniq := live[:0]
next:
	for _, req := range live {
		for _, cand := range byHash[req.hash] {
			if cand.policy == req.policy && coding.SameImage(cand.image, req.image) {
				if dups == nil {
					dups = map[*batchRequest][]*batchRequest{}
				}
				dups[cand] = append(dups[cand], req)
				continue next
			}
		}
		byHash[req.hash] = append(byHash[req.hash], req)
		uniq = append(uniq, req)
	}
	if deduped := len(live) - len(uniq); deduped > 0 && b.metrics != nil {
		b.metrics.ObserveDeduped(deduped)
	}
	return uniq, dups
}

// deliver sends one result to its request and every duplicate riding it.
// Each recipient's queue span is its own (enqueue → batch execution
// start); duplicates share the representative's engine spans and are
// marked deduped.
func deliver(req *batchRequest, res batchResult, dups map[*batchRequest][]*batchRequest, execStart time.Time) {
	res.stages.Queue = execStart.Sub(req.enqueued)
	req.done <- res
	for _, d := range dups[req] {
		r := res
		r.stages.Queue = execStart.Sub(d.enqueued)
		r.deduped = true
		d.done <- r
	}
}
