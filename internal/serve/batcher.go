package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by Submit after the batcher has been closed.
var ErrClosed = errors.New("serve: batcher closed")

// Batcher is the microbatching request queue in front of a replica pool.
// Requests are grouped into batches of up to MaxBatch, waiting at most
// MaxDelay after the first request before dispatch; each batch checks out
// one replica and runs its requests back to back, so a batch amortizes
// pool checkout and keeps a replica's working set hot while the pool
// bound still caps concurrent simulation.
type Batcher struct {
	pool     *Pool
	maxBatch int
	maxDelay time.Duration

	queue chan *batchRequest

	mu      sync.Mutex
	closed  bool
	sending sync.WaitGroup // Submits past the closed check, not yet enqueued

	done chan struct{} // dispatcher drained and all batches finished
}

type batchRequest struct {
	ctx    context.Context
	image  []float64
	policy ExitPolicy
	done   chan batchResult
}

type batchResult struct {
	out Outcome
	err error
}

// NewBatcher starts the dispatcher. maxBatch <= 0 defaults to 1 (no
// batching); maxDelay <= 0 dispatches as soon as the queue momentarily
// drains; queueDepth <= 0 defaults to 4× maxBatch.
func NewBatcher(pool *Pool, maxBatch int, maxDelay time.Duration, queueDepth int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 1
	}
	if queueDepth <= 0 {
		queueDepth = 4 * maxBatch
	}
	b := &Batcher{
		pool:     pool,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		queue:    make(chan *batchRequest, queueDepth),
		done:     make(chan struct{}),
	}
	go b.dispatch()
	return b
}

// Submit enqueues one classification and blocks until its result, the
// context's cancellation, or batcher shutdown.
func (b *Batcher) Submit(ctx context.Context, image []float64, p ExitPolicy) (Outcome, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return Outcome{}, ErrClosed
	}
	b.sending.Add(1)
	b.mu.Unlock()

	req := &batchRequest{ctx: ctx, image: image, policy: p, done: make(chan batchResult, 1)}
	select {
	case b.queue <- req:
		b.sending.Done()
	case <-ctx.Done():
		b.sending.Done()
		return Outcome{}, ctx.Err()
	}
	select {
	case res := <-req.done:
		return res.out, res.err
	case <-ctx.Done():
		// The batch may still execute the request; done is buffered so
		// the runner never blocks on an abandoned request.
		return Outcome{}, ctx.Err()
	}
}

// Close stops accepting requests, drains the queue, and waits for every
// in-flight batch to finish. It is idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.sending.Wait() // every in-flight Submit has enqueued or bailed
	close(b.queue)
	<-b.done
}

// dispatch collects batches until the queue is closed and drained.
func (b *Batcher) dispatch() {
	var batches sync.WaitGroup
	defer func() {
		batches.Wait()
		close(b.done)
	}()
	for first := range b.queue {
		batch := append(make([]*batchRequest, 0, b.maxBatch), first)
		if b.maxDelay > 0 {
			timer := time.NewTimer(b.maxDelay)
		collect:
			for len(batch) < b.maxBatch {
				select {
				case req, ok := <-b.queue:
					if !ok {
						break collect
					}
					batch = append(batch, req)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < b.maxBatch {
				select {
				case req, ok := <-b.queue:
					if !ok {
						break drain
					}
					batch = append(batch, req)
				default:
					break drain
				}
			}
		}
		batches.Add(1)
		go func(reqs []*batchRequest) {
			defer batches.Done()
			b.run(reqs)
		}(batch)
	}
}

// run executes one batch on a single checked-out replica. Checkout uses
// the background context: replicas always come back (every batch returns
// its replica), and a canceled request must not fail its batchmates.
func (b *Batcher) run(reqs []*batchRequest) {
	net, err := b.pool.Get(context.Background())
	if err != nil {
		for _, req := range reqs {
			req.done <- batchResult{err: fmt.Errorf("serve: replica checkout: %w", err)}
		}
		return
	}
	defer b.pool.Put(net)
	for _, req := range reqs {
		if req.ctx.Err() != nil {
			req.done <- batchResult{err: req.ctx.Err()}
			continue
		}
		req.done <- batchResult{out: Classify(net, req.image, req.policy)}
	}
}
