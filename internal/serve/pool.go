package serve

import (
	"context"
	"fmt"

	"burstsnn/internal/snn"
)

// Pool is a fixed-size checkout pool of simulator replicas. The spiking
// simulator is stateful (Reset/Step mutate membrane potentials), so a
// request must hold a replica exclusively for its whole run; the pool
// bounds simulator memory to Size networks while letting Size requests
// simulate concurrently.
type Pool struct {
	ch chan *snn.Network
}

// NewPool builds a pool holding proto plus size−1 weight-sharing clones.
func NewPool(proto *snn.Network, size int) (*Pool, error) {
	if size < 1 {
		return nil, fmt.Errorf("serve: pool size must be at least 1, got %d", size)
	}
	p := &Pool{ch: make(chan *snn.Network, size)}
	p.ch <- proto
	for i := 1; i < size; i++ {
		c, err := proto.Clone()
		if err != nil {
			return nil, fmt.Errorf("serve: replica %d: %w", i, err)
		}
		p.ch <- c
	}
	return p, nil
}

// Size returns the replica count.
func (p *Pool) Size() int { return cap(p.ch) }

// Get checks out a replica, blocking until one is free or ctx is done.
func (p *Pool) Get(ctx context.Context) (*snn.Network, error) {
	select {
	case net := <-p.ch:
		return net, nil
	default:
	}
	select {
	case net := <-p.ch:
		return net, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Put returns a replica to the pool. It must only be called with networks
// obtained from Get.
func (p *Pool) Put(net *snn.Network) {
	select {
	case p.ch <- net:
	default:
		panic("serve: pool overflow — Put without matching Get")
	}
}
