package serve

import (
	"context"
	"fmt"

	"burstsnn/internal/snn"
)

// Replica is one checkout unit of a Pool: a weight-sharing sequential
// simulator plus, built lazily on first use, its batched lockstep variant
// (which shares the same weights — or their float32 copies — and scatter
// tables again). A request — or a whole microbatch — holds the Replica
// exclusively, so neither simulator needs internal locking.
type Replica struct {
	// Net is the sequential simulator (single-image path).
	Net *snn.Network

	batch    snn.Lockstep
	batchF32 bool
	batchErr error
}

// Batch returns the replica's lockstep simulator with at least b lanes on
// the requested compute plane (f32 selects the float32 kernel plane),
// constructing — or widening — it on first use. The batcher passes the
// same plane for the replica's whole lifetime (the kernel variant is
// picked once at server build time), so in practice a replica only ever
// materializes one simulator. The error is sticky: a network whose
// encoder cannot batch (e.g. a stream-stateful Poisson encoder) fails
// once and the batcher falls back to sequential execution without
// re-probing.
func (r *Replica) Batch(b int, f32 bool) (snn.Lockstep, error) {
	if r.batch != nil && r.batchF32 == f32 && r.batch.B() >= b {
		return r.batch, nil
	}
	if r.batchErr != nil {
		return nil, r.batchErr
	}
	bn, err := snn.NewLockstep(r.Net, b, f32)
	if err != nil {
		r.batchErr = err
		return nil, err
	}
	r.batch, r.batchF32 = bn, f32
	return bn, nil
}

// Pool is a fixed-size checkout pool of simulator replicas. The spiking
// simulator is stateful (Reset/Step mutate membrane potentials), so a
// request must hold a replica exclusively for its whole run; the pool
// bounds simulator memory to Size networks while letting Size requests
// (or microbatches) simulate concurrently.
type Pool struct {
	ch chan *Replica
}

// NewPool builds a pool holding proto plus size−1 weight-sharing clones.
func NewPool(proto *snn.Network, size int) (*Pool, error) {
	if size < 1 {
		return nil, fmt.Errorf("serve: pool size must be at least 1, got %d", size)
	}
	p := &Pool{ch: make(chan *Replica, size)}
	p.ch <- &Replica{Net: proto}
	for i := 1; i < size; i++ {
		c, err := proto.Clone()
		if err != nil {
			return nil, fmt.Errorf("serve: replica %d: %w", i, err)
		}
		p.ch <- &Replica{Net: c}
	}
	return p, nil
}

// Size returns the replica count.
func (p *Pool) Size() int { return cap(p.ch) }

// InFlight reports how many replicas are checked out right now (a live
// gauge for /metrics; InFlight == Size means the next batch waits).
func (p *Pool) InFlight() int { return cap(p.ch) - len(p.ch) }

// Get checks out a replica, blocking until one is free or ctx is done.
func (p *Pool) Get(ctx context.Context) (*Replica, error) {
	select {
	case rep := <-p.ch:
		return rep, nil
	default:
	}
	select {
	case rep := <-p.ch:
		return rep, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Put returns a replica to the pool. It must only be called with replicas
// obtained from Get.
func (p *Pool) Put(rep *Replica) {
	select {
	case p.ch <- rep:
	default:
		panic("serve: pool overflow — Put without matching Get")
	}
}
