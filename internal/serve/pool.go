package serve

import (
	"context"
	"fmt"
	"sync"

	"burstsnn/internal/snn"
)

// Replica is one checkout unit of a Pool: a weight-sharing sequential
// simulator plus, built lazily on first use, its batched lockstep variant
// (which shares the same weights — or their float32 copies — and scatter
// tables again). A request — or a whole microbatch — holds the Replica
// exclusively, so neither simulator needs internal locking.
type Replica struct {
	// Net is the sequential simulator (single-image path).
	Net *snn.Network

	batch    snn.Lockstep
	batchF32 bool
	batchErr error
}

// Batch returns the replica's lockstep simulator with at least b lanes on
// the requested compute plane (f32 selects the float32 kernel plane),
// constructing — or widening — it on first use. The batcher passes the
// same plane for the replica's whole lifetime (the kernel variant is
// picked once at server build time), so in practice a replica only ever
// materializes one simulator. The error is sticky: a network whose
// encoder cannot batch (e.g. a stream-stateful Poisson encoder) fails
// once and the batcher falls back to sequential execution without
// re-probing.
func (r *Replica) Batch(b int, f32 bool) (snn.Lockstep, error) {
	if r.batch != nil && r.batchF32 == f32 && r.batch.B() >= b {
		return r.batch, nil
	}
	if r.batchErr != nil {
		return nil, r.batchErr
	}
	bn, err := snn.NewLockstep(r.Net, b, f32)
	if err != nil {
		r.batchErr = err
		return nil, err
	}
	r.batch, r.batchF32 = bn, f32
	return bn, nil
}

// Pool is a resizable checkout pool of simulator replicas. The spiking
// simulator is stateful (Reset/Step mutate membrane potentials), so a
// request must hold a replica exclusively for its whole run; the pool
// bounds simulator memory to at most Max networks while letting Size
// requests (or microbatches) simulate concurrently.
//
// The prototype network stays out of the serving rotation as a pure
// clone template: every replica is a weight-sharing clone, so Resize can
// grow the pool while other replicas are mid-simulation without racing
// Clone against a live membrane update.
type Pool struct {
	proto *snn.Network
	ch    chan *Replica // capacity = max; holds idle replicas

	mu     sync.Mutex
	built  int // replicas in existence (idle + checked out)
	target int // desired replica count; surplus is discarded on Put
}

// NewPool builds a fixed-size pool of size weight-sharing clones
// (Max == Size, so Resize is a no-op beyond the initial count).
func NewPool(proto *snn.Network, size int) (*Pool, error) {
	return NewPoolMax(proto, size, size)
}

// NewPoolMax builds a pool with size replicas up front and headroom to
// grow to max via Resize. The autoscaler owns the headroom: it widens the
// pool when queue pressure rises and narrows it back when pressure
// drains, within [1, max].
func NewPoolMax(proto *snn.Network, size, max int) (*Pool, error) {
	if size < 1 {
		return nil, fmt.Errorf("serve: pool size must be at least 1, got %d", size)
	}
	if max < size {
		return nil, fmt.Errorf("serve: pool max %d below size %d", max, size)
	}
	p := &Pool{proto: proto, ch: make(chan *Replica, max)}
	for i := 0; i < size; i++ {
		c, err := proto.Clone()
		if err != nil {
			return nil, fmt.Errorf("serve: replica %d: %w", i, err)
		}
		p.ch <- &Replica{Net: c}
	}
	p.built, p.target = size, size
	return p, nil
}

// Size returns the target replica count (the pool's current width; during
// a shrink, surplus checked-out replicas are still draining back).
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// Max returns the replica-count ceiling Resize can grow to.
func (p *Pool) Max() int { return cap(p.ch) }

// InFlight reports how many replicas are checked out right now (a live
// gauge for /metrics; InFlight == Size means the next batch waits).
func (p *Pool) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.built - len(p.ch)
}

// Resize sets the target replica count, clamped to [1, Max]. Growth is
// eager (clones are built here, on the caller — the autoscaler goroutine
// — never on the request path); shrinking discards idle replicas now and
// sheds checked-out surplus as it returns through Put. Returns the
// clamped target.
func (p *Pool) Resize(n int) (int, error) {
	if n < 1 {
		n = 1
	}
	if n > cap(p.ch) {
		n = cap(p.ch)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.target = n
	for p.built < n {
		c, err := p.proto.Clone()
		if err != nil {
			return p.target, fmt.Errorf("serve: replica %d: %w", p.built, err)
		}
		p.ch <- &Replica{Net: c}
		p.built++
	}
	for p.built > n {
		select {
		case <-p.ch:
			p.built--
		default:
			// The surplus is all checked out; Put discards it on return.
			return n, nil
		}
	}
	return n, nil
}

// Get checks out a replica, blocking until one is free or ctx is done.
func (p *Pool) Get(ctx context.Context) (*Replica, error) {
	select {
	case rep := <-p.ch:
		return rep, nil
	default:
	}
	select {
	case rep := <-p.ch:
		return rep, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Put returns a replica to the pool. It must only be called with replicas
// obtained from Get. When a shrink has left the pool over target, the
// returning replica is discarded instead of re-entering rotation.
func (p *Pool) Put(rep *Replica) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.built > p.target {
		p.built--
		return
	}
	select {
	case p.ch <- rep:
	default:
		panic("serve: pool overflow — Put without matching Get")
	}
}
