package serve

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// testPoolMax builds a resizable pool over the shared test model.
func testPoolMax(t *testing.T, size, max int) (*Pool, []float64) {
	t.Helper()
	pool, image := testPool(t, size)
	if size == max {
		return pool, image
	}
	// Rebuild with headroom from the same proto.
	pm, err := NewPoolMax(pool.proto, size, max)
	if err != nil {
		t.Fatalf("NewPoolMax: %v", err)
	}
	return pm, image
}

func TestPoolResize(t *testing.T) {
	pool, _ := testPoolMax(t, 1, 3)
	if pool.Size() != 1 || pool.Max() != 3 {
		t.Fatalf("Size/Max = %d/%d, want 1/3", pool.Size(), pool.Max())
	}
	if n, err := pool.Resize(3); err != nil || n != 3 {
		t.Fatalf("Resize(3) = %d, %v", n, err)
	}
	ctx := context.Background()
	reps := make([]*Replica, 3)
	for i := range reps {
		var err error
		if reps[i], err = pool.Get(ctx); err != nil {
			t.Fatalf("Get after grow: %v", err)
		}
	}
	if got := pool.InFlight(); got != 3 {
		t.Fatalf("InFlight = %d, want 3", got)
	}
	// Shrink while every replica is checked out: the surplus must drain
	// out through Put, leaving one idle replica.
	if n, err := pool.Resize(1); err != nil || n != 1 {
		t.Fatalf("Resize(1) = %d, %v", n, err)
	}
	for _, rep := range reps {
		pool.Put(rep)
	}
	if got := pool.InFlight(); got != 0 {
		t.Fatalf("InFlight after shrink drain = %d, want 0", got)
	}
	timeout, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if rep, err := pool.Get(timeout); err != nil {
		t.Fatalf("Get after shrink: %v", err)
	} else if _, err := pool.Get(timeout); err == nil {
		t.Fatal("second Get succeeded on a pool shrunk to 1")
	} else {
		pool.Put(rep)
	}
	// Clamping: beyond Max and below 1.
	if n, _ := pool.Resize(100); n != 3 {
		t.Fatalf("Resize(100) clamped to %d, want 3", n)
	}
	if n, _ := pool.Resize(-5); n != 1 {
		t.Fatalf("Resize(-5) clamped to %d, want 1", n)
	}
}

// TestPoolResizeUnderLoad grows and shrinks the pool while concurrent
// checkouts hammer it; run with -race this pins the Resize/Get/Put
// locking.
func TestPoolResizeUnderLoad(t *testing.T) {
	pool, _ := testPoolMax(t, 1, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep, err := pool.Get(context.Background())
				if err != nil {
					return
				}
				pool.Put(rep)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if _, err := pool.Resize(1 + i%4); err != nil {
			t.Errorf("Resize: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := pool.Resize(pool.Max()); err != nil {
		t.Fatalf("final Resize: %v", err)
	}
	// Every replica must be accounted for: Max checkouts succeed.
	for i := 0; i < pool.Max(); i++ {
		if _, err := pool.Get(context.Background()); err != nil {
			t.Fatalf("Get %d after churn: %v", i, err)
		}
	}
}

// TestBatcherPressure pins the always-on queue-pressure EWMA: zero on an
// idle batcher, rising once submissions find the queue occupied.
func TestBatcherPressure(t *testing.T) {
	pool, image := testPool(t, 1)
	b := NewBatcher(pool, BatcherConfig{
		MaxBatch:      1,
		QueueDepth:    4,
		InjectLatency: 20 * time.Millisecond,
	})
	defer b.Close()
	if got := b.Pressure(); got != 0 {
		t.Fatalf("idle Pressure = %v, want 0", got)
	}
	policy := ExitPolicy{MaxSteps: 8}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = b.Submit(context.Background(), image, policy)
		}()
	}
	wg.Wait()
	if got := b.Pressure(); got <= 0 {
		t.Fatalf("Pressure after saturating submits = %v, want > 0", got)
	}
}

// TestConfigQueueDepthDefault pins the GOMAXPROCS-scaled admission-queue
// default (the old fixed 4×MaxBatch bound stays reachable by setting
// QueueDepth explicitly).
func TestConfigQueueDepthDefault(t *testing.T) {
	cfg := Config{}.withDefaults()
	if want := 4 * 8 * runtime.GOMAXPROCS(0); cfg.QueueDepth != want {
		t.Fatalf("default QueueDepth = %d, want %d", cfg.QueueDepth, want)
	}
	cfg = Config{MaxBatch: 4, QueueDepth: 16}.withDefaults()
	if cfg.QueueDepth != 16 {
		t.Fatalf("explicit QueueDepth = %d, want 16", cfg.QueueDepth)
	}
}

// TestServerShardStats pins the shard-facing scrape: raw stage buckets
// present and consistent with the digested snapshot, plus the pool and
// retry-after fields the fleet tier consumes.
func TestServerShardStats(t *testing.T) {
	s := testServer(t, Config{})
	_, set := testModel(t)
	for i := 0; i < 4; i++ {
		if _, err := s.Classify(context.Background(), ClassifyRequest{
			Model: "digits", Image: set.Test[i].Image,
		}); err != nil {
			t.Fatalf("Classify: %v", err)
		}
	}
	st := s.ShardStats()
	ms, ok := st.Models["digits"]
	if !ok {
		t.Fatalf("ShardStats missing model digits: %+v", st)
	}
	if ms.Counters.Requests != 4 {
		t.Fatalf("Counters.Requests = %d, want 4", ms.Counters.Requests)
	}
	total, ok := ms.Stages["total"]
	if !ok || total.Count == 0 {
		t.Fatalf("total stage snapshot missing or empty: %+v", ms.Stages)
	}
	if ms.PoolSize != 4 || ms.PoolMax != 4 {
		t.Fatalf("PoolSize/PoolMax = %d/%d, want 4/4", ms.PoolSize, ms.PoolMax)
	}
	if ms.RetryAfterSec < 1 {
		t.Fatalf("RetryAfterSec = %v, want >= 1", ms.RetryAfterSec)
	}
}
