package serve

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
)

// testPool converts the shared test model once and wraps it in a pool.
func testPool(t *testing.T, size int) (*Pool, []float64) {
	t.Helper()
	net, set := testModel(t)
	conv, err := convert.Convert(net, set.Train, convert.Options{
		Input:       coding.DefaultConfig(coding.Phase),
		Hidden:      coding.DefaultConfig(coding.Burst),
		NormSamples: 32,
	})
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	pool, err := NewPool(conv.Net, size)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return pool, set.Test[0].Image
}

func TestPoolCheckout(t *testing.T) {
	pool, _ := testPool(t, 2)
	ctx := context.Background()
	a, err := pool.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pool handed out the same replica twice")
	}
	// Pool exhausted: Get must respect context cancellation.
	timeout, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := pool.Get(timeout); err == nil {
		t.Fatal("Get on an exhausted pool should fail when ctx expires")
	}
	pool.Put(a)
	c, err := pool.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("returned replica should be reused")
	}
	pool.Put(b)
	pool.Put(c)
}

// TestReplicasShareWeightsNotState checks the clone contract the pool
// depends on: replicas produce identical results but never alias state.
func TestReplicasShareWeightsNotState(t *testing.T) {
	pool, image := testPool(t, 3)
	ctx := context.Background()
	reps := make([]*Replica, 3)
	for i := range reps {
		var err error
		if reps[i], err = pool.Get(ctx); err != nil {
			t.Fatal(err)
		}
	}
	policy := ExitPolicy{MaxSteps: 48}
	ref := Classify(reps[0].Net, image, policy)
	for i, rep := range reps[1:] {
		got := Classify(rep.Net, image, policy)
		if got != ref {
			t.Errorf("replica %d: outcome %+v differs from %+v", i+1, got, ref)
		}
	}
}

// TestBatcherMaxDelay verifies the flush conditions: a lone request waits
// out MaxDelay before dispatch, while a full batch dispatches without
// waiting for the delay to expire.
func TestBatcherMaxDelay(t *testing.T) {
	pool, image := testPool(t, 1)
	policy := ExitPolicy{MaxSteps: 16}

	// A lone request must still complete — the MaxDelay timer flushes the
	// partial batch. Generous upper bound to stay robust on loaded CI.
	const delay = 50 * time.Millisecond
	b := NewBatcher(pool, BatcherConfig{MaxBatch: 8, MaxDelay: delay})
	began := time.Now()
	if _, err := b.Submit(context.Background(), image, policy); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	elapsed := time.Since(began)
	if elapsed < delay {
		t.Errorf("lone request completed in %v, before the %v max-delay flush", elapsed, delay)
	}
	if elapsed > delay+2*time.Second {
		t.Errorf("lone request took %v, max-delay flush appears broken", elapsed)
	}
	b.Close()

	// A full batch must not wait for the delay: 8 requests with a huge
	// MaxDelay complete as soon as the batch fills.
	b = NewBatcher(pool, BatcherConfig{MaxBatch: 8, MaxDelay: time.Hour})
	began = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), image, policy); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(began); elapsed > 30*time.Second {
		t.Errorf("full batch took %v, full-batch flush appears broken", elapsed)
	}
	b.Close()
}

func TestBatcherClose(t *testing.T) {
	pool, image := testPool(t, 1)
	b := NewBatcher(pool, BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond})
	if _, err := b.Submit(context.Background(), image, ExitPolicy{MaxSteps: 8}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	b.Close()
	if _, err := b.Submit(context.Background(), image, ExitPolicy{MaxSteps: 8}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

// TestBatcherCloseUnderLoad is the graceful-shutdown-under-saturation
// contract: Close during overload lets the batch holding the replica
// drain, fails everything still queued with ErrClosed (a 503, not a
// hang), and leaks no goroutines.
func TestBatcherCloseUnderLoad(t *testing.T) {
	pool, image := testPool(t, 1)
	baseline := runtime.NumGoroutine()
	// MaxBatch 1 + injected latency: the first request holds the lone
	// replica long enough that Close provably lands mid-saturation.
	b := NewBatcher(pool, BatcherConfig{
		MaxBatch: 1, QueueDepth: 16, InjectLatency: 200 * time.Millisecond,
	})
	const n = 6
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := b.Submit(context.Background(), image, ExitPolicy{MaxSteps: 8})
			errs <- err
		}()
	}
	waitFor(t, func() bool { return pool.InFlight() == 1 })
	b.Close()
	completed, closed := 0, 0
	for i := 0; i < n; i++ {
		switch err := <-errs; {
		case err == nil:
			completed++
		case errors.Is(err, ErrClosed):
			closed++
		default:
			t.Fatalf("Submit during Close returned %v, want success or ErrClosed", err)
		}
	}
	if completed == 0 {
		t.Error("no in-flight request drained through Close")
	}
	if closed == 0 {
		t.Error("no queued request was failed with ErrClosed")
	}
	// goleak-style check: everything the batcher spawned has exited.
	// Small slack for runtime/test-framework goroutines that come and go.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+2 })
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 100; i++ {
		m.Observe(Outcome{
			Prediction: 1, Steps: 10, HiddenSpikes: 50, EarlyExit: i%2 == 0,
		}, time.Duration(i)*time.Millisecond)
	}
	m.ObserveError()
	s := m.Snapshot()
	if s.Requests != 100 || s.Errors != 1 {
		t.Errorf("requests/errors = %d/%d", s.Requests, s.Errors)
	}
	if s.MeanSteps != 10 || s.MeanSpikes != 50 {
		t.Errorf("means = %v steps, %v spikes", s.MeanSteps, s.MeanSpikes)
	}
	if s.EarlyExitRate != 0.5 {
		t.Errorf("early-exit rate = %v, want 0.5", s.EarlyExitRate)
	}
	if math.Abs(s.P50Ms-50) > 1 || math.Abs(s.P99Ms-99) > 1 {
		t.Errorf("p50/p99 = %v/%v, want ≈50/99", s.P50Ms, s.P99Ms)
	}
	if s.P50Ms > s.P90Ms || s.P90Ms > s.P99Ms {
		t.Errorf("percentiles not monotone: %v/%v/%v", s.P50Ms, s.P90Ms, s.P99Ms)
	}
}

func TestExitPolicyValidate(t *testing.T) {
	cases := []struct {
		p  ExitPolicy
		ok bool
	}{
		{ExitPolicy{MaxSteps: 64}, true},
		{ExitPolicy{MaxSteps: 64, MinSteps: 16, StableWindow: 8, Margin: 0.1}, true},
		{ExitPolicy{}, false},
		{ExitPolicy{MaxSteps: -1}, false},
		{ExitPolicy{MaxSteps: 8, MinSteps: 9}, false},
		{ExitPolicy{MaxSteps: 8, Margin: -0.5}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}
