package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/core"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
)

// ErrUnknownModel tags "no such model" failures — the name is neither
// resident nor archived — so callers (notably the HTTP handlers) can
// distinguish a true 404 from shutdown or internal errors. Always
// wrapped with the offending name; match with errors.Is.
var ErrUnknownModel = errors.New("serve: unknown model")

// errUnknownModel wraps ErrUnknownModel with the name, preserving the
// historical "serve: unknown model %q" message.
func errUnknownModel(name string) error {
	return fmt.Errorf("%w %q", ErrUnknownModel, name)
}

// Model lifecycle states reported by Info.State and Snapshot.State.
const (
	// StateResident: installed in the registry with a live pool.
	StateResident = "resident"
	// StateEvicted: unregistered with the conversion archived; the next
	// request (or an explicit re-register) restores it.
	StateEvicted = "evicted"
)

// ModelConfig declares one servable model: a named DNN plus the coding
// hybrid it is converted under and the serving knobs.
type ModelConfig struct {
	// Name is the registry key exposed by the API.
	Name string
	// Hybrid is the input-hidden coding assignment (e.g. phase-burst).
	Hybrid core.Hybrid
	// Steps is the default per-request simulation budget.
	Steps int
	// Exit is the default early-exit policy; its MaxSteps is filled from
	// Steps when zero. A fully zero Exit means DefaultExitPolicy(Steps);
	// to disable early exit, set MaxSteps (or MinSteps) explicitly and
	// leave StableWindow zero.
	Exit ExitPolicy
	// Replicas sizes the simulator pool (default GOMAXPROCS).
	Replicas int
	// MaxReplicas caps pool growth for autoscaling (Pool.Resize): the
	// pool starts at Replicas and may be widened up to this bound by a
	// fleet shard's autoscaler. Default Replicas — a fixed pool.
	MaxReplicas int
	// Norm, Percentile, and NormSamples configure weight normalization
	// (defaults: percentile 99.9 over 64 samples, as in EvalConfig).
	Norm        convert.NormMethod
	Percentile  float64
	NormSamples int
}

// DefaultExitPolicy returns the serving default for a step budget: exit
// after the prediction holds for 12 consecutive steps, but never before
// two phase periods (16 steps), so periodic encoders deliver the full
// input at least twice before a verdict. Both bounds are clamped to the
// budget, so tiny budgets degrade to full-budget inference instead of an
// invalid policy.
func DefaultExitPolicy(steps int) ExitPolicy {
	p := ExitPolicy{MaxSteps: steps, MinSteps: 16, StableWindow: 12}
	if p.MinSteps > steps {
		p.MinSteps = steps
	}
	if p.StableWindow > steps {
		p.StableWindow = steps
	}
	return p
}

// Model is one registered, converted, replicated model.
type Model struct {
	cfg     ModelConfig
	conv    *convert.Result
	pool    *Pool
	metrics *Metrics
	quant   *coding.QuantCache
	inSize  int
	classes int
	neurons int
}

// Config returns the registration config (defaults applied).
func (m *Model) Config() ModelConfig { return m.cfg }

// Metrics returns the model's serving metrics accumulator.
func (m *Model) Metrics() *Metrics { return m.metrics }

// Pool returns the model's replica pool.
func (m *Model) Pool() *Pool { return m.pool }

// InputSize returns the expected image vector length.
func (m *Model) InputSize() int { return m.inSize }

// Classes returns the readout width.
func (m *Model) Classes() int { return m.classes }

// Info is the JSON description served by GET /v1/models.
type Info struct {
	Name      string     `json:"name"`
	Notation  string     `json:"notation"`
	InputSize int        `json:"inputSize"`
	Classes   int        `json:"classes"`
	Neurons   int        `json:"neurons"`
	Steps     int        `json:"steps"`
	Replicas  int        `json:"replicas"`
	Exit      ExitPolicy `json:"exit"`
	// State is "resident" for installed models and "evicted" for models
	// whose conversion is archived awaiting warm-on-demand.
	State string `json:"state,omitempty"`
}

// Info returns the model's description.
func (m *Model) Info() Info {
	return Info{
		Name:      m.cfg.Name,
		Notation:  m.cfg.Hybrid.Notation(),
		InputSize: m.inSize,
		Classes:   m.classes,
		Neurons:   m.neurons,
		Steps:     m.cfg.Steps,
		Replicas:  m.pool.Size(),
		Exit:      m.cfg.Exit,
		State:     StateResident,
	}
}

// archived is an evicted model's retained shadow: the cached conversion
// (so warming skips the expensive convert/normalize pass and rebuilds
// only the replica pool), the config it was registered under, and the
// metrics accumulator (so counters survive an evict/warm cycle exactly
// like they survive a re-register).
type archived struct {
	cfg     ModelConfig
	conv    *convert.Result
	quant   *coding.QuantCache
	metrics *Metrics
	inSize  int
	classes int
	neurons int
}

func (a *archived) info() Info {
	return Info{
		Name:      a.cfg.Name,
		Notation:  a.cfg.Hybrid.Notation(),
		InputSize: a.inSize,
		Classes:   a.classes,
		Neurons:   a.neurons,
		Steps:     a.cfg.Steps,
		Replicas:  0,
		Exit:      a.cfg.Exit,
		State:     StateEvicted,
	}
}

// Registry owns the servable models. Conversion runs once per registered
// (model, hybrid) configuration; the ConvertResult is cached on the Model
// and replicas are weight-sharing clones of it. Evicted models move to an
// archive keyed by the same name: their pool is released but the
// conversion and metrics are retained so Restore is cheap and counters
// are continuous.
type Registry struct {
	mu      sync.RWMutex
	models  map[string]*Model
	archive map[string]*archived
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string]*Model{}, archive: map[string]*archived{}}
}

// Prepare converts net under cfg and builds a Model (pool, fresh
// metrics) WITHOUT installing it. The caller pairs it with Install so
// the registry swap can be made atomic with whatever else must swap
// alongside it (the server swaps the request queue in the same critical
// section). normSamples feed the activation-recording pass of weight
// normalization (typically the model's training split).
func (r *Registry) Prepare(cfg ModelConfig, net *dnn.Network, normSamples []dataset.Sample) (*Model, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("serve: model name must not be empty")
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("serve: model %q: Steps must be positive", cfg.Name)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxReplicas < cfg.Replicas {
		cfg.MaxReplicas = cfg.Replicas
	}
	if cfg.Exit == (ExitPolicy{}) {
		cfg.Exit = DefaultExitPolicy(cfg.Steps)
	} else if cfg.Exit.MaxSteps == 0 {
		cfg.Exit.MaxSteps = cfg.Steps
	}
	if err := cfg.Exit.Validate(); err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", cfg.Name, err)
	}
	if cfg.Percentile == 0 {
		cfg.Percentile = 99.9
	}
	conv, err := convert.Convert(net, normSamples, convert.Options{
		Input:       cfg.Hybrid.Input,
		Hidden:      cfg.Hybrid.Hidden,
		Norm:        cfg.Norm,
		Percentile:  cfg.Percentile,
		NormSamples: cfg.NormSamples,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", cfg.Name, err)
	}
	return r.build(cfg, conv)
}

// build assembles a Model around a conversion result: quant cache wired
// into the proto encoder, replica pool, fresh metrics. Shared by Prepare
// (fresh conversion) and Restore (archived conversion).
func (r *Registry) build(cfg ModelConfig, conv *convert.Result) (*Model, error) {
	// One quantization cache per registered model, attached to the proto
	// encoder before the pool clones it so every replica (sequential and
	// batched) shares it. Schemes without Reset-time quantization (real,
	// rate) simply don't implement QuantCached.
	quant := coding.NewQuantCache(0)
	if qc, ok := conv.Net.Encoder.(coding.QuantCached); ok {
		qc.SetQuantCache(quant)
	}
	pool, err := NewPoolMax(conv.Net, cfg.Replicas, cfg.MaxReplicas)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", cfg.Name, err)
	}
	return &Model{
		cfg:     cfg,
		conv:    conv,
		pool:    pool,
		metrics: NewMetrics(),
		quant:   quant,
		inSize:  conv.Net.Encoder.Size(),
		classes: conv.Net.Output.NumNeurons(),
		neurons: conv.Net.NumNeurons(),
	}, nil
}

// Install makes a prepared model resident. If a model of the same name
// is resident (or archived from an eviction), the new model adopts its
// metrics accumulator so history is continuous; any archive entry is
// consumed. Returns the prior resident model (nil if none).
func (r *Registry) Install(m *Model) *Model {
	r.mu.Lock()
	old := r.models[m.cfg.Name]
	if old != nil {
		m.metrics = old.metrics
	} else if a, ok := r.archive[m.cfg.Name]; ok {
		m.metrics = a.metrics
	}
	m.metrics.AttachQuantCache(m.quant)
	delete(r.archive, m.cfg.Name)
	r.models[m.cfg.Name] = m
	r.mu.Unlock()
	return old
}

// Register converts net under cfg and installs it. Registering an
// existing name replaces the old model atomically but keeps its metrics
// history. Direct registry users get the combined operation; the server
// uses Prepare+Install so the install can share a critical section with
// its own request-queue swap.
func (r *Registry) Register(cfg ModelConfig, net *dnn.Network, normSamples []dataset.Sample) (*Model, error) {
	m, err := r.Prepare(cfg, net, normSamples)
	if err != nil {
		return nil, err
	}
	r.Install(m)
	return m, nil
}

// RegisterFile loads a model written by dnn.SaveModelFile and registers
// it under cfg.
func (r *Registry) RegisterFile(cfg ModelConfig, path string, normSamples []dataset.Sample) (*Model, error) {
	_, net, err := dnn.LoadModelFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", cfg.Name, err)
	}
	return r.Register(cfg, net, normSamples)
}

// Unregister removes the named model. With archive=true (eviction) the
// conversion and metrics move to the archive so Restore can bring the
// model back without re-converting; with archive=false the name is
// forgotten entirely (any archive entry included). Returns the removed
// resident model, nil if the name was only archived or unknown.
func (r *Registry) Unregister(name string, archive bool) (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, resident := r.models[name]
	if !resident && r.archive[name] == nil {
		return nil, errUnknownModel(name)
	}
	delete(r.models, name)
	if !archive {
		delete(r.archive, name)
		return m, nil
	}
	if resident {
		r.archive[name] = &archived{
			cfg:     m.cfg,
			conv:    m.conv,
			quant:   m.quant,
			metrics: m.metrics,
			inSize:  m.inSize,
			classes: m.classes,
			neurons: m.neurons,
		}
	}
	return m, nil
}

// Restore builds a fresh Model for an evicted name from its archived
// conversion (pool rebuilt, conversion and metrics reused). The result
// is NOT installed — pair with Install, exactly like Prepare.
func (r *Registry) Restore(name string) (*Model, error) {
	r.mu.RLock()
	a, ok := r.archive[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: model %q is not archived", name)
	}
	return r.build(a.cfg, a.conv)
}

// Known reports whether name is resident or archived — i.e. whether a
// Classify for it can possibly be served (directly or after warming).
func (r *Registry) Known(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, resident := r.models[name]
	_, evicted := r.archive[name]
	return resident || evicted
}

// Archived reports whether name is evicted-but-restorable.
func (r *Registry) Archived(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.archive[name]
	return ok
}

// ArchivedStats returns each archived model's retained metrics, keyed by
// name, so exposition can keep reporting evicted models' counters.
func (r *Registry) ArchivedStats() map[string]*Metrics {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]*Metrics, len(r.archive))
	for name, a := range r.archive {
		out[name] = a.metrics
	}
	return out
}

// Get returns the named model.
func (r *Registry) Get(name string) (*Model, error) {
	r.mu.RLock()
	m, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return nil, errUnknownModel(name)
	}
	return m, nil
}

// List returns every resident model's Info, sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	infos := make([]Info, 0, len(r.models))
	for _, m := range r.models {
		infos = append(infos, m.Info())
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// ListAll returns resident and evicted models' Infos, sorted by name.
// Evicted entries carry State "evicted" and zero replicas.
func (r *Registry) ListAll() []Info {
	r.mu.RLock()
	infos := make([]Info, 0, len(r.models)+len(r.archive))
	for _, m := range r.models {
		infos = append(infos, m.Info())
	}
	for _, a := range r.archive {
		infos = append(infos, a.info())
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
