package serve

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"burstsnn/internal/coding"
	"burstsnn/internal/convert"
	"burstsnn/internal/core"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
)

// ModelConfig declares one servable model: a named DNN plus the coding
// hybrid it is converted under and the serving knobs.
type ModelConfig struct {
	// Name is the registry key exposed by the API.
	Name string
	// Hybrid is the input-hidden coding assignment (e.g. phase-burst).
	Hybrid core.Hybrid
	// Steps is the default per-request simulation budget.
	Steps int
	// Exit is the default early-exit policy; its MaxSteps is filled from
	// Steps when zero. A fully zero Exit means DefaultExitPolicy(Steps);
	// to disable early exit, set MaxSteps (or MinSteps) explicitly and
	// leave StableWindow zero.
	Exit ExitPolicy
	// Replicas sizes the simulator pool (default GOMAXPROCS).
	Replicas int
	// MaxReplicas caps pool growth for autoscaling (Pool.Resize): the
	// pool starts at Replicas and may be widened up to this bound by a
	// fleet shard's autoscaler. Default Replicas — a fixed pool.
	MaxReplicas int
	// Norm, Percentile, and NormSamples configure weight normalization
	// (defaults: percentile 99.9 over 64 samples, as in EvalConfig).
	Norm        convert.NormMethod
	Percentile  float64
	NormSamples int
}

// DefaultExitPolicy returns the serving default for a step budget: exit
// after the prediction holds for 12 consecutive steps, but never before
// two phase periods (16 steps), so periodic encoders deliver the full
// input at least twice before a verdict. Both bounds are clamped to the
// budget, so tiny budgets degrade to full-budget inference instead of an
// invalid policy.
func DefaultExitPolicy(steps int) ExitPolicy {
	p := ExitPolicy{MaxSteps: steps, MinSteps: 16, StableWindow: 12}
	if p.MinSteps > steps {
		p.MinSteps = steps
	}
	if p.StableWindow > steps {
		p.StableWindow = steps
	}
	return p
}

// Model is one registered, converted, replicated model.
type Model struct {
	cfg     ModelConfig
	conv    *convert.Result
	pool    *Pool
	metrics *Metrics
	inSize  int
	classes int
	neurons int
}

// Config returns the registration config (defaults applied).
func (m *Model) Config() ModelConfig { return m.cfg }

// Metrics returns the model's serving metrics accumulator.
func (m *Model) Metrics() *Metrics { return m.metrics }

// Pool returns the model's replica pool.
func (m *Model) Pool() *Pool { return m.pool }

// InputSize returns the expected image vector length.
func (m *Model) InputSize() int { return m.inSize }

// Classes returns the readout width.
func (m *Model) Classes() int { return m.classes }

// Info is the JSON description served by GET /v1/models.
type Info struct {
	Name      string     `json:"name"`
	Notation  string     `json:"notation"`
	InputSize int        `json:"inputSize"`
	Classes   int        `json:"classes"`
	Neurons   int        `json:"neurons"`
	Steps     int        `json:"steps"`
	Replicas  int        `json:"replicas"`
	Exit      ExitPolicy `json:"exit"`
}

// Info returns the model's description.
func (m *Model) Info() Info {
	return Info{
		Name:      m.cfg.Name,
		Notation:  m.cfg.Hybrid.Notation(),
		InputSize: m.inSize,
		Classes:   m.classes,
		Neurons:   m.neurons,
		Steps:     m.cfg.Steps,
		Replicas:  m.pool.Size(),
		Exit:      m.cfg.Exit,
	}
}

// Registry owns the servable models. Conversion runs once per registered
// (model, hybrid) configuration; the ConvertResult is cached on the Model
// and replicas are weight-sharing clones of it.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Model
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string]*Model{}}
}

// Register converts net under cfg and installs it. normSamples feed the
// activation-recording pass of weight normalization (typically the
// model's training split). Registering an existing name replaces the old
// model atomically but keeps its metrics history.
func (r *Registry) Register(cfg ModelConfig, net *dnn.Network, normSamples []dataset.Sample) (*Model, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("serve: model name must not be empty")
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("serve: model %q: Steps must be positive", cfg.Name)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxReplicas < cfg.Replicas {
		cfg.MaxReplicas = cfg.Replicas
	}
	if cfg.Exit == (ExitPolicy{}) {
		cfg.Exit = DefaultExitPolicy(cfg.Steps)
	} else if cfg.Exit.MaxSteps == 0 {
		cfg.Exit.MaxSteps = cfg.Steps
	}
	if err := cfg.Exit.Validate(); err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", cfg.Name, err)
	}
	if cfg.Percentile == 0 {
		cfg.Percentile = 99.9
	}
	conv, err := convert.Convert(net, normSamples, convert.Options{
		Input:       cfg.Hybrid.Input,
		Hidden:      cfg.Hybrid.Hidden,
		Norm:        cfg.Norm,
		Percentile:  cfg.Percentile,
		NormSamples: cfg.NormSamples,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", cfg.Name, err)
	}
	// One quantization cache per registered model, attached to the proto
	// encoder before the pool clones it so every replica (sequential and
	// batched) shares it. Schemes without Reset-time quantization (real,
	// rate) simply don't implement QuantCached.
	quant := coding.NewQuantCache(0)
	if qc, ok := conv.Net.Encoder.(coding.QuantCached); ok {
		qc.SetQuantCache(quant)
	}
	pool, err := NewPoolMax(conv.Net, cfg.Replicas, cfg.MaxReplicas)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", cfg.Name, err)
	}
	m := &Model{
		cfg:     cfg,
		conv:    conv,
		pool:    pool,
		metrics: NewMetrics(),
		inSize:  conv.Net.Encoder.Size(),
		classes: conv.Net.Output.NumNeurons(),
		neurons: conv.Net.NumNeurons(),
	}
	r.mu.Lock()
	if old, ok := r.models[cfg.Name]; ok {
		m.metrics = old.metrics
	}
	m.metrics.AttachQuantCache(quant)
	r.models[cfg.Name] = m
	r.mu.Unlock()
	return m, nil
}

// RegisterFile loads a model written by dnn.SaveModelFile and registers
// it under cfg.
func (r *Registry) RegisterFile(cfg ModelConfig, path string, normSamples []dataset.Sample) (*Model, error) {
	_, net, err := dnn.LoadModelFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", cfg.Name, err)
	}
	return r.Register(cfg, net, normSamples)
}

// Get returns the named model.
func (r *Registry) Get(name string) (*Model, error) {
	r.mu.RLock()
	m, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	return m, nil
}

// List returns every registered model's Info, sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	infos := make([]Info, 0, len(r.models))
	for _, m := range r.models {
		infos = append(infos, m.Info())
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
