package serve

import (
	"context"
	"sync"
	"time"
)

// FairDispatcher allocates a fixed number of execution slots (replica
// headroom) across models in weighted start-time-fair order, so one
// saturated model cannot starve the others. Each batcher acquires a slot
// before checking out a replica; when demand exceeds capacity, waiting
// models are granted slots in order of virtual start time — a model's
// virtual clock advances 1/weight per grant, so over any contended
// interval grants divide proportionally to weight, and a model that was
// idle re-enters at the current virtual time (it gets prompt service,
// not unbounded banked credit). Ties break on the model name, keeping
// grant order deterministic.
type FairDispatcher struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	vnow     float64
	models   map[string]*fairModel
}

type fairModel struct {
	name     string
	weight   float64
	finish   float64 // virtual finish tag of the last grant
	inflight int     // slots currently held
	grants   int64   // total slots ever granted
	waiters  []*fairWaiter
}

type fairWaiter struct {
	ready   chan struct{}
	since   time.Time
	granted bool
}

// FairSlot is a model's handle into the dispatcher. Handles stay valid
// across Remove — releases through an old handle keep the shared
// accounting correct even while the model is being replaced or evicted.
type FairSlot struct {
	d  *FairDispatcher
	fm *fairModel
}

// NewFairDispatcher returns a dispatcher with the given slot capacity
// (clamped to at least 1).
func NewFairDispatcher(capacity int) *FairDispatcher {
	if capacity < 1 {
		capacity = 1
	}
	return &FairDispatcher{capacity: capacity, models: map[string]*fairModel{}}
}

// Capacity returns the total slot count.
func (d *FairDispatcher) Capacity() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.capacity
}

// Slot registers (or re-weights) a model and returns its handle. Weights
// at or below zero are treated as 1. Re-registering a name returns a
// handle onto the same shared accounting, so a hot swap never resets a
// model's fair-share position.
func (d *FairDispatcher) Slot(name string, weight float64) *FairSlot {
	if weight <= 0 {
		weight = 1
	}
	d.mu.Lock()
	fm := d.models[name]
	if fm == nil {
		fm = &fairModel{name: name}
		d.models[name] = fm
	}
	fm.weight = weight
	d.mu.Unlock()
	return &FairSlot{d: d, fm: fm}
}

// Remove forgets a model's fair-share state. Outstanding slots held
// through old handles still release correctly; pending waiters are
// failed so nothing blocks on a model that will never be granted again.
func (d *FairDispatcher) Remove(name string) {
	d.mu.Lock()
	fm := d.models[name]
	var orphans []*fairWaiter
	if fm != nil {
		orphans = fm.waiters
		fm.waiters = nil
		delete(d.models, name)
	}
	d.mu.Unlock()
	for _, w := range orphans {
		close(w.ready)
	}
}

// Acquire blocks until a slot is granted or ctx is done. A granted slot
// MUST be released. If the grant raced a ctx cancellation, Acquire still
// returns nil and the caller proceeds (its own ctx checks will fail fast
// downstream, and Release keeps the books straight).
func (s *FairSlot) Acquire(ctx context.Context) error {
	d := s.d
	w := &fairWaiter{ready: make(chan struct{}), since: time.Now()}
	d.mu.Lock()
	s.fm.waiters = append(s.fm.waiters, w)
	d.pump()
	d.mu.Unlock()
	select {
	case <-w.ready:
		if !s.acquired(w) {
			// Closed by Remove without a grant: the model is gone;
			// surface as a cancellation-style failure.
			return context.Canceled
		}
		return nil
	case <-ctx.Done():
		d.mu.Lock()
		if w.granted {
			d.mu.Unlock()
			return nil
		}
		for i, x := range s.fm.waiters {
			if x == w {
				s.fm.waiters = append(s.fm.waiters[:i], s.fm.waiters[i+1:]...)
				break
			}
		}
		d.mu.Unlock()
		return ctx.Err()
	}
}

func (s *FairSlot) acquired(w *fairWaiter) bool {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	return w.granted
}

// Release returns a slot and grants it to the next waiter in fair order.
func (s *FairSlot) Release() {
	d := s.d
	d.mu.Lock()
	s.fm.inflight--
	d.inUse--
	d.pump()
	d.mu.Unlock()
}

// pump grants free slots to waiting models in start-time-fair order.
// Caller holds d.mu.
func (d *FairDispatcher) pump() {
	for d.inUse < d.capacity {
		var best *fairModel
		var bestStart float64
		for _, fm := range d.models {
			if len(fm.waiters) == 0 {
				continue
			}
			start := fm.finish
			if start < d.vnow {
				start = d.vnow
			}
			if best == nil || start < bestStart || (start == bestStart && fm.name < best.name) {
				best, bestStart = fm, start
			}
		}
		if best == nil {
			return
		}
		w := best.waiters[0]
		best.waiters = best.waiters[1:]
		d.vnow = bestStart
		best.finish = bestStart + 1/best.weight
		best.inflight++
		best.grants++
		d.inUse++
		w.granted = true
		close(w.ready)
	}
}

// FairStats is one model's fair-share exposition snapshot.
type FairStats struct {
	// Weight is the configured weight (normalized to 1 when unset).
	Weight float64
	// Share is weight / sum(weights of known models).
	Share float64
	// Grants counts slots ever granted to the model.
	Grants int64
	// Inflight is slots currently held.
	Inflight int
	// Waiting is the model's queued slot requests — a starvation gauge:
	// persistently high waiting with low grants means the model is being
	// outweighed.
	Waiting int
	// OldestWaitSec is how long the head waiter has been queued.
	OldestWaitSec float64
}

// Stats returns the named model's fair-share snapshot.
func (d *FairDispatcher) Stats(name string) (FairStats, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fm, ok := d.models[name]
	if !ok {
		return FairStats{}, false
	}
	var sum float64
	for _, m := range d.models {
		sum += m.weight
	}
	st := FairStats{
		Weight:   fm.weight,
		Grants:   fm.grants,
		Inflight: fm.inflight,
		Waiting:  len(fm.waiters),
	}
	if sum > 0 {
		st.Share = fm.weight / sum
	}
	if len(fm.waiters) > 0 {
		st.OldestWaitSec = time.Since(fm.waiters[0].since).Seconds()
	}
	return st, true
}
