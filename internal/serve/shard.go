package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"burstsnn/internal/obs"
)

// ShardStats is the wire view a fleet front tier scrapes from one shard
// (GET /metrics/shard, or Server.ShardStats in process): the digested
// counters plus the RAW stage/occupancy histogram buckets, so the front
// tier can merge shards with obs.HistSnapshot.Merge and report fleet
// quantiles at full bucket resolution — digested percentiles don't merge,
// buckets do.
type ShardStats struct {
	UptimeSec float64                    `json:"uptimeSec"`
	Models    map[string]ModelShardStats `json:"models"`
}

// ModelShardStats is one model's slice of a ShardStats scrape.
type ModelShardStats struct {
	// Counters is the model's /metrics snapshot (requests, sheds, cache
	// hits, live gauges) — everything additive across shards plus the
	// per-shard gauges the fleet reports under a shard label.
	Counters Snapshot `json:"counters"`
	// Stages carries the raw per-stage duration buckets (seconds) keyed
	// by obs.Stage name; Occupancy the lockstep lane-occupancy buckets.
	Stages    map[string]obs.HistSnapshot `json:"stages"`
	Occupancy obs.HistSnapshot            `json:"occupancy"`
	// Pressure is the shard's smoothed queue-fill signal (the autoscaler
	// input); RetryAfterSec the shard's own drain-time projection, which
	// the front tier must surface verbatim on 429s for this shard.
	Pressure      float64 `json:"pressure"`
	RetryAfterSec float64 `json:"retryAfterSec"`
	PoolSize      int     `json:"poolSize"`
	PoolMax       int     `json:"poolMax"`
}

// ShardStats collects the shard-facing stats for every known model —
// evicted models included (retained counters, zero pool/pressure
// gauges), so fleet exposition stays continuous across evict/warm
// cycles.
func (s *Server) ShardStats() ShardStats {
	out := ShardStats{
		UptimeSec: time.Since(s.start).Seconds(),
		Models:    map[string]ModelShardStats{},
	}
	for _, row := range s.statRows() {
		ms := ModelShardStats{
			Counters:  s.fillSnapshot(row),
			Stages:    make(map[string]obs.HistSnapshot, obs.NumStages),
			Occupancy: row.met.OccupancyHistogram().Snapshot(),
		}
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			ms.Stages[st.String()] = row.met.StageHistogram(st).Snapshot()
		}
		if row.batcher != nil {
			ms.Pressure = row.batcher.Pressure()
			ms.RetryAfterSec = row.batcher.RetryAfter().Seconds()
		} else {
			ms.RetryAfterSec = time.Second.Seconds()
		}
		if row.pool != nil {
			ms.PoolSize = row.pool.Size()
			ms.PoolMax = row.pool.Max()
		}
		out.Models[row.name] = ms
	}
	return out
}

func (s *Server) handleShardStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ShardStats())
}

// poolResizeRequest is the POST /v1/pool body; the response echoes the
// model with the clamped replica count actually in effect.
type poolResizeRequest struct {
	Model    string `json:"model"`
	Replicas int    `json:"replicas"`
}

func (s *Server) handlePoolResize(w http.ResponseWriter, r *http.Request) {
	var req poolResizeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	n, err := s.ResizePool(req.Model, req.Replicas)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"model": req.Model, "replicas": n})
}
