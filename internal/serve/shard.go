package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"burstsnn/internal/obs"
)

// ShardStats is the wire view a fleet front tier scrapes from one shard
// (GET /metrics/shard, or Server.ShardStats in process): the digested
// counters plus the RAW stage/occupancy histogram buckets, so the front
// tier can merge shards with obs.HistSnapshot.Merge and report fleet
// quantiles at full bucket resolution — digested percentiles don't merge,
// buckets do.
type ShardStats struct {
	UptimeSec float64                    `json:"uptimeSec"`
	Models    map[string]ModelShardStats `json:"models"`
}

// ModelShardStats is one model's slice of a ShardStats scrape.
type ModelShardStats struct {
	// Counters is the model's /metrics snapshot (requests, sheds, cache
	// hits, live gauges) — everything additive across shards plus the
	// per-shard gauges the fleet reports under a shard label.
	Counters Snapshot `json:"counters"`
	// Stages carries the raw per-stage duration buckets (seconds) keyed
	// by obs.Stage name; Occupancy the lockstep lane-occupancy buckets.
	Stages    map[string]obs.HistSnapshot `json:"stages"`
	Occupancy obs.HistSnapshot            `json:"occupancy"`
	// Pressure is the shard's smoothed queue-fill signal (the autoscaler
	// input); RetryAfterSec the shard's own drain-time projection, which
	// the front tier must surface verbatim on 429s for this shard.
	Pressure      float64 `json:"pressure"`
	RetryAfterSec float64 `json:"retryAfterSec"`
	PoolSize      int     `json:"poolSize"`
	PoolMax       int     `json:"poolMax"`
}

// ShardStats collects the shard-facing stats for every registered model.
func (s *Server) ShardStats() ShardStats {
	out := ShardStats{
		UptimeSec: time.Since(s.start).Seconds(),
		Models:    map[string]ModelShardStats{},
	}
	for _, info := range s.reg.List() {
		m, err := s.reg.Get(info.Name)
		if err != nil {
			continue
		}
		mm := m.Metrics()
		ms := ModelShardStats{
			Counters:      mm.Snapshot(),
			Stages:        make(map[string]obs.HistSnapshot, obs.NumStages),
			Occupancy:     mm.OccupancyHistogram().Snapshot(),
			Pressure:      s.Pressure(info.Name),
			RetryAfterSec: s.RetryAfter(info.Name).Seconds(),
			PoolSize:      m.Pool().Size(),
			PoolMax:       m.Pool().Max(),
		}
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			ms.Stages[st.String()] = mm.StageHistogram(st).Snapshot()
		}
		s.mu.Lock()
		b := s.batchers[info.Name]
		s.mu.Unlock()
		if b != nil {
			ms.Counters.QueueDepth = b.QueueDepth()
			ms.Counters.DegradeMode, ms.Counters.QueuePressure = b.DegradeState()
		}
		ms.Counters.PoolInFlight = m.Pool().InFlight()
		ms.Counters.PoolSize = m.Pool().Size()
		out.Models[info.Name] = ms
	}
	return out
}

func (s *Server) handleShardStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ShardStats())
}

// poolResizeRequest is the POST /v1/pool body; the response echoes the
// model with the clamped replica count actually in effect.
type poolResizeRequest struct {
	Model    string `json:"model"`
	Replicas int    `json:"replicas"`
}

func (s *Server) handlePoolResize(w http.ResponseWriter, r *http.Request) {
	var req poolResizeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	n, err := s.ResizePool(req.Model, req.Replicas)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"model": req.Model, "replicas": n})
}
