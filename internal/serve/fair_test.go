package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestFairGrantOrderSFQ pins the start-time-fair-queueing grant order:
// with one slot and weights 2:1, the dispatcher must interleave grants
// proportionally (a a b a a b ...) rather than FIFO-draining whichever
// model queued more waiters.
func TestFairGrantOrderSFQ(t *testing.T) {
	d := NewFairDispatcher(1)
	hold := d.Slot("zzz-hold", 1)
	if err := hold.Acquire(context.Background()); err != nil {
		t.Fatalf("hold acquire: %v", err)
	}

	a := d.Slot("a", 2)
	b := d.Slot("b", 1)
	const perModel = 12
	order := make(chan string, 2*perModel)
	var wg sync.WaitGroup
	start := func(s *FairSlot, name string) {
		for i := 0; i < perModel; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Acquire(context.Background()); err != nil {
					t.Errorf("%s acquire: %v", name, err)
					return
				}
				order <- name
				s.Release()
			}()
		}
	}
	start(a, "a")
	start(b, "b")

	// Wait until every waiter is parked, then free the slot: from here the
	// grant order is fully determined by the virtual clock.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sa, _ := d.Stats("a")
		sb, _ := d.Stats("b")
		if sa.Waiting == perModel && sb.Waiting == perModel {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never parked: a=%d b=%d", sa.Waiting, sb.Waiting)
		}
		time.Sleep(time.Millisecond)
	}
	hold.Release()
	wg.Wait()
	close(order)

	var seq []string
	for name := range order {
		seq = append(seq, name)
	}
	if len(seq) != 2*perModel {
		t.Fatalf("got %d grants, want %d", len(seq), 2*perModel)
	}
	// Over any window of 3 consecutive grants while both models contend,
	// weight-2 a must appear exactly twice. The first 18 grants have both
	// models backlogged (b's 6th grant is at virtual time 6, a's 12th at
	// 6), so proportionality must hold throughout.
	counts := map[string]int{}
	for _, name := range seq[:18] {
		counts[name]++
	}
	if counts["a"] != 12 || counts["b"] != 6 {
		t.Fatalf("first 18 grants split a=%d b=%d, want 12/6 (seq %v)", counts["a"], counts["b"], seq)
	}
	if seq[0] != "a" || seq[1] != "b" || seq[2] != "a" {
		t.Errorf("grant prefix %v, want [a b a]: ties break by name, then the 1/weight stride interleaves", seq[:3])
	}
}

// TestFairWorkConserving: a lone model must use every slot — fairness
// must never idle capacity that has no competition.
func TestFairWorkConserving(t *testing.T) {
	d := NewFairDispatcher(2)
	s := d.Slot("only", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := s.Acquire(ctx); err != nil {
		t.Fatalf("second acquire should use the second slot: %v", err)
	}
	st, ok := d.Stats("only")
	if !ok || st.Inflight != 2 {
		t.Fatalf("inflight = %d (ok=%v), want 2", st.Inflight, ok)
	}
	if st.Share != 1 {
		t.Errorf("share = %v, want 1 for the only model", st.Share)
	}
	s.Release()
	s.Release()
}

// TestFairAcquireCtxCancel: a parked waiter must come back with the
// context's error and leave no queue residue.
func TestFairAcquireCtxCancel(t *testing.T) {
	d := NewFairDispatcher(1)
	s := d.Slot("m", 1)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := d.Stats("m"); st.Waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire returned %v, want context.Canceled", err)
	}
	if st, _ := d.Stats("m"); st.Waiting != 0 {
		t.Errorf("waiting = %d after cancel, want 0", st.Waiting)
	}
	s.Release()
	// The slot must still be grantable.
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	s.Release()
}

// TestFairRemoveOrphansWaiters: removing a model must fail its parked
// waiters rather than strand them.
func TestFairRemoveOrphansWaiters(t *testing.T) {
	d := NewFairDispatcher(1)
	hold := d.Slot("hold", 1)
	if err := hold.Acquire(context.Background()); err != nil {
		t.Fatalf("hold acquire: %v", err)
	}
	s := d.Slot("doomed", 1)
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := d.Stats("doomed"); st.Waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	d.Remove("doomed")
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("acquire on a removed model succeeded, want an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquire still parked after Remove")
	}
	if _, ok := d.Stats("doomed"); ok {
		t.Error("Stats still reports the removed model")
	}
	hold.Release()
}

// TestFairSlotSurvivesSwap: re-requesting a model's slot (what a hot
// swap does) must keep its fair position instead of minting credit.
func TestFairSlotSurvivesSwap(t *testing.T) {
	d := NewFairDispatcher(1)
	s1 := d.Slot("m", 3)
	s2 := d.Slot("m", 3)
	if err := s1.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	s1.Release()
	if err := s2.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire on swapped slot: %v", err)
	}
	s2.Release()
	st, ok := d.Stats("m")
	if !ok || st.Grants != 2 {
		t.Fatalf("grants = %d (ok=%v), want 2 accumulated across both slot handles", st.Grants, ok)
	}
}
