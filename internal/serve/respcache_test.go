package serve

import (
	"sync"
	"testing"
	"time"

	"burstsnn/internal/coding"
)

// fakeClock makes the cache's TTL behavior deterministic: tests advance
// it explicitly instead of sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func cacheWithClock(max int, ttl time.Duration) (*ResponseCache, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	c := NewResponseCache(max, ttl)
	c.now = clk.now
	return c, clk
}

// respImage builds a distinct image per seed (the seed is encoded in
// the first pixel, so no two seeds ever alias).
func respImage(seed int) []float64 {
	img := make([]float64, 16)
	img[0] = float64(seed) / 1e6
	for i := 1; i < len(img); i++ {
		img[i] = float64(i) / 16
	}
	return img
}

// TestResponseCacheTwoSightingPromotion pins the entry discipline: the
// first Record of a key only marks it seen, the second promotes it, and
// only then does Lookup hit — with the exact recorded Outcome.
func TestResponseCacheTwoSightingPromotion(t *testing.T) {
	c, _ := cacheWithClock(8, time.Minute)
	img := respImage(1)
	h := coding.HashImage(img)
	p := ExitPolicy{MaxSteps: 48, MinSteps: 8, StableWindow: 6}
	out := Outcome{Prediction: 3, Steps: 17, EarlyExit: true, Margin: 0.25, InputSpikes: 40, HiddenSpikes: 90}

	if _, ok := c.Lookup(h, img, p); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Record(h, img, p, out)
	if _, ok := c.Lookup(h, img, p); ok {
		t.Fatal("hit after a single sighting — promotion requires two")
	}
	if c.Len() != 0 {
		t.Fatalf("entry stored on first sighting: Len = %d", c.Len())
	}
	c.Record(h, img, p, out)
	got, ok := c.Lookup(h, img, p)
	if !ok {
		t.Fatal("miss after second sighting")
	}
	if got != out {
		t.Fatalf("cached outcome %+v, recorded %+v", got, out)
	}
	// Policy is part of the key: same image, different policy misses.
	if _, ok := c.Lookup(h, img, ExitPolicy{MaxSteps: 32}); ok {
		t.Fatal("hit across a different exit policy")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 3 {
		t.Errorf("Stats = %d hits / %d misses, want 1/3", hits, misses)
	}
}

// TestResponseCacheCollisionDegradesToMiss is the safety property: a
// hash collision must never serve another image's outcome. A colliding
// Lookup misses; a colliding Record replaces the stored entry.
func TestResponseCacheCollisionDegradesToMiss(t *testing.T) {
	c, _ := cacheWithClock(8, time.Minute)
	img, other := respImage(1), respImage(2)
	h := coding.HashImage(img)
	p := ExitPolicy{MaxSteps: 48}
	out := Outcome{Prediction: 5, Steps: 20}
	c.Record(h, img, p, out)
	c.Record(h, img, p, out)

	// Forged collision: same hash key, different pixels.
	if _, ok := c.Lookup(h, other, p); ok {
		t.Fatal("collision served another image's outcome")
	}
	// Recording under the colliding key replaces the entry outright.
	otherOut := Outcome{Prediction: 7, Steps: 31}
	c.Record(h, other, p, otherOut)
	if _, ok := c.Lookup(h, img, p); ok {
		t.Fatal("original image still served after a colliding re-store")
	}
	got, ok := c.Lookup(h, other, p)
	if !ok || got != otherOut {
		t.Fatalf("colliding image after re-store: ok=%v out=%+v, want %+v", ok, got, otherOut)
	}
}

// TestResponseCacheTTL drives expiry with an injected clock: an entry
// stops hitting once the TTL passes, refreshes on re-Record, and a
// first sighting older than one TTL window no longer counts toward
// promotion.
func TestResponseCacheTTL(t *testing.T) {
	const ttl = time.Minute
	c, clk := cacheWithClock(8, ttl)
	img := respImage(3)
	h := coding.HashImage(img)
	p := ExitPolicy{MaxSteps: 48}
	out := Outcome{Prediction: 1, Steps: 9}
	c.Record(h, img, p, out)
	c.Record(h, img, p, out)
	if _, ok := c.Lookup(h, img, p); !ok {
		t.Fatal("miss right after promotion")
	}

	// Refresh: a Record at ttl-1s pushes expiry out a full window.
	clk.advance(ttl - time.Second)
	c.Record(h, img, p, out)
	clk.advance(ttl - time.Second)
	if _, ok := c.Lookup(h, img, p); !ok {
		t.Fatal("entry expired despite an in-window refresh")
	}

	// Past the refreshed deadline the entry is dropped on lookup.
	clk.advance(2 * time.Second)
	if _, ok := c.Lookup(h, img, p); ok {
		t.Fatal("hit after TTL expiry")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry retained: Len = %d", c.Len())
	}

	// Stale sighting: first Record, then more than one TTL of silence —
	// the next Record must re-mark, not promote.
	cold := respImage(4)
	ch := coding.HashImage(cold)
	c.Record(ch, cold, p, out)
	clk.advance(ttl + time.Second)
	c.Record(ch, cold, p, out)
	if _, ok := c.Lookup(ch, cold, p); ok {
		t.Fatal("stale first sighting still counted toward promotion")
	}
}

// TestResponseCacheBound caps both maps: promoted entries and the
// seen set each evict to stay at max, so the cache's footprint is
// bounded no matter the traffic.
func TestResponseCacheBound(t *testing.T) {
	const max = 4
	c, _ := cacheWithClock(max, time.Minute)
	p := ExitPolicy{MaxSteps: 48}
	for i := 0; i < 3*max; i++ {
		img := respImage(i)
		h := coding.HashImage(img)
		c.Record(h, img, p, Outcome{Prediction: i % 10})
		c.Record(h, img, p, Outcome{Prediction: i % 10})
		if c.Len() > max {
			t.Fatalf("entries grew past the bound: %d > %d", c.Len(), max)
		}
	}
	// Seen set: unique-image traffic (single sightings) must not grow it
	// past the bound either.
	c2, _ := cacheWithClock(max, time.Minute)
	for i := 0; i < 3*max; i++ {
		img := respImage(100 + i)
		c2.Record(coding.HashImage(img), img, p, Outcome{})
	}
	c2.mu.Lock()
	seen := len(c2.seen)
	c2.mu.Unlock()
	if seen > max {
		t.Fatalf("seen set grew past the bound: %d > %d", seen, max)
	}
	if c2.Len() != 0 {
		t.Fatalf("single sightings allocated %d entries, want 0", c2.Len())
	}
}

// TestResponseCacheConcurrent hammers one hot key and a stream of cold
// keys from many goroutines — the race detector is the assertion, plus
// a final consistency check on the hot entry.
func TestResponseCacheConcurrent(t *testing.T) {
	c, _ := cacheWithClock(64, time.Minute)
	hot := respImage(1)
	hotHash := coding.HashImage(hot)
	p := ExitPolicy{MaxSteps: 48}
	hotOut := Outcome{Prediction: 2, Steps: 11}
	c.Record(hotHash, hot, p, hotOut)
	c.Record(hotHash, hot, p, hotOut)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if out, ok := c.Lookup(hotHash, hot, p); ok && out != hotOut {
					t.Errorf("hot lookup returned %+v, want %+v", out, hotOut)
				}
				cold := respImage(1000 + g*200 + i)
				ch := coding.HashImage(cold)
				c.Record(ch, cold, p, Outcome{Prediction: g})
				c.Lookup(ch, cold, p)
			}
		}(g)
	}
	wg.Wait()
	if hits, _ := c.Stats(); hits == 0 {
		t.Error("no hits recorded under concurrency")
	}
}
