package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/core"
	"burstsnn/internal/dataset"
	"burstsnn/internal/dnn"
	"burstsnn/internal/mathx"
)

// Shared tiny baseline: an MLP on reduced synthetic digits, trained once
// per test binary. Everything downstream is deterministic.
var (
	testOnce sync.Once
	testNet  *dnn.Network
	testSet  *dataset.Set
)

func testModel(t *testing.T) (*dnn.Network, *dataset.Set) {
	t.Helper()
	testOnce.Do(func() {
		set := dataset.SynthDigits(dataset.DigitsConfig{
			TrainPerClass: 30, TestPerClass: 5, Noise: 0.04, Seed: 1009,
		})
		net, err := dnn.Build(dnn.MLP(1, 28, 28, []int{32}, 10), mathx.NewRNG(7))
		if err != nil {
			panic(err)
		}
		dnn.Train(net, set, dnn.NewAdam(0.01), dnn.TrainConfig{
			Epochs: 8, BatchSize: 32, Seed: 5,
		})
		testNet, testSet = net, set
	})
	return testNet, testSet
}

const testSteps = 96

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	net, set := testModel(t)
	s := New(cfg)
	_, err := s.Register(ModelConfig{
		Name:        "digits",
		Hybrid:      core.NewHybrid(coding.Phase, coding.Burst),
		Steps:       testSteps,
		Replicas:    4,
		NormSamples: 32,
	}, net, set.Train)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	return s
}

func TestRegistryInfo(t *testing.T) {
	s := testServer(t, Config{})
	infos := s.Registry().List()
	if len(infos) != 1 {
		t.Fatalf("List: got %d models, want 1", len(infos))
	}
	info := infos[0]
	if info.Name != "digits" || info.Notation != "phase-burst" {
		t.Errorf("Info name/notation = %q/%q", info.Name, info.Notation)
	}
	if info.InputSize != 28*28 || info.Classes != 10 {
		t.Errorf("Info dims = %d pixels / %d classes", info.InputSize, info.Classes)
	}
	if info.Replicas != 4 || info.Steps != testSteps {
		t.Errorf("Info replicas/steps = %d/%d", info.Replicas, info.Steps)
	}
	if info.Exit.StableWindow == 0 {
		t.Errorf("default exit policy should enable early exit, got %+v", info.Exit)
	}
	if _, err := s.Registry().Get("nope"); err == nil {
		t.Error("Get(unknown) should fail")
	}
}

func TestClassifyValidation(t *testing.T) {
	s := testServer(t, Config{})
	ctx := context.Background()
	if _, err := s.Classify(ctx, ClassifyRequest{Model: "nope", Image: make([]float64, 784)}); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := s.Classify(ctx, ClassifyRequest{Model: "digits", Image: make([]float64, 10)}); err == nil {
		t.Error("wrong image size should fail")
	}
	if _, err := s.Classify(ctx, ClassifyRequest{Model: "digits", Image: make([]float64, 784), MaxSteps: testSteps + 1}); err == nil {
		t.Error("maxSteps beyond budget should fail")
	}
}

// TestDeterminismUnderContention checks the serving invariant the replica
// pool must preserve: the same image yields the same prediction, step
// count, and spike count no matter which replica runs it, how requests
// are batched, or how many run concurrently.
func TestDeterminismUnderContention(t *testing.T) {
	// Lockstep batching on: the invariant must hold regardless of which
	// execution path (lockstep or sequential fallback) serves a request.
	// QueueDepth covers the full burst so overload shedding (a 429, not
	// an invariance question) can't fail the test.
	s := testServer(t, Config{MaxBatch: 4, LockstepBatch: LockstepOn, QueueDepth: 64})
	_, set := testModel(t)
	images := set.Test[:8]
	ctx := context.Background()

	// Reference pass, no contention.
	want := make([]ClassifyResult, len(images))
	for i, sample := range images {
		res, err := s.Classify(ctx, ClassifyRequest{Model: "digits", Image: sample.Image})
		if err != nil {
			t.Fatalf("reference classify %d: %v", i, err)
		}
		want[i] = res
	}

	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(images))
	for r := 0; r < rounds; r++ {
		for i, sample := range images {
			wg.Add(1)
			go func(i int, image []float64) {
				defer wg.Done()
				res, err := s.Classify(ctx, ClassifyRequest{Model: "digits", Image: image})
				if err != nil {
					errs <- err
					return
				}
				w := want[i]
				if res.Prediction != w.Prediction || res.Steps != w.Steps || res.Spikes != w.Spikes {
					t.Errorf("image %d: got (pred %d, steps %d, spikes %d), want (%d, %d, %d)",
						i, res.Prediction, res.Steps, res.Spikes, w.Prediction, w.Steps, w.Spikes)
				}
			}(i, sample.Image)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent classify: %v", err)
	}
}

// TestEarlyExitEquivalence pins the early-exit engine to the offline
// pipeline: with early exit disabled, per-image accuracy matches
// core.Evaluate's final accuracy exactly; with it enabled, accuracy is
// preserved while the mean step count drops below the full budget.
func TestEarlyExitEquivalence(t *testing.T) {
	s := testServer(t, Config{})
	net, set := testModel(t)
	ctx := context.Background()

	ref, err := core.Evaluate(net, set, core.EvalConfig{
		Hybrid:      core.NewHybrid(coding.Phase, coding.Burst),
		Steps:       testSteps,
		NormSamples: 32,
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}

	fullCorrect, earlyCorrect, earlySteps := 0, 0, 0
	for _, sample := range set.Test {
		full, err := s.Classify(ctx, ClassifyRequest{Model: "digits", Image: sample.Image, NoEarlyExit: true})
		if err != nil {
			t.Fatalf("full-budget classify: %v", err)
		}
		if full.Steps != testSteps || full.EarlyExit {
			t.Fatalf("NoEarlyExit ran %d steps (earlyExit=%v), want full %d", full.Steps, full.EarlyExit, testSteps)
		}
		if full.Prediction == sample.Label {
			fullCorrect++
		}
		early, err := s.Classify(ctx, ClassifyRequest{Model: "digits", Image: sample.Image})
		if err != nil {
			t.Fatalf("early-exit classify: %v", err)
		}
		if early.Prediction == sample.Label {
			earlyCorrect++
		}
		earlySteps += early.Steps
	}
	n := len(set.Test)
	fullAcc := float64(fullCorrect) / float64(n)
	earlyAcc := float64(earlyCorrect) / float64(n)
	if fullAcc != ref.FinalAccuracy() {
		t.Errorf("full-budget serving accuracy %.4f != core.Evaluate final accuracy %.4f", fullAcc, ref.FinalAccuracy())
	}
	if earlyAcc < fullAcc {
		t.Errorf("early-exit accuracy %.4f below full-budget %.4f", earlyAcc, fullAcc)
	}
	meanSteps := float64(earlySteps) / float64(n)
	if meanSteps >= testSteps {
		t.Errorf("mean early-exit steps %.1f did not beat the %d-step budget", meanSteps, testSteps)
	}
	t.Logf("accuracy full=%.4f early=%.4f, mean steps %.1f of %d", fullAcc, earlyAcc, meanSteps, testSteps)
}

func TestHTTPAPI(t *testing.T) {
	s := testServer(t, Config{})
	_, set := testModel(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Health.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v (status %v)", err, resp.Status)
	}
	resp.Body.Close()

	// Models.
	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatalf("models: %v", err)
	}
	var models struct {
		Models []Info `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatalf("models decode: %v", err)
	}
	resp.Body.Close()
	if len(models.Models) != 1 || models.Models[0].Name != "digits" {
		t.Fatalf("models = %+v", models)
	}

	// Classify.
	body, _ := json.Marshal(ClassifyRequest{Model: "digits", Image: set.Test[0].Image})
	resp, err = http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %v", resp.Status)
	}
	var res ClassifyResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("classify decode: %v", err)
	}
	resp.Body.Close()
	if res.Model != "digits" || res.Prediction < 0 || res.Prediction > 9 || res.Steps == 0 {
		t.Errorf("classify result = %+v", res)
	}

	// Unknown model → 404.
	body, _ = json.Marshal(ClassifyRequest{Model: "nope", Image: set.Test[0].Image})
	resp, err = http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("classify unknown: %v", err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown model status = %v, want 404", resp.Status)
	}
	resp.Body.Close()

	// Bad body → 400.
	resp, err = http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatalf("classify bad body: %v", err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %v, want 400", resp.Status)
	}
	resp.Body.Close()

	// Metrics reflect the served request.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var metrics struct {
		Models map[string]Snapshot `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	resp.Body.Close()
	if snap := metrics.Models["digits"]; snap.Requests < 1 || snap.MeanSteps <= 0 {
		t.Errorf("metrics snapshot = %+v", snap)
	}
}

// TestResponseCacheServesReplays drives the cross-batch response cache
// end to end: the third classification of the same image is answered
// from the cache (two sightings promote, the third hits), reports
// Cached, matches the fresh outcome exactly, and shows up in the trace
// ring with no simulate span.
func TestResponseCacheServesReplays(t *testing.T) {
	s := testServer(t, Config{})
	_, set := testModel(t)
	ctx := context.Background()
	img := set.Test[1].Image
	var first ClassifyResult
	for i := 0; i < 3; i++ {
		res, err := s.Classify(ctx, ClassifyRequest{Model: "digits", Image: img})
		if err != nil {
			t.Fatalf("classify %d: %v", i, err)
		}
		if i == 0 {
			first = res
			continue
		}
		if res.Prediction != first.Prediction || res.Steps != first.Steps ||
			res.Spikes != first.Spikes || res.EarlyExit != first.EarlyExit {
			t.Errorf("replay %d: %+v differs from first %+v", i, res, first)
		}
		if i == 2 && !res.Cached {
			t.Errorf("third sighting not served from cache: %+v", res)
		}
	}
	m, err := s.Registry().Get("digits")
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Metrics().Snapshot()
	if snap.ResponseCacheHits == 0 {
		t.Errorf("ResponseCacheHits = 0 after promotion replay: %+v", snap)
	}
	cached := false
	for _, tr := range s.Traces().Recent(0) {
		if tr.Cached {
			cached = true
			if tr.SimulateMs != 0 || tr.QueueMs != 0 {
				t.Errorf("cached trace carries pipeline spans: %+v", tr)
			}
		}
	}
	if !cached {
		t.Error("no cached trace recorded")
	}
}

// TestOverloadSheds429 is the admission-control contract over HTTP: a
// burst past capacity gets a mix of 200s and 429s — never a hang or a
// 5xx — and every 429 carries a Retry-After hint.
func TestOverloadSheds429(t *testing.T) {
	// One-lane batches over a tiny queue, with injected per-batch latency
	// so the burst provably outruns capacity. Cache off: every request
	// must take the full pipeline.
	s := testServer(t, Config{
		MaxBatch: 1, QueueDepth: 1, ResponseCacheSize: -1,
		InjectLatency: 250 * time.Millisecond,
	})
	_, set := testModel(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 12
	type reply struct {
		status     int
		retryAfter string
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		img := append([]float64(nil), set.Test[0].Image...)
		img[0] = float64(i+1) / 16 // distinct images: dedupe can't collapse the burst
		go func(img []float64) {
			body, _ := json.Marshal(ClassifyRequest{Model: "digits", Image: img})
			resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(string(body)))
			if err != nil {
				t.Errorf("classify: %v", err)
				replies <- reply{}
				return
			}
			resp.Body.Close()
			replies <- reply{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(img)
	}
	completed, shed := 0, 0
	for i := 0; i < n; i++ {
		r := <-replies
		switch r.status {
		case http.StatusOK:
			completed++
		case http.StatusTooManyRequests:
			shed++
			if sec, err := strconv.Atoi(r.retryAfter); err != nil || sec < 1 {
				t.Errorf("429 Retry-After = %q, want integer >= 1", r.retryAfter)
			}
		default:
			t.Errorf("burst request status %d, want 200 or 429", r.status)
		}
	}
	if completed == 0 || shed == 0 {
		t.Errorf("burst of %d: %d completed, %d shed — want both > 0", n, completed, shed)
	}
	if snap := mustSnapshot(t, s); snap.SheddedRequests == 0 {
		t.Errorf("sheddedRequests = 0 after overload burst: %+v", snap)
	}
}

func mustSnapshot(t *testing.T, s *Server) Snapshot {
	t.Helper()
	m, err := s.Registry().Get("digits")
	if err != nil {
		t.Fatal(err)
	}
	return m.Metrics().Snapshot()
}

func TestShutdown(t *testing.T) {
	s := testServer(t, Config{})
	_, set := testModel(t)
	ctx := context.Background()
	if _, err := s.Classify(ctx, ClassifyRequest{Model: "digits", Image: set.Test[0].Image}); err != nil {
		t.Fatalf("classify before shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := s.Classify(ctx, ClassifyRequest{Model: "digits", Image: set.Test[0].Image}); err == nil {
		t.Error("classify after shutdown should fail")
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}
