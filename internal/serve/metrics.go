package serve

import (
	"math"
	"sort"
	"sync"
	"time"
)

// metricsWindow bounds the latency reservoir: percentiles are computed
// over the most recent metricsWindow requests.
const metricsWindow = 4096

// Metrics accumulates serving statistics for one model (or globally).
// All methods are safe for concurrent use.
type Metrics struct {
	mu         sync.Mutex
	requests   int64
	errors     int64
	earlyExits int64
	stepsSum   int64
	spikesSum  int64
	latencies  []float64 // ring buffer, milliseconds
	next       int
}

// NewMetrics returns an empty accumulator.
func NewMetrics() *Metrics { return &Metrics{} }

// ObserveError records a failed request.
func (m *Metrics) ObserveError() {
	m.mu.Lock()
	m.errors++
	m.mu.Unlock()
}

// Observe records one served classification.
func (m *Metrics) Observe(o Outcome, latency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	if o.EarlyExit {
		m.earlyExits++
	}
	m.stepsSum += int64(o.Steps)
	m.spikesSum += int64(o.TotalSpikes())
	ms := float64(latency) / float64(time.Millisecond)
	if len(m.latencies) < metricsWindow {
		m.latencies = append(m.latencies, ms)
	} else {
		m.latencies[m.next] = ms
		m.next = (m.next + 1) % metricsWindow
	}
}

// Snapshot is a point-in-time metrics view, JSON-shaped for /metrics.
type Snapshot struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// EarlyExitRate is the fraction of requests that exited before their
	// full step budget.
	EarlyExitRate float64 `json:"earlyExitRate"`
	// MeanSteps is the mean simulated steps per request — the serving
	// form of the paper's latency metric.
	MeanSteps float64 `json:"meanSteps"`
	// MeanSpikes is the mean total spikes per request — the serving form
	// of the paper's efficiency metric.
	MeanSpikes float64 `json:"meanSpikes"`
	// P50/P90/P99 are wall-clock latency percentiles in milliseconds over
	// the recent-request window.
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
}

// Snapshot computes the current view. Only the scalar reads and the
// reservoir copy happen under the lock; the O(n log n) sort of up to
// metricsWindow latencies runs outside it so a /metrics scrape never
// stalls concurrent Observe calls.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	s := Snapshot{Requests: m.requests, Errors: m.errors}
	if m.requests > 0 {
		s.EarlyExitRate = float64(m.earlyExits) / float64(m.requests)
		s.MeanSteps = float64(m.stepsSum) / float64(m.requests)
		s.MeanSpikes = float64(m.spikesSum) / float64(m.requests)
	}
	sorted := append([]float64(nil), m.latencies...)
	m.mu.Unlock()

	if len(sorted) > 0 {
		sort.Float64s(sorted)
		s.P50Ms = Percentile(sorted, 50)
		s.P90Ms = Percentile(sorted, 90)
		s.P99Ms = Percentile(sorted, 99)
	}
	return s
}

// Percentile reads the p-th percentile from an ascending slice using the
// standard nearest-rank method, rank = ⌈p/100·n⌉ (also used by
// load-generator reporting). Rounding the rank to nearest instead of up
// would read one sample too low whenever p/100·n lands on (or just above)
// an integer — e.g. p99 over 100 samples must be the 99th rank
// (sorted[98])… and p100 the maximum, never beyond it.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
