package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"burstsnn/internal/coding"
)

// metricsWindow bounds the latency reservoir: percentiles are computed
// over (approximately) the most recent metricsWindow requests, split
// evenly across the stripes.
const metricsWindow = 4096

// metricsStripes is the default Observe shard count. Observes are spread
// round-robin over independently locked stripes, so concurrent requests
// almost never contend on the same mutex; Snapshot merges the stripes
// outside any lock. Must be a power of two (the stripe pick is a mask).
const metricsStripes = 8

// metricsStripe is one locked shard of the accumulator. The trailing pad
// keeps hot stripes on separate cache lines so round-robin Observes don't
// false-share.
type metricsStripe struct {
	mu         sync.Mutex
	requests   int64
	errors     int64
	earlyExits int64
	stepsSum   int64
	spikesSum  int64
	latencies  []float64 // ring buffer, milliseconds
	next       int
	_          [48]byte // rounds the struct to 128 bytes (2 cache lines)
}

// Metrics accumulates serving statistics for one model (or globally).
// All methods are safe for concurrent use.
type Metrics struct {
	stripes []metricsStripe
	tick    atomic.Uint64
	window  int // per-stripe reservoir bound

	// Batch execution gauges (see Batcher): how full microbatches run and
	// how many lockstep steps lane retirement avoided versus running every
	// lane to the batch's slowest exit.
	batches         atomic.Int64
	batchLanes      atomic.Int64
	batchStepsSaved atomic.Int64
	// deduped counts requests answered by fanning out a batchmate's
	// outcome instead of simulating (identical image and policy).
	deduped atomic.Int64
	// kernel names the lockstep compute plane the model's batcher picked
	// at build time (kernels.KindF64 or the float32 kernels.Kind()).
	kernel atomic.Pointer[string]

	// quant is the model's encoder quantization cache, if any; Snapshot
	// surfaces its hit/miss counters.
	quant atomic.Pointer[coding.QuantCache]
}

// NewMetrics returns an empty accumulator with the default stripe count.
func NewMetrics() *Metrics { return newMetricsStriped(metricsStripes) }

// newMetricsStriped builds an accumulator with n stripes (a power of
// two). Exposed internally so the contention benchmark can compare a
// single-stripe reservoir against the striped default.
func newMetricsStriped(n int) *Metrics {
	w := metricsWindow / n
	if w < 1 {
		w = 1
	}
	return &Metrics{stripes: make([]metricsStripe, n), window: w}
}

// stripe picks the next shard round-robin.
func (m *Metrics) stripe() *metricsStripe {
	return &m.stripes[m.tick.Add(1)&uint64(len(m.stripes)-1)]
}

// ObserveError records a failed request.
func (m *Metrics) ObserveError() {
	s := m.stripe()
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

// Observe records one served classification.
func (m *Metrics) Observe(o Outcome, latency time.Duration) {
	s := m.stripe()
	s.mu.Lock()
	s.requests++
	if o.EarlyExit {
		s.earlyExits++
	}
	s.stepsSum += int64(o.Steps)
	s.spikesSum += int64(o.TotalSpikes())
	ms := float64(latency) / float64(time.Millisecond)
	if len(s.latencies) < m.window {
		s.latencies = append(s.latencies, ms)
	} else {
		s.latencies[s.next] = ms
		s.next = (s.next + 1) % m.window
	}
	s.mu.Unlock()
}

// ObserveBatch records one executed microbatch: how many lanes it
// carried and how many lockstep steps per-lane early-exit retirement
// saved versus running every lane to the batch's final step.
func (m *Metrics) ObserveBatch(lanes, stepsSaved int) {
	m.batches.Add(1)
	m.batchLanes.Add(int64(lanes))
	m.batchStepsSaved.Add(int64(stepsSaved))
}

// ObserveDeduped records n requests served by duplicate fan-out.
func (m *Metrics) ObserveDeduped(n int) {
	m.deduped.Add(int64(n))
}

// SetBatchKernel records the resolved lockstep kernel variant for the
// snapshot (idempotent; survives model re-registration like the quant
// cache attachment).
func (m *Metrics) SetBatchKernel(kind string) { m.kernel.Store(&kind) }

// AttachQuantCache points the snapshot's encoder-cache counters at the
// model's quantization cache (idempotent; survives model re-registration
// because the registry re-attaches the fresh cache).
func (m *Metrics) AttachQuantCache(c *coding.QuantCache) { m.quant.Store(c) }

// Snapshot is a point-in-time metrics view, JSON-shaped for /metrics.
type Snapshot struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// EarlyExitRate is the fraction of requests that exited before their
	// full step budget.
	EarlyExitRate float64 `json:"earlyExitRate"`
	// MeanSteps is the mean simulated steps per request — the serving
	// form of the paper's latency metric.
	MeanSteps float64 `json:"meanSteps"`
	// MeanSpikes is the mean total spikes per request — the serving form
	// of the paper's efficiency metric.
	MeanSpikes float64 `json:"meanSpikes"`
	// P50/P90/P99 are wall-clock latency percentiles in milliseconds over
	// the recent-request window.
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
	// Batches counts executed lockstep microbatches (single-request
	// dispatches run sequentially and don't count); MeanBatchOccupancy is
	// the mean lanes per batch, and BatchStepsSaved totals the lockstep
	// steps avoided by retiring early-exited lanes instead of stepping
	// them to the batch's end.
	Batches            int64   `json:"batches"`
	MeanBatchOccupancy float64 `json:"meanBatchOccupancy"`
	BatchStepsSaved    int64   `json:"batchStepsSaved"`
	// BatchKernel is the lockstep compute plane the model's batcher picked
	// at build time: "f64", or the float32 tier actually running: "f32" (pure Go), "f32-sse", or "f32-avx2".
	BatchKernel string `json:"batchKernel,omitempty"`
	// DedupedRequests counts requests answered by fanning out an identical
	// (image, policy) batchmate's outcome instead of simulating.
	DedupedRequests int64 `json:"dedupedRequests"`
	// EncoderCacheHits/Misses are the model's quantization-cache counters
	// (phase/TTFS input encoders; zero when the scheme has no Reset-time
	// quantization to cache).
	EncoderCacheHits   int64 `json:"encoderCacheHits"`
	EncoderCacheMisses int64 `json:"encoderCacheMisses"`
}

// Snapshot computes the current view. Each stripe is locked only for its
// scalar reads and reservoir copy; the O(n log n) sort over the merged
// reservoirs runs outside every lock, so a /metrics scrape never stalls
// concurrent Observe calls.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	var earlyExits int64
	sorted := make([]float64, 0, metricsWindow)
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		s.Requests += st.requests
		s.Errors += st.errors
		earlyExits += st.earlyExits
		s.MeanSteps += float64(st.stepsSum)
		s.MeanSpikes += float64(st.spikesSum)
		sorted = append(sorted, st.latencies...)
		st.mu.Unlock()
	}
	if s.Requests > 0 {
		s.EarlyExitRate = float64(earlyExits) / float64(s.Requests)
		s.MeanSteps /= float64(s.Requests)
		s.MeanSpikes /= float64(s.Requests)
	} else {
		s.MeanSteps, s.MeanSpikes = 0, 0
	}
	if len(sorted) > 0 {
		sort.Float64s(sorted)
		s.P50Ms = Percentile(sorted, 50)
		s.P90Ms = Percentile(sorted, 90)
		s.P99Ms = Percentile(sorted, 99)
	}
	s.Batches = m.batches.Load()
	if s.Batches > 0 {
		s.MeanBatchOccupancy = float64(m.batchLanes.Load()) / float64(s.Batches)
	}
	s.BatchStepsSaved = m.batchStepsSaved.Load()
	s.DedupedRequests = m.deduped.Load()
	if k := m.kernel.Load(); k != nil {
		s.BatchKernel = *k
	}
	if q := m.quant.Load(); q != nil {
		s.EncoderCacheHits, s.EncoderCacheMisses = q.Stats()
	}
	return s
}

// Percentile reads the p-th percentile from an ascending slice using the
// standard nearest-rank method, rank = ⌈p/100·n⌉ (also used by
// load-generator reporting). Rounding the rank to nearest instead of up
// would read one sample too low whenever p/100·n lands on (or just above)
// an integer — e.g. p99 over 100 samples must be the 99th rank
// (sorted[98])… and p100 the maximum, never beyond it.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
