package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/obs"
)

// metricsWindow bounds the latency reservoir: percentiles are computed
// over (approximately) the most recent metricsWindow requests, split
// evenly across the stripes.
const metricsWindow = 4096

// metricsStripes is the default Observe shard count. Observes are spread
// round-robin over independently locked stripes, so concurrent requests
// almost never contend on the same mutex; Snapshot merges the stripes
// outside any lock. Must be a power of two (the stripe pick is a mask).
const metricsStripes = 8

// metricsStripe is one locked shard of the accumulator. The trailing pad
// keeps hot stripes on separate cache lines so round-robin Observes don't
// false-share.
type metricsStripe struct {
	mu         sync.Mutex
	requests   int64
	earlyExits int64
	stepsSum   int64
	spikesSum  int64
	latencies  []float64 // ring buffer, milliseconds
	next       int
	_          [56]byte // rounds the struct to 128 bytes (2 cache lines)
}

// Metrics accumulates serving statistics for one model (or globally).
// All methods are safe for concurrent use.
type Metrics struct {
	stripes []metricsStripe
	tick    atomic.Uint64
	window  int // per-stripe reservoir bound

	// stage are the fixed-bucket log-scale duration histograms, one per
	// obs.Stage (queue, form, encode, simulate, readout, total). Unlike
	// the reservoir percentiles above — which forget everything past the
	// window — histogram tails compose over the model's whole lifetime,
	// merge across models, and scrape as plain counters (Prometheus
	// exposition reads them directly).
	stage [obs.NumStages]*obs.Histogram
	// occupancy histograms executed lockstep batches by lane count, so
	// the batcher's occupancy signal is a distribution, not just the
	// mean (the occupancy-adaptive scheduler steers on the same signal,
	// fed per-batch through Scheduler.ObserveOccupancy).
	occupancy *obs.Histogram
	// exitPredErr histograms |predicted − actual| exit steps for lanes
	// the exit history carried a prediction for (the le=0 bucket counts
	// exact predictions) — the honesty check on exit-aware forming.
	exitPredErr *obs.Histogram

	// Steering-decision accounting (see sched.go): how many
	// multi-request batches the scheduling plane sent lockstep vs
	// sequential, and why (Decision.Reason counts).
	schedLockstep   atomic.Int64
	schedSequential atomic.Int64
	schedMu         sync.Mutex
	schedReasons    map[string]int64
	// lockstepFallbacks counts batches the scheduler routed lockstep but
	// the replica could not batch (see Batcher.run's fallback).
	lockstepFallbacks atomic.Int64
	// scheduler names the steering policy the model's batcher runs
	// (Scheduler.Name()).
	scheduler atomic.Pointer[string]
	// exitHist is the model's exit-step history, if any; Snapshot
	// surfaces its predict hit/miss counters.
	exitHist atomic.Pointer[ExitHistory]

	// Error accounting is split by where the failure happened:
	// errAdmission counts requests the server refused before simulation
	// for non-overload reasons (validation, shutdown); errShed counts
	// overload sheds (full queue, projected-wait refusal, deadline
	// expiry, cancellation); errSim counts failures inside batch
	// execution (replica checkout, simulator errors).
	errAdmission atomic.Int64
	errShed      atomic.Int64
	errSim       atomic.Int64

	// degraded counts requests served under the degraded-mode tightened
	// exit policy (successful responses, not errors).
	degraded atomic.Int64

	// evictions and warms count lifecycle cycles: evictions is how often
	// the model's pool was released to the archive, warms how often it
	// was restored from it on demand. Both survive the cycle (the metrics
	// accumulator itself is what the archive retains).
	evictions atomic.Int64
	warms     atomic.Int64

	// respCache is the model's cross-batch response cache, if any;
	// Snapshot surfaces its hit/miss counters.
	respCache atomic.Pointer[ResponseCache]

	// Batch execution gauges (see Batcher): how full microbatches run and
	// how many lockstep steps lane retirement avoided versus running every
	// lane to the batch's slowest exit.
	batches         atomic.Int64
	batchLanes      atomic.Int64
	batchStepsSaved atomic.Int64
	// deduped counts requests answered by fanning out a batchmate's
	// outcome instead of simulating (identical image and policy).
	deduped atomic.Int64
	// kernel names the lockstep compute plane the model's batcher picked
	// at build time (kernels.KindF64 or the float32 kernels.Kind()).
	kernel atomic.Pointer[string]

	// quant is the model's encoder quantization cache, if any; Snapshot
	// surfaces its hit/miss counters.
	quant atomic.Pointer[coding.QuantCache]
}

// NewMetrics returns an empty accumulator with the default stripe count.
func NewMetrics() *Metrics { return newMetricsStriped(metricsStripes) }

// newMetricsStriped builds an accumulator with n stripes (a power of
// two). Exposed internally so the contention benchmark can compare a
// single-stripe reservoir against the striped default.
func newMetricsStriped(n int) *Metrics {
	w := metricsWindow / n
	if w < 1 {
		w = 1
	}
	m := &Metrics{stripes: make([]metricsStripe, n), window: w}
	for s := range m.stage {
		m.stage[s] = obs.NewDurationHistogram()
	}
	m.occupancy = obs.NewOccupancyHistogram()
	m.exitPredErr = obs.NewStepErrorHistogram()
	m.schedReasons = map[string]int64{}
	return m
}

// stripe picks the next shard round-robin.
func (m *Metrics) stripe() *metricsStripe {
	return &m.stripes[m.tick.Add(1)&uint64(len(m.stripes)-1)]
}

// ObserveAdmissionError records a request refused or timed out before it
// simulated (queue deadline, shutdown, validation rejection).
func (m *Metrics) ObserveAdmissionError() { m.errAdmission.Add(1) }

// ObserveSimError records a failure inside batch execution (replica
// checkout, simulator error).
func (m *Metrics) ObserveSimError() { m.errSim.Add(1) }

// ObserveShed records a request shed by the overload plane: refused at
// admission (full queue, projected wait past the deadline) or expired
// before execution completed.
func (m *Metrics) ObserveShed() { m.errShed.Add(1) }

// ObserveDegraded records a request served under the degraded-mode
// tightened exit policy.
func (m *Metrics) ObserveDegraded() { m.degraded.Add(1) }

// ObserveEviction records the model being evicted (pool released,
// conversion archived).
func (m *Metrics) ObserveEviction() { m.evictions.Add(1) }

// ObserveWarm records the model being restored from the archive on
// demand.
func (m *Metrics) ObserveWarm() { m.warms.Add(1) }

// ObserveError records a failed request of unspecified origin; it counts
// as a simulation-side error. Prefer the split observers.
func (m *Metrics) ObserveError() { m.ObserveSimError() }

// Observe records one served classification.
func (m *Metrics) Observe(o Outcome, latency time.Duration) {
	s := m.stripe()
	s.mu.Lock()
	s.requests++
	if o.EarlyExit {
		s.earlyExits++
	}
	s.stepsSum += int64(o.Steps)
	s.spikesSum += int64(o.TotalSpikes())
	ms := float64(latency) / float64(time.Millisecond)
	if len(s.latencies) < m.window {
		s.latencies = append(s.latencies, ms)
	} else {
		s.latencies[s.next] = ms
		s.next = (s.next + 1) % m.window
	}
	s.mu.Unlock()
}

// ObserveStages records one request's stage breakdown into the per-stage
// histograms. Allocation-free and lock-free (a handful of atomic adds);
// BenchmarkObserveStages pins the cost.
func (m *Metrics) ObserveStages(st obs.StageTimes, total time.Duration) {
	m.stage[obs.StageQueue].ObserveDuration(st.Queue)
	m.stage[obs.StageForm].ObserveDuration(st.Form)
	m.stage[obs.StageEncode].ObserveDuration(st.Encode)
	m.stage[obs.StageSimulate].ObserveDuration(st.Simulate)
	m.stage[obs.StageReadout].ObserveDuration(st.Readout)
	m.stage[obs.StageTotal].ObserveDuration(total)
}

// ObserveTotalOnly records just the end-to-end span, for requests that
// never entered the pipeline (response-cache hits): the per-stage
// histograms stay pure measurements of executed work.
func (m *Metrics) ObserveTotalOnly(total time.Duration) {
	m.stage[obs.StageTotal].ObserveDuration(total)
}

// StageHistogram returns the model's histogram for one stage (Prometheus
// exposition reads the buckets directly).
func (m *Metrics) StageHistogram(s obs.Stage) *obs.Histogram { return m.stage[s] }

// OccupancyHistogram returns the batch lane-occupancy histogram.
func (m *Metrics) OccupancyHistogram() *obs.Histogram { return m.occupancy }

// ObserveBatch records one executed microbatch: how many lanes it
// carried and how many lockstep steps per-lane early-exit retirement
// saved versus running every lane to the batch's final step.
func (m *Metrics) ObserveBatch(lanes, stepsSaved int) {
	m.batches.Add(1)
	m.batchLanes.Add(int64(lanes))
	m.batchStepsSaved.Add(int64(stepsSaved))
	m.occupancy.Observe(float64(lanes))
}

// ObserveDeduped records n requests served by duplicate fan-out.
func (m *Metrics) ObserveDeduped(n int) {
	m.deduped.Add(int64(n))
}

// ObserveSchedDecision records one steering verdict for a multi-request
// batch: the dispatch mode counter and the per-reason count.
func (m *Metrics) ObserveSchedDecision(d Decision) {
	if d.Lockstep {
		m.schedLockstep.Add(1)
	} else {
		m.schedSequential.Add(1)
	}
	m.schedMu.Lock()
	m.schedReasons[d.Reason]++
	m.schedMu.Unlock()
}

// ObserveLockstepFallback records a batch the scheduler routed lockstep
// but the replica could not batch, so it degraded to sequential.
func (m *Metrics) ObserveLockstepFallback() { m.lockstepFallbacks.Add(1) }

// ObserveExitPrediction scores one exit-history prediction against the
// observed exit step (absolute error in steps; 0 = exact).
func (m *Metrics) ObserveExitPrediction(predicted, actual int) {
	err := predicted - actual
	if err < 0 {
		err = -err
	}
	m.exitPredErr.Observe(float64(err))
}

// ExitPredictionHistogram returns the predicted-vs-actual exit-step
// error histogram (Prometheus exposition reads the buckets directly).
func (m *Metrics) ExitPredictionHistogram() *obs.Histogram { return m.exitPredErr }

// SetScheduler records the steering policy name for the snapshot
// (idempotent; survives model re-registration like the kernel variant).
func (m *Metrics) SetScheduler(name string) { m.scheduler.Store(&name) }

// Scheduler returns the recorded steering policy name ("" before
// SetScheduler).
func (m *Metrics) Scheduler() string {
	if s := m.scheduler.Load(); s != nil {
		return *s
	}
	return ""
}

// AttachExitHistory points the snapshot's exit-prediction counters at
// the model's exit history (nil detaches; survives re-registration
// because the server re-attaches the fresh history).
func (m *Metrics) AttachExitHistory(h *ExitHistory) { m.exitHist.Store(h) }

// SetBatchKernel records the resolved lockstep kernel variant for the
// snapshot (idempotent; survives model re-registration like the quant
// cache attachment).
func (m *Metrics) SetBatchKernel(kind string) { m.kernel.Store(&kind) }

// BatchKernel returns the recorded lockstep kernel variant ("" before
// SetBatchKernel).
func (m *Metrics) BatchKernel() string {
	if k := m.kernel.Load(); k != nil {
		return *k
	}
	return ""
}

// AttachQuantCache points the snapshot's encoder-cache counters at the
// model's quantization cache (idempotent; survives model re-registration
// because the registry re-attaches the fresh cache).
func (m *Metrics) AttachQuantCache(c *coding.QuantCache) { m.quant.Store(c) }

// AttachResponseCache points the snapshot's response-cache counters at
// the model's cross-batch response cache (nil detaches; survives
// re-registration because the server re-attaches the fresh cache).
func (m *Metrics) AttachResponseCache(c *ResponseCache) { m.respCache.Store(c) }

// StageStats is the JSON summary of one histogram: observation count
// plus histogram-estimated mean and percentiles — in milliseconds for
// the stage map, in lanes for the occupancy distribution. The estimates
// interpolate inside √2-wide log buckets, so they carry bucket-resolution
// error — unlike the reservoir percentiles (P50Ms…) they never forget
// old tails and they merge across scrapes.
type StageStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time metrics view, JSON-shaped for /metrics.
type Snapshot struct {
	Requests int64 `json:"requests"`
	// Errors totals the split counters below (the pre-split schema).
	Errors int64 `json:"errors"`
	// AdmissionErrors counts requests refused before simulation for
	// non-overload reasons (validation, shutdown); SheddedRequests
	// counts overload sheds (full queue, projected-wait refusal,
	// deadline expiry, cancellation — HTTP 429/504);
	// SimulationErrors counts failures inside execution.
	AdmissionErrors  int64 `json:"admissionErrors"`
	SheddedRequests  int64 `json:"sheddedRequests"`
	SimulationErrors int64 `json:"simulationErrors"`
	// EarlyExits counts requests that exited before their full step
	// budget; EarlyExitRate is the same as a fraction of requests.
	EarlyExits    int64   `json:"earlyExits"`
	EarlyExitRate float64 `json:"earlyExitRate"`
	// MeanSteps is the mean simulated steps per request — the serving
	// form of the paper's latency metric.
	MeanSteps float64 `json:"meanSteps"`
	// MeanSpikes is the mean total spikes per request — the serving form
	// of the paper's efficiency metric.
	MeanSpikes float64 `json:"meanSpikes"`
	// P50/P90/P99 are wall-clock latency percentiles in milliseconds over
	// the recent-request window.
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
	// Stages breaks the request down by pipeline stage (queue, form,
	// encode, simulate, readout, total — see internal/obs for the
	// taxonomy) over lifetime histograms.
	Stages map[string]StageStats `json:"stages,omitempty"`
	// Batches counts executed lockstep microbatches (single-request
	// dispatches run sequentially and don't count); MeanBatchOccupancy is
	// the mean lanes per batch, and BatchStepsSaved totals the lockstep
	// steps avoided by retiring early-exited lanes instead of stepping
	// them to the batch's end. Occupancy is the full distribution.
	Batches            int64      `json:"batches"`
	MeanBatchOccupancy float64    `json:"meanBatchOccupancy"`
	Occupancy          StageStats `json:"batchOccupancy"`
	BatchStepsSaved    int64      `json:"batchStepsSaved"`
	// BatchKernel is the lockstep compute plane the model's batcher picked
	// at build time: "f64", or the float32 tier actually running: "f32" (pure Go), "f32-sse", or "f32-avx2".
	BatchKernel string `json:"batchKernel,omitempty"`
	// Scheduler names the steering policy resolved at Register time
	// ("adaptive(crossover=2)", "static(min=6)", "sequential").
	Scheduler string `json:"scheduler,omitempty"`
	// SchedLockstepBatches/SchedSequentialBatches count the scheduling
	// plane's verdicts for multi-request batches, and SchedReasons breaks
	// them down by decision reason (see sched.go's Reason* constants) —
	// the steering decision trace.
	SchedLockstepBatches   int64            `json:"schedLockstepBatches"`
	SchedSequentialBatches int64            `json:"schedSequentialBatches"`
	SchedReasons           map[string]int64 `json:"schedReasons,omitempty"`
	// LockstepFallbacks counts batches routed lockstep that degraded to
	// sequential because the replica could not batch.
	LockstepFallbacks int64 `json:"lockstepFallbacks"`
	// ExitHistoryHits/Misses are the exit-step history's predict
	// counters, and ExitPredictionError summarizes |predicted − actual|
	// exit steps over predicted lanes (mean/percentiles in steps).
	ExitHistoryHits     int64      `json:"exitHistoryHits"`
	ExitHistoryMisses   int64      `json:"exitHistoryMisses"`
	ExitPredictionError StageStats `json:"exitPredictionError"`
	// DedupedRequests counts requests answered by fanning out an identical
	// (image, policy) batchmate's outcome instead of simulating.
	DedupedRequests int64 `json:"dedupedRequests"`
	// EncoderCacheHits/Misses are the model's quantization-cache counters
	// (phase/TTFS input encoders; zero when the scheme has no Reset-time
	// quantization to cache).
	EncoderCacheHits   int64 `json:"encoderCacheHits"`
	EncoderCacheMisses int64 `json:"encoderCacheMisses"`
	// ResponseCacheHits/Misses are the cross-batch response cache's
	// lookup counters (hits are replayed requests served without a queue
	// slot or replica checkout).
	ResponseCacheHits   int64 `json:"responseCacheHits"`
	ResponseCacheMisses int64 `json:"responseCacheMisses"`
	// DegradedRequests counts requests served under the degraded-mode
	// tightened exit policy.
	DegradedRequests int64 `json:"degradedRequests"`
	// Live gauges, filled by the server at scrape time (zero when the
	// snapshot comes straight from Metrics.Snapshot): requests waiting in
	// the model's admission queue, replicas checked out right now, the
	// pool bound, and the degraded-mode state machine's mode
	// ("off"/"normal"/"degraded") with its smoothed queue-pressure
	// signal.
	QueueDepth    int     `json:"queueDepth"`
	PoolInFlight  int     `json:"poolInFlight"`
	PoolSize      int     `json:"poolSize"`
	DegradeMode   string  `json:"degradeMode,omitempty"`
	QueuePressure float64 `json:"queuePressure"`

	// Lifecycle: the model's current state ("resident"/"evicted", filled
	// by the server at scrape time) and how many evict/warm cycles it has
	// been through (counted in the retained accumulator, so they survive
	// the cycle they describe).
	State     string `json:"state,omitempty"`
	Evictions int64  `json:"evictions"`
	Warms     int64  `json:"warms"`

	// Fair-share gauges, filled by the server at scrape time when the
	// weighted-fair dispatcher is enabled: configured weight, normalized
	// share of the slot capacity, total slot grants, and how many of the
	// model's batches are waiting for a slot right now (the starvation
	// signal).
	FairWeight  float64 `json:"fairWeight,omitempty"`
	FairShare   float64 `json:"fairShare,omitempty"`
	FairGrants  int64   `json:"fairGrants,omitempty"`
	FairWaiting int     `json:"fairWaiting,omitempty"`
}

// stageStats summarizes one histogram; scale converts the stored unit
// to the exposed one (1e3 for seconds → milliseconds, 1 for lanes).
func stageStats(h *obs.Histogram, scale float64) StageStats {
	return StageStats{
		Count: h.Count(),
		Mean:  h.Mean() * scale,
		P50:   h.Quantile(50) * scale,
		P90:   h.Quantile(90) * scale,
		P99:   h.Quantile(99) * scale,
	}
}

// Snapshot computes the current view. Each stripe is locked only for its
// scalar reads and reservoir copy; the O(n log n) sort over the merged
// reservoirs runs outside every lock, so a /metrics scrape never stalls
// concurrent Observe calls.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	sorted := make([]float64, 0, metricsWindow)
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		s.Requests += st.requests
		s.EarlyExits += st.earlyExits
		s.MeanSteps += float64(st.stepsSum)
		s.MeanSpikes += float64(st.spikesSum)
		sorted = append(sorted, st.latencies...)
		st.mu.Unlock()
	}
	s.AdmissionErrors = m.errAdmission.Load()
	s.SheddedRequests = m.errShed.Load()
	s.SimulationErrors = m.errSim.Load()
	s.Errors = s.AdmissionErrors + s.SheddedRequests + s.SimulationErrors
	s.DegradedRequests = m.degraded.Load()
	s.Evictions = m.evictions.Load()
	s.Warms = m.warms.Load()
	if s.Requests > 0 {
		s.EarlyExitRate = float64(s.EarlyExits) / float64(s.Requests)
		s.MeanSteps /= float64(s.Requests)
		s.MeanSpikes /= float64(s.Requests)
	} else {
		s.MeanSteps, s.MeanSpikes = 0, 0
	}
	if len(sorted) > 0 {
		sort.Float64s(sorted)
		s.P50Ms = Percentile(sorted, 50)
		s.P90Ms = Percentile(sorted, 90)
		s.P99Ms = Percentile(sorted, 99)
	}
	s.Stages = make(map[string]StageStats, obs.NumStages)
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		s.Stages[st.String()] = stageStats(m.stage[st], 1e3) // seconds → ms
	}
	s.Batches = m.batches.Load()
	if s.Batches > 0 {
		s.MeanBatchOccupancy = float64(m.batchLanes.Load()) / float64(s.Batches)
	}
	s.Occupancy = stageStats(m.occupancy, 1) // unit: lanes, not ms
	s.BatchStepsSaved = m.batchStepsSaved.Load()
	s.DedupedRequests = m.deduped.Load()
	s.BatchKernel = m.BatchKernel()
	s.Scheduler = m.Scheduler()
	s.SchedLockstepBatches = m.schedLockstep.Load()
	s.SchedSequentialBatches = m.schedSequential.Load()
	m.schedMu.Lock()
	if len(m.schedReasons) > 0 {
		s.SchedReasons = make(map[string]int64, len(m.schedReasons))
		for reason, n := range m.schedReasons {
			s.SchedReasons[reason] = n
		}
	}
	m.schedMu.Unlock()
	s.LockstepFallbacks = m.lockstepFallbacks.Load()
	s.ExitPredictionError = stageStats(m.exitPredErr, 1) // unit: steps, not ms
	if h := m.exitHist.Load(); h != nil {
		s.ExitHistoryHits, s.ExitHistoryMisses = h.Stats()
	}
	if q := m.quant.Load(); q != nil {
		s.EncoderCacheHits, s.EncoderCacheMisses = q.Stats()
	}
	if c := m.respCache.Load(); c != nil {
		s.ResponseCacheHits, s.ResponseCacheMisses = c.Stats()
	}
	return s
}

// Percentile reads the p-th percentile from an ascending slice using the
// standard nearest-rank method, rank = ⌈p/100·n⌉ (also used by
// load-generator reporting). Rounding the rank to nearest instead of up
// would read one sample too low whenever p/100·n lands on (or just above)
// an integer — e.g. p99 over 100 samples must be the 99th rank
// (sorted[98])… and p100 the maximum, never beyond it.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
