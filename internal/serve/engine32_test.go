package serve

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/core"
	"burstsnn/internal/kernels"
	"burstsnn/internal/mathx"
	"burstsnn/internal/snn"
)

// hybridNet is allocNet with the hidden coding parameterized, so the
// float32 serving suite can sweep the full 24-hybrid equivalence corpus.
func hybridNet(t testing.TB, input, hidden coding.Config, seed uint64) *snn.Network {
	t.Helper()
	r := mathx.NewRNG(seed)
	randn := func(n int, std float64) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Norm(0, std)
		}
		return v
	}
	g := snn.ConvGeom{InC: 2, InH: 8, InW: 8, OutC: 4, K: 3, Stride: 1, Pad: 1}
	enc, err := coding.NewInputEncoder(input, g.InC*g.InH*g.InW, seed)
	if err != nil {
		t.Fatalf("encoder: %v", err)
	}
	denseIn := g.OutC * g.OutH() / 4 * g.OutW() / 4
	return &snn.Network{
		Encoder: enc,
		Layers: []snn.Layer{
			snn.NewSpikingConv(randn(g.OutC*g.InC*g.K*g.K, 0.35), randn(g.OutC, 0.05), g, hidden),
			snn.NewSpikingMaxPool(g.OutC, g.OutH(), g.OutW(), 2),
			snn.NewSpikingAvgPool(g.OutC, g.OutH()/2, g.OutW()/2, 2, hidden),
			snn.NewSpikingDense(randn(denseIn*12, 0.4), randn(12, 0.05), denseIn, 12, hidden),
		},
		Output: snn.NewOutputLayer(randn(12*4, 0.5), randn(4, 0.05), 12, 4),
	}
}

// TestClassifyBatch32EarlyExitEquivalence completes the float32 plane's
// tolerance contract at the serving level: across the full equivalence
// corpus (24 hybrids × B ∈ {1, 3, 8}) the float32 lockstep engine must
// produce the same prediction, the same simulated step count, the same
// early-exit flag, and the same spike counts as the float64 sequential
// engine, with margins within float32 accumulation tolerance. (The
// per-step spike-train part of the contract lives in
// snn.TestBatch32MatchesSequential.)
func TestClassifyBatch32EarlyExitEquivalence(t *testing.T) {
	inputs := []coding.Scheme{coding.Real, coding.Rate, coding.Phase, coding.TTFS}
	leaky := func(s coding.Scheme) coding.Config {
		cfg := coding.DefaultConfig(s)
		cfg.Leak = 0.05
		return cfg
	}
	hiddens := []struct {
		name string
		cfg  coding.Config
	}{
		{"rate", coding.DefaultConfig(coding.Rate)},
		{"phase", coding.DefaultConfig(coding.Phase)},
		{"burst", coding.DefaultConfig(coding.Burst)},
		{"ttfs", coding.DefaultConfig(coding.TTFS)},
		{"rate-leaky", leaky(coding.Rate)},
		{"burst-leaky", leaky(coding.Burst)},
	}
	for _, B := range []int{1, 3, 8} {
		for _, in := range inputs {
			for hi, hid := range hiddens {
				name := in.String() + "-" + hid.name
				t.Run(name+"/B="+string(rune('0'+B)), func(t *testing.T) {
					net := hybridNet(t, coding.DefaultConfig(in), hid.cfg, 0xE32+uint64(in)*64+uint64(hi)*8)
					seq, err := net.Clone()
					if err != nil {
						t.Fatalf("clone: %v", err)
					}
					bn, err := snn.NewBatchNetwork32(net, B)
					if err != nil {
						t.Fatalf("NewBatchNetwork32: %v", err)
					}
					images := make([][]float64, B)
					policies := make([]ExitPolicy, B)
					for i := range images {
						images[i] = allocImage(uint64(0xE77+i), net.Encoder.Size())
						policies[i] = ExitPolicy{MaxSteps: 48, MinSteps: 8, StableWindow: 6}
					}
					if B == 8 {
						// Vary the policies like the float64 suite does.
						policies[1].StableWindow = 3
						policies[2] = ExitPolicy{MaxSteps: 24}
						policies[3].MinSteps = 16
					}
					outs, _ := ClassifyBatch(bn, images, policies)
					for i := range images {
						want := Classify(seq, images[i], policies[i])
						got := outs[i]
						if got.Prediction != want.Prediction || got.Steps != want.Steps ||
							got.EarlyExit != want.EarlyExit {
							t.Fatalf("lane %d: f32 %+v, f64 %+v", i, got, want)
						}
						if got.InputSpikes != want.InputSpikes || got.HiddenSpikes != want.HiddenSpikes {
							t.Fatalf("lane %d: spikes f32 %d/%d f64 %d/%d",
								i, got.InputSpikes, got.HiddenSpikes, want.InputSpikes, want.HiddenSpikes)
						}
						if d := math.Abs(got.Margin - want.Margin); d > 1e-3*math.Max(1, math.Abs(want.Margin)) {
							t.Fatalf("lane %d: margin f32 %v f64 %v", i, got.Margin, want.Margin)
						}
					}
				})
			}
		}
	}
}

// TestClassifyBatch32CrossTier closes the conformance loop at the
// serving level: the full early-exit engine — argmax polling, stability
// windows, margins, lane retirement — must produce exactly the same
// Outcome under every available kernel dispatch tier, Margin included
// (the tiers compute identical rounded float32 operations, so even the
// derived float64 margin is bit-equal). Mixed per-lane policies force
// staggered retirements so the compaction paths run under every tier
// too.
func TestClassifyBatch32CrossTier(t *testing.T) {
	levels := kernels.Available()
	if len(levels) < 2 {
		t.Skipf("single-tier build (%v)", levels)
	}
	defer kernels.ForceLevel("")
	hybrids := []struct {
		in, hid coding.Scheme
	}{
		{coding.Phase, coding.Burst},
		{coding.Rate, coding.Rate},
		{coding.Real, coding.Phase},
		{coding.TTFS, coding.Burst},
	}
	const B = 8
	for _, h := range hybrids {
		t.Run(h.in.String()+"-"+h.hid.String(), func(t *testing.T) {
			net := hybridNet(t, coding.DefaultConfig(h.in), coding.DefaultConfig(h.hid), 0xC2055)
			images := make([][]float64, B)
			policies := make([]ExitPolicy, B)
			for i := range images {
				images[i] = allocImage(uint64(0xC77+i), net.Encoder.Size())
				policies[i] = ExitPolicy{MaxSteps: 48, MinSteps: 8, StableWindow: 6}
			}
			policies[1].StableWindow = 3
			policies[2] = ExitPolicy{MaxSteps: 24}
			policies[3].MinSteps = 16
			policies[4].Margin = 0.01
			var ref []Outcome
			var refSteps int
			for li, lv := range levels {
				if err := kernels.ForceLevel(lv); err != nil {
					t.Fatal(err)
				}
				bn, err := snn.NewBatchNetwork32(net, B)
				if err != nil {
					t.Fatalf("NewBatchNetwork32: %v", err)
				}
				outs, steps := ClassifyBatch(bn, images, policies)
				if li == 0 {
					ref, refSteps = outs, steps
					continue
				}
				if steps != refSteps {
					t.Fatalf("tier %s: batch steps %d, %s %d", lv, steps, levels[0], refSteps)
				}
				for i := range ref {
					if outs[i] != ref[i] {
						t.Fatalf("lane %d: tier %s %+v, %s %+v", i, lv, outs[i], levels[0], ref[i])
					}
				}
			}
		})
	}
}

// TestMetricsReportsDispatchTier pins the observability half of the
// dispatch ladder: /metrics must name the tier the model's kernels
// actually run on — for every forceable tier, the registered model's
// batchKernel snapshot equals kernels.Kind() at registration time, and
// the f64 plane stays "f64" regardless of tier.
func TestMetricsReportsDispatchTier(t *testing.T) {
	defer kernels.ForceLevel("")
	wantKind := map[string]string{
		kernels.LevelPurego: "f32",
		kernels.LevelSSE:    "f32-sse",
		kernels.LevelAVX2:   "f32-avx2",
	}
	for _, lv := range kernels.Available() {
		if err := kernels.ForceLevel(lv); err != nil {
			t.Fatal(err)
		}
		m := NewMetrics()
		m.SetBatchKernel(resolvedKernel(BatchKernelF32))
		if got := m.Snapshot().BatchKernel; got != wantKind[lv] || got != kernels.Kind() {
			t.Fatalf("tier %s: batchKernel = %q, want %q (= kernels.Kind() %q)",
				lv, got, wantKind[lv], kernels.Kind())
		}
		m.SetBatchKernel(resolvedKernel(BatchKernelF64))
		if got := m.Snapshot().BatchKernel; got != "f64" {
			t.Fatalf("tier %s: f64 plane batchKernel = %q", lv, got)
		}
	}
}

// TestLockstepAutoResolution pins the scheduler-resolution rule: the
// auto default installs the adaptive occupancy controller exactly when
// the float32 kernels dispatch to a packed tier (sse or avx2 — the only
// regime where lockstep can beat the sequential engine), static keeps
// the fixed ≥6-request rule on packed tiers, and explicit on/off always
// win with the forced static thresholds.
func TestLockstepAutoResolution(t *testing.T) {
	defer kernels.ForceLevel("")
	net, set := testModel(t)
	for _, lv := range kernels.Available() {
		if err := kernels.ForceLevel(lv); err != nil {
			t.Fatal(err)
		}
		packed := lv != kernels.LevelPurego
		for _, mode := range []string{LockstepAuto, LockstepStatic, LockstepOn, LockstepOff} {
			s := New(Config{LockstepBatch: mode})
			if _, err := s.Register(ModelConfig{
				Name:        "digits",
				Hybrid:      core.NewHybrid(coding.Phase, coding.Burst),
				Steps:       testSteps,
				Replicas:    1,
				NormSamples: 16,
			}, net, set.Train); err != nil {
				t.Fatalf("tier %s mode %s: %v", lv, mode, err)
			}
			s.mu.Lock()
			sched := s.entries["digits"].batcher.sched
			s.mu.Unlock()
			switch {
			case mode == LockstepAuto && packed:
				if _, ok := sched.(*AdaptiveSched); !ok {
					t.Fatalf("tier %s mode %s: scheduler = %T, want *AdaptiveSched", lv, mode, sched)
				}
			default:
				want := 0
				switch {
				case mode == LockstepOn:
					want = 2
				case mode == LockstepStatic && packed:
					want = autoLockstepMinLanes
				}
				st, ok := sched.(*StaticSched)
				if !ok {
					t.Fatalf("tier %s mode %s: scheduler = %T, want *StaticSched", lv, mode, sched)
				}
				if st.Min() != want {
					t.Fatalf("tier %s mode %s: static min = %v, want %v", lv, mode, st.Min(), want)
				}
			}
			_ = s.Shutdown(context.Background())
		}
	}
	s := New(Config{LockstepBatch: "sometimes"})
	if _, err := s.Register(ModelConfig{
		Name:        "digits",
		Hybrid:      core.NewHybrid(coding.Phase, coding.Burst),
		Steps:       testSteps,
		NormSamples: 16,
	}, net, set.Train); err == nil {
		t.Fatal("invalid LockstepBatch value accepted")
	}
}

// TestBatcherRunsF32Lockstep pins the serving integration of the float32
// plane: a batcher built on the f32 kernel (the server default) executes
// microbatches through BatchNetwork32 and every request receives the
// outcome the sequential engine produces (the corpus part of the
// tolerance contract), with the batch gauges advancing.
func TestBatcherRunsF32Lockstep(t *testing.T) {
	pool, image := testPool(t, 1)
	metrics := NewMetrics()
	images := make([][]float64, 4)
	for i := range images {
		img := append([]float64(nil), image...)
		for j := 0; j <= i; j++ {
			img[j*7] = float64(j+1) / 8
		}
		images[i] = img
	}
	policy := ExitPolicy{MaxSteps: 48, MinSteps: 8, StableWindow: 6}
	want := make([]Outcome, len(images))
	func() {
		rep, err := pool.Get(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Put(rep)
		for i, img := range images {
			want[i] = Classify(rep.Net, img, policy)
		}
	}()

	b := NewBatcher(pool, BatcherConfig{
		Metrics: metrics, Sched: NewStaticSched(2), F32: true, MaxBatch: 4, MaxDelay: 300 * time.Millisecond,
	})
	defer b.Close()
	var wg sync.WaitGroup
	for i := range images {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := b.Submit(context.Background(), images[i], policy)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if out.Prediction != want[i].Prediction || out.Steps != want[i].Steps ||
				out.EarlyExit != want[i].EarlyExit ||
				out.InputSpikes != want[i].InputSpikes || out.HiddenSpikes != want[i].HiddenSpikes {
				t.Errorf("request %d: f32 batched %+v, sequential %+v", i, out, want[i])
			}
		}(i)
	}
	wg.Wait()
	if s := metrics.Snapshot(); s.Batches < 1 {
		t.Errorf("no f32 lockstep batches recorded: %+v", s)
	}
}

// TestBatcherDedupesIdenticalRequests checks the duplicate fan-out: a
// microbatch carrying several identical (image, policy) requests — plus
// distinct ones and a same-image/different-policy pair — simulates each
// unique request once, answers every duplicate with its representative's
// outcome, and counts the fan-outs in dedupedRequests.
func TestBatcherDedupesIdenticalRequests(t *testing.T) {
	for _, lockstepMin := range []int{0, 2} {
		name := "sequential"
		if lockstepMin > 0 {
			name = "lockstep"
		}
		t.Run(name, func(t *testing.T) {
			pool, image := testPool(t, 1)
			metrics := NewMetrics()
			distinct := append([]float64(nil), image...)
			distinct[3] = 0.5
			policyA := ExitPolicy{MaxSteps: 48, MinSteps: 8, StableWindow: 6}
			policyB := ExitPolicy{MaxSteps: 32, MinSteps: 8, StableWindow: 6}
			var wantSame, wantDistinct, wantB Outcome
			func() {
				rep, err := pool.Get(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				defer pool.Put(rep)
				wantSame = Classify(rep.Net, image, policyA)
				wantDistinct = Classify(rep.Net, distinct, policyA)
				wantB = Classify(rep.Net, image, policyB)
			}()

			var sched Scheduler
			if lockstepMin > 0 {
				sched = NewStaticSched(lockstepMin)
			}
			b := NewBatcher(pool, BatcherConfig{
				Metrics: metrics, Sched: sched, MaxBatch: 8, MaxDelay: 300 * time.Millisecond,
			})
			defer b.Close()
			type sub struct {
				image  []float64
				policy ExitPolicy
				want   Outcome
			}
			subs := []sub{
				{image, policyA, wantSame},
				{image, policyA, wantSame},                            // duplicate
				{append([]float64(nil), image...), policyA, wantSame}, // duplicate (distinct backing array)
				{distinct, policyA, wantDistinct},
				{image, policyB, wantB}, // same image, different policy: NOT a duplicate
			}
			var wg sync.WaitGroup
			for i, s := range subs {
				wg.Add(1)
				go func(i int, s sub) {
					defer wg.Done()
					out, err := b.Submit(context.Background(), s.image, s.policy)
					if err != nil {
						t.Errorf("submit %d: %v", i, err)
						return
					}
					if out != s.want {
						t.Errorf("request %d: got %+v, want %+v", i, out, s.want)
					}
				}(i, s)
			}
			wg.Wait()
			s := metrics.Snapshot()
			if s.DedupedRequests != 2 {
				t.Errorf("dedupedRequests = %d, want 2: %+v", s.DedupedRequests, s)
			}
		})
	}
}
