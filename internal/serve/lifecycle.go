// Model lifecycle: the server-side state machine behind registration,
// hot swap, unregistration, eviction, and warm-on-demand.
//
//	        Register                    Evict / idle / LRU
//	(none) ─────────▶ resident ──────────────────────▶ evicted
//	                    ▲   │ Register (hot swap:            │
//	                    │   │ atomic entry replace +         │
//	                    │   ▼ queue handoff)                 │
//	                    └── resident ◀──────────────────────┘
//	                            warm (singleflight restore
//	                             from the cached conversion)
//
//	resident ──Unregister──▶ (none)      evicted ──Unregister──▶ (none)
//
// Invariants: Classify resolves exactly one entry — an atomically
// installed (model, batcher) pair — per attempt, so no request can mix
// two registrations' state; every transition out of resident drains the
// queue (graceful execute on evict/unregister, handoff re-submit on hot
// swap), so lifecycle transitions cost clients latency, never errors;
// eviction releases the replica pool but archives the conversion and
// metrics, so warming is a pool rebuild (no re-convert) and counters are
// continuous across the cycle.
package serve

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// entry pairs a resident model with its request queue. The pair is
// installed and replaced as a unit under the server mutex; lastUse is
// the LRU clock for the resident bound and idle evictor.
type entry struct {
	model   *Model
	batcher *Batcher
	lastUse atomic.Int64 // UnixNano of the last Classify touch
}

func (e *entry) touch() { e.lastUse.Store(time.Now().UnixNano()) }

// warmOp is one singleflight warm of an evicted model: the leader's
// goroutine restores and installs, every waiter (leader included)
// selects on done against its own context.
type warmOp struct {
	done chan struct{}
	e    *entry
	err  error
}

// errStaleWarm aborts a warm install whose name saw another install or a
// removal since the warm was claimed: the restored model reflects a
// superseded archive entry and must not clobber the current state. Never
// surfaces to callers — the resolve loop re-observes and retries.
var errStaleWarm = errors.New("serve: warm superseded by a concurrent install or removal")

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// resolveEntry returns the live entry for name, transparently warming an
// evicted model back in (the caller blocks behind the singleflight
// restore, bounded by its ctx). Unknown names fail with the same error
// Registry.Get reports.
func (s *Server) resolveEntry(ctx context.Context, name string) (*entry, error) {
	for {
		s.mu.Lock()
		if e := s.entries[name]; e != nil {
			s.mu.Unlock()
			return e, nil
		}
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		if !s.reg.Archived(name) {
			s.mu.Unlock()
			return nil, errUnknownModel(name)
		}
		op := s.warming[name]
		if op == nil {
			op = &warmOp{done: make(chan struct{})}
			s.warming[name] = op
			// The restore runs detached from the claiming request: the
			// leader's deadline must not strand followers mid-warm, and the
			// leader itself waits below exactly like a follower, so an
			// expired context returns promptly while the warm completes in
			// the background. The epoch is sampled here, under the same
			// critical section that observed "no entry, archived".
			go s.runWarm(name, op, s.epochs[name])
		}
		s.mu.Unlock()
		select {
		case <-op.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if op.err != nil {
			return nil, op.err
		}
		if op.e != nil {
			return op.e, nil
		}
		// The warm raced a removal or a concurrent install; loop and
		// re-resolve from scratch.
	}
}

// runWarm is the warm leader's body. The warmOp is resolved — deleted
// from s.warming and its done channel closed — BEFORE the resident bound
// is enforced: enforceResidentBound can block in remove() on some other
// name's in-flight warm, and if this op were still open that warm's own
// bound enforcement could symmetrically block on us (the cross-warm
// deadlock under MaxResidentModels).
func (s *Server) runWarm(name string, op *warmOp, epoch uint64) {
	op.e, op.err = s.warm(name, epoch)
	s.mu.Lock()
	delete(s.warming, name)
	s.mu.Unlock()
	close(op.done)
	if op.err == nil && op.e != nil {
		s.enforceResidentBound(name)
	}
}

// warm restores an evicted model from its archived conversion and makes
// it resident again. The restore skips conversion entirely — only the
// replica pool is rebuilt — and the installed model re-adopts the
// archived metrics, so counters are continuous across the cycle. The
// install is epoch-guarded: if any other install or removal touched the
// name between the leader claiming the warm and the restore finishing
// (e.g. an explicit Register with fresh weights), the restored model is
// dropped instead of clobbering the newer state, and (nil, nil) sends
// the resolve loop back to re-observe.
func (s *Server) warm(name string, epoch uint64) (*entry, error) {
	c, err := s.buildCollaborators()
	if err != nil {
		return nil, err
	}
	m, err := s.reg.Restore(name)
	if err != nil {
		return nil, err
	}
	e, err := s.installModelAt(m, c, epoch, true)
	if errors.Is(err, errStaleWarm) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	e.model.Metrics().ObserveWarm()
	return e, nil
}

// installModel makes a prepared (or restored) model resident. The
// registry install, metric attachments, batcher creation, and entry swap
// all happen under one critical section — the atomic (model, batcher)
// swap that closes the stale-weights window. The displaced batcher, if
// any, hands its queued requests to the new one outside the lock.
func (s *Server) installModel(m *Model, c collaborators) (*entry, error) {
	return s.installModelAt(m, c, 0, false)
}

// installModelAt is installModel with an optional lifecycle-epoch guard:
// with guard set, the install aborts (errStaleWarm) unless the name's
// epoch still equals epoch — i.e. no other install or removal has
// touched the name since the caller sampled it. Every successful install
// advances the epoch, so in-flight guarded installs for the name abort.
func (s *Server) installModelAt(m *Model, c collaborators, epoch uint64, guard bool) (*entry, error) {
	name := m.Config().Name
	var fair *FairSlot
	if s.fair != nil {
		fair = s.fair.Slot(name, s.cfg.ModelWeights[name])
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if guard && s.epochs[name] != epoch {
		s.mu.Unlock()
		return nil, errStaleWarm
	}
	s.epochs[name]++
	old := s.entries[name]
	// Install first: the new model adopts the prior registration's (or
	// archive's) metrics here, so the batcher below observes into the
	// accumulator the model will actually expose.
	s.reg.Install(m)
	m.Metrics().SetBatchKernel(resolvedKernel(s.cfg.BatchKernel))
	m.Metrics().SetScheduler(c.sched.Name())
	m.Metrics().AttachExitHistory(c.history)
	m.Metrics().AttachResponseCache(c.cache)
	e := &entry{
		model: m,
		batcher: NewBatcher(m.Pool(), BatcherConfig{
			Metrics:       m.Metrics(),
			Sched:         c.sched,
			History:       c.history,
			Cache:         c.cache,
			Degrade:       c.degrade,
			Fair:          fair,
			F32:           c.f32,
			MaxBatch:      s.cfg.MaxBatch,
			MaxDelay:      s.cfg.MaxDelay,
			QueueDepth:    s.cfg.QueueDepth,
			InjectLatency: s.cfg.InjectLatency,
		}),
	}
	e.touch()
	s.entries[name] = e
	s.mu.Unlock()
	if old != nil {
		// Hot swap drain: everything queued on the old registration
		// re-submits to the new one — clients see latency, not errors.
		old.batcher.CloseHandoff(e.batcher)
	}
	return e, nil
}

// enforceResidentBound evicts least-recently-used models until the
// resident count fits Config.MaxResidentModels. keep (the name just
// installed) is never the victim, so a warm cannot immediately evict
// itself into a livelock.
func (s *Server) enforceResidentBound(keep string) {
	limit := s.cfg.MaxResidentModels
	if limit <= 0 {
		return
	}
	for {
		victim := ""
		var oldest int64
		s.mu.Lock()
		if len(s.entries) > limit {
			for name, e := range s.entries {
				if name == keep {
					continue
				}
				if t := e.lastUse.Load(); victim == "" || t < oldest {
					victim, oldest = name, t
				}
			}
		}
		s.mu.Unlock()
		if victim == "" {
			return
		}
		_ = s.Evict(victim)
	}
}

// Unregister removes a model entirely: admission stops, queued requests
// finish on the still-live pool, then the pool, the registration, and
// any archived conversion are released. The name 404s afterwards.
func (s *Server) Unregister(name string) error { return s.remove(name, false) }

// Evict unregisters but archives: the cached conversion and metrics are
// retained (and stay visible in /metrics as state "evicted"), and the
// next Classify for the name warms the model back in.
func (s *Server) Evict(name string) error { return s.remove(name, true) }

func (s *Server) remove(name string, evict bool) error {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		if op := s.warming[name]; op != nil {
			// A warm for this name is mid-install: wait for it so the
			// removal drains the entry it is about to create instead of
			// racing it back to residency. Safe to block on — warmOps
			// resolve before any eviction they trigger (see runWarm), so
			// no warm's completion can transitively wait on this remove.
			s.mu.Unlock()
			<-op.done
			continue
		}
		if _, err := s.reg.Unregister(name, evict); err != nil {
			s.mu.Unlock()
			return err
		}
		// Advance the epoch so a warm claimed before this removal cannot
		// install its now-superseded restore afterwards.
		s.epochs[name]++
		e := s.entries[name]
		delete(s.entries, name)
		s.mu.Unlock()
		if e != nil {
			// Graceful drain: queued work executes on the pool before the
			// last reference to it is dropped.
			e.batcher.CloseGraceful()
			if evict {
				e.model.Metrics().ObserveEviction()
			}
		}
		if s.fair != nil && !evict {
			// Fair-share state survives eviction (the model will be back)
			// but not full unregistration. Removed only after the drain
			// above — draining batches still acquire slots.
			s.fair.Remove(name)
		}
		return nil
	}
}

// evictIdleLoop is the idle evictor: every quarter of Config.EvictIdle
// it evicts models whose last Classify is older than the window.
func (s *Server) evictIdleLoop() {
	defer close(s.evictDone)
	tick := s.cfg.EvictIdle / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.evictStop:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-s.cfg.EvictIdle).UnixNano()
		var victims []string
		s.mu.Lock()
		for name, e := range s.entries {
			if e.lastUse.Load() < cutoff {
				victims = append(victims, name)
			}
		}
		s.mu.Unlock()
		for _, name := range victims {
			_ = s.Evict(name)
		}
	}
}

// lifecycleCounts reports the server's resident/evicted/warming model
// counts (the /healthz and /metrics lifecycle gauges).
func (s *Server) lifecycleCounts() (resident, evicted, warming int) {
	s.mu.Lock()
	resident = len(s.entries)
	warming = len(s.warming)
	s.mu.Unlock()
	evicted = len(s.reg.ArchivedStats())
	return resident, evicted, warming
}

// statRow is one exposition row: a known model's metrics plus whatever
// live state it has. Evicted models carry retained metrics with a nil
// pool and batcher.
type statRow struct {
	name    string
	state   string
	met     *Metrics
	pool    *Pool    // nil when evicted
	batcher *Batcher // nil when evicted
}

// statRows lists every known model, resident entries first-hand and
// evicted ones from the registry archive, sorted by name. A model caught
// mid-eviction may appear with either state; it never appears twice.
func (s *Server) statRows() []statRow {
	s.mu.Lock()
	rows := make([]statRow, 0, len(s.entries))
	seen := make(map[string]bool, len(s.entries))
	for name, e := range s.entries {
		rows = append(rows, statRow{
			name: name, state: StateResident,
			met: e.model.Metrics(), pool: e.model.Pool(), batcher: e.batcher,
		})
		seen[name] = true
	}
	s.mu.Unlock()
	for name, met := range s.reg.ArchivedStats() {
		if !seen[name] {
			rows = append(rows, statRow{name: name, state: StateEvicted, met: met})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

// fillSnapshot materializes one row's Snapshot with the live gauges
// (queue, pool, degrade, fair share) only a scrape-time reader can fill.
func (s *Server) fillSnapshot(row statRow) Snapshot {
	snap := row.met.Snapshot()
	snap.State = row.state
	snap.DegradeMode = "off"
	if row.batcher != nil {
		snap.QueueDepth = row.batcher.QueueDepth()
		snap.DegradeMode, snap.QueuePressure = row.batcher.DegradeState()
	}
	if row.pool != nil {
		snap.PoolInFlight = row.pool.InFlight()
		snap.PoolSize = row.pool.Size()
	}
	if s.fair != nil {
		if fs, ok := s.fair.Stats(row.name); ok {
			snap.FairWeight = fs.Weight
			snap.FairShare = fs.Share
			snap.FairGrants = fs.Grants
			snap.FairWaiting = fs.Waiting
		}
	}
	return snap
}

// handleUnregister serves DELETE /v1/models/{name}: mode=evict archives
// (the default removes the model for good). 404 strictly for unknown
// names; shutdown and any other failure report 503 — the server is
// declining, not denying the model exists.
func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	evict := r.URL.Query().Get("mode") == "evict"
	var err error
	if evict {
		err = s.Evict(name)
	} else {
		err = s.Unregister(name)
	}
	if err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, ErrUnknownModel) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	state := "unregistered"
	if evict {
		state = StateEvicted
	}
	writeJSON(w, http.StatusOK, map[string]string{"model": name, "state": state})
}
