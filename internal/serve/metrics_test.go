package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"burstsnn/internal/obs"
)

// TestPercentileNearestRank pins the standard ceil nearest-rank method,
// rank = ⌈p/100·n⌉, over the window sizes the reservoir actually sees.
// The old round-half-up rank read one sample low whenever p/100·n had a
// fractional part below 0.5 (e.g. p99 over the full 4096-entry window).
func TestPercentileNearestRank(t *testing.T) {
	seq := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i + 1) // sorted 1..n, so value == 1-based rank
		}
		return s
	}
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"empty", nil, 99, 0},
		{"n=1 p50", seq(1), 50, 1},
		{"n=1 p90", seq(1), 90, 1},
		{"n=1 p99", seq(1), 99, 1},
		{"n=4 p50", seq(4), 50, 2},
		{"n=4 p90", seq(4), 90, 4},
		{"n=100 p50", seq(100), 50, 50},
		{"n=100 p90", seq(100), 90, 90},
		{"n=100 p99", seq(100), 99, 99},
		{"n=100 p100", seq(100), 100, 100},
		// Full reservoir: 0.99·4096 = 4055.04, so the nearest rank is
		// 4056; the old rounding read 4055.
		{"n=4096 p50", seq(4096), 50, 2048},
		{"n=4096 p90", seq(4096), 90, 3687},
		{"n=4096 p99", seq(4096), 99, 4056},
		{"n=4096 p0", seq(4096), 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Percentile(c.sorted, c.p); got != c.want {
				t.Errorf("Percentile(n=%d, p=%v) = %v, want %v", len(c.sorted), c.p, got, c.want)
			}
		})
	}
}

// TestSnapshotDoesNotBlockObserve floods the metrics with concurrent
// Observes while scraping Snapshots, as a /metrics endpoint under load
// does; it guards liveness (and runs under -race in CI).
func TestSnapshotDoesNotBlockObserve(t *testing.T) {
	m := NewMetrics()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			m.Observe(Outcome{Steps: 10, HiddenSpikes: 3}, time.Duration(i)*time.Microsecond)
		}
	}()
	for i := 0; i < 200; i++ {
		m.Snapshot()
	}
	<-done
	if s := m.Snapshot(); s.Requests != 2000 {
		t.Fatalf("requests = %d, want 2000", s.Requests)
	}
}

// TestMetricsStripeSize pins the false-sharing pad: stripes must occupy
// whole cache lines or neighboring stripes in the slice bounce shared
// lines under round-robin Observes.
func TestMetricsStripeSize(t *testing.T) {
	if sz := unsafe.Sizeof(metricsStripe{}); sz%64 != 0 {
		t.Errorf("metricsStripe is %d bytes, want a multiple of 64", sz)
	}
}

// TestMetricsBatchGauges pins the batch-execution gauges and the
// encoder-cache passthrough.
func TestMetricsBatchGauges(t *testing.T) {
	m := NewMetrics()
	m.ObserveBatch(4, 30) // 4 lanes, 30 lockstep steps saved by retirement
	m.ObserveBatch(8, 50)
	s := m.Snapshot()
	if s.Batches != 2 {
		t.Errorf("batches = %d, want 2", s.Batches)
	}
	if s.MeanBatchOccupancy != 6 {
		t.Errorf("mean occupancy = %v, want 6", s.MeanBatchOccupancy)
	}
	if s.BatchStepsSaved != 80 {
		t.Errorf("steps saved = %d, want 80", s.BatchStepsSaved)
	}
	if s.EncoderCacheHits != 0 || s.EncoderCacheMisses != 0 {
		t.Errorf("cache counters with no cache attached: %+v", s)
	}
}

// TestStripedObserveCountsExact floods Observe from many goroutines and
// checks nothing is lost across the stripes.
func TestStripedObserveCountsExact(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Observe(Outcome{Steps: 7, HiddenSpikes: 3, EarlyExit: true}, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Requests != workers*per {
		t.Fatalf("requests = %d, want %d", s.Requests, workers*per)
	}
	if s.MeanSteps != 7 || s.MeanSpikes != 3 || s.EarlyExitRate != 1 {
		t.Fatalf("aggregates wrong: %+v", s)
	}
	if s.P50Ms != 1 || s.P99Ms != 1 {
		t.Fatalf("percentiles wrong: %+v", s)
	}
}

// BenchmarkObserveParallel measures contended Observe throughput with a
// single-stripe reservoir (the pre-striping design: one mutex, one ring)
// against the striped default — the win the sharding buys under
// concurrent serving load.
func BenchmarkObserveParallel(b *testing.B) {
	for _, stripes := range []int{1, metricsStripes} {
		name := "stripes=1"
		if stripes != 1 {
			name = "stripes=default"
		}
		b.Run(name, func(b *testing.B) {
			m := newMetricsStriped(stripes)
			o := Outcome{Steps: 10, HiddenSpikes: 5}
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					m.Observe(o, time.Millisecond)
				}
			})
		})
	}
}

// BenchmarkObserveDuringScrape measures Observe latency while a
// background goroutine scrapes Snapshot in a tight loop — the case the
// Snapshot critical-section fix targets. With the sort inside the lock a
// scrape held the mutex for the whole O(n log n) pass over the 4096-entry
// reservoir and every Observe stalled behind it; with copy-then-sort the
// lock covers only the scalar reads and one memmove.
func BenchmarkObserveDuringScrape(b *testing.B) {
	m := NewMetrics()
	for i := 0; i < metricsWindow; i++ { // start from a full reservoir
		m.Observe(Outcome{Steps: 10}, time.Duration(i)*time.Microsecond)
	}
	var stop atomic.Bool
	scraping := make(chan struct{})
	go func() {
		close(scraping)
		for !stop.Load() {
			m.Snapshot()
		}
	}()
	<-scraping
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(Outcome{Steps: 10, HiddenSpikes: 5}, time.Millisecond)
	}
	b.StopTimer()
	stop.Store(true)
}

// BenchmarkSnapshot measures a full scrape against a full reservoir.
func BenchmarkSnapshot(b *testing.B) {
	m := NewMetrics()
	for i := 0; i < metricsWindow; i++ {
		m.Observe(Outcome{Steps: 10}, time.Duration(i)*time.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Snapshot()
	}
}

// BenchmarkObserveStages pins the per-request cost of the stage
// histograms added to the hot path: six bucket searches plus atomic adds,
// no locks, no allocations (the benchmark fails the alloc report if that
// regresses).
func BenchmarkObserveStages(b *testing.B) {
	m := NewMetrics()
	st := obs.StageTimes{
		Queue:    500 * time.Microsecond,
		Form:     100 * time.Microsecond,
		Encode:   50 * time.Microsecond,
		Simulate: 3 * time.Millisecond,
		Readout:  20 * time.Microsecond,
		Lanes:    1,
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.ObserveStages(st, 4*time.Millisecond)
		}
	})
}
