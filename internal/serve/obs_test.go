package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"burstsnn/internal/obs"
)

// classifySome pushes n distinct test images through the server.
func classifySome(t *testing.T, s *Server, n int) []ClassifyResult {
	t.Helper()
	_, set := testModel(t)
	out := make([]ClassifyResult, 0, n)
	for i := 0; i < n; i++ {
		res, err := s.Classify(context.Background(), ClassifyRequest{
			Model: "digits", Image: set.Test[i%len(set.Test)].Image,
		})
		if err != nil {
			t.Fatalf("Classify %d: %v", i, err)
		}
		out = append(out, res)
	}
	return out
}

func TestRequestIDAndTraceRing(t *testing.T) {
	s := testServer(t, Config{})
	results := classifySome(t, s, 6)
	seen := map[string]bool{}
	for _, res := range results {
		if res.RequestID == "" {
			t.Fatal("RequestID empty with tracing enabled")
		}
		if seen[res.RequestID] {
			t.Fatalf("duplicate RequestID %q", res.RequestID)
		}
		seen[res.RequestID] = true
	}
	traces := s.Traces().Recent(0)
	if len(traces) != len(results) {
		t.Fatalf("ring holds %d traces, want %d", len(traces), len(results))
	}
	byID := map[string]obs.Trace{}
	for _, tr := range traces {
		byID[tr.ID] = tr
	}
	for _, res := range results {
		tr, ok := byID[res.RequestID]
		if !ok {
			t.Fatalf("result id %q missing from ring", res.RequestID)
		}
		if tr.Model != "digits" || tr.Prediction != res.Prediction || tr.Steps != res.Steps {
			t.Errorf("trace %q = %+v does not match result %+v", res.RequestID, tr, res)
		}
		if tr.SimulateMs <= 0 || tr.EncodeMs <= 0 || tr.TotalMs <= 0 {
			t.Errorf("trace %q missing stage spans: %+v", res.RequestID, tr)
		}
		if tr.QueueMs < 0 || tr.TotalMs < tr.SimulateMs {
			t.Errorf("trace %q spans inconsistent: %+v", res.RequestID, tr)
		}
	}
}

func TestTracingDisabled(t *testing.T) {
	s := testServer(t, Config{TraceCapacity: -1})
	res := classifySome(t, s, 1)[0]
	if res.RequestID != "" {
		t.Errorf("RequestID %q with tracing disabled", res.RequestID)
	}
	if s.Traces() != nil {
		t.Error("Traces() non-nil with tracing disabled")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/trace with tracing disabled = %s, want 404", resp.Status)
	}
}

func TestSlowTracePinning(t *testing.T) {
	// Any measurable request is "slow" at a 1ns threshold.
	s := testServer(t, Config{SlowTraceThreshold: time.Nanosecond})
	classifySome(t, s, 3)
	slow := s.Traces().Slow()
	if len(slow) != 3 {
		t.Fatalf("pinned %d slow traces, want 3", len(slow))
	}
	for _, tr := range slow {
		if !tr.Slow {
			t.Errorf("pinned trace %q not marked slow", tr.ID)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	classifySome(t, s, 5)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/trace?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Recent          []obs.Trace `json:"recent"`
		Slow            []obs.Trace `json:"slow"`
		SlowThresholdMs float64     `json:"slowThresholdMs"`
		Capacity        int         `json:"capacity"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(page.Recent) != 3 {
		t.Fatalf("recent = %d traces, want 3 (n=3)", len(page.Recent))
	}
	if page.SlowThresholdMs != 250 {
		t.Errorf("slowThresholdMs = %v, want default 250", page.SlowThresholdMs)
	}
	if page.Capacity < 3 {
		t.Errorf("capacity = %d", page.Capacity)
	}

	if resp, err = http.Get(ts.URL + "/v1/trace?n=bogus"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n = %s, want 400", resp.Status)
	}
}

func TestErrorSplitCounters(t *testing.T) {
	s := testServer(t, Config{})
	m, err := s.Registry().Get("digits")
	if err != nil {
		t.Fatal(err)
	}
	// Validation rejections are admission errors.
	if _, err := s.Classify(context.Background(), ClassifyRequest{
		Model: "digits", Image: []float64{1, 2, 3},
	}); err == nil {
		t.Fatal("short image accepted")
	}
	if _, err := s.Classify(context.Background(), ClassifyRequest{
		Model: "digits", Image: make([]float64, 28*28), MaxSteps: -1,
	}); err == nil {
		t.Fatal("negative MaxSteps accepted")
	}
	// An already-canceled context counts as a shed: the caller's deadline
	// budget was gone before the request reached a replica.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Classify(ctx, ClassifyRequest{
		Model: "digits", Image: make([]float64, 28*28),
	}); err == nil {
		t.Fatal("canceled context classified")
	}
	snap := m.Metrics().Snapshot()
	if snap.AdmissionErrors != 2 {
		t.Errorf("AdmissionErrors = %d, want 2", snap.AdmissionErrors)
	}
	if snap.SheddedRequests != 1 {
		t.Errorf("SheddedRequests = %d, want 1 (canceled context)", snap.SheddedRequests)
	}
	if snap.SimulationErrors != 0 {
		t.Errorf("SimulationErrors = %d, want 0", snap.SimulationErrors)
	}
	if snap.Errors != 3 {
		t.Errorf("Errors = %d, want 3 (sum of the split)", snap.Errors)
	}
}

func TestMetricsStagesAndGauges(t *testing.T) {
	s := testServer(t, Config{})
	classifySome(t, s, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Models map[string]Snapshot `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatalf("decode: %v", err)
	}
	snap, ok := page.Models["digits"]
	if !ok {
		t.Fatal("no digits snapshot")
	}
	for _, stage := range []string{"queue", "form", "encode", "simulate", "readout", "total"} {
		st, ok := snap.Stages[stage]
		if !ok {
			t.Fatalf("stage %q missing from snapshot", stage)
		}
		if st.Count != 4 {
			t.Errorf("stage %q count = %d, want 4", stage, st.Count)
		}
	}
	if sim := snap.Stages["simulate"]; sim.Mean <= 0 || sim.P99 < sim.P50 {
		t.Errorf("simulate stats implausible: %+v", sim)
	}
	if snap.PoolSize != 4 {
		t.Errorf("PoolSize = %d, want 4 replicas", snap.PoolSize)
	}
	if snap.QueueDepth != 0 || snap.PoolInFlight != 0 {
		t.Errorf("idle gauges = depth %d, in-flight %d, want 0", snap.QueueDepth, snap.PoolInFlight)
	}
}

func TestHealthzInfo(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status     string  `json:"status"`
		UptimeSec  float64 `json:"uptimeSec"`
		GoVersion  string  `json:"goVersion"`
		Goroutines int     `json:"goroutines"`
		Models     int     `json:"models"`
		Kernels    struct {
			Active   string `json:"active"`
			Detected string `json:"detected"`
		} `json:"kernels"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Status != "ok" || h.Models != 1 || h.Goroutines < 1 {
		t.Errorf("healthz = %+v", h)
	}
	if !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("goVersion = %q", h.GoVersion)
	}
	if h.Kernels.Active == "" || h.Kernels.Detected == "" {
		t.Errorf("kernel tiers missing: %+v", h.Kernels)
	}
}

func TestPprofGated(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		s := testServer(t, Config{EnablePprof: enabled})
		ts := httptest.NewServer(s.Handler())
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ts.Close()
		want := http.StatusNotFound
		if enabled {
			want = http.StatusOK
		}
		if resp.StatusCode != want {
			t.Errorf("EnablePprof=%v: /debug/pprof/ = %s, want %d", enabled, resp.Status, want)
		}
	}
}
