package serve

import (
	"fmt"
	"time"

	"burstsnn/internal/obs"
	"burstsnn/internal/snn"
)

// ExitPolicy controls the early-exit engine. The paper's Fig. 3/4 point
// is that burst/hybrid codings reach their final accuracy in far fewer
// time steps than the simulation budget; online serving cashes that in by
// stopping the simulator as soon as the readout has settled instead of
// always paying the full budget.
type ExitPolicy struct {
	// MaxSteps is the per-request simulation budget (required).
	MaxSteps int `json:"maxSteps"`
	// MinSteps is the earliest step at which exit is allowed, typically a
	// couple of coding periods so periodic encoders deliver the whole
	// input at least once. 0 means no lower bound beyond StableWindow.
	MinSteps int `json:"minSteps"`
	// StableWindow is how many consecutive steps the top-1 prediction
	// must stay unchanged before exiting. 0 disables early exit (the
	// engine always runs the full budget).
	StableWindow int `json:"stableWindow"`
	// Margin additionally requires the mean per-step readout gap between
	// the top-1 and top-2 classes to reach this value (readout potentials
	// grow linearly with time, so the gap is normalized by the step
	// count). 0 disables the margin test.
	Margin float64 `json:"margin,omitempty"`
}

// Validate checks the policy.
func (p ExitPolicy) Validate() error {
	if p.MaxSteps <= 0 {
		return fmt.Errorf("serve: MaxSteps must be positive, got %d", p.MaxSteps)
	}
	if p.MinSteps < 0 || p.StableWindow < 0 || p.Margin < 0 {
		return fmt.Errorf("serve: negative exit-policy field")
	}
	if p.MinSteps > p.MaxSteps {
		return fmt.Errorf("serve: MinSteps %d exceeds MaxSteps %d", p.MinSteps, p.MaxSteps)
	}
	return nil
}

// Outcome is the transport-independent result of one classification.
type Outcome struct {
	Prediction int
	// Steps is the number of simulated time steps (== MaxSteps unless the
	// engine exited early).
	Steps     int
	EarlyExit bool
	// Margin is the mean per-step readout gap top1−top2 at exit time.
	Margin float64
	// InputSpikes and HiddenSpikes count physical spikes over the run.
	InputSpikes  int
	HiddenSpikes int
}

// TotalSpikes returns input plus hidden spikes.
func (o Outcome) TotalSpikes() int { return o.InputSpikes + o.HiddenSpikes }

// Classify presents image to net under the exit policy and returns the
// outcome. The caller owns net for the duration of the call (replica
// pools enforce this); the simulator is fully deterministic, so the same
// image and policy always produce the same outcome on any replica.
func Classify(net *snn.Network, image []float64, p ExitPolicy) Outcome {
	o, _ := ClassifyStaged(net, image, p)
	return o
}

// ClassifyStaged is Classify with the engine-side stage spans measured:
// Encode (the encoder Reset), Simulate (the step loop), and Readout (the
// readout margin extractions at exit tests), per the internal/obs
// taxonomy. The timing is a handful of monotonic clock reads per request
// — no allocations (the zero-alloc gate covers this path, which Classify
// shares) and no effect on the outcome.
func ClassifyStaged(net *snn.Network, image []float64, p ExitPolicy) (Outcome, obs.StageTimes) {
	times := obs.StageTimes{Lanes: 1}
	begin := time.Now()
	net.Reset(image)
	simStart := time.Now()
	times.Encode = simStart.Sub(begin)
	countInput := net.Encoder.CountsAsSpikes()
	var o Outcome
	var readout time.Duration
	stable, last := 0, -1
	for t := 0; t < p.MaxSteps; t++ {
		st := net.Step(t)
		if countInput {
			o.InputSpikes += st.InputEvents
		}
		o.HiddenSpikes += st.HiddenSpikes
		o.Steps = t + 1
		o.Prediction = st.Predicted
		if st.Predicted == last {
			stable++
		} else {
			stable, last = 1, st.Predicted
		}
		if p.StableWindow > 0 && o.Steps >= p.MinSteps && stable >= p.StableWindow {
			mt := time.Now()
			m := stepMargin(net.Output.Potentials(), o.Steps)
			readout += time.Since(mt)
			if p.Margin <= 0 || m >= p.Margin {
				o.Margin = m
				o.EarlyExit = o.Steps < p.MaxSteps
				times.Simulate = time.Since(simStart) - readout
				times.Readout = readout
				return o, times
			}
		}
	}
	mt := time.Now()
	o.Margin = stepMargin(net.Output.Potentials(), o.Steps)
	readout += time.Since(mt)
	times.Simulate = time.Since(simStart) - readout
	times.Readout = readout
	return o, times
}

// ClassifyBatch presents a batch of images lockstep through a
// snn.Lockstep simulator under per-lane exit policies and returns one
// Outcome per image, plus the number of lockstep steps the batch ran
// (the slowest lane's step count — used for the steps-saved gauge).
//
// On the float64 plane (snn.BatchNetwork) every outcome is bit-identical
// to Classify(net, images[i], policies[i]) on the sequential simulator
// the batch network was built from: the lockstep state is per-lane
// disjoint, the early-exit test below mirrors Classify's step for step,
// and a lane that exits is retired from the batch immediately (physical
// compaction), exactly as the sequential engine stops simulating. On the
// float32 plane (snn.BatchNetwork32) the same argument gives the
// tolerance contract instead: identical predictions, spike counts, and
// early-exit steps on the equivalence corpus, margins within float32
// accumulation tolerance (see internal/README.md). The caller owns bn
// for the duration of the call, like Classify.
//
// Unlike Classify (zero-alloc in steady state), ClassifyBatch allocates
// its per-batch bookkeeping (outcomes, trackers, score scratch) — a
// handful of allocations per dispatched batch, not per request, which is
// in line with the batcher's own per-request queueing allocations.
func ClassifyBatch(bn snn.Lockstep, images [][]float64, policies []ExitPolicy) ([]Outcome, int) {
	outs, steps, _ := ClassifyBatchStaged(bn, images, policies)
	return outs, steps
}

// ClassifyBatchStaged is ClassifyBatch with the engine-side stage spans
// measured, like ClassifyStaged: Encode is the batched encoder Reset,
// Simulate the lockstep step loop, Readout the accumulated per-lane
// margin extractions. The spans are batch-level — every lane shared
// them — so the returned StageTimes carries Lanes = len(images) and
// Lockstep = true for per-request attribution.
func ClassifyBatchStaged(bn snn.Lockstep, images [][]float64, policies []ExitPolicy) ([]Outcome, int, obs.StageTimes) {
	n := len(images)
	if n == 0 {
		return nil, 0, obs.StageTimes{}
	}
	if len(policies) != n {
		panic(fmt.Sprintf("serve: %d policies for %d images", len(policies), n))
	}
	times := obs.StageTimes{Lanes: n, Lockstep: true}
	begin := time.Now()
	bn.Reset(images)
	simStart := time.Now()
	times.Encode = simStart.Sub(begin)
	var readout time.Duration
	countInput := bn.CountsInputSpikes()
	outs := make([]Outcome, n)
	type tracker struct{ stable, last int }
	tracks := make([]tracker, n)
	for lane := range tracks {
		tracks[lane].last = -1
	}
	scores := make([]float64, bn.Classes())
	preds := make([]int, n)
	var retire []int
	// Lanes with a non-positive budget never step, exactly like
	// Classify's zero-iteration loop: retire them (descending) before the
	// first lockstep step, leaving their zero-value Outcomes.
	for slot := bn.NumActive() - 1; slot >= 0; slot-- {
		if policies[bn.LaneID(slot)].MaxSteps <= 0 {
			bn.Retire(slot)
		}
	}
	batchSteps := 0
	for t := 0; bn.NumActive() > 0; t++ {
		st := bn.Step(t)
		batchSteps = t + 1
		retire = retire[:0]
		// One lane-major sweep for the whole batch's argmax (identical
		// per slot to bn.Predicted) instead of a strided walk per slot.
		stepPreds := bn.PredictedAll(preds)
		for slot := 0; slot < bn.NumActive(); slot++ {
			lane := bn.LaneID(slot)
			o, p, tr := &outs[lane], &policies[lane], &tracks[lane]
			if countInput {
				o.InputSpikes += st.InputEvents[slot]
			}
			o.HiddenSpikes += st.HiddenSpikes[slot]
			o.Steps = t + 1
			pred := stepPreds[slot]
			o.Prediction = pred
			if pred == tr.last {
				tr.stable++
			} else {
				tr.stable, tr.last = 1, pred
			}
			exit := false
			if p.StableWindow > 0 && o.Steps >= p.MinSteps && tr.stable >= p.StableWindow {
				mt := time.Now()
				m := stepMargin(bn.PotentialsInto(slot, scores), o.Steps)
				readout += time.Since(mt)
				if p.Margin <= 0 || m >= p.Margin {
					o.Margin = m
					o.EarlyExit = o.Steps < p.MaxSteps
					exit = true
				}
			}
			if !exit && o.Steps >= p.MaxSteps {
				mt := time.Now()
				o.Margin = stepMargin(bn.PotentialsInto(slot, scores), o.Steps)
				readout += time.Since(mt)
				exit = true
			}
			if exit {
				retire = append(retire, slot)
			}
		}
		// Retire in descending slot order: compaction moves the current
		// last slot into the freed one, and every slot above the one being
		// retired has already been handled (or retired) this step.
		for i := len(retire) - 1; i >= 0; i-- {
			bn.Retire(retire[i])
		}
	}
	times.Simulate = time.Since(simStart) - readout
	times.Readout = readout
	return outs, batchSteps, times
}

// stepMargin returns (top1 − top2) / steps of the readout potentials:
// accumulated potentials track the DNN logits times the step count, so
// dividing by steps yields a time-invariant confidence gap.
func stepMargin(pot []float64, steps int) float64 {
	if len(pot) < 2 || steps <= 0 {
		return 0
	}
	top1, top2 := pot[0], pot[1]
	if top2 > top1 {
		top1, top2 = top2, top1
	}
	for _, v := range pot[2:] {
		if v > top1 {
			top1, top2 = v, top1
		} else if v > top2 {
			top2 = v
		}
	}
	return (top1 - top2) / float64(steps)
}
