package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/core"
	"burstsnn/internal/dnn"
	"burstsnn/internal/mathx"
)

// altTestModel is a second, structurally different net over the same
// dataset (narrower hidden layer, one epoch): weak enough that its
// predictions diverge from testNet's on some probe images, which is what
// the stale-weights tests key on.
var (
	altOnce sync.Once
	altNet  *dnn.Network
)

func altTestModel(t *testing.T) *dnn.Network {
	t.Helper()
	testModel(t) // builds testSet
	altOnce.Do(func() {
		net, err := dnn.Build(dnn.MLP(1, 28, 28, []int{16}, 10), mathx.NewRNG(31))
		if err != nil {
			panic(err)
		}
		dnn.Train(net, testSet, dnn.NewAdam(0.01), dnn.TrainConfig{
			Epochs: 1, BatchSize: 32, Seed: 13,
		})
		altNet = net
	})
	return altNet
}

func lifecycleModelConfig(name string) ModelConfig {
	return ModelConfig{
		Name:        name,
		Hybrid:      core.NewHybrid(coding.Phase, coding.Burst),
		Steps:       testSteps,
		Replicas:    2,
		NormSamples: 32,
	}
}

// classifyPreds runs the probe images through one model and returns the
// predictions.
func classifyPreds(t *testing.T, s *Server, model string, images [][]float64) []int {
	t.Helper()
	preds := make([]int, len(images))
	for i, img := range images {
		res, err := s.Classify(context.Background(), ClassifyRequest{Model: model, Image: img})
		if err != nil {
			t.Fatalf("classify %s image %d: %v", model, i, err)
		}
		preds[i] = res.Prediction
	}
	return preds
}

func probeImages(n int) [][]float64 {
	images := make([][]float64, n)
	for i := range images {
		images[i] = testSet.Test[i%len(testSet.Test)].Image
	}
	return images
}

// noiseImage returns a unique valid image (the batcher's dedupe and any
// response cache cannot absorb it).
func noiseImage(i int) []float64 {
	img := append([]float64(nil), testSet.Test[i%len(testSet.Test)].Image...)
	img[0] = float64(i%1000+1) / 2000
	return img
}

// TestConcurrentReregisterNoStaleWeights is the stale-weights regression
// pin: once Register returns, every subsequent request must be served by
// the NEW weights — under concurrent load, with no window where a
// request pairs the new registration with the old batcher (or vice
// versa). Before the atomic (model, batcher) entry swap, the displaced
// batcher kept serving the old weights after Register returned, and this
// test's post-swap assertions fail.
func TestConcurrentReregisterNoStaleWeights(t *testing.T) {
	net, set := testModel(t)
	alt := altTestModel(t)
	s := New(Config{QueueDepth: 256, ResponseCacheSize: -1})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	if _, err := s.Register(lifecycleModelConfig("digits"), net, set.Train); err != nil {
		t.Fatalf("Register v1: %v", err)
	}

	// Reference predictions per registration, measured without churn.
	images := probeImages(10)
	predsV1 := classifyPreds(t, s, "digits", images)
	if _, err := s.Register(lifecycleModelConfig("digits"), alt, set.Train); err != nil {
		t.Fatalf("Register v2: %v", err)
	}
	predsV2 := classifyPreds(t, s, "digits", images)
	var diff []int
	for i := range images {
		if predsV1[i] != predsV2[i] {
			diff = append(diff, i)
		}
	}
	if len(diff) == 0 {
		t.Skip("v1 and v2 agree on every probe image; no stale-weights discriminator")
	}

	// Background load keeps the old batcher's queue non-empty across
	// every swap, so the handoff path actually carries requests.
	stop := make(chan struct{})
	var bg sync.WaitGroup
	for w := 0; w < 4; w++ {
		bg.Add(1)
		go func(w int) {
			defer bg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := s.Classify(context.Background(), ClassifyRequest{
					Model: "digits", Image: noiseImage(w*10000 + i),
				})
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("background classify: %v", err)
					return
				}
			}
		}(w)
	}

	for round := 0; round < 6; round++ {
		target, want := net, predsV1
		if round%2 == 0 {
			target, want = alt, predsV2
		}
		if _, err := s.Register(lifecycleModelConfig("digits"), target, set.Train); err != nil {
			t.Fatalf("round %d Register: %v", round, err)
		}
		// Register has returned: the swap must already be complete.
		for _, i := range diff {
			res, err := s.Classify(context.Background(), ClassifyRequest{Model: "digits", Image: images[i]})
			if err != nil {
				t.Fatalf("round %d image %d: %v", round, i, err)
			}
			if res.Prediction != want[i] {
				t.Fatalf("round %d image %d: prediction %d from the displaced registration, want %d — stale weights served after Register returned",
					round, i, res.Prediction, want[i])
			}
		}
	}
	close(stop)
	bg.Wait()
}

// TestReregisterUnderLoadNoDrops: a hot swap may cost latency, never an
// error — concurrent requests across repeated re-registrations must all
// either succeed or shed with ErrOverloaded.
func TestReregisterUnderLoadNoDrops(t *testing.T) {
	net, set := testModel(t)
	s := New(Config{QueueDepth: 256, ResponseCacheSize: -1})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	if _, err := s.Register(lifecycleModelConfig("digits"), net, set.Train); err != nil {
		t.Fatalf("Register: %v", err)
	}

	const (
		workers = 8
		perW    = 30
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers*perW)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				_, err := s.Classify(context.Background(), ClassifyRequest{
					Model: "digits", Image: noiseImage(w*1000 + i),
				})
				if err != nil && !errors.Is(err, ErrOverloaded) {
					errCh <- fmt.Errorf("worker %d request %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Register(lifecycleModelConfig("digits"), net, set.Train); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestUnregisterInFlight: unregistering drains — requests already queued
// finish on the still-live pool; only requests arriving afterwards see
// an unknown model.
func TestUnregisterInFlight(t *testing.T) {
	net, set := testModel(t)
	s := New(Config{
		MaxBatch: 2, QueueDepth: 64, ResponseCacheSize: -1,
		InjectLatency: 20 * time.Millisecond,
	})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	cfg := lifecycleModelConfig("digits")
	cfg.Replicas = 1
	if _, err := s.Register(cfg, net, set.Train); err != nil {
		t.Fatalf("Register: %v", err)
	}

	const inflight = 10
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Classify(context.Background(), ClassifyRequest{
				Model: "digits", Image: noiseImage(i),
			})
		}(i)
	}
	// Let the requests reach the queue (the injected latency holds the
	// single replica on the first batch), then pull the model.
	time.Sleep(60 * time.Millisecond)
	if err := s.Unregister("digits"); err != nil {
		t.Fatalf("Unregister: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("in-flight request %d failed across unregister: %v", i, err)
		}
	}
	if _, err := s.Classify(context.Background(), ClassifyRequest{
		Model: "digits", Image: noiseImage(0),
	}); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("post-unregister classify: %v, want unknown model", err)
	}
	if got := len(s.Registry().ListAll()); got != 0 {
		t.Errorf("ListAll after unregister: %d models, want 0", got)
	}
	if err := s.Unregister("digits"); err == nil {
		t.Error("second Unregister should fail")
	}
}

// TestEvictWarmRoundTrip: evict releases the pool but archives the
// conversion; the next request warms the model back in with identical
// behavior (prediction, steps, spikes) and continuous counters.
func TestEvictWarmRoundTrip(t *testing.T) {
	net, set := testModel(t)
	s := New(Config{ResponseCacheSize: -1})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	if _, err := s.Register(lifecycleModelConfig("digits"), net, set.Train); err != nil {
		t.Fatalf("Register: %v", err)
	}

	images := probeImages(4)
	type outcome struct{ pred, steps, spikes int }
	classify := func() []outcome {
		out := make([]outcome, len(images))
		for i, img := range images {
			res, err := s.Classify(context.Background(), ClassifyRequest{Model: "digits", Image: img})
			if err != nil {
				t.Fatalf("classify image %d: %v", i, err)
			}
			out[i] = outcome{res.Prediction, res.Steps, res.Spikes}
		}
		return out
	}
	want := classify()
	preRequests := mustSnapshot(t, s).Requests

	for cycle := 1; cycle <= 2; cycle++ {
		if err := s.Evict("digits"); err != nil {
			t.Fatalf("cycle %d Evict: %v", cycle, err)
		}
		if got := len(s.Registry().List()); got != 0 {
			t.Fatalf("cycle %d: %d resident models after evict, want 0", cycle, got)
		}
		all := s.Registry().ListAll()
		if len(all) != 1 || all[0].State != StateEvicted {
			t.Fatalf("cycle %d: ListAll = %+v, want one evicted entry", cycle, all)
		}
		// The next classify warms the model back in transparently.
		if got := classify(); got[0] != want[0] || got[1] != want[1] || got[2] != want[2] || got[3] != want[3] {
			t.Fatalf("cycle %d: post-warm outcomes %+v, want %+v", cycle, got, want)
		}
	}
	snap := mustSnapshot(t, s)
	if snap.Evictions != 2 || snap.Warms != 2 {
		t.Errorf("evictions/warms = %d/%d, want 2/2", snap.Evictions, snap.Warms)
	}
	if wantReq := preRequests + int64(2*len(images)); snap.Requests != wantReq {
		t.Errorf("requests = %d, want %d — counters must be continuous across evict/warm", snap.Requests, wantReq)
	}
	if st := s.snapshotModels()["digits"].State; st != StateResident {
		t.Errorf("state = %q after warm, want %q", st, StateResident)
	}
}

// TestResidentBoundLRU: with MaxResidentModels=2, three registered
// models all keep serving — at most two resident at a time, the third
// transparently warming in on demand.
func TestResidentBoundLRU(t *testing.T) {
	net, set := testModel(t)
	s := New(Config{MaxResidentModels: 2, ResponseCacheSize: -1})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	names := []string{"alpha", "beta", "gamma"}
	for _, name := range names {
		if _, err := s.Register(lifecycleModelConfig(name), net, set.Train); err != nil {
			t.Fatalf("Register %s: %v", name, err)
		}
	}
	images := probeImages(2)
	pinned := map[string][]int{}
	for _, name := range names {
		pinned[name] = classifyPreds(t, s, name, images)
	}
	for round := 0; round < 3; round++ {
		for _, name := range names {
			got := classifyPreds(t, s, name, images)
			for i := range got {
				if got[i] != pinned[name][i] {
					t.Fatalf("round %d %s image %d: prediction %d, pinned %d", round, name, i, got[i], pinned[name][i])
				}
			}
			if resident, _, _ := s.lifecycleCounts(); resident > 2 {
				t.Fatalf("round %d: %d resident models, bound is 2", round, resident)
			}
		}
	}
	if got := len(s.Registry().ListAll()); got != 3 {
		t.Errorf("ListAll: %d models, want all 3 (resident + evicted)", got)
	}
	var evictions int64
	for _, snap := range s.snapshotModels() {
		evictions += snap.Evictions
	}
	if evictions == 0 {
		t.Error("no evictions recorded despite the resident bound forcing churn")
	}
}

// TestFairNoStarvationUnderSaturation: with one shared execution slot
// and a saturated hot model, a cold model's requests must still complete
// promptly — the SFQ dispatcher interleaves its batches instead of
// FIFO-draining the hot backlog.
func TestFairNoStarvationUnderSaturation(t *testing.T) {
	net, set := testModel(t)
	s := New(Config{
		MaxBatch: 2, QueueDepth: 128, ResponseCacheSize: -1,
		InjectLatency: 5 * time.Millisecond,
		FairSlots:     1,
		ModelWeights:  map[string]float64{"hot": 1, "cold": 1},
	})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	for _, name := range []string{"hot", "cold"} {
		cfg := lifecycleModelConfig(name)
		cfg.Replicas = 1
		if _, err := s.Register(cfg, net, set.Train); err != nil {
			t.Fatalf("Register %s: %v", name, err)
		}
	}

	stop := make(chan struct{})
	var bg sync.WaitGroup
	for w := 0; w < 4; w++ {
		bg.Add(1)
		go func(w int) {
			defer bg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = s.Classify(context.Background(), ClassifyRequest{
					Model: "hot", Image: noiseImage(w*10000 + i),
				})
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond) // let the hot backlog build

	const probes = 8
	var worst time.Duration
	for i := 0; i < probes; i++ {
		t0 := time.Now()
		if _, err := s.Classify(context.Background(), ClassifyRequest{
			Model: "cold", Image: noiseImage(90000 + i),
		}); err != nil {
			close(stop)
			bg.Wait()
			t.Fatalf("cold probe %d: %v", i, err)
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	close(stop)
	bg.Wait()
	// Starvation means waiting out the entire hot backlog (tens of
	// batches × injected latency, unbounded while the flood refills). A
	// fair grant is one slot wait away; 2s is orders of magnitude of
	// headroom for CI noise without tolerating starvation.
	if worst > 2*time.Second {
		t.Errorf("worst cold-probe latency %v under hot saturation — fair isolation failed", worst)
	}
	hot, ok := s.fair.Stats("hot")
	if !ok || hot.Grants == 0 {
		t.Fatalf("hot fair stats = %+v (ok=%v), want grants > 0", hot, ok)
	}
	cold, ok := s.fair.Stats("cold")
	if !ok || cold.Grants == 0 {
		t.Fatalf("cold fair stats = %+v (ok=%v), want grants > 0", cold, ok)
	}
}

// TestConcurrentWarmsResidentBoundNoDeadlock: two evicted models warming
// concurrently under MaxResidentModels=1 must not deadlock. Before the
// warmOp was resolved ahead of bound enforcement, each warm's
// enforceResidentBound picked the other model as victim and remove()
// blocked on the other's still-open warmOp — a permanent cross-warm
// deadlock this watchdog catches.
func TestConcurrentWarmsResidentBoundNoDeadlock(t *testing.T) {
	net, set := testModel(t)
	s := New(Config{MaxResidentModels: 1, ResponseCacheSize: -1})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	for _, name := range []string{"alpha", "beta"} {
		cfg := lifecycleModelConfig(name)
		cfg.Replicas = 1
		if _, err := s.Register(cfg, net, set.Train); err != nil {
			t.Fatalf("Register %s: %v", name, err)
		}
	}
	// Force both out so every round's classifies start from a warm.
	for _, name := range []string{"alpha", "beta"} {
		_ = s.Evict(name) // one may already be evicted by the bound
	}

	// Continuous churn, no barrier between requests: with every request
	// for the non-resident name starting a warm whose bound enforcement
	// evicts the other name, warms for both names are perpetually in
	// flight and overlap constantly — the interleaving the deadlock
	// needs. 30 requests per worker finish in well under a second when
	// warms resolve; a deadlock freezes every worker until the watchdog.
	done := make(chan struct{})
	go func() {
		defer close(done)
		img := probeImages(1)[0]
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				names := []string{"alpha", "beta"}
				for i := 0; i < 30; i++ {
					name := names[(w+i)%2]
					if _, err := s.Classify(context.Background(), ClassifyRequest{
						Model: name, Image: img,
					}); err != nil {
						t.Errorf("worker %d request %d (%s): %v", w, i, name, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent warms under the resident bound deadlocked")
	}
	if resident, _, _ := s.lifecycleCounts(); resident > 1 {
		t.Errorf("%d resident models, bound is 1", resident)
	}
}

// TestWarmCannotClobberConcurrentRegister pins the epoch guard: a warm
// that restored the archived conversion, then lost the race to an
// explicit Register of fresh weights, must abort its install instead of
// atomically replacing the NEW registration with the OLD archive. The
// test reproduces the exact interleaving white-box — restore, then
// register, then the warm's guarded install.
func TestWarmCannotClobberConcurrentRegister(t *testing.T) {
	net, set := testModel(t)
	alt := altTestModel(t)
	s := New(Config{ResponseCacheSize: -1})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	if _, err := s.Register(lifecycleModelConfig("digits"), net, set.Train); err != nil {
		t.Fatalf("Register v1: %v", err)
	}
	images := probeImages(10)
	predsV1 := classifyPreds(t, s, "digits", images)
	if _, err := s.Register(lifecycleModelConfig("digits"), alt, set.Train); err != nil {
		t.Fatalf("Register v2: %v", err)
	}
	predsV2 := classifyPreds(t, s, "digits", images)
	var diff []int
	for i := range images {
		if predsV1[i] != predsV2[i] {
			diff = append(diff, i)
		}
	}
	if len(diff) == 0 {
		t.Skip("v1 and v2 agree on every probe image; no stale-weights discriminator")
	}

	// Back to v1 resident, then evict: the archive holds v1.
	if _, err := s.Register(lifecycleModelConfig("digits"), net, set.Train); err != nil {
		t.Fatalf("Register v1 again: %v", err)
	}
	if err := s.Evict("digits"); err != nil {
		t.Fatalf("Evict: %v", err)
	}

	// The warm leader's first half: sample the epoch and restore v1.
	s.mu.Lock()
	epoch := s.epochs["digits"]
	s.mu.Unlock()
	c, err := s.buildCollaborators()
	if err != nil {
		t.Fatalf("buildCollaborators: %v", err)
	}
	restored, err := s.reg.Restore("digits")
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// A concurrent Register of fresh v2 weights lands in between.
	if _, err := s.Register(lifecycleModelConfig("digits"), alt, set.Train); err != nil {
		t.Fatalf("Register v2 mid-warm: %v", err)
	}

	// The warm's install must now abort, not resurrect v1.
	if _, err := s.installModelAt(restored, c, epoch, true); !errors.Is(err, errStaleWarm) {
		t.Fatalf("guarded install after concurrent register: err = %v, want errStaleWarm", err)
	}
	for _, i := range diff {
		res, err := s.Classify(context.Background(), ClassifyRequest{Model: "digits", Image: images[i]})
		if err != nil {
			t.Fatalf("post-race image %d: %v", i, err)
		}
		if res.Prediction != predsV2[i] {
			t.Fatalf("image %d: prediction %d from the stale archived weights, want %d from the fresh registration",
				i, res.Prediction, predsV2[i])
		}
	}
}

// TestWarmLeaderHonorsContext: the request that claims the singleflight
// warm must still observe its own context — it returns promptly when the
// context is done while the restore completes in the background for
// everyone else.
func TestWarmLeaderHonorsContext(t *testing.T) {
	net, set := testModel(t)
	s := New(Config{ResponseCacheSize: -1})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	if _, err := s.Register(lifecycleModelConfig("digits"), net, set.Train); err != nil {
		t.Fatalf("Register: %v", err)
	}
	img := probeImages(1)[0]
	if err := s.Evict("digits"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Classify(ctx, ClassifyRequest{Model: "digits", Image: img}); !errors.Is(err, context.Canceled) {
		t.Fatalf("leader with cancelled context: err = %v, want context.Canceled", err)
	}
	// The detached warm still completes and the model serves again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resident, _, warming := s.lifecycleCounts(); resident == 1 && warming == 0 {
			break
		}
		if time.Now().After(deadline) {
			resident, evicted, warming := s.lifecycleCounts()
			t.Fatalf("background warm never completed: resident=%d evicted=%d warming=%d", resident, evicted, warming)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Classify(context.Background(), ClassifyRequest{Model: "digits", Image: img}); err != nil {
		t.Fatalf("classify after background warm: %v", err)
	}
}

// TestUnregisterHTTPStatus: DELETE /v1/models/{name} distinguishes
// unknown names (404) from the server refusing (503 after shutdown) —
// before the ErrUnknownModel sentinel every failure read as 404.
func TestUnregisterHTTPStatus(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	do := func(name string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/models/"+name, nil))
		return rec.Code
	}
	if code := do("nope"); code != http.StatusNotFound {
		t.Errorf("unknown model: status %d, want 404", code)
	}
	if code := do("digits"); code != http.StatusOK {
		t.Errorf("known model: status %d, want 200", code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code := do("digits"); code != http.StatusServiceUnavailable {
		t.Errorf("unregister after shutdown: status %d, want 503", code)
	}
}

// TestIdleEvictor: a model idle past EvictIdle is evicted in the
// background and warms back in on the next request.
func TestIdleEvictor(t *testing.T) {
	net, set := testModel(t)
	s := New(Config{EvictIdle: 80 * time.Millisecond, ResponseCacheSize: -1})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	if _, err := s.Register(lifecycleModelConfig("digits"), net, set.Train); err != nil {
		t.Fatalf("Register: %v", err)
	}
	img := probeImages(1)[0]
	if _, err := s.Classify(context.Background(), ClassifyRequest{Model: "digits", Image: img}); err != nil {
		t.Fatalf("classify: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resident, evicted, _ := s.lifecycleCounts(); resident == 0 && evicted == 1 {
			break
		}
		if time.Now().After(deadline) {
			resident, evicted, _ := s.lifecycleCounts()
			t.Fatalf("idle evictor never fired: resident=%d evicted=%d", resident, evicted)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := s.Classify(context.Background(), ClassifyRequest{Model: "digits", Image: img}); err != nil {
		t.Fatalf("post-evict classify (warm): %v", err)
	}
	if snap := mustSnapshot(t, s); snap.Warms == 0 {
		t.Error("warms = 0 after the idle evictor cycled the model")
	}
}
