package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
	"burstsnn/internal/snn"
)

// allocNet builds a conv-bearing network (conv → maxpool → avgpool →
// dense → output) directly from random weights — no training — so the
// hot-path tests run in milliseconds.
func allocNet(t testing.TB, input coding.Scheme, seed uint64) *snn.Network {
	t.Helper()
	r := mathx.NewRNG(seed)
	randn := func(n int, std float64) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Norm(0, std)
		}
		return v
	}
	g := snn.ConvGeom{InC: 2, InH: 8, InW: 8, OutC: 4, K: 3, Stride: 1, Pad: 1}
	hidden := coding.DefaultConfig(coding.Burst)
	enc, err := coding.NewInputEncoder(coding.DefaultConfig(input), g.InC*g.InH*g.InW, seed)
	if err != nil {
		t.Fatalf("encoder: %v", err)
	}
	denseIn := g.OutC * g.OutH() / 4 * g.OutW() / 4
	return &snn.Network{
		Encoder: enc,
		Layers: []snn.Layer{
			snn.NewSpikingConv(randn(g.OutC*g.InC*g.K*g.K, 0.35), randn(g.OutC, 0.05), g, hidden),
			snn.NewSpikingMaxPool(g.OutC, g.OutH(), g.OutW(), 2),
			snn.NewSpikingAvgPool(g.OutC, g.OutH()/2, g.OutW()/2, 2, hidden),
			snn.NewSpikingDense(randn(denseIn*12, 0.4), randn(12, 0.05), denseIn, 12, hidden),
		},
		Output: snn.NewOutputLayer(randn(12*4, 0.5), randn(4, 0.05), 12, 4),
	}
}

func allocImage(seed uint64, n int) []float64 {
	r := mathx.NewRNG(seed)
	img := make([]float64, n)
	for i := range img {
		img[i] = r.Float64()
	}
	return img
}

// TestClassifyZeroAlloc is the allocation regression gate for the
// serving hot path: once a replica's buffers have reached their
// high-watermark, Classify (Reset + Steps + early exit) must not
// allocate at all, for every input encoder.
func TestClassifyZeroAlloc(t *testing.T) {
	for _, scheme := range []coding.Scheme{coding.Real, coding.Rate, coding.Phase, coding.TTFS} {
		t.Run(scheme.String(), func(t *testing.T) {
			net := allocNet(t, scheme, 0xA110C)
			img := allocImage(42, net.Encoder.Size())
			policy := ExitPolicy{MaxSteps: 48, MinSteps: 8, StableWindow: 6}
			Classify(net, img, policy) // reach the buffer high-watermark
			allocs := testing.AllocsPerRun(20, func() {
				Classify(net, img, policy)
			})
			if allocs != 0 {
				t.Errorf("Classify allocates %.1f objects/run in steady state, want 0", allocs)
			}
		})
	}
}

// TestClassifyBatchMatchesSequential pins the batched engine to the
// sequential one: for every input encoder, a full 8-lane batch with
// per-lane policies (different budgets, stable windows, margins, and
// disabled early exit) must produce bit-identical Outcomes — prediction,
// steps, early-exit flag, margin, spike counts — to Classify run lane by
// lane, and the reported batch step count must be the slowest lane's.
func TestClassifyBatchMatchesSequential(t *testing.T) {
	for _, scheme := range []coding.Scheme{coding.Real, coding.Rate, coding.Phase, coding.TTFS} {
		t.Run(scheme.String(), func(t *testing.T) {
			net := allocNet(t, scheme, 0xBA7C4)
			seq, err := net.Clone()
			if err != nil {
				t.Fatalf("clone: %v", err)
			}
			bn, err := snn.NewBatchNetwork(net, 8)
			if err != nil {
				t.Fatalf("NewBatchNetwork: %v", err)
			}
			policies := []ExitPolicy{
				{MaxSteps: 64, MinSteps: 8, StableWindow: 6},
				{MaxSteps: 64, MinSteps: 8, StableWindow: 6, Margin: 0.01},
				{MaxSteps: 24}, // no early exit, short budget
				{MaxSteps: 64, StableWindow: 3},
				{MaxSteps: 48, MinSteps: 16, StableWindow: 10},
				{MaxSteps: 64, MinSteps: 8, StableWindow: 6, Margin: 10}, // unreachable margin
				{MaxSteps: 33, MinSteps: 4, StableWindow: 2},
				{}, // zero budget: never steps, zero-value outcome like Classify
			}
			images := make([][]float64, len(policies))
			for i := range images {
				images[i] = allocImage(uint64(0xBEE0+i), net.Encoder.Size())
			}
			outs, batchSteps := ClassifyBatch(bn, images, policies)
			slowest := 0
			for i := range images {
				want := Classify(seq, images[i], policies[i])
				if outs[i] != want {
					t.Errorf("lane %d: batch %+v, sequential %+v", i, outs[i], want)
				}
				if outs[i].Steps > slowest {
					slowest = outs[i].Steps
				}
			}
			if batchSteps != slowest {
				t.Errorf("batch ran %d steps, slowest lane took %d", batchSteps, slowest)
			}
			// Second batch on the same network: no state bleed.
			outs2, _ := ClassifyBatch(bn, images[:3], policies[:3])
			for i := range outs2 {
				want := Classify(seq, images[i], policies[i])
				if outs2[i] != want {
					t.Errorf("reused batch lane %d: %+v, want %+v", i, outs2[i], want)
				}
			}
		})
	}
}

// TestBatcherRunsLockstepBatches checks the serving integration: a
// filled microbatch is executed through the lockstep simulator (visible
// in the batch gauges) and every request still gets the exact outcome
// the sequential engine would produce.
func TestBatcherRunsLockstepBatches(t *testing.T) {
	pool, image := testPool(t, 1)
	metrics := NewMetrics()
	// Distinct images: perturb a few pixels so lanes differ.
	images := make([][]float64, 4)
	for i := range images {
		img := append([]float64(nil), image...)
		for j := 0; j <= i; j++ {
			img[j*7] = float64(j+1) / 8
		}
		images[i] = img
	}
	policy := ExitPolicy{MaxSteps: 48, MinSteps: 8, StableWindow: 6}
	want := make([]Outcome, len(images))
	func() {
		rep, err := pool.Get(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Put(rep)
		for i, img := range images {
			want[i] = Classify(rep.Net, img, policy)
		}
	}()

	// Generous delay so all four submissions join one batch.
	b := NewBatcher(pool, BatcherConfig{
		Metrics: metrics, Sched: NewStaticSched(2), MaxBatch: 4, MaxDelay: 300 * time.Millisecond,
	})
	defer b.Close()
	var wg sync.WaitGroup
	for i := range images {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := b.Submit(context.Background(), images[i], policy)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if out != want[i] {
				t.Errorf("request %d: batched %+v, sequential %+v", i, out, want[i])
			}
		}(i)
	}
	wg.Wait()
	s := metrics.Snapshot()
	if s.Batches < 1 {
		t.Errorf("no lockstep batches recorded: %+v", s)
	}
	if s.MeanBatchOccupancy < 2 {
		t.Errorf("mean batch occupancy %.1f, want >= 2 (requests were concurrent)", s.MeanBatchOccupancy)
	}
}

// TestBatcherClampsLaneCap guards the MaxBatch > snn.MaxBatchLanes case:
// the lockstep simulator caps at 64 lanes, and a larger configured batch
// must be clamped (and chunked), not silently degraded to sequential
// execution via a sticky construction error.
func TestBatcherClampsLaneCap(t *testing.T) {
	pool, image := testPool(t, 1)
	metrics := NewMetrics()
	b := NewBatcher(pool, BatcherConfig{
		Metrics: metrics, Sched: NewStaticSched(2), MaxBatch: 128, MaxDelay: 300 * time.Millisecond,
	})
	defer b.Close()
	policy := ExitPolicy{MaxSteps: 16}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		// Distinct images, so the dedupe stage can't collapse the batch
		// before it reaches the lockstep path.
		img := append([]float64(nil), image...)
		img[0] = float64(i+1) / 4
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), img, policy); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if s := metrics.Snapshot(); s.Batches < 1 {
		t.Errorf("MaxBatch beyond the lane cap disabled lockstep batching: %+v", s)
	}
}

// TestClassifyFastMatchesReference runs the early-exit engine over both
// simulator paths and requires identical outcomes: prediction, simulated
// steps, early-exit flag, and spike counts.
func TestClassifyFastMatchesReference(t *testing.T) {
	for _, scheme := range []coding.Scheme{coding.Real, coding.Rate, coding.Phase, coding.TTFS} {
		t.Run(scheme.String(), func(t *testing.T) {
			fast := allocNet(t, scheme, 0xEC0)
			ref, err := fast.Clone()
			if err != nil {
				t.Fatalf("clone: %v", err)
			}
			ref.Ref = true
			policy := ExitPolicy{MaxSteps: 64, MinSteps: 8, StableWindow: 6, Margin: 0.01}
			for i := 0; i < 8; i++ {
				img := allocImage(uint64(1000+i), fast.Encoder.Size())
				a := Classify(fast, img, policy)
				b := Classify(ref, img, policy)
				if a.Prediction != b.Prediction || a.Steps != b.Steps || a.EarlyExit != b.EarlyExit {
					t.Fatalf("image %d: fast %+v ref %+v", i, a, b)
				}
				if a.InputSpikes != b.InputSpikes || a.HiddenSpikes != b.HiddenSpikes {
					t.Fatalf("image %d: spikes fast %d/%d ref %d/%d",
						i, a.InputSpikes, a.HiddenSpikes, b.InputSpikes, b.HiddenSpikes)
				}
				if diff := a.Margin - b.Margin; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("image %d: margin fast %v ref %v", i, a.Margin, b.Margin)
				}
			}
		})
	}
}
