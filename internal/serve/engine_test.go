package serve

import (
	"testing"

	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
	"burstsnn/internal/snn"
)

// allocNet builds a conv-bearing network (conv → maxpool → avgpool →
// dense → output) directly from random weights — no training — so the
// hot-path tests run in milliseconds.
func allocNet(t testing.TB, input coding.Scheme, seed uint64) *snn.Network {
	t.Helper()
	r := mathx.NewRNG(seed)
	randn := func(n int, std float64) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Norm(0, std)
		}
		return v
	}
	g := snn.ConvGeom{InC: 2, InH: 8, InW: 8, OutC: 4, K: 3, Stride: 1, Pad: 1}
	hidden := coding.DefaultConfig(coding.Burst)
	enc, err := coding.NewInputEncoder(coding.DefaultConfig(input), g.InC*g.InH*g.InW, seed)
	if err != nil {
		t.Fatalf("encoder: %v", err)
	}
	denseIn := g.OutC * g.OutH() / 4 * g.OutW() / 4
	return &snn.Network{
		Encoder: enc,
		Layers: []snn.Layer{
			snn.NewSpikingConv(randn(g.OutC*g.InC*g.K*g.K, 0.35), randn(g.OutC, 0.05), g, hidden),
			snn.NewSpikingMaxPool(g.OutC, g.OutH(), g.OutW(), 2),
			snn.NewSpikingAvgPool(g.OutC, g.OutH()/2, g.OutW()/2, 2, hidden),
			snn.NewSpikingDense(randn(denseIn*12, 0.4), randn(12, 0.05), denseIn, 12, hidden),
		},
		Output: snn.NewOutputLayer(randn(12*4, 0.5), randn(4, 0.05), 12, 4),
	}
}

func allocImage(seed uint64, n int) []float64 {
	r := mathx.NewRNG(seed)
	img := make([]float64, n)
	for i := range img {
		img[i] = r.Float64()
	}
	return img
}

// TestClassifyZeroAlloc is the allocation regression gate for the
// serving hot path: once a replica's buffers have reached their
// high-watermark, Classify (Reset + Steps + early exit) must not
// allocate at all, for every input encoder.
func TestClassifyZeroAlloc(t *testing.T) {
	for _, scheme := range []coding.Scheme{coding.Real, coding.Rate, coding.Phase, coding.TTFS} {
		t.Run(scheme.String(), func(t *testing.T) {
			net := allocNet(t, scheme, 0xA110C)
			img := allocImage(42, net.Encoder.Size())
			policy := ExitPolicy{MaxSteps: 48, MinSteps: 8, StableWindow: 6}
			Classify(net, img, policy) // reach the buffer high-watermark
			allocs := testing.AllocsPerRun(20, func() {
				Classify(net, img, policy)
			})
			if allocs != 0 {
				t.Errorf("Classify allocates %.1f objects/run in steady state, want 0", allocs)
			}
		})
	}
}

// TestClassifyFastMatchesReference runs the early-exit engine over both
// simulator paths and requires identical outcomes: prediction, simulated
// steps, early-exit flag, and spike counts.
func TestClassifyFastMatchesReference(t *testing.T) {
	for _, scheme := range []coding.Scheme{coding.Real, coding.Rate, coding.Phase, coding.TTFS} {
		t.Run(scheme.String(), func(t *testing.T) {
			fast := allocNet(t, scheme, 0xEC0)
			ref, err := fast.Clone()
			if err != nil {
				t.Fatalf("clone: %v", err)
			}
			ref.Ref = true
			policy := ExitPolicy{MaxSteps: 64, MinSteps: 8, StableWindow: 6, Margin: 0.01}
			for i := 0; i < 8; i++ {
				img := allocImage(uint64(1000+i), fast.Encoder.Size())
				a := Classify(fast, img, policy)
				b := Classify(ref, img, policy)
				if a.Prediction != b.Prediction || a.Steps != b.Steps || a.EarlyExit != b.EarlyExit {
					t.Fatalf("image %d: fast %+v ref %+v", i, a, b)
				}
				if a.InputSpikes != b.InputSpikes || a.HiddenSpikes != b.HiddenSpikes {
					t.Fatalf("image %d: spikes fast %d/%d ref %d/%d",
						i, a.InputSpikes, a.HiddenSpikes, b.InputSpikes, b.HiddenSpikes)
				}
				if diff := a.Margin - b.Margin; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("image %d: margin fast %v ref %v", i, a.Margin, b.Margin)
				}
			}
		})
	}
}
