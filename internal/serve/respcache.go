package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"burstsnn/internal/coding"
)

// DefaultResponseCacheEntries bounds a model's response cache. Each
// entry keeps the source image for collision verification plus one
// Outcome (~6.4 KB at MNIST scale), so the default costs at most ~26 MB
// per model — the same order as the exit history and quant cache it
// sits beside.
const DefaultResponseCacheEntries = 4096

// DefaultResponseCacheTTL bounds how long a cached Outcome may be
// served. The simulator is deterministic, so a cached outcome never
// goes *wrong* — the TTL only bounds how long a retired model revision
// could keep answering through a cache that outlives it, and keeps the
// promotion set from accumulating cold keys.
const DefaultResponseCacheTTL = time.Minute

// ResponseCache is the cross-batch (image-hash, policy) → Outcome cache
// in front of the batcher: replay-heavy traffic is answered without
// holding a queue slot or checking out a replica. It generalizes the
// batcher's in-window dedupe (which only collapses duplicates landing
// in the same dispatch window) across dispatch windows, bounded by a
// TTL.
//
// The discipline is coding.QuantCache's / ExitHistory's, exactly: keys
// go through coding.HashImage, every hit verifies pixel equality
// against the stored image (a hash collision degrades to a miss, never
// to another image's outcome), and an entry — with its verification
// image copy — is only stored on a key's second sighting inside one
// TTL window, so unique-image traffic never allocates entries. The
// outcome is policy-dependent, so the policy is part of the key. When
// full, an arbitrary entry is evicted per insert (the workloads this
// serves are dominated by a small hot set). Safe for concurrent use.
type ResponseCache struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	now     func() time.Time // injectable clock for deterministic TTL tests
	entries map[exitKey]respEntry
	seen    map[exitKey]time.Time // first-sighting times (promotion gate)

	hits   atomic.Int64
	misses atomic.Int64
}

type respEntry struct {
	image   []float64
	out     Outcome
	expires time.Time
}

// NewResponseCache returns a cache bounded to maxEntries (<= 0 uses
// DefaultResponseCacheEntries) whose entries expire ttl after their
// last Record (<= 0 uses DefaultResponseCacheTTL).
func NewResponseCache(maxEntries int, ttl time.Duration) *ResponseCache {
	if maxEntries <= 0 {
		maxEntries = DefaultResponseCacheEntries
	}
	if ttl <= 0 {
		ttl = DefaultResponseCacheTTL
	}
	return &ResponseCache{
		max:     maxEntries,
		ttl:     ttl,
		now:     time.Now,
		entries: map[exitKey]respEntry{},
		seen:    map[exitKey]time.Time{},
	}
}

// Stats returns the lifetime lookup hit/miss counters (surfaced as
// responseCacheHits/responseCacheMisses in /metrics).
func (c *ResponseCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports how many promoted entries the cache holds right now.
func (c *ResponseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Lookup returns the cached Outcome for (image, policy) if an unexpired,
// pixel-verified entry exists. hash must be coding.HashImage(image) —
// the batcher hashes each request once at submit and reuses it here,
// in dedupe, and in the exit history. An expired entry is dropped; a
// key match with different pixel contents counts as a miss.
func (c *ResponseCache) Lookup(hash uint64, image []float64, p ExitPolicy) (Outcome, bool) {
	k := exitKey{hash: hash, policy: p}
	c.mu.Lock()
	e, ok := c.entries[k]
	if ok && c.now().After(e.expires) {
		delete(c.entries, k)
		ok = false
	}
	c.mu.Unlock()
	if ok && coding.SameImage(e.image, image) {
		c.hits.Add(1)
		return e.out, true
	}
	c.misses.Add(1)
	return Outcome{}, false
}

// Record notes one classified (image, policy) → Outcome. The first
// sighting of a key inside a TTL window only marks it seen; the second
// stores the entry (copying the image for collision verification);
// later sightings refresh the outcome and TTL in place. A colliding
// key (same hash, different pixels) replaces the stored entry,
// mirroring QuantCache's re-store.
func (c *ResponseCache) Record(hash uint64, image []float64, p ExitPolicy, out Outcome) {
	k := exitKey{hash: hash, policy: p}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		if coding.SameImage(e.image, image) {
			e.out, e.expires = out, now.Add(c.ttl)
			c.entries[k] = e
			return
		}
		// Collision (or changed pixels under the same hash): replace.
		c.entries[k] = respEntry{
			image: append([]float64(nil), image...), out: out, expires: now.Add(c.ttl),
		}
		return
	}
	if first, ok := c.seen[k]; !ok || now.Sub(first) > c.ttl {
		// First sighting (or the previous one aged past the TTL — a key
		// must be hot within one window to earn an entry).
		if len(c.seen) >= c.max {
			for old := range c.seen {
				delete(c.seen, old)
				break
			}
		}
		c.seen[k] = now
		return
	}
	delete(c.seen, k)
	if len(c.entries) >= c.max {
		for old := range c.entries {
			delete(c.entries, old)
			break
		}
	}
	c.entries[k] = respEntry{
		image: append([]float64(nil), image...), out: out, expires: now.Add(c.ttl),
	}
}
