package energy

import (
	"math"
	"testing"
	"testing/quick"

	"burstsnn/internal/mathx"
)

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{TrueNorth(), SpiNNaker()} {
		if p.Comp <= 0 || p.Route <= 0 || p.Static <= 0 {
			t.Fatalf("%s has non-positive components: %+v", p.Name, p)
		}
	}
	// The architectural contrast the paper leans on: TrueNorth is
	// computation-dominated, SpiNNaker static-heavy.
	if TrueNorth().Static >= SpiNNaker().Static {
		t.Fatal("TrueNorth static share must be below SpiNNaker's")
	}
	if TrueNorth().Comp <= SpiNNaker().Comp {
		t.Fatal("TrueNorth computation share must exceed SpiNNaker's")
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := Workload{Spikes: 100, Density: 0.1, Latency: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Workload{
		{Spikes: -1, Density: 0.1, Latency: 10},
		{Spikes: 1, Density: -0.1, Latency: 10},
		{Spikes: 1, Density: 0.1, Latency: 0},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEstimateMonotonic(t *testing.T) {
	p := TrueNorth()
	base := Workload{Spikes: 1e5, Density: 0.05, Latency: 200}
	moreSpikes := base
	moreSpikes.Spikes *= 2
	if Estimate(p, moreSpikes) <= Estimate(p, base) {
		t.Fatal("more spikes must cost more energy")
	}
	moreLatency := base
	moreLatency.Latency *= 2
	if Estimate(p, moreLatency) <= Estimate(p, base) {
		t.Fatal("more latency must cost more energy")
	}
	moreDensity := base
	moreDensity.Density *= 2
	if Estimate(p, moreDensity) <= Estimate(p, base) {
		t.Fatal("more density must cost more energy")
	}
}

func TestNormalizeBaselineIsOne(t *testing.T) {
	ws := []Workload{
		{Spikes: 1e5, Density: 0.02, Latency: 200},
		{Spikes: 3e6, Density: 8, Latency: 16},
	}
	norm, err := Normalize(TrueNorth(), ws, 0)
	if err != nil {
		t.Fatal(err)
	}
	if norm[0] != 1 {
		t.Fatalf("baseline = %v, want 1", norm[0])
	}
	if norm[1] <= 1 {
		t.Fatalf("spike-heavy phase-coding-like workload should exceed baseline, got %v", norm[1])
	}
}

func TestNormalizeErrors(t *testing.T) {
	ws := []Workload{{Spikes: 1, Density: 1, Latency: 1}}
	if _, err := Normalize(TrueNorth(), ws, 5); err == nil {
		t.Fatal("out-of-range baseline accepted")
	}
	if _, err := Normalize(TrueNorth(), []Workload{{Spikes: -1, Density: 1, Latency: 1}}, 0); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

// Property: normalization is scale-free — multiplying every workload's
// statistics by the same factor leaves relative energies unchanged only
// when the factor applies uniformly to a single term; more robustly,
// normalized energies are always positive and the baseline is exactly 1.
func TestNormalizePositiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		n := 2 + r.Intn(5)
		ws := make([]Workload, n)
		for i := range ws {
			ws[i] = Workload{
				Spikes:  r.Range(1, 1e7),
				Density: r.Range(0.001, 10),
				Latency: r.Range(1, 3000),
			}
		}
		base := r.Intn(n)
		for _, p := range []Profile{TrueNorth(), SpiNNaker()} {
			norm, err := Normalize(p, ws, base)
			if err != nil {
				return false
			}
			if math.Abs(norm[base]-1) > 1e-12 {
				return false
			}
			for _, v := range norm {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The paper's qualitative Table 2 claim: a phase-coding-like workload
// (many spikes, high density, low latency) costs far more on both chips
// than a sparse burst-coding workload at moderate latency, and the gap is
// larger on TrueNorth than the latency savings alone would suggest.
func TestPhaseVsBurstEnergyShape(t *testing.T) {
	burst := Workload{Spikes: 7e4, Density: 0.022, Latency: 120}
	phase := Workload{Spikes: 4e5, Density: 0.08, Latency: 150}
	for _, p := range []Profile{TrueNorth(), SpiNNaker()} {
		if Estimate(p, phase) <= Estimate(p, burst) {
			t.Fatalf("%s: phase-like workload must cost more than burst-like", p.Name)
		}
	}
}
