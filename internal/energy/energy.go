// Package energy estimates inference energy on neuromorphic hardware the
// way the paper's Section 4.2 does: total energy decomposes into
// computation, routing, and static parts, each scaled by a different
// workload statistic —
//
//	E_comp   ∝ number of spikes (synaptic events)
//	E_route  ∝ spiking density  (traffic per neuron per step)
//	E_static ∝ latency          (time steps the chip is powered)
//
// The per-architecture ratios come from the TrueNorth (Merolla et al.
// 2014), SpiNNaker (Furber et al. 2014), and Moradi & Manohar 2018
// characterizations the paper cites: TrueNorth is event-driven silicon
// whose budget is dominated by spike delivery, while SpiNNaker's ARM
// cores pay a much larger static and routing share. Estimates are
// reported normalized to a baseline row, exactly as in Table 2.
package energy

import "fmt"

// Profile is one neuromorphic architecture's energy decomposition. The
// three ratios express the share of the chip's total budget attributable
// to each component under a reference workload; they need not sum to 1
// (only relative magnitudes matter after normalization).
type Profile struct {
	Name string
	// Comp scales with the spike count.
	Comp float64
	// Route scales with spiking density.
	Route float64
	// Static scales with latency.
	Static float64
}

// TrueNorth returns the event-driven digital profile: computation (spike
// delivery and neuron updates) dominates, static power is famously tiny
// (~70 mW chip), routing is moderate.
func TrueNorth() Profile {
	return Profile{Name: "TrueNorth", Comp: 0.65, Route: 0.25, Static: 0.10}
}

// SpiNNaker returns the ARM-many-core profile: large static share (clocked
// cores idle-burn), substantial packet-routing cost, smaller marginal
// computation share.
func SpiNNaker() Profile {
	return Profile{Name: "SpiNNaker", Comp: 0.30, Route: 0.25, Static: 0.45}
}

// Workload captures what one SNN inference configuration cost.
type Workload struct {
	// Spikes is the total spike count per image.
	Spikes float64
	// Density is spikes / (neurons · latency).
	Density float64
	// Latency is the number of simulated time steps.
	Latency float64
}

// Validate rejects physically meaningless workloads.
func (w Workload) Validate() error {
	if w.Spikes < 0 || w.Density < 0 || w.Latency <= 0 {
		return fmt.Errorf("energy: invalid workload %+v", w)
	}
	return nil
}

// Estimate returns the (unnormalized) energy of the workload under the
// profile. Units are arbitrary; use Normalize to express results relative
// to a baseline as the paper does.
func Estimate(p Profile, w Workload) float64 {
	return p.Comp*w.Spikes + p.Route*w.Density*refDensityScale + p.Static*w.Latency*refStaticScale
}

// refDensityScale and refStaticScale bring the three terms to comparable
// magnitudes for the harness's workloads (spike counts in the 1e4-1e6
// range, densities in 1e-2..0.5, latencies in 1e1-1e3). They mirror the
// paper's procedure of splitting a chip's measured total energy
// proportionally; only ratios between configurations survive
// normalization, so the exact constants affect the scale of the mix, not
// the ordering within a term. For topology-grounded routing costs use
// internal/neuromorphic instead.
const (
	refDensityScale = 2e5
	refStaticScale  = 2e2
)

// Normalize expresses each workload's energy relative to the baseline
// workload (index base), matching Table 2's "normalized energy" columns.
func Normalize(p Profile, ws []Workload, base int) ([]float64, error) {
	if base < 0 || base >= len(ws) {
		return nil, fmt.Errorf("energy: baseline index %d out of range", base)
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			return nil, err
		}
	}
	baseE := Estimate(p, ws[base])
	if baseE == 0 {
		return nil, fmt.Errorf("energy: baseline workload has zero energy")
	}
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = Estimate(p, w) / baseE
	}
	return out, nil
}
