package neuromorphic

import (
	"math"
	"testing"
	"testing/quick"

	"burstsnn/internal/coding"
	"burstsnn/internal/mathx"
	"burstsnn/internal/snn"
)

func TestChipConfigValidate(t *testing.T) {
	if err := TrueNorthChip(4, 4).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SpiNNakerChip(2, 3).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ChipConfig{
		{MeshW: 0, MeshH: 2, NeuronsPerCore: 10},
		{MeshW: 2, MeshH: 2, NeuronsPerCore: 0},
		{MeshW: 2, MeshH: 2, NeuronsPerCore: 4, HopEnergy: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	c := TrueNorthChip(4, 4)
	// Core 0 is (0,0); core 15 is (3,3).
	if got := c.Hops(0, 15); got != 6 {
		t.Fatalf("Hops(0,15) = %d", got)
	}
	if c.Hops(5, 5) != 0 {
		t.Fatal("self hops must be 0")
	}
}

func TestHopsSymmetricProperty(t *testing.T) {
	c := TrueNorthChip(8, 8)
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a, b := r.Intn(64), r.Intn(64)
		return c.Hops(a, b) == c.Hops(b, a) && c.Hops(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastHopsBounds(t *testing.T) {
	c := SpiNNakerChip(8, 8)
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		src := r.Intn(64)
		n := 1 + r.Intn(6)
		dsts := make([]int, n)
		maxUni, sumUni := 0, 0
		for i := range dsts {
			dsts[i] = r.Intn(64)
			h := c.Hops(src, dsts[i])
			sumUni += h
			if h > maxUni {
				maxUni = h
			}
		}
		mc := c.MulticastHops(src, dsts)
		// A multicast tree reaches every destination, so it needs at
		// least the farthest unicast distance, and never more than the
		// sum of unicast paths.
		return mc >= maxUni && mc <= sumUni
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastHopsEmpty(t *testing.T) {
	c := SpiNNakerChip(4, 4)
	if c.MulticastHops(3, nil) != 0 {
		t.Fatal("empty multicast must cost 0")
	}
}

// buildTinySNN constructs a small converted-style network directly.
func buildTinySNN(t *testing.T) *snn.Network {
	t.Helper()
	enc, err := coding.NewInputEncoder(coding.DefaultConfig(coding.Real), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := coding.DefaultConfig(coding.Rate)
	conv := snn.NewSpikingConv(
		onesSlice(2*1*3*3), zeroSlice(2),
		snn.ConvGeom{InC: 1, InH: 4, InW: 4, OutC: 2, K: 3, Stride: 1, Pad: 1}, cfg)
	pool := snn.NewSpikingAvgPool(2, 4, 4, 2, cfg)
	dense := snn.NewSpikingDense(onesSlice(8*3), zeroSlice(3), 8, 3, cfg)
	return &snn.Network{
		Encoder: enc,
		Layers:  []snn.Layer{conv, pool, dense},
		Output:  snn.NewOutputLayer(onesSlice(3*2), zeroSlice(2), 3, 2),
	}
}

func onesSlice(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.05
	}
	return s
}

func zeroSlice(n int) []float64 { return make([]float64, n) }

func TestExtractTopology(t *testing.T) {
	net := buildTinySNN(t)
	topo, err := ExtractTopology(net)
	if err != nil {
		t.Fatal(err)
	}
	// input(16) conv(32) pool(8) dense(3) readout(2).
	wantLayers := []struct {
		name string
		n    int
	}{
		{"input", 16}, {"conv", 32}, {"avgpool", 8}, {"dense", 3}, {"readout", 2},
	}
	if len(topo.Layers) != len(wantLayers) {
		t.Fatalf("got %d layers", len(topo.Layers))
	}
	for i, w := range wantLayers {
		if topo.Layers[i].Name != w.name || topo.Layers[i].Neurons != w.n {
			t.Fatalf("layer %d = %s/%d, want %s/%d",
				i, topo.Layers[i].Name, topo.Layers[i].Neurons, w.name, w.n)
		}
	}
	if topo.TotalNeurons() != 16+32+8+3+2 {
		t.Fatalf("total neurons %d", topo.TotalNeurons())
	}
	// Every non-final layer must have a fan-out into the next layer's
	// index space.
	for i := 0; i < len(topo.Layers)-1; i++ {
		l := topo.Layers[i]
		if l.FanOut == nil {
			t.Fatalf("layer %d has no fan-out", i)
		}
		for n := 0; n < l.Neurons; n++ {
			for _, tgt := range l.FanOut(n) {
				if tgt < 0 || tgt >= l.NextNeurons {
					t.Fatalf("layer %d neuron %d fans out to %d (next has %d)", i, n, tgt, l.NextNeurons)
				}
			}
		}
	}
	if topo.Layers[len(topo.Layers)-1].FanOut != nil {
		t.Fatal("readout must have no fan-out")
	}
}

func TestConvFanOutMatchesScatterGeometry(t *testing.T) {
	// The fan-out of an input pixel must be exactly the output positions
	// whose receptive field covers it — mirror the SpikingConv scatter.
	g := snn.ConvGeom{InC: 2, InH: 5, InW: 5, OutC: 3, K: 3, Stride: 2, Pad: 1}
	fan := convFanOut(g)
	outH, outW := g.OutH(), g.OutW()
	for i := 0; i < g.InC*g.InH*g.InW; i++ {
		want := map[int]bool{}
		rem := i % (g.InH * g.InW)
		iy, ix := rem/g.InW, rem%g.InW
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				for kh := 0; kh < g.K; kh++ {
					for kw := 0; kw < g.K; kw++ {
						if oy*g.Stride+kh-g.Pad == iy && ox*g.Stride+kw-g.Pad == ix {
							for oc := 0; oc < g.OutC; oc++ {
								want[oc*outH*outW+oy*outW+ox] = true
							}
						}
					}
				}
			}
		}
		got := fan(i)
		if len(got) != len(want) {
			t.Fatalf("pixel %d: fan-out %d targets, want %d", i, len(got), len(want))
		}
		for _, tgt := range got {
			if !want[tgt] {
				t.Fatalf("pixel %d: unexpected target %d", i, tgt)
			}
		}
	}
}

func TestPlacementSequentialAndRandom(t *testing.T) {
	net := buildTinySNN(t)
	topo, _ := ExtractTopology(net)
	chip := TrueNorthChip(2, 2)
	chip.NeuronsPerCore = 20

	seq, err := PlaceSequential(topo, chip)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	rnd, err := PlaceRandom(topo, chip, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := rnd.Validate(); err != nil {
		t.Fatal(err)
	}
	if seq.UsedCores() == 0 || rnd.UsedCores() == 0 {
		t.Fatal("no cores used")
	}
}

func TestPlacementCapacityError(t *testing.T) {
	net := buildTinySNN(t)
	topo, _ := ExtractTopology(net)
	chip := TrueNorthChip(1, 1)
	chip.NeuronsPerCore = 4 // 61 neurons cannot fit
	if _, err := PlaceSequential(topo, chip); err == nil {
		t.Fatal("over-capacity placement accepted")
	}
}

func TestRecordLoadAndReplay(t *testing.T) {
	net := buildTinySNN(t)
	topo, _ := ExtractTopology(net)
	img := make([]float64, 16)
	for i := range img {
		img[i] = 0.5
	}
	load := RecordLoad(net, topo, [][]float64{img}, 20)
	if load.Latency != 20 {
		t.Fatalf("latency %d", load.Latency)
	}
	totalSpikes := 0.0
	for _, c := range load.Counts {
		totalSpikes += c
	}
	if totalSpikes == 0 {
		t.Fatal("no spikes recorded")
	}
	// Readout neurons never spike.
	offs := topo.LayerOffsets()
	ro := offs[len(offs)-1]
	for i := ro; i < len(load.Counts); i++ {
		if load.Counts[i] != 0 {
			t.Fatal("readout spiked")
		}
	}

	chip := TrueNorthChip(2, 2)
	chip.NeuronsPerCore = 20
	p, err := PlaceSequential(topo, chip)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(p, load, chip)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spikes <= 0 || rep.SynOps < rep.Spikes {
		t.Fatalf("implausible traffic: %+v", rep)
	}
	if rep.TotalEnergy() <= 0 {
		t.Fatal("no energy accounted")
	}
	if rep.OffCoreFraction < 0 || rep.OffCoreFraction > 1 {
		t.Fatalf("off-core fraction %v", rep.OffCoreFraction)
	}
}

// Locality-destroying placement must never beat the sequential one on
// hops for the same workload.
func TestSequentialBeatsRandomOnHops(t *testing.T) {
	net := buildTinySNN(t)
	topo, _ := ExtractTopology(net)
	img := make([]float64, 16)
	for i := range img {
		img[i] = 0.7
	}
	load := RecordLoad(net, topo, [][]float64{img}, 30)

	chip := TrueNorthChip(3, 3)
	chip.NeuronsPerCore = 8
	seq, err := PlaceSequential(topo, chip)
	if err != nil {
		t.Fatal(err)
	}
	repSeq, err := Replay(seq, load, chip)
	if err != nil {
		t.Fatal(err)
	}
	// Average over several random placements to avoid a lucky shuffle.
	var avgRnd float64
	const trials = 5
	for s := uint64(0); s < trials; s++ {
		rnd, err := PlaceRandom(topo, chip, s)
		if err != nil {
			t.Fatal(err)
		}
		repRnd, err := Replay(rnd, load, chip)
		if err != nil {
			t.Fatal(err)
		}
		avgRnd += repRnd.Hops / trials
	}
	if repSeq.Hops >= avgRnd {
		t.Fatalf("sequential placement (%v hops) should beat random (%v)", repSeq.Hops, avgRnd)
	}
}

// Annealing must not increase the (weighted, fully-evaluated) hop cost
// materially, and usually decreases it from a random start.
func TestAnnealingImprovesRandomPlacement(t *testing.T) {
	net := buildTinySNN(t)
	topo, _ := ExtractTopology(net)
	img := make([]float64, 16)
	for i := range img {
		img[i] = 0.7
	}
	load := RecordLoad(net, topo, [][]float64{img}, 30)
	chip := TrueNorthChip(3, 3)
	chip.NeuronsPerCore = 8

	rnd, err := PlaceRandom(topo, chip, 42)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Replay(rnd, load, chip)
	if err != nil {
		t.Fatal(err)
	}
	RefinePlacement(rnd, load.Counts, AnnealOptions{Iterations: 15000, Seed: 7})
	if err := rnd.Validate(); err != nil {
		t.Fatalf("annealing corrupted the placement: %v", err)
	}
	after, err := Replay(rnd, load, chip)
	if err != nil {
		t.Fatal(err)
	}
	if after.Hops > before.Hops*1.02 {
		t.Fatalf("annealing degraded hops: %v -> %v", before.Hops, after.Hops)
	}
}

func TestReplayEnergyMonotoneInHopEnergy(t *testing.T) {
	net := buildTinySNN(t)
	topo, _ := ExtractTopology(net)
	img := make([]float64, 16)
	for i := range img {
		img[i] = 0.5
	}
	load := RecordLoad(net, topo, [][]float64{img}, 10)
	chip := TrueNorthChip(2, 2)
	chip.NeuronsPerCore = 20
	p, _ := PlaceSequential(topo, chip)
	rep1, err := Replay(p, load, chip)
	if err != nil {
		t.Fatal(err)
	}
	chip2 := chip
	chip2.HopEnergy *= 10
	rep2, err := Replay(p, load, chip2)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Hops != rep2.Hops {
		t.Fatal("hop counts must not depend on energy coefficients")
	}
	if !(rep2.RouteEnergy > rep1.RouteEnergy) {
		t.Fatal("route energy must scale with hop energy")
	}
	if math.Abs(rep1.CompEnergy-rep2.CompEnergy) > 1e-9 {
		t.Fatal("computation energy must be unchanged")
	}
}
