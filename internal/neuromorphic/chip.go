// Package neuromorphic models the hardware substrate the paper's energy
// estimates assume: a 2-D mesh of neurosynaptic cores (TrueNorth-style)
// or ARM-core routers (SpiNNaker-style) onto which a converted SNN is
// placed, with dimension-ordered spike routing between cores.
//
// The paper (Section 4.2) splits chip energy into computation, routing,
// and static parts using published ratios. This package grounds the same
// decomposition in a mapped topology: place the network's neurons onto
// cores, replay a measured spike workload, count synaptic operations and
// mesh hops, and integrate per-event energies. The analytic model in
// internal/energy remains the fast path; this one exposes *why* routing
// costs what it costs (hop counts, link congestion, placement quality).
package neuromorphic

import "fmt"

// ChipConfig describes one neuromorphic architecture: mesh geometry, core
// capacities, and per-event energy coefficients. Energy units are
// arbitrary but consistent (think picojoules); only ratios survive the
// normalization the paper applies.
type ChipConfig struct {
	Name string
	// MeshW and MeshH define the core grid.
	MeshW, MeshH int
	// NeuronsPerCore caps how many neurons one core hosts.
	NeuronsPerCore int
	// SynOpEnergy is the energy of one synaptic accumulate.
	SynOpEnergy float64
	// SpikeGenEnergy is the energy of one neuron firing.
	SpikeGenEnergy float64
	// HopEnergy is the energy of moving one spike packet across one mesh
	// link.
	HopEnergy float64
	// CoreStaticPower is the static energy one core burns per time step.
	CoreStaticPower float64
	// Multicast selects the routing model: true for SpiNNaker-style
	// multicast trees (a spike traverses a spanning tree of destination
	// cores), false for TrueNorth-style unicast (one packet per
	// destination core).
	Multicast bool
}

// Cores returns the total core count.
func (c ChipConfig) Cores() int { return c.MeshW * c.MeshH }

// Capacity returns the total neuron capacity.
func (c ChipConfig) Capacity() int { return c.Cores() * c.NeuronsPerCore }

// Validate checks the configuration is usable.
func (c ChipConfig) Validate() error {
	if c.MeshW <= 0 || c.MeshH <= 0 {
		return fmt.Errorf("neuromorphic: bad mesh %dx%d", c.MeshW, c.MeshH)
	}
	if c.NeuronsPerCore <= 0 {
		return fmt.Errorf("neuromorphic: bad core capacity %d", c.NeuronsPerCore)
	}
	if c.SynOpEnergy < 0 || c.SpikeGenEnergy < 0 || c.HopEnergy < 0 || c.CoreStaticPower < 0 {
		return fmt.Errorf("neuromorphic: negative energy coefficient in %+v", c)
	}
	return nil
}

// TrueNorthChip returns a TrueNorth-inspired configuration: event-driven
// digital cores, 256 neurons each, negligible static power, cheap
// synaptic events, unicast routing. Coefficients follow the relative
// magnitudes reported by Merolla et al. 2014 (26 pJ/synaptic event) and
// Moradi & Manohar 2018 for on-chip communication.
func TrueNorthChip(meshW, meshH int) ChipConfig {
	return ChipConfig{
		Name:  "TrueNorth",
		MeshW: meshW, MeshH: meshH,
		NeuronsPerCore:  256,
		SynOpEnergy:     26,
		SpikeGenEnergy:  110,
		HopEnergy:       300,
		CoreStaticPower: 30,
		Multicast:       false,
	}
}

// SpiNNakerChip returns a SpiNNaker-inspired configuration: ARM cores
// hosting ~1000 neurons, multicast packet routing, and a large static
// share (clocked cores idle-burn), following Furber et al. 2014.
func SpiNNakerChip(meshW, meshH int) ChipConfig {
	return ChipConfig{
		Name:  "SpiNNaker",
		MeshW: meshW, MeshH: meshH,
		NeuronsPerCore:  1000,
		SynOpEnergy:     80,
		SpikeGenEnergy:  200,
		HopEnergy:       900,
		CoreStaticPower: 12000,
		Multicast:       true,
	}
}

// coreX and coreY convert a core id to mesh coordinates.
func (c ChipConfig) coreX(core int) int { return core % c.MeshW }
func (c ChipConfig) coreY(core int) int { return core / c.MeshW }

// Hops returns the dimension-ordered (XY) routing distance between two
// cores.
func (c ChipConfig) Hops(a, b int) int {
	dx := c.coreX(a) - c.coreX(b)
	if dx < 0 {
		dx = -dx
	}
	dy := c.coreY(a) - c.coreY(b)
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// MulticastHops estimates the links a multicast tree from src to dsts
// traverses: an X-then-Y spanning pattern — packets travel along the
// source row to each destination column once, then down each column to
// the destinations. It lower-bounds per-destination unicast and is the
// standard approximation for SpiNNaker-style multicast.
func (c ChipConfig) MulticastHops(src int, dsts []int) int {
	if len(dsts) == 0 {
		return 0
	}
	sx, sy := c.coreX(src), c.coreY(src)
	// Columns reached, with the y-extent needed in each column.
	type extent struct{ minY, maxY int }
	cols := map[int]extent{}
	for _, d := range dsts {
		x, y := c.coreX(d), c.coreY(d)
		e, ok := cols[x]
		if !ok {
			e = extent{y, y}
		} else {
			if y < e.minY {
				e.minY = y
			}
			if y > e.maxY {
				e.maxY = y
			}
		}
		cols[x] = e
	}
	// Row traversal: from the source column to the leftmost and
	// rightmost destination columns.
	minX, maxX := sx, sx
	for x := range cols {
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
	}
	hops := (sx - minX) + (maxX - sx)
	// Column traversals: within each destination column, span from the
	// source row to the needed extent.
	for _, e := range cols {
		lo, hi := e.minY, e.maxY
		if sy < lo {
			lo = sy
		}
		if sy > hi {
			hi = sy
		}
		hops += hi - lo
	}
	return hops
}
