package neuromorphic

import (
	"fmt"

	"burstsnn/internal/mathx"
)

// Placement assigns every global neuron id of a Topology to a core.
type Placement struct {
	Chip   ChipConfig
	Topo   *Topology
	CoreOf []int // global neuron id -> core id
	// coreLoad tracks how many neurons each core hosts.
	coreLoad []int
}

// Validate checks that every neuron is placed and no core exceeds its
// capacity.
func (p *Placement) Validate() error {
	if len(p.CoreOf) != p.Topo.TotalNeurons() {
		return fmt.Errorf("neuromorphic: placement covers %d of %d neurons", len(p.CoreOf), p.Topo.TotalNeurons())
	}
	load := make([]int, p.Chip.Cores())
	for i, core := range p.CoreOf {
		if core < 0 || core >= p.Chip.Cores() {
			return fmt.Errorf("neuromorphic: neuron %d on invalid core %d", i, core)
		}
		load[core]++
		if load[core] > p.Chip.NeuronsPerCore {
			return fmt.Errorf("neuromorphic: core %d over capacity (%d > %d)", core, load[core], p.Chip.NeuronsPerCore)
		}
	}
	return nil
}

// UsedCores returns how many cores host at least one neuron.
func (p *Placement) UsedCores() int {
	used := map[int]bool{}
	for _, c := range p.CoreOf {
		used[c] = true
	}
	return len(used)
}

// PlaceSequential fills cores in mesh order with neurons in layer order.
// Because consecutive neurons of a layer are spatially adjacent (CHW
// order) and consecutive layers are adjacent in id space, this is a
// strong locality baseline — the mapping strategy TrueNorth's own tool
// flow (corelet placement) starts from.
func PlaceSequential(topo *Topology, chip ChipConfig) (*Placement, error) {
	if err := chip.Validate(); err != nil {
		return nil, err
	}
	total := topo.TotalNeurons()
	if total > chip.Capacity() {
		return nil, fmt.Errorf("neuromorphic: network needs %d neuron slots, chip has %d", total, chip.Capacity())
	}
	p := &Placement{Chip: chip, Topo: topo, CoreOf: make([]int, total), coreLoad: make([]int, chip.Cores())}
	core := 0
	for i := 0; i < total; i++ {
		if p.coreLoad[core] == chip.NeuronsPerCore {
			core++
		}
		p.CoreOf[i] = core
		p.coreLoad[core]++
	}
	return p, nil
}

// PlaceRandom scatters neurons uniformly (capacity-respecting). It is the
// pessimistic baseline that shows what placement quality is worth.
func PlaceRandom(topo *Topology, chip ChipConfig, seed uint64) (*Placement, error) {
	p, err := PlaceSequential(topo, chip)
	if err != nil {
		return nil, err
	}
	r := mathx.NewRNG(seed)
	// Fisher-Yates over neuron->core assignments preserves per-core
	// loads exactly while destroying locality.
	r.Shuffle(len(p.CoreOf), func(i, j int) {
		p.CoreOf[i], p.CoreOf[j] = p.CoreOf[j], p.CoreOf[i]
	})
	return p, nil
}

// AnnealOptions tunes RefinePlacement.
type AnnealOptions struct {
	// Iterations is the number of proposed swaps (default 20000).
	Iterations int
	// StartTemp and EndTemp bound the geometric cooling schedule in
	// units of hop-cost (defaults 50 → 0.5).
	StartTemp, EndTemp float64
	// SampleEdges bounds how many fan-out edges per moved neuron are
	// examined when scoring a swap (default 32; conv fan-outs are ~150).
	SampleEdges int
	Seed        uint64
}

// RefinePlacement improves a placement by simulated annealing on neuron
// swaps, minimizing the total hop count of the topology's edges weighted
// by per-neuron spike counts (pass nil weights for unweighted edges).
// This is classic netlist placement (as in EDA tool flows) applied to
// neurosynaptic cores.
func RefinePlacement(p *Placement, spikeCounts []float64, opts AnnealOptions) *Placement {
	if opts.Iterations == 0 {
		opts.Iterations = 20000
	}
	if opts.StartTemp == 0 {
		opts.StartTemp = 50
	}
	if opts.EndTemp == 0 {
		opts.EndTemp = 0.5
	}
	if opts.SampleEdges == 0 {
		opts.SampleEdges = 32
	}
	r := mathx.NewRNG(opts.Seed ^ 0xabcdef)
	total := len(p.CoreOf)
	offsets := p.Topo.LayerOffsets()

	// layerOf finds a neuron's layer via the offsets (linear scan is fine
	// — layer counts are tiny).
	layerOf := func(id int) int {
		li := 0
		for li+1 < len(offsets) && offsets[li+1] <= id {
			li++
		}
		return li
	}

	// cost of one neuron's outgoing and incoming locality, sampled.
	neuronCost := func(id int) float64 {
		li := layerOf(id)
		layer := p.Topo.Layers[li]
		cost := 0.0
		w := 1.0
		if spikeCounts != nil {
			w = spikeCounts[id] + 0.1 // keep silent neurons slightly sticky
		}
		if layer.FanOut != nil {
			local := id - offsets[li]
			targets := layer.FanOut(local)
			stride := 1
			if len(targets) > opts.SampleEdges {
				stride = len(targets) / opts.SampleEdges
			}
			nextBase := offsets[li+1]
			for k := 0; k < len(targets); k += stride {
				cost += w * float64(p.Chip.Hops(p.CoreOf[id], p.CoreOf[nextBase+targets[k]]))
			}
		}
		return cost
	}

	temp := opts.StartTemp
	cool := 1.0
	if opts.Iterations > 1 {
		cool = pow(opts.EndTemp/opts.StartTemp, 1/float64(opts.Iterations-1))
	}
	for it := 0; it < opts.Iterations; it++ {
		a := r.Intn(total)
		b := r.Intn(total)
		if a == b || p.CoreOf[a] == p.CoreOf[b] {
			temp *= cool
			continue
		}
		before := neuronCost(a) + neuronCost(b)
		p.CoreOf[a], p.CoreOf[b] = p.CoreOf[b], p.CoreOf[a]
		after := neuronCost(a) + neuronCost(b)
		delta := after - before
		if delta > 0 && !r.Bernoulli(expNeg(delta/temp)) {
			// Reject: undo the swap.
			p.CoreOf[a], p.CoreOf[b] = p.CoreOf[b], p.CoreOf[a]
		}
		temp *= cool
	}
	return p
}

// pow is a minimal positive-base power used by the cooling schedule.
func pow(base, exp float64) float64 {
	if base <= 0 {
		return 0
	}
	// math.Pow is fine; wrapped for clarity at the call site.
	return mathPow(base, exp)
}
