package neuromorphic

import (
	"fmt"
	"math"
	"sort"

	"burstsnn/internal/coding"
	"burstsnn/internal/snn"
)

func mathPow(a, b float64) float64 { return math.Pow(a, b) }
func expNeg(x float64) float64     { return math.Exp(-x) }

// SpikeLoad is a per-neuron spike-count workload recorded from a
// simulation run: how many times each global neuron fired over Latency
// time steps.
type SpikeLoad struct {
	Counts  []float64 // global neuron id -> spikes over the run
	Latency int
}

// RecordLoad runs the network on the given images and accumulates
// per-neuron spike counts aligned with ExtractTopology's global ids
// (input layer first, readout last; the readout never spikes).
func RecordLoad(net *snn.Network, topo *Topology, images [][]float64, steps int) *SpikeLoad {
	offsets := topo.LayerOffsets()
	counts := make([]float64, topo.TotalNeurons())

	// Probe the encoder (-1) and each spiking layer. Layer i of the snn
	// network corresponds to topology layer i+1.
	net.AttachProbe(-1, func(_ int, evs []coding.Event) {
		for _, ev := range evs {
			counts[ev.Index]++
		}
	})
	for li := range net.Layers {
		base := offsets[li+1]
		li := li
		net.AttachProbe(li, func(_ int, evs []coding.Event) {
			for _, ev := range evs {
				counts[base+ev.Index]++
			}
		})
	}
	for _, img := range images {
		net.Reset(img)
		for t := 0; t < steps; t++ {
			net.Step(t)
		}
	}
	return &SpikeLoad{Counts: counts, Latency: steps * len(images)}
}

// TrafficReport is the outcome of replaying a spike workload on a placed
// network: event counts, hop counts, congestion, and integrated energy.
type TrafficReport struct {
	Chip ChipConfig
	// Spikes is the total spike count of the workload.
	Spikes float64
	// SynOps is the number of synaptic accumulates (spikes × fan-out).
	SynOps float64
	// Hops is the total mesh-link traversals under the chip's routing
	// model.
	Hops float64
	// OffCoreFraction is the share of spike deliveries that leave the
	// source core (0 = perfect locality).
	OffCoreFraction float64
	// MaxLinkLoad is the largest per-link traversal count (congestion
	// proxy; XY routing, horizontal then vertical).
	MaxLinkLoad float64
	// UsedCores is the number of cores hosting neurons.
	UsedCores int
	// Latency is the workload's time-step count.
	Latency int
	// Energy components, in the chip's (arbitrary but consistent) units.
	CompEnergy, RouteEnergy, StaticEnergy float64
}

// TotalEnergy sums the three components.
func (r *TrafficReport) TotalEnergy() float64 {
	return r.CompEnergy + r.RouteEnergy + r.StaticEnergy
}

// Replay routes the workload over the placement and integrates energy.
func Replay(p *Placement, load *SpikeLoad, chip ChipConfig) (*TrafficReport, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(load.Counts) != len(p.CoreOf) {
		return nil, fmt.Errorf("neuromorphic: load covers %d neurons, placement %d", len(load.Counts), len(p.CoreOf))
	}
	offsets := p.Topo.LayerOffsets()
	rep := &TrafficReport{Chip: chip, Latency: load.Latency, UsedCores: p.UsedCores()}

	// linkLoad tracks traversals per directed mesh link. Links are keyed
	// by (core, direction): 0=east,1=west,2=north,3=south.
	linkLoad := make([]float64, chip.Cores()*4)
	addPath := func(src, dst int, weight float64) {
		// XY routing: move in x first, then y.
		x, y := chip.coreX(src), chip.coreY(src)
		tx, ty := chip.coreX(dst), chip.coreY(dst)
		for x != tx {
			dir := 0
			step := 1
			if tx < x {
				dir, step = 1, -1
			}
			linkLoad[(y*chip.MeshW+x)*4+dir] += weight
			x += step
		}
		for y != ty {
			dir := 3
			step := 1
			if ty < y {
				dir, step = 2, -1
			}
			linkLoad[(y*chip.MeshW+x)*4+dir] += weight
			y += step
		}
	}

	var deliveries, offCore float64
	for li, layer := range p.Topo.Layers {
		if layer.FanOut == nil {
			continue
		}
		base := offsets[li]
		nextBase := offsets[li+1]
		for i := 0; i < layer.Neurons; i++ {
			spikes := load.Counts[base+i]
			if spikes == 0 {
				continue
			}
			rep.Spikes += spikes
			src := p.CoreOf[base+i]
			targets := layer.FanOut(i)
			rep.SynOps += spikes * float64(len(targets))

			// Destination core set.
			destCores := map[int]bool{}
			for _, t := range targets {
				destCores[p.CoreOf[nextBase+t]] = true
			}
			deliveries += spikes * float64(len(destCores))
			if chip.Multicast {
				dsts := make([]int, 0, len(destCores))
				for c := range destCores {
					if c != src {
						dsts = append(dsts, c)
					}
				}
				sort.Ints(dsts) // determinism over map iteration
				rep.Hops += spikes * float64(chip.MulticastHops(src, dsts))
				// Congestion accounting approximates the tree as
				// unicast paths (upper bound on per-link load).
				for _, c := range dsts {
					addPath(src, c, spikes)
				}
				offCore += spikes * float64(len(dsts))
			} else {
				for c := range destCores {
					if c == src {
						continue
					}
					rep.Hops += spikes * float64(chip.Hops(src, c))
					addPath(src, c, spikes)
					offCore += spikes
				}
			}
		}
	}
	if deliveries > 0 {
		rep.OffCoreFraction = offCore / deliveries
	}
	for _, l := range linkLoad {
		if l > rep.MaxLinkLoad {
			rep.MaxLinkLoad = l
		}
	}
	rep.CompEnergy = chip.SynOpEnergy*rep.SynOps + chip.SpikeGenEnergy*rep.Spikes
	rep.RouteEnergy = chip.HopEnergy * rep.Hops
	rep.StaticEnergy = chip.CoreStaticPower * float64(rep.UsedCores) * float64(load.Latency)
	return rep, nil
}
